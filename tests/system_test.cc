// End-to-end system tests: whole-stack scenarios that cross every layer —
// verified kernel, IPC, drivers behind the IOMMU, applications — with the
// invariant suite validating the kernel at the end of each scenario.

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/kvstore.h"
#include "src/apps/maglev.h"
#include "src/core/kernel.h"
#include "src/drivers/dma_arena.h"
#include "src/drivers/ixgbe_driver.h"
#include "src/drivers/nvme_driver.h"
#include "src/hw/sim_nic.h"
#include "src/hw/sim_nvme.h"
#include <map>

#include "src/sec/abv_scenario.h"
#include "src/sec/noninterference.h"
#include "src/sec/verified_proxy.h"
#include "src/verif/invariant_registry.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

// ---------------------------------------------------------------------------
// Scenario 1: a server process offers a kv-store over IPC; a client process
// in a sibling container talks to it through a granted endpoint — all under
// full refinement checking.
// ---------------------------------------------------------------------------

TEST(SystemTest, CrossContainerKvServiceOverIpc) {
  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  RefinementChecker checker(&kernel, /*check_wf_every=*/4);

  auto server_ctnr = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull);
  auto client_ctnr = kernel.BootCreateContainer(kernel.root_container(), 512, ~0ull);
  auto server_proc = kernel.BootCreateProcess(server_ctnr.value);
  auto client_proc = kernel.BootCreateProcess(client_ctnr.value);
  auto server = kernel.BootCreateThread(server_proc.value);
  auto client = kernel.BootCreateThread(client_proc.value);

  // The server publishes its service endpoint; trusted init wires it.
  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet edpt = checker.Step(server.value, ne);
  ASSERT_TRUE(edpt.ok());
  ASSERT_EQ(kernel.pm_mut().BindEndpoint(client.value, 0, edpt.value), ProcError::kOk);

  // The server's kv-store (user-level state).
  KvStore store(256);

  // Client performs 10 SETs and 10 GETs via call(); server services each.
  for (int round = 0; round < 20; ++round) {
    bool is_set = round < 10;
    std::string key = "key" + std::to_string(round % 10);
    std::string value = "value" + std::to_string(round % 10);

    // Server waits for a request.
    Syscall recv;
    recv.op = SysOp::kRecv;
    recv.edpt_idx = 0;
    ASSERT_EQ(checker.Step(server.value, recv).error, SysError::kBlocked);

    // Client encodes the request in scalar registers (op, index).
    Syscall call;
    call.op = SysOp::kCall;
    call.edpt_idx = 0;
    call.payload.scalars = {is_set ? 1ull : 0ull, static_cast<std::uint64_t>(round % 10), 0,
                            0};
    ASSERT_EQ(checker.Step(client.value, call).error, SysError::kBlocked);

    // Server handles it against its store and replies.
    auto request = kernel.TakeInbound(server.value);
    ASSERT_TRUE(request.has_value());
    std::uint64_t result;
    if (request->scalars[0] == 1) {
      result = store.Set(key, value) ? 1 : 0;
    } else {
      auto hit = store.Get(key);
      result = hit.has_value() ? hit->size() : 0;
    }
    Syscall reply;
    reply.op = SysOp::kReply;
    reply.payload.scalars = {result, 0, 0, 0};
    ASSERT_EQ(checker.Step(server.value, reply).error, SysError::kOk);

    auto response = kernel.TakeInbound(client.value);
    ASSERT_TRUE(response.has_value());
    if (!is_set) {
      EXPECT_EQ(response->scalars[0], value.size()) << "GET returned the stored length";
    }
  }
  EXPECT_EQ(store.size(), 10u);

  InvResult wf = kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
  EXPECT_GT(checker.steps_checked(), 60u);
}

// ---------------------------------------------------------------------------
// Scenario 2: shared-memory data plane bootstrapped over IPC — the client
// maps a buffer, grants it to the server, both communicate through it with
// zero further kernel involvement (the paper's asynchronous communication
// pattern, §3).
// ---------------------------------------------------------------------------

TEST(SystemTest, SharedMemoryDataPlaneBootstrappedOverIpc) {
  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  RefinementChecker checker(&kernel, 4);

  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull);
  auto proc_a = kernel.BootCreateProcess(ctnr.value);
  auto proc_b = kernel.BootCreateProcess(ctnr.value);
  auto ta = kernel.BootCreateThread(proc_a.value);
  auto tb = kernel.BootCreateThread(proc_b.value);

  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet e = checker.Step(ta.value, ne);
  ASSERT_EQ(kernel.pm_mut().BindEndpoint(tb.value, 0, e.value), ProcError::kOk);

  // A maps a ring page and grants it to B.
  Syscall mmap;
  mmap.op = SysOp::kMmap;
  mmap.va_range = VaRange{0x400000, 1, PageSize::k4K};
  mmap.map_perm = kRw;
  ASSERT_EQ(checker.Step(ta.value, mmap).error, SysError::kOk);

  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  ASSERT_EQ(checker.Step(tb.value, recv).error, SysError::kBlocked);
  Syscall send;
  send.op = SysOp::kSend;
  send.edpt_idx = 0;
  send.payload.page = PageGrant{.page = 0x400000, .size = PageSize::k4K,
                                .dest_va = 0x800000, .perm = kRw};
  ASSERT_EQ(checker.Step(ta.value, send).error, SysError::kOk);

  // Data plane: A writes through its mapping; B reads through its own
  // (hardware-level check through both page tables).
  PAddr frame = kernel.vm().Resolve(proc_a.value, 0x400000)->addr;
  PAddr a_view = kernel.mmu().Walk(kernel.vm().TableOf(proc_a.value).cr3(), 0x400000)->paddr;
  PAddr b_view = kernel.mmu().Walk(kernel.vm().TableOf(proc_b.value).cr3(), 0x800000)->paddr;
  EXPECT_EQ(a_view, frame);
  EXPECT_EQ(b_view, frame);
  kernel.mem_mut().HwWriteU64(a_view + 256, 0xabcdef);
  EXPECT_EQ(kernel.mem().HwReadU64(b_view + 256), 0xabcdefull);

  // Teardown: A unmaps; the frame survives through B's mapping; B unmaps;
  // the frame is free — no leak.
  Syscall munmap;
  munmap.op = SysOp::kMunmap;
  munmap.va_range = VaRange{0x400000, 1, PageSize::k4K};
  ASSERT_EQ(checker.Step(ta.value, munmap).error, SysError::kOk);
  EXPECT_EQ(kernel.alloc().StateOf(frame), PageState::kMapped);
  munmap.va_range = VaRange{0x800000, 1, PageSize::k4K};
  ASSERT_EQ(checker.Step(tb.value, munmap).error, SysError::kOk);
  EXPECT_EQ(kernel.alloc().StateOf(frame), PageState::kFree);

  InvResult wf = kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

// ---------------------------------------------------------------------------
// Scenario 3: a forwarding appliance — NIC behind the IOMMU, ixgbe driver,
// Maglev — processes a realistic traffic mix end to end.
// ---------------------------------------------------------------------------

TEST(SystemTest, MaglevApplianceForwardsTrafficMix) {
  PhysMem mem(16384);
  PageAllocator alloc(16384, 1);
  IommuManager iommu(&mem);
  IommuDomainId domain = iommu.CreateDomain(&alloc, kNullPtr);
  ASSERT_TRUE(iommu.AttachDevice(domain, 1));
  DmaArena arena(&mem, &alloc, &iommu, domain, 0x1000000);
  SimNic nic(&mem, &iommu, 1);
  IxgbeDriver driver(&arena, &nic, 64);
  driver.Init();

  Maglev lb(4099);
  for (int i = 0; i < 6; ++i) {
    lb.AddBackend(MaglevBackend{.name = "b" + std::to_string(i),
                                .mac = MacAddr{2, 0, 0, 0, 1, static_cast<std::uint8_t>(i)},
                                .ip = 0x0a010000u + static_cast<std::uint32_t>(i),
                                .healthy = true});
  }
  lb.Populate();

  // Mixed traffic: valid flows + occasional garbage.
  std::size_t produced = 0;
  nic.SetPacketSource([&](std::uint8_t* buf) -> std::size_t {
    if (produced >= 200) {
      return 0;
    }
    ++produced;
    if (produced % 17 == 0) {
      std::memset(buf, 0xcc, 64);  // garbage frame
      return 64;
    }
    FiveTuple flow{.src_ip = static_cast<std::uint32_t>(0x0b000000 + produced * 7),
                   .dst_ip = 0x0a0000fe,
                   .src_port = static_cast<std::uint16_t>(1000 + produced),
                   .dst_port = 80};
    return BuildUdpFrame(buf, MacAddr{2, 0, 0, 0, 0, 9}, MacAddr{2, 0, 0, 0, 0, 1}, flow,
                         "data", 4);
  });

  std::size_t egress = 0;
  std::map<std::uint32_t, int> backend_hits;
  nic.SetPacketSink([&](const std::uint8_t* frame, std::size_t len) {
    auto parsed = ParseUdpFrame(frame, len);
    ASSERT_TRUE(parsed.has_value()) << "forwarded frames must be valid";
    ++backend_hits[parsed->flow.dst_ip];
    ++egress;
  });

  std::uint8_t scratch[kMaxFrameLen];
  std::size_t forwarded = 0;
  std::size_t dropped = 0;
  for (int round = 0; round < 30; ++round) {
    nic.DeliverRx(16);
    driver.RxBurstInPlace(
        [&](VAddr iova, std::uint16_t len) {
          arena.Read(iova, scratch, len);
          if (lb.ForwardPacket(scratch, len) >= 0) {
            arena.Write(iova, scratch, len);
            driver.TxInPlaceDeferred(iova, len);
            ++forwarded;
          } else {
            ++dropped;
          }
        },
        16);
    driver.TxFlush();
    nic.ProcessTx(16);
  }

  std::size_t garbage = 200 / 17;
  EXPECT_EQ(forwarded, 200 - garbage);
  EXPECT_EQ(dropped, garbage);
  EXPECT_EQ(egress, forwarded);
  EXPECT_GE(backend_hits.size(), 4u) << "traffic spread over backends";
  EXPECT_TRUE(alloc.Wf());
}

// ---------------------------------------------------------------------------
// Scenario 4: storage round trip through the full stack with data
// integrity verified against an independent model.
// ---------------------------------------------------------------------------

TEST(SystemTest, NvmeStorageStackDataIntegrity) {
  PhysMem mem(16384);
  PageAllocator alloc(16384, 1);
  IommuManager iommu(&mem);
  IommuDomainId domain = iommu.CreateDomain(&alloc, kNullPtr);
  ASSERT_TRUE(iommu.AttachDevice(domain, 2));
  DmaArena arena(&mem, &alloc, &iommu, domain, 0x1000000);
  SimNvme ssd(&mem, &iommu, 2, 4096);
  NvmeDriver driver(&arena, &ssd, 32);
  driver.Init();
  VAddr buf = driver.AllocBuffer(4);

  // Write 64 blocks with content derived from the LBA; model in parallel.
  std::map<std::uint64_t, std::uint64_t> model;  // lba -> first word
  std::uint32_t cid = 0;
  for (std::uint64_t lba = 100; lba < 164; lba += 4) {
    for (int b = 0; b < 4; ++b) {
      std::uint64_t word = lba * 1000 + static_cast<std::uint64_t>(b);
      arena.WriteU64(buf + static_cast<std::uint64_t>(b) * kNvmeBlockBytes, word);
      model[lba + static_cast<std::uint64_t>(b)] = word;
    }
    ASSERT_TRUE(driver.SubmitWrite(lba, 4, buf, cid++));
    driver.RingDoorbell();
    ssd.ProcessCommands(4);
    NvmeCompletion c;
    ASSERT_EQ(driver.PollCompletions(&c, 1), 1u);
    ASSERT_FALSE(c.error);
  }

  // Read back in a different access pattern and verify.
  for (std::uint64_t lba = 160; lba >= 100 && lba < 164; lba -= 4) {
    ASSERT_TRUE(driver.SubmitRead(lba, 4, buf, cid++));
    driver.RingDoorbell();
    ssd.ProcessCommands(4);
    NvmeCompletion c;
    ASSERT_EQ(driver.PollCompletions(&c, 1), 1u);
    ASSERT_FALSE(c.error);
    for (int b = 0; b < 4; ++b) {
      EXPECT_EQ(arena.ReadU64(buf + static_cast<std::uint64_t>(b) * kNvmeBlockBytes),
                model[lba + static_cast<std::uint64_t>(b)])
          << "lba " << lba + b;
    }
  }
}

// ---------------------------------------------------------------------------
// Scenario 5: long adversarial A/B/V campaign with the proxy under load —
// the slow full-strength noninterference run (beyond sec_test's quick one).
// ---------------------------------------------------------------------------

TEST(SystemTest, LongAdversarialCampaignWithVerifiedProxy) {
  BootConfig config;
  config.frames = 4096;
  config.reserved_frames = 16;
  AbvScenario scenario = AbvScenario::Build(config, 512, 512, 512);
  VerifiedProxy proxy(&scenario.kernel, scenario);

  // Clients share pages with V up front.
  for (int side = 0; side < 2; ++side) {
    ThrdPtr t = side == 0 ? scenario.a_threads[0] : scenario.b_threads[0];
    Syscall mmap;
    mmap.op = SysOp::kMmap;
    mmap.va_range = VaRange{0x400000, 2, PageSize::k4K};
    mmap.map_perm = kRw;
    ASSERT_EQ(scenario.kernel.Step(t, mmap).error, SysError::kOk);
    for (int i = 0; i < 2; ++i) {
      Syscall share;
      share.op = SysOp::kSend;
      share.edpt_idx = AbvScenario::kClientSlot;
      share.payload.scalars = {kOpShare, 0, 0, 0};
      share.payload.page =
          PageGrant{.page = 0x400000 + static_cast<VAddr>(i) * kPageSize4K,
                    .size = PageSize::k4K,
                    .dest_va = 0x700000 + static_cast<VAddr>(side * 16 + i) * kPageSize4K,
                    .perm = kRw};
      ASSERT_EQ(scenario.kernel.Step(t, share).error, SysError::kBlocked);
      proxy.DrainAll();
    }
  }
  EXPECT_EQ(proxy.pages_from_a().size(), 2u);
  EXPECT_EQ(proxy.pages_from_b().size(), 2u);
  EXPECT_TRUE(proxy.SpecWf());

  NoninterferenceHarness harness(&scenario, /*seed=*/777);
  NoninterferenceOptions options;
  options.steps = 250;
  options.oc_every = 8;
  options.sc_every = 4;
  UnwindingReport report = harness.Run(options);
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_GT(report.iso_checks, 100u);

  InvResult wf = scenario.kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

}  // namespace
}  // namespace atmo
