// Syscall-ring edge cases under full refinement checking: SQ/CQ index
// wrap-around, full-ring submit rejection, empty drains, oversized-batch
// splitting, ring-aware sweep determinism, and replay-token reproduction of
// a check failure seeded into a ring-heavy trace.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/core/syscall_ring.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/sweep_harness.h"
#include "src/verif/trace_gen.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

Syscall RingSetupCall(std::uint32_t entries, std::uint32_t flags = 0) {
  Syscall c;
  c.op = SysOp::kRingSetup;
  c.ring_entries = entries;
  c.ring_flags = flags;
  return c;
}

// A deferred mmap of one 4K page at `va`, tagged with `user_data`.
Syscall RingSubmitMmap(std::uint64_t ring_id, VAddr va, std::uint64_t user_data) {
  Syscall c;
  c.op = SysOp::kRingSubmit;
  c.ring_id = ring_id;
  c.ring_op = SysOp::kMmap;
  c.ring_user_data = user_data;
  c.va_range = VaRange{va, 1, PageSize::k4K};
  c.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
  return c;
}

Syscall RingSubmitMunmap(std::uint64_t ring_id, VAddr va, std::uint64_t user_data) {
  Syscall c;
  c.op = SysOp::kRingSubmit;
  c.ring_id = ring_id;
  c.ring_op = SysOp::kMunmap;
  c.ring_user_data = user_data;
  c.va_range = VaRange{va, 1, PageSize::k4K};
  return c;
}

Syscall RingEnterCall(std::uint64_t ring_id, std::uint32_t budget = 0) {
  Syscall c;
  c.op = SysOp::kRingEnter;
  c.ring_id = ring_id;
  c.ring_budget = budget;
  return c;
}

constexpr VAddr kWindow = 0x100000;  // matches the TraceGen churn window base

// ---------------------------------------------------------------------------
// Wrap-around: free-running uint32 indices survive many times the capacity
// in total traffic (slot = index & (capacity-1), size = tail - head).
// ---------------------------------------------------------------------------

TEST(SyscallRingTest, SqCqWrapAroundSurvivesManyRounds) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel,
                            RefinementChecker::Options{.check_wf_every = 1, .audit_every = 1});
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  SyscallRet setup = checker.Step(t, RingSetupCall(4));
  ASSERT_TRUE(setup.ok());
  std::uint64_t ring = setup.value;

  // 12 rounds of (mmap, munmap) through a capacity-4 ring = 24 entries, six
  // times the capacity: every slot is reused and the head/tail indices pass
  // several wrap points. CQ entries are reaped between rounds via RingReap
  // (an external mutation the dirty log absorbs, like RingPushDirect).
  for (std::uint64_t round = 0; round < 12; ++round) {
    ASSERT_TRUE(checker.Step(t, RingSubmitMmap(ring, kWindow, round * 2)).ok());
    ASSERT_TRUE(checker.Step(t, RingSubmitMunmap(ring, kWindow, round * 2 + 1)).ok());
    SyscallRet enter = checker.Step(t, RingEnterCall(ring));
    ASSERT_TRUE(enter.ok());
    EXPECT_EQ(enter.value, 2u);

    RingCqEntry cqes[4];
    ASSERT_EQ(f.kernel.RingReap(t, ring, cqes, 4), 2u);
    EXPECT_EQ(cqes[0].user_data, round * 2);
    EXPECT_EQ(cqes[0].ret.error, SysError::kOk);
    EXPECT_EQ(cqes[1].user_data, round * 2 + 1);
    EXPECT_EQ(cqes[1].ret.error, SysError::kOk);
  }
  const SyscallRing& r = f.kernel.rings().Get(ring);
  EXPECT_TRUE(r.SqEmpty());
  EXPECT_EQ(r.CqSize(), 0u);
}

// ---------------------------------------------------------------------------
// Full-ring rejection and empty drains.
// ---------------------------------------------------------------------------

TEST(SyscallRingTest, SubmitToFullSqIsRejectedWithCapacity) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(4)).value;
  for (std::uint64_t i = 0; i < 4; ++i) {
    SyscallRet s = checker.Step(t, RingSubmitMmap(ring, kWindow + i * kPageSize4K, i));
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value, i + 1);  // returns the post-push SQ depth
  }
  // Fifth entry: SQ full → kCapacity, and failure atomicity means the
  // checker proved Ψ' == Ψ for the rejected submit.
  EXPECT_EQ(checker.Step(t, RingSubmitMmap(ring, kWindow + 4 * kPageSize4K, 99)).error,
            SysError::kCapacity);
  EXPECT_EQ(f.kernel.rings().Get(ring).SqSize(), 4u);
}

TEST(SyscallRingTest, EmptyRingDrainIsOkZero) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(8)).value;
  SyscallRet enter = checker.Step(t, RingEnterCall(ring));
  EXPECT_TRUE(enter.ok());
  EXPECT_EQ(enter.value, 0u);

  // Bogus ring ids and foreign rings stay precise errors.
  EXPECT_EQ(checker.Step(t, RingEnterCall(9999)).error, SysError::kInvalid);
  EXPECT_EQ(checker.Step(f.thrds[1], RingEnterCall(ring)).error, SysError::kDenied);
}

// ---------------------------------------------------------------------------
// Oversized batches split: by caller budget and by CQ free space. The
// remainder stays queued for the next kRingEnter.
// ---------------------------------------------------------------------------

TEST(SyscallRingTest, OversizedBatchSplitsOnBudget) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(8)).value;
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(checker.Step(t, RingSubmitMmap(ring, kWindow + i * kPageSize4K, i)).ok());
  }
  SyscallRet first = checker.Step(t, RingEnterCall(ring, /*budget=*/4));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value, 4u);
  EXPECT_EQ(f.kernel.rings().Get(ring).SqSize(), 2u);

  SyscallRet rest = checker.Step(t, RingEnterCall(ring));
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest.value, 2u);
  EXPECT_TRUE(f.kernel.rings().Get(ring).SqEmpty());
  EXPECT_EQ(f.kernel.rings().Get(ring).CqSize(), 6u);

  // Completions preserved submission order across the split.
  RingCqEntry cqes[8];
  ASSERT_EQ(f.kernel.RingReap(t, ring, cqes, 8), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(cqes[i].user_data, i);
  }
}

TEST(SyscallRingTest, DrainStopsWhenCqHasNoFreeSpace) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(4)).value;
  auto fill_and_drain = [&] {
    for (std::uint64_t i = 0; i < 4; ++i) {
      VAddr va = kWindow + i * kPageSize4K;
      EXPECT_TRUE(checker.Step(t, RingSubmitMunmap(ring, va, i)).ok());
    }
    return checker.Step(t, RingEnterCall(ring));
  };
  SyscallRet first = fill_and_drain();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value, 4u);  // CQ now full (nothing reaped)

  SyscallRet second = fill_and_drain();
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value, 0u);  // no CQ space: drained nothing
  EXPECT_EQ(f.kernel.rings().Get(ring).SqSize(), 4u);

  RingCqEntry cqes[4];
  ASSERT_EQ(f.kernel.RingReap(t, ring, cqes, 4), 4u);
  SyscallRet third = checker.Step(t, RingEnterCall(ring));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value, 4u);
}

// ---------------------------------------------------------------------------
// Ring-aware sweeps: deterministic across worker counts, exercise the
// batched-checking counters, and a seeded corruption in a ring-heavy trace
// is caught and reproduced exactly by its replay token.
// ---------------------------------------------------------------------------

SweepHarness::Options RingSweep(std::uint64_t seed, unsigned workers) {
  SweepHarness::Options options;
  options.master_seed = seed;
  options.shards = 4;
  options.steps_per_shard = 600;
  options.workers = workers;
  options.ring_ops = true;
  return options;
}

TEST(SyscallRingTest, RingSweepIsCleanAndDeterministicAcrossWorkers) {
  SweepReport one = SweepHarness(RingSweep(0x51b9, 1)).Run();
  SweepReport four = SweepHarness(RingSweep(0x51b9, 4)).Run();
  EXPECT_TRUE(one.AllOk());
  EXPECT_TRUE(four.AllOk());
  EXPECT_TRUE(one.SameOutcome(four));

  // The trace actually exercised every ring op, including successful drains
  // — so the amortization counters are live.
  auto row = [&](SysOp op) {
    std::uint64_t total = 0;
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      total += one.coverage.counts[static_cast<std::size_t>(op)][err];
    }
    return total;
  };
  EXPECT_GT(row(SysOp::kRingSetup), 0u);
  EXPECT_GT(row(SysOp::kRingSubmit), 0u);
  EXPECT_GT(row(SysOp::kRingEnter), 0u);
  EXPECT_GT(one.stats.batch_drains, 0u);
  EXPECT_GT(one.stats.batched_entries, 0u);
  EXPECT_EQ(one.stats.batch_drains, four.stats.batch_drains);
  EXPECT_EQ(one.stats.batched_entries, four.stats.batched_entries);
}

TEST(SyscallRingTest, ReplayTokenReproducesFailureInRingTrace) {
  constexpr std::uint64_t kBadShard = 1;
  constexpr std::uint64_t kBadStep = 211;

  SweepHarness::Options options = RingSweep(0xbadc0ffee, 2);
  options.checker.check_wf_every = 1;
  options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
    if (shard == kBadShard && step == kBadStep) {
      // Forge quota accounting behind the kernel's back; total_wf rejects it
      // at this exact step of the ring-heavy trace.
      f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
    }
  };
  SweepHarness harness(options);

  SweepReport report = harness.Run();
  EXPECT_FALSE(report.AllOk());
  ASSERT_EQ(report.Failures().size(), 1u);
  ReplayToken token = report.Failures()[0];
  EXPECT_EQ(token.shard, kBadShard);
  EXPECT_EQ(token.step, kBadStep);

  ShardResult replay = harness.Replay(token);
  EXPECT_FALSE(replay.ok);
  ASSERT_TRUE(replay.token.has_value());
  EXPECT_EQ(*replay.token, token);
  EXPECT_EQ(replay.failure, report.shards[kBadShard].failure);
  EXPECT_EQ(replay.steps, report.shards[kBadShard].steps);
  EXPECT_TRUE(replay.coverage == report.shards[kBadShard].coverage);

  // Without the fault the same ring-heavy seed is clean.
  options.fault_hook = nullptr;
  SweepReport clean = SweepHarness(options).Run();
  EXPECT_TRUE(clean.AllOk());
}

}  // namespace
}  // namespace atmo
