// Baseline tests: the Linux-like network and block layers deliver correct
// data (they are slow, not broken), and the seL4-like capability kernel's
// IPC/map fastpaths behave correctly.

#include <cstring>

#include <gtest/gtest.h>

#include "src/baseline/cap_kernel.h"
#include "src/baseline/linux_block.h"
#include "src/baseline/linux_net.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MacAddr kSrcMac{0x02, 0, 0, 0, 0, 0xaa};
constexpr MacAddr kDstMac{0x02, 0, 0, 0, 0, 0xbb};

class BaselineEnv : public ::testing::Test {
 protected:
  BaselineEnv()
      : mem_(16384),
        alloc_(16384, 1),
        iommu_(&mem_),
        domain_(iommu_.CreateDomain(&alloc_, kNullPtr)),
        arena_(&mem_, &alloc_, &iommu_, domain_, 0x100000),
        nic_(&mem_, &iommu_, 1),
        nvme_(&mem_, &iommu_, 1, 4096),
        nic_driver_(&arena_, &nic_, 64),
        nvme_driver_(&arena_, &nvme_, 64) {
    EXPECT_TRUE(iommu_.AttachDevice(domain_, 1));
    nic_driver_.Init();
    nvme_driver_.Init();
  }

  PhysMem mem_;
  PageAllocator alloc_;
  IommuManager iommu_;
  IommuDomainId domain_;
  DmaArena arena_;
  SimNic nic_;
  SimNvme nvme_;
  IxgbeDriver nic_driver_;
  NvmeDriver nvme_driver_;
};

TEST_F(BaselineEnv, LinuxNetDeliversPayloadThroughTheStack) {
  LinuxNetStack stack(&nic_driver_);
  stack.AddRoute(0x0a000000, 8);
  stack.OpenPort(7777);

  int produced = 0;
  nic_.SetPacketSource([&](std::uint8_t* buf) -> std::size_t {
    if (produced >= 3) {
      return 0;
    }
    ++produced;
    FiveTuple flow{.src_ip = 0x0b000001, .dst_ip = 0x0a000005, .src_port = 5,
                   .dst_port = 7777};
    return BuildUdpFrame(buf, kSrcMac, kDstMac, flow, "payload!", 8);
  });
  nic_.DeliverRx(8);

  std::uint8_t user_buf[64];
  for (int i = 0; i < 3; ++i) {
    std::size_t got = stack.Recv(user_buf, sizeof(user_buf));
    ASSERT_EQ(got, 8u) << "packet " << i;
    EXPECT_EQ(std::memcmp(user_buf, "payload!", 8), 0);
  }
  EXPECT_EQ(stack.Recv(user_buf, sizeof(user_buf)), 0u) << "queue drained";
  EXPECT_EQ(stack.delivered(), 3u);
}

TEST_F(BaselineEnv, LinuxNetDropsClosedPortsAndUnroutedPackets) {
  LinuxNetStack stack(&nic_driver_);
  stack.AddRoute(0x0a000000, 8);
  stack.OpenPort(7777);

  int produced = 0;
  nic_.SetPacketSource([&](std::uint8_t* buf) -> std::size_t {
    ++produced;
    if (produced == 1) {  // closed port
      FiveTuple flow{.src_ip = 1, .dst_ip = 0x0a000005, .src_port = 5, .dst_port = 9999};
      return BuildUdpFrame(buf, kSrcMac, kDstMac, flow, "x", 1);
    }
    if (produced == 2) {  // unrouted destination
      FiveTuple flow{.src_ip = 1, .dst_ip = 0x0c000005, .src_port = 5, .dst_port = 7777};
      return BuildUdpFrame(buf, kSrcMac, kDstMac, flow, "x", 1);
    }
    return 0;
  });
  nic_.DeliverRx(8);
  std::uint8_t user_buf[64];
  EXPECT_EQ(stack.Recv(user_buf, sizeof(user_buf)), 0u);
  EXPECT_EQ(stack.dropped(), 2u);
}

TEST_F(BaselineEnv, LinuxNetSendReachesTheWire) {
  LinuxNetStack stack(&nic_driver_);
  stack.AddRoute(0x0a000000, 8);
  std::size_t sunk = 0;
  nic_.SetPacketSink([&](const std::uint8_t* frame, std::size_t len) {
    auto parsed = ParseUdpFrame(frame, len);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->flow.dst_port, 80);
    ++sunk;
  });
  FiveTuple flow{.src_ip = 0x0a000001, .dst_ip = 0x0a000002, .src_port = 1000,
                 .dst_port = 80};
  EXPECT_TRUE(stack.Send(flow, reinterpret_cast<const std::uint8_t*>("hi"), 2));
  nic_.ProcessTx(4);
  EXPECT_EQ(sunk, 1u);
}

TEST_F(BaselineEnv, LinuxBlockRoundTrip) {
  LinuxBlockLayer block(&nvme_driver_);
  VAddr buf = nvme_driver_.AllocBuffer(1);
  std::uint8_t data[kNvmeBlockBytes];
  for (std::size_t i = 0; i < sizeof(data); ++i) {
    data[i] = static_cast<std::uint8_t>(i ^ 0x5a);
  }
  arena_.Write(buf, data, sizeof(data));

  AioRequest write{.write = true, .lba = 10, .blocks = 1, .buffer = buf, .user_tag = 77};
  ASSERT_EQ(block.SubmitBatch(&write, 1), 1u);
  nvme_.ProcessCommands(4);
  AioEvent events[4];
  ASSERT_EQ(block.GetEvents(events, 4), 1u);
  EXPECT_EQ(events[0].user_tag, 77u);
  EXPECT_FALSE(events[0].error);

  std::uint8_t out[kNvmeBlockBytes];
  nvme_.BackdoorRead(10, out, sizeof(out));
  EXPECT_EQ(std::memcmp(out, data, sizeof(out)), 0);
}

TEST_F(BaselineEnv, LinuxBlockElevatorSubmitsEverything) {
  LinuxBlockLayer block(&nvme_driver_);
  VAddr buf = nvme_driver_.AllocBuffer(1);
  AioRequest reqs[8];
  for (int i = 0; i < 8; ++i) {
    reqs[i] = AioRequest{.write = true, .lba = static_cast<std::uint64_t>(100 - i),
                         .blocks = 1, .buffer = buf,
                         .user_tag = static_cast<std::uint32_t>(i)};
  }
  ASSERT_EQ(block.SubmitBatch(reqs, 8), 8u);
  nvme_.ProcessCommands(8);
  AioEvent events[8];
  EXPECT_EQ(block.GetEvents(events, 8), 8u);
}

// ---------------------------------------------------------------------------
// CapKernel
// ---------------------------------------------------------------------------

class CapKernelTest : public ::testing::Test {
 protected:
  CapKernelTest() {
    client_ = ck_.CreateTcb();
    server_ = ck_.CreateTcb();
    ep_ = ck_.CreateEndpoint();
    client_ep_ = ck_.InstallCap(client_, CapType::kEndpoint, ep_, CapRights::kAll,
                                /*badge=*/0x1234);
    server_ep_ = ck_.InstallCap(server_, CapType::kEndpoint, ep_, CapRights::kAll);
  }

  CapKernel ck_;
  std::uint32_t client_ = 0;
  std::uint32_t server_ = 0;
  std::uint32_t ep_ = 0;
  std::uint32_t client_ep_ = 0;
  std::uint32_t server_ep_ = 0;
};

TEST_F(CapKernelTest, CallReplyFastpathTransfersMessage) {
  EXPECT_EQ(ck_.Recv(server_, server_ep_), CkStatus::kWouldBlock);
  EXPECT_EQ(ck_.Call(client_, client_ep_, {1, 2, 3, 4}), CkStatus::kDeliveredTo);
  EXPECT_EQ(ck_.MessageRegs(server_), (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ(ck_.Badge(server_), 0x1234u) << "badge identifies the caller";

  EXPECT_EQ(ck_.ReplyRecv(server_, server_ep_, {5, 6, 7, 8}), CkStatus::kWouldBlock);
  EXPECT_EQ(ck_.MessageRegs(client_), (std::array<std::uint64_t, 4>{5, 6, 7, 8}));
}

TEST_F(CapKernelTest, CallQueuesWithoutReceiver) {
  EXPECT_EQ(ck_.Call(client_, client_ep_, {9, 9, 9, 9}), CkStatus::kWouldBlock);
  EXPECT_EQ(ck_.Recv(server_, server_ep_), CkStatus::kOk);
  EXPECT_EQ(ck_.MessageRegs(server_)[0], 9u);
  EXPECT_EQ(ck_.ReplyRecv(server_, server_ep_, {1, 0, 0, 0}), CkStatus::kWouldBlock);
  EXPECT_EQ(ck_.MessageRegs(client_)[0], 1u);
}

TEST_F(CapKernelTest, InvalidCapsAreRejected) {
  EXPECT_EQ(ck_.Call(client_, 99, {0, 0, 0, 0}), CkStatus::kInvalidCap);
  std::uint32_t tcb_cap = ck_.InstallCap(client_, CapType::kTcb, server_, CapRights::kAll);
  EXPECT_EQ(ck_.Call(client_, tcb_cap, {0, 0, 0, 0}), CkStatus::kWrongType);
  std::uint32_t ro = ck_.InstallCap(client_, CapType::kEndpoint, ep_, CapRights::kRead);
  EXPECT_EQ(ck_.Call(client_, ro, {0, 0, 0, 0}), CkStatus::kNoRights);
  EXPECT_EQ(ck_.ReplyRecv(server_, server_ep_, {0, 0, 0, 0}), CkStatus::kInvalidCap)
      << "no reply cap outstanding";
}

TEST_F(CapKernelTest, MapUnmapPage) {
  std::uint32_t vspace = ck_.CreateVSpace();
  std::uint32_t frame = ck_.CreateFrame();
  std::uint32_t vcap = ck_.InstallCap(client_, CapType::kVSpace, vspace, CapRights::kAll);
  std::uint32_t fcap = ck_.InstallCap(client_, CapType::kFrame, frame, CapRights::kAll);

  EXPECT_EQ(ck_.MapPage(client_, fcap, vcap, 0x400000, CapRights::kAll), CkStatus::kOk);
  EXPECT_EQ(ck_.MapPage(client_, fcap, vcap, 0x500000, CapRights::kAll),
            CkStatus::kAlreadyMapped)
      << "a frame cap maps at most once";
  EXPECT_EQ(ck_.UnmapPage(client_, fcap), CkStatus::kOk);
  EXPECT_EQ(ck_.MapPage(client_, fcap, vcap, 0x500000, CapRights::kAll), CkStatus::kOk);
}

TEST_F(CapKernelTest, MapRejectsOccupiedSlot) {
  std::uint32_t vspace = ck_.CreateVSpace();
  std::uint32_t f1 = ck_.InstallCap(client_, CapType::kFrame, ck_.CreateFrame(),
                                    CapRights::kAll);
  std::uint32_t f2 = ck_.InstallCap(client_, CapType::kFrame, ck_.CreateFrame(),
                                    CapRights::kAll);
  std::uint32_t vcap = ck_.InstallCap(client_, CapType::kVSpace, vspace, CapRights::kAll);
  EXPECT_EQ(ck_.MapPage(client_, f1, vcap, 0x400000, CapRights::kAll), CkStatus::kOk);
  EXPECT_EQ(ck_.MapPage(client_, f2, vcap, 0x400000, CapRights::kAll),
            CkStatus::kAlreadyMapped);
}

TEST_F(CapKernelTest, PingPongManyRounds) {
  EXPECT_EQ(ck_.Recv(server_, server_ep_), CkStatus::kWouldBlock);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(ck_.Call(client_, client_ep_, {i, 0, 0, 0}), CkStatus::kDeliveredTo);
    ASSERT_EQ(ck_.MessageRegs(server_)[0], i);
    ASSERT_EQ(ck_.ReplyRecv(server_, server_ep_, {i + 1, 0, 0, 0}), CkStatus::kWouldBlock);
    ASSERT_EQ(ck_.MessageRegs(client_)[0], i + 1);
  }
}

}  // namespace
}  // namespace atmo
