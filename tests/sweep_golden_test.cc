// Sweep regression guard for the allocator / index rewrite.
//
// The refinement checker is the oracle that a concrete-kernel rewrite
// preserved semantics: every checked step compares the kernel against the
// abstract spec, so if the sweep below produces the same verdicts and the
// same op×error coverage matrix as it did before the rewrite, the rewrite
// did not change any observable syscall outcome on these workloads.
//
// The golden constants in tests/sweep_golden_data.h were captured on the
// pre-rewrite kernel (linear-scan allocator, unindexed lookups) by running
// this binary with ATMO_SWEEP_GOLDEN_REGEN=1, which prints a fresh header
// to stdout instead of asserting. Regenerate ONLY when a PR intentionally
// changes syscall semantics or the trace generator — never to paper over an
// unexplained mismatch.

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/verif/sweep_harness.h"
#include "tests/sweep_golden_data.h"

namespace atmo {
namespace {

SweepHarness::Options GoldenOptions() {
  SweepHarness::Options options;
  options.master_seed = kGoldenMasterSeed;
  options.shards = kGoldenShards;
  options.steps_per_shard = kGoldenStepsPerShard;
  options.workers = 4;
  return options;
}

void PrintGoldenHeader(const SweepReport& report) {
  std::printf("// Golden sweep outcome captured on the pre-rewrite kernel. See\n");
  std::printf("// tests/sweep_golden_test.cc for when regeneration is legitimate.\n");
  std::printf("#ifndef ATMO_TESTS_SWEEP_GOLDEN_DATA_H_\n");
  std::printf("#define ATMO_TESTS_SWEEP_GOLDEN_DATA_H_\n\n");
  std::printf("#include <cstdint>\n\n");
  std::printf("namespace atmo {\n\n");
  std::printf("inline constexpr std::uint64_t kGoldenMasterSeed = %lluull;\n",
              static_cast<unsigned long long>(kGoldenMasterSeed));
  std::printf("inline constexpr std::uint64_t kGoldenShards = %llu;\n",
              static_cast<unsigned long long>(kGoldenShards));
  std::printf("inline constexpr std::uint64_t kGoldenStepsPerShard = %llu;\n",
              static_cast<unsigned long long>(kGoldenStepsPerShard));
  std::printf("inline constexpr std::uint64_t kGoldenTotalSteps = %llu;\n",
              static_cast<unsigned long long>(report.total_steps));
  std::printf("inline constexpr std::uint64_t kGoldenCoverageTotal = %llu;\n",
              static_cast<unsigned long long>(report.coverage.Total()));
  std::printf("inline constexpr std::uint64_t kGoldenCoverageCells = %llu;\n\n",
              static_cast<unsigned long long>(report.coverage.NonZeroCells()));
  std::printf("// counts[op][error], flattened row-major (%zu x %zu).\n", kSysOpCount,
              kSysErrorCount);
  std::printf("inline constexpr std::uint64_t kGoldenCoverage[%zu * %zu] = {\n", kSysOpCount,
              kSysErrorCount);
  for (std::size_t op = 0; op < kSysOpCount; ++op) {
    std::printf("    ");
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      std::printf("%llu,%s", static_cast<unsigned long long>(report.coverage.counts[op][err]),
                  err + 1 == kSysErrorCount ? "\n" : " ");
    }
  }
  std::printf("};\n\n");
  std::printf("}  // namespace atmo\n\n");
  std::printf("#endif  // ATMO_TESTS_SWEEP_GOLDEN_DATA_H_\n");
}

// What to do when the golden comparison fails. Emitted once, ahead of the
// per-cell EXPECT_EQ diff, so the first thing a CI log shows is the policy
// rather than a wall of numbers.
constexpr char kStaleGoldenAdvice[] =
    "tests/sweep_golden_data.h no longer matches the sweep outcome.\n"
    "\n"
    "If this PR intentionally changes syscall semantics or the trace\n"
    "generator, regenerate the golden header locally and commit it:\n"
    "\n"
    "    ATMO_SWEEP_GOLDEN_REGEN=1 ./build/tests/sweep_golden_test \\\n"
    "        > tests/sweep_golden_data.h\n"
    "\n"
    "and say so in the commit message. If the change was NOT intentional,\n"
    "this is a semantics regression — do not regenerate; find the step that\n"
    "shifted an op/error cell below.";

TEST(SweepGoldenTest, OutcomeMatchesPreRewriteGolden) {
  SweepReport report = SweepHarness(GoldenOptions()).Run();

  if (std::getenv("ATMO_SWEEP_GOLDEN_REGEN") != nullptr) {
    // Regeneration bypasses every assertion, so it must never run where the
    // result silently becomes the new truth: CI refuses it outright (see
    // ci/run_tests.sh, which also rejects the variable before building).
    if (std::getenv("CI") != nullptr || std::getenv("GITHUB_ACTIONS") != nullptr) {
      FAIL() << "ATMO_SWEEP_GOLDEN_REGEN is set in a CI environment. "
                "Regeneration is a local, deliberate act: run it on your "
                "machine, review the header diff, and commit it. CI only "
                "verifies the committed golden.";
    }
    PrintGoldenHeader(report);
    GTEST_SKIP() << "regeneration mode: golden header printed, nothing asserted";
  }

  bool stale = report.total_steps != kGoldenTotalSteps ||
               report.coverage.Total() != kGoldenCoverageTotal ||
               report.coverage.NonZeroCells() != kGoldenCoverageCells;
  for (std::size_t op = 0; op < kSysOpCount && !stale; ++op) {
    for (std::size_t err = 0; err < kSysErrorCount && !stale; ++err) {
      stale = report.coverage.counts[op][err] != kGoldenCoverage[op * kSysErrorCount + err];
    }
  }
  if (stale) {
    ADD_FAILURE() << kStaleGoldenAdvice;
  }

  // Verdicts: every shard checked every step with zero violations, exactly
  // as before the rewrite.
  EXPECT_TRUE(report.AllOk());
  EXPECT_TRUE(report.Failures().empty());
  EXPECT_EQ(report.total_steps, kGoldenTotalSteps);
  for (const ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.ok) << "shard " << shard.shard << ": " << shard.failure;
    EXPECT_EQ(shard.steps, kGoldenStepsPerShard) << "shard " << shard.shard;
  }

  // Coverage: the rewrite must not shift a single syscall outcome — the
  // op×error histogram is compared cell by cell.
  EXPECT_EQ(report.coverage.Total(), kGoldenCoverageTotal);
  EXPECT_EQ(report.coverage.NonZeroCells(), kGoldenCoverageCells);
  for (std::size_t op = 0; op < kSysOpCount; ++op) {
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      EXPECT_EQ(report.coverage.counts[op][err], kGoldenCoverage[op * kSysErrorCount + err])
          << "coverage[" << op << "][" << err << "]";
    }
  }
}

}  // namespace
}  // namespace atmo
