// kObsQuery differential tests: the introspection syscall must write an
// accurate counter snapshot into the caller's page while leaving Ψ exactly
// unchanged (the abstraction carries no byte contents), and every error arm
// must be failure-atomic. Each step runs under the refinement checker, so
// ObsQuerySpec and the all-false frame profile are evaluated on the spot.

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/obs/sampler.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/sweep_harness.h"
#include "src/verif/trace_gen.h"

namespace atmo {
namespace {

constexpr VAddr kSnapVa = 0x500000;
constexpr VAddr kRoVa = 0x501000;

Syscall MmapCall(VAddr va, bool writable) {
  Syscall mm;
  mm.op = SysOp::kMmap;
  mm.va_range = VaRange{va, 1, PageSize::k4K};
  mm.map_perm = MapEntryPerm{.writable = writable, .user = true, .no_execute = true};
  return mm;
}

Syscall ObsQueryCall(VAddr va) {
  Syscall q;
  q.op = SysOp::kObsQuery;
  q.va_range = VaRange{va, 1, PageSize::k4K};
  return q;
}

ObsQueryRecord ReadSnapshot(const Kernel& kernel, ProcPtr proc, VAddr va) {
  std::optional<MapEntry> entry = kernel.vm().Resolve(proc, va);
  EXPECT_TRUE(entry.has_value());
  ObsQueryRecord rec;
  kernel.mem().HwReadBytes(entry->addr, &rec, sizeof(rec));
  return rec;
}

TEST(ObsQueryTest, SnapshotMatchesCountersAndLeavesPsiUnchanged) {
  obs::ResetSamplerForTest();
  obs::SetTraceSamplePeriod(0);  // no sampling noise in dropped_samples

  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel);
  f.SetupIpcAndDma();
  ASSERT_TRUE(checker.Step(f.thrds[0], MmapCall(kSnapVa, true)).ok());

  // Give the caller a ring with two queued submissions so sq_depth is
  // nontrivial.
  Syscall rs;
  rs.op = SysOp::kRingSetup;
  rs.ring_entries = 8;
  SyscallRet ring = checker.Step(f.thrds[0], rs);
  ASSERT_TRUE(ring.ok());
  for (int i = 0; i < 2; ++i) {
    Syscall sub;
    sub.op = SysOp::kRingSubmit;
    sub.ring_id = ring.value;
    sub.ring_op = SysOp::kNewThread;
    ASSERT_TRUE(checker.Step(f.thrds[0], sub).ok());
  }

  AbstractKernel pre = f.kernel.Abstract();
  std::size_t expected_mappings = f.kernel.vm().TableOf(f.procs[0]).MappingCount();

  SyscallRet ret = checker.Step(f.thrds[0], ObsQueryCall(kSnapVa));
  ASSERT_TRUE(ret.ok());
  EXPECT_EQ(ret.value, sizeof(ObsQueryRecord));

  // Ψ' == Ψ modulo the written page — and Ψ has no page contents, so the
  // abstraction must be *exactly* unchanged.
  AbstractKernel post = f.kernel.Abstract();
  EXPECT_TRUE(pre == post);

  ObsQueryRecord rec = ReadSnapshot(f.kernel, f.procs[0], kSnapVa);
  EXPECT_EQ(rec.magic, kObsQueryMagic);
  EXPECT_EQ(rec.version, kObsQueryVersion);
  EXPECT_EQ(rec.mapped_pages, expected_mappings);
  EXPECT_EQ(rec.borrows_lent, 0u);
  EXPECT_EQ(rec.borrows_held, 0u);
  EXPECT_EQ(rec.ring_sq_depth, 2u);
  EXPECT_EQ(rec.ring_cq_depth, 0u);
  EXPECT_EQ(rec.dropped_samples, 0u);
}

TEST(ObsQueryTest, SnapshotSeesBorrowsAndDroppedSamples) {
  obs::ResetSamplerForTest();
  obs::SetTraceSamplePeriod(4);
  // One sampled (the first), three dropped.
  for (int i = 0; i < 4; ++i) {
    obs::NextTraceId();
  }

  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel);
  f.SetupIpcAndDma();
  // Lender page in procs[0], snapshot pages on both sides.
  ASSERT_TRUE(checker.Step(f.thrds[0], MmapCall(kSnapVa, true)).ok());
  ASSERT_TRUE(checker.Step(f.thrds[2], MmapCall(kSnapVa, true)).ok());
  ASSERT_TRUE(checker.Step(f.thrds[0], MmapCall(0x600000, true)).ok());

  // Borrow-grant 0x600000 from procs[0] to procs[1] over the bound endpoint.
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  SyscallRet blocked = checker.Step(f.thrds[2], recv);
  ASSERT_EQ(blocked.error, SysError::kBlocked);
  Syscall send;
  send.op = SysOp::kSend;
  send.edpt_idx = 0;
  send.payload.page = PageGrant{.page = 0x600000,
                                .size = PageSize::k4K,
                                .dest_va = TraceFixture::kGrantVaBase,
                                .perm = MapEntryPerm{.writable = false, .user = true,
                                                     .no_execute = true},
                                .mode = GrantMode::kBorrow};
  ASSERT_TRUE(checker.Step(f.thrds[0], send).ok());

  ASSERT_TRUE(checker.Step(f.thrds[0], ObsQueryCall(kSnapVa)).ok());
  ObsQueryRecord lender = ReadSnapshot(f.kernel, f.procs[0], kSnapVa);
  EXPECT_EQ(lender.borrows_lent, 1u);
  EXPECT_EQ(lender.borrows_held, 0u);
  EXPECT_EQ(lender.dropped_samples, 3u);

  ASSERT_TRUE(checker.Step(f.thrds[2], ObsQueryCall(kSnapVa)).ok());
  ObsQueryRecord borrower = ReadSnapshot(f.kernel, f.procs[1], kSnapVa);
  EXPECT_EQ(borrower.borrows_lent, 0u);
  EXPECT_EQ(borrower.borrows_held, 1u);

  obs::ResetSamplerForTest();
}

TEST(ObsQueryTest, ErrorArmsAreFailureAtomic) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel);
  f.SetupIpcAndDma();
  ASSERT_TRUE(checker.Step(f.thrds[0], MmapCall(kRoVa, false)).ok());

  AbstractKernel pre = f.kernel.Abstract();

  // Unmapped destination.
  EXPECT_EQ(checker.Step(f.thrds[0], ObsQueryCall(0x700000)).error, SysError::kInvalid);
  // Interior (non-base) destination.
  EXPECT_EQ(checker.Step(f.thrds[0], ObsQueryCall(kRoVa + 0x40)).error,
            SysError::kInvalid);
  // Read-only mapping.
  EXPECT_EQ(checker.Step(f.thrds[0], ObsQueryCall(kRoVa)).error, SysError::kDenied);

  AbstractKernel post = f.kernel.Abstract();
  EXPECT_TRUE(pre == post);
}

// TraceGen coverage: an obs-mode sweep is clean under the checker and
// actually exercises the op's success and error arms.
TEST(ObsQueryTest, ObsSweepIsCleanWithCoverage) {
  SweepHarness::Options options;
  options.master_seed = 0x0b5;
  options.shards = 4;
  options.steps_per_shard = 600;
  options.workers = 2;
  options.obs_ops = true;
  options.grant_ops = true;  // loans populate the borrow counters
  SweepReport report = SweepHarness(options).Run();
  EXPECT_TRUE(report.AllOk())
      << (report.shards.empty() ? "" : report.shards[0].failure);

  auto count = [&](SysError err) {
    return report.coverage.counts[static_cast<std::size_t>(SysOp::kObsQuery)]
                                 [static_cast<std::size_t>(err)];
  };
  EXPECT_GT(count(SysError::kOk), 0u);
  EXPECT_GT(count(SysError::kInvalid), 0u);
  EXPECT_GT(count(SysError::kDenied), 0u);
}

}  // namespace
}  // namespace atmo
