// Packet-layer tests: frame construction/parsing, checksums, corruption
// detection, destination rewriting, and FNV hashing.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/net/packet.h"

namespace atmo {
namespace {

constexpr MacAddr kSrc{0x02, 0x11, 0x22, 0x33, 0x44, 0x55};
constexpr MacAddr kDst{0x02, 0xaa, 0xbb, 0xcc, 0xdd, 0xee};

FiveTuple Flow() {
  return FiveTuple{.src_ip = 0x0a000001, .dst_ip = 0x0a000002, .src_port = 1234,
                   .dst_port = 5678};
}

TEST(PacketTest, BuildParseRoundTrip) {
  std::uint8_t frame[kMaxFrameLen];
  const char payload[] = "twelve bytes";
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, Flow(), payload, 12);
  EXPECT_GE(len, kMinFrameLen);

  auto parsed = ParseUdpFrame(frame, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flow, Flow());
  EXPECT_EQ(parsed->src_mac, kSrc);
  EXPECT_EQ(parsed->dst_mac, kDst);
  EXPECT_EQ(parsed->payload_len, 12u);
  EXPECT_EQ(std::memcmp(parsed->payload, payload, 12), 0);
}

TEST(PacketTest, FinishUdpFrameMatchesBuildUdpFrame) {
  // The zero-copy egress path places the payload first and wraps headers
  // around it; the result must be byte-identical to the copying builder for
  // every payload length class (empty, padded, typical, max).
  for (std::size_t plen : {std::size_t{0}, std::size_t{5}, std::size_t{17},
                           std::size_t{100}, kMaxFrameLen - kHeadersLen}) {
    std::vector<std::uint8_t> payload(plen);
    for (std::size_t i = 0; i < plen; ++i) {
      payload[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    std::uint8_t built[kMaxFrameLen] = {};
    std::size_t built_len = BuildUdpFrame(built, kSrc, kDst, Flow(), payload.data(), plen);

    std::uint8_t finished[kMaxFrameLen] = {};
    std::memcpy(finished + kHeadersLen, payload.data(), plen);  // payload pre-placed
    std::size_t finished_len = FinishUdpFrame(finished, kSrc, kDst, Flow(), plen);

    ASSERT_EQ(finished_len, built_len) << "payload len " << plen;
    EXPECT_EQ(std::memcmp(finished, built, built_len), 0) << "payload len " << plen;
    auto parsed = ParseUdpFrame(finished, finished_len);
    ASSERT_TRUE(parsed.has_value()) << "payload len " << plen;
    EXPECT_EQ(parsed->payload_len, plen);
  }
}

TEST(PacketTest, MinimumFramePadding) {
  std::uint8_t frame[kMaxFrameLen];
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, Flow(), "", 0);
  EXPECT_EQ(len, kMinFrameLen) << "64-byte wire frames (60 + FCS)";
  auto parsed = ParseUdpFrame(frame, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_len, 0u);
}

TEST(PacketTest, LargePayload) {
  std::uint8_t frame[kMaxFrameLen];
  std::vector<std::uint8_t> payload(kMaxFrameLen - kHeadersLen);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i);
  }
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, Flow(), payload.data(), payload.size());
  EXPECT_EQ(len, kMaxFrameLen);
  auto parsed = ParseUdpFrame(frame, len);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->payload_len, payload.size());
  EXPECT_EQ(std::memcmp(parsed->payload, payload.data(), payload.size()), 0);
}

TEST(PacketTest, CorruptIpHeaderRejected) {
  std::uint8_t frame[kMaxFrameLen];
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, Flow(), "x", 1);
  frame[kEthHeaderLen + 8] ^= 0xff;  // flip the TTL without fixing checksum
  EXPECT_FALSE(ParseUdpFrame(frame, len).has_value());
}

TEST(PacketTest, NonIpv4Rejected) {
  std::uint8_t frame[kMaxFrameLen];
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, Flow(), "x", 1);
  PutU16(frame + 12, 0x0806);  // ARP ethertype
  EXPECT_FALSE(ParseUdpFrame(frame, len).has_value());
}

TEST(PacketTest, TruncatedFrameRejected) {
  std::uint8_t frame[kMaxFrameLen];
  BuildUdpFrame(frame, kSrc, kDst, Flow(), "x", 1);
  EXPECT_FALSE(ParseUdpFrame(frame, kHeadersLen - 1).has_value());
  EXPECT_FALSE(ParseUdpFrame(frame, 0).has_value());
}

TEST(PacketTest, NonUdpProtocolRejected) {
  std::uint8_t frame[kMaxFrameLen];
  FiveTuple tcp = Flow();
  tcp.proto = 6;
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, tcp, "x", 1);
  EXPECT_FALSE(ParseUdpFrame(frame, len).has_value());
}

TEST(PacketTest, RewriteDestinationKeepsFrameValid) {
  std::uint8_t frame[kMaxFrameLen];
  std::size_t len = BuildUdpFrame(frame, kSrc, kDst, Flow(), "payload", 7);
  MacAddr new_mac{0x02, 9, 9, 9, 9, 9};
  RewriteDestination(frame, len, new_mac, 0x0a0000ff);

  auto parsed = ParseUdpFrame(frame, len);
  ASSERT_TRUE(parsed.has_value()) << "checksum must be refreshed";
  EXPECT_EQ(parsed->dst_mac, new_mac);
  EXPECT_EQ(parsed->flow.dst_ip, 0x0a0000ffu);
  EXPECT_EQ(parsed->flow.src_ip, Flow().src_ip) << "source untouched";
  EXPECT_EQ(std::memcmp(parsed->payload, "payload", 7), 0) << "payload untouched";
}

TEST(PacketTest, InternetChecksumKnownVector) {
  // RFC 1071 example-style check: checksum of a buffer plus its checksum
  // verifies to zero.
  std::uint8_t data[20] = {0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11,
                           0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7};
  std::uint16_t sum = InternetChecksum(data, sizeof(data));
  EXPECT_EQ(sum, 0xb861) << "classic IPv4 header example";
  PutU16(data + 10, sum);
  EXPECT_EQ(InternetChecksum(data, sizeof(data)), 0);
}

TEST(PacketTest, FnvIsStableAndSpreads) {
  EXPECT_EQ(Fnv1a("", 0), 0xcbf29ce484222325ull) << "FNV-1a offset basis";
  std::uint64_t a = Fnv1a("a", 1);
  std::uint64_t b = Fnv1a("b", 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, Fnv1a("a", 1)) << "deterministic";
  // Distribution sanity: 1000 keys into 64 buckets, none empty-ish.
  int buckets[64] = {};
  for (int i = 0; i < 1000; ++i) {
    ++buckets[Fnv1a(&i, sizeof(i)) % 64];
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_GT(buckets[i], 2) << "bucket " << i;
    EXPECT_LT(buckets[i], 50) << "bucket " << i;
  }
}

TEST(PacketTest, EndianHelpers) {
  std::uint8_t buf[4];
  PutU32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 1);
  EXPECT_EQ(buf[3], 4);
  EXPECT_EQ(GetU32(buf), 0x01020304u);
  PutU16(buf, 0xbeef);
  EXPECT_EQ(GetU16(buf), 0xbeef);
}

}  // namespace
}  // namespace atmo
