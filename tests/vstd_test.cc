// Unit tests for the vstd substrate: spec collections, linear permissions,
// flat permission maps, and the internal-storage static list.

#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "src/vstd/check.h"
#include "src/vstd/permission_map.h"
#include "src/vstd/points_to.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_seq.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/static_list.h"
#include "src/vstd/types.h"

namespace atmo {
namespace {

// ---------------------------------------------------------------------------
// SpecMap
// ---------------------------------------------------------------------------

TEST(SpecMapTest, InsertRemoveContains) {
  SpecMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  SpecMap<int, std::string> m2 = m.insert(1, "one");
  EXPECT_FALSE(m.contains(1)) << "insert is functional: original unchanged";
  EXPECT_TRUE(m2.contains(1));
  EXPECT_EQ(m2.at(1), "one");
  SpecMap<int, std::string> m3 = m2.remove(1);
  EXPECT_FALSE(m3.contains(1));
  EXPECT_TRUE(m2.contains(1)) << "remove is functional: original unchanged";
}

TEST(SpecMapTest, ExtensionalEquality) {
  SpecMap<int, int> a = SpecMap<int, int>().insert(1, 10).insert(2, 20);
  SpecMap<int, int> b = SpecMap<int, int>().insert(2, 20).insert(1, 10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, b.insert(3, 30));
  EXPECT_NE(a, b.insert(1, 11));
}

TEST(SpecMapTest, ForAllAndExists) {
  SpecMap<int, int> m = SpecMap<int, int>().insert(1, 2).insert(2, 4).insert(3, 6);
  EXPECT_TRUE(m.ForAll([](int k, int v) { return v == 2 * k; }));
  EXPECT_FALSE(m.ForAll([](int k, int v) { return v > 2 * k; }));
  EXPECT_TRUE(m.Exists([](int k, int v) { return k == 2 && v == 4; }));
  EXPECT_FALSE(m.Exists([](int, int v) { return v == 5; }));
}

TEST(SpecMapTest, AgreeExceptAt) {
  using IntMap = SpecMap<int, int>;
  IntMap a = IntMap().insert(1, 10).insert(2, 20);
  IntMap b = a.insert(2, 99);
  EXPECT_TRUE(IntMap::AgreeExceptAt(a, b, 2));
  EXPECT_FALSE(IntMap::AgreeExceptAt(a, b, 1));
  // Key added on one side only, at the excluded key: still agreeing.
  IntMap c = a.remove(2);
  EXPECT_TRUE(IntMap::AgreeExceptAt(a, c, 2));
  EXPECT_FALSE(IntMap::AgreeExceptAt(a, c, 1));
}

TEST(SpecMapTest, Submap) {
  SpecMap<int, int> a = SpecMap<int, int>().insert(1, 10);
  SpecMap<int, int> b = a.insert(2, 20);
  EXPECT_TRUE(a.IsSubmapOf(b));
  EXPECT_FALSE(b.IsSubmapOf(a));
  EXPECT_TRUE(a.IsSubmapOf(a));
  EXPECT_FALSE(a.IsSubmapOf(b.insert(1, 11)));
}

TEST(SpecMapTest, AtOutsideDomainIsCheckFailure) {
  ScopedThrowOnCheckFailure guard;
  SpecMap<int, int> m;
  EXPECT_THROW(m.at(7), CheckViolation);
}

// ---------------------------------------------------------------------------
// SpecSet
// ---------------------------------------------------------------------------

TEST(SpecSetTest, BasicOps) {
  SpecSet<int> s{1, 2, 3};
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(4));
  SpecSet<int> s2 = s.insert(4);
  EXPECT_FALSE(s.contains(4));
  EXPECT_TRUE(s2.contains(4));
  EXPECT_FALSE(s2.remove(4).contains(4));
}

TEST(SpecSetTest, UnionIntersectDifference) {
  SpecSet<int> a{1, 2, 3};
  SpecSet<int> b{3, 4};
  EXPECT_EQ(a.Union(b), (SpecSet<int>{1, 2, 3, 4}));
  EXPECT_EQ(a.Intersect(b), (SpecSet<int>{3}));
  EXPECT_EQ(a.Difference(b), (SpecSet<int>{1, 2}));
}

TEST(SpecSetTest, DisjointnessAndSubset) {
  SpecSet<int> a{1, 2};
  SpecSet<int> b{3, 4};
  SpecSet<int> c{2, 3};
  EXPECT_TRUE(a.IsDisjointFrom(b));
  EXPECT_FALSE(a.IsDisjointFrom(c));
  EXPECT_TRUE((SpecSet<int>{1}).IsSubsetOf(a));
  EXPECT_FALSE(c.IsSubsetOf(a));
  EXPECT_TRUE(SpecSet<int>{}.IsDisjointFrom(a));
  EXPECT_TRUE(SpecSet<int>{}.IsSubsetOf(a));
}

TEST(SpecSetTest, Quantifiers) {
  SpecSet<int> s{2, 4, 6};
  EXPECT_TRUE(s.ForAll([](int x) { return x % 2 == 0; }));
  EXPECT_TRUE(s.Exists([](int x) { return x == 4; }));
  EXPECT_FALSE(s.Exists([](int x) { return x == 5; }));
}

// ---------------------------------------------------------------------------
// SpecSeq
// ---------------------------------------------------------------------------

TEST(SpecSeqTest, PushIndexSubrange) {
  SpecSeq<int> s;
  s = s.push(1).push(2).push(3);
  EXPECT_EQ(s.len(), 3u);
  EXPECT_EQ(s[0], 1);
  EXPECT_EQ(s.last(), 3);
  EXPECT_EQ(s.subrange(0, 2), (SpecSeq<int>{1, 2}));
  EXPECT_EQ(s.drop_last(), (SpecSeq<int>{1, 2}));
  EXPECT_TRUE(s.contains(2));
  EXPECT_FALSE(s.contains(9));
}

TEST(SpecSeqTest, PrefixAndDuplicates) {
  SpecSeq<int> a{1, 2};
  SpecSeq<int> b{1, 2, 3};
  EXPECT_TRUE(a.IsPrefixOf(b));
  EXPECT_FALSE(b.IsPrefixOf(a));
  EXPECT_TRUE(a.IsPrefixOf(a));
  EXPECT_FALSE((SpecSeq<int>{2, 1}).IsPrefixOf(b));
  EXPECT_TRUE(b.NoDuplicates());
  EXPECT_FALSE((SpecSeq<int>{1, 2, 1}).NoDuplicates());
}

TEST(SpecSeqTest, OutOfRangeIsCheckFailure) {
  ScopedThrowOnCheckFailure guard;
  SpecSeq<int> s{1};
  EXPECT_THROW(s.at(1), CheckViolation);
  EXPECT_THROW(s.subrange(0, 2), CheckViolation);
  EXPECT_THROW(SpecSeq<int>{}.last(), CheckViolation);
}

// ---------------------------------------------------------------------------
// PointsTo / PPtr — linearity discipline
// ---------------------------------------------------------------------------

TEST(PointsToTest, InitTakePut) {
  PointsTo<int> perm = PointsTo<int>::Init(0x1000, 42);
  EXPECT_TRUE(perm.is_init());
  EXPECT_EQ(perm.addr(), 0x1000u);
  EXPECT_EQ(perm.value(), 42);
  int v = perm.Take();
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(perm.is_init());
  perm.Put(7);
  EXPECT_EQ(perm.value(), 7);
}

TEST(PointsToTest, BorrowRequiresMatchingAddress) {
  ScopedThrowOnCheckFailure guard;
  PointsTo<int> perm = PointsTo<int>::Init(0x1000, 1);
  PPtr<int> right(0x1000);
  PPtr<int> wrong(0x2000);
  EXPECT_EQ(right.Borrow(perm), 1);
  EXPECT_THROW(wrong.Borrow(perm), CheckViolation);
}

TEST(PointsToTest, BorrowUninitializedIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PointsTo<int> perm = PointsTo<int>::Uninit(0x1000);
  PPtr<int> p(0x1000);
  EXPECT_THROW(p.Borrow(perm), CheckViolation);
  EXPECT_THROW(perm.value(), CheckViolation);
}

TEST(PointsToTest, UseAfterMoveIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PointsTo<int> perm = PointsTo<int>::Init(0x1000, 1);
  PointsTo<int> moved = std::move(perm);
  EXPECT_EQ(moved.value(), 1);
  EXPECT_THROW(perm.addr(), CheckViolation);  // NOLINT(bugprone-use-after-move)
}

TEST(PointsToTest, DoubleInitIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PointsTo<int> perm = PointsTo<int>::Init(0x1000, 1);
  EXPECT_THROW(perm.Put(2), CheckViolation);
}

TEST(PointsToTest, ReplaceSwapsValue) {
  PointsTo<int> perm = PointsTo<int>::Init(0x1000, 1);
  EXPECT_EQ(perm.Replace(9), 1);
  EXPECT_EQ(perm.value(), 9);
}

TEST(PointsToTest, MutationThroughBorrowMut) {
  PointsTo<int> perm = PointsTo<int>::Init(0x3000, 5);
  PPtr<int> p(0x3000);
  p.BorrowMut(perm) = 11;
  EXPECT_EQ(p.Borrow(perm), 11);
}

TEST(PointsToTest, CloneForVerificationIsIndependent) {
  PointsTo<int> perm = PointsTo<int>::Init(0x1000, 1);
  PointsTo<int> clone = perm.CloneForVerification();
  clone.value_mut() = 2;
  EXPECT_EQ(perm.value(), 1);
  EXPECT_EQ(clone.value(), 2);
  EXPECT_EQ(clone.addr(), perm.addr());
}

// ---------------------------------------------------------------------------
// PermissionMap — flat storage
// ---------------------------------------------------------------------------

TEST(PermissionMapTest, InsertBorrowRemove) {
  PermissionMap<int> map;
  map.TrackedInsert(PointsTo<int>::Init(0x1000, 10));
  map.TrackedInsert(PointsTo<int>::Init(0x2000, 20));
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.Get(0x1000), 10);
  map.GetMut(0x2000) = 21;
  EXPECT_EQ(map.Get(0x2000), 21);
  PointsTo<int> out = map.TrackedRemove(0x1000);
  EXPECT_EQ(out.value(), 10);
  EXPECT_FALSE(map.contains(0x1000));
}

TEST(PermissionMapTest, DuplicateInsertIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PermissionMap<int> map;
  map.TrackedInsert(PointsTo<int>::Init(0x1000, 10));
  EXPECT_THROW(map.TrackedInsert(PointsTo<int>::Init(0x1000, 11)), CheckViolation);
}

TEST(PermissionMapTest, RemoveAbsentIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PermissionMap<int> map;
  EXPECT_THROW(map.TrackedRemove(0x1000), CheckViolation);
  EXPECT_THROW(map.TrackedBorrow(0x1000), CheckViolation);
}

TEST(PermissionMapTest, DomAndForAll) {
  PermissionMap<int> map;
  map.TrackedInsert(PointsTo<int>::Init(0x1000, 1));
  map.TrackedInsert(PointsTo<int>::Init(0x2000, 2));
  EXPECT_EQ(map.Dom(), (SpecSet<Ptr>{0x1000, 0x2000}));
  EXPECT_TRUE(map.ForAll([](Ptr p, int v) { return p == v * 0x1000u; }));
  EXPECT_FALSE(map.ForAll([](Ptr, int v) { return v > 1; }));
}

TEST(PermissionMapTest, CloneForVerificationDeepCopies) {
  PermissionMap<int> map;
  map.TrackedInsert(PointsTo<int>::Init(0x1000, 1));
  PermissionMap<int> clone = map.CloneForVerification();
  clone.GetMut(0x1000) = 99;
  EXPECT_EQ(map.Get(0x1000), 1);
  EXPECT_EQ(clone.Get(0x1000), 99);
}

// ---------------------------------------------------------------------------
// StaticList
// ---------------------------------------------------------------------------

TEST(StaticListTest, PushPopOrder) {
  StaticList<int, 8> list;
  list.PushBack(1);
  list.PushBack(2);
  list.PushFront(0);
  EXPECT_EQ(list.len(), 3u);
  EXPECT_EQ(list.View(), (SpecSeq<int>{0, 1, 2}));
  EXPECT_EQ(list.PopFront(), 0);
  EXPECT_EQ(list.PopFront(), 1);
  EXPECT_EQ(list.PopFront(), 2);
  EXPECT_TRUE(list.empty());
}

TEST(StaticListTest, ConstantTimeRemovalBySlot) {
  StaticList<int, 8> list;
  list.PushBack(10);
  std::uint32_t mid = list.PushBack(20);
  list.PushBack(30);
  list.Remove(mid);
  EXPECT_EQ(list.View(), (SpecSeq<int>{10, 30}));
  EXPECT_TRUE(list.LinksWf());
}

TEST(StaticListTest, SlotReuseAfterRemoval) {
  StaticList<int, 2> list;
  std::uint32_t a = list.PushBack(1);
  list.PushBack(2);
  EXPECT_TRUE(list.full());
  list.Remove(a);
  list.PushBack(3);  // must reuse freed slot
  EXPECT_EQ(list.View(), (SpecSeq<int>{2, 3}));
  EXPECT_TRUE(list.LinksWf());
}

TEST(StaticListTest, CapacityExhaustionIsViolation) {
  ScopedThrowOnCheckFailure guard;
  StaticList<int, 2> list;
  list.PushBack(1);
  list.PushBack(2);
  EXPECT_THROW(list.PushBack(3), CheckViolation);
}

TEST(StaticListTest, FindAndRemoveValue) {
  StaticList<int, 4> list;
  list.PushBack(5);
  list.PushBack(6);
  EXPECT_TRUE(list.Contains(6));
  list.RemoveValue(6);
  EXPECT_FALSE(list.Contains(6));
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(list.RemoveValue(6), CheckViolation);
}

TEST(StaticListTest, RemoveUnusedSlotIsViolation) {
  ScopedThrowOnCheckFailure guard;
  StaticList<int, 4> list;
  EXPECT_THROW(list.Remove(0), CheckViolation);
  EXPECT_THROW(list.At(3), CheckViolation);
  EXPECT_THROW(list.PopFront(), CheckViolation);
}

TEST(StaticListTest, IterationMatchesView) {
  StaticList<int, 8> list;
  for (int i = 0; i < 5; ++i) {
    list.PushBack(i);
  }
  int expect = 0;
  for (int v : list) {
    EXPECT_EQ(v, expect++);
  }
  EXPECT_EQ(expect, 5);
}

// Parameterized stress: random interleavings of push/remove stay well-formed.
class StaticListStressTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StaticListStressTest, RandomOpsPreserveLinksWf) {
  unsigned seed = GetParam();
  std::uint64_t state = seed * 2654435761u + 1;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  StaticList<int, 32> list;
  std::vector<std::pair<std::uint32_t, int>> live;  // (slot, value)
  std::vector<int> model;
  for (int step = 0; step < 500; ++step) {
    if (!list.full() && (live.empty() || next() % 2 == 0)) {
      int value = static_cast<int>(next() % 1000);
      std::uint32_t slot = list.PushBack(value);
      live.emplace_back(slot, value);
      model.push_back(value);
    } else {
      std::size_t pick = next() % live.size();
      list.Remove(live[pick].first);
      model.erase(std::find(model.begin(), model.end(), live[pick].second));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    ASSERT_TRUE(list.LinksWf()) << "step " << step;
    ASSERT_EQ(list.len(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticListStressTest, ::testing::Values(1u, 2u, 3u, 17u, 99u));

// ---------------------------------------------------------------------------
// Check infrastructure
// ---------------------------------------------------------------------------

TEST(CheckTest, ScopedHandlerRestoresPrevious) {
  {
    ScopedThrowOnCheckFailure outer;
    {
      ScopedThrowOnCheckFailure inner;
      EXPECT_THROW(ATMO_FAIL("inner"), CheckViolation);
    }
    EXPECT_THROW(ATMO_FAIL("outer still throwing"), CheckViolation);
  }
}

TEST(CheckTest, EventCarriesLocationAndMessage) {
  ScopedThrowOnCheckFailure guard;
  try {
    ATMO_CHECK(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const CheckViolation& v) {
    EXPECT_NE(std::string(v.event().file).find("vstd_test"), std::string::npos);
    EXPECT_EQ(v.event().message, "math is broken");
    EXPECT_NE(v.event().condition.find("1 == 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace atmo
