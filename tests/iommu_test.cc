// IOMMU subsystem unit tests: domains, device attachment, DMA translation
// faults, and table reuse of the page-table subsystem.

#include <gtest/gtest.h>

#include "src/iommu/iommu_manager.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = true};
constexpr MapEntryPerm kRo{.writable = false, .user = true, .no_execute = true};

class IommuTest : public ::testing::Test {
 protected:
  IommuTest() : mem_(4096), alloc_(4096, 1), iommu_(&mem_) {}

  PhysMem mem_;
  PageAllocator alloc_;
  IommuManager iommu_;
};

TEST_F(IommuTest, DomainCreateDestroy) {
  IommuDomainId d = iommu_.CreateDomain(&alloc_, 0x1000);
  ASSERT_NE(d, kNoIommuDomain);
  EXPECT_TRUE(iommu_.DomainExists(d));
  EXPECT_EQ(iommu_.DomainOwner(d), 0x1000u);
  EXPECT_EQ(iommu_.DomainPageCount(d), 1u);
  std::uint64_t free_before = alloc_.FreeCount(PageSize::k4K);
  iommu_.DestroyDomain(&alloc_, d);
  EXPECT_FALSE(iommu_.DomainExists(d));
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), free_before + 1);
}

TEST_F(IommuTest, UnattachedDeviceIsBlockedEntirely) {
  EXPECT_FALSE(iommu_.Translate(5, 0, false).has_value());
}

TEST_F(IommuTest, AttachTranslateDetach) {
  IommuDomainId d = iommu_.CreateDomain(&alloc_, 0x1000);
  ASSERT_TRUE(iommu_.AttachDevice(d, 7));
  EXPECT_EQ(iommu_.DomainOf(7), d);
  ASSERT_EQ(iommu_.MapDma(&alloc_, d, 0x10000, 0x300000, PageSize::k4K, kRw), MapError::kOk);

  auto hit = iommu_.Translate(7, 0x10123, /*write=*/true);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 0x300123u);
  EXPECT_FALSE(iommu_.Translate(7, 0x20000, false).has_value()) << "unmapped iova faults";

  iommu_.DetachDevice(7);
  EXPECT_FALSE(iommu_.Translate(7, 0x10000, false).has_value());
  EXPECT_EQ(iommu_.DomainOf(7), kNoIommuDomain);
}

TEST_F(IommuTest, WriteProtectionEnforced) {
  IommuDomainId d = iommu_.CreateDomain(&alloc_, 0x1000);
  ASSERT_TRUE(iommu_.AttachDevice(d, 7));
  ASSERT_EQ(iommu_.MapDma(&alloc_, d, 0x10000, 0x300000, PageSize::k4K, kRo), MapError::kOk);
  EXPECT_TRUE(iommu_.Translate(7, 0x10000, /*write=*/false).has_value());
  EXPECT_FALSE(iommu_.Translate(7, 0x10000, /*write=*/true).has_value());
}

TEST_F(IommuTest, DeviceAttachesToOneDomainOnly) {
  IommuDomainId d1 = iommu_.CreateDomain(&alloc_, 0x1000);
  IommuDomainId d2 = iommu_.CreateDomain(&alloc_, 0x2000);
  ASSERT_TRUE(iommu_.AttachDevice(d1, 7));
  EXPECT_FALSE(iommu_.AttachDevice(d2, 7));
  EXPECT_FALSE(iommu_.AttachDevice(999, 8)) << "unknown domain";
}

TEST_F(IommuTest, DomainsAreIsolatedFromEachOther) {
  IommuDomainId d1 = iommu_.CreateDomain(&alloc_, 0x1000);
  IommuDomainId d2 = iommu_.CreateDomain(&alloc_, 0x2000);
  ASSERT_TRUE(iommu_.AttachDevice(d1, 1));
  ASSERT_TRUE(iommu_.AttachDevice(d2, 2));
  ASSERT_EQ(iommu_.MapDma(&alloc_, d1, 0x10000, 0x300000, PageSize::k4K, kRw), MapError::kOk);
  EXPECT_TRUE(iommu_.Translate(1, 0x10000, false).has_value());
  EXPECT_FALSE(iommu_.Translate(2, 0x10000, false).has_value())
      << "device 2's domain has no such window";
  EXPECT_TRUE(iommu_.Wf());
}

TEST_F(IommuTest, UnmapDmaRemovesWindow) {
  IommuDomainId d = iommu_.CreateDomain(&alloc_, 0x1000);
  ASSERT_TRUE(iommu_.AttachDevice(d, 7));
  ASSERT_EQ(iommu_.MapDma(&alloc_, d, 0x10000, 0x300000, PageSize::k4K, kRw), MapError::kOk);
  auto removed = iommu_.UnmapDma(d, 0x10000);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->addr, 0x300000u);
  EXPECT_FALSE(iommu_.Translate(7, 0x10000, false).has_value());
}

TEST_F(IommuTest, OwnershipTransfer) {
  IommuDomainId d = iommu_.CreateDomain(&alloc_, 0x1000);
  iommu_.SetDomainOwner(d, 0x2000);
  EXPECT_EQ(iommu_.DomainOwner(d), 0x2000u);
  EXPECT_TRUE(iommu_.DomainsOwnedBy(0x2000).contains(d));
  EXPECT_FALSE(iommu_.DomainsOwnedBy(0x1000).contains(d));
}

TEST_F(IommuTest, DestroyDomainWithDevicesIsViolation) {
  ScopedThrowOnCheckFailure guard;
  IommuDomainId d = iommu_.CreateDomain(&alloc_, 0x1000);
  ASSERT_TRUE(iommu_.AttachDevice(d, 7));
  EXPECT_THROW(iommu_.DestroyDomain(&alloc_, d), CheckViolation);
}

}  // namespace
}  // namespace atmo
