// Parameterized property sweeps across the verified syscall surface:
// page-size × rights combinations through mmap/grant/munmap under full
// refinement checking, and allocator merge/split grids.

#include <optional>
#include <tuple>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace {

// ---------------------------------------------------------------------------
// mmap across every (page size, rights) combination
// ---------------------------------------------------------------------------

using MmapParam = std::tuple<PageSize, bool /*writable*/, bool /*nx*/>;

class MmapSweepTest : public ::testing::TestWithParam<MmapParam> {};

TEST_P(MmapSweepTest, MapResolveShareUnmapVerified) {
  auto [size, writable, nx] = GetParam();

  BootConfig config;
  // Big enough for a 1G superpage when needed.
  config.frames = size == PageSize::k1G ? 2 * (kPageSize1G / kPageSize4K)
                                        : 4 * (kPageSize2M / kPageSize4K);
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  RefinementChecker checker(&kernel, /*check_wf_every=*/1);

  std::uint64_t quota = PageFrames4K(size) + 64;
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), quota, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);
  auto peer_proc = kernel.BootCreateProcess(ctnr.value);
  auto peer = kernel.BootCreateThread(peer_proc.value);

  MapEntryPerm perm{.writable = writable, .user = true, .no_execute = nx};
  VAddr va = PageBytes(size);  // naturally aligned, nonzero

  Syscall mmap;
  mmap.op = SysOp::kMmap;
  mmap.va_range = VaRange{va, 1, size};
  mmap.map_perm = perm;
  SyscallRet ret = checker.Step(thrd.value, mmap);
  if (ret.error == SysError::kQuotaExceeded && size == PageSize::k1G) {
    GTEST_SKIP() << "1G quota carve did not fit this machine";
  }
  ASSERT_EQ(ret.error, SysError::kOk);

  // The MMU agrees on size and rights at several probe offsets.
  PAddr cr3 = kernel.vm().TableOf(proc.value).cr3();
  for (std::uint64_t probe : {std::uint64_t{0}, PageBytes(size) / 3, PageBytes(size) - 8}) {
    auto walk = kernel.mmu().Walk(cr3, va + probe);
    ASSERT_TRUE(walk.has_value()) << probe;
    EXPECT_EQ(walk->size, size);
    EXPECT_EQ(walk->perm.writable, writable);
    EXPECT_EQ(walk->perm.no_execute, nx);
  }
  EXPECT_EQ(kernel.mmu().Permits(cr3, va, Mmu::Access::kWrite, true), writable);
  EXPECT_EQ(kernel.mmu().Permits(cr3, va, Mmu::Access::kExecute, true), !nx);

  // Grant the page to the peer at the same rights (never amplified).
  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet e = checker.Step(thrd.value, ne);
  ASSERT_TRUE(e.ok());
  ASSERT_EQ(kernel.pm_mut().BindEndpoint(peer.value, 0, e.value), ProcError::kOk);
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  ASSERT_EQ(checker.Step(peer.value, recv).error, SysError::kBlocked);
  Syscall send;
  send.op = SysOp::kSend;
  send.edpt_idx = 0;
  send.payload.page =
      PageGrant{.page = va, .size = size, .dest_va = 8 * PageBytes(size), .perm = perm};
  ASSERT_EQ(checker.Step(thrd.value, send).error, SysError::kOk);
  PagePtr frame = kernel.vm().Resolve(proc.value, va)->addr;
  EXPECT_EQ(kernel.alloc().MapCount(frame), 2u);

  // Unmap on both sides: the superpage returns whole to its free list.
  Syscall munmap;
  munmap.op = SysOp::kMunmap;
  munmap.va_range = VaRange{va, 1, size};
  ASSERT_EQ(checker.Step(thrd.value, munmap).error, SysError::kOk);
  munmap.va_range = VaRange{8 * PageBytes(size), 1, size};
  ASSERT_EQ(checker.Step(peer.value, munmap).error, SysError::kOk);
  EXPECT_EQ(kernel.alloc().StateOf(frame), PageState::kFree);
  EXPECT_EQ(kernel.alloc().SizeClassOf(frame), size);
}

std::string MmapParamName(const ::testing::TestParamInfo<MmapParam>& info) {
  PageSize size = std::get<0>(info.param);
  std::string name = size == PageSize::k4K   ? "s4K"
                     : size == PageSize::k2M ? "s2M"
                                             : "s1G";
  name += std::get<1>(info.param) ? "_rw" : "_ro";
  name += std::get<2>(info.param) ? "_nx" : "_x";
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRights, MmapSweepTest,
    ::testing::Combine(::testing::Values(PageSize::k4K, PageSize::k2M, PageSize::k1G),
                       ::testing::Bool(), ::testing::Bool()),
    MmapParamName);

// ---------------------------------------------------------------------------
// Allocator merge/split grid: every (merge target, churn pattern) pair
// restores a fully well-formed allocator.
// ---------------------------------------------------------------------------

class MergeGridTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MergeGridTest, MergeSplitChurnConserves) {
  auto [units, churn] = GetParam();
  std::uint64_t frames_per_2m = kPageSize2M / kPageSize4K;
  std::uint64_t total = (static_cast<std::uint64_t>(units) + 1) * frames_per_2m;
  PageAllocator alloc(total, frames_per_2m);
  std::uint64_t managed = total - frames_per_2m;

  for (int round = 0; round < churn; ++round) {
    // Punch allocation holes, free them, merge everything, split it back.
    std::vector<PageAlloc> holes;
    for (int h = 0; h < round + 1; ++h) {
      if (auto page = alloc.AllocPage4K(kNullPtr)) {
        holes.push_back(std::move(*page));
      }
    }
    // Merges fail while holes exist in the first unit, succeed after.
    for (PageAlloc& hole : holes) {
      alloc.FreePage(hole.ptr, std::move(hole.perm));
    }
    std::vector<PagePtr> merged;
    while (auto base = alloc.Merge2MAnywhere()) {
      merged.push_back(*base);
    }
    EXPECT_EQ(merged.size(), static_cast<std::size_t>(units));
    for (PagePtr base : merged) {
      alloc.Split2M(base);
    }
    ASSERT_TRUE(alloc.Wf()) << "round " << round;
    ASSERT_EQ(alloc.FreeCount(PageSize::k4K), managed);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, MergeGridTest,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3, 6)));

}  // namespace
}  // namespace atmo
