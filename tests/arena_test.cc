// Allocation-free hot paths (DESIGN.md §14): SpecArena stress tests, the
// checker's ping/pong arena recycling, and the pooled-vs-fresh
// CloneForVerification differential over randomized traces.
//
// The arena's safety argument is lifetime-based, not convention-based:
// ArenaAllocator holds shared ownership, Reset() refuses while anything is
// live, and cross-thread frees are counted instead of recycled. Each of
// those defenses is exercised here, including the failure directions.

#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/obs/alloc_hook.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/trace_gen.h"
#include "src/vstd/arena.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_seq.h"
#include "src/vstd/spec_set.h"

namespace atmo {
namespace {

// ---------------------------------------------------------------------------
// SpecArena mechanics
// ---------------------------------------------------------------------------

TEST(SpecArenaTest, AllocateRecycleReset) {
  SpecArena arena;
  void* a = arena.Allocate(24);   // class 32
  void* b = arena.Allocate(100);  // class 128
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena.live(), 2u);
  EXPECT_EQ(arena.stats().allocs, 2u);

  SpecArena::Deallocate(a);
  EXPECT_EQ(arena.live(), 1u);
  // Same size class comes back off the free list, not the bump cursor.
  void* a2 = arena.Allocate(24);
  EXPECT_EQ(a2, a);
  EXPECT_EQ(arena.stats().freelist_hits, 1u);

  SpecArena::Deallocate(a2);
  SpecArena::Deallocate(b);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_TRUE(arena.Reset());
  EXPECT_EQ(arena.stats().resets, 1u);

  // Post-reset allocations bump from the start of the first chunk again.
  void* c = arena.Allocate(24);
  EXPECT_EQ(c, a);
  SpecArena::Deallocate(c);
}

TEST(SpecArenaTest, ResetRefusedWhileLive) {
  SpecArena arena;
  void* p = arena.Allocate(64);
  EXPECT_FALSE(arena.Reset());
  EXPECT_EQ(arena.stats().refused_resets, 1u);
  SpecArena::Deallocate(p);
  EXPECT_TRUE(arena.Reset());
}

TEST(SpecArenaTest, OversizeFallsBackToHeap) {
  SpecArena arena;
  // Above kMaxClassBytes: served by the heap, not the arena (live stays 0,
  // so a Reset is still legal while the block is outstanding).
  void* big = arena.Allocate(SpecArena::kMaxClassBytes + 1);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.stats().heap_fallbacks, 1u);
  EXPECT_EQ(arena.live(), 0u);
  EXPECT_TRUE(arena.Reset());
  SpecArena::Deallocate(big);  // routed to the heap by the block header
}

TEST(SpecArenaTest, ChunkGrowthAndReuse) {
  // Minimum chunk size: each chunk holds only a few 4K-class blocks, so a
  // burst of allocations must grow the arena, and a Reset must make the
  // grown capacity reusable without further growth.
  SpecArena arena(/*reserve_bytes=*/0, /*chunk_bytes=*/SpecArena::kMaxClassBytes + 64);
  std::vector<void*> blocks;
  for (int i = 0; i < 16; ++i) {
    blocks.push_back(arena.Allocate(SpecArena::kMaxClassBytes));
  }
  std::uint64_t grown_chunks = arena.stats().chunks;
  EXPECT_GE(grown_chunks, 16u);

  for (void* p : blocks) {
    SpecArena::Deallocate(p);
  }
  ASSERT_TRUE(arena.Reset());
  for (int round = 0; round < 3; ++round) {
    blocks.clear();
    for (int i = 0; i < 16; ++i) {
      blocks.push_back(arena.Allocate(SpecArena::kMaxClassBytes));
    }
    for (void* p : blocks) {
      SpecArena::Deallocate(p);
    }
    ASSERT_TRUE(arena.Reset());
  }
  EXPECT_EQ(arena.stats().chunks, grown_chunks);  // capacity reused, not regrown
}

TEST(SpecArenaTest, ReserveBytesPreallocates) {
  SpecArena arena(3 * SpecArena::kDefaultChunkBytes);
  EXPECT_GE(arena.reserved(), 3u * SpecArena::kDefaultChunkBytes);
  std::uint64_t chunks = arena.stats().chunks;
  // A reserve-sized burst must not add chunks.
  std::vector<void*> blocks;
  for (int i = 0; i < 100; ++i) {
    blocks.push_back(arena.Allocate(1024));
  }
  EXPECT_EQ(arena.stats().chunks, chunks);
  for (void* p : blocks) {
    SpecArena::Deallocate(p);
  }
}

TEST(SpecArenaTest, ForeignFreeCountedNotRecycled) {
  SpecArena arena;
  void* p = arena.Allocate(64);
  std::thread other([p] { SpecArena::Deallocate(p); });
  other.join();
  EXPECT_EQ(arena.foreign_frees(), 1u);
  // The block was NOT recycled: live stays nonzero, so Reset refuses (a
  // skipped recycle) instead of handing the block's memory out again.
  EXPECT_EQ(arena.live(), 1u);
  EXPECT_FALSE(arena.Reset());
  void* q = arena.Allocate(64);
  EXPECT_NE(q, p);
  SpecArena::Deallocate(q);
}

// ---------------------------------------------------------------------------
// ArenaScope + spec-collection integration
// ---------------------------------------------------------------------------

TEST(ArenaScopeTest, ScopesNestAndRestore) {
  auto a = std::make_shared<SpecArena>();
  auto b = std::make_shared<SpecArena>();
  EXPECT_EQ(SpecArena::Current(), nullptr);
  {
    ArenaScope sa(a);
    EXPECT_EQ(SpecArena::Current().get(), a.get());
    {
      ArenaScope sb(b);
      EXPECT_EQ(SpecArena::Current().get(), b.get());
      {
        ArenaScope heap(nullptr);  // explicit heap window inside a scope
        EXPECT_EQ(SpecArena::Current(), nullptr);
      }
      EXPECT_EQ(SpecArena::Current().get(), b.get());
    }
    EXPECT_EQ(SpecArena::Current().get(), a.get());
  }
  EXPECT_EQ(SpecArena::Current(), nullptr);
}

TEST(ArenaScopeTest, SpecCollectionsDrawFromScopedArena) {
  auto arena = std::make_shared<SpecArena>();
  {
    ArenaScope scope(arena);
    SpecMap<int, int> m;
    m.set(1, 10);
    m.set(2, 20);
    SpecSet<int> s;
    s.add(7);
    SpecSeq<int> q{1, 2, 3};
    EXPECT_GT(arena->stats().allocs, 0u);
    EXPECT_EQ(m.at(2), 20);
    EXPECT_TRUE(s.contains(7));
    EXPECT_EQ(q.at(2), 3);
  }
  // Everything built in the scope died with it: the arena is recyclable.
  EXPECT_EQ(arena->live(), 0u);
  EXPECT_TRUE(arena->Reset());
}

TEST(ArenaScopeTest, EscapedRepKeepsArenaAliveAndBlocksReset) {
  auto arena = std::make_shared<SpecArena>();
  SpecMap<int, int> escaped;
  {
    ArenaScope scope(arena);
    SpecMap<int, int> m;
    m.set(1, 10);
    escaped = m;  // shares the arena-backed rep beyond the scope
  }
  EXPECT_GT(arena->live(), 0u);
  EXPECT_FALSE(arena->Reset());  // refused, not use-after-reset
  EXPECT_EQ(escaped.at(1), 10);  // the escaped rep is fully usable

  // A uniquely-owned escaped rep mutates in place and keeps drawing from
  // the arena it was born under (the allocator captured shared ownership at
  // detach time) — no dangling, no heap migration.
  std::uint64_t live_before = arena->live();
  escaped.set(2, 20);
  EXPECT_EQ(escaped.at(2), 20);
  EXPECT_GT(arena->live(), live_before);

  // A *shared* rep mutated outside any scope detaches onto the heap.
  SpecMap<int, int> shared_copy = escaped;
  shared_copy.set(3, 30);
  EXPECT_EQ(shared_copy.at(3), 30);
  EXPECT_EQ(escaped.contains(3), false);

  // Dropping the last arena-backed rep makes the arena recyclable again.
  escaped = SpecMap<int, int>{};
  EXPECT_EQ(arena->live(), 0u);
  EXPECT_TRUE(arena->Reset());
  EXPECT_EQ(arena.use_count(), 1);  // nothing co-owns the arena any more
}

// ---------------------------------------------------------------------------
// Checker arena recycling across audit boundaries
// ---------------------------------------------------------------------------

TEST(CheckerArenaTest, ArenasRecycleAcrossAuditsAndAgreeWithHeapChecker) {
  TraceFixture arena_f = TraceFixture::Boot();
  TraceFixture heap_f = TraceFixture::Boot();
  RefinementChecker::Options arena_opt{.check_wf_every = 16, .audit_every = 32,
                                       .incremental = true, .use_arena = true,
                                       .arena_reserve_bytes = SpecArena::kDefaultChunkBytes};
  RefinementChecker::Options heap_opt{.check_wf_every = 16, .audit_every = 32,
                                      .incremental = true, .use_arena = false};
  RefinementChecker arena_c(&arena_f.kernel, arena_opt);
  RefinementChecker heap_c(&heap_f.kernel, heap_opt);
  for (TraceFixture* f : {&arena_f, &heap_f}) {
    f->SetupIpcAndDma();
  }

  constexpr int kSteps = 3000;
  TraceGen gen;
  for (int i = 0; i < kSteps; ++i) {
    TraceGen::Cmd cmd = gen.Gen(arena_f);
    SyscallRet r_arena = arena_c.Step(arena_f.thrds[cmd.thread_idx], cmd.call);
    SyscallRet r_heap = heap_c.Step(heap_f.thrds[cmd.thread_idx], cmd.call);
    ASSERT_EQ(r_arena.error, r_heap.error) << "step " << i;
    gen.Observe(cmd.call, r_arena);
    if (r_arena.error == SysError::kOk &&
        (cmd.call.op == SysOp::kSend || cmd.call.op == SysOp::kRecv)) {
      for (int ti = 0; ti < TraceFixture::kThreads; ++ti) {
        if (arena_f.kernel.HasInbound(arena_f.thrds[ti])) {
          arena_f.kernel.TakeInbound(arena_f.thrds[ti]);
          heap_f.kernel.TakeInbound(heap_f.thrds[ti]);
        }
      }
    }
    if (i % 256 == 0 || i == kSteps - 1) {
      ASSERT_TRUE(arena_f.kernel.Abstract() == heap_f.kernel.Abstract()) << "step " << i;
      ASSERT_TRUE(*arena_c.cached() == arena_f.kernel.Abstract()) << "step " << i;
    }
  }

  // The arenas actually carried the load and actually recycled: every audit
  // agreement flips the ping/pong pair and resets the retired arena.
  EXPECT_GT(arena_c.stats().arena_allocs, 0u);
  EXPECT_GT(arena_c.stats().arena_resets, 0u);
  EXPECT_EQ(heap_c.stats().arena_allocs, 0u);
  // Steady-state checking allocates >=10x less from the heap than the
  // heap-backed checker (the §14 claim, also gated in CI).
  if (obs::HeapCountingActive()) {
    EXPECT_LT(arena_c.stats().heap_allocs * 10, heap_c.stats().heap_allocs);
  }
  // No scope leaked: this test thread ends with no installed arena.
  EXPECT_EQ(SpecArena::Current(), nullptr);
}

// ---------------------------------------------------------------------------
// Pooled-vs-fresh CloneForVerification differential
// ---------------------------------------------------------------------------

TEST(PooledCloneTest, PooledRefillMatchesFreshCloneOverRandomizedTrace) {
  TraceFixture f = TraceFixture::Boot();
  f.SetupIpcAndDma();

  // The pool: one clone taken at boot and refilled in place forever after.
  Kernel pooled = f.kernel.CloneForVerification();

  constexpr int kSteps = 4000;
  constexpr int kCheckEvery = 157;  // odd cadence: refills hit varied states
  TraceGen gen;
  std::uint64_t refills = 0;
  for (int i = 0; i < kSteps; ++i) {
    TraceGen::Cmd cmd = gen.Gen(f);
    SyscallRet ret = f.kernel.Step(f.thrds[cmd.thread_idx], cmd.call);
    gen.Observe(cmd.call, ret);
    if (ret.error == SysError::kOk &&
        (cmd.call.op == SysOp::kSend || cmd.call.op == SysOp::kRecv)) {
      for (int ti = 0; ti < TraceFixture::kThreads; ++ti) {
        if (f.kernel.HasInbound(f.thrds[ti])) {
          f.kernel.TakeInbound(f.thrds[ti]);
        }
      }
    }

    if (i % kCheckEvery == 0 || i == kSteps - 1) {
      Kernel fresh = f.kernel.CloneForVerification();
      f.kernel.CloneForVerificationInto(&pooled);
      ++refills;
      // Abstract-state identity: the pooled refill IS a clone.
      ASSERT_TRUE(pooled.Abstract() == fresh.Abstract()) << "step " << i;
      ASSERT_TRUE(pooled.Abstract() == f.kernel.Abstract()) << "step " << i;
      // And a well-formed one.
      ASSERT_TRUE(pooled.TotalWf().ok) << "step " << i;
      // Clone semantics: the pooled copy starts with empty mutation logs.
      DirtySet dirty = pooled.DrainDirty();
      EXPECT_TRUE(dirty.Empty()) << "step " << i;
    }
  }
  ASSERT_GT(refills, 10u);

  // Steady state: refilling an already-shaped pool performs (almost) no
  // heap allocations — the §14 pooled-clone claim. The first refills grow
  // the pool's containers; by now its shape tracks the kernel's, so a
  // refill right after a refill must be allocation-light even though the
  // kernel state is nontrivial.
  if (obs::HeapCountingActive()) {
    f.kernel.CloneForVerificationInto(&pooled);
    obs::AllocProbe probe;
    f.kernel.CloneForVerificationInto(&pooled);
    std::uint64_t steady_allocs = probe.allocs();
    obs::AllocProbe fresh_probe;
    Kernel fresh = f.kernel.CloneForVerification();
    std::uint64_t fresh_allocs = fresh_probe.allocs();
    EXPECT_GT(fresh_allocs, 100u);  // a fresh clone rebuilds the whole image
    EXPECT_LT(steady_allocs * 10, fresh_allocs)
        << "pooled refill should allocate >=10x less than a fresh clone";
  }
}

}  // namespace
}  // namespace atmo
