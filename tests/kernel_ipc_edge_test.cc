// IPC and lifecycle edge cases: IOMMU-domain delegation over IPC, capacity
// limits of every bounded kernel structure, rendezvous teardown while
// blocked, and reply-after-exit behaviour.

#include <optional>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/verif/refinement_checker.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

Syscall Op(SysOp op) {
  Syscall call;
  call.op = op;
  return call;
}

class IpcEdgeTest : public ::testing::Test {
 protected:
  IpcEdgeTest() {
    BootConfig config;
    config.frames = 8192;
    config.reserved_frames = 16;
    kernel_.emplace(std::move(*Kernel::Boot(config)));
    checker_.emplace(&*kernel_, 2);
    auto a = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
    auto b = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
    ctnr_a_ = a.value;
    ctnr_b_ = b.value;
    auto pa = kernel_->BootCreateProcess(ctnr_a_);
    auto pb = kernel_->BootCreateProcess(ctnr_b_);
    proc_a_ = pa.value;
    proc_b_ = pb.value;
    ta_ = kernel_->BootCreateThread(proc_a_).value;
    tb_ = kernel_->BootCreateThread(proc_b_).value;

    Syscall ne = Op(SysOp::kNewEndpoint);
    ne.edpt_idx = 0;
    SyscallRet e = checker_->Step(ta_, ne);
    edpt_ = e.value;
    EXPECT_EQ(kernel_->pm_mut().BindEndpoint(tb_, 0, edpt_), ProcError::kOk);
  }

  SyscallRet Step(ThrdPtr t, const Syscall& call) { return checker_->Step(t, call); }

  std::optional<Kernel> kernel_;
  std::optional<RefinementChecker> checker_;
  CtnrPtr ctnr_a_ = kNullPtr;
  CtnrPtr ctnr_b_ = kNullPtr;
  ProcPtr proc_a_ = kNullPtr;
  ProcPtr proc_b_ = kNullPtr;
  ThrdPtr ta_ = kNullPtr;
  ThrdPtr tb_ = kNullPtr;
  EdptPtr edpt_ = kNullPtr;
};

// ---------------------------------------------------------------------------
// IOMMU domain delegation over IPC (the paper's "IOMMU identifiers" payload)
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, IommuDomainDelegationTransfersOwnershipAndCharge) {
  SyscallRet domain = Step(ta_, Op(SysOp::kIommuCreateDomain));
  ASSERT_EQ(domain.error, SysError::kOk);
  std::uint64_t used_a = kernel_->pm().GetContainer(ctnr_a_).mem_used;
  std::uint64_t used_b = kernel_->pm().GetContainer(ctnr_b_).mem_used;

  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.iommu = IommuGrant{.domain_id = domain.value};
  ASSERT_EQ(Step(ta_, send).error, SysError::kOk);

  EXPECT_EQ(kernel_->iommu().DomainOwner(domain.value), ctnr_b_);
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_a_).mem_used, used_a - 1)
      << "the domain's table page charge moved away from A";
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_b_).mem_used, used_b + 1);

  // B can now attach devices; A no longer can.
  Syscall attach = Op(SysOp::kIommuAttachDevice);
  attach.iommu_domain = domain.value;
  attach.device = 9;
  EXPECT_EQ(Step(ta_, attach).error, SysError::kDenied);
  EXPECT_EQ(Step(tb_, attach).error, SysError::kOk);
}

TEST_F(IpcEdgeTest, CannotDelegateForeignDomain) {
  // B creates a domain; A tries to "delegate" it without owning it.
  SyscallRet domain = Step(tb_, Op(SysOp::kIommuCreateDomain));
  ASSERT_EQ(domain.error, SysError::kOk);
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.iommu = IommuGrant{.domain_id = domain.value};
  EXPECT_EQ(Step(ta_, send).error, SysError::kDenied);
  EXPECT_EQ(kernel_->iommu().DomainOwner(domain.value), ctnr_b_);
}

TEST_F(IpcEdgeTest, DelegationDeniedWhenReceiverQuotaFull) {
  // Shrink B's headroom to zero, then try to move a domain's charge there.
  SyscallRet domain = Step(ta_, Op(SysOp::kIommuCreateDomain));
  ASSERT_EQ(domain.error, SysError::kOk);
  // Exhaust B's quota: shrinking mmap chunks until nothing fits.
  VAddr next_va = 0x4000000;
  for (std::uint64_t chunk : {256u, 64u, 16u, 4u, 1u}) {
    while (true) {
      Syscall hog = Op(SysOp::kMmap);
      hog.va_range = VaRange{next_va, chunk, PageSize::k4K};
      hog.map_perm = kRw;
      if (Step(tb_, hog).error != SysError::kOk) {
        break;
      }
      next_va += chunk * kPageSize4K;
    }
  }

  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.iommu = IommuGrant{.domain_id = domain.value};
  EXPECT_EQ(Step(ta_, send).error, SysError::kWouldFault);
  EXPECT_EQ(kernel_->iommu().DomainOwner(domain.value), ctnr_a_) << "nothing moved";
  EXPECT_EQ(kernel_->pm().GetThread(tb_).state, ThreadState::kBlockedRecv);
}

// ---------------------------------------------------------------------------
// Capacity limits
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, EndpointQueueCapacityBoundsBlockedSenders) {
  // Fill the wait queue with senders, then the next send fails kCapacity.
  // Senders are spread over several processes (threads-per-process is
  // itself bounded at kMaxProcThreads).
  std::vector<ThrdPtr> senders;
  ProcPtr host_proc = proc_a_;
  for (std::size_t i = 0; i < kMaxEdptWaiters; ++i) {
    if (i % 12 == 0) {
      auto fresh = kernel_->BootCreateProcess(ctnr_a_);
      ASSERT_TRUE(fresh.ok());
      host_proc = fresh.value;
    }
    auto t = kernel_->BootCreateThread(host_proc);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(kernel_->pm_mut().BindEndpoint(t.value, 0, edpt_), ProcError::kOk);
    Syscall send = Op(SysOp::kSend);
    send.payload.scalars = {i, 0, 0, 0};
    ASSERT_EQ(Step(t.value, send).error, SysError::kBlocked) << i;
    senders.push_back(t.value);
  }
  Syscall send = Op(SysOp::kSend);
  EXPECT_EQ(Step(ta_, send).error, SysError::kCapacity);
  // Draining one slot makes room again.
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kOk);
  EXPECT_EQ(Step(ta_, send).error, SysError::kBlocked);
}

TEST_F(IpcEdgeTest, ThreadsPerProcessCapacity) {
  // proc_a_ already has 1 thread; fill to kMaxProcThreads.
  for (std::size_t i = 1; i < kMaxProcThreads; ++i) {
    ASSERT_EQ(Step(ta_, Op(SysOp::kNewThread)).error, SysError::kOk) << i;
  }
  EXPECT_EQ(Step(ta_, Op(SysOp::kNewThread)).error, SysError::kCapacity);
}

TEST_F(IpcEdgeTest, DescriptorTableExhaustion) {
  for (EdptIdx i = 1; i < kMaxEdptDescriptors; ++i) {
    Syscall ne = Op(SysOp::kNewEndpoint);
    ne.edpt_idx = i;
    ASSERT_EQ(Step(ta_, ne).error, SysError::kOk) << i;
  }
  Syscall ne = Op(SysOp::kNewEndpoint);
  ne.edpt_idx = 0;  // slot 0 already bound
  EXPECT_EQ(Step(ta_, ne).error, SysError::kInvalid);
}

// ---------------------------------------------------------------------------
// Rendezvous teardown
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, KillingBlockedCallerClearsReplyObligation) {
  // tb_ receives ta_'s call, then ta_'s whole process subtree dies before
  // the reply; tb_'s reply must fail cleanly.
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  ASSERT_EQ(victim_proc.error, SysError::kOk);
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto caller = Step(ta_, nt);
  ASSERT_EQ(caller.error, SysError::kOk);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(caller.value, 1, edpt_), ProcError::kOk);

  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall call = Op(SysOp::kCall);
  call.edpt_idx = 1;
  ASSERT_EQ(Step(caller.value, call).error, SysError::kBlocked);
  EXPECT_EQ(kernel_->pm().GetThread(tb_).reply_to, caller.value);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(tb_).reply_to, kNullPtr) << "obligation cleared";
  EXPECT_EQ(Step(tb_, Op(SysOp::kReply)).error, SysError::kInvalid);
}

TEST_F(IpcEdgeTest, KillingQueuedSenderLeavesEndpointConsistent) {
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto sender = Step(ta_, nt);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(sender.value, 1, edpt_), ProcError::kOk);
  Syscall send = Op(SysOp::kSend);
  send.edpt_idx = 1;
  ASSERT_EQ(Step(sender.value, send).error, SysError::kBlocked);
  ASSERT_EQ(kernel_->pm().GetEndpoint(edpt_).queue.len(), 1u);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);
  EXPECT_TRUE(kernel_->pm().GetEndpoint(edpt_).queue.empty());
  EXPECT_EQ(kernel_->pm().GetEndpoint(edpt_).queue_kind, EdptQueueKind::kEmpty);
  // The endpoint still works afterwards.
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  EXPECT_EQ(Step(ta_, Op(SysOp::kSend)).error, SysError::kOk);
}

TEST_F(IpcEdgeTest, ExitWhileAwaitingReplyIsClean) {
  // The caller dies while parked for a reply (off-queue kBlockedCall).
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto caller = Step(ta_, nt);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(caller.value, 1, edpt_), ProcError::kOk);
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall call = Op(SysOp::kCall);
  call.edpt_idx = 1;
  ASSERT_EQ(Step(caller.value, call).error, SysError::kBlocked);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);
  InvResult wf = kernel_->TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

// ---------------------------------------------------------------------------
// Misc authority / argument validation sweeps
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, GarbageHandlesAreRejectedEverywhere) {
  constexpr Ptr kGarbage = 0x7777000;
  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = kGarbage;
  EXPECT_EQ(Step(ta_, kill).error, SysError::kInvalid);
  kill.op = SysOp::kKillContainer;
  EXPECT_EQ(Step(ta_, kill).error, SysError::kInvalid);
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = kGarbage;
  EXPECT_EQ(Step(ta_, nt).error, SysError::kInvalid);
  Syscall attach = Op(SysOp::kIommuAttachDevice);
  attach.iommu_domain = 999;
  EXPECT_EQ(Step(ta_, attach).error, SysError::kDenied);
}

TEST_F(IpcEdgeTest, CrossContainerThreadCreationDenied) {
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = proc_b_;
  EXPECT_EQ(Step(ta_, nt).error, SysError::kDenied);
}

}  // namespace
}  // namespace atmo
