// IPC and lifecycle edge cases: IOMMU-domain delegation over IPC, capacity
// limits of every bounded kernel structure, rendezvous teardown while
// blocked, reply-after-exit behaviour, and the zero-copy page-grant
// discipline (move/borrow exclusivity, revocation, grant return).

#include <optional>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/spec/abstract_state.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/sweep_harness.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

Syscall Op(SysOp op) {
  Syscall call;
  call.op = op;
  return call;
}

class IpcEdgeTest : public ::testing::Test {
 protected:
  IpcEdgeTest() {
    BootConfig config;
    config.frames = 8192;
    config.reserved_frames = 16;
    kernel_.emplace(std::move(*Kernel::Boot(config)));
    checker_.emplace(&*kernel_, 2);
    auto a = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
    auto b = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
    ctnr_a_ = a.value;
    ctnr_b_ = b.value;
    auto pa = kernel_->BootCreateProcess(ctnr_a_);
    auto pb = kernel_->BootCreateProcess(ctnr_b_);
    proc_a_ = pa.value;
    proc_b_ = pb.value;
    ta_ = kernel_->BootCreateThread(proc_a_).value;
    tb_ = kernel_->BootCreateThread(proc_b_).value;

    Syscall ne = Op(SysOp::kNewEndpoint);
    ne.edpt_idx = 0;
    SyscallRet e = checker_->Step(ta_, ne);
    edpt_ = e.value;
    EXPECT_EQ(kernel_->pm_mut().BindEndpoint(tb_, 0, edpt_), ProcError::kOk);
  }

  SyscallRet Step(ThrdPtr t, const Syscall& call) { return checker_->Step(t, call); }

  std::optional<Kernel> kernel_;
  std::optional<RefinementChecker> checker_;
  CtnrPtr ctnr_a_ = kNullPtr;
  CtnrPtr ctnr_b_ = kNullPtr;
  ProcPtr proc_a_ = kNullPtr;
  ProcPtr proc_b_ = kNullPtr;
  ThrdPtr ta_ = kNullPtr;
  ThrdPtr tb_ = kNullPtr;
  EdptPtr edpt_ = kNullPtr;
};

// ---------------------------------------------------------------------------
// IOMMU domain delegation over IPC (the paper's "IOMMU identifiers" payload)
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, IommuDomainDelegationTransfersOwnershipAndCharge) {
  SyscallRet domain = Step(ta_, Op(SysOp::kIommuCreateDomain));
  ASSERT_EQ(domain.error, SysError::kOk);
  std::uint64_t used_a = kernel_->pm().GetContainer(ctnr_a_).mem_used;
  std::uint64_t used_b = kernel_->pm().GetContainer(ctnr_b_).mem_used;

  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.iommu = IommuGrant{.domain_id = domain.value};
  ASSERT_EQ(Step(ta_, send).error, SysError::kOk);

  EXPECT_EQ(kernel_->iommu().DomainOwner(domain.value), ctnr_b_);
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_a_).mem_used, used_a - 1)
      << "the domain's table page charge moved away from A";
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_b_).mem_used, used_b + 1);

  // B can now attach devices; A no longer can.
  Syscall attach = Op(SysOp::kIommuAttachDevice);
  attach.iommu_domain = domain.value;
  attach.device = 9;
  EXPECT_EQ(Step(ta_, attach).error, SysError::kDenied);
  EXPECT_EQ(Step(tb_, attach).error, SysError::kOk);
}

TEST_F(IpcEdgeTest, CannotDelegateForeignDomain) {
  // B creates a domain; A tries to "delegate" it without owning it.
  SyscallRet domain = Step(tb_, Op(SysOp::kIommuCreateDomain));
  ASSERT_EQ(domain.error, SysError::kOk);
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.iommu = IommuGrant{.domain_id = domain.value};
  EXPECT_EQ(Step(ta_, send).error, SysError::kDenied);
  EXPECT_EQ(kernel_->iommu().DomainOwner(domain.value), ctnr_b_);
}

TEST_F(IpcEdgeTest, DelegationDeniedWhenReceiverQuotaFull) {
  // Shrink B's headroom to zero, then try to move a domain's charge there.
  SyscallRet domain = Step(ta_, Op(SysOp::kIommuCreateDomain));
  ASSERT_EQ(domain.error, SysError::kOk);
  // Exhaust B's quota: shrinking mmap chunks until nothing fits.
  VAddr next_va = 0x4000000;
  for (std::uint64_t chunk : {256u, 64u, 16u, 4u, 1u}) {
    while (true) {
      Syscall hog = Op(SysOp::kMmap);
      hog.va_range = VaRange{next_va, chunk, PageSize::k4K};
      hog.map_perm = kRw;
      if (Step(tb_, hog).error != SysError::kOk) {
        break;
      }
      next_va += chunk * kPageSize4K;
    }
  }

  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.iommu = IommuGrant{.domain_id = domain.value};
  EXPECT_EQ(Step(ta_, send).error, SysError::kWouldFault);
  EXPECT_EQ(kernel_->iommu().DomainOwner(domain.value), ctnr_a_) << "nothing moved";
  EXPECT_EQ(kernel_->pm().GetThread(tb_).state, ThreadState::kBlockedRecv);
}

// ---------------------------------------------------------------------------
// Capacity limits
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, EndpointQueueCapacityBoundsBlockedSenders) {
  // Fill the wait queue with senders, then the next send fails kCapacity.
  // Senders are spread over several processes (threads-per-process is
  // itself bounded at kMaxProcThreads).
  std::vector<ThrdPtr> senders;
  ProcPtr host_proc = proc_a_;
  for (std::size_t i = 0; i < kMaxEdptWaiters; ++i) {
    if (i % 12 == 0) {
      auto fresh = kernel_->BootCreateProcess(ctnr_a_);
      ASSERT_TRUE(fresh.ok());
      host_proc = fresh.value;
    }
    auto t = kernel_->BootCreateThread(host_proc);
    ASSERT_TRUE(t.ok());
    ASSERT_EQ(kernel_->pm_mut().BindEndpoint(t.value, 0, edpt_), ProcError::kOk);
    Syscall send = Op(SysOp::kSend);
    send.payload.scalars = {i, 0, 0, 0};
    ASSERT_EQ(Step(t.value, send).error, SysError::kBlocked) << i;
    senders.push_back(t.value);
  }
  Syscall send = Op(SysOp::kSend);
  EXPECT_EQ(Step(ta_, send).error, SysError::kCapacity);
  // Draining one slot makes room again.
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kOk);
  EXPECT_EQ(Step(ta_, send).error, SysError::kBlocked);
}

TEST_F(IpcEdgeTest, ThreadsPerProcessCapacity) {
  // proc_a_ already has 1 thread; fill to kMaxProcThreads.
  for (std::size_t i = 1; i < kMaxProcThreads; ++i) {
    ASSERT_EQ(Step(ta_, Op(SysOp::kNewThread)).error, SysError::kOk) << i;
  }
  EXPECT_EQ(Step(ta_, Op(SysOp::kNewThread)).error, SysError::kCapacity);
}

TEST_F(IpcEdgeTest, DescriptorTableExhaustion) {
  for (EdptIdx i = 1; i < kMaxEdptDescriptors; ++i) {
    Syscall ne = Op(SysOp::kNewEndpoint);
    ne.edpt_idx = i;
    ASSERT_EQ(Step(ta_, ne).error, SysError::kOk) << i;
  }
  Syscall ne = Op(SysOp::kNewEndpoint);
  ne.edpt_idx = 0;  // slot 0 already bound
  EXPECT_EQ(Step(ta_, ne).error, SysError::kInvalid);
}

// ---------------------------------------------------------------------------
// Rendezvous teardown
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, KillingBlockedCallerClearsReplyObligation) {
  // tb_ receives ta_'s call, then ta_'s whole process subtree dies before
  // the reply; tb_'s reply must fail cleanly.
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  ASSERT_EQ(victim_proc.error, SysError::kOk);
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto caller = Step(ta_, nt);
  ASSERT_EQ(caller.error, SysError::kOk);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(caller.value, 1, edpt_), ProcError::kOk);

  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall call = Op(SysOp::kCall);
  call.edpt_idx = 1;
  ASSERT_EQ(Step(caller.value, call).error, SysError::kBlocked);
  EXPECT_EQ(kernel_->pm().GetThread(tb_).reply_to, caller.value);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(tb_).reply_to, kNullPtr) << "obligation cleared";
  EXPECT_EQ(Step(tb_, Op(SysOp::kReply)).error, SysError::kInvalid);
}

TEST_F(IpcEdgeTest, KillingQueuedSenderLeavesEndpointConsistent) {
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto sender = Step(ta_, nt);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(sender.value, 1, edpt_), ProcError::kOk);
  Syscall send = Op(SysOp::kSend);
  send.edpt_idx = 1;
  ASSERT_EQ(Step(sender.value, send).error, SysError::kBlocked);
  ASSERT_EQ(kernel_->pm().GetEndpoint(edpt_).queue.len(), 1u);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);
  EXPECT_TRUE(kernel_->pm().GetEndpoint(edpt_).queue.empty());
  EXPECT_EQ(kernel_->pm().GetEndpoint(edpt_).queue_kind, EdptQueueKind::kEmpty);
  // The endpoint still works afterwards.
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  EXPECT_EQ(Step(ta_, Op(SysOp::kSend)).error, SysError::kOk);
}

TEST_F(IpcEdgeTest, ExitWhileAwaitingReplyIsClean) {
  // The caller dies while parked for a reply (off-queue kBlockedCall).
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto caller = Step(ta_, nt);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(caller.value, 1, edpt_), ProcError::kOk);
  ASSERT_EQ(Step(tb_, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall call = Op(SysOp::kCall);
  call.edpt_idx = 1;
  ASSERT_EQ(Step(caller.value, call).error, SysError::kBlocked);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);
  InvResult wf = kernel_->TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

// ---------------------------------------------------------------------------
// Misc authority / argument validation sweeps
// ---------------------------------------------------------------------------

TEST_F(IpcEdgeTest, GarbageHandlesAreRejectedEverywhere) {
  constexpr Ptr kGarbage = 0x7777000;
  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = kGarbage;
  EXPECT_EQ(Step(ta_, kill).error, SysError::kInvalid);
  kill.op = SysOp::kKillContainer;
  EXPECT_EQ(Step(ta_, kill).error, SysError::kInvalid);
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = kGarbage;
  EXPECT_EQ(Step(ta_, nt).error, SysError::kInvalid);
  Syscall attach = Op(SysOp::kIommuAttachDevice);
  attach.iommu_domain = 999;
  EXPECT_EQ(Step(ta_, attach).error, SysError::kDenied);
}

TEST_F(IpcEdgeTest, CrossContainerThreadCreationDenied) {
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = proc_b_;
  EXPECT_EQ(Step(ta_, nt).error, SysError::kDenied);
}

// ---------------------------------------------------------------------------
// Zero-copy page grants: move/borrow exclusivity, revocation, grant return
// ---------------------------------------------------------------------------

constexpr VAddr kSrcVa = 0x5000000;
constexpr VAddr kDestVa = 0x6000000;
constexpr MapEntryPerm kRo{.writable = false, .user = true, .no_execute = false};

class GrantEdgeTest : public IpcEdgeTest {
 protected:
  // Maps one RW page at kSrcVa in A and returns its frame.
  PagePtr MapSource() {
    Syscall mm = Op(SysOp::kMmap);
    mm.va_range = VaRange{kSrcVa, 1, PageSize::k4K};
    mm.map_perm = kRw;
    EXPECT_EQ(Step(ta_, mm).error, SysError::kOk);
    return kernel_->Abstract().get_address_space(proc_a_).at(kSrcVa).addr;
  }

  // Parks the receiver, then sends a grant of kSrcVa from A.
  SyscallRet Grant(GrantMode mode, MapEntryPerm perm, ThrdPtr receiver) {
    EXPECT_EQ(Step(receiver, Op(SysOp::kRecv)).error, SysError::kBlocked);
    Syscall send = Op(SysOp::kSend);
    send.payload.page = PageGrant{.page = kSrcVa,
                                  .size = PageSize::k4K,
                                  .dest_va = kDestVa,
                                  .perm = perm,
                                  .mode = mode};
    return Step(ta_, send);
  }
};

TEST_F(GrantEdgeTest, BorrowDowngradesLenderAndReturnRestoresRights) {
  PagePtr page = MapSource();
  ASSERT_EQ(Grant(GrantMode::kBorrow, kRo, tb_).error, SysError::kOk);

  AbstractKernel psi = kernel_->Abstract();
  EXPECT_FALSE(psi.get_address_space(proc_a_).at(kSrcVa).perm.writable)
      << "lender downgraded while the loan is live";
  EXPECT_FALSE(psi.get_address_space(proc_b_).at(kDestVa).perm.writable);
  const AbsPageInfo& info = psi.pages.at(page);
  EXPECT_TRUE(info.borrowed);
  EXPECT_EQ(info.map_count, 2u);
  EXPECT_EQ(info.borrow.lender, proc_a_);
  EXPECT_EQ(info.borrow.borrower, proc_b_);
  EXPECT_TRUE(info.borrow.lender_writable);

  // Neither side can shadow the loan with a writable remap: both VAs are
  // occupied, so the mmap path rejects the attempt outright.
  Syscall remap = Op(SysOp::kMmap);
  remap.va_range = VaRange{kDestVa, 1, PageSize::k4K};
  remap.map_perm = kRw;
  EXPECT_EQ(Step(tb_, remap).error, SysError::kInvalid);
  remap.va_range = VaRange{kSrcVa, 1, PageSize::k4K};
  EXPECT_EQ(Step(ta_, remap).error, SysError::kInvalid);

  Syscall ret = Op(SysOp::kGrantReturn);
  ret.va_range = VaRange{kDestVa, 1, PageSize::k4K};
  ASSERT_EQ(Step(tb_, ret).error, SysError::kOk);

  psi = kernel_->Abstract();
  EXPECT_TRUE(psi.get_address_space(proc_a_).at(kSrcVa).perm.writable)
      << "grant return restores the lender's original rights";
  EXPECT_FALSE(psi.get_address_space(proc_b_).contains(kDestVa));
  EXPECT_FALSE(psi.pages.at(page).borrowed);
  EXPECT_EQ(psi.pages.at(page).map_count, 1u);
  InvResult wf = kernel_->TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

TEST_F(GrantEdgeTest, BorrowedPageIsNeverGrantableAgain) {
  MapSource();
  ASSERT_EQ(Grant(GrantMode::kBorrow, kRo, tb_).error, SysError::kOk);

  // The lender cannot fan the page out while it is on loan — in any mode.
  for (GrantMode mode : {GrantMode::kShare, GrantMode::kMove, GrantMode::kBorrow}) {
    EXPECT_EQ(Grant(mode, kRo, tb_).error, SysError::kDenied);
    // The parked receiver from the failed grant is drained by a plain send
    // so the next attempt starts from a clean rendezvous.
    EXPECT_EQ(Step(ta_, Op(SysOp::kSend)).error, SysError::kOk);
  }
}

TEST_F(GrantEdgeTest, MoveAndBorrowRequireExclusiveMapping) {
  MapSource();
  // Share-grant first: the frame now has two mappings.
  ASSERT_EQ(Grant(GrantMode::kShare, kRw, tb_).error, SysError::kOk);
  // A second exclusive grant of the same source must be rejected.
  EXPECT_EQ(Grant(GrantMode::kMove, kRw, tb_).error, SysError::kDenied);
  EXPECT_EQ(Step(ta_, Op(SysOp::kSend)).error, SysError::kOk);  // drain receiver
  EXPECT_EQ(Grant(GrantMode::kBorrow, kRo, tb_).error, SysError::kDenied);
  EXPECT_EQ(Step(ta_, Op(SysOp::kSend)).error, SysError::kOk);
}

TEST_F(GrantEdgeTest, WritableBorrowIsRejected) {
  MapSource();
  EXPECT_EQ(Grant(GrantMode::kBorrow, kRw, tb_).error, SysError::kInvalid);
  EXPECT_EQ(Step(ta_, Op(SysOp::kSend)).error, SysError::kOk);  // drain receiver
}

TEST_F(GrantEdgeTest, KillingBorrowerRevokesLoanAndRestoresLender) {
  // Borrow into a disposable process, then kill it: revocation must restore
  // the lender's writable mapping and clear the borrow mark.
  auto victim_proc = Step(ta_, Op(SysOp::kNewProcess));
  ASSERT_EQ(victim_proc.error, SysError::kOk);
  Syscall nt = Op(SysOp::kNewThread);
  nt.target = victim_proc.value;
  auto rx = Step(ta_, nt);
  ASSERT_EQ(rx.error, SysError::kOk);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(rx.value, 0, edpt_), ProcError::kOk);

  PagePtr page = MapSource();
  ASSERT_EQ(Grant(GrantMode::kBorrow, kRo, rx.value).error, SysError::kOk);
  ASSERT_TRUE(kernel_->Abstract().pages.at(page).borrowed);

  Syscall kill = Op(SysOp::kKillProcess);
  kill.target = victim_proc.value;
  ASSERT_EQ(Step(ta_, kill).error, SysError::kOk);

  AbstractKernel psi = kernel_->Abstract();
  EXPECT_FALSE(psi.pages.at(page).borrowed);
  EXPECT_EQ(psi.pages.at(page).map_count, 1u);
  EXPECT_TRUE(psi.get_address_space(proc_a_).at(kSrcVa).perm.writable)
      << "borrower teardown restores the lender's rights";
  InvResult wf = kernel_->TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

TEST_F(GrantEdgeTest, LenderUnmapEndsLoanWithoutRestoringAnything) {
  PagePtr page = MapSource();
  ASSERT_EQ(Grant(GrantMode::kBorrow, kRo, tb_).error, SysError::kOk);

  Syscall mu = Op(SysOp::kMunmap);
  mu.va_range = VaRange{kSrcVa, 1, PageSize::k4K};
  ASSERT_EQ(Step(ta_, mu).error, SysError::kOk);

  AbstractKernel psi = kernel_->Abstract();
  EXPECT_FALSE(psi.pages.at(page).borrowed) << "lender-side unmap drops the record";
  EXPECT_EQ(psi.pages.at(page).map_count, 1u);
  EXPECT_TRUE(psi.get_address_space(proc_b_).contains(kDestVa))
      << "the borrower keeps an ordinary read-only shared mapping";

  // No loan left to return: the borrower's mapping is now ordinary.
  Syscall ret = Op(SysOp::kGrantReturn);
  ret.va_range = VaRange{kDestVa, 1, PageSize::k4K};
  EXPECT_EQ(Step(tb_, ret).error, SysError::kDenied);
  InvResult wf = kernel_->TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

TEST_F(GrantEdgeTest, GrantReturnOfNonBorrowIsRejected) {
  MapSource();
  Syscall ret = Op(SysOp::kGrantReturn);
  ret.va_range = VaRange{kSrcVa, 1, PageSize::k4K};
  EXPECT_EQ(Step(ta_, ret).error, SysError::kDenied) << "ordinary mapping";
  ret.va_range = VaRange{0x7777000, 1, PageSize::k4K};
  EXPECT_EQ(Step(ta_, ret).error, SysError::kInvalid) << "hole";
}

// ---------------------------------------------------------------------------
// Copy-vs-grant differential: a move grant is exactly a share grant plus the
// sender-side unmap, composed atomically — the two worlds end bit-identical.
// ---------------------------------------------------------------------------

AbstractKernel RunGrantWorld(GrantMode mode) {
  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel{std::move(*Kernel::Boot(config))};
  RefinementChecker checker(&kernel, 2);
  CtnrPtr ctnr_a = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull).value;
  CtnrPtr ctnr_b = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull).value;
  ProcPtr proc_a = kernel.BootCreateProcess(ctnr_a).value;
  ProcPtr proc_b = kernel.BootCreateProcess(ctnr_b).value;
  ThrdPtr ta = kernel.BootCreateThread(proc_a).value;
  ThrdPtr tb = kernel.BootCreateThread(proc_b).value;
  (void)proc_b;

  Syscall ne = Op(SysOp::kNewEndpoint);
  ne.edpt_idx = 0;
  SyscallRet e = checker.Step(ta, ne);
  EXPECT_EQ(kernel.pm_mut().BindEndpoint(tb, 0, e.value), ProcError::kOk);

  Syscall mm = Op(SysOp::kMmap);
  mm.va_range = VaRange{kSrcVa, 1, PageSize::k4K};
  mm.map_perm = kRw;
  EXPECT_EQ(checker.Step(ta, mm).error, SysError::kOk);
  (void)proc_a;

  EXPECT_EQ(checker.Step(tb, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall send = Op(SysOp::kSend);
  send.payload.page = PageGrant{.page = kSrcVa,
                                .size = PageSize::k4K,
                                .dest_va = kDestVa,
                                .perm = kRw,
                                .mode = mode};
  EXPECT_EQ(checker.Step(ta, send).error, SysError::kOk);

  // The share world unmaps the source by hand; the move world already lost
  // it, so it issues a deliberately failing unmap to keep the dispatch
  // sequence — and therefore the scheduler state — identical.
  Syscall mu = Op(SysOp::kMunmap);
  mu.va_range = VaRange{mode == GrantMode::kShare ? kSrcVa : VAddr{0x7777000}, 1,
                        PageSize::k4K};
  SyscallRet un = checker.Step(ta, mu);
  EXPECT_EQ(un.error,
            mode == GrantMode::kShare ? SysError::kOk : SysError::kInvalid);

  // Overwrite the receiver's IPC buffer with one more identical plain
  // rendezvous: the delivered grant descriptor (which still records the
  // mode) is transient data, not part of the state being compared.
  EXPECT_EQ(checker.Step(tb, Op(SysOp::kRecv)).error, SysError::kBlocked);
  Syscall plain = Op(SysOp::kSend);
  plain.payload.scalars = {42, 0, 0, 0};
  EXPECT_EQ(checker.Step(ta, plain).error, SysError::kOk);

  InvResult wf = kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
  return kernel.Abstract();
}

TEST(GrantDifferentialTest, MoveGrantEqualsShareGrantPlusUnmap) {
  AbstractKernel moved = RunGrantWorld(GrantMode::kMove);
  AbstractKernel copied = RunGrantWorld(GrantMode::kShare);
  EXPECT_TRUE(moved == copied)
      << "a move grant must relabel Ψ exactly like share-then-unmap";
}

// ---------------------------------------------------------------------------
// Grant-aware sweeps: the randomized trace family that mixes borrow/move
// grants and grant returns stays clean under the full refinement checker and
// is deterministic across worker counts.
// ---------------------------------------------------------------------------

SweepHarness::Options GrantSweep(std::uint64_t seed, unsigned workers) {
  SweepHarness::Options options;
  options.master_seed = seed;
  options.shards = 4;
  options.steps_per_shard = 600;
  options.workers = workers;
  options.grant_ops = true;
  return options;
}

TEST(GrantSweepTest, GrantSweepIsCleanAndDeterministicAcrossWorkers) {
  SweepReport one = SweepHarness(GrantSweep(0x6a11, 1)).Run();
  SweepReport four = SweepHarness(GrantSweep(0x6a11, 4)).Run();
  EXPECT_TRUE(one.AllOk()) << (one.shards.empty() ? "" : one.shards[0].failure);
  EXPECT_TRUE(four.AllOk());
  EXPECT_TRUE(one.SameOutcome(four));

  auto row = [&](SysOp op) {
    std::uint64_t total = 0;
    for (std::size_t err = 0; err < kSysErrorCount; ++err) {
      total += one.coverage.counts[static_cast<std::size_t>(op)][err];
    }
    return total;
  };
  EXPECT_GT(row(SysOp::kSend), 0u);
  EXPECT_GT(row(SysOp::kGrantReturn), 0u);
}

TEST(GrantSweepTest, GrantRingCombinedSweepIsClean) {
  SweepHarness::Options options = GrantSweep(0xfeed5, 2);
  options.ring_ops = true;  // widest distribution: 21 ways
  SweepReport report = SweepHarness(options).Run();
  EXPECT_TRUE(report.AllOk())
      << (report.shards.empty() ? "" : report.shards[0].failure);
  EXPECT_GT(report.total_steps, 0u);
}

}  // namespace
}  // namespace atmo
