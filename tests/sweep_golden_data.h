// Golden sweep outcome captured on the pre-rewrite kernel. See
// tests/sweep_golden_test.cc for when regeneration is legitimate.
#ifndef ATMO_TESTS_SWEEP_GOLDEN_DATA_H_
#define ATMO_TESTS_SWEEP_GOLDEN_DATA_H_

#include <cstdint>

namespace atmo {

inline constexpr std::uint64_t kGoldenMasterSeed = 2813576663ull;
inline constexpr std::uint64_t kGoldenShards = 8;
inline constexpr std::uint64_t kGoldenStepsPerShard = 1500;
inline constexpr std::uint64_t kGoldenTotalSteps = 12000;
inline constexpr std::uint64_t kGoldenCoverageTotal = 12000;
inline constexpr std::uint64_t kGoldenCoverageCells = 30;

// counts[op][error], flattened row-major (25 x 8). The trailing kObsQuery
// row is all-zero by construction: the golden sweep runs the classic
// distribution (obs_ops off), so adding the op widened the matrix without
// changing any historical count.
inline constexpr std::uint64_t kGoldenCoverage[25 * 8] = {
    602, 0, 0, 0, 0, 0, 0, 0,
    443, 0, 0, 0, 0, 518, 0, 0,
    166, 0, 0, 0, 0, 494, 0, 0,
    229, 0, 0, 71, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    153, 0, 0, 0, 177, 0, 0, 0,
    234, 0, 0, 0, 0, 75, 0, 0,
    87, 0, 0, 0, 0, 220, 0, 0,
    9, 17, 0, 0, 0, 3483, 0, 0,
    9, 17, 0, 0, 0, 3847, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    221, 0, 0, 0, 0, 0, 0, 0,
    316, 0, 0, 0, 0, 0, 0, 0,
    48, 0, 0, 0, 0, 182, 64, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    108, 0, 0, 0, 0, 3, 41, 0,
    6, 0, 0, 0, 0, 127, 33, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
    0, 0, 0, 0, 0, 0, 0, 0,
};

}  // namespace atmo

#endif  // ATMO_TESTS_SWEEP_GOLDEN_DATA_H_
