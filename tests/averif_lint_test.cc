// averif_lint's own coverage: each seeded-violation fixture tree fires
// exactly the expected rule, the repaired (real) tree is clean under
// --strict, and the CLI exit codes match. Fixture trees mirror the real
// repo layout under tests/averif_lint_fixtures/<name>/src/... and contain
// only the files each rule needs (the library runs lenient on them, so
// absent files skip rules instead of failing).

#include <cstdlib>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/alloc_hook.h"
#include "src/obs/copy_probe.h"
#include "tools/averif_lint/lint.h"

namespace atmo::lint {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(AVERIF_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> Lint(const std::string& root, bool strict = false) {
  Options options;
  options.root = root;
  options.strict = strict;
  return RunAllRules(options);
}

std::vector<Finding> WithRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

int BinaryExit(const std::string& args) {
  std::string cmd = std::string(AVERIF_LINT_BIN) + " " + args + " > /dev/null 2>&1";
  int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// ---------------------------------------------------------------------------
// The repaired tree is clean — strict mode, every rule running for real.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, RealTreeIsCleanUnderStrict) {
  std::vector<Finding> findings = Lint(AVERIF_LINT_REPO_ROOT, /*strict=*/true);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  }
  EXPECT_EQ(BinaryExit(std::string("--root ") + AVERIF_LINT_REPO_ROOT + " --strict"), 0);
}

// ---------------------------------------------------------------------------
// Seeded violations: exact rule ids, non-zero CLI exit per fixture.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, MissingSpecCaseFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_spec_case"));
  std::vector<Finding> hits = WithRule(findings, "spec-coverage");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/spec/syscall_specs.cc");
  EXPECT_NE(hits[0].message.find("SysOp::kExit"), std::string::npos);
  EXPECT_NE(hits[0].message.find("SyscallSpec"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("missing_spec_case")), 1);
}

// Same rule, ring flavour: a ring op wired into the kernel (Exec, SysOpName,
// frame profile) but absent from the SyscallSpec dispatcher must fire — the
// amortized-checking design leans on RingEnterSpec being impossible to skip.
TEST(AverifLintTest, RingOpMissingSpecCaseFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("ring_missing_spec_case"));
  std::vector<Finding> hits = WithRule(findings, "spec-coverage");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/spec/syscall_specs.cc");
  EXPECT_NE(hits[0].message.find("SysOp::kRingEnter"), std::string::npos);
  EXPECT_NE(hits[0].message.find("SyscallSpec"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("ring_missing_spec_case")), 1);
}

// Grant flavour: kGrantReturn wired into the kernel (Exec, SysOpName) but
// absent from BOTH the SyscallSpec dispatcher and the FrameProfileFor
// table. Zero-copy grants relabel page ownership, so an unspecified or
// unframed grant op is exactly the hole the rule exists to close — and the
// two findings must name the two distinct locations.
TEST(AverifLintTest, GrantOpMissingSpecAndFrameProfileFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("grant_missing_spec_case"));
  std::vector<Finding> hits = WithRule(findings, "spec-coverage");
  ASSERT_EQ(hits.size(), 2u) << ToText(findings, false);
  bool spec_hole = false;
  bool frame_hole = false;
  for (const Finding& f : hits) {
    EXPECT_NE(f.message.find("SysOp::kGrantReturn"), std::string::npos) << f.message;
    spec_hole = spec_hole ||
                (f.file == "src/spec/syscall_specs.cc" &&
                 f.message.find("SyscallSpec") != std::string::npos);
    frame_hole = frame_hole ||
                 (f.file == "src/spec/frame_profile.h" &&
                  f.message.find("FrameProfileFor") != std::string::npos);
  }
  EXPECT_TRUE(spec_hole) << ToText(findings, false);
  EXPECT_TRUE(frame_hole) << ToText(findings, false);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("grant_missing_spec_case")), 1);
}

TEST(AverifLintTest, UnloggedMutatorFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("unlogged_mutator"));
  std::vector<Finding> hits = WithRule(findings, "dirty-log");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/core/vm_manager.h");
  EXPECT_NE(hits[0].message.find("VmManager::Unmap"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("unlogged_mutator")), 1);
}

TEST(AverifLintTest, IndexWithoutWfClauseFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("index_without_wf"));
  std::vector<Finding> hits = WithRule(findings, "lockstep-index");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/iommu/iommu_manager.h");
  EXPECT_NE(hits[0].message.find("domain_index_"), std::string::npos);
  EXPECT_NE(hits[0].message.find("Wf"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("index_without_wf")), 1);
}

TEST(AverifLintTest, IndexNotRefilledInPooledCloneFires) {
  // Wf clause and CloneForVerification rebuild both present; only the
  // pooled CloneForVerificationInto forgets the index.
  std::vector<Finding> findings = Lint(FixtureRoot("index_not_refilled"));
  std::vector<Finding> hits = WithRule(findings, "lockstep-index");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/iommu/iommu_manager.h");
  EXPECT_NE(hits[0].message.find("domain_index_"), std::string::npos);
  EXPECT_NE(hits[0].message.find("CloneForVerificationInto"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("index_not_refilled")), 1);
}

TEST(AverifLintTest, DefaultInSysOpSwitchFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("default_in_switch"));
  std::vector<Finding> hits = WithRule(findings, "sysop-switch-default");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/core/kernel.cc");
  // The PageSize switch's default in the same file must NOT fire.
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("default_in_switch")), 1);
}

TEST(AverifLintTest, MissingTraceOpNameFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_trace_op"));
  std::vector<Finding> hits = WithRule(findings, "trace-op-name");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/obs/op_names.h");
  EXPECT_NE(hits[0].message.find("SysOp::kReply"), std::string::npos);
  EXPECT_NE(hits[0].message.find("TraceOpLabel"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("missing_trace_op")), 1);
}

TEST(AverifLintTest, ErrorPathFiresAndHonoursWaiver) {
  std::vector<Finding> findings = Lint(FixtureRoot("error_path"));
  std::vector<Finding> hits = WithRule(findings, "error-path");
  // MmapSpec fires; MunmapSpec (atomicity first) and YieldSpec (waived) do
  // not.
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_NE(hits[0].message.find("MmapSpec"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("error_path")), 1);
}

// ---------------------------------------------------------------------------
// Interprocedural rules (call graph + ATMO_HOT_PATH roots).
// ---------------------------------------------------------------------------

TEST(AverifLintTest, HotPathAllocFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("hot_path_alloc"));
  std::vector<Finding> hits = WithRule(findings, "hot-path-alloc");
  // Only the uncovered helper fires; the ArenaScope-covered allocation in
  // Capture and the covered call site around AppendSpec must not.
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/verif/refinement_checker.cc");
  EXPECT_NE(hits[0].message.find("RefinementChecker::BuildScratch"), std::string::npos);
  EXPECT_NE(hits[0].message.find("RefinementChecker::Step -> RefinementChecker::BuildScratch"),
            std::string::npos)
      << hits[0].message;
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("hot_path_alloc")), 1);
}

TEST(AverifLintTest, PayloadCopyFiresOnMemcpyAndByteLoop) {
  std::vector<Finding> findings = Lint(FixtureRoot("payload_copy"));
  std::vector<Finding> hits = WithRule(findings, "payload-copy");
  ASSERT_EQ(hits.size(), 2u) << ToText(findings, false);
  bool saw_memcpy = false;
  bool saw_loop = false;
  for (const Finding& f : hits) {
    EXPECT_EQ(f.file, "src/apps/httpd.cc");
    EXPECT_NE(f.message.find("Httpd::HandleRequestSpliced -> Httpd::ServeFile"),
              std::string::npos)
        << f.message;
    saw_memcpy = saw_memcpy || f.message.find("(memcpy)") != std::string::npos;
    saw_loop = saw_loop || f.message.find("(byte-copy loop)") != std::string::npos;
  }
  EXPECT_TRUE(saw_memcpy) << ToText(findings, false);
  EXPECT_TRUE(saw_loop) << ToText(findings, false);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("payload_copy")), 1);
}

TEST(AverifLintTest, TraceStageCoverageFiresOnlyOnUnstampedRoot) {
  std::vector<Finding> findings = Lint(FixtureRoot("trace_stage"));
  std::vector<Finding> hits = WithRule(findings, "trace-stage-coverage");
  // Only TxFlush fires: RxPeekBurst stamps its stage directly,
  // TxCommitDeferred reaches a stamp through StampTx, and RxReleaseBurst
  // carries a waiver comment.
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/drivers/ixgbe_driver.cc");
  EXPECT_NE(hits[0].message.find("IxgbeDriver::TxFlush"), std::string::npos)
      << hits[0].message;
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("trace_stage")), 1);
}

TEST(AverifLintTest, LockDisciplineFiresDirectAndInterprocedural) {
  std::vector<Finding> findings = Lint(FixtureRoot("guarded_by_no_lock"));
  std::vector<Finding> hits = WithRule(findings, "lock-discipline");
  // Two seeded violations: the bare unlocked touch, and the REQUIRES callee
  // invoked by a caller that never takes the lock. The MutexLock-covered
  // mutator must not fire.
  ASSERT_EQ(hits.size(), 2u) << ToText(findings, false);
  bool direct = false;
  bool contract = false;
  for (const Finding& f : hits) {
    EXPECT_EQ(f.file, "src/sweep/sweep_progress.cc");
    direct = direct ||
             f.message.find("SweepProgress::BumpUnlocked touches it without acquiring") !=
                 std::string::npos;
    contract = contract ||
               f.message.find("SweepProgress::ReadRacy calls it without holding") !=
                   std::string::npos;
  }
  EXPECT_TRUE(direct) << ToText(findings, false);
  EXPECT_TRUE(contract) << ToText(findings, false);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("guarded_by_no_lock")), 1);
}

TEST(AverifLintTest, GrantLeakOnReturnPathFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("grant_leak"));
  std::vector<Finding> hits = WithRule(findings, "grant-lifetime");
  // Teardown (DestroyAddressSpace -> borrows_.clear) satisfies the teardown
  // obligation, so only the unreachable-from-kGrantReturn finding remains.
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/core/kernel.cc");
  EXPECT_NE(hits[0].message.find("VmManager::BeginBorrow"), std::string::npos);
  EXPECT_NE(hits[0].message.find("kGrantReturn handling cannot reach a release site"),
            std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("grant_leak")), 1);
}

// ---------------------------------------------------------------------------
// Static/dynamic twin agreement: the same injected regression the fixtures
// seed statically is caught at runtime by the obs probes. hot-path-alloc is
// AllocProbe's twin, payload-copy is CopyProbe's.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, HotPathAllocAgreesWithAllocProbe) {
  std::vector<Finding> hits =
      WithRule(Lint(FixtureRoot("hot_path_alloc")), "hot-path-alloc");
  ASSERT_EQ(hits.size(), 1u);  // static half: the injected push_back is flagged
  if (!obs::HeapCountingActive()) {
    GTEST_SKIP() << "ATMO_OBS_DISABLED build: no runtime twin to compare";
  }
  obs::AllocProbe probe;
  std::vector<int> scratch;
  scratch.push_back(42);  // dynamic half: the same injected allocation
  EXPECT_GT(probe.allocs(), 0u)
      << "AllocProbe missed the allocation the lint flagged statically";
}

TEST(AverifLintTest, PayloadCopyAgreesWithCopyProbe) {
  std::vector<Finding> hits = WithRule(Lint(FixtureRoot("payload_copy")), "payload-copy");
  ASSERT_EQ(hits.size(), 2u);  // static half: memcpy + byte loop flagged
  if (!obs::PayloadCountingActive()) {
    GTEST_SKIP() << "ATMO_OBS_DISABLED build: no runtime twin to compare";
  }
  obs::CopyProbe probe;
  unsigned char dst[64];
  unsigned char src[64] = {1};
  obs::CopyPayload(dst, src, sizeof(dst));  // dynamic half: the staged copy
  EXPECT_EQ(probe.copies(), 1u);
  EXPECT_EQ(probe.bytes(), sizeof(dst));
}

// ---------------------------------------------------------------------------
// Deterministic output and baseline diffing.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, JsonOutputIsDeterministicSortedAndGolden) {
  std::vector<Finding> first = Lint(FixtureRoot("payload_copy"));
  std::vector<Finding> second = Lint(FixtureRoot("payload_copy"));
  EXPECT_EQ(ToJson(first), ToJson(second));
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(std::tie(first[i - 1].file, first[i - 1].line, first[i - 1].rule),
              std::tie(first[i].file, first[i].line, first[i].rule));
  }
  const std::string golden =
      "[\n"
      "  {\"file\": \"src/apps/httpd.cc\", \"line\": 20, \"rule\": \"payload-copy\", "
      "\"message\": \"payload copy (memcpy) in Httpd::ServeFile is reachable from hot "
      "path: Httpd::HandleRequestSpliced -> Httpd::ServeFile\"},\n"
      "  {\"file\": \"src/apps/httpd.cc\", \"line\": 22, \"rule\": \"payload-copy\", "
      "\"message\": \"payload copy (byte-copy loop) in Httpd::ServeFile is reachable "
      "from hot path: Httpd::HandleRequestSpliced -> Httpd::ServeFile\"}\n"
      "]\n";
  EXPECT_EQ(ToJson(first), golden);
}

TEST(AverifLintTest, ParseFindingsJsonRoundTrips) {
  std::vector<Finding> findings = Lint(FixtureRoot("payload_copy"));
  ASSERT_FALSE(findings.empty());
  std::optional<std::vector<Finding>> parsed = ParseFindingsJson(ToJson(findings));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), findings.size());
  for (std::size_t i = 0; i < findings.size(); ++i) {
    EXPECT_EQ((*parsed)[i].file, findings[i].file);
    EXPECT_EQ((*parsed)[i].line, findings[i].line);
    EXPECT_EQ((*parsed)[i].rule, findings[i].rule);
    EXPECT_EQ((*parsed)[i].message, findings[i].message);
  }
  EXPECT_TRUE(ParseFindingsJson("[]\n").has_value());
  EXPECT_FALSE(ParseFindingsJson("not json").has_value());
  EXPECT_FALSE(ParseFindingsJson("{\"file\": \"x\"}").has_value());
}

TEST(AverifLintTest, BaselineSubtractionIgnoresLineDrift) {
  std::vector<Finding> findings = Lint(FixtureRoot("payload_copy"));
  ASSERT_EQ(findings.size(), 2u);
  // The full set as baseline leaves nothing.
  EXPECT_TRUE(SubtractBaseline(findings, findings).empty());
  // Line numbers drift when unrelated code is edited above a known finding;
  // the diff keys on (file, rule, message) so drift alone is not "new".
  std::vector<Finding> shifted = findings;
  for (Finding& f : shifted) {
    f.line += 7;
  }
  EXPECT_TRUE(SubtractBaseline(findings, shifted).empty());
  // A partial baseline leaves exactly the unbaselined finding.
  std::vector<Finding> one(1, findings[0]);
  std::vector<Finding> left = SubtractBaseline(findings, one);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].message, findings[1].message);
}

TEST(AverifLintTest, BaselineFlagGatesExitCode) {
  std::string root = FixtureRoot("payload_copy");
  std::vector<Finding> findings = Lint(root);
  ASSERT_FALSE(findings.empty());
  std::string path = ::testing::TempDir() + "averif_lint_baseline.json";
  {
    std::ofstream out(path);
    out << ToJson(findings);
  }
  EXPECT_EQ(BinaryExit("--root " + root), 1);
  EXPECT_EQ(BinaryExit("--root " + root + " --baseline " + path), 0);
  // An unreadable or malformed baseline is a usage error, not a clean run.
  EXPECT_EQ(BinaryExit("--root " + root + " --baseline /nonexistent/baseline.json"), 2);
}

// ---------------------------------------------------------------------------
// Report formats.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, JsonReportIsMachineReadable) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_spec_case"));
  std::string json = ToJson(findings);
  EXPECT_NE(json.find("\"rule\": \"spec-coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/spec/syscall_specs.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
  EXPECT_EQ(ToJson({}), "[]\n");
}

TEST(AverifLintTest, FixSuggestionsPrintSkeletons) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_spec_case"));
  std::string text = ToText(findings, /*fix_suggestions=*/true);
  EXPECT_NE(
      text.find("fix: add `case SysOp::kExit: return ExitSpec(pre, post, t, call, ret);`"),
      std::string::npos)
      << text;
}

TEST(AverifLintTest, FixSuggestionsCoverRingAndGrantTables) {
  // Ring op missing from the spec dispatcher: the skeleton names the ring
  // spec function, not just a bare case label.
  std::string ring = ToText(Lint(FixtureRoot("ring_missing_spec_case")), true);
  EXPECT_NE(ring.find("return RingEnterSpec(pre, post, t, call, ret);"), std::string::npos)
      << ring;
  // Grant op missing from both the dispatcher and the frame-profile table:
  // one skeleton per hole, the frame one asking for the op's frame profile.
  std::string grant = ToText(Lint(FixtureRoot("grant_missing_spec_case")), true);
  EXPECT_NE(grant.find("return GrantReturnSpec(pre, post, t, call, ret);"),
            std::string::npos)
      << grant;
  EXPECT_NE(grant.find("returning a FrameProfile that lists every component kGrantReturn"),
            std::string::npos)
      << grant;
}

// Strict mode turns missing rule inputs into findings instead of silently
// skipping the rule — the CI guarantee that a renamed file cannot disable
// the checker.
TEST(AverifLintTest, StrictModeFlagsMissingInputs) {
  std::vector<Finding> lenient = Lint(FixtureRoot("default_in_switch"), /*strict=*/false);
  std::vector<Finding> strict = Lint(FixtureRoot("default_in_switch"), /*strict=*/true);
  EXPECT_EQ(lenient.size(), 1u);
  EXPECT_GT(strict.size(), lenient.size());
  bool missing_reported = false;
  for (const Finding& f : strict) {
    if (f.message.find("missing or unreadable") != std::string::npos) {
      missing_reported = true;
    }
  }
  EXPECT_TRUE(missing_reported);
}

}  // namespace
}  // namespace atmo::lint
