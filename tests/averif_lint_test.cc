// averif_lint's own coverage: each seeded-violation fixture tree fires
// exactly the expected rule, the repaired (real) tree is clean under
// --strict, and the CLI exit codes match. Fixture trees mirror the real
// repo layout under tests/averif_lint_fixtures/<name>/src/... and contain
// only the files each rule needs (the library runs lenient on them, so
// absent files skip rules instead of failing).

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/averif_lint/lint.h"

namespace atmo::lint {
namespace {

std::string FixtureRoot(const std::string& name) {
  return std::string(AVERIF_LINT_FIXTURES) + "/" + name;
}

std::vector<Finding> Lint(const std::string& root, bool strict = false) {
  Options options;
  options.root = root;
  options.strict = strict;
  return RunAllRules(options);
}

std::vector<Finding> WithRule(const std::vector<Finding>& findings, const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      out.push_back(f);
    }
  }
  return out;
}

int BinaryExit(const std::string& args) {
  std::string cmd = std::string(AVERIF_LINT_BIN) + " " + args + " > /dev/null 2>&1";
  int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

// ---------------------------------------------------------------------------
// The repaired tree is clean — strict mode, every rule running for real.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, RealTreeIsCleanUnderStrict) {
  std::vector<Finding> findings = Lint(AVERIF_LINT_REPO_ROOT, /*strict=*/true);
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << " [" << f.rule << "] " << f.message;
  }
  EXPECT_EQ(BinaryExit(std::string("--root ") + AVERIF_LINT_REPO_ROOT + " --strict"), 0);
}

// ---------------------------------------------------------------------------
// Seeded violations: exact rule ids, non-zero CLI exit per fixture.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, MissingSpecCaseFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_spec_case"));
  std::vector<Finding> hits = WithRule(findings, "spec-coverage");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/spec/syscall_specs.cc");
  EXPECT_NE(hits[0].message.find("SysOp::kExit"), std::string::npos);
  EXPECT_NE(hits[0].message.find("SyscallSpec"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("missing_spec_case")), 1);
}

// Same rule, ring flavour: a ring op wired into the kernel (Exec, SysOpName,
// frame profile) but absent from the SyscallSpec dispatcher must fire — the
// amortized-checking design leans on RingEnterSpec being impossible to skip.
TEST(AverifLintTest, RingOpMissingSpecCaseFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("ring_missing_spec_case"));
  std::vector<Finding> hits = WithRule(findings, "spec-coverage");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/spec/syscall_specs.cc");
  EXPECT_NE(hits[0].message.find("SysOp::kRingEnter"), std::string::npos);
  EXPECT_NE(hits[0].message.find("SyscallSpec"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("ring_missing_spec_case")), 1);
}

// Grant flavour: kGrantReturn wired into the kernel (Exec, SysOpName) but
// absent from BOTH the SyscallSpec dispatcher and the FrameProfileFor
// table. Zero-copy grants relabel page ownership, so an unspecified or
// unframed grant op is exactly the hole the rule exists to close — and the
// two findings must name the two distinct locations.
TEST(AverifLintTest, GrantOpMissingSpecAndFrameProfileFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("grant_missing_spec_case"));
  std::vector<Finding> hits = WithRule(findings, "spec-coverage");
  ASSERT_EQ(hits.size(), 2u) << ToText(findings, false);
  bool spec_hole = false;
  bool frame_hole = false;
  for (const Finding& f : hits) {
    EXPECT_NE(f.message.find("SysOp::kGrantReturn"), std::string::npos) << f.message;
    spec_hole = spec_hole ||
                (f.file == "src/spec/syscall_specs.cc" &&
                 f.message.find("SyscallSpec") != std::string::npos);
    frame_hole = frame_hole ||
                 (f.file == "src/spec/frame_profile.h" &&
                  f.message.find("FrameProfileFor") != std::string::npos);
  }
  EXPECT_TRUE(spec_hole) << ToText(findings, false);
  EXPECT_TRUE(frame_hole) << ToText(findings, false);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("grant_missing_spec_case")), 1);
}

TEST(AverifLintTest, UnloggedMutatorFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("unlogged_mutator"));
  std::vector<Finding> hits = WithRule(findings, "dirty-log");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/core/vm_manager.h");
  EXPECT_NE(hits[0].message.find("VmManager::Unmap"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("unlogged_mutator")), 1);
}

TEST(AverifLintTest, IndexWithoutWfClauseFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("index_without_wf"));
  std::vector<Finding> hits = WithRule(findings, "lockstep-index");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/iommu/iommu_manager.h");
  EXPECT_NE(hits[0].message.find("domain_index_"), std::string::npos);
  EXPECT_NE(hits[0].message.find("Wf"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("index_without_wf")), 1);
}

TEST(AverifLintTest, IndexNotRefilledInPooledCloneFires) {
  // Wf clause and CloneForVerification rebuild both present; only the
  // pooled CloneForVerificationInto forgets the index.
  std::vector<Finding> findings = Lint(FixtureRoot("index_not_refilled"));
  std::vector<Finding> hits = WithRule(findings, "lockstep-index");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/iommu/iommu_manager.h");
  EXPECT_NE(hits[0].message.find("domain_index_"), std::string::npos);
  EXPECT_NE(hits[0].message.find("CloneForVerificationInto"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("index_not_refilled")), 1);
}

TEST(AverifLintTest, DefaultInSysOpSwitchFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("default_in_switch"));
  std::vector<Finding> hits = WithRule(findings, "sysop-switch-default");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/core/kernel.cc");
  // The PageSize switch's default in the same file must NOT fire.
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("default_in_switch")), 1);
}

TEST(AverifLintTest, MissingTraceOpNameFires) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_trace_op"));
  std::vector<Finding> hits = WithRule(findings, "trace-op-name");
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_EQ(hits[0].file, "src/obs/op_names.h");
  EXPECT_NE(hits[0].message.find("SysOp::kReply"), std::string::npos);
  EXPECT_NE(hits[0].message.find("TraceOpLabel"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("missing_trace_op")), 1);
}

TEST(AverifLintTest, ErrorPathFiresAndHonoursWaiver) {
  std::vector<Finding> findings = Lint(FixtureRoot("error_path"));
  std::vector<Finding> hits = WithRule(findings, "error-path");
  // MmapSpec fires; MunmapSpec (atomicity first) and YieldSpec (waived) do
  // not.
  ASSERT_EQ(hits.size(), 1u) << ToText(findings, false);
  EXPECT_NE(hits[0].message.find("MmapSpec"), std::string::npos);
  EXPECT_EQ(findings.size(), hits.size()) << ToText(findings, false);
  EXPECT_EQ(BinaryExit("--root " + FixtureRoot("error_path")), 1);
}

// ---------------------------------------------------------------------------
// Report formats.
// ---------------------------------------------------------------------------

TEST(AverifLintTest, JsonReportIsMachineReadable) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_spec_case"));
  std::string json = ToJson(findings);
  EXPECT_NE(json.find("\"rule\": \"spec-coverage\""), std::string::npos);
  EXPECT_NE(json.find("\"file\": \"src/spec/syscall_specs.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": "), std::string::npos);
  EXPECT_EQ(ToJson({}), "[]\n");
}

TEST(AverifLintTest, FixSuggestionsPrintSkeletons) {
  std::vector<Finding> findings = Lint(FixtureRoot("missing_spec_case"));
  std::string text = ToText(findings, /*fix_suggestions=*/true);
  EXPECT_NE(text.find("fix: add `case SysOp::kExit:`"), std::string::npos);
}

// Strict mode turns missing rule inputs into findings instead of silently
// skipping the rule — the CI guarantee that a renamed file cannot disable
// the checker.
TEST(AverifLintTest, StrictModeFlagsMissingInputs) {
  std::vector<Finding> lenient = Lint(FixtureRoot("default_in_switch"), /*strict=*/false);
  std::vector<Finding> strict = Lint(FixtureRoot("default_in_switch"), /*strict=*/true);
  EXPECT_EQ(lenient.size(), 1u);
  EXPECT_GT(strict.size(), lenient.size());
  bool missing_reported = false;
  for (const Finding& f : strict) {
    if (f.message.find("missing or unreadable") != std::string::npos) {
      missing_reported = true;
    }
  }
  EXPECT_TRUE(missing_reported);
}

}  // namespace
}  // namespace atmo::lint
