// Noninterference and isolation tests (§4.3): the A/B/V scenario, the
// isolation invariants, the verified proxy V's functional correctness, the
// unwinding conditions over adversarial traces, and counterexample cases
// showing the checkers detect deliberate isolation breaches.

#include <gtest/gtest.h>

#include "src/sec/abv_scenario.h"
#include "src/sec/isolation.h"
#include "src/sec/noninterference.h"
#include "src/sec/observation.h"
#include "src/sec/verified_proxy.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

BootConfig SmallConfig() {
  BootConfig config;
  config.frames = 4096;  // 16 MiB machine keeps clone-heavy checks fast
  config.reserved_frames = 16;
  return config;
}

AbvScenario MakeScenario() { return AbvScenario::Build(SmallConfig(), 512, 512, 512); }

Syscall ShareCall(VAddr sender_va, VAddr dest_va) {
  Syscall send;
  send.op = SysOp::kSend;
  send.edpt_idx = AbvScenario::kClientSlot;
  send.payload.scalars = {kOpShare, 0, 0, 0};
  send.payload.page =
      PageGrant{.page = sender_va, .size = PageSize::k4K, .dest_va = dest_va, .perm = kRw};
  return send;
}

Syscall MmapCall(VAddr base, std::uint64_t count) {
  Syscall call;
  call.op = SysOp::kMmap;
  call.va_range = VaRange{base, count, PageSize::k4K};
  call.map_perm = kRw;
  return call;
}

// ---------------------------------------------------------------------------
// Scenario + domain constructions
// ---------------------------------------------------------------------------

TEST(AbvScenarioTest, BuildsWellFormedThreeDomainSystem) {
  AbvScenario s = MakeScenario();
  InvResult wf = s.kernel.TotalWf();
  ASSERT_TRUE(wf.ok) << wf.detail;

  AbstractKernel psi = s.kernel.Abstract();
  SpecSet<ThrdPtr> t_a = DomainThreads(psi, s.a);
  SpecSet<ThrdPtr> t_b = DomainThreads(psi, s.b);
  EXPECT_EQ(t_a.size(), 2u);
  EXPECT_EQ(t_b.size(), 2u);
  EXPECT_TRUE(DomainThreadsWf(psi, s.a, t_a));
  EXPECT_TRUE(DomainThreadsWf(psi, s.b, t_b));
  EXPECT_FALSE(DomainThreadsWf(psi, s.a, t_a.insert(s.v_thread)))
      << "T_A_wf rejects foreign threads";
  EXPECT_FALSE(DomainThreadsWf(psi, s.a, SpecSet<ThrdPtr>{}))
      << "T_A_wf rejects missing threads";

  // Boot wiring satisfies both isolation invariants.
  EXPECT_TRUE(MemoryIso(psi, DomainProcs(psi, s.a), DomainProcs(psi, s.b)));
  EXPECT_TRUE(EndpointIso(psi, t_a, t_b));
  // A and V share a channel, so A/V endpoint isolation must NOT hold.
  EXPECT_FALSE(EndpointIso(psi, t_a, DomainThreads(psi, s.v)));
}

TEST(IsolationTest, MemoryIsoDetectsSharedPage) {
  AbvScenario s = MakeScenario();
  ASSERT_EQ(s.kernel.Step(s.a_threads[0], MmapCall(0x400000, 1)).error, SysError::kOk);
  PagePtr page = s.kernel.vm().Resolve(s.a_proc, 0x400000)->addr;
  // Forge a B mapping of A's page behind the kernel interface.
  ASSERT_EQ(s.kernel.vm_mut().MapSharedPage(&s.kernel.alloc_mut(), s.b_proc, 0x500000, page,
                                            PageSize::k4K, kRw),
            MapError::kOk);
  AbstractKernel psi = s.kernel.Abstract();
  EXPECT_FALSE(MemoryIso(psi, DomainProcs(psi, s.a), DomainProcs(psi, s.b)));
}

TEST(IsolationTest, EndpointIsoDetectsSharedEndpoint) {
  AbvScenario s = MakeScenario();
  // Forge: bind A's channel endpoint into a B thread.
  ASSERT_EQ(s.kernel.pm_mut().BindEndpoint(s.b_threads[0], 5, s.e_av), ProcError::kOk);
  AbstractKernel psi = s.kernel.Abstract();
  EXPECT_FALSE(
      EndpointIso(psi, DomainThreads(psi, s.a), DomainThreads(psi, s.b)));
}

// ---------------------------------------------------------------------------
// Observation function
// ---------------------------------------------------------------------------

TEST(ObservationTest, InvariantUnderForeignAllocations) {
  AbvScenario s1 = MakeScenario();
  AbvScenario s2 = MakeScenario();
  // In world 2 only, A allocates first — B's later pages land at different
  // physical addresses.
  ASSERT_EQ(s2.kernel.Step(s2.a_threads[0], MmapCall(0x400000, 7)).error, SysError::kOk);
  ASSERT_EQ(s1.kernel.Step(s1.b_threads[0], MmapCall(0x600000, 2)).error, SysError::kOk);
  ASSERT_EQ(s2.kernel.Step(s2.b_threads[0], MmapCall(0x600000, 2)).error, SysError::kOk);

  DomainView v1 = ObserveDomain(s1.kernel.Abstract(), s1.b);
  DomainView v2 = ObserveDomain(s2.kernel.Abstract(), s2.b);
  EXPECT_EQ(v1, v2) << "canonicalized observation hides allocator placement";
}

TEST(ObservationTest, SensitiveToOwnStateChanges) {
  AbvScenario s = MakeScenario();
  DomainView before = ObserveDomain(s.kernel.Abstract(), s.b);
  ASSERT_EQ(s.kernel.Step(s.b_threads[0], MmapCall(0x600000, 1)).error, SysError::kOk);
  DomainView after = ObserveDomain(s.kernel.Abstract(), s.b);
  EXPECT_NE(before, after);
}

TEST(ObservationTest, PreservesSharingStructure) {
  // Two B mappings of the same page vs two distinct pages must observe
  // differently even under canonicalization.
  AbvScenario s1 = MakeScenario();
  AbvScenario s2 = MakeScenario();
  for (AbvScenario* s : {&s1, &s2}) {
    ASSERT_EQ(s->kernel.Step(s->b_threads[0], MmapCall(0x600000, 2)).error, SysError::kOk);
  }
  // World 1: alias the first page at a third address; world 2: fresh page.
  PagePtr page = s1.kernel.vm().Resolve(s1.b_proc, 0x600000)->addr;
  ASSERT_EQ(s1.kernel.vm_mut().MapSharedPage(&s1.kernel.alloc_mut(), s1.b_proc, 0x608000,
                                             page, PageSize::k4K, kRw),
            MapError::kOk);
  ASSERT_EQ(s2.kernel.Step(s2.b_threads[0], MmapCall(0x608000, 1)).error, SysError::kOk);
  EXPECT_NE(ObserveDomain(s1.kernel.Abstract(), s1.b),
            ObserveDomain(s2.kernel.Abstract(), s2.b));
}

// ---------------------------------------------------------------------------
// Verified proxy V
// ---------------------------------------------------------------------------

TEST(VerifiedProxyTest, EchoCallReply) {
  AbvScenario s = MakeScenario();
  VerifiedProxy v(&s.kernel, s);

  Syscall call;
  call.op = SysOp::kCall;
  call.edpt_idx = AbvScenario::kClientSlot;
  call.payload.scalars = {kOpEcho, 0, 0, 0};
  EXPECT_EQ(s.kernel.Step(s.a_threads[0], call).error, SysError::kBlocked);

  EXPECT_EQ(v.DrainAll(), 1);
  EXPECT_EQ(s.kernel.pm().GetThread(s.a_threads[0]).state, ThreadState::kRunnable);
  auto reply = s.kernel.TakeInbound(s.a_threads[0]);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->scalars[0], kOpEcho + 1);
  EXPECT_TRUE(v.SpecWf());
}

TEST(VerifiedProxyTest, RecordsSharedPagesPerClient) {
  AbvScenario s = MakeScenario();
  VerifiedProxy v(&s.kernel, s);

  ASSERT_EQ(s.kernel.Step(s.a_threads[0], MmapCall(0x400000, 1)).error, SysError::kOk);
  ASSERT_EQ(s.kernel.Step(s.b_threads[0], MmapCall(0x400000, 1)).error, SysError::kOk);
  EXPECT_EQ(s.kernel.Step(s.a_threads[0], ShareCall(0x400000, 0x700000)).error,
            SysError::kBlocked);
  EXPECT_EQ(s.kernel.Step(s.b_threads[0], ShareCall(0x400000, 0x710000)).error,
            SysError::kBlocked);
  EXPECT_EQ(v.DrainAll(), 2);

  EXPECT_EQ(v.pages_from_a().size(), 1u);
  EXPECT_EQ(v.pages_from_b().size(), 1u);
  std::string detail;
  EXPECT_TRUE(v.SpecWf(&detail)) << detail;
  // The shared pages are mapped both in the clients and in V.
  AbstractKernel psi = s.kernel.Abstract();
  EXPECT_TRUE(psi.get_address_space(s.v_proc).contains(0x700000));
  EXPECT_TRUE(psi.get_address_space(s.v_proc).contains(0x710000));
  // A and B still satisfy memory isolation (V holds both, A/B don't mix).
  EXPECT_TRUE(MemoryIso(psi, DomainProcs(psi, s.a), DomainProcs(psi, s.b)));
}

TEST(VerifiedProxyTest, ReleaseReturnsClientPages) {
  AbvScenario s = MakeScenario();
  VerifiedProxy v(&s.kernel, s);

  ASSERT_EQ(s.kernel.Step(s.a_threads[0], MmapCall(0x400000, 1)).error, SysError::kOk);
  EXPECT_EQ(s.kernel.Step(s.a_threads[0], ShareCall(0x400000, 0x700000)).error,
            SysError::kBlocked);
  v.DrainAll();
  PagePtr page = s.kernel.vm().Resolve(s.v_proc, 0x700000)->addr;
  EXPECT_EQ(s.kernel.alloc().MapCount(page), 2u);

  // Client releases its own copy, then asks V to release.
  Syscall unmap;
  unmap.op = SysOp::kMunmap;
  unmap.va_range = VaRange{0x400000, 1, PageSize::k4K};
  ASSERT_EQ(s.kernel.Step(s.a_threads[0], unmap).error, SysError::kOk);
  Syscall release;
  release.op = SysOp::kSend;
  release.edpt_idx = AbvScenario::kClientSlot;
  release.payload.scalars = {kOpRelease, 0, 0, 0};
  EXPECT_EQ(s.kernel.Step(s.a_threads[0], release).error, SysError::kBlocked);
  v.DrainAll();

  EXPECT_TRUE(v.pages_from_a().empty());
  EXPECT_EQ(s.kernel.alloc().StateOf(page), PageState::kFree) << "V released the last ref";
  EXPECT_TRUE(v.SpecWf());
}

TEST(VerifiedProxyTest, ReleasesPagesOfCrashedClient) {
  AbvScenario s = MakeScenario();
  VerifiedProxy v(&s.kernel, s);

  // B shares a page with V, then B's container is killed by a root-side
  // administrator thread (trusted init acting for the parent).
  ASSERT_EQ(s.kernel.Step(s.b_threads[0], MmapCall(0x400000, 1)).error, SysError::kOk);
  EXPECT_EQ(s.kernel.Step(s.b_threads[0], ShareCall(0x400000, 0x720000)).error,
            SysError::kBlocked);
  v.DrainAll();
  PagePtr page = s.kernel.vm().Resolve(s.v_proc, 0x720000)->addr;

  auto admin_proc = s.kernel.BootCreateProcess(s.kernel.root_container());
  auto admin = s.kernel.BootCreateThread(admin_proc.value);
  ASSERT_TRUE(admin.ok());
  Syscall kill;
  kill.op = SysOp::kKillContainer;
  kill.target = s.b;
  ASSERT_EQ(s.kernel.Step(admin.value, kill).error, SysError::kOk);
  EXPECT_FALSE(s.kernel.pm().ContainerExists(s.b));
  // V still holds the page (granted resources are not revoked, §3).
  EXPECT_EQ(s.kernel.alloc().StateOf(page), PageState::kMapped);

  // V's crash handler releases everything received from B.
  v.OnClientCrash(s.b);
  EXPECT_TRUE(v.pages_from_b().empty());
  EXPECT_EQ(s.kernel.alloc().StateOf(page), PageState::kFree);
  InvResult wf = s.kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

// ---------------------------------------------------------------------------
// Unwinding conditions over adversarial traces
// ---------------------------------------------------------------------------

class NoninterferenceTraceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(NoninterferenceTraceTest, UnwindingConditionsHoldOverRandomTraces) {
  AbvScenario s = MakeScenario();
  NoninterferenceHarness harness(&s, GetParam());
  NoninterferenceOptions options;
  options.steps = 120;
  UnwindingReport report = harness.Run(options);
  EXPECT_TRUE(report.ok) << report.detail;
  EXPECT_GT(report.steps, 0u);
  EXPECT_GT(report.oc_checks, 0u);
  EXPECT_GT(report.sc_checks, 0u);
  EXPECT_GT(report.iso_checks, 0u);
  InvResult wf = s.kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoninterferenceTraceTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(NoninterferenceTest, AdversaryCannotKillForeignContainers) {
  AbvScenario s = MakeScenario();
  Syscall kill;
  kill.op = SysOp::kKillContainer;
  for (CtnrPtr target : {s.b, s.v, s.kernel.root_container()}) {
    kill.target = target;
    EXPECT_EQ(s.kernel.Step(s.a_threads[0], kill).error, SysError::kDenied);
  }
  kill.op = SysOp::kKillProcess;
  kill.target = s.b_proc;
  EXPECT_EQ(s.kernel.Step(s.a_threads[0], kill).error, SysError::kDenied);
}

TEST(NoninterferenceTest, QuotaConservationMakesAllocationDenialLocal) {
  // A exhausts its own quota; B's allocations still succeed — one domain
  // cannot exhaust the memory of the system (§4.2).
  AbvScenario s = MakeScenario();
  SyscallRet ra = s.kernel.Step(s.a_threads[0], MmapCall(0x4000000, 400));
  ASSERT_EQ(ra.error, SysError::kOk);
  EXPECT_EQ(s.kernel.Step(s.a_threads[0], MmapCall(0x8000000, 400)).error,
            SysError::kQuotaExceeded);
  EXPECT_EQ(s.kernel.Step(s.b_threads[0], MmapCall(0x4000000, 128)).error, SysError::kOk);
}

}  // namespace
}  // namespace atmo
