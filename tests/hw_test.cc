// Unit tests for the hardware model: physical memory with frame permissions
// and the 4-level MMU walker.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/mmu.h"
#include "src/hw/phys_mem.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr std::uint64_t kFrames = 1024;  // 4 MiB of simulated memory

// ---------------------------------------------------------------------------
// PhysMem + FramePerm
// ---------------------------------------------------------------------------

TEST(PhysMemTest, ReadBackWrites) {
  PhysMem mem(kFrames);
  FramePerm perm = FramePerm::Mint(0x4000, PageSize::k4K);
  mem.WriteU64(perm, 0x4000, 0xdeadbeefull);
  mem.WriteU64(perm, 0x4ff8, 42);
  EXPECT_EQ(mem.ReadU64(perm, 0x4000), 0xdeadbeefull);
  EXPECT_EQ(mem.ReadU64(perm, 0x4ff8), 42u);
}

TEST(PhysMemTest, UntouchedMemoryReadsZero) {
  PhysMem mem(kFrames);
  FramePerm perm = FramePerm::Mint(0x8000, PageSize::k4K);
  EXPECT_EQ(mem.ReadU64(perm, 0x8000), 0u);
}

TEST(PhysMemTest, AccessOutsidePermissionIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PhysMem mem(kFrames);
  FramePerm perm = FramePerm::Mint(0x4000, PageSize::k4K);
  EXPECT_THROW(mem.ReadU64(perm, 0x5000), CheckViolation);
  EXPECT_THROW(mem.WriteU64(perm, 0x3ff8, 1), CheckViolation);
  // Straddling the end of the frame is also out of bounds.
  EXPECT_THROW(mem.WriteBytes(perm, 0x4ffc, "12345678", 8), CheckViolation);
}

TEST(PhysMemTest, SuperpagePermCoversWholeRange) {
  PhysMem mem(2 * 512);  // 4 MiB
  FramePerm perm = FramePerm::Mint(0, PageSize::k2M);
  mem.WriteU64(perm, 0, 1);
  mem.WriteU64(perm, kPageSize2M - 8, 2);
  EXPECT_EQ(mem.ReadU64(perm, kPageSize2M - 8), 2u);
}

TEST(PhysMemTest, UnalignedPermBaseIsViolation) {
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(FramePerm::Mint(0x4100, PageSize::k4K), CheckViolation);
  EXPECT_THROW(FramePerm::Mint(kPageSize4K, PageSize::k2M), CheckViolation);
}

TEST(PhysMemTest, PermUseAfterMoveIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PhysMem mem(kFrames);
  FramePerm perm = FramePerm::Mint(0x4000, PageSize::k4K);
  FramePerm moved = std::move(perm);
  EXPECT_EQ(mem.ReadU64(moved, 0x4000), 0u);
  EXPECT_THROW(perm.base(), CheckViolation);  // NOLINT(bugprone-use-after-move)
}

TEST(PhysMemTest, BytesRoundTripAcrossFrameBoundary) {
  PhysMem mem(kFrames);
  FramePerm perm = FramePerm::Mint(0x200000, PageSize::k2M);
  std::vector<std::uint8_t> out(32, 0);
  std::vector<std::uint8_t> in(32);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i + 1);
  }
  // Straddle a 4K boundary inside the 2M permission.
  mem.WriteBytes(perm, 0x200000 + kPageSize4K - 16, in.data(), in.size());
  mem.ReadBytes(perm, 0x200000 + kPageSize4K - 16, out.data(), out.size());
  EXPECT_EQ(in, out);
}

TEST(PhysMemTest, ZeroPageScrubs) {
  PhysMem mem(kFrames);
  FramePerm perm = FramePerm::Mint(0x4000, PageSize::k4K);
  mem.WriteU64(perm, 0x4000, 0xffffffffffffffffull);
  mem.ZeroPage(perm);
  EXPECT_EQ(mem.ReadU64(perm, 0x4000), 0u);
}

TEST(PhysMemTest, OutOfRangeHwAccessIsViolation) {
  ScopedThrowOnCheckFailure guard;
  PhysMem mem(4);
  EXPECT_THROW(mem.HwReadU64(4 * kPageSize4K), CheckViolation);
  EXPECT_THROW(mem.HwWriteU64(4 * kPageSize4K, 1), CheckViolation);
  EXPECT_EQ(mem.HwReadU64(4 * kPageSize4K - 8), 0u);
}

// ---------------------------------------------------------------------------
// MMU walker
// ---------------------------------------------------------------------------

// Helper that hand-builds page tables in simulated memory (independent of the
// kernel's page-table subsystem — this is the "hardware view" fixture).
class MmuTest : public ::testing::Test {
 protected:
  MmuTest() : mem_(8192), mmu_(&mem_) {}

  // Allocate a fresh (zeroed) table frame.
  PAddr NewTable() {
    PAddr addr = next_;
    next_ += kPageSize4K;
    return addr;
  }

  void SetEntry(PAddr table, std::uint64_t index, std::uint64_t pte) {
    mem_.HwWriteU64(table + index * 8, pte);
  }

  // Builds a full 4-level chain mapping `va` -> `pa` (4K), returns cr3.
  PAddr BuildSingle4K(VAddr va, PAddr pa, MapEntryPerm perm) {
    PAddr cr3 = NewTable();
    PAddr l3 = NewTable();
    PAddr l2 = NewTable();
    PAddr l1 = NewTable();
    MapEntryPerm inner{.writable = true, .user = true, .no_execute = false};
    SetEntry(cr3, VaIndex(va, 4), MakePte(l3, inner, false));
    SetEntry(l3, VaIndex(va, 3), MakePte(l2, inner, false));
    SetEntry(l2, VaIndex(va, 2), MakePte(l1, inner, false));
    SetEntry(l1, VaIndex(va, 1), MakePte(pa, perm, false));
    return cr3;
  }

  PhysMem mem_;
  Mmu mmu_;
  PAddr next_ = 0x10000;
};

TEST_F(MmuTest, Resolves4KMapping) {
  MapEntryPerm rw{.writable = true, .user = true, .no_execute = false};
  VAddr va = IndexToVa(1, 2, 3, 4);
  PAddr cr3 = BuildSingle4K(va, 0x7000, rw);

  auto walk = mmu_.Walk(cr3, va + 0x123);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->page_base, 0x7000u);
  EXPECT_EQ(walk->paddr, 0x7123u);
  EXPECT_EQ(walk->size, PageSize::k4K);
  EXPECT_TRUE(walk->perm.writable);
  EXPECT_TRUE(walk->perm.user);
}

TEST_F(MmuTest, UnmappedAddressFaults) {
  MapEntryPerm rw{.writable = true, .user = true, .no_execute = false};
  VAddr va = IndexToVa(1, 2, 3, 4);
  PAddr cr3 = BuildSingle4K(va, 0x7000, rw);
  EXPECT_FALSE(mmu_.Walk(cr3, IndexToVa(1, 2, 3, 5)).has_value());
  EXPECT_FALSE(mmu_.Walk(cr3, IndexToVa(1, 2, 4, 4)).has_value());
  EXPECT_FALSE(mmu_.Walk(cr3, IndexToVa(2, 2, 3, 4)).has_value());
}

TEST_F(MmuTest, RightsIntersectAlongWalk) {
  // Leaf grants write but the PML4 entry does not: mapping is read-only.
  VAddr va = IndexToVa(0, 0, 0, 1);
  PAddr cr3 = NewTable();
  PAddr l3 = NewTable();
  PAddr l2 = NewTable();
  PAddr l1 = NewTable();
  MapEntryPerm ro{.writable = false, .user = true, .no_execute = false};
  MapEntryPerm rw{.writable = true, .user = true, .no_execute = false};
  SetEntry(cr3, VaIndex(va, 4), MakePte(l3, ro, false));
  SetEntry(l3, VaIndex(va, 3), MakePte(l2, rw, false));
  SetEntry(l2, VaIndex(va, 2), MakePte(l1, rw, false));
  SetEntry(l1, VaIndex(va, 1), MakePte(0x9000, rw, false));

  auto walk = mmu_.Walk(cr3, va);
  ASSERT_TRUE(walk.has_value());
  EXPECT_FALSE(walk->perm.writable);
  EXPECT_FALSE(mmu_.Permits(cr3, va, Mmu::Access::kWrite, /*user_mode=*/true));
  EXPECT_TRUE(mmu_.Permits(cr3, va, Mmu::Access::kRead, /*user_mode=*/true));
}

TEST_F(MmuTest, Resolves2MSuperpage) {
  VAddr va = IndexToVa(0, 1, 2, 0);
  PAddr cr3 = NewTable();
  PAddr l3 = NewTable();
  PAddr l2 = NewTable();
  MapEntryPerm rw{.writable = true, .user = true, .no_execute = false};
  SetEntry(cr3, VaIndex(va, 4), MakePte(l3, rw, false));
  SetEntry(l3, VaIndex(va, 3), MakePte(l2, rw, false));
  SetEntry(l2, VaIndex(va, 2), MakePte(2 * kPageSize2M, rw, /*leaf_superpage=*/true));

  auto walk = mmu_.Walk(cr3, va + 0x12345);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size, PageSize::k2M);
  EXPECT_EQ(walk->page_base, 2 * kPageSize2M);
  EXPECT_EQ(walk->paddr, 2 * kPageSize2M + 0x12345);
}

TEST_F(MmuTest, Resolves1GSuperpage) {
  VAddr va = IndexToVa(0, 1, 0, 0);
  PAddr cr3 = NewTable();
  PAddr l3 = NewTable();
  MapEntryPerm rw{.writable = true, .user = true, .no_execute = false};
  SetEntry(cr3, VaIndex(va, 4), MakePte(l3, rw, false));
  SetEntry(l3, VaIndex(va, 3), MakePte(0, rw, /*leaf_superpage=*/true));

  auto walk = mmu_.Walk(cr3, va + 0xabcdef);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size, PageSize::k1G);
  EXPECT_EQ(walk->paddr, 0xabcdefull);
}

TEST_F(MmuTest, MisalignedSuperpageBaseFaults) {
  VAddr va = IndexToVa(0, 1, 2, 0);
  PAddr cr3 = NewTable();
  PAddr l3 = NewTable();
  PAddr l2 = NewTable();
  MapEntryPerm rw{.writable = true, .user = true, .no_execute = false};
  SetEntry(cr3, VaIndex(va, 4), MakePte(l3, rw, false));
  SetEntry(l3, VaIndex(va, 3), MakePte(l2, rw, false));
  // 2M leaf pointing at a 4K-aligned (but not 2M-aligned) base.
  SetEntry(l2, VaIndex(va, 2), MakePte(3 * kPageSize4K, rw, /*leaf_superpage=*/true));
  EXPECT_FALSE(mmu_.Walk(cr3, va).has_value());
}

TEST_F(MmuTest, SupervisorOnlyMappingBlocksUserMode) {
  MapEntryPerm sup{.writable = true, .user = false, .no_execute = false};
  VAddr va = IndexToVa(3, 0, 0, 0);
  PAddr cr3 = NewTable();
  PAddr l3 = NewTable();
  PAddr l2 = NewTable();
  PAddr l1 = NewTable();
  SetEntry(cr3, VaIndex(va, 4), MakePte(l3, sup, false));
  SetEntry(l3, VaIndex(va, 3), MakePte(l2, sup, false));
  SetEntry(l2, VaIndex(va, 2), MakePte(l1, sup, false));
  SetEntry(l1, VaIndex(va, 1), MakePte(0xa000, sup, false));
  EXPECT_FALSE(mmu_.Permits(cr3, va, Mmu::Access::kRead, /*user_mode=*/true));
  EXPECT_TRUE(mmu_.Permits(cr3, va, Mmu::Access::kRead, /*user_mode=*/false));
}

TEST_F(MmuTest, NxBlocksExecute) {
  MapEntryPerm nx{.writable = true, .user = true, .no_execute = true};
  VAddr va = IndexToVa(1, 1, 1, 1);
  PAddr cr3 = BuildSingle4K(va, 0xb000, nx);
  EXPECT_FALSE(mmu_.Permits(cr3, va, Mmu::Access::kExecute, /*user_mode=*/true));
  EXPECT_TRUE(mmu_.Permits(cr3, va, Mmu::Access::kRead, /*user_mode=*/true));
}

TEST_F(MmuTest, InvalidCr3Faults) {
  EXPECT_FALSE(mmu_.Walk(/*cr3=*/0x123, 0).has_value());                  // unaligned
  EXPECT_FALSE(mmu_.Walk(/*cr3=*/mem_.bytes() + kPageSize4K, 0).has_value());  // out of range
}

TEST(PteTest, MakeAndDecodeRoundTrip) {
  MapEntryPerm perm{.writable = true, .user = false, .no_execute = true};
  std::uint64_t pte = MakePte(0x123000, perm, false);
  EXPECT_TRUE(pte & kPtePresent);
  EXPECT_EQ(pte & kPteAddrMask, 0x123000u);
  EXPECT_EQ(PtePerm(pte), perm);
  EXPECT_FALSE(pte & kPtePageSize);
  EXPECT_TRUE(MakePte(0, perm, true) & kPtePageSize);
}

TEST(PteTest, VaIndexInverse) {
  for (std::uint64_t l4 : {0ull, 1ull, 511ull}) {
    for (std::uint64_t l1 : {0ull, 7ull, 511ull}) {
      VAddr va = IndexToVa(l4, 3, 5, l1);
      EXPECT_EQ(VaIndex(va, 4), l4);
      EXPECT_EQ(VaIndex(va, 3), 3u);
      EXPECT_EQ(VaIndex(va, 2), 5u);
      EXPECT_EQ(VaIndex(va, 1), l1);
    }
  }
}

}  // namespace
}  // namespace atmo
