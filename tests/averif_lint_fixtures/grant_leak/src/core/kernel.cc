// Seeded violation for the grant-lifetime rule: BeginBorrow records a page
// borrow and teardown (DestroyAddressSpace) can revoke it, but the
// kGrantReturn handler only acknowledges the return — no path from it
// reaches `borrows_.erase`/`clear`, so a cooperative return leaks the
// borrow record until the process dies.

#include <set>

namespace atmo {

enum class SysOp { kGrantBegin, kGrantReturn, kExit };

class VmManager {
 public:
  void BeginBorrow(unsigned long page) {
    borrows_.emplace(page);  // seeded: recorded, unreachable from kGrantReturn
  }

  void NoteGrantReturn(unsigned long page) {
    last_returned_ = page;  // acknowledges the return without revoking
  }

  void DestroyAddressSpace() { borrows_.clear(); }

 private:
  std::set<unsigned long> borrows_;
  unsigned long last_returned_ = 0;
};

class Kernel {
 public:
  int Exec(SysOp op) {
    switch (op) {
      case SysOp::kGrantBegin:
        vm_.BeginBorrow(1);
        return 0;
      case SysOp::kGrantReturn:
        vm_.NoteGrantReturn(1);
        return 0;
      case SysOp::kExit:
        return 0;
    }
    return -1;
  }

 private:
  VmManager vm_;
};

}  // namespace atmo
