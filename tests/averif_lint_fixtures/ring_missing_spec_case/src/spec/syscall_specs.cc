// Fixture: kRingEnter is missing from the dispatcher — the seeded violation.
namespace atmo {

SpecResult SyscallSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                       const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  switch (call.op) {
    case SysOp::kYield:
      return YieldSpec(pre, post, t, ret);
    case SysOp::kRingSetup:
      return RingSetupSpec(pre, post, t, call, ret);
    case SysOp::kRingSubmit:
      return RingSubmitSpec(pre, post, t, call, ret);
  }
  return Fail("unknown syscall");
}

}  // namespace atmo
