// Fixture: frame-condition table covering every op, including the
// full-width kRingEnter profile.
namespace atmo {

constexpr FrameProfile FrameProfileFor(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return {.threads = true, .scheduler = true};
    case SysOp::kRingSetup:
      return {.rings = true};
    case SysOp::kRingSubmit:
      return {.rings = true};
    case SysOp::kRingEnter:
      return {.threads = true, .rings = true, .scheduler = true};
  }
  return {};
}

}  // namespace atmo
