// Fixture: kernel-side locations cover every ring op; only the spec
// dispatcher has the hole.
namespace atmo {

const char* SysOpName(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return "yield";
    case SysOp::kRingSetup:
      return "ring_setup";
    case SysOp::kRingSubmit:
      return "ring_submit";
    case SysOp::kRingEnter:
      return "ring_enter";
  }
  return "?";
}

SyscallRet Kernel::Exec(ThrdPtr t, const Syscall& call) {
  switch (call.op) {
    case SysOp::kYield:
      return SysYield(t);
    case SysOp::kRingSetup:
      return SysRingSetup(t, call);
    case SysOp::kRingSubmit:
      return SysRingSubmit(t, call);
    case SysOp::kRingEnter:
      return ExecBatch(t, call);
  }
  return SyscallRet{};
}

}  // namespace atmo
