// Fixture: ring-bearing syscall surface; the spec dispatcher misses
// kRingEnter (the batch-drain op — exactly the case the amortized checking
// design must never leave unspecified).
namespace atmo {

enum class SysOp {
  kYield,
  kRingSetup,
  kRingSubmit,
  kRingEnter,
};

}  // namespace atmo
