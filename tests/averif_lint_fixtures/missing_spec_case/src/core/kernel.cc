// Fixture: kernel-side locations cover every op; only the spec dispatcher
// has the hole.
namespace atmo {

const char* SysOpName(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return "yield";
    case SysOp::kMmap:
      return "mmap";
    case SysOp::kExit:
      return "exit";
  }
  return "?";
}

SyscallRet Kernel::Exec(ThrdPtr t, const Syscall& call) {
  switch (call.op) {
    case SysOp::kYield:
      return SysYield(t);
    case SysOp::kMmap:
      return SysMmap(t, call);
    case SysOp::kExit:
      return SysExit(t);
  }
  return SyscallRet{};
}

}  // namespace atmo
