// Fixture: three-op syscall surface; the spec dispatcher misses kExit.
namespace atmo {

enum class SysOp {
  kYield,
  kMmap,
  kExit,
};

}  // namespace atmo
