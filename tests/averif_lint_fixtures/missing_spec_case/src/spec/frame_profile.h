// Fixture: frame-condition table covering every op.
namespace atmo {

constexpr FrameProfile FrameProfileFor(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return {.threads = true, .scheduler = true};
    case SysOp::kMmap:
      return {.address_spaces = true, .pages = true};
    case SysOp::kExit:
      return {.threads = true, .scheduler = true};
  }
  return {};
}

}  // namespace atmo
