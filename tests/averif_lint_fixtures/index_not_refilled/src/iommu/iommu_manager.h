// Fixture: hashed lockstep index with a Wf clause and a CloneForVerification
// rebuild, but a pooled CloneForVerificationInto that forgets to rebuild the
// index against the reused nodes.
namespace atmo {

class IommuManager {
 public:
  explicit IommuManager(PhysMem* mem) : mem_(mem) {}

  IommuDomainId CreateDomain(PageAllocator* alloc, CtnrPtr ctnr);

  bool Wf() const;
  IommuManager CloneForVerification(PhysMem* mem) const;
  void CloneForVerificationInto(IommuManager* out, PhysMem* mem) const;

 private:
  PhysMem* mem_;
  std::map<IommuDomainId, PageTable> domains_;
  std::unordered_map<IommuDomainId, PageTable*> domain_index_;
  std::unordered_map<IommuDomainId, CtnrPtr> owner_overrides_;
  DirtyLog dirty_;
};

}  // namespace atmo
