namespace atmo {

IommuDomainId IommuManager::CreateDomain(PageAllocator* alloc, CtnrPtr ctnr) {
  auto [it, inserted] = domains_.emplace(next_domain_, PageTable());
  domain_index_.emplace(next_domain_, &it->second);
  dirty_.Mark(next_domain_);
  return next_domain_++;
}

bool IommuManager::Wf() const {
  if (domain_index_.size() != domains_.size()) {
    return false;
  }
  for (const auto& [id, table] : domains_) {
    auto it = domain_index_.find(id);
    if (it == domain_index_.end() || it->second != &table) {
      return false;
    }
  }
  for (const auto& [id, owner] : owner_overrides_) {
    if (domains_.find(id) == domains_.end()) {
      return false;
    }
  }
  return true;
}

IommuManager IommuManager::CloneForVerification(PhysMem* mem) const {
  IommuManager out(mem);
  for (const auto& [id, table] : domains_) {
    auto [it, inserted] = out.domains_.emplace(id, table);
    out.domain_index_.emplace(id, &it->second);
  }
  out.owner_overrides_ = owner_overrides_;
  return out;
}

// Seeded violation: the pooled refill reuses the destination's map nodes but
// never rebuilds domain_index_, so the pooled clone keeps verifying through
// whatever the index pointed at before the refill.
void IommuManager::CloneForVerificationInto(IommuManager* out, PhysMem* mem) const {
  out->mem_ = mem;
  auto dit = out->domains_.begin();
  for (const auto& [id, table] : domains_) {
    while (dit != out->domains_.end() && dit->first < id) {
      dit = out->domains_.erase(dit);
    }
    if (dit != out->domains_.end() && dit->first == id) {
      dit->second = table;
      ++dit;
    } else {
      dit = out->domains_.emplace_hint(dit, id, table);
      ++dit;
    }
  }
  out->domains_.erase(dit, out->domains_.end());
  out->owner_overrides_ = owner_overrides_;
  out->dirty_.Reset();
}

}  // namespace atmo
