// Seeded violation for the trace-stage-coverage rule: four hot-path roots.
// One stamps its stage directly, one reaches a stamp through a helper, one
// carries a waiver — none of those may fire. TxFlush neither stamps nor
// reaches a stamp nor waives: sampled requests pass through it invisibly,
// and the rule must fire exactly there.

#include "src/vstd/thread_annotations.h"

namespace atmo {

class IxgbeDriver {
 public:
  unsigned RxPeekBurst(unsigned n) ATMO_HOT_PATH(hot-path-alloc) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.rx", "trace_id", n);  // direct stamp
    return n;
  }

  void TxCommitDeferred(unsigned len) ATMO_HOT_PATH(hot-path-alloc) {
    StampTx(len);  // stamp reached through a helper: must not fire
  }

  void TxFlush() ATMO_HOT_PATH(hot-path-alloc) { tail_ = rx_; }  // seeded: no stamp

  // averif-lint: allow(trace-stage-coverage) — housekeeping, no request
  // passes through here.
  void RxReleaseBurst(unsigned n) ATMO_HOT_PATH(hot-path-alloc) { rx_ += n; }

 private:
  void StampTx(unsigned len) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.tx", "trace_id", len);
  }

  unsigned rx_ = 0;
  unsigned tail_ = 0;
};

}  // namespace atmo
