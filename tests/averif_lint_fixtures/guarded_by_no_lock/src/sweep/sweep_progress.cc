// Seeded violations for the lock-discipline rule: a SweepProgress-shaped
// class whose ATMO_GUARDED_BY counter is (a) touched without the mutex and
// (b) read through an ATMO_REQUIRES accessor whose caller never takes the
// lock — the interprocedural half Clang's per-function analysis can't see.
// The locked mutator must NOT fire.

#include "src/vstd/thread_annotations.h"

namespace atmo {

class SweepProgress {
 public:
  void BumpLocked() {
    MutexLock lock(&mu_);
    done_ += 1;  // held: must not fire
  }

  void BumpUnlocked() {
    done_ += 1;  // seeded: touch without the mutex
  }

  unsigned long SnapshotLocked() ATMO_REQUIRES(mu_) {
    return done_;  // contract moves the obligation to callers
  }

  unsigned long ReadRacy() {
    return SnapshotLocked();  // seeded: REQUIRES callee, lock never taken
  }

 private:
  Mutex mu_;
  unsigned long done_ ATMO_GUARDED_BY(mu_) = 0;
};

}  // namespace atmo
