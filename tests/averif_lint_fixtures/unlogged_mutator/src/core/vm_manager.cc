namespace atmo {

bool VmManager::CreateAddressSpace(PageAllocator* alloc, ProcPtr proc, CtnrPtr owner) {
  auto [it, inserted] = tables_.emplace(proc, PageTable());
  table_index_.emplace(proc, &it->second);
  dirty_.Mark(proc);
  return inserted;
}

// Seeded violation: erases a table (abstract address space changes) without
// recording into the dirty log.
std::optional<UnmapResult> VmManager::Unmap(PageAllocator* alloc, ProcPtr proc, VAddr va) {
  table_index_.erase(proc);
  tables_.erase(proc);
  return std::nullopt;
}

bool VmManager::Wf() const { return table_index_.size() == tables_.size(); }

VmManager VmManager::CloneForVerification(PhysMem* mem) const {
  VmManager out(mem);
  for (const auto& [proc, table] : tables_) {
    auto [it, inserted] = out.tables_.emplace(proc, table);
    out.table_index_.emplace(proc, &it->second);
  }
  return out;
}

}  // namespace atmo
