// Fixture: VmManager with one public mutator that forgets its dirty log.
namespace atmo {

class VmManager {
 public:
  explicit VmManager(PhysMem* mem) : mem_(mem) {}

  bool CreateAddressSpace(PageAllocator* alloc, ProcPtr proc, CtnrPtr owner);
  std::optional<UnmapResult> Unmap(PageAllocator* alloc, ProcPtr proc, VAddr va);
  void DrainDirtyInto(std::set<ProcPtr>* out, bool* overflow) { dirty_.DrainInto(out, overflow); }

  bool Wf() const;
  VmManager CloneForVerification(PhysMem* mem) const;

 private:
  PhysMem* mem_;
  std::map<ProcPtr, PageTable> tables_;
  std::unordered_map<ProcPtr, PageTable*> table_index_;
  DirtyLog dirty_;
};

}  // namespace atmo
