namespace atmo {

// Seeded violation: the predicate can reject (Fail) before the failure
// atomicity obligation has been established.
SpecResult MmapSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                    const Syscall& call, const SyscallRet& ret) {
  if (ret.value != call.count) {
    return Fail("bad count");
  }
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  return SpecResult{};
}

// Control: atomicity first is accepted.
SpecResult MunmapSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                      const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  if (ret.value != call.count) {
    return Fail("bad count");
  }
  return SpecResult{};
}

// Control: a justified waiver is honoured.
// averif-lint: allow(error-path) — total operation, errors rejected outright.
SpecResult YieldSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                     const SyscallRet& ret) {
  if (ret.error != SysError::kOk) {
    return Fail("yield cannot fail");
  }
  return SpecResult{};
}

}  // namespace atmo
