// Seeded violation for the payload-copy rule: a splice-serve entry point
// marked ATMO_HOT_PATH(payload-copy) that reaches both an injected memcpy
// staging copy and a byte-copy loop (the static twin of a CopyProbe
// regression on the zero-copy serve path).

#include <cstring>

#include "src/vstd/thread_annotations.h"

namespace atmo {

class Httpd {
 public:
  // averif-lint: allow(trace-stage-coverage) — fixture isolates payload-copy
  int HandleRequestSpliced(int len) ATMO_HOT_PATH(payload-copy) { return ServeFile(len); }

 private:
  int ServeFile(int len) {
    unsigned char staged[256];
    std::memcpy(staged, body_, 128);  // seeded: payload staged through memcpy
    for (int i = 0; i < len; ++i) {
      staged[i] = body_[i];  // seeded: byte-copy loop over the payload
    }
    return staged[0];
  }

  unsigned char body_[256] = {0};
};

}  // namespace atmo
