namespace atmo {

// Seeded violation: the default label hides unhandled SysOp values from
// -Wswitch.
const char* SysOpName(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return "yield";
    default:
      return "?";
  }
}

// Control: a default over a non-SysOp enum is fine.
const char* SizeName(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return "4k";
    default:
      return "big";
  }
}

}  // namespace atmo
