namespace atmo {

IommuDomainId IommuManager::CreateDomain(PageAllocator* alloc, CtnrPtr ctnr) {
  auto [it, inserted] = domains_.emplace(next_domain_, PageTable());
  domain_index_.emplace(next_domain_, &it->second);
  dirty_.Mark(next_domain_);
  return next_domain_++;
}

// Seeded violation: the predicate never cross-checks domain_index_ against
// domains_, so a stale index entry would go unnoticed.
bool IommuManager::Wf() const {
  for (const auto& [id, owner] : owner_overrides_) {
    if (domains_.find(id) == domains_.end()) {
      return false;
    }
  }
  return true;
}

IommuManager IommuManager::CloneForVerification(PhysMem* mem) const {
  IommuManager out(mem);
  for (const auto& [id, table] : domains_) {
    auto [it, inserted] = out.domains_.emplace(id, table);
    out.domain_index_.emplace(id, &it->second);
  }
  out.owner_overrides_ = owner_overrides_;
  return out;
}

}  // namespace atmo
