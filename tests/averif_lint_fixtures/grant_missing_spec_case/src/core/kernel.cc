// Fixture: kernel-side locations cover every grant op; the holes are in
// the spec dispatcher and the frame-profile table.
namespace atmo {

const char* SysOpName(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return "yield";
    case SysOp::kSend:
      return "send";
    case SysOp::kRecv:
      return "recv";
    case SysOp::kGrantReturn:
      return "grant_return";
  }
  return "?";
}

SyscallRet Kernel::Exec(ThrdPtr t, const Syscall& call) {
  switch (call.op) {
    case SysOp::kYield:
      return SysYield(t);
    case SysOp::kSend:
      return SysSend(t, call);
    case SysOp::kRecv:
      return SysRecv(t, call);
    case SysOp::kGrantReturn:
      return SysGrantReturn(t, call);
  }
  return SyscallRet{};
}

}  // namespace atmo
