// Fixture: grant-bearing syscall surface; kGrantReturn (the borrow
// hand-back op added with zero-copy page grants) is wired into the kernel
// but missing from the spec dispatcher AND the frame-profile table — the
// two holes a new grant op must never slip through.
namespace atmo {

enum class SysOp {
  kYield,
  kSend,
  kRecv,
  kGrantReturn,
};

}  // namespace atmo
