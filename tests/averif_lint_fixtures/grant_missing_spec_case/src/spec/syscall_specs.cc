// Fixture: kGrantReturn is missing from the dispatcher — one of the two
// seeded violations (revocation semantics would go entirely unspecified).
namespace atmo {

SpecResult SyscallSpec(const AbstractKernel& pre, const AbstractKernel& post, ThrdPtr t,
                       const Syscall& call, const SyscallRet& ret) {
  if (auto atomic = CheckFailureAtomicity(pre, post, ret)) {
    return *atomic;
  }
  switch (call.op) {
    case SysOp::kYield:
      return YieldSpec(pre, post, t, ret);
    case SysOp::kSend:
      return SendSpec(pre, post, t, call, ret);
    case SysOp::kRecv:
      return RecvSpec(pre, post, t, call, ret);
  }
  return Fail("unknown syscall");
}

}  // namespace atmo
