// Fixture: the frame-condition table misses kGrantReturn — the second
// seeded violation (a grant return touches address spaces and pages; an
// absent profile would let it mutate anything unchecked).
namespace atmo {

constexpr FrameProfile FrameProfileFor(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return {.threads = true, .scheduler = true};
    case SysOp::kSend:
      return {.threads = true, .endpoints = true, .address_spaces = true, .pages = true};
    case SysOp::kRecv:
      return {.threads = true, .endpoints = true, .scheduler = true};
  }
  return {};
}

}  // namespace atmo
