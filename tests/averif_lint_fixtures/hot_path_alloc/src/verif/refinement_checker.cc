// Seeded violation for the hot-path-alloc rule: a Step-shaped checker whose
// ATMO_HOT_PATH(hot-path-alloc) root reaches an injected heap allocation
// through a helper (the static twin of an AllocProbe regression). The two
// arena-covered allocations — one under a local ArenaScope in the callee,
// one whose *call site* sits inside an ArenaScope block in the root — must
// NOT fire: they land in the spec arena, not the heap.

#include <vector>

#include "src/vstd/thread_annotations.h"

namespace atmo {

class SpecArena {};

class ArenaScope {
 public:
  explicit ArenaScope(SpecArena* arena) { (void)arena; }
};

class RefinementChecker {
 public:
  // averif-lint: allow(trace-stage-coverage) — fixture isolates hot-path-alloc
  int Step(int t) ATMO_HOT_PATH(hot-path-alloc) {
    int pre = Capture();
    {
      ArenaScope scope(&arena_);
      AppendSpec(t);  // covered at the call site: allocations land in the arena
    }
    BuildScratch(t);  // the injected allocation: must fire
    return pre;
  }

 private:
  int Capture() {
    ArenaScope arena_scope(&arena_);
    psi_.push_back(1);  // covered by the callee's own ArenaScope: must not fire
    return static_cast<int>(psi_.size());
  }

  void AppendSpec(int t) { psi_.push_back(t); }

  void BuildScratch(int t) {
    scratch_.push_back(t);  // seeded: uncovered heap allocation on the hot path
  }

  SpecArena arena_;
  std::vector<int> psi_;
  std::vector<int> scratch_;
};

}  // namespace atmo
