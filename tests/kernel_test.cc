// Kernel integration tests: every syscall exercised through the refinement
// checker, so each step is validated against its abstract specification and
// total_wf. Includes failure injection showing the harness catches
// deliberately corrupted kernels, and a randomized multi-thread trace sweep.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/verif/invariant_registry.h"
#include "src/verif/refinement_checker.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

Syscall MakeMmap(VAddr base, std::uint64_t count, PageSize size = PageSize::k4K,
                 MapEntryPerm perm = kRw) {
  Syscall call;
  call.op = SysOp::kMmap;
  call.va_range = VaRange{base, count, size};
  call.map_perm = perm;
  return call;
}

Syscall MakeMunmap(VAddr base, std::uint64_t count, PageSize size = PageSize::k4K) {
  Syscall call;
  call.op = SysOp::kMunmap;
  call.va_range = VaRange{base, count, size};
  return call;
}

Syscall MakeOp(SysOp op) {
  Syscall call;
  call.op = op;
  return call;
}

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() {
    BootConfig config;
    config.frames = 8192;  // 32 MiB machine
    config.reserved_frames = 16;
    kernel_.emplace(std::move(*Kernel::Boot(config)));
    checker_.emplace(&*kernel_, /*check_wf_every=*/1);

    // One user container with a process and a thread.
    auto c = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
    auto p = kernel_->BootCreateProcess(c.value);
    auto t = kernel_->BootCreateThread(p.value);
    EXPECT_TRUE(c.ok() && p.ok() && t.ok());
    ctnr_ = c.value;
    proc_ = p.value;
    thrd_ = t.value;
  }

  SyscallRet Step(ThrdPtr t, const Syscall& call) { return checker_->Step(t, call); }

  std::optional<Kernel> kernel_;
  std::optional<RefinementChecker> checker_;
  CtnrPtr ctnr_;
  ProcPtr proc_;
  ThrdPtr thrd_;
};

TEST_F(KernelTest, BootStateIsTotallyWellFormed) {
  InvResult wf = kernel_->TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

// ---------------------------------------------------------------------------
// mmap / munmap
// ---------------------------------------------------------------------------

TEST_F(KernelTest, MmapMapsFreshPagesVisibleToMmu) {
  SyscallRet ret = Step(thrd_, MakeMmap(0x400000, 4));
  ASSERT_EQ(ret.error, SysError::kOk);
  EXPECT_EQ(ret.value, 4u);
  PAddr cr3 = kernel_->vm().TableOf(proc_).cr3();
  for (int i = 0; i < 4; ++i) {
    auto walk = kernel_->mmu().Walk(cr3, 0x400000 + i * kPageSize4K);
    ASSERT_TRUE(walk.has_value()) << "page " << i;
    EXPECT_TRUE(walk->perm.writable);
  }
}

TEST_F(KernelTest, MmapIsChargedAndMunmapRefunds) {
  std::uint64_t used_before = kernel_->pm().GetContainer(ctnr_).mem_used;
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 8)).error, SysError::kOk);
  std::uint64_t used_mapped = kernel_->pm().GetContainer(ctnr_).mem_used;
  EXPECT_GE(used_mapped, used_before + 8) << "8 data pages + table nodes";

  ASSERT_EQ(Step(thrd_, MakeMunmap(0x400000, 8)).error, SysError::kOk);
  std::uint64_t used_after = kernel_->pm().GetContainer(ctnr_).mem_used;
  EXPECT_EQ(used_after, used_mapped - 8) << "data pages refunded; nodes remain allocated";
}

TEST_F(KernelTest, MmapOverExistingMappingFailsAtomically) {
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 2)).error, SysError::kOk);
  // Overlap in the middle of the new range: whole call must fail.
  EXPECT_EQ(Step(thrd_, MakeMmap(0x400000 - kPageSize4K, 3)).error, SysError::kInvalid);
  EXPECT_FALSE(kernel_->vm().Resolve(proc_, 0x400000 - kPageSize4K).has_value());
}

TEST_F(KernelTest, MmapQuotaExceededFailsAtomically) {
  // Quota is 1024 pages; one 512-page mapping fits, a second cannot.
  ASSERT_EQ(Step(thrd_, MakeMmap(0x4000000, 512)).error, SysError::kOk);
  std::uint64_t free_before = kernel_->alloc().FreeCount(PageSize::k4K);
  AbstractKernel before = kernel_->Abstract();
  EXPECT_EQ(Step(thrd_, MakeMmap(0x8000000, 512)).error, SysError::kQuotaExceeded);
  EXPECT_EQ(kernel_->alloc().FreeCount(PageSize::k4K), free_before);
  EXPECT_TRUE(kernel_->Abstract() == before) << "failed mmap must be atomic";
}

TEST_F(KernelTest, MmapSuperpage2M) {
  SyscallRet ret = Step(thrd_, MakeMmap(kPageSize2M, 1, PageSize::k2M));
  ASSERT_EQ(ret.error, SysError::kOk);
  auto walk = kernel_->mmu().Walk(kernel_->vm().TableOf(proc_).cr3(),
                                  kPageSize2M + 0x12345);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size, PageSize::k2M);
  ASSERT_EQ(Step(thrd_, MakeMunmap(kPageSize2M, 1, PageSize::k2M)).error, SysError::kOk);
}

TEST_F(KernelTest, MunmapOfUnmappedFails) {
  EXPECT_EQ(Step(thrd_, MakeMunmap(0x400000, 1)).error, SysError::kInvalid);
}

TEST_F(KernelTest, MmapZeroCountOrHugeCountInvalid) {
  EXPECT_EQ(Step(thrd_, MakeMmap(0x400000, 0)).error, SysError::kInvalid);
  EXPECT_EQ(Step(thrd_, MakeMmap(0x400000, kMaxMmapCount + 1)).error, SysError::kInvalid);
}

// ---------------------------------------------------------------------------
// Object creation syscalls
// ---------------------------------------------------------------------------

TEST_F(KernelTest, NewContainerProcessThreadEndpoint) {
  Syscall nc = MakeOp(SysOp::kNewContainer);
  nc.quota = 64;
  nc.cpu_mask = ~0ull;
  SyscallRet c = Step(thrd_, nc);
  ASSERT_EQ(c.error, SysError::kOk);
  EXPECT_TRUE(kernel_->pm().ContainerExists(c.value));
  EXPECT_EQ(kernel_->pm().GetContainer(c.value).parent, ctnr_);

  SyscallRet p = Step(thrd_, MakeOp(SysOp::kNewProcess));
  ASSERT_EQ(p.error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetProcess(p.value).parent, proc_);
  EXPECT_TRUE(kernel_->vm().HasAddressSpace(p.value));

  Syscall nt = MakeOp(SysOp::kNewThread);
  nt.target = p.value;
  SyscallRet t2 = Step(thrd_, nt);
  ASSERT_EQ(t2.error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(t2.value).owning_proc, p.value);

  Syscall ne = MakeOp(SysOp::kNewEndpoint);
  ne.edpt_idx = 3;
  SyscallRet e = Step(thrd_, ne);
  ASSERT_EQ(e.error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).endpoints[3], e.value);
}

TEST_F(KernelTest, UnbindEndpointSyscall) {
  Syscall ne = MakeOp(SysOp::kNewEndpoint);
  ne.edpt_idx = 2;
  SyscallRet e = Step(thrd_, ne);
  ASSERT_EQ(e.error, SysError::kOk);
  std::uint64_t used = kernel_->pm().GetContainer(ctnr_).mem_used;

  Syscall unbind = MakeOp(SysOp::kUnbindEndpoint);
  unbind.edpt_idx = 2;
  EXPECT_EQ(Step(thrd_, unbind).error, SysError::kOk);
  EXPECT_FALSE(kernel_->pm().EndpointExists(e.value)) << "last reference frees";
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_).mem_used, used - 1);
  // Unbinding an empty slot fails atomically.
  EXPECT_EQ(Step(thrd_, unbind).error, SysError::kInvalid);
}

TEST_F(KernelTest, UnbindSharedEndpointOnlyDropsOneReference) {
  auto peer = kernel_->BootCreateThread(proc_);
  Syscall ne = MakeOp(SysOp::kNewEndpoint);
  ne.edpt_idx = 0;
  SyscallRet e = Step(thrd_, ne);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(peer.value, 0, e.value), ProcError::kOk);

  Syscall unbind = MakeOp(SysOp::kUnbindEndpoint);
  unbind.edpt_idx = 0;
  EXPECT_EQ(Step(thrd_, unbind).error, SysError::kOk);
  EXPECT_TRUE(kernel_->pm().EndpointExists(e.value)) << "peer still holds it";
  EXPECT_EQ(kernel_->pm().GetEndpoint(e.value).rf_count, 1u);
}

TEST_F(KernelTest, Mmap1GSuperpageSyscall) {
  // A machine with two 1 GiB-aligned regions; the second is fully managed.
  BootConfig big;
  big.frames = 2 * (kPageSize1G / kPageSize4K);
  big.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(big));
  RefinementChecker checker(&kernel, 1);
  auto ctnr = kernel.BootCreateContainer(
      kernel.root_container(), kPageSize1G / kPageSize4K + 64, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);

  Syscall mmap = MakeMmap(kPageSize1G, 1, PageSize::k1G);
  SyscallRet ret = checker.Step(thrd.value, mmap);
  ASSERT_EQ(ret.error, SysError::kOk);
  auto walk = kernel.mmu().Walk(kernel.vm().TableOf(proc.value).cr3(),
                                kPageSize1G + 0xdeadbe8);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size, PageSize::k1G);
  // 1G charge accounted in 4K frames.
  EXPECT_GE(kernel.pm().GetContainer(ctnr.value).mem_used, kPageSize1G / kPageSize4K);
  ASSERT_EQ(checker.Step(thrd.value, MakeMunmap(kPageSize1G, 1, PageSize::k1G)).error,
            SysError::kOk);
  EXPECT_EQ(kernel.alloc().FreeCount(PageSize::k1G), 1u);
}

TEST_F(KernelTest, NewContainerQuotaTooLargeFails) {
  Syscall nc = MakeOp(SysOp::kNewContainer);
  nc.quota = 100000;
  EXPECT_EQ(Step(thrd_, nc).error, SysError::kQuotaExceeded);
}

// ---------------------------------------------------------------------------
// IPC
// ---------------------------------------------------------------------------

class KernelIpcTest : public KernelTest {
 protected:
  KernelIpcTest() {
    // A second thread in the same container/process plus an endpoint bound
    // into both descriptor tables.
    auto t2 = kernel_->BootCreateThread(proc_);
    peer_ = t2.value;
    Syscall ne = MakeOp(SysOp::kNewEndpoint);
    ne.edpt_idx = 0;
    SyscallRet e = Step(thrd_, ne);
    EXPECT_EQ(e.error, SysError::kOk);
    edpt_ = e.value;
    EXPECT_EQ(kernel_->pm_mut().BindEndpoint(peer_, 0, edpt_), ProcError::kOk);
  }

  ThrdPtr peer_ = kNullPtr;
  EdptPtr edpt_ = kNullPtr;
};

TEST_F(KernelIpcTest, SendBlocksThenRecvDelivers) {
  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.scalars = {1, 2, 3, 4};
  EXPECT_EQ(Step(thrd_, send).error, SysError::kBlocked);
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).state, ThreadState::kBlockedSend);

  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kOk);
  auto inbound = kernel_->TakeInbound(peer_);
  ASSERT_TRUE(inbound.has_value());
  EXPECT_EQ(inbound->scalars, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).state, ThreadState::kRunnable);
}

TEST_F(KernelIpcTest, RecvBlocksThenSendDelivers) {
  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kBlocked);

  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.scalars = {7, 0, 0, 0};
  EXPECT_EQ(Step(thrd_, send).error, SysError::kOk);
  auto inbound = kernel_->TakeInbound(peer_);
  ASSERT_TRUE(inbound.has_value());
  EXPECT_EQ(inbound->scalars[0], 7u);
  EXPECT_EQ(kernel_->pm().GetThread(peer_).state, ThreadState::kRunnable);
}

TEST_F(KernelIpcTest, PageGrantEstablishesSharedMemory) {
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 1)).error, SysError::kOk);

  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kBlocked);

  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.page = PageGrant{.page = 0x400000,  // sender VA
                                .size = PageSize::k4K,
                                .dest_va = 0x900000,
                                .perm = kRw};
  ASSERT_EQ(Step(thrd_, send).error, SysError::kOk);

  // Both mappings resolve to the same physical frame.
  auto sender_entry = kernel_->vm().Resolve(proc_, 0x400000);
  auto peer_entry = kernel_->vm().Resolve(proc_, 0x900000);
  ASSERT_TRUE(sender_entry && peer_entry);
  EXPECT_EQ(sender_entry->addr, peer_entry->addr);
  EXPECT_EQ(kernel_->alloc().MapCount(sender_entry->addr), 2u);

  // Hardware view: a write through one mapping is visible through the other.
  kernel_->mem_mut().HwWriteU64(sender_entry->addr + 64, 0xfeedface);
  PAddr cr3 = kernel_->vm().TableOf(proc_).cr3();
  auto walk = kernel_->mmu().Walk(cr3, 0x900000 + 64);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(kernel_->mem().HwReadU64(walk->paddr), 0xfeedfaceull);
}

TEST_F(KernelIpcTest, PageGrantCannotAmplifyRights) {
  MapEntryPerm ro{.writable = false, .user = true, .no_execute = false};
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 1, PageSize::k4K, ro)).error, SysError::kOk);
  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.page = PageGrant{.page = 0x400000, .size = PageSize::k4K,
                                .dest_va = 0x900000, .perm = kRw};  // asks for write
  EXPECT_EQ(Step(thrd_, send).error, SysError::kDenied);
}

TEST_F(KernelIpcTest, EndpointGrantInstallsDescriptor) {
  // Create a second endpoint at thrd_ slot 5, then delegate it to peer
  // slot 7.
  Syscall ne = MakeOp(SysOp::kNewEndpoint);
  ne.edpt_idx = 5;
  SyscallRet e2 = Step(thrd_, ne);
  ASSERT_EQ(e2.error, SysError::kOk);

  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kBlocked);

  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.endpoint = EndpointGrant{.endpoint = 5, .dest_index = 7};  // src slot 5
  ASSERT_EQ(Step(thrd_, send).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(peer_).endpoints[7], e2.value);
  EXPECT_EQ(kernel_->pm().GetEndpoint(e2.value).rf_count, 2u);
}

TEST_F(KernelIpcTest, CallReplyRoundTrip) {
  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kBlocked);

  Syscall call = MakeOp(SysOp::kCall);
  call.edpt_idx = 0;
  call.payload.scalars = {42, 0, 0, 0};
  EXPECT_EQ(Step(thrd_, call).error, SysError::kBlocked);
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).state, ThreadState::kBlockedCall);
  EXPECT_EQ(kernel_->pm().GetThread(peer_).reply_to, thrd_);
  auto request = kernel_->TakeInbound(peer_);
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->scalars[0], 42u);

  Syscall reply = MakeOp(SysOp::kReply);
  reply.payload.scalars = {43, 0, 0, 0};
  EXPECT_EQ(Step(peer_, reply).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).state, ThreadState::kRunnable);
  auto response = kernel_->TakeInbound(thrd_);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->scalars[0], 43u);
}

TEST_F(KernelIpcTest, CallQueuedBeforeReceiverArrives) {
  Syscall call = MakeOp(SysOp::kCall);
  call.edpt_idx = 0;
  call.payload.scalars = {9, 0, 0, 0};
  EXPECT_EQ(Step(thrd_, call).error, SysError::kBlocked);

  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(peer_).reply_to, thrd_);
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).state, ThreadState::kBlockedCall);

  Syscall reply = MakeOp(SysOp::kReply);
  EXPECT_EQ(Step(peer_, reply).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().GetThread(thrd_).state, ThreadState::kRunnable);
}

TEST_F(KernelIpcTest, ReplyWithoutCallerFails) {
  EXPECT_EQ(Step(thrd_, MakeOp(SysOp::kReply)).error, SysError::kInvalid);
}

TEST_F(KernelIpcTest, SendOnUnboundDescriptorFails) {
  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 9;  // empty slot
  EXPECT_EQ(Step(thrd_, send).error, SysError::kInvalid);
}

TEST_F(KernelIpcTest, GrantToOccupiedDestSlotFaultsSender) {
  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(peer_, recv).error, SysError::kBlocked);

  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.endpoint = EndpointGrant{.endpoint = 0, .dest_index = 0};  // peer slot 0 busy
  EXPECT_EQ(Step(thrd_, send).error, SysError::kWouldFault);
  // Receiver remains blocked and the queue intact.
  EXPECT_EQ(kernel_->pm().GetThread(peer_).state, ThreadState::kBlockedRecv);
}

// ---------------------------------------------------------------------------
// Yield / exit
// ---------------------------------------------------------------------------

TEST_F(KernelIpcTest, YieldRotatesRunQueue) {
  // Make both threads contend: dispatch thrd_, peer_ in queue.
  EXPECT_EQ(Step(thrd_, MakeOp(SysOp::kYield)).error, SysError::kOk);
  EXPECT_EQ(kernel_->pm().current(), peer_);
}

TEST_F(KernelIpcTest, ExitRemovesThreadAndFreesPage) {
  std::uint64_t used = kernel_->pm().GetContainer(ctnr_).mem_used;
  EXPECT_EQ(Step(peer_, MakeOp(SysOp::kExit)).error, SysError::kOk);
  EXPECT_FALSE(kernel_->pm().ThreadExists(peer_));
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_).mem_used, used - 1);
  EXPECT_EQ(kernel_->alloc().StateOf(peer_), PageState::kFree);
}

TEST_F(KernelIpcTest, ExitOfLastEndpointHolderFreesEndpoint) {
  // Unbind from peer first so thrd_ holds the only references.
  EXPECT_EQ(kernel_->pm_mut().UnbindEndpoint(&kernel_->alloc_mut(), peer_, 0), ProcError::kOk);
  EXPECT_EQ(Step(thrd_, MakeOp(SysOp::kExit)).error, SysError::kOk);
  EXPECT_FALSE(kernel_->pm().EndpointExists(edpt_));
}

// ---------------------------------------------------------------------------
// Kill
// ---------------------------------------------------------------------------

TEST_F(KernelTest, KillProcessSubtree) {
  SyscallRet child = Step(thrd_, MakeOp(SysOp::kNewProcess));
  ASSERT_EQ(child.error, SysError::kOk);
  Syscall nt = MakeOp(SysOp::kNewThread);
  nt.target = child.value;
  SyscallRet ct = Step(thrd_, nt);
  ASSERT_EQ(ct.error, SysError::kOk);

  Syscall kill = MakeOp(SysOp::kKillProcess);
  kill.target = child.value;
  EXPECT_EQ(Step(thrd_, kill).error, SysError::kOk);
  EXPECT_FALSE(kernel_->pm().ProcessExists(child.value));
  EXPECT_FALSE(kernel_->pm().ThreadExists(ct.value));
}

TEST_F(KernelTest, KillProcessRequiresAncestry) {
  Syscall kill = MakeOp(SysOp::kKillProcess);
  kill.target = proc_;  // own process: not a descendant
  EXPECT_EQ(Step(thrd_, kill).error, SysError::kDenied);
}

TEST_F(KernelTest, KillContainerHarvestsResources) {
  std::uint64_t quota_before = kernel_->pm().GetContainer(ctnr_).mem_quota;

  // Child container with a running process that maps memory.
  Syscall nc = MakeOp(SysOp::kNewContainer);
  nc.quota = 128;
  SyscallRet child = Step(thrd_, nc);
  ASSERT_EQ(child.error, SysError::kOk);
  auto cp = kernel_->BootCreateProcess(child.value);
  auto ct = kernel_->BootCreateThread(cp.value);
  ASSERT_TRUE(cp.ok() && ct.ok());
  ASSERT_EQ(Step(ct.value, MakeMmap(0x400000, 4)).error, SysError::kOk);

  Syscall kill = MakeOp(SysOp::kKillContainer);
  kill.target = child.value;
  EXPECT_EQ(Step(thrd_, kill).error, SysError::kOk);
  EXPECT_FALSE(kernel_->pm().ContainerExists(child.value));
  EXPECT_FALSE(kernel_->pm().ProcessExists(cp.value));
  EXPECT_FALSE(kernel_->pm().ThreadExists(ct.value));
  // The full reservation returned to the parent.
  EXPECT_EQ(kernel_->pm().GetContainer(ctnr_).mem_quota, quota_before);
}

TEST_F(KernelTest, KillContainerLeavesSharedResourcesWithParent) {
  // Child container's thread grants a page to thrd_ (cross-container via
  // endpoint), then the child is killed; the page must survive, attributed
  // to the parent.
  Syscall nc = MakeOp(SysOp::kNewContainer);
  nc.quota = 128;
  SyscallRet child = Step(thrd_, nc);
  ASSERT_EQ(child.error, SysError::kOk);
  auto cp = kernel_->BootCreateProcess(child.value);
  auto ct = kernel_->BootCreateThread(cp.value);
  ASSERT_TRUE(cp.ok() && ct.ok());

  // Endpoint created by child's thread, shared to thrd_.
  Syscall ne = MakeOp(SysOp::kNewEndpoint);
  ne.edpt_idx = 0;
  SyscallRet e = Step(ct.value, ne);
  ASSERT_EQ(e.error, SysError::kOk);
  ASSERT_EQ(kernel_->pm_mut().BindEndpoint(thrd_, 0, e.value), ProcError::kOk);

  // Child maps a page and sends it to thrd_.
  ASSERT_EQ(Step(ct.value, MakeMmap(0x400000, 1)).error, SysError::kOk);
  Syscall recv = MakeOp(SysOp::kRecv);
  recv.edpt_idx = 0;
  EXPECT_EQ(Step(thrd_, recv).error, SysError::kBlocked);
  Syscall send = MakeOp(SysOp::kSend);
  send.edpt_idx = 0;
  send.payload.page = PageGrant{.page = 0x400000, .size = PageSize::k4K,
                                .dest_va = 0x900000, .perm = kRw};
  ASSERT_EQ(Step(ct.value, send).error, SysError::kOk);

  PAddr page = kernel_->vm().Resolve(proc_, 0x900000)->addr;
  ASSERT_EQ(kernel_->alloc().OwnerOf(page), child.value);

  Syscall kill = MakeOp(SysOp::kKillContainer);
  kill.target = child.value;
  EXPECT_EQ(Step(thrd_, kill).error, SysError::kOk);

  // The shared page and the endpoint survive, re-attributed to the parent.
  EXPECT_EQ(kernel_->alloc().StateOf(page), PageState::kMapped);
  EXPECT_EQ(kernel_->alloc().OwnerOf(page), ctnr_);
  EXPECT_TRUE(kernel_->pm().EndpointExists(e.value));
  EXPECT_EQ(kernel_->pm().GetEndpoint(e.value).owning_ctnr, ctnr_);
  EXPECT_TRUE(kernel_->vm().Resolve(proc_, 0x900000).has_value());
}

TEST_F(KernelTest, KillContainerRequiresAncestry) {
  Syscall kill = MakeOp(SysOp::kKillContainer);
  kill.target = ctnr_;  // own container
  EXPECT_EQ(Step(thrd_, kill).error, SysError::kDenied);
  kill.target = kernel_->root_container();
  EXPECT_EQ(Step(thrd_, kill).error, SysError::kDenied);
}

// ---------------------------------------------------------------------------
// IOMMU
// ---------------------------------------------------------------------------

TEST_F(KernelTest, IommuDomainLifecycleAndTranslation) {
  SyscallRet d = Step(thrd_, MakeOp(SysOp::kIommuCreateDomain));
  ASSERT_EQ(d.error, SysError::kOk);

  Syscall attach = MakeOp(SysOp::kIommuAttachDevice);
  attach.iommu_domain = d.value;
  attach.device = 42;
  EXPECT_EQ(Step(thrd_, attach).error, SysError::kOk);

  // Map a page, expose it to the device.
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 1)).error, SysError::kOk);
  Syscall map = MakeOp(SysOp::kIommuMapDma);
  map.iommu_domain = d.value;
  map.iova = 0x10000;
  map.dma_va = 0x400000;
  map.map_perm = kRw;
  EXPECT_EQ(Step(thrd_, map).error, SysError::kOk);

  PAddr page = kernel_->vm().Resolve(proc_, 0x400000)->addr;
  auto translated = kernel_->iommu().Translate(42, 0x10000 + 8, /*write=*/true);
  ASSERT_TRUE(translated.has_value());
  EXPECT_EQ(*translated, page + 8);
  // Unattached device / unmapped iova fault.
  EXPECT_FALSE(kernel_->iommu().Translate(43, 0x10000, false).has_value());
  EXPECT_FALSE(kernel_->iommu().Translate(42, 0x20000, false).has_value());
  // The DMA pin keeps the page alive across a CPU unmap.
  ASSERT_EQ(Step(thrd_, MakeMunmap(0x400000, 1)).error, SysError::kOk);
  EXPECT_EQ(kernel_->alloc().StateOf(page), PageState::kMapped);

  Syscall unmap = MakeOp(SysOp::kIommuUnmapDma);
  unmap.iommu_domain = d.value;
  unmap.iova = 0x10000;
  EXPECT_EQ(Step(thrd_, unmap).error, SysError::kOk);
  EXPECT_EQ(kernel_->alloc().StateOf(page), PageState::kFree);
}

TEST_F(KernelTest, IommuDeniesForeignDomains) {
  SyscallRet d = Step(thrd_, MakeOp(SysOp::kIommuCreateDomain));
  ASSERT_EQ(d.error, SysError::kOk);

  // Another container's thread may not attach devices to our domain.
  Syscall nc = MakeOp(SysOp::kNewContainer);
  nc.quota = 32;
  SyscallRet other = Step(thrd_, nc);
  ASSERT_EQ(other.error, SysError::kOk);
  auto op = kernel_->BootCreateProcess(other.value);
  auto ot = kernel_->BootCreateThread(op.value);
  ASSERT_TRUE(op.ok() && ot.ok());

  Syscall attach = MakeOp(SysOp::kIommuAttachDevice);
  attach.iommu_domain = d.value;
  attach.device = 7;
  EXPECT_EQ(Step(ot.value, attach).error, SysError::kDenied);
}

// ---------------------------------------------------------------------------
// Failure injection: the harness catches corrupted kernels
// ---------------------------------------------------------------------------

TEST_F(KernelTest, CheckerCatchesForgedQuota) {
  ScopedThrowOnCheckFailure guard;
  kernel_->pm_mut().MutableContainer(ctnr_).mem_used = 0;  // forge accounting
  EXPECT_THROW(Step(thrd_, MakeOp(SysOp::kYield)), CheckViolation);
}

TEST_F(KernelTest, CheckerCatchesForgedSubtree) {
  ScopedThrowOnCheckFailure guard;
  kernel_->pm_mut().MutableContainer(kernel_->root_container()).subtree.add(0xdead000);
  EXPECT_THROW(Step(thrd_, MakeOp(SysOp::kYield)), CheckViolation);
}

TEST_F(KernelTest, CheckerCatchesConcretePageTableCorruption) {
  ScopedThrowOnCheckFailure guard;
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 1)).error, SysError::kOk);
  // Flip the leaf target behind the kernel's back.
  PAddr node = kernel_->vm().TableOf(proc_).cr3();
  for (int level = 4; level > 1; --level) {
    node = kernel_->mem().HwReadU64(node + VaIndex(0x400000, level) * 8) & kPteAddrMask;
  }
  std::uint64_t leaf = kernel_->mem().HwReadU64(node + VaIndex(0x400000, 1) * 8);
  kernel_->mem_mut().HwWriteU64(node + VaIndex(0x400000, 1) * 8,
                                (leaf & ~kPteAddrMask) | 0x123000);
  EXPECT_THROW(Step(thrd_, MakeOp(SysOp::kYield)), CheckViolation);
}

// ---------------------------------------------------------------------------
// Standard invariant suite
// ---------------------------------------------------------------------------

TEST_F(KernelTest, StandardSuitePassesAndBothPtStylesAgree) {
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 16)).error, SysError::kOk);
  for (bool recursive : {false, true}) {
    InvariantRegistry suite = InvariantRegistry::StandardSuite(recursive);
    SuiteReport report = suite.RunAll(*kernel_, /*threads=*/1);
    for (const CheckOutcome& outcome : report.outcomes) {
      EXPECT_TRUE(outcome.ok) << outcome.name << ": " << outcome.detail;
    }
  }
}

TEST_F(KernelTest, SuiteParallelRunMatchesSerial) {
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 8)).error, SysError::kOk);
  InvariantRegistry suite = InvariantRegistry::StandardSuite();
  SuiteReport serial = suite.RunAll(*kernel_, 1);
  SuiteReport parallel = suite.RunAll(*kernel_, 8);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t i = 0; i < serial.outcomes.size(); ++i) {
    EXPECT_EQ(serial.outcomes[i].ok, parallel.outcomes[i].ok) << serial.outcomes[i].name;
  }
}

// ---------------------------------------------------------------------------
// Clone determinism (output consistency groundwork)
// ---------------------------------------------------------------------------

TEST_F(KernelTest, CloneExecutesIdentically) {
  ASSERT_EQ(Step(thrd_, MakeMmap(0x400000, 2)).error, SysError::kOk);
  Kernel clone = kernel_->CloneForVerification();
  EXPECT_TRUE(clone.Abstract() == kernel_->Abstract());

  Syscall call = MakeMmap(0x800000, 2);
  SyscallRet a = kernel_->Step(thrd_, call);
  SyscallRet b = clone.Step(thrd_, call);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(clone.Abstract() == kernel_->Abstract());
}

// ---------------------------------------------------------------------------
// Randomized syscall trace sweep under full refinement checking
// ---------------------------------------------------------------------------

class KernelTraceTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(KernelTraceTest, RandomTraceStaysVerified) {
  std::uint64_t state = GetParam() * 0x9e3779b97f4a7c15ull + 0xdeadbeef;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  // Check total_wf every 5 steps to keep the sweep fast; specs on every
  // step.
  RefinementChecker checker(&kernel, /*check_wf_every=*/5);

  auto c = kernel.BootCreateContainer(kernel.root_container(), 2048, ~0ull);
  auto p = kernel.BootCreateProcess(c.value);
  std::vector<ThrdPtr> threads;
  for (int i = 0; i < 3; ++i) {
    auto t = kernel.BootCreateThread(p.value);
    ASSERT_TRUE(t.ok());
    threads.push_back(t.value);
  }
  // One endpoint shared by all threads at slot 0.
  {
    Syscall ne;
    ne.op = SysOp::kNewEndpoint;
    ne.edpt_idx = 0;
    SyscallRet e = checker.Step(threads[0], ne);
    ASSERT_EQ(e.error, SysError::kOk);
    for (std::size_t i = 1; i < threads.size(); ++i) {
      ASSERT_EQ(kernel.pm_mut().BindEndpoint(threads[i], 0, e.value), ProcError::kOk);
    }
  }

  for (int step = 0; step < 250; ++step) {
    // Pick a schedulable thread.
    std::vector<ThrdPtr> ready;
    for (ThrdPtr t : threads) {
      if (!kernel.pm().ThreadExists(t)) {
        continue;
      }
      ThreadState s = kernel.pm().GetThread(t).state;
      if (s == ThreadState::kRunnable || s == ThreadState::kRunning) {
        ready.push_back(t);
      }
    }
    if (ready.empty()) {
      break;
    }
    ThrdPtr t = ready[next() % ready.size()];

    Syscall call;
    switch (next() % 8) {
      case 0:
        call.op = SysOp::kYield;
        break;
      case 1:
      case 2: {
        call.op = SysOp::kMmap;
        call.va_range = VaRange{(1 + next() % 200) * kPageSize4K * 4, 1 + next() % 3,
                                PageSize::k4K};
        call.map_perm = kRw;
        break;
      }
      case 3: {
        call.op = SysOp::kMunmap;
        call.va_range = VaRange{(1 + next() % 200) * kPageSize4K * 4, 1, PageSize::k4K};
        break;
      }
      case 4: {
        call.op = SysOp::kSend;
        call.edpt_idx = 0;
        call.payload.scalars = {next(), 0, 0, 0};
        break;
      }
      case 5: {
        call.op = SysOp::kRecv;
        call.edpt_idx = 0;
        break;
      }
      case 6: {
        call.op = SysOp::kNewEndpoint;
        call.edpt_idx = static_cast<EdptIdx>(1 + next() % (kMaxEdptDescriptors - 1));
        break;
      }
      case 7: {
        call.op = SysOp::kNewProcess;
        break;
      }
    }
    checker.Step(t, call);  // spec violations raise fatal check failures
  }
  InvResult wf = kernel.TotalWf();
  EXPECT_TRUE(wf.ok) << wf.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelTraceTest, ::testing::Values(1u, 2u, 3u, 11u, 29u));

}  // namespace
}  // namespace atmo
