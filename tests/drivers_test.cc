// Device + driver tests: DMA arena, SPSC ring, simulated NIC with the ixgbe
// driver (RX/TX round trips through real IOMMU-translated DMA), and the
// simulated NVMe SSD with its driver (data integrity through the flash
// store).

#include <cstring>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/drivers/dma_arena.h"
#include "src/drivers/ixgbe_driver.h"
#include "src/drivers/nvme_driver.h"
#include "src/drivers/spsc_ring.h"
#include "src/hw/sim_nic.h"
#include "src/hw/sim_nvme.h"
#include "src/net/packet.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MacAddr kSrcMac{0x02, 0, 0, 0, 0, 0xaa};
constexpr MacAddr kDstMac{0x02, 0, 0, 0, 0, 0xbb};

class DriverEnv : public ::testing::Test {
 protected:
  DriverEnv()
      : mem_(16384),
        alloc_(16384, 1),
        iommu_(&mem_),
        domain_(iommu_.CreateDomain(&alloc_, kNullPtr)),
        arena_(&mem_, &alloc_, &iommu_, domain_, 0x100000) {
    EXPECT_TRUE(iommu_.AttachDevice(domain_, kDevice));
  }

  static constexpr DeviceId kDevice = 1;

  PhysMem mem_;
  PageAllocator alloc_;
  IommuManager iommu_;
  IommuDomainId domain_;
  DmaArena arena_;
};

// ---------------------------------------------------------------------------
// DmaArena
// ---------------------------------------------------------------------------

TEST_F(DriverEnv, ArenaAllocatesIovaContiguousMemory) {
  VAddr a = arena_.Alloc(3 * kPageSize4K);
  VAddr b = arena_.Alloc(100);
  EXPECT_EQ(b, a + 3 * kPageSize4K) << "IOVAs are consecutive";

  // CPU write, device-side read through the IOMMU: same bytes.
  std::uint64_t magic = 0x1122334455667788ull;
  arena_.WriteU64(a + 8, magic);
  auto pa = iommu_.Translate(kDevice, a + 8, false);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(mem_.HwReadU64(*pa), magic);
}

TEST_F(DriverEnv, ArenaRoundTripAcrossPageBoundary) {
  VAddr region = arena_.Alloc(2 * kPageSize4K);
  std::vector<std::uint8_t> in(256);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::uint8_t>(i * 7);
  }
  arena_.Write(region + kPageSize4K - 100, in.data(), in.size());
  std::vector<std::uint8_t> out(in.size());
  arena_.Read(region + kPageSize4K - 100, out.data(), out.size());
  EXPECT_EQ(in, out);
}

TEST_F(DriverEnv, ArenaOutOfRangeIsViolation) {
  ScopedThrowOnCheckFailure guard;
  VAddr region = arena_.Alloc(kPageSize4K);
  EXPECT_THROW(arena_.ReadU64(region + kPageSize4K), CheckViolation);
}

// ---------------------------------------------------------------------------
// SpscRing
// ---------------------------------------------------------------------------

TEST(SpscRingTest, FifoOrderAndCapacity) {
  SpscRing<int, 8> ring;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.Push(i));
  }
  EXPECT_FALSE(ring.Push(99)) << "full";
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.Pop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.Pop(&out)) << "empty";
}

TEST(SpscRingTest, BurstOperations) {
  SpscRing<int, 16> ring;
  int values[10] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(ring.PushBurst(values, 10), 10u);
  int out[16];
  EXPECT_EQ(ring.PopBurst(out, 16), 10u);
  EXPECT_EQ(out[9], 9);
}

TEST(SpscRingTest, CrossThreadTransfersEverything) {
  SpscRing<std::uint64_t, 1024> ring;
  constexpr std::uint64_t kCount = 200000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (ring.Push(i)) {
        ++i;
      }
    }
  });
  std::uint64_t sum = 0;
  std::uint64_t received = 0;
  while (received < kCount) {
    std::uint64_t v;
    if (ring.Pop(&v)) {
      sum += v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, kCount * (kCount - 1) / 2);
}

// ---------------------------------------------------------------------------
// SimNic + IxgbeDriver
// ---------------------------------------------------------------------------

class NicTest : public DriverEnv {
 protected:
  NicTest() : nic_(&mem_, &iommu_, kDevice), driver_(&arena_, &nic_, 64) {
    driver_.Init();
  }

  // Installs a source producing `n` copies of a fixed UDP frame.
  void SourceFrames(std::size_t n, std::uint16_t dst_port = 7) {
    remaining_ = n;
    nic_.SetPacketSource([this, dst_port](std::uint8_t* buf) -> std::size_t {
      if (remaining_ == 0) {
        return 0;
      }
      --remaining_;
      FiveTuple flow{.src_ip = 0x0a000001, .dst_ip = 0x0a000002, .src_port = 1234,
                     .dst_port = dst_port};
      const char payload[] = "hello atmosphere";
      return BuildUdpFrame(buf, kSrcMac, kDstMac, flow, payload, sizeof(payload));
    });
  }

  SimNic nic_;
  IxgbeDriver driver_;
  std::size_t remaining_ = 0;
};

TEST_F(NicTest, RxRoundTripDeliversValidFrames) {
  SourceFrames(10);
  EXPECT_EQ(nic_.DeliverRx(32), 10u);

  RxFrame frames[32];
  std::uint32_t got = driver_.RxBurst(frames, 32);
  ASSERT_EQ(got, 10u);
  for (std::uint32_t i = 0; i < got; ++i) {
    auto parsed = ParseUdpFrame(frames[i].data.data(), frames[i].len);
    ASSERT_TRUE(parsed.has_value()) << "frame " << i << " failed to parse";
    EXPECT_EQ(parsed->flow.dst_port, 7);
    EXPECT_EQ(std::memcmp(parsed->payload, "hello atmosphere", 17), 0);
  }
  EXPECT_EQ(nic_.dma_faults(), 0u);
}

TEST_F(NicTest, TxRoundTripReachesSink) {
  std::vector<std::size_t> sink_lens;
  std::uint64_t checksum = 0;
  nic_.SetPacketSink([&](const std::uint8_t* frame, std::size_t len) {
    sink_lens.push_back(len);
    checksum += Fnv1a(frame, len);
  });

  std::uint8_t buf[kMaxFrameLen];
  FiveTuple flow{.src_ip = 1, .dst_ip = 2, .src_port = 3, .dst_port = 4};
  std::size_t len = BuildUdpFrame(buf, kSrcMac, kDstMac, flow, "xyz", 3);
  TxFrame frame{buf, static_cast<std::uint16_t>(len)};

  EXPECT_EQ(driver_.TxBurst(&frame, 1), 1u);
  EXPECT_EQ(nic_.ProcessTx(8), 1u);
  ASSERT_EQ(sink_lens.size(), 1u);
  EXPECT_EQ(sink_lens[0], len);
  EXPECT_EQ(checksum, Fnv1a(buf, len)) << "device read the exact bytes we queued";
  EXPECT_EQ(driver_.ReclaimTx(), 1u);
}

TEST_F(NicTest, RingWrapsAcrossManyBatches) {
  std::uint64_t total = 0;
  for (int round = 0; round < 20; ++round) {
    SourceFrames(48);  // larger than half the 64-entry ring
    nic_.DeliverRx(48);
    RxFrame frames[64];
    total += driver_.RxBurst(frames, 64);
  }
  EXPECT_EQ(total, 20u * 48u);
  EXPECT_EQ(nic_.rx_delivered(), 20u * 48u);
  EXPECT_EQ(nic_.dma_faults(), 0u);
}

TEST_F(NicTest, InPlaceForwardingPath) {
  SourceFrames(4);
  nic_.DeliverRx(4);
  std::uint64_t forwarded = 0;
  nic_.SetPacketSink([&](const std::uint8_t*, std::size_t) { ++forwarded; });
  driver_.RxBurstInPlace(
      [&](VAddr iova, std::uint16_t len) { EXPECT_TRUE(driver_.TxInPlace(iova, len)); }, 8);
  EXPECT_EQ(nic_.ProcessTx(8), 4u);
  EXPECT_EQ(forwarded, 4u);
}

TEST_F(NicTest, DetachedDeviceFaultsAllDma) {
  iommu_.DetachDevice(kDevice);
  SourceFrames(4);
  EXPECT_EQ(nic_.DeliverRx(4), 0u) << "ring reads fault, device stalls";
  EXPECT_GT(nic_.dma_faults(), 0u);
}

// --- Zero-copy burst pipeline (DESIGN.md §14) ---

TEST_F(NicTest, RxPeekBurstIsIdempotentAndMatchesRxBurst) {
  SourceFrames(6);
  ASSERT_EQ(nic_.DeliverRx(32), 6u);

  // Peek borrows payloads straight out of the DMA arena without consuming.
  RxView views[32];
  std::uint32_t peeked = driver_.RxPeekBurst(views, 32);
  ASSERT_EQ(peeked, 6u);
  std::uint64_t borrowed_sums[32];
  for (std::uint32_t i = 0; i < peeked; ++i) {
    borrowed_sums[i] = Fnv1a(views[i].data, views[i].len);
  }

  // Idempotent: a second peek sees the identical burst (same buffers).
  RxView again[32];
  ASSERT_EQ(driver_.RxPeekBurst(again, 32), peeked);
  for (std::uint32_t i = 0; i < peeked; ++i) {
    EXPECT_EQ(again[i].data, views[i].data);
    EXPECT_EQ(again[i].iova, views[i].iova);
    EXPECT_EQ(again[i].len, views[i].len);
  }

  // The copying receive path sees the exact same bytes the borrow exposed.
  RxFrame frames[32];
  std::uint32_t copied = driver_.RxBurst(frames, 32);
  ASSERT_EQ(copied, peeked);
  for (std::uint32_t i = 0; i < copied; ++i) {
    EXPECT_EQ(frames[i].len, views[i].len);
    EXPECT_EQ(Fnv1a(frames[i].data.data(), frames[i].len), borrowed_sums[i])
        << "frame " << i << ": borrowed view diverged from the DMA copy";
  }
  EXPECT_EQ(nic_.dma_faults(), 0u);
}

TEST_F(NicTest, RxReleaseBurstRearmsTheRing) {
  // Consume the whole 64-entry ring twice via peek/release: the second
  // round only succeeds if release re-armed the descriptors.
  for (int round = 0; round < 2; ++round) {
    SourceFrames(48);
    ASSERT_EQ(nic_.DeliverRx(48), 48u);
    std::uint32_t drained = 0;
    while (drained < 48) {
      RxView views[16];
      std::uint32_t got = driver_.RxPeekBurst(views, 16);
      ASSERT_GT(got, 0u);
      for (std::uint32_t i = 0; i < got; ++i) {
        ASSERT_TRUE(ParseUdpFrame(views[i].data, views[i].len).has_value());
      }
      driver_.RxReleaseBurst(got);
      drained += got;
    }
  }
  EXPECT_EQ(driver_.rx_frames(), 96u);
  EXPECT_EQ(nic_.dma_faults(), 0u);
}

TEST_F(NicTest, TxClaimFinishFrameMatchesCopyingTxPath) {
  std::vector<std::uint64_t> sink_sums;
  std::vector<std::size_t> sink_lens;
  nic_.SetPacketSink([&](const std::uint8_t* frame, std::size_t len) {
    sink_sums.push_back(Fnv1a(frame, len));
    sink_lens.push_back(len);
  });
  FiveTuple flow{.src_ip = 0x0a000001, .dst_ip = 0x0a000002, .src_port = 9, .dst_port = 10};
  const char payload[] = "zero-copy egress";

  // Path A (zero-copy): write the payload into the claimed TX buffer, wrap
  // headers around it in place, publish, one doorbell.
  std::uint8_t* tx = driver_.TxClaim();
  ASSERT_NE(tx, nullptr);
  std::memcpy(tx + kHeadersLen, payload, sizeof(payload));
  std::size_t zc_len = FinishUdpFrame(tx, kSrcMac, kDstMac, flow, sizeof(payload));
  driver_.TxCommitDeferred(static_cast<std::uint16_t>(zc_len));
  driver_.TxFlush();
  ASSERT_EQ(nic_.ProcessTx(8), 1u);

  // Path B (copying): build on the stack, TxBurst copies into the arena.
  std::uint8_t buf[kMaxFrameLen];
  std::size_t copy_len = BuildUdpFrame(buf, kSrcMac, kDstMac, flow, payload, sizeof(payload));
  TxFrame frame{buf, static_cast<std::uint16_t>(copy_len)};
  ASSERT_EQ(driver_.TxBurst(&frame, 1), 1u);
  ASSERT_EQ(nic_.ProcessTx(8), 1u);

  ASSERT_EQ(sink_sums.size(), 2u);
  EXPECT_EQ(sink_lens[0], sink_lens[1]);
  EXPECT_EQ(sink_sums[0], sink_sums[1]) << "zero-copy egress must be byte-identical";
  EXPECT_EQ(driver_.tx_frames(), 2u);
}

TEST_F(NicTest, TxClaimReturnsNullOnlyWhenRingIsFull) {
  // Claim-without-flush until the ring refuses: exactly entries-1 slots
  // (the ring keeps one slot open to distinguish full from empty), and no
  // frame reaches the device until the flush.
  std::uint64_t sunk = 0;
  nic_.SetPacketSink([&](const std::uint8_t*, std::size_t) { ++sunk; });
  std::uint32_t claimed = 0;
  while (true) {
    std::uint8_t* tx = driver_.TxClaim();
    if (tx == nullptr) {
      break;
    }
    std::memset(tx + kHeadersLen, 0xab, 8);
    std::size_t len = FinishUdpFrame(tx, kSrcMac, kDstMac,
                                     FiveTuple{.src_ip = 1, .dst_ip = 2, .src_port = 3,
                                               .dst_port = 4},
                                     8);
    driver_.TxCommitDeferred(static_cast<std::uint16_t>(len));
    ++claimed;
    ASSERT_LT(claimed, 1000u) << "TxClaim never reported a full ring";
  }
  EXPECT_EQ(sunk, 0u) << "deferred commits must not ring the doorbell";
  driver_.TxFlush();
  EXPECT_EQ(nic_.ProcessTx(claimed + 8), claimed);
  EXPECT_EQ(sunk, claimed);
  EXPECT_EQ(driver_.ReclaimTx(), claimed);
}

// ---------------------------------------------------------------------------
// SimNvme + NvmeDriver
// ---------------------------------------------------------------------------

class NvmeTest : public DriverEnv {
 protected:
  NvmeTest() : device_(&mem_, &iommu_, kDevice, /*capacity_blocks=*/4096),
               driver_(&arena_, &device_, 64) {
    driver_.Init();
  }

  SimNvme device_;
  NvmeDriver driver_;
};

TEST_F(NvmeTest, WriteThenReadBackRoundTrip) {
  VAddr buf = driver_.AllocBuffer(1);
  std::vector<std::uint8_t> data(kNvmeBlockBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13);
  }
  arena_.Write(buf, data.data(), data.size());

  ASSERT_TRUE(driver_.SubmitWrite(/*lba=*/7, 1, buf, /*cid=*/1));
  driver_.RingDoorbell();
  EXPECT_EQ(device_.ProcessCommands(8), 1u);
  NvmeCompletion completions[8];
  ASSERT_EQ(driver_.PollCompletions(completions, 8), 1u);
  EXPECT_EQ(completions[0].cid, 1u);
  EXPECT_FALSE(completions[0].error);

  // Scrub the buffer, read the block back.
  std::vector<std::uint8_t> zero(kNvmeBlockBytes, 0);
  arena_.Write(buf, zero.data(), zero.size());
  ASSERT_TRUE(driver_.SubmitRead(7, 1, buf, 2));
  driver_.RingDoorbell();
  device_.ProcessCommands(8);
  ASSERT_EQ(driver_.PollCompletions(completions, 8), 1u);

  std::vector<std::uint8_t> out(kNvmeBlockBytes);
  arena_.Read(buf, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(NvmeTest, UnwrittenBlocksReadAsZero) {
  VAddr buf = driver_.AllocBuffer(1);
  arena_.WriteU64(buf, 0xffffffffffffffffull);
  ASSERT_TRUE(driver_.SubmitRead(100, 1, buf, 1));
  driver_.RingDoorbell();
  device_.ProcessCommands(1);
  NvmeCompletion c;
  ASSERT_EQ(driver_.PollCompletions(&c, 1), 1u);
  EXPECT_EQ(arena_.ReadU64(buf), 0u);
}

TEST_F(NvmeTest, OutOfRangeLbaCompletesWithError) {
  VAddr buf = driver_.AllocBuffer(1);
  ASSERT_TRUE(driver_.SubmitRead(/*lba=*/999999, 1, buf, 5));
  driver_.RingDoorbell();
  device_.ProcessCommands(1);
  NvmeCompletion c;
  ASSERT_EQ(driver_.PollCompletions(&c, 1), 1u);
  EXPECT_EQ(c.cid, 5u);
  EXPECT_TRUE(c.error);
}

TEST_F(NvmeTest, QueueDepthIsRespected) {
  VAddr buf = driver_.AllocBuffer(1);
  std::uint32_t submitted = 0;
  while (driver_.SubmitRead(0, 1, buf, submitted)) {
    ++submitted;
  }
  EXPECT_EQ(submitted, driver_.entries());
  driver_.RingDoorbell();
  device_.ProcessCommands(submitted);
  std::vector<NvmeCompletion> completions(submitted);
  EXPECT_EQ(driver_.PollCompletions(completions.data(), submitted), submitted);
  // After reaping, the queue has room again.
  EXPECT_TRUE(driver_.SubmitRead(0, 1, buf, 999));
}

TEST_F(NvmeTest, MultiBlockCommandsMoveAllBytes) {
  VAddr buf = driver_.AllocBuffer(4);
  std::vector<std::uint8_t> data(4 * kNvmeBlockBytes);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  arena_.Write(buf, data.data(), data.size());
  ASSERT_TRUE(driver_.SubmitWrite(16, 4, buf, 1));
  driver_.RingDoorbell();
  device_.ProcessCommands(1);
  NvmeCompletion c;
  ASSERT_EQ(driver_.PollCompletions(&c, 1), 1u);

  std::vector<std::uint8_t> out(data.size());
  device_.BackdoorRead(16, out.data(), out.size());
  EXPECT_EQ(out, data);
}

TEST_F(NvmeTest, CqPhaseBitWrapsCorrectly) {
  // Run several full passes over the 64-entry CQ to exercise phase flips.
  VAddr buf = driver_.AllocBuffer(1);
  for (int pass = 0; pass < 5; ++pass) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      ASSERT_TRUE(driver_.SubmitRead(0, 1, buf, pass * 64 + i));
    }
    driver_.RingDoorbell();
    EXPECT_EQ(device_.ProcessCommands(64), 64u);
    std::vector<NvmeCompletion> completions(64);
    ASSERT_EQ(driver_.PollCompletions(completions.data(), 64), 64u);
    EXPECT_EQ(completions[63].cid, static_cast<std::uint32_t>(pass * 64 + 63));
  }
}

}  // namespace
}  // namespace atmo
