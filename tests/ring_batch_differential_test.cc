// Differential oracle for batch-amortized checking (DESIGN.md §13): the
// per-call Exec path and the batched kRingEnter path must be functionally
// identical. A batched drain executes exactly the inner calls a per-call
// twin would, produces the same return values, the same concrete kernel
// state and the same abstract state (modulo the ring object itself, which
// only exists on the batched side), and both paths pass the refinement
// checker. Mid-batch failures are covered in both flavours: io_uring-style
// error completions (non-atomic) and batch-level rollback (kRingDrainAtomic).

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/core/syscall_ring.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/trace_gen.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr VAddr kWindow = 0x100000;

Syscall RingSetupCall(std::uint32_t entries, std::uint32_t flags = 0) {
  Syscall c;
  c.op = SysOp::kRingSetup;
  c.ring_entries = entries;
  c.ring_flags = flags;
  return c;
}

Syscall MmapCall(VAddr va) {
  Syscall c;
  c.op = SysOp::kMmap;
  c.va_range = VaRange{va, 1, PageSize::k4K};
  c.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
  return c;
}

Syscall MunmapCall(VAddr va) {
  Syscall c;
  c.op = SysOp::kMunmap;
  c.va_range = VaRange{va, 1, PageSize::k4K};
  return c;
}

Syscall NewThreadCall() {
  Syscall c;
  c.op = SysOp::kNewThread;
  return c;
}

// Wraps an inner call as a kRingSubmit record for `ring`.
Syscall AsSubmit(std::uint64_t ring, const Syscall& inner, std::uint64_t user_data) {
  Syscall c = inner;
  c.op = SysOp::kRingSubmit;
  c.ring_id = ring;
  c.ring_op = inner.op;
  c.ring_user_data = user_data;
  return c;
}

Syscall RingEnterCall(std::uint64_t ring, std::uint32_t budget = 0) {
  Syscall c;
  c.op = SysOp::kRingEnter;
  c.ring_id = ring;
  c.ring_budget = budget;
  return c;
}

// Abstract-state equality modulo the ring component: the per-call twin has
// no ring traffic, so its `rings` map legitimately differs from the batched
// kernel's. Everything else — threads, address spaces, pages, free sets,
// endpoints, containers, IOMMU, scheduler — must agree exactly.
bool EqualModuloRings(AbstractKernel a, AbstractKernel b) {
  a.rings = SpecMap<std::uint64_t, AbsSyscallRing>{};
  b.rings = SpecMap<std::uint64_t, AbsSyscallRing>{};
  return a == b;
}

// A mixed workload: valid mmaps, a failing overlap, munmaps, thread churn.
// `fail_at` (index into the list) controls where the seeded failure sits.
std::vector<Syscall> MixedInnerCalls() {
  return {
      MmapCall(kWindow),
      MmapCall(kWindow + kPageSize4K),
      MmapCall(kWindow),  // overlap → kInvalid
      NewThreadCall(),
      MunmapCall(kWindow + kPageSize4K),
      MunmapCall(kWindow),
  };
}

// ---------------------------------------------------------------------------
// Batched ≡ per-call: same rets, same concrete state, same Ψ, same verdict.
// ---------------------------------------------------------------------------

TEST(RingBatchDifferentialTest, BatchedDrainEqualsPerCallExecution) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel,
                            RefinementChecker::Options{.check_wf_every = 1, .audit_every = 1});
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(8)).value;
  std::vector<Syscall> inner = MixedInnerCalls();
  for (std::size_t i = 0; i < inner.size(); ++i) {
    ASSERT_TRUE(checker.Step(t, AsSubmit(ring, inner[i], i)).ok());
  }

  // Per-call twin: cloned right before the drain, driven under its own
  // checker so the per-call path stays the fully-checked oracle.
  Kernel twin = f.kernel.CloneForVerification();
  RefinementChecker twin_checker(
      &twin, RefinementChecker::Options{.check_wf_every = 1, .audit_every = 1});
  std::vector<SyscallRet> twin_rets;
  for (const Syscall& call : inner) {
    twin_rets.push_back(twin_checker.Step(t, call));
  }

  SyscallRet enter = checker.Step(t, RingEnterCall(ring));
  ASSERT_TRUE(enter.ok());
  ASSERT_EQ(enter.value, inner.size());
  EXPECT_EQ(checker.stats().batch_drains, 1u);
  EXPECT_EQ(checker.stats().batched_entries, inner.size());

  // Completion-by-completion: the batch returned exactly what the per-call
  // twin returned, in submission order, tagged with the right user_data.
  RingCqEntry cqes[8];
  ASSERT_EQ(f.kernel.RingReap(t, ring, cqes, 8), inner.size());
  for (std::size_t i = 0; i < inner.size(); ++i) {
    EXPECT_EQ(cqes[i].user_data, i) << i;
    EXPECT_EQ(cqes[i].ret.error, twin_rets[i].error) << i;
    EXPECT_EQ(cqes[i].ret.value, twin_rets[i].value) << i;
  }

  // State equivalence, concrete and abstract (modulo the ring object).
  EXPECT_TRUE(EqualModuloRings(f.kernel.Abstract(), twin.Abstract()));
  EXPECT_TRUE(f.kernel.TotalWf().ok);
  EXPECT_TRUE(twin.TotalWf().ok);
}

// ---------------------------------------------------------------------------
// Non-atomic mid-batch failure: the failing entry completes with its error
// in the CQ and the drain continues — exactly the per-call outcome.
// ---------------------------------------------------------------------------

TEST(RingBatchDifferentialTest, NonAtomicMidBatchFailureMatchesPerCall) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(8)).value;
  // Entry 1 fails (munmap of an unmapped page); 0 and 2 succeed.
  std::vector<Syscall> inner = {MmapCall(kWindow), MunmapCall(kWindow + 16 * kPageSize4K),
                                MunmapCall(kWindow)};
  for (std::size_t i = 0; i < inner.size(); ++i) {
    ASSERT_TRUE(checker.Step(t, AsSubmit(ring, inner[i], i)).ok());
  }

  Kernel twin = f.kernel.CloneForVerification();
  twin.Dispatch(t);
  std::vector<SyscallRet> twin_rets;
  for (const Syscall& call : inner) {
    twin_rets.push_back(twin.Exec(t, call));
  }
  ASSERT_FALSE(twin_rets[1].ok());

  SyscallRet enter = checker.Step(t, RingEnterCall(ring));
  ASSERT_TRUE(enter.ok());
  EXPECT_EQ(enter.value, 3u);  // failure did NOT stop the drain

  RingCqEntry cqes[8];
  ASSERT_EQ(f.kernel.RingReap(t, ring, cqes, 8), 3u);
  for (std::size_t i = 0; i < inner.size(); ++i) {
    EXPECT_EQ(cqes[i].ret.error, twin_rets[i].error) << i;
  }
  EXPECT_TRUE(EqualModuloRings(f.kernel.Abstract(), twin.Abstract()));
}

// ---------------------------------------------------------------------------
// Atomic mid-batch failure: kRingDrainAtomic rolls the WHOLE batch back.
// Ψ' == Ψ, the SQ is retained, kRingEnter reports kWouldFault — and the
// checker (audit every step) proves the cached Ψ stayed faithful through
// the snapshot/restore, including the restored-empty dirty logs.
// ---------------------------------------------------------------------------

TEST(RingBatchDifferentialTest, AtomicMidBatchFailureRollsBackWholeBatch) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel,
                            RefinementChecker::Options{.check_wf_every = 1, .audit_every = 1});
  f.SetupIpcAndDma();
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = checker.Step(t, RingSetupCall(8, kRingDrainAtomic)).value;
  std::vector<Syscall> inner = {MmapCall(kWindow), MmapCall(kWindow),  // overlap fails
                                MmapCall(kWindow + kPageSize4K)};
  for (std::size_t i = 0; i < inner.size(); ++i) {
    ASSERT_TRUE(checker.Step(t, AsSubmit(ring, inner[i], i)).ok());
  }

  AbstractKernel before = f.kernel.Abstract();
  SyscallRet enter = checker.Step(t, RingEnterCall(ring));
  EXPECT_EQ(enter.error, SysError::kWouldFault);
  EXPECT_EQ(checker.stats().batch_drains, 0u);  // failed drains don't count

  // Rollback is total: nothing mapped (not even entry 0), SQ retained so
  // the caller can repair and re-enter, CQ empty.
  AbstractKernel after = f.kernel.Abstract();
  EXPECT_TRUE(before == after);
  const SyscallRing& r = f.kernel.rings().Get(ring);
  EXPECT_EQ(r.SqSize(), 3u);
  EXPECT_EQ(r.CqSize(), 0u);
  EXPECT_FALSE(f.kernel.vm().Resolve(f.procs[0], kWindow).has_value());

  // The checker keeps running cleanly after the rollback: its cached Ψ and
  // a fresh full abstraction still agree (audit_every = 1 enforced it on
  // the kWouldFault step itself, and keeps enforcing it here).
  ASSERT_TRUE(checker.Step(t, MmapCall(kWindow + 2 * kPageSize4K)).ok());
  EXPECT_TRUE(f.kernel.TotalWf().ok);

  // The retained batch still contains the overlap, so an atomic re-enter
  // rolls back again — while a per-call twin of the same entries keeps its
  // partial effects. That divergence IS the atomicity contract.
  Kernel twin = f.kernel.CloneForVerification();
  twin.Dispatch(t);
  std::vector<SyscallRet> twin_rets;
  for (const Syscall& call : inner) {
    twin_rets.push_back(twin.Exec(t, call));
  }
  SyscallRet retry = checker.Step(t, RingEnterCall(ring));
  EXPECT_EQ(retry.error, SysError::kWouldFault);
  EXPECT_EQ(f.kernel.rings().Get(ring).SqSize(), 3u);
  EXPECT_TRUE(twin_rets[0].ok());
  EXPECT_FALSE(twin_rets[1].ok());
  EXPECT_FALSE(EqualModuloRings(f.kernel.Abstract(), twin.Abstract()));
}

// ---------------------------------------------------------------------------
// Verdict identity on randomized traces: a generated ring-free workload
// executed per-call and the same workload batched through a ring both pass
// checking, and land in the same abstract state (modulo rings).
// ---------------------------------------------------------------------------

TEST(RingBatchDifferentialTest, RandomizedWorkloadBatchedEqualsPerCall) {
  // Two independently booted fixtures (identical by construction).
  TraceFixture per_call = TraceFixture::Boot();
  TraceFixture batched = TraceFixture::Boot();
  RefinementChecker pc_checker(
      &per_call.kernel, RefinementChecker::Options{.check_wf_every = 1, .audit_every = 4});
  RefinementChecker b_checker(
      &batched.kernel, RefinementChecker::Options{.check_wf_every = 1, .audit_every = 4});
  per_call.SetupIpcAndDma();
  batched.SetupIpcAndDma();
  ThrdPtr t_pc = per_call.thrds[0];
  ThrdPtr t_b = batched.thrds[0];

  std::uint64_t ring = b_checker.Step(t_b, RingSetupCall(32)).value;

  // Deterministic pseudo-random submittable workload, same on both sides.
  Xorshift rng{0xabcdef12345678ull};
  constexpr int kBatch = 16;
  for (int round = 0; round < 8; ++round) {
    std::vector<Syscall> calls;
    for (int i = 0; i < kBatch; ++i) {
      std::uint64_t r = rng.Next();
      VAddr va = kWindow + ((r >> 8) % 24) * kPageSize4K;
      calls.push_back((r % 2) == 0 ? MmapCall(va) : MunmapCall(va));
    }
    std::vector<SyscallRet> pc_rets;
    for (const Syscall& call : calls) {
      pc_rets.push_back(pc_checker.Step(t_pc, call));
    }
    for (std::size_t i = 0; i < calls.size(); ++i) {
      // The shared-memory fast path: user-space pushes the SQ entry without
      // a kernel transition (no checker step — the dirty log absorbs it).
      ASSERT_TRUE(batched.kernel.RingPushDirect(t_b, AsSubmit(ring, calls[i], i)).ok());
    }
    SyscallRet enter = b_checker.Step(t_b, RingEnterCall(ring));
    ASSERT_TRUE(enter.ok());
    ASSERT_EQ(enter.value, calls.size());

    RingCqEntry cqes[kBatch];
    ASSERT_EQ(batched.kernel.RingReap(t_b, ring, cqes, kBatch), calls.size());
    for (std::size_t i = 0; i < calls.size(); ++i) {
      EXPECT_EQ(cqes[i].ret.error, pc_rets[i].error) << "round " << round << " entry " << i;
    }
    ASSERT_TRUE(EqualModuloRings(batched.kernel.Abstract(), per_call.kernel.Abstract()))
        << "round " << round;
  }

  // The batched side paid one checked transition per kBatch inner calls.
  EXPECT_EQ(b_checker.stats().batch_drains, 8u);
  EXPECT_EQ(b_checker.stats().batched_entries, 8u * kBatch);
  EXPECT_EQ(pc_checker.stats().steps, 8u * kBatch);
}

}  // namespace
}  // namespace atmo
