// Process-manager tests: container tree + ghost state, process trees,
// threads, endpoints, scheduler, quota accounting, and all well-formedness
// invariants — including failure injection showing the invariants catch
// deliberate corruption.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/pmem/page_allocator.h"
#include "src/proc/invariants.h"
#include "src/proc/process_manager.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr std::uint64_t kFrames = 4096;  // 16 MiB machine
constexpr std::uint64_t kRootQuota = 2048;

class ProcTest : public ::testing::Test {
 protected:
  ProcTest() : alloc_(kFrames, 1) {
    auto pm = ProcessManager::Boot(&alloc_, kRootQuota);
    pm_.emplace(std::move(*pm));
  }

  void ExpectAllWf() {
    InvResult r = ProcessManagerWf(*pm_);
    EXPECT_TRUE(r.ok) << r.detail;
    InvResult q = QuotaWf(*pm_, alloc_);
    EXPECT_TRUE(q.ok) << q.detail;
    EXPECT_TRUE(alloc_.Wf());
  }

  // Convenience: container -> initial process -> one thread.
  struct Trio {
    CtnrPtr ctnr;
    ProcPtr proc;
    ThrdPtr thrd;
  };
  Trio MakeTrio(CtnrPtr parent, std::uint64_t quota) {
    auto c = pm_->NewContainer(&alloc_, parent, quota, ~0ull);
    EXPECT_TRUE(c.ok()) << ProcErrorName(c.error);
    auto p = pm_->NewProcess(&alloc_, c.value, kNullPtr);
    EXPECT_TRUE(p.ok()) << ProcErrorName(p.error);
    auto t = pm_->NewThread(&alloc_, p.value);
    EXPECT_TRUE(t.ok()) << ProcErrorName(t.error);
    return Trio{c.value, p.value, t.value};
  }

  PageAllocator alloc_;
  std::optional<ProcessManager> pm_;
};

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

TEST_F(ProcTest, BootStateIsWellFormed) {
  EXPECT_NE(pm_->root_container(), kNullPtr);
  const Container& root = pm_->GetContainer(pm_->root_container());
  EXPECT_EQ(root.mem_quota, kRootQuota);
  EXPECT_EQ(root.mem_used, 1u);
  EXPECT_EQ(root.depth, 0u);
  ExpectAllWf();
}

TEST_F(ProcTest, NewContainerCarvesQuota) {
  CtnrPtr root = pm_->root_container();
  auto child = pm_->NewContainer(&alloc_, root, 256, ~0ull);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(pm_->GetContainer(root).mem_quota, kRootQuota - 256);
  EXPECT_EQ(pm_->GetContainer(child.value).mem_quota, 256u);
  EXPECT_EQ(pm_->GetContainer(child.value).mem_used, 1u);
  EXPECT_EQ(pm_->GetContainer(child.value).depth, 1u);
  EXPECT_TRUE(pm_->GetContainer(root).subtree.contains(child.value));
  ExpectAllWf();
}

TEST_F(ProcTest, NestedContainersMaintainPathAndSubtree) {
  CtnrPtr root = pm_->root_container();
  auto a = pm_->NewContainer(&alloc_, root, 512, ~0ull);
  auto b = pm_->NewContainer(&alloc_, a.value, 128, ~0ull);
  auto c = pm_->NewContainer(&alloc_, b.value, 32, ~0ull);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  const Container& cc = pm_->GetContainer(c.value);
  EXPECT_EQ(cc.depth, 3u);
  EXPECT_EQ(cc.path, (SpecSeq<CtnrPtr>{root, a.value, b.value}));
  EXPECT_TRUE(pm_->GetContainer(root).subtree.contains(c.value));
  EXPECT_TRUE(pm_->GetContainer(a.value).subtree.contains(c.value));
  EXPECT_TRUE(pm_->GetContainer(b.value).subtree.contains(c.value));
  EXPECT_FALSE(pm_->GetContainer(b.value).subtree.contains(a.value));
  EXPECT_EQ(pm_->SubtreeContainers(a.value),
            (SpecSet<CtnrPtr>{a.value, b.value, c.value}));
  ExpectAllWf();
}

TEST_F(ProcTest, QuotaCannotExceedParentHeadroom) {
  CtnrPtr root = pm_->root_container();
  // Root has used 1 page of its quota already.
  auto too_big = pm_->NewContainer(&alloc_, root, kRootQuota, ~0ull);
  EXPECT_EQ(too_big.error, ProcError::kQuotaExceeded);
  auto just_fits = pm_->NewContainer(&alloc_, root, kRootQuota - 1, ~0ull);
  EXPECT_TRUE(just_fits.ok());
  ExpectAllWf();
}

TEST_F(ProcTest, CpuMaskMustBeSubsetOfParent) {
  CtnrPtr root = pm_->root_container();
  auto a = pm_->NewContainer(&alloc_, root, 512, 0b0011);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pm_->NewContainer(&alloc_, a.value, 64, 0b0100).error, ProcError::kInvalid);
  EXPECT_TRUE(pm_->NewContainer(&alloc_, a.value, 64, 0b0001).ok());
  ExpectAllWf();
}

TEST_F(ProcTest, RemoveContainerReturnsQuotaToParent) {
  CtnrPtr root = pm_->root_container();
  auto child = pm_->NewContainer(&alloc_, root, 256, ~0ull);
  ASSERT_TRUE(child.ok());
  std::uint64_t root_quota_after_carve = pm_->GetContainer(root).mem_quota;
  pm_->RemoveContainer(&alloc_, child.value);
  EXPECT_EQ(pm_->GetContainer(root).mem_quota, root_quota_after_carve + 256);
  EXPECT_FALSE(pm_->ContainerExists(child.value));
  EXPECT_FALSE(pm_->GetContainer(root).subtree.contains(child.value));
  ExpectAllWf();
}

TEST_F(ProcTest, RemoveRootIsViolation) {
  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(pm_->RemoveContainer(&alloc_, pm_->root_container()), CheckViolation);
}

TEST_F(ProcTest, RemoveContainerWithChildrenIsViolation) {
  ScopedThrowOnCheckFailure guard;
  CtnrPtr root = pm_->root_container();
  auto a = pm_->NewContainer(&alloc_, root, 512, ~0ull);
  auto b = pm_->NewContainer(&alloc_, a.value, 64, ~0ull);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_THROW(pm_->RemoveContainer(&alloc_, a.value), CheckViolation);
}

// ---------------------------------------------------------------------------
// Processes and threads
// ---------------------------------------------------------------------------

TEST_F(ProcTest, ProcessTreeInsideContainer) {
  Trio trio = MakeTrio(pm_->root_container(), 512);
  auto child_proc = pm_->NewProcess(&alloc_, trio.ctnr, trio.proc);
  ASSERT_TRUE(child_proc.ok());
  EXPECT_EQ(pm_->GetProcess(child_proc.value).parent, trio.proc);
  EXPECT_TRUE(pm_->GetProcess(trio.proc).children.Contains(child_proc.value));
  EXPECT_EQ(pm_->GetContainer(trio.ctnr).owned_procs.len(), 2u);
  ExpectAllWf();
}

TEST_F(ProcTest, ProcessCannotCrossContainers) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  Trio b = MakeTrio(pm_->root_container(), 256);
  EXPECT_EQ(pm_->NewProcess(&alloc_, a.ctnr, b.proc).error, ProcError::kInvalid);
}

TEST_F(ProcTest, ThreadCreationChargesContainer) {
  Trio trio = MakeTrio(pm_->root_container(), 512);
  std::uint64_t used = pm_->GetContainer(trio.ctnr).mem_used;
  auto t2 = pm_->NewThread(&alloc_, trio.proc);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(pm_->GetContainer(trio.ctnr).mem_used, used + 1);
  EXPECT_TRUE(pm_->GetContainer(trio.ctnr).owned_threads.contains(t2.value));
  ExpectAllWf();
}

TEST_F(ProcTest, QuotaExhaustionBlocksCreation) {
  // Quota 3: container page + proc page + thread page = full.
  Trio trio = MakeTrio(pm_->root_container(), 3);
  EXPECT_EQ(pm_->GetContainer(trio.ctnr).mem_used, 3u);
  auto t2 = pm_->NewThread(&alloc_, trio.proc);
  EXPECT_EQ(t2.error, ProcError::kQuotaExceeded);
  ExpectAllWf();
}

TEST_F(ProcTest, SubtreeThreadsCollectsAcrossNesting) {
  CtnrPtr root = pm_->root_container();
  Trio a = MakeTrio(root, 512);
  auto inner = pm_->NewContainer(&alloc_, a.ctnr, 64, ~0ull);
  ASSERT_TRUE(inner.ok());
  auto inner_proc = pm_->NewProcess(&alloc_, inner.value, kNullPtr);
  auto inner_thrd = pm_->NewThread(&alloc_, inner_proc.value);
  ASSERT_TRUE(inner_thrd.ok());

  SpecSet<ThrdPtr> threads = pm_->SubtreeThreads(a.ctnr);
  EXPECT_TRUE(threads.contains(a.thrd));
  EXPECT_TRUE(threads.contains(inner_thrd.value));
  EXPECT_EQ(threads.size(), 2u);
  // Root's subtree threads include everything.
  EXPECT_EQ(pm_->SubtreeThreads(root).size(), 2u);
  ExpectAllWf();
}

TEST_F(ProcTest, RemoveThreadUnlinksEverywhere) {
  Trio trio = MakeTrio(pm_->root_container(), 512);
  std::uint64_t used = pm_->GetContainer(trio.ctnr).mem_used;
  pm_->RemoveThread(&alloc_, trio.thrd);
  EXPECT_FALSE(pm_->ThreadExists(trio.thrd));
  EXPECT_TRUE(pm_->GetProcess(trio.proc).threads.empty());
  EXPECT_FALSE(pm_->GetContainer(trio.ctnr).owned_threads.contains(trio.thrd));
  EXPECT_EQ(pm_->GetContainer(trio.ctnr).mem_used, used - 1);
  ExpectAllWf();
}

TEST_F(ProcTest, FullTeardownReturnsAllMemory) {
  std::uint64_t free_before = alloc_.FreeCount(PageSize::k4K);
  Trio trio = MakeTrio(pm_->root_container(), 512);
  pm_->RemoveThread(&alloc_, trio.thrd);
  pm_->RemoveProcess(&alloc_, trio.proc);
  pm_->RemoveContainer(&alloc_, trio.ctnr);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), free_before);
  EXPECT_EQ(pm_->GetContainer(pm_->root_container()).mem_quota, kRootQuota);
  ExpectAllWf();
}

// ---------------------------------------------------------------------------
// Endpoints
// ---------------------------------------------------------------------------

TEST_F(ProcTest, EndpointCreateBindUnbind) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  Trio b = MakeTrio(pm_->root_container(), 256);
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(pm_->GetEndpoint(e.value).rf_count, 1u);

  EXPECT_EQ(pm_->BindEndpoint(b.thrd, 3, e.value), ProcError::kOk);
  EXPECT_EQ(pm_->GetEndpoint(e.value).rf_count, 2u);
  EXPECT_EQ(pm_->GetThread(b.thrd).endpoints[3], e.value);
  ExpectAllWf();

  EXPECT_EQ(pm_->UnbindEndpoint(&alloc_, a.thrd, 0), ProcError::kOk);
  EXPECT_EQ(pm_->GetEndpoint(e.value).rf_count, 1u);
  EXPECT_EQ(pm_->UnbindEndpoint(&alloc_, b.thrd, 3), ProcError::kOk);
  EXPECT_FALSE(pm_->EndpointExists(e.value)) << "freed at zero references";
  ExpectAllWf();
}

TEST_F(ProcTest, EndpointSlotCollisionRejected) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(pm_->NewEndpoint(&alloc_, a.thrd, 0).error, ProcError::kInvalid);
  EXPECT_EQ(pm_->BindEndpoint(a.thrd, 0, e.value), ProcError::kInvalid);
  EXPECT_EQ(pm_->NewEndpoint(&alloc_, a.thrd, kMaxEdptDescriptors).error, ProcError::kInvalid);
}

TEST_F(ProcTest, RemoveThreadReleasesItsEndpointReferences) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  ASSERT_TRUE(e.ok());
  pm_->RemoveThread(&alloc_, a.thrd);
  EXPECT_FALSE(pm_->EndpointExists(e.value));
  ExpectAllWf();
}

// ---------------------------------------------------------------------------
// Scheduler + blocking
// ---------------------------------------------------------------------------

TEST_F(ProcTest, RoundRobinOrder) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto t2 = pm_->NewThread(&alloc_, a.proc);
  ASSERT_TRUE(t2.ok());

  EXPECT_EQ(pm_->ScheduleNext(), a.thrd);
  EXPECT_EQ(pm_->GetThread(a.thrd).state, ThreadState::kRunning);
  ExpectAllWf();
  pm_->Yield();
  EXPECT_EQ(pm_->current(), t2.value);
  pm_->Yield();
  EXPECT_EQ(pm_->current(), a.thrd);
  ExpectAllWf();
}

TEST_F(ProcTest, YieldWithSingleThreadKeepsRunning) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  EXPECT_EQ(pm_->ScheduleNext(), a.thrd);
  pm_->Yield();
  EXPECT_EQ(pm_->current(), a.thrd);
}

TEST_F(ProcTest, BlockAndWakeOnEndpoint) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  ASSERT_TRUE(e.ok());

  EXPECT_EQ(pm_->ScheduleNext(), a.thrd);
  pm_->BlockCurrentOn(e.value, ThreadState::kBlockedRecv);
  EXPECT_EQ(pm_->current(), kNullPtr);
  EXPECT_EQ(pm_->GetThread(a.thrd).state, ThreadState::kBlockedRecv);
  EXPECT_EQ(pm_->GetEndpoint(e.value).queue_kind, EdptQueueKind::kReceivers);
  ExpectAllWf();

  ThrdPtr woken = pm_->PopWaiter(e.value);
  EXPECT_EQ(woken, a.thrd);
  pm_->MakeRunnable(woken);
  EXPECT_EQ(pm_->GetEndpoint(e.value).queue_kind, EdptQueueKind::kEmpty);
  ExpectAllWf();
}

TEST_F(ProcTest, MixedQueueKindsAreViolation) {
  ScopedThrowOnCheckFailure guard;
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto t2 = pm_->NewThread(&alloc_, a.proc);
  ASSERT_TRUE(t2.ok());
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  ASSERT_TRUE(e.ok());

  EXPECT_EQ(pm_->ScheduleNext(), a.thrd);
  pm_->BlockCurrentOn(e.value, ThreadState::kBlockedRecv);
  EXPECT_EQ(pm_->ScheduleNext(), t2.value);
  EXPECT_THROW(pm_->BlockCurrentOn(e.value, ThreadState::kBlockedSend), CheckViolation);
}

TEST_F(ProcTest, RemoveBlockedThreadDequeuesIt) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto t2 = pm_->NewThread(&alloc_, a.proc);
  ASSERT_TRUE(t2.ok());
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  EXPECT_EQ(pm_->BindEndpoint(t2.value, 0, e.value), ProcError::kOk);

  EXPECT_EQ(pm_->ScheduleNext(), a.thrd);
  pm_->BlockCurrentOn(e.value, ThreadState::kBlockedRecv);
  pm_->RemoveThread(&alloc_, a.thrd);
  EXPECT_TRUE(pm_->EndpointExists(e.value)) << "t2 still references the endpoint";
  EXPECT_TRUE(pm_->GetEndpoint(e.value).queue.empty());
  ExpectAllWf();
}

// ---------------------------------------------------------------------------
// Failure injection: invariants detect corruption
// ---------------------------------------------------------------------------

TEST_F(ProcTest, InvariantCatchesForgedPath) {
  CtnrPtr root = pm_->root_container();
  auto a = pm_->NewContainer(&alloc_, root, 256, ~0ull);
  ASSERT_TRUE(a.ok());
  pm_->MutableContainer(a.value).path = SpecSeq<CtnrPtr>{};  // forge: drop parent
  EXPECT_FALSE(ContainerTreeWf(*pm_).ok);
}

TEST_F(ProcTest, InvariantCatchesForgedSubtree) {
  CtnrPtr root = pm_->root_container();
  auto a = pm_->NewContainer(&alloc_, root, 256, ~0ull);
  auto b = pm_->NewContainer(&alloc_, root, 256, ~0ull);
  ASSERT_TRUE(a.ok() && b.ok());
  // Forge: claim b is inside a's subtree.
  pm_->MutableContainer(a.value).subtree.add(b.value);
  EXPECT_FALSE(ContainerTreeWf(*pm_).ok);
}

TEST_F(ProcTest, InvariantCatchesForgedDepth) {
  auto a = pm_->NewContainer(&alloc_, pm_->root_container(), 256, ~0ull);
  ASSERT_TRUE(a.ok());
  pm_->MutableContainer(a.value).depth = 7;
  EXPECT_FALSE(ContainerTreeWf(*pm_).ok);
}

TEST_F(ProcTest, InvariantCatchesRefCountSkew) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  auto e = pm_->NewEndpoint(&alloc_, a.thrd, 0);
  ASSERT_TRUE(e.ok());
  pm_->MutableEndpoint(e.value).rf_count = 5;
  EXPECT_FALSE(EndpointsWf(*pm_).ok);
}

TEST_F(ProcTest, InvariantCatchesThreadStateSkew) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  pm_->MutableThread(a.thrd).state = ThreadState::kRunning;  // but not current
  EXPECT_FALSE(ThreadsWf(*pm_).ok);
}

TEST_F(ProcTest, InvariantCatchesQuotaSkew) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  pm_->MutableContainer(a.ctnr).mem_used = 0;  // forged accounting
  EXPECT_FALSE(QuotaWf(*pm_, alloc_).ok);
}

TEST_F(ProcTest, CloneForVerificationIsDeepAndEqualShaped) {
  Trio a = MakeTrio(pm_->root_container(), 256);
  ProcessManager clone = pm_->CloneForVerification();
  EXPECT_TRUE(ProcessManagerWf(clone).ok);
  // Mutating the clone does not affect the original.
  clone.MutableContainer(a.ctnr).mem_used = 99;
  EXPECT_NE(pm_->GetContainer(a.ctnr).mem_used, 99u);
}

// ---------------------------------------------------------------------------
// Randomized lifecycle sweep
// ---------------------------------------------------------------------------

class ProcStressTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ProcStressTest, RandomLifecyclePreservesAllInvariants) {
  std::uint64_t state = GetParam() * 0x2545f4914f6cdd1dull + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  PageAllocator alloc(kFrames, 1);
  auto pm_opt = ProcessManager::Boot(&alloc, kRootQuota);
  ASSERT_TRUE(pm_opt.has_value());
  ProcessManager& pm = *pm_opt;

  std::vector<CtnrPtr> ctnrs{pm.root_container()};
  std::vector<ProcPtr> procs;
  std::vector<ThrdPtr> thrds;

  for (int step = 0; step < 600; ++step) {
    switch (next() % 8) {
      case 0: {  // new container under random parent
        CtnrPtr parent = ctnrs[next() % ctnrs.size()];
        auto r = pm.NewContainer(&alloc, parent, 8 + next() % 16, ~0ull);
        if (r.ok()) {
          ctnrs.push_back(r.value);
        }
        break;
      }
      case 1:
      case 2: {  // new process
        CtnrPtr ctnr = ctnrs[next() % ctnrs.size()];
        ProcPtr parent = kNullPtr;
        if (!procs.empty() && next() % 2 == 0) {
          ProcPtr cand = procs[next() % procs.size()];
          if (pm.GetProcess(cand).owning_container == ctnr) {
            parent = cand;
          }
        }
        auto r = pm.NewProcess(&alloc, ctnr, parent);
        if (r.ok()) {
          procs.push_back(r.value);
        }
        break;
      }
      case 3:
      case 4: {  // new thread
        if (!procs.empty()) {
          auto r = pm.NewThread(&alloc, procs[next() % procs.size()]);
          if (r.ok()) {
            thrds.push_back(r.value);
          }
        }
        break;
      }
      case 5: {  // remove a random thread
        if (!thrds.empty()) {
          std::size_t i = next() % thrds.size();
          pm.RemoveThread(&alloc, thrds[i]);
          thrds.erase(thrds.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
      case 6: {  // remove a random leaf process (no threads/children)
        if (!procs.empty()) {
          std::size_t i = next() % procs.size();
          const Process& p = pm.GetProcess(procs[i]);
          if (p.threads.empty() && p.children.empty()) {
            pm.RemoveProcess(&alloc, procs[i]);
            procs.erase(procs.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
        break;
      }
      case 7: {  // remove a random leaf container
        if (ctnrs.size() > 1) {
          std::size_t i = 1 + next() % (ctnrs.size() - 1);
          const Container& c = pm.GetContainer(ctnrs[i]);
          if (c.children.empty() && c.owned_procs.empty() && c.mem_used == 1) {
            pm.RemoveContainer(&alloc, ctnrs[i]);
            ctnrs.erase(ctnrs.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
        break;
      }
    }
    if (step % 37 == 0) {
      InvResult r = ProcessManagerWf(pm);
      ASSERT_TRUE(r.ok) << "step " << step << ": " << r.detail;
      InvResult q = QuotaWf(pm, alloc);
      ASSERT_TRUE(q.ok) << "step " << step << ": " << q.detail;
    }
  }
  InvResult r = ProcessManagerWf(pm);
  ASSERT_TRUE(r.ok) << r.detail;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcStressTest, ::testing::Values(1u, 4u, 9u, 16u, 25u, 36u));

}  // namespace
}  // namespace atmo
