// Differential and failure-injection tests for the incremental refinement
// checker: a long randomized syscall trace is checked simultaneously by the
// incremental (delta-abstraction) checker and the full-rebuild checker, and
// the two must agree on every verdict, on every Ψ, and on the step count.
// Also: the audit must catch a forged (incomplete) dirty set, and the COW
// SpecMap/SpecSet rep-sharing semantics the delta path depends on hold.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/trace_gen.h"
#include "src/vstd/check.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_set.h"

namespace atmo {
namespace {

// ---------------------------------------------------------------------------
// COW rep-sharing semantics (the delta path's equality fast path)
// ---------------------------------------------------------------------------

TEST(CowSpecMapTest, CopySharesRepAndDetachesOnWrite) {
  SpecMap<int, int> a{{1, 10}, {2, 20}};
  SpecMap<int, int> b = a;
  EXPECT_TRUE(a.SharesRepWith(b));
  EXPECT_TRUE(a == b);

  b.set(3, 30);  // detach
  EXPECT_FALSE(a.SharesRepWith(b));
  EXPECT_FALSE(a.contains(3));
  EXPECT_EQ(b.at(3), 30);
  EXPECT_EQ(a.at(1), 10);
}

TEST(CowSpecMapTest, NoOpEraseKeepsRepShared) {
  SpecMap<int, int> a{{1, 10}};
  SpecMap<int, int> b = a;
  b.erase(99);  // not present: must not detach
  EXPECT_TRUE(a.SharesRepWith(b));
  b.erase(1);  // present: detaches
  EXPECT_FALSE(a.SharesRepWith(b));
  EXPECT_TRUE(a.contains(1));
  EXPECT_FALSE(b.contains(1));
}

TEST(CowSpecSetTest, NoOpMutationsKeepRepShared) {
  SpecSet<int> a;
  a.add(1);
  a.add(2);
  SpecSet<int> b = a;
  b.erase(99);  // absent: no detach
  EXPECT_TRUE(a.SharesRepWith(b));
  b.add(1);  // already present: no detach
  EXPECT_TRUE(a.SharesRepWith(b));
  b.add(3);  // real insert: detaches
  EXPECT_FALSE(a.SharesRepWith(b));
  EXPECT_FALSE(a.contains(3));
}

// ---------------------------------------------------------------------------
// Randomized differential sweep: incremental vs full-rebuild checking
// ---------------------------------------------------------------------------
//
// Xorshift, TraceFixture and TraceGen live in src/verif/trace_gen.h — the
// same generator the parallel sweep harness shards. Fixture is an alias so
// the test reads as before.

using Fixture = TraceFixture;

TEST(IncrementalRefinementTest, DifferentialSweepAgreesWithFullRebuild) {
  Fixture inc_f = Fixture::Boot();
  Fixture full_f = Fixture::Boot();

  RefinementChecker::Options inc_opt{.check_wf_every = 16, .audit_every = 64,
                                     .incremental = true};
  RefinementChecker::Options full_opt{.check_wf_every = 16, .audit_every = 0,
                                      .incremental = false};
  RefinementChecker inc(&inc_f.kernel, inc_opt);
  RefinementChecker full(&full_f.kernel, full_opt);

  // Bind the IPC endpoint on both sides via the boot path — an *external*
  // mutation the dirty logs must absorb before the first checked step.
  for (Fixture* f : {&inc_f, &full_f}) {
    f->SetupIpcAndDma();
  }

  constexpr int kSteps = 12000;
  TraceGen gen;
  for (int i = 0; i < kSteps; ++i) {
    TraceGen::Cmd cmd = gen.Gen(inc_f);
    ThrdPtr t_inc = inc_f.thrds[cmd.thread_idx];
    ThrdPtr t_full = full_f.thrds[cmd.thread_idx];

    SyscallRet r_inc = inc.Step(t_inc, cmd.call);
    SyscallRet r_full = full.Step(t_full, cmd.call);
    ASSERT_EQ(r_inc.error, r_full.error) << "step " << i << " op "
                                         << SysOpName(cmd.call.op);
    gen.Observe(cmd.call, r_inc);

    // Drain pending inbound payloads so rendezvous can repeat.
    if (r_inc.error == SysError::kOk &&
        (cmd.call.op == SysOp::kSend || cmd.call.op == SysOp::kRecv)) {
      for (int ti = 0; ti < 3; ++ti) {
        if (inc_f.kernel.HasInbound(inc_f.thrds[ti])) {
          inc_f.kernel.TakeInbound(inc_f.thrds[ti]);
          full_f.kernel.TakeInbound(full_f.thrds[ti]);
        }
      }
    }

    if (i % 512 == 0 || i == kSteps - 1) {
      // The incrementally maintained Ψ is bit-for-bit the full abstraction,
      // and the two kernels never diverged.
      ASSERT_NE(inc.cached(), nullptr);
      ASSERT_TRUE(*inc.cached() == inc_f.kernel.Abstract()) << "step " << i;
      ASSERT_TRUE(inc_f.kernel.Abstract() == full_f.kernel.Abstract()) << "step " << i;
    }
  }

  EXPECT_EQ(inc.steps_checked(), full.steps_checked());
  EXPECT_EQ(inc.steps_checked(), static_cast<std::uint64_t>(kSteps));
  EXPECT_GT(inc.stats().delta_abstractions, 0u);
  EXPECT_GT(inc.stats().audit_passes, 0u);
  EXPECT_EQ(full.stats().delta_abstractions, 0u);
  // The whole point: deltas are small relative to machine size.
  EXPECT_LT(inc.stats().dirty_entries / (3 * inc.stats().steps), 64u);
}

// ---------------------------------------------------------------------------
// Audit failure injection: a forged dirty set IS caught
// ---------------------------------------------------------------------------

TEST(IncrementalRefinementTest, AuditCatchesForgedDirtySet) {
  Fixture f = Fixture::Boot();
  RefinementChecker::Options opt{.check_wf_every = 0, .audit_every = 1, .incremental = true};
  RefinementChecker checker(&f.kernel, opt);

  Syscall yield;
  yield.op = SysOp::kYield;
  checker.Step(f.thrds[0], yield);  // establish the cached Ψ; audit passes
  ASSERT_EQ(checker.stats().audit_passes, 1u);

  // Mutate abstract-relevant state behind the checker's back, then discard
  // the dirty log — modelling a subsystem that forgot a dirty mark.
  f.kernel.pm_mut().MutableThread(f.thrds[1]).ipc_buf.scalars[0] ^= 1;
  f.kernel.DrainDirty();

  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(checker.Step(f.thrds[0], yield), CheckViolation);
}

TEST(IncrementalRefinementTest, AuditPassesWhenDirtySetIsHonest) {
  Fixture f = Fixture::Boot();
  RefinementChecker::Options opt{.check_wf_every = 0, .audit_every = 1, .incremental = true};
  RefinementChecker checker(&f.kernel, opt);

  Syscall yield;
  yield.op = SysOp::kYield;
  checker.Step(f.thrds[0], yield);

  // Same external mutation, but the dirty log is left intact: the next
  // step's delta absorbs it and the audit agrees.
  f.kernel.pm_mut().MutableThread(f.thrds[1]).ipc_buf.scalars[0] ^= 1;
  checker.Step(f.thrds[0], yield);
  EXPECT_EQ(checker.stats().audit_passes, 2u);
}

// ---------------------------------------------------------------------------
// Regression: SysIommuUnmapDma error paths (unguarded iterator fix)
// ---------------------------------------------------------------------------

TEST(IommuUnmapDmaRegressionTest, ErrorPathsDoNotDereferenceEnd) {
  Fixture f = Fixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);

  // Nonexistent domain → kDenied (authority check fires first).
  Syscall unmap;
  unmap.op = SysOp::kIommuUnmapDma;
  unmap.iommu_domain = 424242;
  unmap.iova = 0;
  EXPECT_EQ(checker.Step(f.thrds[0], unmap).error, SysError::kDenied);

  // Real domain, unmapped iova → kInvalid, atomically (no state change).
  Syscall create;
  create.op = SysOp::kIommuCreateDomain;
  SyscallRet dom = checker.Step(f.thrds[0], create);
  ASSERT_TRUE(dom.ok());
  unmap.iommu_domain = dom.value;
  unmap.iova = 0x7000;
  EXPECT_EQ(checker.Step(f.thrds[0], unmap).error, SysError::kInvalid);

  // A foreign thread (different container: root) is denied.
  // f.thrds all share a container, so probe from a boot thread in root.
  auto root_proc = f.kernel.BootCreateProcess(f.kernel.root_container());
  ASSERT_TRUE(root_proc.ok());
  auto root_thrd = f.kernel.BootCreateThread(root_proc.value);
  ASSERT_TRUE(root_thrd.ok());
  EXPECT_EQ(checker.Step(root_thrd.value, unmap).error, SysError::kDenied);
}

}  // namespace
}  // namespace atmo
