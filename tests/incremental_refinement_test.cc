// Differential and failure-injection tests for the incremental refinement
// checker: a long randomized syscall trace is checked simultaneously by the
// incremental (delta-abstraction) checker and the full-rebuild checker, and
// the two must agree on every verdict, on every Ψ, and on the step count.
// Also: the audit must catch a forged (incomplete) dirty set, and the COW
// SpecMap/SpecSet rep-sharing semantics the delta path depends on hold.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/verif/refinement_checker.h"
#include "src/vstd/check.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_set.h"

namespace atmo {
namespace {

// ---------------------------------------------------------------------------
// COW rep-sharing semantics (the delta path's equality fast path)
// ---------------------------------------------------------------------------

TEST(CowSpecMapTest, CopySharesRepAndDetachesOnWrite) {
  SpecMap<int, int> a{{1, 10}, {2, 20}};
  SpecMap<int, int> b = a;
  EXPECT_TRUE(a.SharesRepWith(b));
  EXPECT_TRUE(a == b);

  b.set(3, 30);  // detach
  EXPECT_FALSE(a.SharesRepWith(b));
  EXPECT_FALSE(a.contains(3));
  EXPECT_EQ(b.at(3), 30);
  EXPECT_EQ(a.at(1), 10);
}

TEST(CowSpecMapTest, NoOpEraseKeepsRepShared) {
  SpecMap<int, int> a{{1, 10}};
  SpecMap<int, int> b = a;
  b.erase(99);  // not present: must not detach
  EXPECT_TRUE(a.SharesRepWith(b));
  b.erase(1);  // present: detaches
  EXPECT_FALSE(a.SharesRepWith(b));
  EXPECT_TRUE(a.contains(1));
  EXPECT_FALSE(b.contains(1));
}

TEST(CowSpecSetTest, NoOpMutationsKeepRepShared) {
  SpecSet<int> a;
  a.add(1);
  a.add(2);
  SpecSet<int> b = a;
  b.erase(99);  // absent: no detach
  EXPECT_TRUE(a.SharesRepWith(b));
  b.add(1);  // already present: no detach
  EXPECT_TRUE(a.SharesRepWith(b));
  b.add(3);  // real insert: detaches
  EXPECT_FALSE(a.SharesRepWith(b));
  EXPECT_FALSE(a.contains(3));
}

// ---------------------------------------------------------------------------
// Randomized differential sweep: incremental vs full-rebuild checking
// ---------------------------------------------------------------------------

struct Xorshift {
  std::uint64_t state;
  std::uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// Boots a kernel with two processes / three threads, an IPC endpoint bound
// on both sides, and one DMA-donor page mapped per thread.
struct Fixture {
  Kernel kernel;
  CtnrPtr ctnr = kNullPtr;
  ProcPtr procs[2] = {kNullPtr, kNullPtr};
  ThrdPtr thrds[3] = {kNullPtr, kNullPtr, kNullPtr};

  static constexpr VAddr kDmaVaBase = 0x40000000;  // never munmapped

  static Fixture Boot() {
    BootConfig config;
    config.frames = 2048;
    config.reserved_frames = 16;
    Fixture f{std::move(*Kernel::Boot(config))};
    auto c = f.kernel.BootCreateContainer(f.kernel.root_container(), 1200, ~0ull);
    f.ctnr = c.value;
    f.procs[0] = f.kernel.BootCreateProcess(f.ctnr).value;
    f.procs[1] = f.kernel.BootCreateProcess(f.ctnr).value;
    f.thrds[0] = f.kernel.BootCreateThread(f.procs[0]).value;
    f.thrds[1] = f.kernel.BootCreateThread(f.procs[0]).value;
    f.thrds[2] = f.kernel.BootCreateThread(f.procs[1]).value;
    return f;
  }

  explicit Fixture(Kernel k) : kernel(std::move(k)) {}

  bool Dispatchable(ThrdPtr t) const {
    ThreadState s = kernel.pm().GetThread(t).state;
    return s == ThreadState::kRunning || s == ThreadState::kRunnable;
  }
};

// Generates the i-th syscall of the deterministic trace. Mixes successful
// calls with error-returning ones (unaligned or overlapping maps, dangling
// domains, occupied descriptor slots, over-quota creations) and with IPC
// rendezvous that block and wake threads.
struct TraceGen {
  Xorshift rng{0x9e3779b97f4a7c15ull};
  std::vector<IommuDomainId> domains;
  std::vector<std::uint64_t> disposable;  // child containers to kill later

  struct Cmd {
    int thread_idx;
    Syscall call;
  };

  Cmd Gen(const Fixture& f) {
    for (;;) {
      std::uint64_t r = rng.Next();
      int ti = static_cast<int>(r % 3);
      if (!f.Dispatchable(f.thrds[ti])) {
        // A rendezvous is outstanding: complete it from a runnable peer so
        // the blocked thread wakes (keeps at most one thread blocked).
        ThreadState s = f.kernel.pm().GetThread(f.thrds[ti]).state;
        for (int peer = 0; peer < 3; ++peer) {
          if (peer == ti || !f.Dispatchable(f.thrds[peer])) {
            continue;
          }
          Syscall c;
          c.edpt_idx = 0;
          c.op = s == ThreadState::kBlockedRecv ? SysOp::kSend : SysOp::kRecv;
          if (c.op == SysOp::kSend) {
            c.payload.scalars[0] = r;
          }
          return Cmd{peer, c};
        }
        continue;  // should be unreachable: ≥2 threads stay runnable
      }

      Syscall c;
      switch (r % 16) {
        case 0:
        case 1:
          c.op = SysOp::kYield;
          return Cmd{ti, c};
        case 2:
        case 3: {  // mmap in a small per-thread window: overlaps → kInvalid
          c.op = SysOp::kMmap;
          c.va_range = VaRange{0x100000ull * (ti + 1) + ((r >> 8) % 48) * kPageSize4K, 1,
                               PageSize::k4K};
          c.map_perm = MapEntryPerm{.writable = (r >> 16) % 2 == 0, .user = true,
                                    .no_execute = true};
          return Cmd{ti, c};
        }
        case 4:
        case 5: {  // munmap over the same window: unmapped → kInvalid
          c.op = SysOp::kMunmap;
          c.va_range = VaRange{0x100000ull * (ti + 1) + ((r >> 8) % 48) * kPageSize4K, 1,
                               PageSize::k4K};
          return Cmd{ti, c};
        }
        case 6: {  // deliberately unaligned mmap → kInvalid
          c.op = SysOp::kMmap;
          c.va_range = VaRange{0x100000ull * (ti + 1) + 0x123, 1, PageSize::k4K};
          c.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
          return Cmd{ti, c};
        }
        case 7: {  // new endpoint in a random slot: occupied → error
          c.op = SysOp::kNewEndpoint;
          c.edpt_idx = static_cast<EdptIdx>(1 + (r >> 8) % (kMaxEdptDescriptors - 1));
          return Cmd{ti, c};
        }
        case 8: {  // unbind a random slot (never the IPC slot 0)
          c.op = SysOp::kUnbindEndpoint;
          c.edpt_idx = static_cast<EdptIdx>(1 + (r >> 8) % (kMaxEdptDescriptors - 1));
          return Cmd{ti, c};
        }
        case 9: {  // start a rendezvous: blocks until the generated
                   // complement (above) wakes it
          c.op = (r >> 8) % 2 == 0 ? SysOp::kRecv : SysOp::kSend;
          c.edpt_idx = 0;
          if (c.op == SysOp::kSend) {
            c.payload.scalars[0] = r >> 8;
          }
          return Cmd{ti, c};
        }
        case 10: {  // child container: tiny or over-quota
          c.op = SysOp::kNewContainer;
          c.quota = (r >> 8) % 4 == 0 ? 1u << 20 : 2 + (r >> 8) % 6;
          return Cmd{ti, c};
        }
        case 11: {  // kill a previously created child container
          if (disposable.empty()) {
            continue;
          }
          c.op = SysOp::kKillContainer;
          c.target = disposable[(r >> 8) % disposable.size()];
          return Cmd{ti, c};
        }
        case 12: {  // thread churn in the caller's process
          c.op = SysOp::kNewThread;
          return Cmd{ti, c};
        }
        case 13: {
          c.op = SysOp::kIommuCreateDomain;
          return Cmd{ti, c};
        }
        case 14: {  // attach a device to a real or bogus domain
          c.op = SysOp::kIommuAttachDevice;
          c.iommu_domain = PickDomain(r);
          c.device = static_cast<std::uint32_t>((r >> 16) % 6);
          return Cmd{ti, c};
        }
        default: {  // DMA map/unmap with mixed-validity domain and iova
          c.op = (r >> 4) % 2 == 0 ? SysOp::kIommuMapDma : SysOp::kIommuUnmapDma;
          c.iommu_domain = PickDomain(r);
          c.iova = ((r >> 16) % 8) * kPageSize4K;
          c.dma_va = Fixture::kDmaVaBase + static_cast<VAddr>(ti) * kPageSize4K;
          return Cmd{ti, c};
        }
      }
    }
  }

  IommuDomainId PickDomain(std::uint64_t r) {
    if (domains.empty() || (r >> 8) % 5 == 0) {
      return 9999;  // dangling → kDenied
    }
    return domains[(r >> 8) % domains.size()];
  }

  // Feed results back so later commands can reference created objects.
  void Observe(const Syscall& call, const SyscallRet& ret) {
    if (!ret.ok()) {
      return;
    }
    if (call.op == SysOp::kIommuCreateDomain) {
      domains.push_back(ret.value);
    } else if (call.op == SysOp::kNewContainer) {
      disposable.push_back(ret.value);
    } else if (call.op == SysOp::kKillContainer) {
      std::erase(disposable, call.target);
    }
  }
};

TEST(IncrementalRefinementTest, DifferentialSweepAgreesWithFullRebuild) {
  Fixture inc_f = Fixture::Boot();
  Fixture full_f = Fixture::Boot();

  RefinementChecker::Options inc_opt{.check_wf_every = 16, .audit_every = 64,
                                     .incremental = true};
  RefinementChecker::Options full_opt{.check_wf_every = 16, .audit_every = 0,
                                      .incremental = false};
  RefinementChecker inc(&inc_f.kernel, inc_opt);
  RefinementChecker full(&full_f.kernel, full_opt);

  // Bind the IPC endpoint on both sides via the boot path — an *external*
  // mutation the dirty logs must absorb before the first checked step.
  for (Fixture* f : {&inc_f, &full_f}) {
    Syscall ne;
    ne.op = SysOp::kNewEndpoint;
    ne.edpt_idx = 0;
    f->kernel.Dispatch(f->thrds[0]);
    SyscallRet e = f->kernel.Exec(f->thrds[0], ne);
    ASSERT_TRUE(e.ok());
    ASSERT_EQ(f->kernel.pm_mut().BindEndpoint(f->thrds[2], 0, e.value), ProcError::kOk);
    // One DMA-donor page per thread, outside the churned mmap window.
    for (int ti = 0; ti < 3; ++ti) {
      Syscall mm;
      mm.op = SysOp::kMmap;
      mm.va_range =
          VaRange{Fixture::kDmaVaBase + static_cast<VAddr>(ti) * kPageSize4K, 1, PageSize::k4K};
      mm.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
      f->kernel.Dispatch(f->thrds[ti]);
      ASSERT_TRUE(f->kernel.Exec(f->thrds[ti], mm).ok());
    }
  }

  constexpr int kSteps = 12000;
  TraceGen gen;
  for (int i = 0; i < kSteps; ++i) {
    TraceGen::Cmd cmd = gen.Gen(inc_f);
    ThrdPtr t_inc = inc_f.thrds[cmd.thread_idx];
    ThrdPtr t_full = full_f.thrds[cmd.thread_idx];

    SyscallRet r_inc = inc.Step(t_inc, cmd.call);
    SyscallRet r_full = full.Step(t_full, cmd.call);
    ASSERT_EQ(r_inc.error, r_full.error) << "step " << i << " op "
                                         << SysOpName(cmd.call.op);
    gen.Observe(cmd.call, r_inc);

    // Drain pending inbound payloads so rendezvous can repeat.
    if (r_inc.error == SysError::kOk &&
        (cmd.call.op == SysOp::kSend || cmd.call.op == SysOp::kRecv)) {
      for (int ti = 0; ti < 3; ++ti) {
        if (inc_f.kernel.HasInbound(inc_f.thrds[ti])) {
          inc_f.kernel.TakeInbound(inc_f.thrds[ti]);
          full_f.kernel.TakeInbound(full_f.thrds[ti]);
        }
      }
    }

    if (i % 512 == 0 || i == kSteps - 1) {
      // The incrementally maintained Ψ is bit-for-bit the full abstraction,
      // and the two kernels never diverged.
      ASSERT_NE(inc.cached(), nullptr);
      ASSERT_TRUE(*inc.cached() == inc_f.kernel.Abstract()) << "step " << i;
      ASSERT_TRUE(inc_f.kernel.Abstract() == full_f.kernel.Abstract()) << "step " << i;
    }
  }

  EXPECT_EQ(inc.steps_checked(), full.steps_checked());
  EXPECT_EQ(inc.steps_checked(), static_cast<std::uint64_t>(kSteps));
  EXPECT_GT(inc.stats().delta_abstractions, 0u);
  EXPECT_GT(inc.stats().audit_passes, 0u);
  EXPECT_EQ(full.stats().delta_abstractions, 0u);
  // The whole point: deltas are small relative to machine size.
  EXPECT_LT(inc.stats().dirty_entries / (3 * inc.stats().steps), 64u);
}

// ---------------------------------------------------------------------------
// Audit failure injection: a forged dirty set IS caught
// ---------------------------------------------------------------------------

TEST(IncrementalRefinementTest, AuditCatchesForgedDirtySet) {
  Fixture f = Fixture::Boot();
  RefinementChecker::Options opt{.check_wf_every = 0, .audit_every = 1, .incremental = true};
  RefinementChecker checker(&f.kernel, opt);

  Syscall yield;
  yield.op = SysOp::kYield;
  checker.Step(f.thrds[0], yield);  // establish the cached Ψ; audit passes
  ASSERT_EQ(checker.stats().audit_passes, 1u);

  // Mutate abstract-relevant state behind the checker's back, then discard
  // the dirty log — modelling a subsystem that forgot a dirty mark.
  f.kernel.pm_mut().MutableThread(f.thrds[1]).ipc_buf.scalars[0] ^= 1;
  f.kernel.DrainDirty();

  ScopedThrowOnCheckFailure guard;
  EXPECT_THROW(checker.Step(f.thrds[0], yield), CheckViolation);
}

TEST(IncrementalRefinementTest, AuditPassesWhenDirtySetIsHonest) {
  Fixture f = Fixture::Boot();
  RefinementChecker::Options opt{.check_wf_every = 0, .audit_every = 1, .incremental = true};
  RefinementChecker checker(&f.kernel, opt);

  Syscall yield;
  yield.op = SysOp::kYield;
  checker.Step(f.thrds[0], yield);

  // Same external mutation, but the dirty log is left intact: the next
  // step's delta absorbs it and the audit agrees.
  f.kernel.pm_mut().MutableThread(f.thrds[1]).ipc_buf.scalars[0] ^= 1;
  checker.Step(f.thrds[0], yield);
  EXPECT_EQ(checker.stats().audit_passes, 2u);
}

// ---------------------------------------------------------------------------
// Regression: SysIommuUnmapDma error paths (unguarded iterator fix)
// ---------------------------------------------------------------------------

TEST(IommuUnmapDmaRegressionTest, ErrorPathsDoNotDereferenceEnd) {
  Fixture f = Fixture::Boot();
  RefinementChecker checker(&f.kernel, /*check_wf_every=*/1);

  // Nonexistent domain → kDenied (authority check fires first).
  Syscall unmap;
  unmap.op = SysOp::kIommuUnmapDma;
  unmap.iommu_domain = 424242;
  unmap.iova = 0;
  EXPECT_EQ(checker.Step(f.thrds[0], unmap).error, SysError::kDenied);

  // Real domain, unmapped iova → kInvalid, atomically (no state change).
  Syscall create;
  create.op = SysOp::kIommuCreateDomain;
  SyscallRet dom = checker.Step(f.thrds[0], create);
  ASSERT_TRUE(dom.ok());
  unmap.iommu_domain = dom.value;
  unmap.iova = 0x7000;
  EXPECT_EQ(checker.Step(f.thrds[0], unmap).error, SysError::kInvalid);

  // A foreign thread (different container: root) is denied.
  // f.thrds all share a container, so probe from a boot thread in root.
  auto root_proc = f.kernel.BootCreateProcess(f.kernel.root_container());
  ASSERT_TRUE(root_proc.ok());
  auto root_thrd = f.kernel.BootCreateThread(root_proc.value);
  ASSERT_TRUE(root_thrd.ok());
  EXPECT_EQ(checker.Step(root_thrd.value, unmap).error, SysError::kDenied);
}

}  // namespace
}  // namespace atmo
