// Unit and property tests for the page allocator: free lists, state machine,
// superpage merge/split, map counting, ghost views and Wf().

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/pmem/object_alloc.h"
#include "src/pmem/page_allocator.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr std::uint64_t kFramesPer2M = kPageSize2M / kPageSize4K;

// A machine with 4 MiB of managed memory (2 mergeable 2M units) + 1 reserved
// frame region of one full 2M unit so merge alignment is exercised.
class PageAllocatorTest : public ::testing::Test {
 protected:
  PageAllocatorTest() : alloc_(3 * kFramesPer2M, kFramesPer2M) {}

  PageAllocator alloc_;
};

TEST_F(PageAllocatorTest, BootStateIsWellFormed) {
  EXPECT_TRUE(alloc_.Wf());
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), 2 * kFramesPer2M);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k2M), 0u);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k1G), 0u);
  EXPECT_TRUE(alloc_.AllocatedPages().empty());
  EXPECT_TRUE(alloc_.InUseFrames().empty());
}

TEST_F(PageAllocatorTest, AllocReturnsFreshDistinctPages) {
  auto a = alloc_.AllocPage4K(kNullPtr);
  auto b = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->ptr, b->ptr);
  EXPECT_EQ(alloc_.StateOf(a->ptr), PageState::kAllocated);
  EXPECT_EQ(a->perm.base(), a->ptr);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), 2 * kFramesPer2M - 2);
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, AllocatedPagesGhostViewTracksAllocations) {
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  // Listing 4 postconditions: allocated set grows by exactly this page and
  // the free set shrinks by exactly this page.
  EXPECT_TRUE(alloc_.AllocatedPages().contains(a->ptr));
  EXPECT_FALSE(alloc_.FreePages(PageSize::k4K).contains(a->ptr));
  alloc_.FreePage(a->ptr, std::move(a->perm));
  EXPECT_FALSE(alloc_.AllocatedPages().contains(a->ptr));
  EXPECT_TRUE(alloc_.FreePages(PageSize::k4K).contains(a->ptr));
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, FreeWithWrongPermIsViolation) {
  ScopedThrowOnCheckFailure guard;
  auto a = alloc_.AllocPage4K(kNullPtr);
  auto b = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a && b);
  EXPECT_THROW(alloc_.FreePage(a->ptr, std::move(b->perm)), CheckViolation);
}

TEST_F(PageAllocatorTest, DoubleFreeIsViolation) {
  ScopedThrowOnCheckFailure guard;
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  FramePerm clone = a->perm.CloneForVerification();  // forged duplicate token
  alloc_.FreePage(a->ptr, std::move(a->perm));
  EXPECT_THROW(alloc_.FreePage(a->ptr, std::move(clone)), CheckViolation);
}

TEST_F(PageAllocatorTest, ExhaustionReturnsNulloptNotFailure) {
  std::vector<PageAlloc> pages;
  while (auto page = alloc_.AllocPage4K(kNullPtr)) {
    pages.push_back(std::move(*page));
  }
  EXPECT_EQ(pages.size(), 2 * kFramesPer2M);
  EXPECT_FALSE(alloc_.AllocPage4K(kNullPtr).has_value());
  EXPECT_TRUE(alloc_.Wf());
  // Free everything; memory is fully reusable (leak freedom at the
  // allocator level).
  for (PageAlloc& page : pages) {
    alloc_.FreePage(page.ptr, std::move(page.perm));
  }
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), 2 * kFramesPer2M);
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, OwnerAttribution) {
  constexpr CtnrPtr kOwnerA = 0x111000;
  auto a = alloc_.AllocPage4K(kOwnerA);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(alloc_.OwnerOf(a->ptr), kOwnerA);
  alloc_.SetOwner(a->ptr, 0x222000);
  EXPECT_EQ(alloc_.OwnerOf(a->ptr), 0x222000u);
  alloc_.FreePage(a->ptr, std::move(a->perm));
  EXPECT_EQ(alloc_.OwnerOf(a->ptr), kNullPtr) << "free clears attribution";
}

// --- Mapped-state transitions ---

TEST_F(PageAllocatorTest, MapUnmapLifecycle) {
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  alloc_.MarkMapped(a->ptr);
  EXPECT_EQ(alloc_.StateOf(a->ptr), PageState::kMapped);
  EXPECT_EQ(alloc_.MapCount(a->ptr), 1u);
  EXPECT_TRUE(alloc_.MappedPages().contains(a->ptr));
  EXPECT_TRUE(alloc_.Wf());

  EXPECT_EQ(alloc_.IncMapCount(a->ptr), 2u) << "shared mapping via IPC page grant";
  EXPECT_EQ(alloc_.DecMapCount(a->ptr), 1u);
  EXPECT_EQ(alloc_.DecMapCount(a->ptr), 0u);
  alloc_.ReclaimUnmapped(a->ptr, std::move(a->perm));
  EXPECT_EQ(alloc_.StateOf(a->ptr), PageState::kFree);
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, ReclaimWhileStillMappedIsViolation) {
  ScopedThrowOnCheckFailure guard;
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  alloc_.MarkMapped(a->ptr);
  EXPECT_THROW(alloc_.ReclaimUnmapped(a->ptr, std::move(a->perm)), CheckViolation);
}

TEST_F(PageAllocatorTest, MapCountUnderflowIsViolation) {
  ScopedThrowOnCheckFailure guard;
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  alloc_.MarkMapped(a->ptr);
  alloc_.DecMapCount(a->ptr);
  EXPECT_THROW(alloc_.DecMapCount(a->ptr), CheckViolation);
}

TEST_F(PageAllocatorTest, MarkMappedTwiceIsViolation) {
  ScopedThrowOnCheckFailure guard;
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  alloc_.MarkMapped(a->ptr);
  EXPECT_THROW(alloc_.MarkMapped(a->ptr), CheckViolation);
}

// --- Superpage merge / split ---

TEST_F(PageAllocatorTest, Merge2MConsumesConstituents) {
  PagePtr base = kFramesPer2M * kPageSize4K;  // first managed 2M unit
  ASSERT_TRUE(alloc_.TryMerge2M(base));
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), kFramesPer2M);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k2M), 1u);
  EXPECT_EQ(alloc_.StateOf(base), PageState::kFree);
  EXPECT_EQ(alloc_.SizeClassOf(base), PageSize::k2M);
  EXPECT_EQ(alloc_.StateOf(base + kPageSize4K), PageState::kMerged);
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, Merge2MFailsIfAnyConstituentBusy) {
  // Allocate one page inside the first unit; merge must fail, state intact.
  auto a = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(a.has_value());
  PagePtr base = kFramesPer2M * kPageSize4K;
  ASSERT_EQ(a->ptr, base) << "deterministic allocator pops lowest address";
  EXPECT_FALSE(alloc_.TryMerge2M(base));
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), 2 * kFramesPer2M - 1);
  EXPECT_TRUE(alloc_.Wf());
  alloc_.FreePage(a->ptr, std::move(a->perm));
  EXPECT_TRUE(alloc_.TryMerge2M(base));
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, Merge2MRejectsMisalignedBase) {
  EXPECT_FALSE(alloc_.TryMerge2M(kFramesPer2M * kPageSize4K + kPageSize4K));
}

TEST_F(PageAllocatorTest, Alloc2MAutoMerges) {
  auto big = alloc_.AllocPage2M(kNullPtr);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(alloc_.StateOf(big->ptr), PageState::kAllocated);
  EXPECT_EQ(alloc_.SizeClassOf(big->ptr), PageSize::k2M);
  EXPECT_EQ(big->perm.bytes(), kPageSize2M);
  EXPECT_TRUE(alloc_.Wf());
  alloc_.FreePage(big->ptr, std::move(big->perm));
  EXPECT_EQ(alloc_.FreeCount(PageSize::k2M), 1u);
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, SplitRestores4KPages) {
  PagePtr base = kFramesPer2M * kPageSize4K;
  ASSERT_TRUE(alloc_.TryMerge2M(base));
  alloc_.Split2M(base);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), 2 * kFramesPer2M);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k2M), 0u);
  EXPECT_EQ(alloc_.StateOf(base + kPageSize4K), PageState::kFree);
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageAllocatorTest, SplitNonFreePageIsViolation) {
  ScopedThrowOnCheckFailure guard;
  auto big = alloc_.AllocPage2M(kNullPtr);
  ASSERT_TRUE(big.has_value());
  EXPECT_THROW(alloc_.Split2M(big->ptr), CheckViolation);
  alloc_.FreePage(big->ptr, std::move(big->perm));
}

TEST_F(PageAllocatorTest, Superpage2MMapLifecycle) {
  auto big = alloc_.AllocPage2M(kNullPtr);
  ASSERT_TRUE(big.has_value());
  alloc_.MarkMapped(big->ptr);
  EXPECT_EQ(alloc_.StateOf(big->ptr), PageState::kMapped);
  EXPECT_TRUE(alloc_.Wf());
  alloc_.DecMapCount(big->ptr);
  alloc_.ReclaimUnmapped(big->ptr, std::move(big->perm));
  EXPECT_EQ(alloc_.FreeCount(PageSize::k2M), 1u);
  EXPECT_TRUE(alloc_.Wf());
}

// --- 1G path (uses a bigger simulated machine) ---

TEST(PageAllocator1GTest, Merge1GAndAlloc) {
  constexpr std::uint64_t kFramesPer1G = kPageSize1G / kPageSize4K;
  PageAllocator alloc(2 * kFramesPer1G, kFramesPer1G);
  auto big = alloc.AllocPage1G(kNullPtr);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->ptr, kPageSize1G);
  EXPECT_EQ(alloc.SizeClassOf(big->ptr), PageSize::k1G);
  EXPECT_EQ(alloc.FreeCount(PageSize::k4K), 0u);
  alloc.FreePage(big->ptr, std::move(big->perm));
  EXPECT_EQ(alloc.FreeCount(PageSize::k1G), 1u);
  alloc.Split1G(big->ptr);
  EXPECT_EQ(alloc.FreeCount(PageSize::k2M), 512u);
  alloc.Split2M(big->ptr);
  EXPECT_EQ(alloc.FreeCount(PageSize::k4K), 512u);
  EXPECT_TRUE(alloc.Wf());
}

// --- Object placement ---

TEST_F(PageAllocatorTest, PlaceAndUnplaceObject) {
  struct Widget {
    int value = 0;
  };
  auto page = alloc_.AllocPage4K(kNullPtr);
  ASSERT_TRUE(page.has_value());
  PlacedObject<Widget> placed = PlaceObject(std::move(page->perm), Widget{.value = 7});
  EXPECT_EQ(placed.ptr.addr(), page->ptr);
  EXPECT_EQ(placed.ptr.Borrow(placed.perm).value, 7);
  placed.ptr.BorrowMut(placed.perm).value = 8;
  EXPECT_EQ(placed.perm.value().value, 8);
  FramePerm frame = UnplaceObject(std::move(placed.perm));
  alloc_.FreePage(page->ptr, std::move(frame));
  EXPECT_EQ(alloc_.StateOf(page->ptr), PageState::kFree);
}

TEST_F(PageAllocatorTest, PlaceObjectRequires4KFrame) {
  ScopedThrowOnCheckFailure guard;
  auto big = alloc_.AllocPage2M(kNullPtr);
  ASSERT_TRUE(big.has_value());
  EXPECT_THROW(PlaceObject(std::move(big->perm), 0), CheckViolation);
}

// --- Randomized property sweep: alloc/free/map/merge interleavings keep the
// allocator well-formed and conservation of frames holds. ---

class PageAllocatorStressTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PageAllocatorStressTest, RandomOpsPreserveWfAndConservation) {
  std::uint64_t state = GetParam() * 0x9e3779b97f4a7c15ull + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  constexpr std::uint64_t kTotal = 4 * kFramesPer2M;
  PageAllocator alloc(kTotal, kFramesPer2M);
  const std::uint64_t managed = kTotal - kFramesPer2M;

  std::vector<PageAlloc> allocated;
  std::vector<PageAlloc> mapped;

  for (int step = 0; step < 2000; ++step) {
    switch (next() % 6) {
      case 0:
      case 1: {  // alloc 4K
        if (auto page = alloc.AllocPage4K(0x1000)) {
          allocated.push_back(std::move(*page));
        }
        break;
      }
      case 2: {  // free an allocated page
        if (!allocated.empty()) {
          std::size_t i = next() % allocated.size();
          alloc.FreePage(allocated[i].ptr, std::move(allocated[i].perm));
          allocated.erase(allocated.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
      case 3: {  // map an allocated page
        if (!allocated.empty()) {
          std::size_t i = next() % allocated.size();
          alloc.MarkMapped(allocated[i].ptr);
          mapped.push_back(std::move(allocated[i]));
          allocated.erase(allocated.begin() + static_cast<std::ptrdiff_t>(i));
        }
        break;
      }
      case 4: {  // unmap a mapped page
        if (!mapped.empty()) {
          std::size_t i = next() % mapped.size();
          if (alloc.DecMapCount(mapped[i].ptr) == 0) {
            alloc.ReclaimUnmapped(mapped[i].ptr, std::move(mapped[i].perm));
            mapped.erase(mapped.begin() + static_cast<std::ptrdiff_t>(i));
          }
        }
        break;
      }
      case 5: {  // merge + split churn
        if (auto merged = alloc.Merge2MAnywhere()) {
          alloc.Split2M(*merged);
        }
        break;
      }
    }
    if (step % 97 == 0) {
      ASSERT_TRUE(alloc.Wf()) << "step " << step;
    }
    // Conservation: free + in-use == managed frames.
    std::uint64_t free_frames = alloc.FreeCount(PageSize::k4K) +
                                alloc.FreeCount(PageSize::k2M) * 512 +
                                alloc.FreeCount(PageSize::k1G) * 512 * 512;
    ASSERT_EQ(free_frames + alloc.InUseFrames().size(), managed) << "step " << step;
  }
  ASSERT_TRUE(alloc.Wf());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageAllocatorStressTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 42u));

}  // namespace
}  // namespace atmo
