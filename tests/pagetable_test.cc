// Page-table tests: map/unmap across page sizes, structural invariants,
// flat/recursive refinement checkers, MMU cross-checks, and the §4.2
// write-by-write consistency property.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "src/hw/mmu.h"
#include "src/pagetable/page_table.h"
#include "src/pagetable/refinement.h"
#include "src/pmem/page_allocator.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};
constexpr MapEntryPerm kRo{.writable = false, .user = true, .no_execute = false};
constexpr MapEntryPerm kRx{.writable = false, .user = true, .no_execute = false};

class PageTableTest : public ::testing::Test {
 protected:
  // 64 MiB machine, 1 reserved frame.
  PageTableTest() : mem_(16384), alloc_(16384, 1), mmu_(&mem_) {
    auto pt = PageTable::New(&mem_, &alloc_, kNullPtr);
    pt_.emplace(std::move(*pt));
  }

  void ExpectAllChecksPass() {
    EXPECT_TRUE(pt_->StructureWf(mem_));
    RefinementReport flat = FlatRefinementCheck(*pt_, mem_);
    EXPECT_TRUE(flat.ok) << flat.detail;
    RefinementReport rec = RecursiveRefinementCheck(*pt_, mem_);
    EXPECT_TRUE(rec.ok) << rec.detail;
    RefinementReport mmu = MmuCrossCheck(*pt_, mmu_);
    EXPECT_TRUE(mmu.ok) << mmu.detail;
  }

  void TearDown() override {
    if (pt_.has_value() && pt_->cr3() != kNullPtr) {
      // Unmap everything so Destroy's leak check passes.
      std::vector<VAddr> vas;
      for (const auto& [va, entry] : pt_->AddressSpace()) {
        vas.push_back(va);
      }
      for (VAddr va : vas) {
        pt_->Unmap(va);
      }
      pt_->Destroy(&alloc_);
    }
  }

  PhysMem mem_;
  PageAllocator alloc_;
  Mmu mmu_;
  std::optional<PageTable> pt_;
};

TEST_F(PageTableTest, EmptyTableIsWellFormedAndRefines) {
  EXPECT_EQ(pt_->MappingCount(), 0u);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, MapThenMmuResolves) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  auto walk = mmu_.Walk(pt_->cr3(), 0x400123);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->paddr, 0x1000123u);
  EXPECT_EQ(walk->size, PageSize::k4K);
  EXPECT_TRUE(walk->perm.writable);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, ReadOnlyRightsReachTheMmu) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRo), MapError::kOk);
  EXPECT_FALSE(mmu_.Permits(pt_->cr3(), 0x400000, Mmu::Access::kWrite, true));
  EXPECT_TRUE(mmu_.Permits(pt_->cr3(), 0x400000, Mmu::Access::kRead, true));
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, UnmapRemovesTranslation) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  auto removed = pt_->Unmap(0x400000);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->addr, 0x1000000u);
  EXPECT_FALSE(mmu_.Walk(pt_->cr3(), 0x400000).has_value());
  EXPECT_FALSE(pt_->Resolve(0x400000).has_value());
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, UnmapAbsentReturnsNullopt) {
  EXPECT_FALSE(pt_->Unmap(0x400000).has_value());
}

TEST_F(PageTableTest, DoubleMapIsAlreadyMapped) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  EXPECT_EQ(pt_->Map(&alloc_, 0x400000, 0x2000000, PageSize::k4K, kRw),
            MapError::kAlreadyMapped);
  // Original mapping intact.
  EXPECT_EQ(pt_->Resolve(0x400000)->addr, 0x1000000u);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, MisalignedMapRejected) {
  EXPECT_EQ(pt_->Map(&alloc_, 0x400100, 0x1000000, PageSize::k4K, kRw), MapError::kMisaligned);
  EXPECT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000100, PageSize::k4K, kRw), MapError::kMisaligned);
  EXPECT_EQ(pt_->Map(&alloc_, kPageSize4K, 0, PageSize::k2M, kRw), MapError::kMisaligned);
  EXPECT_EQ(pt_->MappingCount(), 0u);
}

TEST_F(PageTableTest, Map2MSuperpage) {
  ASSERT_EQ(pt_->Map(&alloc_, kPageSize2M, 2 * kPageSize2M, PageSize::k2M, kRw), MapError::kOk);
  auto walk = mmu_.Walk(pt_->cr3(), kPageSize2M + 0x12345);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size, PageSize::k2M);
  EXPECT_EQ(walk->paddr, 2 * kPageSize2M + 0x12345);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, Map1GSuperpage) {
  ASSERT_EQ(pt_->Map(&alloc_, kPageSize1G, 0, PageSize::k1G, kRw), MapError::kOk);
  auto walk = mmu_.Walk(pt_->cr3(), kPageSize1G + 0xabcde);
  ASSERT_TRUE(walk.has_value());
  EXPECT_EQ(walk->size, PageSize::k1G);
  EXPECT_EQ(walk->paddr, 0xabcdeu);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, SuperpageConflictsWith4KInRange) {
  ASSERT_EQ(pt_->Map(&alloc_, kPageSize2M, 2 * kPageSize2M, PageSize::k2M, kRw), MapError::kOk);
  // A 4K map inside the superpage range hits the PS entry at PD level.
  EXPECT_EQ(pt_->Map(&alloc_, kPageSize2M + kPageSize4K, 0x1000000, PageSize::k4K, kRw),
            MapError::kConflict);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, FourKTableConflictsWithSuperpageMap) {
  // Map a 4K page; then a 2M map over the same region finds a child table.
  ASSERT_EQ(pt_->Map(&alloc_, kPageSize2M + kPageSize4K, 0x1000000, PageSize::k4K, kRw),
            MapError::kOk);
  EXPECT_EQ(pt_->Map(&alloc_, kPageSize2M, 2 * kPageSize2M, PageSize::k2M, kRw),
            MapError::kConflict);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, MixedSizesCoexistInDisjointRanges) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000ull - kPageSize4K, 0x1000000, PageSize::k4K, kRw),
            MapError::kOk);
  ASSERT_EQ(pt_->Map(&alloc_, kPageSize2M * 3, 2 * kPageSize2M, PageSize::k2M, kRw),
            MapError::kOk);
  ASSERT_EQ(pt_->Map(&alloc_, kPageSize1G * 2, kPageSize1G, PageSize::k1G, kRo), MapError::kOk);
  EXPECT_EQ(pt_->mapping_4k().size(), 1u);
  EXPECT_EQ(pt_->mapping_2m().size(), 1u);
  EXPECT_EQ(pt_->mapping_1g().size(), 1u);
  EXPECT_EQ(pt_->AddressSpace().size(), 3u);
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, OtherMappingsUnchangedByMapAndUnmap) {
  // The paper's hardest page-table lemma: a map/unmap changes exactly one
  // abstract entry and leaves all others untouched.
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  ASSERT_EQ(pt_->Map(&alloc_, 0x600000, 0x1200000, PageSize::k4K, kRo), MapError::kOk);
  SpecMap<VAddr, MapEntry> before = pt_->AddressSpace();

  ASSERT_EQ(pt_->Map(&alloc_, 0x800000, 0x1400000, PageSize::k4K, kRx), MapError::kOk);
  SpecMap<VAddr, MapEntry> after = pt_->AddressSpace();
  using VaMap = SpecMap<VAddr, MapEntry>;
  EXPECT_TRUE(VaMap::AgreeExceptAt(before, after, 0x800000));
  EXPECT_TRUE(after.contains(0x800000));

  ASSERT_TRUE(pt_->Unmap(0x400000).has_value());
  SpecMap<VAddr, MapEntry> after2 = pt_->AddressSpace();
  EXPECT_TRUE(VaMap::AgreeExceptAt(after, after2, 0x400000));
  EXPECT_FALSE(after2.contains(0x400000));
  ExpectAllChecksPass();
}

TEST_F(PageTableTest, PageClosureTracksNodes) {
  SpecSet<PagePtr> closure0 = pt_->PageClosure();
  EXPECT_EQ(closure0.size(), 1u) << "root only";
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  EXPECT_EQ(pt_->PageClosure().size(), 4u) << "root + PDPT + PD + PT";
  ASSERT_EQ(pt_->Map(&alloc_, 0x401000, 0x1001000, PageSize::k4K, kRw), MapError::kOk);
  EXPECT_EQ(pt_->PageClosure().size(), 4u) << "same chain reused";
  // Closure pages are exactly allocator-allocated pages owned by the table.
  EXPECT_TRUE(pt_->PageClosure().ForAll(
      [&](PagePtr p) { return alloc_.StateOf(p) == PageState::kAllocated; }));
}

TEST_F(PageTableTest, DestroyReturnsAllNodes) {
  std::uint64_t free_before = alloc_.FreeCount(PageSize::k4K);
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  ASSERT_TRUE(pt_->Unmap(0x400000).has_value());
  pt_->Destroy(&alloc_);
  EXPECT_EQ(alloc_.FreeCount(PageSize::k4K), free_before + 1) << "root returned too";
  EXPECT_TRUE(alloc_.Wf());
}

TEST_F(PageTableTest, DestroyWithLiveMappingsIsLeakViolation) {
  ScopedThrowOnCheckFailure guard;
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  EXPECT_THROW(pt_->Destroy(&alloc_), CheckViolation);
  ASSERT_TRUE(pt_->Unmap(0x400000).has_value());
  pt_->Destroy(&alloc_);
}

TEST_F(PageTableTest, OomDuringMapReportsOutOfMemory) {
  // Drain the allocator, then try to map somewhere needing fresh nodes.
  std::vector<PageAlloc> hog;
  while (auto page = alloc_.AllocPage4K(kNullPtr)) {
    hog.push_back(std::move(*page));
  }
  EXPECT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw),
            MapError::kOutOfMemory);
  EXPECT_EQ(pt_->MappingCount(), 0u);
  for (PageAlloc& page : hog) {
    alloc_.FreePage(page.ptr, std::move(page.perm));
  }
  ExpectAllChecksPass();
}

// §4.2 consistency of page-table updates: observe every 8-byte store and
// check that the hardware-visible address space either stays identical
// (non-leaf write) or changes by exactly one entry (leaf write).
TEST_F(PageTableTest, WriteByWriteConsistency) {
  auto hardware_space = [&] {
    // Derive the mapping purely from hardware bits by probing the union of
    // "before" and "after" candidate addresses.
    SpecMap<VAddr, PAddr> out;
    for (VAddr va : {0x400000ull, 0x401000ull, 0x600000ull}) {
      if (auto walk = mmu_.Walk(pt_->cr3(), va)) {
        out.set(va, walk->page_base);
      }
    }
    return out;
  };

  std::vector<SpecMap<VAddr, PAddr>> snapshots;
  snapshots.push_back(hardware_space());
  pt_->SetWriteObserver([&] { snapshots.push_back(hardware_space()); });

  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  ASSERT_EQ(pt_->Map(&alloc_, 0x401000, 0x1001000, PageSize::k4K, kRw), MapError::kOk);
  ASSERT_TRUE(pt_->Unmap(0x400000).has_value());
  pt_->SetWriteObserver(nullptr);

  int changes = 0;
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    const auto& prev = snapshots[i - 1];
    const auto& cur = snapshots[i];
    if (prev == cur) {
      continue;  // intermediate-node write: address space unchanged
    }
    ++changes;
    // A leaf write changes exactly one entry.
    int diff = 0;
    for (VAddr va : {0x400000ull, 0x401000ull, 0x600000ull}) {
      bool in_prev = prev.contains(va);
      bool in_cur = cur.contains(va);
      if (in_prev != in_cur || (in_prev && in_cur && prev.at(va) != cur.at(va))) {
        ++diff;
      }
    }
    EXPECT_EQ(diff, 1) << "snapshot " << i << " changed more than one entry";
  }
  EXPECT_EQ(changes, 3) << "two maps + one unmap = three leaf writes";
}

// Refinement checkers must detect deliberately corrupted state.
TEST_F(PageTableTest, CheckersDetectConcreteBitFlip) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  // Flip the leaf's target address behind the kernel's back (hardware
  // write, bypassing permissions — simulating a bug).
  auto walk = mmu_.Walk(pt_->cr3(), 0x400000);
  ASSERT_TRUE(walk.has_value());
  // Find the L1 node: walk manually three levels down.
  PAddr node = pt_->cr3();
  for (int level = 4; level > 1; --level) {
    node = mem_.HwReadU64(node + VaIndex(0x400000, level) * 8) & kPteAddrMask;
  }
  std::uint64_t leaf = mem_.HwReadU64(node + VaIndex(0x400000, 1) * 8);
  mem_.HwWriteU64(node + VaIndex(0x400000, 1) * 8,
                  (leaf & ~kPteAddrMask) | 0x2000000);

  EXPECT_FALSE(FlatRefinementCheck(*pt_, mem_).ok);
  EXPECT_FALSE(RecursiveRefinementCheck(*pt_, mem_).ok);
  EXPECT_FALSE(MmuCrossCheck(*pt_, mmu_).ok);

  // Restore so TearDown can unmap cleanly.
  mem_.HwWriteU64(node + VaIndex(0x400000, 1) * 8, leaf);
}

TEST_F(PageTableTest, CheckersDetectMissingConcreteLeaf) {
  ASSERT_EQ(pt_->Map(&alloc_, 0x400000, 0x1000000, PageSize::k4K, kRw), MapError::kOk);
  PAddr node = pt_->cr3();
  for (int level = 4; level > 1; --level) {
    node = mem_.HwReadU64(node + VaIndex(0x400000, level) * 8) & kPteAddrMask;
  }
  std::uint64_t leaf = mem_.HwReadU64(node + VaIndex(0x400000, 1) * 8);
  mem_.HwWriteU64(node + VaIndex(0x400000, 1) * 8, 0);
  EXPECT_FALSE(FlatRefinementCheck(*pt_, mem_).ok);
  EXPECT_FALSE(RecursiveRefinementCheck(*pt_, mem_).ok);
  mem_.HwWriteU64(node + VaIndex(0x400000, 1) * 8, leaf);
}

// Parameterized sweep: random map/unmap sequences at mixed sizes keep all
// four checkers green (flat, recursive, structural, MMU).
class PageTableSweepTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PageTableSweepTest, RandomOpsAllCheckersGreen) {
  std::uint64_t state = GetParam() * 0x9e3779b97f4a7c15ull + 0x243f6a8885a308d3ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  PhysMem mem(16384);
  PageAllocator alloc(16384, 1);
  Mmu mmu(&mem);
  auto pt = PageTable::New(&mem, &alloc, kNullPtr);
  ASSERT_TRUE(pt.has_value());

  std::vector<VAddr> mapped;
  for (int step = 0; step < 120; ++step) {
    if (mapped.size() < 24 && next() % 3 != 0) {
      PageSize size = next() % 8 == 0 ? PageSize::k2M : PageSize::k4K;
      std::uint64_t bytes = PageBytes(size);
      VAddr va = (next() % 64) * kPageSize2M + (size == PageSize::k4K
                                                     ? (next() % 512) * kPageSize4K
                                                     : 0);
      va = va / bytes * bytes;
      PAddr pa = ((next() % 1024) * kPageSize4K) / bytes * bytes;
      MapEntryPerm perm{.writable = next() % 2 == 0, .user = true,
                        .no_execute = next() % 4 == 0};
      if (pt->Map(&alloc, va, pa, size, perm) == MapError::kOk) {
        mapped.push_back(va);
      }
    } else if (!mapped.empty()) {
      std::size_t pick = next() % mapped.size();
      ASSERT_TRUE(pt->Unmap(mapped[pick]).has_value());
      mapped.erase(mapped.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    if (step % 10 == 0) {
      ASSERT_TRUE(pt->StructureWf(mem)) << "step " << step;
      RefinementReport flat = FlatRefinementCheck(*pt, mem);
      ASSERT_TRUE(flat.ok) << "step " << step << ": " << flat.detail;
      RefinementReport rec = RecursiveRefinementCheck(*pt, mem);
      ASSERT_TRUE(rec.ok) << "step " << step << ": " << rec.detail;
      RefinementReport cross = MmuCrossCheck(*pt, mmu);
      ASSERT_TRUE(cross.ok) << "step " << step << ": " << cross.detail;
    }
  }
  for (VAddr va : mapped) {
    ASSERT_TRUE(pt->Unmap(va).has_value());
  }
  pt->Destroy(&alloc);
  EXPECT_TRUE(alloc.Wf());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableSweepTest,
                         ::testing::Values(1u, 7u, 23u, 55u, 101u, 202u));

}  // namespace
}  // namespace atmo
