// Differential test for the size-segregated page allocator (DESIGN.md §10).
//
// The indexed allocator must be observationally identical to the scan-based
// semantics it replaced: the coalescing min-heaps pick the lowest provably
// full group/region, which is exactly what a low-to-high scan of the page
// array finds. To check this, two allocator instances are driven through a
// long randomized schedule of alloc/free/split operations at all three size
// classes, through exhaustion and heavy fragmentation:
//
//   dut — the production allocation paths (AllocPage4K/2M/1G), which use the
//         coalescing index and never scan meta_.
//   ref — a reference model that makes every coalescing decision by scanning
//         the page array low-to-high (Merge2MAnywhere for 2M; a full-region
//         pre-check scan for 1G, mutating only when the whole region is
//         provably free so failure paths stay atomic).
//
// Both must agree on every operation's success/failure, return the same page
// address, and expose identical ghost views; Wf() (and the retained
// multi-pass WfReference()) must stay green throughout.
//
// The same file carries the Wf/WfReference verdict-identity test: the
// single-pass rewrite of Wf() must return the same verdict as the reference
// implementation on a battery of corrupted-state fixtures.

#include <cstdint>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/pmem/page_allocator.h"
#include "src/vstd/types.h"

namespace atmo {

// White-box access for the reference model (free-list heads, the private
// AllocFrom pop) and for the corruption fixtures of the Wf equivalence test.
struct PageAllocatorTestPeer {
  static constexpr std::uint64_t kNil = PageAllocator::kNilFrame;

  static std::uint64_t FreeHead(const PageAllocator& a, PageSize size) {
    return a.ListFor(size).head;
  }
  static std::optional<PageAlloc> AllocFrom(PageAllocator* a, PageSize size, CtnrPtr owner) {
    return a->AllocFrom(size, owner);
  }

  static auto& Meta(PageAllocator* a, std::uint64_t frame) { return a->meta_[frame]; }
  static auto& List(PageAllocator* a, PageSize size) { return a->ListFor(size); }
  static std::vector<std::uint32_t>& FreeIn2M(PageAllocator* a) { return a->free_in_2m_; }
  static std::vector<std::uint64_t>& FreeEq1G(PageAllocator* a) { return a->free_eq_1g_; }
  static std::vector<std::uint8_t>& InMergeable2M(PageAllocator* a) { return a->in_mergeable_2m_; }
  static std::vector<std::uint8_t>& InMergeable1G(PageAllocator* a) { return a->in_mergeable_1g_; }
  static std::vector<std::uint64_t>& Mergeable2M(PageAllocator* a) { return a->mergeable_2m_; }
  static std::vector<std::uint64_t>& Mergeable1G(PageAllocator* a) { return a->mergeable_1g_; }
};

namespace {

using Peer = PageAllocatorTestPeer;

constexpr std::uint64_t kFramesPer2M = kPageSize2M / kPageSize4K;
constexpr std::uint64_t kFramesPer1G = kPageSize1G / kPageSize4K;
constexpr std::uint64_t kNil = Peer::kNil;

PagePtr PtrOfFrame(std::uint64_t frame) { return frame * kPageSize4K; }

// --- Scan-based reference model ---------------------------------------------
//
// Mirrors the decision procedure of the indexed paths, with every "is there a
// coalescible group/region?" question answered by scanning the page array
// low-to-high instead of consulting the heaps.

// Lowest fully free 1G region, found by a span-skipping scan. Unlike
// Merge1GAnywhere this checks the whole region before mutating anything, so
// a failed search leaves the allocator untouched (as the indexed path does).
std::optional<PagePtr> RefCoalesce1G(PageAllocator* a) {
  const std::uint64_t total = a->total_frames();
  for (std::uint64_t head = 0; head + kFramesPer1G <= total; head += kFramesPer1G) {
    bool full = true;
    std::uint64_t frame = head;
    while (frame < head + kFramesPer1G) {
      PagePtr p = PtrOfFrame(frame);
      if (a->StateOf(p) == PageState::kFree && a->SizeClassOf(p) == PageSize::k4K) {
        ++frame;
      } else if (frame % kFramesPer2M == 0 && a->StateOf(p) == PageState::kFree &&
                 a->SizeClassOf(p) == PageSize::k2M) {
        frame += kFramesPer2M;
      } else {
        full = false;
        break;
      }
    }
    if (!full) {
      continue;
    }
    // Merge constituents low-to-high, then the region itself — the same
    // mutation order the indexed path performs.
    for (std::uint64_t unit = head; unit < head + kFramesPer1G; unit += kFramesPer2M) {
      PagePtr p = PtrOfFrame(unit);
      if (a->StateOf(p) == PageState::kFree && a->SizeClassOf(p) == PageSize::k2M) {
        continue;
      }
      if (!a->TryMerge2M(p)) {
        return std::nullopt;  // impossible for a fully free region; fail loudly
      }
    }
    if (!a->TryMerge1G(PtrOfFrame(head))) {
      return std::nullopt;
    }
    return PtrOfFrame(head);
  }
  return std::nullopt;
}

std::optional<PagePtr> RefTakeFree2MUnit(PageAllocator* a) {
  if (Peer::FreeHead(*a, PageSize::k2M) != kNil) {
    return PtrOfFrame(Peer::FreeHead(*a, PageSize::k2M));
  }
  // Merge2MAnywhere already is the low-to-high scan, and TryMerge2M checks
  // before mutating, so failure paths stay atomic.
  if (std::optional<PagePtr> merged = a->Merge2MAnywhere(); merged.has_value()) {
    return merged;
  }
  std::optional<PagePtr> big = Peer::FreeHead(*a, PageSize::k1G) != kNil
                                   ? std::optional<PagePtr>(
                                         PtrOfFrame(Peer::FreeHead(*a, PageSize::k1G)))
                                   : RefCoalesce1G(a);
  if (!big.has_value()) {
    return std::nullopt;
  }
  a->Split1G(*big);
  return PtrOfFrame(Peer::FreeHead(*a, PageSize::k2M));
}

std::optional<PageAlloc> RefAlloc4K(PageAllocator* a, CtnrPtr owner) {
  if (Peer::FreeHead(*a, PageSize::k4K) == kNil) {
    std::optional<PagePtr> unit = RefTakeFree2MUnit(a);
    if (!unit.has_value()) {
      return std::nullopt;
    }
    a->Split2M(*unit);
  }
  return Peer::AllocFrom(a, PageSize::k4K, owner);
}

std::optional<PageAlloc> RefAlloc2M(PageAllocator* a, CtnrPtr owner) {
  if (!RefTakeFree2MUnit(a).has_value()) {
    return std::nullopt;
  }
  return Peer::AllocFrom(a, PageSize::k2M, owner);
}

std::optional<PageAlloc> RefAlloc1G(PageAllocator* a, CtnrPtr owner) {
  if (Peer::FreeHead(*a, PageSize::k1G) == kNil && !RefCoalesce1G(a).has_value()) {
    return std::nullopt;
  }
  return Peer::AllocFrom(a, PageSize::k1G, owner);
}

// --- Randomized differential driver -----------------------------------------

enum class Op { kAlloc4K, kAlloc2M, kAlloc1G, kFree, kSplit2M, kSplit1G };

struct OpWeights {
  int alloc_4k, alloc_2m, alloc_1g, free_op, split_2m, split_1g;
  int Total() const { return alloc_4k + alloc_2m + alloc_1g + free_op + split_2m + split_1g; }
};

Op PickOp(std::mt19937_64& rng, const OpWeights& w) {
  int roll = static_cast<int>(rng() % static_cast<std::uint64_t>(w.Total()));
  if ((roll -= w.alloc_4k) < 0) return Op::kAlloc4K;
  if ((roll -= w.alloc_2m) < 0) return Op::kAlloc2M;
  if ((roll -= w.alloc_1g) < 0) return Op::kAlloc1G;
  if ((roll -= w.free_op) < 0) return Op::kFree;
  if ((roll -= w.split_2m) < 0) return Op::kSplit2M;
  return Op::kSplit1G;
}

class DifferentialDriver {
 public:
  DifferentialDriver(std::uint64_t total_frames, std::uint64_t reserved_frames,
                     std::uint64_t seed)
      : dut_(total_frames, reserved_frames),
        ref_(total_frames, reserved_frames),
        rng_(seed) {}

  PageAllocator& dut() { return dut_; }
  PageAllocator& ref() { return ref_; }

  // Runs one operation on both allocators and asserts agreement on the
  // result and on the O(1) free counters.
  void Step(const OpWeights& weights) {
    Op op = PickOp(rng_, weights);
    switch (op) {
      case Op::kAlloc4K:
        Alloc(dut_.AllocPage4K(kNullPtr), RefAlloc4K(&ref_, kNullPtr));
        break;
      case Op::kAlloc2M:
        Alloc(dut_.AllocPage2M(kNullPtr), RefAlloc2M(&ref_, kNullPtr));
        break;
      case Op::kAlloc1G:
        Alloc(dut_.AllocPage1G(kNullPtr), RefAlloc1G(&ref_, kNullPtr));
        break;
      case Op::kFree: {
        if (live_.empty()) {
          break;
        }
        std::size_t idx = static_cast<std::size_t>(rng() % live_.size());
        auto [dut_page, ref_page] = std::move(live_[idx]);
        live_[idx] = std::move(live_.back());
        live_.pop_back();
        dut_.FreePage(dut_page.ptr, std::move(dut_page.perm));
        ref_.FreePage(ref_page.ptr, std::move(ref_page.perm));
        break;
      }
      case Op::kSplit2M: {
        std::uint64_t head = Peer::FreeHead(dut_, PageSize::k2M);
        ASSERT_EQ(head, Peer::FreeHead(ref_, PageSize::k2M));
        if (head == kNil) {
          break;
        }
        dut_.Split2M(PtrOfFrame(head));
        ref_.Split2M(PtrOfFrame(head));
        break;
      }
      case Op::kSplit1G: {
        std::uint64_t head = Peer::FreeHead(dut_, PageSize::k1G);
        ASSERT_EQ(head, Peer::FreeHead(ref_, PageSize::k1G));
        if (head == kNil) {
          break;
        }
        dut_.Split1G(PtrOfFrame(head));
        ref_.Split1G(PtrOfFrame(head));
        break;
      }
    }
    for (PageSize size : {PageSize::k4K, PageSize::k2M, PageSize::k1G}) {
      ASSERT_EQ(dut_.FreeCount(size), ref_.FreeCount(size));
    }
  }

  // Full abstract-view comparison plus structural invariants on both sides.
  void CheckDeep() {
    ASSERT_TRUE(dut_.Wf());
    ASSERT_TRUE(dut_.WfReference());
    ASSERT_TRUE(ref_.Wf());
    for (PageSize size : {PageSize::k4K, PageSize::k2M, PageSize::k1G}) {
      ASSERT_TRUE(dut_.FreePages(size) == ref_.FreePages(size));
    }
    ASSERT_TRUE(dut_.AllocatedPages() == ref_.AllocatedPages());
    ASSERT_TRUE(dut_.InUseFrames() == ref_.InUseFrames());
  }

  std::size_t live_count() const { return live_.size(); }
  std::uint64_t rng() { return rng_(); }

 private:
  void Alloc(std::optional<PageAlloc> dut_result, std::optional<PageAlloc> ref_result) {
    ASSERT_EQ(dut_result.has_value(), ref_result.has_value());
    if (dut_result.has_value()) {
      ASSERT_EQ(dut_result->ptr, ref_result->ptr);
      live_.emplace_back(std::move(*dut_result), std::move(*ref_result));
    }
  }

  PageAllocator dut_;
  PageAllocator ref_;
  std::mt19937_64 rng_;
  std::vector<std::pair<PageAlloc, PageAlloc>> live_;
};

// 20k randomized operations at all three size classes against a machine with
// three 1G regions (region 0 crippled by the reserved boot frames, so 1G
// coalescing must pick regions 1-2). Phases of different op mixes drive the
// allocator through fill, 2M/1G exhaustion, heavy fragmentation and drains.
TEST(PmemDifferentialTest, RandomizedOpsMatchScanReference) {
  DifferentialDriver driver(3 * kFramesPer1G, 5, /*seed=*/0xa7305eedull);

  const OpWeights kPhases[] = {
      {30, 10, 2, 18, 3, 2},   // fill with churn
      {10, 30, 10, 5, 2, 1},   // alloc-heavy: drive 2M/1G exhaustion
      {5, 5, 1, 40, 5, 3},     // drain
      {20, 10, 3, 25, 5, 3},   // balanced churn
      {2, 5, 25, 10, 2, 8},    // 1G stress: coalesce/split cycling
      {5, 3, 1, 45, 4, 2},     // drain again
      {40, 5, 1, 35, 10, 1},   // fine-grained 4K fragmentation
      {15, 15, 5, 20, 5, 5},   // mixed tail
  };
  constexpr int kOpsPerPhase = 2500;

  for (const OpWeights& phase : kPhases) {
    for (int op = 0; op < kOpsPerPhase; ++op) {
      ASSERT_NO_FATAL_FAILURE(driver.Step(phase));
      if (op % 256 == 0) {
        ASSERT_TRUE(driver.dut().Wf());
        ASSERT_TRUE(driver.dut().WfReference());
      }
    }
    ASSERT_NO_FATAL_FAILURE(driver.CheckDeep());
  }
}

// Small machine (two usable 2M groups, no room for any 1G page): exhaustion
// at every size class is hit constantly and Wf/WfReference run on every op.
TEST(PmemDifferentialTest, SmallMachineChurnWithPerOpWf) {
  DifferentialDriver driver(3 * kFramesPer2M, kFramesPer2M, /*seed=*/0x51a11ull);

  const OpWeights kChurn{30, 20, 5, 35, 8, 2};
  for (int op = 0; op < 4000; ++op) {
    ASSERT_NO_FATAL_FAILURE(driver.Step(kChurn));
    ASSERT_TRUE(driver.dut().Wf());
    ASSERT_TRUE(driver.dut().WfReference());
    if (op % 250 == 0) {
      ASSERT_NO_FATAL_FAILURE(driver.CheckDeep());
    }
  }
  ASSERT_NO_FATAL_FAILURE(driver.CheckDeep());
}

// --- Wf vs WfReference verdict identity --------------------------------------
//
// The single-pass Wf() must agree with the retained multi-pass reference on
// corrupted states, not just on healthy ones. Each fixture clones a richly
// populated allocator, applies one targeted corruption through the test
// peer, and requires both predicates to reject it.

class WfEquivalenceTest : public ::testing::Test {
 protected:
  // 5 groups of 2M; group 0 reserved. Build a state with: free 4K pages,
  // one allocated 4K page, one mapped 4K page, one allocated 2M page (group
  // 1, coalesced), one free on-list 2M page (group 2), a fully free flagged
  // group (group 3) and a partially allocated group (group 4).
  WfEquivalenceTest() : base_(5 * kFramesPer2M, kFramesPer2M) {
    alloc_4k_ = base_.AllocPage4K(kNullPtr);
    mapped_4k_ = base_.AllocPage4K(kNullPtr);
    base_.MarkMapped(mapped_4k_->ptr);
    alloc_2m_ = base_.AllocPage2M(kNullPtr);
    auto free_2m = base_.AllocPage2M(kNullPtr);
    free_2m_ptr_ = free_2m->ptr;
    base_.FreePage(free_2m->ptr, std::move(free_2m->perm));
  }

  // Runs both predicates on a corrupted clone and checks they agree on the
  // expected verdict.
  template <typename Corrupt>
  void ExpectBothReject(const char* what, Corrupt&& corrupt) {
    PageAllocator clone = base_.CloneForVerification();
    corrupt(&clone);
    EXPECT_FALSE(clone.Wf()) << what;
    EXPECT_FALSE(clone.WfReference()) << what;
  }

  PageAllocator base_;
  std::optional<PageAlloc> alloc_4k_;
  std::optional<PageAlloc> mapped_4k_;
  std::optional<PageAlloc> alloc_2m_;
  PagePtr free_2m_ptr_ = 0;
};

TEST_F(WfEquivalenceTest, CleanStateAcceptedByBoth) {
  EXPECT_TRUE(base_.Wf());
  EXPECT_TRUE(base_.WfReference());
  PageAllocator clone = base_.CloneForVerification();
  EXPECT_TRUE(clone.Wf());
  EXPECT_TRUE(clone.WfReference());
}

TEST_F(WfEquivalenceTest, CorruptedStatesRejectedByBoth) {
  const std::uint64_t alloc_frame = alloc_4k_->ptr / kPageSize4K;
  const std::uint64_t mapped_frame = mapped_4k_->ptr / kPageSize4K;
  const std::uint64_t free_2m_frame = free_2m_ptr_ / kPageSize4K;

  ExpectBothReject("off-list free page breaks the coalescing counters",
                   [&](PageAllocator* a) {
                     Peer::Meta(a, alloc_frame).state = PageState::kFree;
                   });
  ExpectBothReject("free-list cycle", [&](PageAllocator* a) {
    std::uint64_t head = Peer::FreeHead(*a, PageSize::k4K);
    Peer::Meta(a, head).next = head;
  });
  ExpectBothReject("free-list count drift", [&](PageAllocator* a) {
    ++Peer::List(a, PageSize::k4K).count;
  });
  ExpectBothReject("on-list 2M unit with a detached tail", [&](PageAllocator* a) {
    Peer::Meta(a, free_2m_frame + 7).merged_head = free_2m_frame + 1;
  });
  ExpectBothReject("allocated 2M unit with a detached tail", [&](PageAllocator* a) {
    std::uint64_t head = alloc_2m_->ptr / kPageSize4K;
    Peer::Meta(a, head + 3).state = PageState::kAllocated;
  });
  ExpectBothReject("mapped page with zero map count", [&](PageAllocator* a) {
    Peer::Meta(a, mapped_frame).map_count = 0;
  });
  ExpectBothReject("stale 2M group counter", [&](PageAllocator* a) {
    ++Peer::FreeIn2M(a)[free_2m_frame / kFramesPer2M];
  });
  ExpectBothReject("stale 1G region counter", [&](PageAllocator* a) {
    ++Peer::FreeEq1G(a)[0];
  });
  ExpectBothReject("flag set without a heap entry", [&](PageAllocator* a) {
    std::size_t group = 1;
    if (Peer::InMergeable2M(a)[group]) {
      group = 2;
    }
    Peer::InMergeable2M(a)[group] = 1;
  });
  ExpectBothReject("heap entry without a flag", [&](PageAllocator* a) {
    for (std::size_t group = 0; group < Peer::InMergeable2M(a).size(); ++group) {
      if (!Peer::InMergeable2M(a)[group]) {
        Peer::Mergeable2M(a).push_back(group);
        return;
      }
    }
  });
  ExpectBothReject("full group lost its mergeable flag", [&](PageAllocator* a) {
    for (std::size_t group = 0; group < Peer::FreeIn2M(a).size(); ++group) {
      if (Peer::FreeIn2M(a)[group] == kFramesPer2M) {
        Peer::InMergeable2M(a)[group] = 0;
        auto& heap = Peer::Mergeable2M(a);
        for (std::size_t i = 0; i < heap.size(); ++i) {
          if (heap[i] == group) {
            heap.erase(heap.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
        return;
      }
    }
    FAIL() << "fixture requires a fully free group";
  });
  ExpectBothReject("unavailable frame outside the reserved prefix",
                   [&](PageAllocator* a) {
                     std::uint64_t head = Peer::FreeHead(*a, PageSize::k4K);
                     Peer::Meta(a, head).state = PageState::kUnavailable;
                   });
}

}  // namespace
}  // namespace atmo
