// Verification-harness tests: the invariant registry's execution model
// (ordering, timing, parallel equivalence, failure reporting) and the
// refinement checker's bookkeeping.

#include <gtest/gtest.h>

#include "src/verif/invariant_registry.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace {

Kernel SmallKernel() {
  BootConfig config;
  config.frames = 2048;
  config.reserved_frames = 16;
  return std::move(*Kernel::Boot(config));
}

TEST(InvariantRegistryTest, RunsChecksInRegistrationOrder) {
  Kernel kernel = SmallKernel();
  InvariantRegistry reg;
  reg.Register("first", [](const Kernel&) { return InvResult{}; });
  reg.Register("second", [](const Kernel&) { return InvResult::Fail("boom"); });
  reg.Register("third", [](const Kernel&) { return InvResult{}; });

  SuiteReport report = reg.RunAll(kernel, 1);
  ASSERT_EQ(report.outcomes.size(), 3u);
  EXPECT_EQ(report.outcomes[0].name, "first");
  EXPECT_TRUE(report.outcomes[0].ok);
  EXPECT_EQ(report.outcomes[1].name, "second");
  EXPECT_FALSE(report.outcomes[1].ok);
  EXPECT_EQ(report.outcomes[1].detail, "boom");
  EXPECT_FALSE(report.AllOk());
}

TEST(InvariantRegistryTest, TimingIsPopulated) {
  Kernel kernel = SmallKernel();
  InvariantRegistry reg;
  reg.Register("busy", [](const Kernel&) {
    volatile std::uint64_t x = 0;
    for (int i = 0; i < 100000; ++i) {
      x += static_cast<std::uint64_t>(i);
    }
    return InvResult{};
  });
  SuiteReport report = reg.RunAll(kernel, 1);
  EXPECT_GT(report.outcomes[0].seconds, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GE(report.TotalCheckSeconds(), report.outcomes[0].seconds);
}

TEST(InvariantRegistryTest, ParallelRunCoversEveryCheckExactlyOnce) {
  Kernel kernel = SmallKernel();
  InvariantRegistry reg;
  std::array<std::atomic<int>, 24> hits{};
  for (int i = 0; i < 24; ++i) {
    reg.Register("check-" + std::to_string(i), [&hits, i](const Kernel&) {
      hits[static_cast<std::size_t>(i)].fetch_add(1);
      return InvResult{};
    });
  }
  SuiteReport report = reg.RunAll(kernel, 8);
  EXPECT_TRUE(report.AllOk());
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
}

TEST(InvariantRegistryTest, StandardSuiteDetectsEachCorruptionClass) {
  // One corruption per subsystem; the suite must flag each.
  struct Case {
    const char* expect_check;
    void (*corrupt)(Kernel*);
  };
  Case cases[] = {
      {"container_tree_wf",
       [](Kernel* k) { k->pm_mut().MutableContainer(k->root_container()).depth = 9; }},
      {"quota_wf",
       [](Kernel* k) { k->pm_mut().MutableContainer(k->root_container()).mem_used = 77; }},
  };
  for (const Case& c : cases) {
    Kernel kernel = SmallKernel();
    c.corrupt(&kernel);
    InvariantRegistry suite = InvariantRegistry::StandardSuite();
    SuiteReport report = suite.RunAll(kernel, 1);
    bool flagged = false;
    for (const CheckOutcome& outcome : report.outcomes) {
      if (outcome.name == c.expect_check) {
        flagged = !outcome.ok;
      }
    }
    EXPECT_TRUE(flagged) << c.expect_check << " did not flag its corruption";
  }
}

TEST(RefinementCheckerTest, CountsStepsAndHonoursWfSampling) {
  Kernel kernel = SmallKernel();
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 256, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);

  RefinementChecker checker(&kernel, /*check_wf_every=*/0);  // specs only
  Syscall yield;
  yield.op = SysOp::kYield;
  for (int i = 0; i < 5; ++i) {
    checker.Step(thrd.value, yield);
  }
  EXPECT_EQ(checker.steps_checked(), 5u);
  EXPECT_EQ(checker.kernel(), &kernel);
}

}  // namespace
}  // namespace atmo
