// Parallel sharded trace exploration: determinism across worker counts,
// shard-seed independence, failure capture under parallelism, and replay
// tokens reproducing the failing trace single-threaded.

#include <cstdint>

#include <gtest/gtest.h>

#include "src/verif/sweep_harness.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

SweepHarness::Options SmallSweep(std::uint64_t master_seed, unsigned workers) {
  SweepHarness::Options options;
  options.master_seed = master_seed;
  options.shards = 6;
  options.steps_per_shard = 400;
  options.workers = workers;
  options.checker = RefinementChecker::Options{.check_wf_every = 16, .audit_every = 64,
                                               .incremental = true};
  return options;
}

// ---------------------------------------------------------------------------
// Determinism: the merged report is a pure function of the master seed —
// 1 worker and 8 workers must agree bit-for-bit on coverage, verdicts,
// per-shard step counts and seeds.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, SameSeedSameReportAcrossWorkerCounts) {
  SweepReport serial = SweepHarness(SmallSweep(0xfeedface, 1)).Run();
  SweepReport parallel = SweepHarness(SmallSweep(0xfeedface, 8)).Run();

  EXPECT_TRUE(serial.AllOk());
  EXPECT_TRUE(parallel.AllOk());
  EXPECT_EQ(serial.workers, 1u);
  EXPECT_EQ(parallel.workers, 6u);  // clamped to shard count
  EXPECT_TRUE(serial.SameOutcome(parallel));

  // Every shard ran to completion and the merge saw all of them.
  EXPECT_EQ(serial.total_steps, 6u * 400u);
  EXPECT_EQ(serial.coverage.Total(), serial.total_steps);
  EXPECT_EQ(serial.stats.steps, serial.total_steps);
  // The trace mix exercises a broad op × error surface, not one diagonal.
  EXPECT_GE(serial.coverage.NonZeroCells(), 16u);
}

TEST(ParallelSweepTest, ShardsAreSeedIndependent) {
  // Distinct shards get distinct splitmix64 seeds...
  SweepReport report = SweepHarness(SmallSweep(42, 4)).Run();
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    EXPECT_EQ(report.shards[i].seed, SweepHarness::ShardSeed(42, i));
    for (std::size_t j = i + 1; j < report.shards.size(); ++j) {
      EXPECT_NE(report.shards[i].seed, report.shards[j].seed);
      // ...and explore genuinely different traces.
      EXPECT_FALSE(report.shards[i].coverage == report.shards[j].coverage);
    }
  }
  // A different master seed reaches a different merged coverage matrix.
  SweepReport other = SweepHarness(SmallSweep(43, 4)).Run();
  EXPECT_FALSE(report.coverage == other.coverage);
}

// ---------------------------------------------------------------------------
// Failure capture: a deliberately broken kernel step in one shard is caught
// under the parallel harness, the other shards finish unaffected, and the
// replay token reproduces the failure single-threaded.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, BrokenShardIsCaughtAndReplays) {
  constexpr std::uint64_t kBadShard = 2;
  constexpr std::uint64_t kBadStep = 57;

  SweepHarness::Options options = SmallSweep(0xdecafbad, 4);
  // total_wf every step so the corruption is caught at the step it happens.
  options.checker.check_wf_every = 1;
  options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
    if (shard == kBadShard && step == kBadStep) {
      // Forge quota accounting behind the kernel's back: a concrete-state
      // corruption that total_wf rejects regardless of dirty-log contents.
      f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
    }
  };
  SweepHarness harness(options);

  SweepReport report = harness.Run();
  EXPECT_FALSE(report.AllOk());
  ASSERT_EQ(report.Failures().size(), 1u);

  ReplayToken token = report.Failures()[0];
  EXPECT_EQ(token.master_seed, 0xdecafbadu);
  EXPECT_EQ(token.shard, kBadShard);
  EXPECT_EQ(token.step, kBadStep);
  EXPECT_NE(report.shards[kBadShard].failure.find("total_wf"), std::string::npos)
      << report.shards[kBadShard].failure;

  // Healthy shards were isolated from the blast: they ran every step.
  for (const ShardResult& shard : report.shards) {
    if (shard.shard != kBadShard) {
      EXPECT_TRUE(shard.ok);
      EXPECT_EQ(shard.steps, options.steps_per_shard);
    }
  }

  // The token reruns the exact failing trace single-threaded.
  ShardResult replay = harness.Replay(token);
  EXPECT_FALSE(replay.ok);
  ASSERT_TRUE(replay.token.has_value());
  EXPECT_EQ(*replay.token, token);
  EXPECT_EQ(replay.failure, report.shards[kBadShard].failure);
  EXPECT_EQ(replay.steps, report.shards[kBadShard].steps);
  EXPECT_TRUE(replay.coverage == report.shards[kBadShard].coverage);

  // Without the fault, the same seed and shard layout is clean — the hook,
  // not the harness, was the problem.
  options.fault_hook = nullptr;
  SweepReport clean = SweepHarness(options).Run();
  EXPECT_TRUE(clean.AllOk());
  EXPECT_EQ(clean.total_steps, options.shards * options.steps_per_shard);
}

// ---------------------------------------------------------------------------
// SweepProgress: the mutex-guarded shared tracker (the one annotated piece
// of cross-thread state) ends up consistent with the merged report, and
// first_failure is ordered by shard index, not completion order — so it is
// deterministic across worker counts.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, ProgressTrackerMatchesReport) {
  SweepProgress progress;
  SweepHarness::Options options = SmallSweep(0xfeedface, 4);
  options.progress = &progress;
  SweepReport report = SweepHarness(options).Run();

  SweepProgress::Snapshot snap = progress.TakeSnapshot();
  EXPECT_EQ(snap.shards_completed, options.shards);
  EXPECT_EQ(snap.shards_failed, 0u);
  EXPECT_EQ(snap.steps_completed, report.total_steps);
  EXPECT_FALSE(snap.first_failure.has_value());
  EXPECT_FALSE(report.first_failure.has_value());
}

TEST(ParallelSweepTest, FirstFailureIsLowestShardAcrossWorkerCounts) {
  // Break TWO shards; regardless of which worker finishes first, the
  // reported first_failure must be the lower shard index.
  auto broken = [](unsigned workers) {
    SweepHarness::Options options = SmallSweep(0xdecafbad, workers);
    options.checker.check_wf_every = 1;
    options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
      if ((shard == 1 && step == 211) || (shard == 4 && step == 13)) {
        f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
      }
    };
    return options;
  };

  SweepReport serial = SweepHarness(broken(1)).Run();
  SweepReport parallel = SweepHarness(broken(6)).Run();

  ASSERT_EQ(serial.Failures().size(), 2u);
  ASSERT_TRUE(serial.first_failure.has_value());
  EXPECT_EQ(serial.first_failure->shard, 1u);
  EXPECT_EQ(serial.first_failure->step, 211u);
  EXPECT_EQ(serial.first_failure, parallel.first_failure);
  EXPECT_EQ(*serial.first_failure, serial.Failures().front());

  SweepProgress progress;
  SweepHarness::Options observed = broken(6);
  observed.progress = &progress;
  SweepHarness(observed).Run();
  SweepProgress::Snapshot snap = progress.TakeSnapshot();
  EXPECT_EQ(snap.shards_failed, 2u);
  ASSERT_TRUE(snap.first_failure.has_value());
  EXPECT_EQ(snap.first_failure->shard, 1u);
}

}  // namespace
}  // namespace atmo
