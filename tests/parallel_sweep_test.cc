// Parallel sharded trace exploration: determinism across worker counts,
// shard-seed independence, failure capture under parallelism, replay
// tokens reproducing the failing trace single-threaded, coverage-matrix
// merge edge cases, and the traced-sweep / failure-forensics paths.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "src/obs/flight_recorder.h"
#include "src/verif/obs_export.h"
#include "src/verif/sweep_harness.h"
#include "src/vstd/check.h"

namespace atmo {
namespace {

SweepHarness::Options SmallSweep(std::uint64_t master_seed, unsigned workers) {
  SweepHarness::Options options;
  options.master_seed = master_seed;
  options.shards = 6;
  options.steps_per_shard = 400;
  options.workers = workers;
  options.checker = RefinementChecker::Options{.check_wf_every = 16, .audit_every = 64,
                                               .incremental = true};
  return options;
}

// ---------------------------------------------------------------------------
// Determinism: the merged report is a pure function of the master seed —
// 1 worker and 8 workers must agree bit-for-bit on coverage, verdicts,
// per-shard step counts and seeds.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, SameSeedSameReportAcrossWorkerCounts) {
  SweepReport serial = SweepHarness(SmallSweep(0xfeedface, 1)).Run();
  SweepReport parallel = SweepHarness(SmallSweep(0xfeedface, 8)).Run();

  EXPECT_TRUE(serial.AllOk());
  EXPECT_TRUE(parallel.AllOk());
  EXPECT_EQ(serial.workers, 1u);
  EXPECT_EQ(parallel.workers, 6u);  // clamped to shard count
  EXPECT_TRUE(serial.SameOutcome(parallel));

  // Every shard ran to completion and the merge saw all of them.
  EXPECT_EQ(serial.total_steps, 6u * 400u);
  EXPECT_EQ(serial.coverage.Total(), serial.total_steps);
  EXPECT_EQ(serial.stats.steps, serial.total_steps);
  // The trace mix exercises a broad op × error surface, not one diagonal.
  EXPECT_GE(serial.coverage.NonZeroCells(), 16u);
}

TEST(ParallelSweepTest, ShardsAreSeedIndependent) {
  // Distinct shards get distinct splitmix64 seeds...
  SweepReport report = SweepHarness(SmallSweep(42, 4)).Run();
  for (std::size_t i = 0; i < report.shards.size(); ++i) {
    EXPECT_EQ(report.shards[i].seed, SweepHarness::ShardSeed(42, i));
    for (std::size_t j = i + 1; j < report.shards.size(); ++j) {
      EXPECT_NE(report.shards[i].seed, report.shards[j].seed);
      // ...and explore genuinely different traces.
      EXPECT_FALSE(report.shards[i].coverage == report.shards[j].coverage);
    }
  }
  // A different master seed reaches a different merged coverage matrix.
  SweepReport other = SweepHarness(SmallSweep(43, 4)).Run();
  EXPECT_FALSE(report.coverage == other.coverage);
}

// ---------------------------------------------------------------------------
// Failure capture: a deliberately broken kernel step in one shard is caught
// under the parallel harness, the other shards finish unaffected, and the
// replay token reproduces the failure single-threaded.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, BrokenShardIsCaughtAndReplays) {
  constexpr std::uint64_t kBadShard = 2;
  constexpr std::uint64_t kBadStep = 57;

  SweepHarness::Options options = SmallSweep(0xdecafbad, 4);
  // total_wf every step so the corruption is caught at the step it happens.
  options.checker.check_wf_every = 1;
  options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
    if (shard == kBadShard && step == kBadStep) {
      // Forge quota accounting behind the kernel's back: a concrete-state
      // corruption that total_wf rejects regardless of dirty-log contents.
      f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
    }
  };
  SweepHarness harness(options);

  SweepReport report = harness.Run();
  EXPECT_FALSE(report.AllOk());
  ASSERT_EQ(report.Failures().size(), 1u);

  ReplayToken token = report.Failures()[0];
  EXPECT_EQ(token.master_seed, 0xdecafbadu);
  EXPECT_EQ(token.shard, kBadShard);
  EXPECT_EQ(token.step, kBadStep);
  EXPECT_NE(report.shards[kBadShard].failure.find("total_wf"), std::string::npos)
      << report.shards[kBadShard].failure;

  // Healthy shards were isolated from the blast: they ran every step.
  for (const ShardResult& shard : report.shards) {
    if (shard.shard != kBadShard) {
      EXPECT_TRUE(shard.ok);
      EXPECT_EQ(shard.steps, options.steps_per_shard);
    }
  }

  // The token reruns the exact failing trace single-threaded.
  ShardResult replay = harness.Replay(token);
  EXPECT_FALSE(replay.ok);
  ASSERT_TRUE(replay.token.has_value());
  EXPECT_EQ(*replay.token, token);
  EXPECT_EQ(replay.failure, report.shards[kBadShard].failure);
  EXPECT_EQ(replay.steps, report.shards[kBadShard].steps);
  EXPECT_TRUE(replay.coverage == report.shards[kBadShard].coverage);

  // Without the fault, the same seed and shard layout is clean — the hook,
  // not the harness, was the problem.
  options.fault_hook = nullptr;
  SweepReport clean = SweepHarness(options).Run();
  EXPECT_TRUE(clean.AllOk());
  EXPECT_EQ(clean.total_steps, options.shards * options.steps_per_shard);
}

// ---------------------------------------------------------------------------
// SweepProgress: the mutex-guarded shared tracker (the one annotated piece
// of cross-thread state) ends up consistent with the merged report, and
// first_failure is ordered by shard index, not completion order — so it is
// deterministic across worker counts.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, ProgressTrackerMatchesReport) {
  SweepProgress progress;
  SweepHarness::Options options = SmallSweep(0xfeedface, 4);
  options.progress = &progress;
  SweepReport report = SweepHarness(options).Run();

  SweepProgress::Snapshot snap = progress.TakeSnapshot();
  EXPECT_EQ(snap.shards_completed, options.shards);
  EXPECT_EQ(snap.shards_failed, 0u);
  EXPECT_EQ(snap.steps_completed, report.total_steps);
  EXPECT_FALSE(snap.first_failure.has_value());
  EXPECT_FALSE(report.first_failure.has_value());
}

TEST(ParallelSweepTest, FirstFailureIsLowestShardAcrossWorkerCounts) {
  // Break TWO shards; regardless of which worker finishes first, the
  // reported first_failure must be the lower shard index.
  auto broken = [](unsigned workers) {
    SweepHarness::Options options = SmallSweep(0xdecafbad, workers);
    options.checker.check_wf_every = 1;
    options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
      if ((shard == 1 && step == 211) || (shard == 4 && step == 13)) {
        f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
      }
    };
    return options;
  };

  SweepReport serial = SweepHarness(broken(1)).Run();
  SweepReport parallel = SweepHarness(broken(6)).Run();

  ASSERT_EQ(serial.Failures().size(), 2u);
  ASSERT_TRUE(serial.first_failure.has_value());
  EXPECT_EQ(serial.first_failure->shard, 1u);
  EXPECT_EQ(serial.first_failure->step, 211u);
  EXPECT_EQ(serial.first_failure, parallel.first_failure);
  EXPECT_EQ(*serial.first_failure, serial.Failures().front());

  SweepProgress progress;
  SweepHarness::Options observed = broken(6);
  observed.progress = &progress;
  SweepHarness(observed).Run();
  SweepProgress::Snapshot snap = progress.TakeSnapshot();
  EXPECT_EQ(snap.shards_failed, 2u);
  ASSERT_TRUE(snap.first_failure.has_value());
  EXPECT_EQ(snap.first_failure->shard, 1u);
}

// ---------------------------------------------------------------------------
// CoverageMatrix merge semantics: the merged report must stay well-defined
// even at the counter limits (a multi-day sweep on a hot cell), so Merge and
// Total saturate instead of wrapping.
// ---------------------------------------------------------------------------

TEST(CoverageMatrixTest, EmptyMergeStaysEmpty) {
  CoverageMatrix a;
  CoverageMatrix b;
  a.Merge(b);
  EXPECT_TRUE(a == CoverageMatrix{});
  EXPECT_EQ(a.Total(), 0u);
  EXPECT_EQ(a.NonZeroCells(), 0u);
}

TEST(CoverageMatrixTest, MergeAddsElementwise) {
  CoverageMatrix a;
  CoverageMatrix b;
  a.Record(SysOp::kYield, SysError::kOk);
  a.Record(SysOp::kYield, SysError::kOk);
  b.Record(SysOp::kYield, SysError::kOk);
  b.Record(SysOp::kMmap, SysError::kNoMemory);
  a.Merge(b);
  EXPECT_EQ(a.counts[static_cast<std::size_t>(SysOp::kYield)]
                    [static_cast<std::size_t>(SysError::kOk)],
            3u);
  EXPECT_EQ(a.counts[static_cast<std::size_t>(SysOp::kMmap)]
                    [static_cast<std::size_t>(SysError::kNoMemory)],
            1u);
  EXPECT_EQ(a.Total(), 4u);
  EXPECT_EQ(a.NonZeroCells(), 2u);
}

TEST(CoverageMatrixTest, SelfMergeDoublesCounts) {
  CoverageMatrix a;
  a.Record(SysOp::kYield, SysError::kOk);
  a.Record(SysOp::kMunmap, SysError::kInvalid);
  CoverageMatrix before = a;
  a.Merge(a);
  EXPECT_EQ(a.Total(), 2 * before.Total());
  EXPECT_EQ(a.NonZeroCells(), before.NonZeroCells());
}

TEST(CoverageMatrixTest, MergeSaturatesInsteadOfWrapping) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  CoverageMatrix a;
  CoverageMatrix b;
  a.counts[0][0] = kMax - 1;
  b.counts[0][0] = 5;
  a.Merge(b);
  EXPECT_EQ(a.counts[0][0], kMax);  // clamped, not wrapped to 3
  // Saturated cells are absorbing: further merges keep the clamp.
  a.Merge(b);
  EXPECT_EQ(a.counts[0][0], kMax);
  EXPECT_EQ(a.NonZeroCells(), 1u);
}

TEST(CoverageMatrixTest, TotalSaturatesAcrossCells) {
  constexpr std::uint64_t kMax = ~std::uint64_t{0};
  CoverageMatrix a;
  a.counts[0][0] = kMax;
  a.counts[1][1] = 7;
  EXPECT_EQ(a.Total(), kMax);  // sum clamps at the counter limit
  EXPECT_EQ(a.NonZeroCells(), 2u);
}

// ---------------------------------------------------------------------------
// SameOutcome compares only the deterministic portion — timing fields vary
// run to run and must never break the 1w ≡ 8w identity.
// ---------------------------------------------------------------------------

TEST(ParallelSweepTest, SameOutcomeIgnoresTimingFields) {
  SweepReport a = SweepHarness(SmallSweep(0xfeedface, 2)).Run();
  SweepReport b = a;
  b.wall_seconds = a.wall_seconds + 123.0;
  b.steps_per_sec = a.steps_per_sec / 7.0;
  b.workers = a.workers + 3;
  for (ShardResult& shard : b.shards) {
    shard.wall_seconds += 1.0;
    shard.queue_wait_seconds += 2.0;
    shard.stats.spec_ns += 999;
    shard.stats.wf_ns += 999;
  }
  b.stats.abstraction_ns += 12345;
  EXPECT_TRUE(a.SameOutcome(b));

  // ...but it is not blind: a diverging verdict or step count still fails.
  SweepReport c = a;
  c.shards[0].steps += 1;
  EXPECT_FALSE(a.SameOutcome(c));
  SweepReport d = a;
  d.shards[1].ok = false;
  EXPECT_FALSE(a.SameOutcome(d));
}

TEST(ParallelSweepTest, ReportCarriesWallClockAndShardTiming) {
  SweepReport report = SweepHarness(SmallSweep(0xfeedface, 2)).Run();
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.steps_per_sec, 0.0);
  for (const ShardResult& shard : report.shards) {
    EXPECT_GT(shard.wall_seconds, 0.0);
    EXPECT_GE(shard.queue_wait_seconds, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Traced sweeps: Options::trace attaches a virtual-clock flight-recorder
// trace to every shard; the trace is part of neither SameOutcome nor the
// coverage merge, but it is itself deterministic across worker counts.
// ---------------------------------------------------------------------------

bool HasEvent(const std::vector<obs::TraceEvent>& events, std::string_view name,
              char ph) {
  for (const obs::TraceEvent& e : events) {
    if (e.name != nullptr && name == e.name && e.ph == ph) {
      return true;
    }
  }
  return false;
}

TEST(ParallelSweepTest, UntracedByDefault) {
  ASSERT_FALSE(obs::Enabled());
  SweepReport report = SweepHarness(SmallSweep(0xfeedface, 2)).Run();
  for (const ShardResult& shard : report.shards) {
    EXPECT_TRUE(shard.trace.empty());
  }
}

TEST(ParallelSweepTest, TracedSweepRecordsShardMarkersAndSyscallSpans) {
  SweepHarness::Options options = SmallSweep(0xfeedface, 2);
  options.trace = true;
  // Large enough that the ring never wraps: shard.start survives to the end.
  options.trace_capacity = 1 << 16;
  SweepReport report = SweepHarness(options).Run();

  for (const ShardResult& shard : report.shards) {
    ASSERT_FALSE(shard.trace.empty());
    // First event is the shard.start marker carrying the shard's seed.
    EXPECT_STREQ(shard.trace.front().name, "shard.start");
    EXPECT_EQ(shard.trace.front().ph, 'i');
    EXPECT_EQ(shard.trace.front().arg, shard.seed);
    EXPECT_TRUE(HasEvent(shard.trace, "shard.finish", 'i'));
    // Checked syscalls appear as 'B'/'E' span pairs on the shard's lane.
    EXPECT_TRUE(HasEvent(shard.trace, "sys.yield", 'B'));
    EXPECT_TRUE(HasEvent(shard.trace, "sys.yield", 'E'));
    for (const obs::TraceEvent& e : shard.trace) {
      EXPECT_EQ(e.tid, static_cast<std::uint32_t>(shard.shard));
    }
  }
}

TEST(ParallelSweepTest, TracedSweepIsDeterministicAcrossWorkerCounts) {
  auto traced = [](unsigned workers) {
    SweepHarness::Options options = SmallSweep(0xfeedface, workers);
    options.trace = true;
    return SweepHarness(options).Run();
  };
  SweepReport serial = traced(1);
  SweepReport parallel = traced(4);
  EXPECT_TRUE(serial.SameOutcome(parallel));
  for (std::size_t i = 0; i < serial.shards.size(); ++i) {
    // Virtual clock + deterministic trace => bit-identical event streams.
    EXPECT_EQ(serial.shards[i].trace, parallel.shards[i].trace);
  }
}

// ---------------------------------------------------------------------------
// Failure forensics: a failing traced shard carries the failing syscall's
// enter/exit span in its tail; Replay attaches a trace even when the
// process-wide flag is off; ATMO_OBS_DUMP_DIR gets a forensics JSON.
// ---------------------------------------------------------------------------

SweepHarness::Options BrokenTracedSweep() {
  SweepHarness::Options options = SmallSweep(0xdecafbad, 4);
  options.trace = true;
  options.checker.check_wf_every = 1;
  options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
    if (shard == 2 && step == 57) {
      f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
    }
  };
  return options;
}

TEST(ParallelSweepTest, FailingShardTraceEndsWithFailingSyscallSpan) {
  SweepReport report = SweepHarness(BrokenTracedSweep()).Run();
  ASSERT_EQ(report.Failures().size(), 1u);
  const ShardResult& bad = report.shards[2];
  ASSERT_FALSE(bad.trace.empty());

  // The shard still closed with its finish marker...
  EXPECT_STREQ(bad.trace.back().name, "shard.finish");

  // ...and the last syscall span before it is the failing step's, closed
  // ('E' after its 'B') despite the CheckViolation unwinding through it.
  const obs::TraceEvent* last_sys_end = nullptr;
  for (auto it = bad.trace.rbegin(); it != bad.trace.rend(); ++it) {
    if (it->ph == 'E' && it->name != nullptr &&
        std::string_view(it->name).rfind("sys.", 0) == 0) {
      last_sys_end = &*it;
      break;
    }
  }
  ASSERT_NE(last_sys_end, nullptr);
  bool found_begin = false;
  for (const obs::TraceEvent& e : bad.trace) {
    if (e.ph == 'B' && e.name != nullptr &&
        std::string_view(e.name) == last_sys_end->name) {
      found_begin = true;
    }
  }
  EXPECT_TRUE(found_begin);
}

TEST(ParallelSweepTest, ReplayForcesTracingOn) {
  ASSERT_FALSE(obs::Enabled());
  SweepHarness::Options options = BrokenTracedSweep();
  options.trace = false;  // the original sweep runs untraced...
  SweepHarness harness(options);
  SweepReport report = harness.Run();
  ASSERT_EQ(report.Failures().size(), 1u);
  EXPECT_TRUE(report.shards[2].trace.empty());

  // ...but the replayed failure always comes back with a trace attached.
  ShardResult replay = harness.Replay(report.Failures()[0]);
  EXPECT_FALSE(replay.ok);
  ASSERT_FALSE(replay.trace.empty());
  EXPECT_TRUE(HasEvent(replay.trace, "shard.finish", 'i'));
  EXPECT_STREQ(replay.trace.back().name, "shard.finish");
  EXPECT_EQ(replay.failure, report.shards[2].failure);
}

TEST(ParallelSweepTest, FailureDumpsForensicsJsonWhenDumpDirSet) {
  std::string dir = ::testing::TempDir() + "obs_forensics";
  std::string cmd = "mkdir -p " + dir;
  ASSERT_EQ(std::system(cmd.c_str()), 0);
  ASSERT_EQ(setenv("ATMO_OBS_DUMP_DIR", dir.c_str(), 1), 0);

  SweepHarness(BrokenTracedSweep()).Run();
  unsetenv("ATMO_OBS_DUMP_DIR");

  std::ifstream in(dir + "/sweep_failure_shard2.json");
  ASSERT_TRUE(in.good());
  std::ostringstream content;
  content << in.rdbuf();
  std::string json = content.str();

  // Chrome-trace envelope plus the replay token and verdict metadata.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"replay_token\""), std::string::npos);
  EXPECT_NE(json.find("\"master_seed\":" + std::to_string(0xdecafbadull)),
            std::string::npos);
  EXPECT_NE(json.find("\"shard\":2"), std::string::npos);
  EXPECT_NE(json.find("\"step\":57"), std::string::npos);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("total_wf"), std::string::npos);
  // The failing span's close made it into the tail.
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// verif -> obs export bridge: CheckStats and SweepReports land in the
// metrics registry under stable names.
// ---------------------------------------------------------------------------

TEST(ObsExportTest, ExportCheckStatsPopulatesCounters) {
  CheckStats stats;
  stats.steps = 10;
  stats.wf_checks = 4;
  stats.delta_abstractions = 9;
  stats.max_dirty_entries = 3;
  obs::MetricsRegistry registry;
  ExportCheckStats(stats, &registry);
  EXPECT_EQ(registry.counter("check.steps").value(), 10u);
  EXPECT_EQ(registry.counter("check.wf_checks").value(), 4u);
  EXPECT_EQ(registry.counter("check.delta_abstractions").value(), 9u);
  EXPECT_DOUBLE_EQ(registry.gauge("check.max_dirty_entries").value(), 3.0);
}

TEST(ObsExportTest, ExportSweepMetricsSummarizesReport) {
  SweepReport report = SweepHarness(SmallSweep(0xfeedface, 2)).Run();
  obs::MetricsRegistry registry;
  ExportSweepMetrics(report, &registry);
  EXPECT_EQ(registry.counter("sweep.total_steps").value(), report.total_steps);
  EXPECT_EQ(registry.counter("sweep.shards").value(), report.shards.size());
  EXPECT_EQ(registry.counter("sweep.shards_failed").value(), 0u);
  EXPECT_DOUBLE_EQ(registry.gauge("sweep.workers").value(),
                   static_cast<double>(report.workers));
  EXPECT_EQ(registry.histogram("sweep.shard_steps").count(), report.shards.size());
  EXPECT_EQ(registry.histogram("sweep.shard_wall_us").count(), report.shards.size());
}

}  // namespace
}  // namespace atmo
