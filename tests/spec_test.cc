// Mutation tests for the specification layer: each per-syscall spec must
// not only accept the kernel's real transitions (covered by kernel_test)
// but also REJECT transitions that differ from the specification. This is
// the analog of checking that the paper's specs are strong enough to
// constrain the implementation — a spec that accepts everything proves
// nothing.
//
// Technique: run a real syscall, capture (pre, post, ret), then mutate the
// post state (or the return value) in a targeted way and assert the spec
// fails.

#include <gtest/gtest.h>

#include "src/core/kernel.h"
#include "src/spec/frame_conditions.h"
#include "src/spec/frame_profile.h"
#include "src/spec/syscall_specs.h"

namespace atmo {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

struct Captured {
  AbstractKernel pre;
  AbstractKernel post;
  SyscallRet ret;
  ThrdPtr t;
  Syscall call;
};

class SpecMutationTest : public ::testing::Test {
 protected:
  SpecMutationTest() {
    BootConfig config;
    config.frames = 4096;
    config.reserved_frames = 16;
    kernel_.emplace(std::move(*Kernel::Boot(config)));
    auto c = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
    auto p = kernel_->BootCreateProcess(c.value);
    auto t = kernel_->BootCreateThread(p.value);
    ctnr_ = c.value;
    proc_ = p.value;
    thrd_ = t.value;
  }

  Captured Run(const Syscall& call, ThrdPtr t = kNullPtr) {
    if (t == kNullPtr) {
      t = thrd_;
    }
    kernel_->Dispatch(t);
    Captured out;
    out.t = t;
    out.call = call;
    out.pre = kernel_->Abstract();
    out.ret = kernel_->Exec(t, call);
    out.post = kernel_->Abstract();
    return out;
  }

  static Syscall Mmap(VAddr base, std::uint64_t count) {
    Syscall call;
    call.op = SysOp::kMmap;
    call.va_range = VaRange{base, count, PageSize::k4K};
    call.map_perm = kRw;
    return call;
  }

  std::optional<Kernel> kernel_;
  CtnrPtr ctnr_;
  ProcPtr proc_;
  ThrdPtr thrd_;
};

// ---------------------------------------------------------------------------
// The genuine transition passes; mutations fail.
// ---------------------------------------------------------------------------

TEST_F(SpecMutationTest, MmapGenuineTransitionAccepted) {
  Captured c = Run(Mmap(0x400000, 2));
  ASSERT_EQ(c.ret.error, SysError::kOk);
  SpecResult r = SyscallSpec(c.pre, c.post, c.t, c.call, c.ret);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST_F(SpecMutationTest, MmapRejectsWrongReturnValue) {
  Captured c = Run(Mmap(0x400000, 2));
  SyscallRet forged = c.ret;
  forged.value = 3;  // claims 3 pages mapped
  EXPECT_FALSE(SyscallSpec(c.pre, c.post, c.t, c.call, forged).ok);
}

TEST_F(SpecMutationTest, MmapRejectsMissingMapping) {
  Captured c = Run(Mmap(0x400000, 2));
  AbstractKernel post = c.post;
  // Drop one of the two new mappings from the abstract address space.
  SpecMap<VAddr, MapEntry> space = post.address_spaces.at(proc_);
  space.erase(0x401000);
  post.address_spaces.set(proc_, space);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, MmapRejectsWrongRights) {
  Captured c = Run(Mmap(0x400000, 1));
  AbstractKernel post = c.post;
  SpecMap<VAddr, MapEntry> space = post.address_spaces.at(proc_);
  MapEntry entry = space.at(0x400000);
  entry.perm.writable = false;  // mapped read-only against the request
  space.set(0x400000, entry);
  post.address_spaces.set(proc_, space);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, MmapRejectsDuplicatePhysicalPage) {
  Captured c = Run(Mmap(0x400000, 2));
  AbstractKernel post = c.post;
  SpecMap<VAddr, MapEntry> space = post.address_spaces.at(proc_);
  // Both VAs point at the same frame: violates "each va gets a unique page"
  // (Listing 1, lines 23-26).
  MapEntry first = space.at(0x400000);
  space.set(0x401000, first);
  post.address_spaces.set(proc_, space);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, MmapRejectsTouchingOtherThreads) {
  // "The state of each thread is unchanged" (Listing 1, lines 7-11).
  auto other = kernel_->BootCreateThread(proc_);
  Captured c = Run(Mmap(0x400000, 1));
  AbstractKernel post = c.post;
  AbsThread forged = post.threads.at(other.value);
  forged.has_inbound = true;  // mmap somehow delivered a message?!
  post.threads.set(other.value, forged);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, MmapRejectsWrongCharge) {
  Captured c = Run(Mmap(0x400000, 1));
  AbstractKernel post = c.post;
  AbsContainer forged = post.containers.at(ctnr_);
  forged.mem_used += 5;  // overcharged
  post.containers.set(ctnr_, forged);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, MmapRejectsUsingNonFreePage) {
  // Map twice; then forge history: pretend the second call's page was the
  // first call's (already in use in pre). "Newly allocated pages were free
  // pages" (Listing 1, lines 19-22).
  Captured first = Run(Mmap(0x400000, 1));
  PagePtr used = first.post.address_spaces.at(proc_).at(0x400000).addr;
  Captured second = Run(Mmap(0x500000, 1));
  AbstractKernel post = second.post;
  SpecMap<VAddr, MapEntry> space = post.address_spaces.at(proc_);
  MapEntry entry = space.at(0x500000);
  PagePtr fresh = entry.addr;
  entry.addr = used;
  space.set(0x500000, entry);
  post.address_spaces.set(proc_, space);
  // Move the page-info binding too, to keep the mutation "plausible".
  AbsPageInfo info = post.pages.at(fresh);
  post.pages.erase(fresh);
  post.pages.set(used, info);
  EXPECT_FALSE(SyscallSpec(second.pre, post, second.t, second.call, second.ret).ok);
}

TEST_F(SpecMutationTest, ErrorPathsMustBeAtomic) {
  // A failing syscall whose post state nevertheless changed must be
  // rejected by the atomicity obligation.
  Captured c = Run(Mmap(0x400000, 0));  // invalid count
  ASSERT_EQ(c.ret.error, SysError::kInvalid);
  SpecResult genuine = SyscallSpec(c.pre, c.post, c.t, c.call, c.ret);
  EXPECT_TRUE(genuine.ok) << genuine.detail;

  AbstractKernel post = c.post;
  AbsContainer forged = post.containers.at(ctnr_);
  forged.mem_used += 1;
  post.containers.set(ctnr_, forged);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, NewContainerRejectsWrongQuotaCarve) {
  Syscall nc;
  nc.op = SysOp::kNewContainer;
  nc.quota = 64;
  nc.cpu_mask = ~0ull;
  Captured c = Run(nc);
  ASSERT_EQ(c.ret.error, SysError::kOk);
  EXPECT_TRUE(SyscallSpec(c.pre, c.post, c.t, c.call, c.ret).ok);

  AbstractKernel post = c.post;
  AbsContainer parent = post.containers.at(ctnr_);
  parent.mem_quota += 1;  // parent kept quota it gave away
  post.containers.set(ctnr_, parent);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, NewContainerRejectsMissingSubtreeUpdate) {
  Syscall nc;
  nc.op = SysOp::kNewContainer;
  nc.quota = 64;
  nc.cpu_mask = ~0ull;
  Captured c = Run(nc);
  AbstractKernel post = c.post;
  AbsContainer parent = post.containers.at(ctnr_);
  parent.subtree = parent.subtree.remove(c.ret.value);  // forgot the ghost
  post.containers.set(ctnr_, parent);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, YieldRejectsWrongQueueOrder) {
  auto t2 = kernel_->BootCreateThread(proc_);
  (void)t2;
  Syscall yield;
  yield.op = SysOp::kYield;
  Captured c = Run(yield);
  ASSERT_EQ(c.ret.error, SysError::kOk);
  EXPECT_TRUE(SyscallSpec(c.pre, c.post, c.t, c.call, c.ret).ok);

  AbstractKernel post = c.post;
  // Forge: the yielding thread jumped the queue.
  post.run_queue = SpecSeq<ThrdPtr>{};
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, SendSpecRejectsPayloadTampering) {
  auto t2 = kernel_->BootCreateThread(proc_);
  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  Captured e = Run(ne);
  kernel_->pm_mut().BindEndpoint(t2.value, 0, e.ret.value);

  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  Run(recv, t2.value);

  Syscall send;
  send.op = SysOp::kSend;
  send.edpt_idx = 0;
  send.payload.scalars = {7, 8, 9, 10};
  Captured c = Run(send);
  ASSERT_EQ(c.ret.error, SysError::kOk);
  EXPECT_TRUE(SyscallSpec(c.pre, c.post, c.t, c.call, c.ret).ok);

  AbstractKernel post = c.post;
  AbsThread receiver = post.threads.at(t2.value);
  receiver.ipc_buf.scalars[0] = 999;  // kernel delivered tampered data
  post.threads.set(t2.value, receiver);
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

TEST_F(SpecMutationTest, ExitSpecRejectsSurvivingThread) {
  auto victim = kernel_->BootCreateThread(proc_);
  Syscall exit_call;
  exit_call.op = SysOp::kExit;
  Captured c = Run(exit_call, victim.value);
  ASSERT_EQ(c.ret.error, SysError::kOk);
  EXPECT_TRUE(SyscallSpec(c.pre, c.post, c.t, c.call, c.ret).ok);

  AbstractKernel post = c.post;
  post.threads.set(victim.value, c.pre.threads.at(victim.value));  // zombie
  EXPECT_FALSE(SyscallSpec(c.pre, post, c.t, c.call, c.ret).ok);
}

// ---------------------------------------------------------------------------
// DispatchSpec
// ---------------------------------------------------------------------------

TEST_F(SpecMutationTest, DispatchSpecValidatesPreemption) {
  auto t2 = kernel_->BootCreateThread(proc_);
  AbstractKernel pre = kernel_->Abstract();
  kernel_->Dispatch(thrd_);
  AbstractKernel mid = kernel_->Abstract();
  EXPECT_TRUE(DispatchSpec(pre, mid, thrd_).ok);
  // Dispatching the other thread preempts the first.
  kernel_->Dispatch(t2.value);
  AbstractKernel post = kernel_->Abstract();
  SpecResult r = DispatchSpec(mid, post, t2.value);
  EXPECT_TRUE(r.ok) << r.detail;
  // Forged: preempted thread vanished from the queue.
  AbstractKernel forged = post;
  forged.run_queue = SpecSeq<ThrdPtr>{};
  EXPECT_FALSE(DispatchSpec(mid, forged, t2.value).ok);
}

// ---------------------------------------------------------------------------
// Frame-condition helpers
// ---------------------------------------------------------------------------

TEST(FrameConditionTest, MapUnchangedExceptSemantics) {
  SpecMap<int, int> a = SpecMap<int, int>().insert(1, 10).insert(2, 20);
  SpecMap<int, int> same = a;
  SpecMap<int, int> changed = a.insert(2, 99);
  SpecMap<int, int> grown = a.insert(3, 30);
  EXPECT_TRUE(MapUnchangedExcept(a, same, SpecSet<int>{}));
  EXPECT_FALSE(MapUnchangedExcept(a, changed, SpecSet<int>{}));
  EXPECT_TRUE(MapUnchangedExcept(a, changed, SpecSet<int>{2}));
  EXPECT_FALSE(MapUnchangedExcept(a, grown, SpecSet<int>{}));
  EXPECT_TRUE(MapUnchangedExcept(a, grown, SpecSet<int>{3}));
  // Removal is also a change.
  EXPECT_FALSE(MapUnchangedExcept(a, a.remove(1), SpecSet<int>{}));
  EXPECT_TRUE(MapUnchangedExcept(a, a.remove(1), SpecSet<int>{1}));
}

// ---------------------------------------------------------------------------
// Frame-condition table (frame_profile.h)
// ---------------------------------------------------------------------------

TEST(FrameProfileTest, ViolationNamesFirstOutOfFrameComponent) {
  AbstractKernel pre;
  pre.threads = pre.threads.insert(0x1000, AbsThread{});
  pre.free_pages_4k.add(0x2000);

  // Identity transition violates nothing, under any profile.
  EXPECT_EQ(FrameProfileViolation(pre, pre, FrameProfile{}), "");

  // A thread-state change is caught unless the profile allows threads.
  AbstractKernel post = pre;
  AbsThread changed;
  changed.state = ThreadState::kRunning;
  post.threads = post.threads.insert(0x1000, changed);
  EXPECT_EQ(FrameProfileViolation(pre, post, FrameProfile{}), "threads");
  EXPECT_EQ(FrameProfileViolation(pre, post, FrameProfile{.threads = true}), "");

  // Free-set changes are caught as one component, any size class.
  AbstractKernel freed = pre;
  freed.free_pages_2m.add(0x200000);
  EXPECT_EQ(FrameProfileViolation(pre, freed, FrameProfile{}), "free_sets");
  EXPECT_EQ(FrameProfileViolation(pre, freed, FrameProfile{.free_sets = true}), "");

  // Scheduler covers both run_queue and current.
  AbstractKernel dispatched = pre;
  dispatched.current = 0x1000;
  EXPECT_EQ(FrameProfileViolation(pre, dispatched, FrameProfile{}), "scheduler");
  EXPECT_EQ(FrameProfileViolation(pre, dispatched, FrameProfile{.scheduler = true}), "");
}

TEST(FrameProfileTest, TablePropertiesHold) {
  // Yield must not be able to touch memory; kills must be able to touch
  // object state; nothing less than KillContainer may touch the IOMMU
  // besides IPC delegation and the IOMMU calls themselves.
  EXPECT_FALSE(FrameProfileFor(SysOp::kYield).pages);
  EXPECT_FALSE(FrameProfileFor(SysOp::kMmap).threads);
  EXPECT_FALSE(FrameProfileFor(SysOp::kKillProcess).iommu);
  EXPECT_TRUE(FrameProfileFor(SysOp::kKillContainer).iommu);
  EXPECT_TRUE(FrameProfileFor(SysOp::kSend).iommu);  // domain delegation
  EXPECT_FALSE(FrameProfileFor(SysOp::kIommuAttachDevice).pages);

  // Every op that can allocate must also be allowed to change the free
  // sets and the page map together (allocation moves a page between them).
  for (SysOp op : {SysOp::kMmap, SysOp::kNewContainer, SysOp::kNewProcess, SysOp::kNewThread,
                   SysOp::kNewEndpoint, SysOp::kIommuCreateDomain, SysOp::kIommuMapDma}) {
    EXPECT_EQ(FrameProfileFor(op).pages, FrameProfileFor(op).free_sets)
        << "op " << SysOpName(op);
  }
}

}  // namespace
}  // namespace atmo
