// Application tests: Maglev hashing properties (full table, balance,
// minimal disruption, consistency), kv-store semantics and probe behaviour,
// httpd parsing and response generation.

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/apps/httpd.h"
#include "src/apps/kvstore.h"
#include "src/apps/maglev.h"

namespace atmo {
namespace {

// ---------------------------------------------------------------------------
// Maglev
// ---------------------------------------------------------------------------

Maglev MakeMaglev(int backends, std::uint32_t table_size = 4099) {
  Maglev lb(table_size);
  for (int i = 0; i < backends; ++i) {
    MaglevBackend backend;
    backend.name = "backend-" + std::to_string(i);
    backend.mac = MacAddr{0x02, 0, 0, 0, 0, static_cast<std::uint8_t>(i + 1)};
    backend.ip = 0x0a000100u + static_cast<std::uint32_t>(i);
    lb.AddBackend(backend);
  }
  lb.Populate();
  return lb;
}

TEST(MaglevTest, TableIsCompletelyFilled) {
  Maglev lb = MakeMaglev(5);
  for (int entry : lb.table()) {
    EXPECT_GE(entry, 0);
    EXPECT_LT(entry, 5);
  }
}

TEST(MaglevTest, SharesAreBalanced) {
  Maglev lb = MakeMaglev(7);
  std::vector<std::uint32_t> shares = lb.Shares();
  std::uint32_t lo = ~0u;
  std::uint32_t hi = 0;
  for (std::uint32_t share : shares) {
    lo = std::min(lo, share);
    hi = std::max(hi, share);
  }
  // The Maglev paper's guarantee: shares differ by at most ~1-2% of M/N.
  double mean = static_cast<double>(lb.table_size()) / 7.0;
  EXPECT_GT(lo, mean * 0.9);
  EXPECT_LT(hi, mean * 1.1);
}

TEST(MaglevTest, LookupIsDeterministic) {
  Maglev lb = MakeMaglev(4);
  FiveTuple flow{.src_ip = 0x01020304, .dst_ip = 0x0a000001, .src_port = 4242,
                 .dst_port = 80};
  int first = lb.Lookup(flow);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lb.Lookup(flow), first);
  }
}

TEST(MaglevTest, RemovalCausesMinimalDisruption) {
  Maglev lb = MakeMaglev(8, 65537);
  std::vector<int> before(lb.table());
  lb.SetHealthy("backend-3", false);
  lb.Populate();
  const std::vector<int>& after = lb.table();

  std::uint32_t moved_from_others = 0;
  std::uint32_t total_others = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == 3) {
      EXPECT_NE(after[i], 3) << "dead backend still referenced";
      continue;
    }
    ++total_others;
    if (after[i] != before[i]) {
      ++moved_from_others;
    }
  }
  // Consistent hashing: only a small fraction of entries that did NOT point
  // at the removed backend may move.
  EXPECT_LT(static_cast<double>(moved_from_others) / total_others, 0.05)
      << moved_from_others << " of " << total_others << " entries moved";
}

TEST(MaglevTest, ForwardPacketRewritesDestination) {
  Maglev lb = MakeMaglev(3);
  std::uint8_t frame[kMaxFrameLen];
  MacAddr src{0x02, 0, 0, 0, 0, 0x10};
  MacAddr vip_mac{0x02, 0, 0, 0, 0, 0x20};
  FiveTuple flow{.src_ip = 0x0b000001, .dst_ip = 0x0a0000fe, .src_port = 999, .dst_port = 80};
  std::size_t len = BuildUdpFrame(frame, src, vip_mac, flow, "req", 3);

  int backend = lb.ForwardPacket(frame, len);
  ASSERT_GE(backend, 0);
  auto parsed = ParseUdpFrame(frame, len);
  ASSERT_TRUE(parsed.has_value()) << "rewritten frame must still be valid";
  EXPECT_EQ(parsed->flow.dst_ip, lb.backend(backend).ip);
  EXPECT_EQ(parsed->dst_mac, lb.backend(backend).mac);
  EXPECT_EQ(parsed->flow.src_ip, flow.src_ip) << "source preserved";
}

TEST(MaglevTest, MalformedPacketIsDropped) {
  Maglev lb = MakeMaglev(3);
  std::uint8_t garbage[64] = {1, 2, 3};
  EXPECT_EQ(lb.ForwardPacket(garbage, sizeof(garbage)), -1);
}

// ---------------------------------------------------------------------------
// KvStore
// ---------------------------------------------------------------------------

TEST(KvStoreTest, SetGetDelRoundTrip) {
  KvStore store(1024);
  EXPECT_TRUE(store.Set("alpha", "one"));
  EXPECT_TRUE(store.Set("beta", "two"));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(*store.Get("alpha"), "one");
  EXPECT_EQ(*store.Get("beta"), "two");
  EXPECT_FALSE(store.Get("gamma").has_value());
  EXPECT_TRUE(store.Del("alpha"));
  EXPECT_FALSE(store.Get("alpha").has_value());
  EXPECT_FALSE(store.Del("alpha")) << "double delete misses";
  EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, OverwriteKeepsSizeStable) {
  KvStore store(64);
  EXPECT_TRUE(store.Set("k", "v1"));
  EXPECT_TRUE(store.Set("k", "v2"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(*store.Get("k"), "v2");
}

TEST(KvStoreTest, TombstonesDoNotBreakProbeChains) {
  KvStore store(8);
  // Fill several keys, delete one in the middle of a probe chain, and make
  // sure the others still resolve.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Set("key" + std::to_string(i), "v" + std::to_string(i)));
  }
  ASSERT_TRUE(store.Del("key2"));
  for (int i = 0; i < 5; ++i) {
    if (i == 2) {
      EXPECT_FALSE(store.Get("key2").has_value());
    } else {
      ASSERT_TRUE(store.Get("key" + std::to_string(i)).has_value()) << i;
    }
  }
  // Reinsertion reuses the tombstone.
  EXPECT_TRUE(store.Set("key2", "back"));
  EXPECT_EQ(*store.Get("key2"), "back");
}

TEST(KvStoreTest, RejectsOversizedKeysAndValues) {
  KvStore store(64);
  std::string big_key(kKvMaxKey + 1, 'k');
  std::string big_val(kKvMaxValue + 1, 'v');
  EXPECT_FALSE(store.Set(big_key, "v"));
  EXPECT_FALSE(store.Set("k", big_val));
  EXPECT_FALSE(store.Set("", "v"));
}

TEST(KvStoreTest, FillsToCapacityMinusOne) {
  KvStore store(16);
  int inserted = 0;
  for (int i = 0; i < 32; ++i) {
    if (store.Set("key" + std::to_string(i), "v")) {
      ++inserted;
    }
  }
  EXPECT_EQ(inserted, 15) << "one slot stays free so probes terminate";
  // Everything inserted is retrievable.
  for (int i = 0; i < inserted; ++i) {
    EXPECT_TRUE(store.Get("key" + std::to_string(i)).has_value()) << i;
  }
}

TEST(KvStoreTest, WireProtocolRoundTrip) {
  KvStore store(256);
  std::uint8_t req[128];
  std::uint8_t resp[64];

  std::size_t len = KvStore::BuildRequest(req, kKvSet, "name", "atmosphere");
  ASSERT_EQ(store.HandleRequest(req, len, resp), 2u);
  EXPECT_EQ(resp[0], kKvOk);

  len = KvStore::BuildRequest(req, kKvGet, "name", "");
  std::size_t rlen = store.HandleRequest(req, len, resp);
  ASSERT_EQ(rlen, 2u + 10u);
  EXPECT_EQ(resp[0], kKvOk);
  EXPECT_EQ(resp[1], 10);
  EXPECT_EQ(std::memcmp(resp + 2, "atmosphere", 10), 0);

  len = KvStore::BuildRequest(req, kKvDel, "name", "");
  ASSERT_EQ(store.HandleRequest(req, len, resp), 2u);
  EXPECT_EQ(resp[0], kKvOk);

  len = KvStore::BuildRequest(req, kKvGet, "name", "");
  store.HandleRequest(req, len, resp);
  EXPECT_EQ(resp[0], kKvMiss);
}

TEST(KvStoreTest, MalformedRequestsAreRejected) {
  KvStore store(64);
  std::uint8_t resp[64];
  std::uint8_t truncated[2] = {kKvGet, 5};
  EXPECT_EQ(store.HandleRequest(truncated, 2, resp), 2u);
  EXPECT_EQ(resp[0], kKvBadRequest);
  std::uint8_t bad_lens[8] = {kKvGet, 200, 0, 'a'};
  store.HandleRequest(bad_lens, 8, resp);
  EXPECT_EQ(resp[0], kKvBadRequest);
  std::uint8_t bad_op[8] = {99, 1, 0, 'a'};
  store.HandleRequest(bad_op, 8, resp);
  EXPECT_EQ(resp[0], kKvBadRequest);
}

TEST(KvStoreTest, LargePopulationRetrievesEverything) {
  KvStore store(1 << 16);
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(store.Set("key-" + std::to_string(i), "val-" + std::to_string(i % 97)));
  }
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; i += 997) {
    auto hit = store.Get("key-" + std::to_string(i));
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(*hit, "val-" + std::to_string(i % 97));
  }
}

// ---------------------------------------------------------------------------
// Httpd
// ---------------------------------------------------------------------------

TEST(HttpdTest, ParsesWellFormedRequest) {
  HttpRequest req;
  ASSERT_TRUE(Httpd::ParseRequest(
      "GET /index.html HTTP/1.1\r\nHost: example.com\r\nConnection: close\r\n\r\n", &req));
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/index.html");
  EXPECT_EQ(req.host, "example.com");
  EXPECT_FALSE(req.keep_alive);
}

TEST(HttpdTest, RejectsMalformedRequests) {
  HttpRequest req;
  EXPECT_FALSE(Httpd::ParseRequest("", &req));
  EXPECT_FALSE(Httpd::ParseRequest("GET\r\n", &req));
  EXPECT_FALSE(Httpd::ParseRequest("GET /\r\n", &req));
  EXPECT_FALSE(Httpd::ParseRequest("GET / SPDY/3\r\n", &req));
  EXPECT_FALSE(Httpd::ParseRequest("GET noslash HTTP/1.1\r\n", &req));
}

TEST(HttpdTest, ServesRegisteredPage) {
  Httpd server;
  server.AddPage("/", "text/html", "<html>hi</html>");
  std::uint8_t resp[512];
  const char req[] = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  std::size_t len = server.HandleRequest(reinterpret_cast<const std::uint8_t*>(req),
                                         sizeof(req) - 1, resp, sizeof(resp));
  std::string text(reinterpret_cast<char*>(resp), len);
  EXPECT_NE(text.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(text.find("Content-Length: 15"), std::string::npos);
  EXPECT_NE(text.find("<html>hi</html>"), std::string::npos);
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(HttpdTest, Returns404ForUnknownPath) {
  Httpd server;
  server.AddPage("/", "text/html", "x");
  std::uint8_t resp[512];
  const char req[] = "GET /missing HTTP/1.1\r\n\r\n";
  std::size_t len = server.HandleRequest(reinterpret_cast<const std::uint8_t*>(req),
                                         sizeof(req) - 1, resp, sizeof(resp));
  EXPECT_NE(std::string(reinterpret_cast<char*>(resp), len).find("404"), std::string::npos);
  EXPECT_EQ(server.errors(), 1u);
}

TEST(HttpdTest, Returns405ForPost) {
  Httpd server;
  server.AddPage("/", "text/html", "x");
  std::uint8_t resp[512];
  const char req[] = "POST / HTTP/1.1\r\n\r\n";
  std::size_t len = server.HandleRequest(reinterpret_cast<const std::uint8_t*>(req),
                                         sizeof(req) - 1, resp, sizeof(resp));
  EXPECT_NE(std::string(reinterpret_cast<char*>(resp), len).find("405"), std::string::npos);
}

TEST(HttpdTest, HeadOmitsBody) {
  Httpd server;
  server.AddPage("/", "text/html", "BODYBYTES");
  std::uint8_t resp[512];
  const char req[] = "HEAD / HTTP/1.1\r\n\r\n";
  std::size_t len = server.HandleRequest(reinterpret_cast<const std::uint8_t*>(req),
                                         sizeof(req) - 1, resp, sizeof(resp));
  std::string text(reinterpret_cast<char*>(resp), len);
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_EQ(text.find("BODYBYTES"), std::string::npos);
}

}  // namespace
}  // namespace atmo
