// atmo::obs unit tests: flight-recorder ring semantics, the thread-local
// recorder plumbing the instrumentation macros rely on, span lifetime
// (including exception unwind — the property sweep forensics depends on),
// histogram bucket boundaries and percentile extraction, the JSON writer,
// and the Chrome-trace / metrics exporters.

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/alloc_hook.h"
#include "src/obs/copy_probe.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/sampler.h"
#include "src/obs/trace_event.h"

namespace atmo::obs {
namespace {

TraceEvent Named(const char* name) { return TraceEvent{.name = name, .cat = kCatSweep}; }

// --- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorderTest, RecordsInOrderBeforeWrap) {
  FlightRecorder rec(4, ClockMode::kVirtual, /*tid=*/7);
  rec.Record(Named("a"));
  rec.Record(Named("b"));
  rec.Record(Named("c"));
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.recorded(), 3u);
  EXPECT_EQ(rec.dropped(), 0u);

  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_STREQ(events[2].name, "c");
  // The recorder stamps its tid onto every event.
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.tid, 7u);
  }
}

TEST(FlightRecorderTest, WrapKeepsNewestAndCountsDropped) {
  FlightRecorder rec(3, ClockMode::kVirtual);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4"};
  for (const char* n : names) {
    rec.Record(Named(n));
  }
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 2u);

  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[1].name, "e3");
  EXPECT_STREQ(events[2].name, "e4");
}

TEST(FlightRecorderTest, TailReturnsNewestOldestFirst) {
  FlightRecorder rec(8, ClockMode::kVirtual);
  const char* names[] = {"e0", "e1", "e2", "e3", "e4"};
  for (const char* n : names) {
    rec.Record(Named(n));
  }
  std::vector<TraceEvent> tail = rec.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_STREQ(tail[0].name, "e3");
  EXPECT_STREQ(tail[1].name, "e4");

  // Tail larger than the ring contents degrades to a full snapshot.
  EXPECT_EQ(rec.Tail(100), rec.Snapshot());
  // Tail across a wrap still comes back oldest first.
  for (int i = 0; i < 10; ++i) {
    rec.Record(Named("late"));
  }
  std::vector<TraceEvent> wrapped = rec.Tail(3);
  ASSERT_EQ(wrapped.size(), 3u);
  EXPECT_GT(wrapped[0].ts, 0u);
  EXPECT_LT(wrapped[0].ts, wrapped[1].ts);
  EXPECT_LT(wrapped[1].ts, wrapped[2].ts);
}

TEST(FlightRecorderTest, VirtualClockIsMonotonicFromZero) {
  FlightRecorder rec(16, ClockMode::kVirtual);
  for (int i = 0; i < 5; ++i) {
    rec.Record(Named("tick"));
  }
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].ts, i);
  }
}

TEST(FlightRecorderTest, TwoVirtualRecordersProduceIdenticalTraces) {
  // The property the 1-worker ≡ 8-worker sweep identity rests on: the same
  // event sequence through two virtual-clock recorders is bit-identical.
  FlightRecorder a(8, ClockMode::kVirtual, /*tid=*/3);
  FlightRecorder b(8, ClockMode::kVirtual, /*tid=*/3);
  for (const char* n : {"x", "y", "z"}) {
    a.Record(Named(n));
    b.Record(Named(n));
  }
  EXPECT_EQ(a.Snapshot(), b.Snapshot());
}

TEST(FlightRecorderTest, ClearEmptiesRingButKeepsTotals) {
  FlightRecorder rec(4, ClockMode::kVirtual);
  rec.Record(Named("a"));
  rec.Record(Named("b"));
  rec.Clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_TRUE(rec.Tail(4).empty());
}

// --- Thread-local recorder + spans ------------------------------------------

#if !defined(ATMO_OBS_DISABLED)
TEST(ScopedThreadRecorderTest, InstallsAndRestoresWithNesting) {
  EXPECT_EQ(CurrentRecorder(), nullptr);
  FlightRecorder outer(8, ClockMode::kVirtual);
  {
    ScopedThreadRecorder install_outer(&outer);
    EXPECT_EQ(CurrentRecorder(), &outer);
    FlightRecorder inner(8, ClockMode::kVirtual);
    {
      ScopedThreadRecorder install_inner(&inner);
      EXPECT_EQ(CurrentRecorder(), &inner);
      ATMO_OBS_INSTANT(kCatSweep, "into.inner");
    }
    EXPECT_EQ(CurrentRecorder(), &outer);
    ATMO_OBS_INSTANT(kCatSweep, "into.outer");
    ASSERT_EQ(inner.size(), 1u);
    EXPECT_STREQ(inner.Snapshot()[0].name, "into.inner");
    ASSERT_EQ(outer.size(), 1u);
    EXPECT_STREQ(outer.Snapshot()[0].name, "into.outer");
  }
  EXPECT_EQ(CurrentRecorder(), nullptr);
}
#endif  // !ATMO_OBS_DISABLED

#if !defined(ATMO_OBS_DISABLED)
TEST(ObsSpanTest, EmitsBeginEndPairWithArgs) {
  FlightRecorder rec(8, ClockMode::kVirtual);
  {
    ScopedThreadRecorder install(&rec);
    ObsSpan span(kCatSyscall, "sys.mmap", "frames", 4);
    span.SetResult("error", "kOk");
  }
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_STREQ(events[0].name, "sys.mmap");
  EXPECT_STREQ(events[0].arg_name, "frames");
  EXPECT_EQ(events[0].arg, 4u);
  EXPECT_EQ(events[1].ph, 'E');
  EXPECT_STREQ(events[1].name, "sys.mmap");
  EXPECT_STREQ(events[1].sarg_name, "error");
  EXPECT_STREQ(events[1].sarg, "kOk");
  EXPECT_LE(events[0].ts, events[1].ts);
}
#endif  // !ATMO_OBS_DISABLED

#if !defined(ATMO_OBS_DISABLED)
TEST(ObsSpanTest, ClosesDuringExceptionUnwind) {
  // A refinement CheckViolation thrown mid-syscall must still close the
  // enclosing span, or forensic tails would show dangling 'B' events.
  FlightRecorder rec(8, ClockMode::kVirtual);
  {
    ScopedThreadRecorder install(&rec);
    try {
      ObsSpan span(kCatSyscall, "sys.fail");
      throw std::runtime_error("violation");
    } catch (const std::runtime_error&) {
    }
  }
  std::vector<TraceEvent> events = rec.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].ph, 'B');
  EXPECT_EQ(events[1].ph, 'E');
  EXPECT_STREQ(events[1].name, "sys.fail");
}
#endif  // !ATMO_OBS_DISABLED

TEST(ObsSpanTest, NoRecorderMeansNoRecording) {
  ASSERT_EQ(CurrentRecorder(), nullptr);
  ObsSpan span(kCatSyscall, "sys.noop");
  span.SetResult("error", "kOk");
  ATMO_OBS_INSTANT(kCatSweep, "nobody.listening");
  ATMO_OBS_COUNTER(kCatSweep, "nothing", 1);
  // Nothing to assert beyond "did not crash": the disabled path is a null
  // check per site.
}

#if !defined(ATMO_OBS_DISABLED)
TEST(ObsSpanTest, CapturesRecorderAtConstruction) {
  // A span records its 'E' into the recorder that was current at 'B' time,
  // even if the thread's recorder changes mid-span.
  FlightRecorder first(8, ClockMode::kVirtual);
  FlightRecorder second(8, ClockMode::kVirtual);
  ScopedThreadRecorder install_first(&first);
  {
    ObsSpan span(kCatCheck, "check.crossing");
    ScopedThreadRecorder install_second(&second);
  }
  EXPECT_EQ(first.size(), 2u);
  EXPECT_EQ(second.size(), 0u);
}
#endif  // !ATMO_OBS_DISABLED

TEST(EnableFlagTest, SetEnabledRoundTrips) {
  bool initial = Enabled();
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  SetEnabled(initial);
}

// --- Histogram ---------------------------------------------------------------

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds exactly 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::BucketOf(0), 0);
  EXPECT_EQ(Histogram::BucketOf(1), 1);
  EXPECT_EQ(Histogram::BucketOf(2), 2);
  EXPECT_EQ(Histogram::BucketOf(3), 2);
  EXPECT_EQ(Histogram::BucketOf(4), 3);
  EXPECT_EQ(Histogram::BucketOf(7), 3);
  EXPECT_EQ(Histogram::BucketOf(8), 4);
  EXPECT_EQ(Histogram::BucketOf(~std::uint64_t{0}), 64);

  EXPECT_EQ(Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketLowerBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketLowerBound(4), 8u);
  EXPECT_EQ(Histogram::BucketUpperBound(4), 15u);
  EXPECT_EQ(Histogram::BucketLowerBound(64), std::uint64_t{1} << 63);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~std::uint64_t{0});

  // Every power-of-two edge: BucketOf(2^k) == k+1, BucketOf(2^k - 1) == k.
  for (int k = 1; k < 64; ++k) {
    std::uint64_t edge = std::uint64_t{1} << k;
    EXPECT_EQ(Histogram::BucketOf(edge), k + 1) << "k=" << k;
    EXPECT_EQ(Histogram::BucketOf(edge - 1), k) << "k=" << k;
    EXPECT_EQ(Histogram::BucketLowerBound(k + 1), edge) << "k=" << k;
    EXPECT_EQ(Histogram::BucketUpperBound(k), edge - 1) << "k=" << k;
  }
}

TEST(HistogramTest, ObserveTracksStats) {
  Histogram h;
  for (std::uint64_t v : {0, 1, 2, 3, 100}) {
    h.Observe(v);
  }
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 106.0 / 5.0);
  EXPECT_EQ(h.bucket_count(0), 1u);  // 0
  EXPECT_EQ(h.bucket_count(1), 1u);  // 1
  EXPECT_EQ(h.bucket_count(2), 2u);  // 2, 3
  EXPECT_EQ(h.bucket_count(7), 1u);  // 100 in [64, 127]
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0u);
}

TEST(HistogramTest, PercentileReportsBucketUpperBound) {
  Histogram h;
  // 90 fast observations in [8, 15], 10 slow in [1024, 2047].
  for (int i = 0; i < 90; ++i) {
    h.Observe(10);
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(1500);
  }
  EXPECT_EQ(h.Percentile(0.0), 15u);   // first non-empty bucket's bound
  EXPECT_EQ(h.Percentile(0.5), 15u);
  EXPECT_EQ(h.Percentile(0.9), 15u);   // exactly the 90th sample
  EXPECT_EQ(h.Percentile(0.95), 2047u);
  EXPECT_EQ(h.Percentile(0.99), 2047u);
  EXPECT_EQ(h.Percentile(1.0), 2047u);
}

TEST(HistogramTest, SingleValuePercentiles) {
  Histogram h;
  h.Observe(42);  // bucket 6 = [32, 63]
  for (double p : {0.0, 0.5, 0.95, 1.0}) {
    EXPECT_EQ(h.Percentile(p), 63u) << "p=" << p;
  }
}

TEST(HistogramTest, OverflowReportsObservedMaxNotBucketBound) {
  Histogram h;
  const std::uint64_t big = (std::uint64_t{1} << 63) + 12345;
  h.Observe(10);
  h.Observe(big);
  EXPECT_EQ(Histogram::BucketOf(big), Histogram::kOverflowBucket);
  EXPECT_EQ(h.overflow_count(), 1u);
  // Bounded buckets keep reporting their upper bound...
  EXPECT_EQ(h.Percentile(0.5), 15u);
  // ...but a quantile landing in the overflow bucket reports the observed
  // max, not the bucket's formal ~0 bound (which would over-report the
  // sample by nine orders of magnitude here).
  EXPECT_EQ(h.Percentile(1.0), big);
  h.Observe(~std::uint64_t{0});
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.Percentile(1.0), ~std::uint64_t{0});
}

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, ResolvesByNameAndAccumulates) {
  MetricsRegistry reg;
  reg.counter("steps").Add(3);
  reg.counter("steps").Add();
  reg.gauge("workers").Set(8.0);
  reg.histogram("lat").Observe(7);
  EXPECT_EQ(reg.counter("steps").value(), 4u);
  EXPECT_DOUBLE_EQ(reg.gauge("workers").value(), 8.0);
  EXPECT_EQ(reg.histogram("lat").count(), 1u);
  EXPECT_EQ(reg.counters().size(), 1u);
}

// --- JsonWriter --------------------------------------------------------------

TEST(JsonWriterTest, NestedStructureAndCommas) {
  JsonWriter w;
  w.BeginObject();
  w.KV("name", "bench");
  w.KV("ok", true);
  w.Key("rows").BeginArray();
  w.BeginObject().KV("ops", std::uint64_t{12}).KV("rate", 1.25, "%.2f").EndObject();
  w.BeginObject().KV("ops", std::uint64_t{7}).EndObject();
  w.EndArray();
  w.Key("none").Null();
  w.KV("delta", std::uint32_t{9});
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"bench\",\"ok\":true,\"rows\":"
            "[{\"ops\":12,\"rate\":1.25},{\"ops\":7}],"
            "\"none\":null,\"delta\":9}");
}

TEST(JsonWriterTest, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::Escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonWriter::Escape(std::string("a\x01z")), "a\\u0001z");

  JsonWriter w;
  w.BeginObject().KV("msg", "say \"hi\"\n").EndObject();
  EXPECT_EQ(w.str(), "{\"msg\":\"say \\\"hi\\\"\\n\"}");
}

TEST(JsonWriterTest, IntAndDoubleFormats) {
  JsonWriter w;
  w.BeginArray();
  w.Int(-5).Uint(~std::uint64_t{0}).Double(0.5).Double(3.14159, "%.3f");
  w.EndArray();
  EXPECT_EQ(w.str(), "[-5,18446744073709551615,0.5,3.142]");
}

// --- Exporters ---------------------------------------------------------------

#if !defined(ATMO_OBS_DISABLED)
TEST(ExportersTest, ChromeTraceJsonShape) {
  FlightRecorder rec(8, ClockMode::kVirtual, /*tid=*/2);
  {
    ScopedThreadRecorder install(&rec);
    ObsSpan span(kCatSyscall, "sys.yield");
    span.SetResult("error", "kOk");
    ATMO_OBS_INSTANT_ARG(kCatAlloc, "alloc.4k", "ptr", 0x1000);
    ATMO_OBS_COUNTER(kCatSweep, "steps", 17);
  }
  std::string json = ChromeTraceJson(rec.Snapshot(), "test-proc");

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // Metadata event names the process for Perfetto's track grouping.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"test-proc\""), std::string::npos);
  // The span pair, with the string result on the 'E' side.
  EXPECT_NE(json.find("\"name\":\"sys.yield\",\"cat\":\"syscall\",\"ph\":\"B\""),
            std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"error\":\"kOk\""), std::string::npos);
  // Instant and counter events with integer args.
  EXPECT_NE(json.find("\"name\":\"alloc.4k\""), std::string::npos);
  EXPECT_NE(json.find("\"ptr\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":17"), std::string::npos);
  // Everything rides the recorder's tid lane.
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_EQ(json.find("\"tid\":0,"), std::string::npos);
}
#endif  // !ATMO_OBS_DISABLED

TEST(ExportersTest, ChromeTraceJsonEmptyTrace) {
  std::string json = ChromeTraceJson({});
  // Still a valid document with the metadata event only.
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"B\""), std::string::npos);
}

TEST(ExportersTest, MetricsJsonShape) {
  MetricsRegistry reg;
  reg.counter("check.steps").Add(100);
  reg.gauge("sweep.workers").Set(4.0);
  Histogram& h = reg.histogram("sweep.shard_steps");
  h.Observe(0);
  h.Observe(10);
  h.Observe(10);
  std::string json = MetricsJson(reg);

  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"check.steps\":100"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"sweep.workers\":4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sum\":20"), std::string::npos);
  EXPECT_NE(json.find("\"min\":0"), std::string::npos);
  EXPECT_NE(json.find("\"max\":10"), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Only the non-empty buckets are listed: value 0 -> le 0, value 10 -> le 15.
  EXPECT_NE(json.find("\"le\":0"), std::string::npos);
  EXPECT_NE(json.find("\"le\":15"), std::string::npos);
  EXPECT_EQ(json.find("\"le\":1,"), std::string::npos);
  // The overflow count is always surfaced, zero here.
  EXPECT_NE(json.find("\"overflow\":0"), std::string::npos);
}

TEST(ExportersTest, HistogramOverflowSurfacedSeparately) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat");
  const std::uint64_t big = (std::uint64_t{1} << 63) + 7;
  h.Observe(3);
  for (int i = 0; i < 3; ++i) {
    h.Observe(big);
  }
  std::string json = MetricsJson(reg);
  EXPECT_NE(json.find("\"overflow\":3"), std::string::npos);
  // The overflow bucket does not masquerade as a bounded bucket with
  // le = 2^64 - 1 ...
  EXPECT_EQ(json.find("\"le\":18446744073709551615"), std::string::npos);
  // ... and percentiles landing in it report the observed max.
  EXPECT_NE(json.find("\"p99\":" + std::to_string(big)), std::string::npos);
}

// --- Sampler -----------------------------------------------------------------

// One body for both build modes, like ProbeShellTest below: with the sampler
// compiled in, one request in N gets a fresh nonzero id; under
// ATMO_OBS_DISABLED the shells return zeros and count nothing.
TEST(SamplerTest, OneInNWithFirstRequestSampled) {
  ResetSamplerForTest();
  SetTraceSamplePeriod(4);
  if (TraceSamplePeriod() == 0) {
    // ATMO_OBS_DISABLED shell: every entry point reads zero.
    EXPECT_EQ(NextTraceId(), 0u);
    EXPECT_EQ(SamplerSampledCount(), 0u);
    EXPECT_EQ(SamplerDroppedCount(), 0u);
    return;
  }
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(NextTraceId());
  }
  // The bucket starts with a token, so requests 0 and 4 are the sampled ones.
  EXPECT_NE(ids[0], 0u);
  EXPECT_NE(ids[4], 0u);
  EXPECT_NE(ids[0], ids[4]);
  for (int i : {1, 2, 3, 5, 6, 7}) {
    EXPECT_EQ(ids[i], 0u) << "i=" << i;
  }
  EXPECT_EQ(SamplerSampledCount(), 2u);
  EXPECT_EQ(SamplerDroppedCount(), 6u);
  ResetSamplerForTest();
}

TEST(SamplerTest, PeriodZeroTurnsSamplingOff) {
  ResetSamplerForTest();
  SetTraceSamplePeriod(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(NextTraceId(), 0u);
  }
  EXPECT_EQ(SamplerSampledCount(), 0u);
  // Off is not "dropping": nothing counts as dropped either.
  EXPECT_EQ(SamplerDroppedCount(), 0u);
  ResetSamplerForTest();
}

#if !defined(ATMO_OBS_DISABLED)
TEST(SamplerTest, EnvConfiguresPeriodLazily) {
  ::setenv("ATMO_TRACE_SAMPLE", "3", 1);
  ResetSamplerForTest();  // the next period read re-parses the environment
  EXPECT_EQ(TraceSamplePeriod(), 3u);
  ::unsetenv("ATMO_TRACE_SAMPLE");
  ResetSamplerForTest();
  EXPECT_EQ(TraceSamplePeriod(), 64u);  // unset -> compiled-in default
  ResetSamplerForTest();
}

TEST(SamplerTest, EveryThreadsFirstRequestIsSampledConcurrently) {
  // Eight threads race the sampler. Each thread's bucket starts with a
  // token (first request sampled), ids stay process-unique, and the shared
  // sampled/dropped totals stay exact — this is the test the tsan CI job
  // leans on for the sampler's relaxed atomics.
  ResetSamplerForTest();
  SetTraceSamplePeriod(1u << 20);  // only first requests get tokens
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::uint64_t> first(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&first, t] {
      first[static_cast<std::size_t>(t)] = NextTraceId();
      for (int i = 1; i < kPerThread; ++i) {
        NextTraceId();
      }
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  std::sort(first.begin(), first.end());
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(first[static_cast<std::size_t>(t)], 0u) << "t=" << t;
    if (t > 0) {
      EXPECT_NE(first[static_cast<std::size_t>(t)],
                first[static_cast<std::size_t>(t - 1)]);
    }
  }
  EXPECT_EQ(SamplerSampledCount(), static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(SamplerDroppedCount(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread - 1));
  ResetSamplerForTest();
}
#endif  // !ATMO_OBS_DISABLED

// --- Probe concurrency -------------------------------------------------------

// Eight shard-like threads hammer CopyProbe/AllocProbe concurrently. The
// counters are thread-local by design, so each shard must see exactly its
// own work and nothing from its neighbours; the tsan CI job runs this to
// verify there is no shared mutable state behind the probes.
TEST(ProbeConcurrencyTest, EightShardsCountIndependently) {
  constexpr int kShards = 8;
  constexpr int kIters = 256;
  constexpr std::size_t kCopyBytes = 64;
  std::vector<std::uint64_t> copies(kShards, ~0ull);
  std::vector<std::uint64_t> bytes(kShards, ~0ull);
  std::vector<std::uint64_t> allocs(kShards, ~0ull);
  std::vector<std::thread> threads;
  threads.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    threads.emplace_back([&, s] {
      std::size_t shard = static_cast<std::size_t>(s);
      CopyProbe copy_probe;
      AllocProbe heap_probe;
      unsigned char dst[kCopyBytes];
      unsigned char src[kCopyBytes] = {static_cast<unsigned char>(s + 1)};
      for (int i = 0; i < kIters; ++i) {
        CopyPayload(dst, src, kCopyBytes);
        std::vector<int> scratch(4, i);  // guaranteed heap traffic per iteration
        ASSERT_EQ(scratch[0], i);
      }
      ASSERT_EQ(dst[0], src[0]);
      copies[shard] = copy_probe.copies();
      bytes[shard] = copy_probe.bytes();
      allocs[shard] = heap_probe.allocs();
    });
  }
  for (std::thread& th : threads) {
    th.join();
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    if (PayloadCountingActive()) {
      EXPECT_EQ(copies[s], static_cast<std::uint64_t>(kIters)) << "shard " << s;
      EXPECT_EQ(bytes[s], static_cast<std::uint64_t>(kIters) * kCopyBytes)
          << "shard " << s;
    } else {
      EXPECT_EQ(copies[s], 0u) << "shard " << s;
      EXPECT_EQ(bytes[s], 0u) << "shard " << s;
    }
    if (HeapCountingActive()) {
      // At least one allocation per scratch vector, none leaked across shards
      // (a shared counter would let a neighbour's traffic inflate this).
      EXPECT_GE(allocs[s], static_cast<std::uint64_t>(kIters)) << "shard " << s;
    } else {
      EXPECT_EQ(allocs[s], 0u) << "shard " << s;
    }
  }
}

// --- Probe shells under ATMO_OBS_DISABLED -----------------------------------

// One test body for both build modes: with counting compiled in, the probes
// observe the injected allocation/copy; in an ATMO_OBS_DISABLED build the
// shells still link, CopyPayload still moves the bytes, and every counter
// reads zero. CI compiles the disabled configuration to keep both halves
// honest (ci/run_tests.sh).
TEST(ProbeShellTest, ProbesCountWhenActiveAndReadZeroWhenDisabled) {
  AllocProbe heap;
  std::vector<int> scratch;
  scratch.push_back(1);
  if (HeapCountingActive()) {
    EXPECT_GT(heap.allocs(), 0u);
    EXPECT_GT(heap.bytes(), 0u);
  } else {
    EXPECT_EQ(heap.allocs(), 0u);
    EXPECT_EQ(heap.bytes(), 0u);
    EXPECT_EQ(HeapAllocCount(), 0u);
    EXPECT_EQ(HeapFreeCount(), 0u);
  }

  CopyProbe copies;
  unsigned char dst[16];
  unsigned char src[16] = {7};
  CopyPayload(dst, src, sizeof(dst));
  EXPECT_EQ(dst[0], src[0]);  // the copy itself happens in both builds
  if (PayloadCountingActive()) {
    EXPECT_EQ(copies.copies(), 1u);
    EXPECT_EQ(copies.bytes(), sizeof(dst));
  } else {
    EXPECT_EQ(copies.copies(), 0u);
    EXPECT_EQ(copies.bytes(), 0u);
    EXPECT_EQ(PayloadCopyCount(), 0u);
    EXPECT_EQ(PayloadBytesCopied(), 0u);
  }
}

}  // namespace
}  // namespace atmo::obs
