// Verified development workflow: what the paper's "interactive development
// cycle with a verifier" feels like in the executable model. A deliberately
// buggy kernel mutation is introduced (the kind of pointer/ghost bug Verus
// rejects at compile time), and the refinement harness catches it at the
// next step — then the "fix" lands and verification goes green.
//
//   $ ./build/examples/verified_development

#include <cstdio>

#include "src/core/kernel.h"
#include "src/verif/invariant_registry.h"
#include "src/verif/refinement_checker.h"
#include "src/vstd/check.h"

using namespace atmo;

int main() {
  std::printf("== Verified development cycle ==\n\n");

  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  RefinementChecker checker(&kernel);

  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);

  Syscall mmap;
  mmap.op = SysOp::kMmap;
  mmap.va_range = VaRange{0x400000, 2, PageSize::k4K};
  mmap.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = false};
  checker.Step(thrd.value, mmap);
  std::printf("step 1: mmap verified OK (%llu steps checked)\n",
              static_cast<unsigned long long>(checker.steps_checked()));

  // --- Introduce the bug: skew the container's ghost accounting, the kind
  // of bookkeeping error a hand-written kernel ships and a verified one
  // cannot. ---
  std::printf("\nintroducing a bug: container mem_used forged from %llu to 1\n",
              static_cast<unsigned long long>(kernel.pm().GetContainer(ctnr.value).mem_used));
  std::uint64_t saved = kernel.pm().GetContainer(ctnr.value).mem_used;
  kernel.pm_mut().MutableContainer(ctnr.value).mem_used = 1;

  bool caught = false;
  std::string detail;
  {
    ScopedThrowOnCheckFailure guard;
    try {
      Syscall yield;
      yield.op = SysOp::kYield;
      checker.Step(thrd.value, yield);
    } catch (const CheckViolation& violation) {
      caught = true;
      detail = violation.event().message;
    }
  }
  std::printf("verifier verdict: %s\n", caught ? "REJECTED" : "accepted (!!)");
  if (caught) {
    std::printf("  %s\n", detail.substr(0, 96).c_str());
  }

  // --- Fix the bug, re-verify. ---
  kernel.pm_mut().MutableContainer(ctnr.value).mem_used = saved;
  std::printf("\nbug fixed; re-running the whole obligation suite:\n");
  InvariantRegistry suite = InvariantRegistry::StandardSuite();
  SuiteReport report = suite.RunAll(kernel, 1);
  for (const CheckOutcome& outcome : report.outcomes) {
    std::printf("  %-28s %s\n", outcome.name.c_str(), outcome.ok ? "ok" : "FAILED");
  }
  std::printf("suite wall time: %.3f ms — \"it takes less time to finish verification\n",
              report.wall_seconds * 1e3);
  std::printf("than compiling the kernel\" (§1)\n");
  return caught && report.AllOk() ? 0 : 1;
}
