// Quickstart: boot the Atmosphere kernel, create a container with a process
// and two threads, map memory, exchange an IPC message with a page grant —
// every step checked against the abstract specification by the refinement
// harness.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/kernel.h"
#include "src/verif/refinement_checker.h"

using namespace atmo;

int main() {
  std::printf("== Atmosphere quickstart ==\n\n");

  // 1. Boot a 32 MiB machine.
  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  std::printf("booted: %llu frames, root container at %#llx\n",
              static_cast<unsigned long long>(config.frames),
              static_cast<unsigned long long>(kernel.root_container()));

  // 2. Wrap the kernel in the refinement checker: every Step() is now
  // validated against the per-syscall abstract specification and the
  // whole-kernel well-formedness theorem.
  RefinementChecker checker(&kernel);

  // 3. Trusted init: one container, one process, two threads.
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), /*quota=*/1024, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto alice = kernel.BootCreateThread(proc.value);
  auto bob = kernel.BootCreateThread(proc.value);
  std::printf("container quota: %llu pages\n",
              static_cast<unsigned long long>(kernel.pm().GetContainer(ctnr.value).mem_quota));

  // 4. Alice maps four pages of memory.
  Syscall mmap;
  mmap.op = SysOp::kMmap;
  mmap.va_range = VaRange{0x400000, 4, PageSize::k4K};
  mmap.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = false};
  SyscallRet ret = checker.Step(alice.value, mmap);
  std::printf("mmap(0x400000, 4 pages) -> %s (%llu pages)\n", SysErrorName(ret.error),
              static_cast<unsigned long long>(ret.value));

  // The MMU agrees with the abstract address space (the refinement theorem
  // in action).
  auto walk = kernel.mmu().Walk(kernel.vm().TableOf(proc.value).cr3(), 0x400000 + 123);
  std::printf("MMU walk(0x40007b) -> physical %#llx\n",
              static_cast<unsigned long long>(walk->paddr));

  // 5. Alice creates an endpoint; trusted init hands Bob the other end.
  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet edpt = checker.Step(alice.value, ne);
  kernel.pm_mut().BindEndpoint(bob.value, 0, edpt.value);

  // 6. Bob waits; Alice sends him a page of her memory (shared mapping).
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  checker.Step(bob.value, recv);

  Syscall send;
  send.op = SysOp::kSend;
  send.edpt_idx = 0;
  send.payload.scalars = {42, 0, 0, 0};
  send.payload.page = PageGrant{.page = 0x400000,  // Alice's VA
                                .size = PageSize::k4K,
                                .dest_va = 0x900000,  // where Bob receives it
                                .perm = mmap.map_perm};
  ret = checker.Step(alice.value, send);
  std::printf("send(scalar 42 + page grant) -> %s\n", SysErrorName(ret.error));

  auto inbound = kernel.TakeInbound(bob.value);
  std::printf("bob received scalar %llu, page mapped at %#llx (map count %u)\n",
              static_cast<unsigned long long>(inbound->scalars[0]),
              static_cast<unsigned long long>(0x900000),
              kernel.alloc().MapCount(kernel.vm().Resolve(proc.value, 0x900000)->addr));

  // 7. The well-formedness theorem holds for the final state.
  InvResult wf = kernel.TotalWf();
  std::printf("\ntotal_wf() after %llu verified steps: %s\n",
              static_cast<unsigned long long>(checker.steps_checked()),
              wf.ok ? "HOLDS" : wf.detail.c_str());
  return wf.ok ? 0 : 1;
}
