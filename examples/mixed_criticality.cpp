// Mixed-criticality isolation (§4.3, Figure 1): two mutually distrusting
// containers A and B, completely isolated by the kernel, each communicating
// with a verified shared-service container V. The example runs an
// adversarial campaign from A and B (arbitrary syscalls with hostile
// arguments) and continuously checks the unwinding conditions of the
// noninterference theorem, then crashes B and shows V releasing every
// resource it had received from it.
//
//   $ ./build/examples/mixed_criticality

#include <cstdio>

#include "src/sec/abv_scenario.h"
#include "src/sec/isolation.h"
#include "src/sec/noninterference.h"
#include "src/sec/verified_proxy.h"

using namespace atmo;

int main() {
  std::printf("== Mixed-criticality deployment: A | V | B ==\n\n");

  BootConfig config;
  config.frames = 4096;
  config.reserved_frames = 16;
  AbvScenario scenario = AbvScenario::Build(config, /*quota_a=*/512, /*quota_b=*/512,
                                            /*quota_v=*/512);
  Kernel& kernel = scenario.kernel;
  std::printf("containers: A=%#llx  B=%#llx  V=%#llx\n",
              static_cast<unsigned long long>(scenario.a),
              static_cast<unsigned long long>(scenario.b),
              static_cast<unsigned long long>(scenario.v));

  // A shares a page with V through its channel; V records it.
  VerifiedProxy proxy(&kernel, scenario);
  {
    Syscall mmap;
    mmap.op = SysOp::kMmap;
    mmap.va_range = VaRange{0x400000, 1, PageSize::k4K};
    mmap.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = false};
    kernel.Step(scenario.b_threads[0], mmap);

    Syscall share;
    share.op = SysOp::kSend;
    share.edpt_idx = AbvScenario::kClientSlot;
    share.payload.scalars = {kOpShare, 0, 0, 0};
    share.payload.page = PageGrant{.page = 0x400000, .size = PageSize::k4K,
                                   .dest_va = 0x700000,
                                   .perm = MapEntryPerm{.writable = true, .user = true,
                                                        .no_execute = false}};
    kernel.Step(scenario.b_threads[0], share);
    proxy.DrainAll();
    std::printf("B shared one page with V; V books %zu page(s) from B\n",
                proxy.pages_from_b().size());
  }

  // Adversarial campaign: 150 random hostile syscalls from A and B with
  // OC/SC unwinding checks and isolation invariants after every step.
  NoninterferenceHarness harness(&scenario, /*seed=*/2026);
  NoninterferenceOptions options;
  options.steps = 150;
  UnwindingReport report = harness.Run(options);
  std::printf("\nadversarial campaign: %llu steps, %llu OC checks, %llu SC checks, "
              "%llu isolation checks -> %s\n",
              static_cast<unsigned long long>(report.steps),
              static_cast<unsigned long long>(report.oc_checks),
              static_cast<unsigned long long>(report.sc_checks),
              static_cast<unsigned long long>(report.iso_checks),
              report.ok ? "ALL HOLD" : report.detail.c_str());
  if (!report.ok) {
    return 1;
  }

  // Kill container B from the root (administrator). Resources B passed to V
  // are not revoked (§3) — V releases them itself, as proven functionally
  // correct.
  auto admin_proc = kernel.BootCreateProcess(kernel.root_container());
  auto admin = kernel.BootCreateThread(admin_proc.value);
  Syscall kill;
  kill.op = SysOp::kKillContainer;
  kill.target = scenario.b;
  SyscallRet ret = kernel.Step(admin.value, kill);
  std::printf("\nkill_container(B) -> %s; B exists: %s\n", SysErrorName(ret.error),
              kernel.pm().ContainerExists(scenario.b) ? "yes" : "no");
  std::printf("V still books %zu page(s) from the crashed B\n", proxy.pages_from_b().size());

  proxy.OnClientCrash(scenario.b);
  std::printf("after V's crash handler: %zu page(s) booked, V spec %s\n",
              proxy.pages_from_b().size(), proxy.SpecWf() ? "HOLDS" : "VIOLATED");

  InvResult wf = kernel.TotalWf();
  std::printf("\ntotal_wf() after the harvest: %s\n", wf.ok ? "HOLDS" : wf.detail.c_str());
  return wf.ok ? 0 : 1;
}
