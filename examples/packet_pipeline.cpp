// Packet pipeline: the user-level ixgbe driver behind the IOMMU, forwarding
// traffic through the Maglev load balancer (§6.5-6.6). Shows the full
// device stack — DMA arena, descriptor rings, IOMMU translation, polled
// driver — and demonstrates that a detached device's DMA is blocked.
//
//   $ ./build/examples/packet_pipeline

#include <cstdio>

#include "src/apps/maglev.h"
#include "src/drivers/dma_arena.h"
#include "src/drivers/ixgbe_driver.h"
#include "src/hw/sim_nic.h"

using namespace atmo;

int main() {
  std::printf("== Packet pipeline: NIC -> IOMMU -> driver -> Maglev -> NIC ==\n\n");

  // The machine: memory, allocator, IOMMU with one protection domain.
  PhysMem mem(16384);
  PageAllocator alloc(16384, 1);
  IommuManager iommu(&mem);
  IommuDomainId domain = iommu.CreateDomain(&alloc, kNullPtr);
  constexpr DeviceId kNic = 1;
  iommu.AttachDevice(domain, kNic);

  DmaArena arena(&mem, &alloc, &iommu, domain, 0x1000000);
  SimNic nic(&mem, &iommu, kNic);
  IxgbeDriver driver(&arena, &nic, /*ring_entries=*/64);
  driver.Init();
  std::printf("driver initialized: %u-entry rings, arena %llu pages DMA-mapped\n",
              driver.entries(), static_cast<unsigned long long>(arena.pages()));

  // A Maglev instance with four backends.
  Maglev lb(4099);
  for (int i = 0; i < 4; ++i) {
    lb.AddBackend(MaglevBackend{
        .name = "backend-" + std::to_string(i),
        .mac = MacAddr{0x02, 0, 0, 0, 0x10, static_cast<std::uint8_t>(i)},
        .ip = 0x0a010000u + static_cast<std::uint32_t>(i),
        .healthy = true});
  }
  lb.Populate();

  // Ingress traffic: 12 flows hitting the virtual IP.
  std::size_t produced = 0;
  nic.SetPacketSource([&](std::uint8_t* buf) -> std::size_t {
    if (produced >= 12) {
      return 0;
    }
    FiveTuple flow{.src_ip = 0x0b000000u + static_cast<std::uint32_t>(produced),
                   .dst_ip = 0x0a0000fe,
                   .src_port = static_cast<std::uint16_t>(4000 + produced),
                   .dst_port = 80};
    ++produced;
    return BuildUdpFrame(buf, MacAddr{2, 0, 0, 0, 0, 9}, MacAddr{2, 0, 0, 0, 0, 1}, flow,
                         "req", 3);
  });

  int per_backend[4] = {0, 0, 0, 0};
  nic.SetPacketSink([&](const std::uint8_t* frame, std::size_t len) {
    auto parsed = ParseUdpFrame(frame, len);
    if (parsed.has_value()) {
      ++per_backend[parsed->flow.dst_ip & 0xff];
    }
  });

  // Forwarding loop: receive, load-balance, transmit in place.
  nic.DeliverRx(16);
  std::uint8_t scratch[kMaxFrameLen];
  std::uint32_t forwarded = driver.RxBurstInPlace(
      [&](VAddr iova, std::uint16_t len) {
        arena.Read(iova, scratch, len);
        if (lb.ForwardPacket(scratch, len) >= 0) {
          arena.Write(iova, scratch, len);
          driver.TxInPlaceDeferred(iova, len);
        }
      },
      16);
  driver.TxFlush();
  nic.ProcessTx(16);

  std::printf("forwarded %u packets; backend distribution:", forwarded);
  for (int i = 0; i < 4; ++i) {
    std::printf(" b%d=%d", i, per_backend[i]);
  }
  std::printf("\n");

  // The same flow always lands on the same backend (connection affinity).
  FiveTuple probe{.src_ip = 0x0b000001, .dst_ip = 0x0a0000fe, .src_port = 4001,
                  .dst_port = 80};
  std::printf("flow affinity: lookup x3 -> backend %d, %d, %d\n", lb.Lookup(probe),
              lb.Lookup(probe), lb.Lookup(probe));

  // IOMMU protection: detach the NIC and show its DMA is now blocked.
  iommu.DetachDevice(kNic);
  produced = 0;  // re-arm the source
  std::uint32_t delivered = nic.DeliverRx(4);
  std::printf("\nafter iommu detach: DeliverRx delivered %u frames, %llu DMA faults\n",
              delivered, static_cast<unsigned long long>(nic.dma_faults()));
  return forwarded == 12 && delivered == 0 ? 0 : 1;
}
