// Load driver: a million simulated clients against a verified kernel.
//
// The end-to-end story of DESIGN.md §13 at walkthrough scale: 2^20 distinct
// client flows are generated on the simulated NIC, pulled through the ixgbe
// driver, load-balanced by Maglev into the httpd and kv-store backends, and
// every request pays one kernel syscall that the refinement checker
// certifies against the Atmosphere spec — first per call, then batched
// through a syscall ring where one checked kRingEnter transition covers a
// whole batch.
//
//   $ ./build/examples/load_driver            # ~60k requests per config
//   $ ./build/examples/load_driver 200000     # pick your own request count
//
// The full-scale measured version of this pipeline is
// bench/bench_end_to_end.cc (emits BENCH_end_to_end.json and enforces the
// >=5x amortization gate).

#include <cstdio>
#include <cstdlib>

#include "bench/end_to_end.h"

using namespace atmo::bench;

int main(int argc, char** argv) {
  std::uint64_t requests = 60000;
  if (argc > 1) {
    requests = std::strtoull(argv[1], nullptr, 10);
  }

  std::printf("== Load driver: 2^20 clients -> Maglev -> httpd/kv-store ==\n\n");
  std::printf("every request: NIC rx -> parse -> Maglev lookup -> backend\n");
  std::printf("response -> NIC tx, plus one refinement-checked kernel syscall\n\n");

  auto show = [](const char* how, const E2EResult& r) {
    std::printf("%-28s %9.0f req/s  %9.0f checked sys/s  p50 %6llu ns  p99 %7llu ns\n",
                how, r.row.ops_per_sec, r.checked_syscalls_per_sec,
                static_cast<unsigned long long>(r.p50_ns),
                static_cast<unsigned long long>(r.p99_ns));
    std::printf("%-28s %llu httpd + %llu kv responses, %llu batch drains, wf %s\n\n", "",
                static_cast<unsigned long long>(r.httpd_responses),
                static_cast<unsigned long long>(r.kv_responses),
                static_cast<unsigned long long>(r.batch_drains),
                r.all_ok ? "ok" : "NOT OK");
  };

  // Per-call: every request's syscall is its own checked transition.
  E2EOptions percall;
  percall.requests = requests / 4;  // the slow path; keep the walkthrough snappy
  percall.batch = 0;
  E2EResult base = RunEndToEnd("percall", percall);
  show("per-call checking:", base);

  // Batched: submissions ride the shared-memory SQ; one checked kRingEnter
  // per 64 requests certifies the whole batch.
  E2EOptions batched;
  batched.requests = requests;
  batched.batch = 64;
  E2EResult ring = RunEndToEnd("batched-b64", batched);
  show("ring-batched (b=64):", ring);

  if (base.checked_syscalls_per_sec > 0) {
    std::printf("batching amortized the checker %.1fx\n",
                ring.checked_syscalls_per_sec / base.checked_syscalls_per_sec);
  }
  return base.all_ok && ring.all_ok ? 0 : 1;
}
