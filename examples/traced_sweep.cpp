// Traced sweep: the observability layer end to end. Runs a small parallel
// sweep with flight-recorder tracing forced on, exports the merged trace as
// Chrome trace-event JSON (load it at ui.perfetto.dev or chrome://tracing)
// and a metrics snapshot.
//
//   $ ./build/examples/traced_sweep
//   $ ./build/examples/traced_sweep --fail     # inject a kernel corruption
//
// With --fail, one shard's kernel is corrupted mid-trace; the harness
// catches the refinement violation, the replay token reproduces it, and —
// when ATMO_OBS_DUMP_DIR is set — the failing shard's forensic tail lands
// there as sweep_failure_shard<N>.json. CI runs this as the obs smoke test.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/obs/exporters.h"
#include "src/obs/json_writer.h"
#include "src/verif/obs_export.h"
#include "src/verif/sweep_harness.h"

using namespace atmo;

int main(int argc, char** argv) {
  bool fail = argc > 1 && std::strcmp(argv[1], "--fail") == 0;

  std::printf("== Traced sweep %s==\n\n", fail ? "(with injected fault) " : "");

  SweepHarness::Options options;
  options.master_seed = 0xa7305fe3;
  options.shards = 4;
  options.steps_per_shard = 200;
  options.workers = 2;
  options.trace = true;
  options.trace_capacity = 1 << 14;
  if (fail) {
    // Catch the corruption at the step it happens.
    options.checker.check_wf_every = 1;
    options.fault_hook = [](TraceFixture* f, std::uint64_t shard, std::uint64_t step) {
      if (shard == 1 && step == 120) {
        f->kernel.pm_mut().MutableContainer(f->ctnr).mem_used = 0;
      }
    };
  }

  SweepHarness harness(options);
  SweepReport report = harness.Run();
  std::printf("sweep: %llu shards x %llu steps, %s (%.0f steps/s)\n",
              static_cast<unsigned long long>(options.shards),
              static_cast<unsigned long long>(options.steps_per_shard),
              report.AllOk() ? "all ok" : "FAILURES", report.steps_per_sec);

  for (const ReplayToken& token : report.Failures()) {
    std::printf("failure: shard %llu step %llu — %s\n",
                static_cast<unsigned long long>(token.shard),
                static_cast<unsigned long long>(token.step),
                report.shards[token.shard].failure.c_str());
    // The replay token alone reproduces the failing trace, traced.
    ShardResult replay = harness.Replay(token);
    std::printf("replay:  reproduced=%s, %zu trace events captured\n",
                !replay.ok ? "yes" : "NO", replay.trace.size());
  }

  const std::string trace_path = "traced_sweep_trace.json";
  if (!WriteSweepTrace(report, trace_path)) {
    std::fprintf(stderr, "error: could not write %s\n", trace_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s — load it at ui.perfetto.dev\n", trace_path.c_str());

  obs::MetricsRegistry registry;
  ExportSweepMetrics(report, &registry);
  const std::string metrics_path = "traced_sweep_metrics.json";
  if (!obs::WriteTextFile(metrics_path, obs::MetricsJson(registry) + "\n")) {
    std::fprintf(stderr, "error: could not write %s\n", metrics_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", metrics_path.c_str());

  // The example succeeds when the observability pipeline worked: the
  // injected fault must be caught, a clean run must stay clean.
  if (fail) {
    return report.Failures().size() == 1 ? 0 : 1;
  }
  return report.AllOk() ? 0 : 1;
}
