// Table 2 reproduction: verification time (1 vs 8 threads).
//
// The paper measures Verus/SMT wall time for: NrOS's page table (recursive
// ownership), Atmosphere's page table (flat ownership), and full
// Atmosphere. In this executable model, "verification" is the runtime
// checking suite: every well-formedness invariant, page-table refinement,
// memory-safety/leak-freedom argument, plus a per-syscall specification
// replay over a recorded trace. The flat-vs-recursive ablation is
// preserved: the same page tables are checked by the flat checker
// (Atmosphere-style, direct node access via the flat permission map) and by
// the recursive checker (NrOS-style interpretation that materializes and
// merges per-subtree maps).
//
// Paper reference (c220g5): NrOS PT 1m52s/51s (1/8 threads), Atmo PT 33s,
// Mimalloc 8m12s/1m40s, VeriSMo 61m/12m, Atmosphere full 3m29s/1m7s. The
// reproduced claims: (a) flat PT checking is several times faster than
// recursive on the same state, (b) the full suite parallelizes across
// checks. NOTE: on a single-CPU host the 8-thread column cannot speed up.

#include <cstdio>
#include <thread>

#include "bench/pipeline.h"
#include "src/pagetable/refinement.h"
#include "src/verif/invariant_registry.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace bench {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

// Builds a populated kernel: a container tree, processes with large address
// spaces, threads parked in IPC states, endpoints, IOMMU domains.
struct Workload {
  Kernel kernel;
  std::vector<ProcPtr> procs;
  std::vector<ThrdPtr> threads;

  static Workload Build(std::uint64_t pages_per_proc) {
    BootConfig config;
    config.frames = 65536;  // 256 MiB
    config.reserved_frames = 16;
    Workload w{std::move(*Kernel::Boot(config)), {}, {}};
    Kernel& k = w.kernel;

    std::uint64_t rng = 0x12345;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };

    CtnrPtr parents[3] = {k.root_container(), kNullPtr, kNullPtr};
    auto c1 = k.BootCreateContainer(k.root_container(), 44000, ~0ull);
    auto c2 = k.BootCreateContainer(c1.value, 26000, ~0ull);
    parents[1] = c1.value;
    parents[2] = c2.value;

    for (int i = 0; i < 8; ++i) {
      auto proc = k.BootCreateProcess(parents[i % 3 == 0 ? 1 : 2]);
      auto thrd = k.BootCreateThread(proc.value);
      w.procs.push_back(proc.value);
      w.threads.push_back(thrd.value);

      // Scattered mappings to grow a deep, wide page table.
      std::uint64_t mapped = 0;
      int failures = 0;
      while (mapped < pages_per_proc && failures < 10000) {
        Syscall mmap;
        mmap.op = SysOp::kMmap;
        std::uint64_t count = 1 + next() % 8;
        VAddr base = ((next() % 4096) * 16 + 16) * kPageSize4K;
        mmap.va_range = VaRange{base, count, PageSize::k4K};
        mmap.map_perm = kRw;
        SyscallRet ret = k.Step(thrd.value, mmap);
        if (ret.ok()) {
          mapped += count;
        } else {
          ++failures;  // collision or quota: bounded retries, never hang
        }
      }
    }
    // Endpoints + parked IPC states.
    for (std::size_t i = 0; i + 1 < w.threads.size(); i += 2) {
      Syscall ne;
      ne.op = SysOp::kNewEndpoint;
      ne.edpt_idx = 0;
      SyscallRet e = k.Step(w.threads[i], ne);
      k.pm_mut().BindEndpoint(w.threads[i + 1], 0, e.value);
      Syscall recv;
      recv.op = SysOp::kRecv;
      recv.edpt_idx = 0;
      k.Step(w.threads[i + 1], recv);  // park as receiver
    }
    return w;
  }
};

double TimePtChecks(const Kernel& kernel, bool recursive, unsigned threads) {
  // One registry entry per address space so 1-vs-8 threads parallelizes
  // across tables, like SMT queries per function.
  InvariantRegistry reg;
  for (const auto& [proc, table] : kernel.vm().tables()) {
    const PageTable* t = &table;
    reg.Register(recursive ? "pt_recursive" : "pt_flat",
                 [t, recursive](const Kernel& k) -> InvResult {
                   RefinementReport r = recursive ? RecursiveRefinementCheck(*t, k.mem())
                                                  : FlatRefinementCheck(*t, k.mem());
                   if (!r.ok) {
                     return InvResult::Fail(r.detail);
                   }
                   if (!t->StructureWf(k.mem())) {
                     return InvResult::Fail("structure");
                   }
                   return InvResult{};
                 });
  }
  SuiteReport report = reg.RunAll(kernel, threads);
  if (!report.AllOk()) {
    std::fprintf(stderr, "PT check failed!\n");
  }
  return report.wall_seconds;
}

// Full "verification": the invariant suite plus a spec-checked trace replay
// (every syscall re-validated against its abstract specification).
double TimeFullSuite(const Workload& w, bool recursive_pt, unsigned threads, int repeats) {
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < repeats; ++r) {
    InvariantRegistry suite = InvariantRegistry::StandardSuite(recursive_pt);
    SuiteReport report = suite.RunAll(w.kernel, threads);
    if (!report.AllOk()) {
      std::fprintf(stderr, "suite failed!\n");
    }
    // Trace replay on a clone (the per-function spec obligations).
    Kernel clone = w.kernel.CloneForVerification();
    RefinementChecker checker(&clone, /*check_wf_every=*/0);
    std::uint64_t rng = 99;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    for (int step = 0; step < 60; ++step) {
      ThrdPtr t = w.threads[next() % w.threads.size()];
      if (!clone.pm().ThreadExists(t)) {
        continue;
      }
      ThreadState s = clone.pm().GetThread(t).state;
      if (s != ThreadState::kRunnable && s != ThreadState::kRunning) {
        continue;
      }
      Syscall call;
      switch (next() % 3) {
        case 0:
          call.op = SysOp::kYield;
          break;
        case 1: {
          call.op = SysOp::kMmap;
          call.va_range = VaRange{((next() % 4096) * 16 + 8) * kPageSize4K, 1,
                                  PageSize::k4K};
          call.map_perm = kRw;
          break;
        }
        case 2: {
          call.op = SysOp::kMunmap;
          call.va_range = VaRange{((next() % 4096) * 16 + 16) * kPageSize4K, 1,
                                  PageSize::k4K};
          break;
        }
      }
      checker.Step(t, call);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() /
         repeats;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo::bench;
  bool quick = std::getenv("ATMO_BENCH_QUICK") != nullptr;
  std::uint64_t pages = quick ? 800 : 2500;

  std::printf("=== Table 2: verification time of different systems ===\n");
  std::printf("paper reference: NrOS PT 112s/51s, Atmo PT 33s/-, Atmosphere full 209s/67s\n");
  std::printf("(this host: %u hardware threads — the 8-thread column cannot speed up on\n",
              std::thread::hardware_concurrency());
  std::printf("a single-CPU machine)\n\n");

  Workload w = Workload::Build(pages);
  std::size_t total_mappings = 0;
  for (const auto& [proc, table] : w.kernel.vm().tables()) {
    total_mappings += table.MappingCount();
  }
  std::printf("workload: %zu address spaces, %zu total mappings\n\n",
              w.kernel.vm().tables().size(), total_mappings);

  double nros_1 = TimePtChecks(w.kernel, /*recursive=*/true, 1);
  double nros_8 = TimePtChecks(w.kernel, /*recursive=*/true, 8);
  double atmo_pt_1 = TimePtChecks(w.kernel, /*recursive=*/false, 1);
  double atmo_pt_8 = TimePtChecks(w.kernel, /*recursive=*/false, 8);
  int repeats = quick ? 1 : 2;
  double full_1 = TimeFullSuite(w, false, 1, repeats);
  double full_8 = TimeFullSuite(w, false, 8, repeats);

  std::printf("%-36s %12s %12s\n", "system", "1 thread(s)", "8 thread(s)");
  std::printf("%-36s %12s %12s\n", "------", "-----------", "-----------");
  std::printf("%-36s %11.3fs %11.3fs\n", "NrOS-style page table (recursive)", nros_1, nros_8);
  std::printf("%-36s %11.3fs %11.3fs\n", "Atmosphere page table (flat)", atmo_pt_1, atmo_pt_8);
  std::printf("%-36s %11.3fs %11.3fs\n", "Atmosphere full suite + trace replay", full_1,
              full_8);
  std::printf("\nflat vs recursive page-table checking speedup (1 thread): %.2fx\n",
              nros_1 / atmo_pt_1);
  return 0;
}
