// Packet-pipeline throughput (Mpps): the data-path cost of copying vs
// borrowing (DESIGN.md §14).
//
// All configurations run the same Maglev forwarding work — parse, hash the
// 5-tuple, look up the backend, rewrite the destination, transmit — over
// the same simulated NIC. What varies is how frame bytes move:
//
//   copy            — RxBurstInPlace + arena Read into a stack frame,
//                     rewrite there, arena Write back, deferred TX (the
//                     pre-§14 path: two full-frame copies per packet)
//   zero-copy-fwd   — RxPeekBurst borrows the DMA buffer, the rewrite
//                     happens in place, TxInPlaceDeferred points the TX
//                     descriptor at the same buffer: zero copies
//   zero-copy-serve — server shape (httpd/kv): parse the borrowed RX
//                     frame, build the reply directly in a claimed TX
//                     buffer (FinishUdpFrame wraps headers around the
//                     payload written in place): zero copies
//
// The zero-copy configurations must also be allocation-free: an AllocProbe
// spans each measured loop and the per-config heap-allocation count lands
// in BENCH_packet_pipeline.json, where ci/run_tests.sh gates it at zero.

#include <cstring>

#include "bench/pipeline.h"
#include "src/apps/maglev.h"
#include "src/obs/alloc_hook.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint32_t kRing = 512;
constexpr std::uint32_t kBurst = 32;

Maglev MakeLb() {
  Maglev lb(65537);
  for (int i = 0; i < 16; ++i) {
    MaglevBackend backend;
    backend.name = "backend-" + std::to_string(i);
    backend.mac = MacAddr{0x02, 0, 0, 0, 0x10, static_cast<std::uint8_t>(i)};
    backend.ip = 0x0a010000u + static_cast<std::uint32_t>(i);
    lb.AddBackend(backend);
  }
  lb.Populate();
  return lb;
}

std::size_t FlowPayload(std::size_t i, std::uint8_t* buf) {
  std::uint64_t v = i;
  std::memcpy(buf, &v, 8);
  return 8;
}

struct PipelineRig {
  Machine m;
  PacketPool pool;
  IxgbeDriver driver;
  Maglev lb;

  PipelineRig() : pool(4096, FlowPayload), driver(&m.arena, &m.nic, kRing), lb(MakeLb()) {
    m.nic.SetPacketSource(pool.AsSource());
    m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
    driver.Init();
  }
};

// Heap allocations observed inside each config's measured loop.
std::uint64_t g_loop_allocs[3] = {0, 0, 0};

// --- copy: two full-frame copies per packet ---
std::uint64_t RunCopy(std::uint64_t target) {
  PipelineRig r;
  std::uint64_t done = 0;
  std::uint8_t frame[kMaxFrameLen];
  obs::AllocProbe probe;
  while (done < target) {
    r.m.nic.DeliverRx(kBurst);
    std::uint32_t got = r.driver.RxBurstInPlace(
        [&](VAddr iova, std::uint16_t len) {
          r.m.arena.Read(iova, frame, len);
          if (r.lb.ForwardPacket(frame, len) >= 0) {
            r.m.arena.Write(iova, frame, len);
            r.driver.TxInPlaceDeferred(iova, len);
          }
        },
        kBurst);
    if (got > 0) {
      r.driver.TxFlush();
    }
    done += got;
    r.m.nic.ProcessTx(kBurst);
  }
  g_loop_allocs[0] = probe.allocs();
  return done;
}

// --- zero-copy forwarding: rewrite in the DMA buffer, TX the same IOVA ---
std::uint64_t RunZeroCopyFwd(std::uint64_t target) {
  PipelineRig r;
  std::uint64_t done = 0;
  RxView views[kBurst];
  obs::AllocProbe probe;
  while (done < target) {
    r.m.nic.DeliverRx(kBurst);
    std::uint32_t burst = r.driver.RxPeekBurst(views, kBurst);
    std::uint32_t queued = 0;
    for (std::uint32_t v = 0; v < burst; ++v) {
      std::uint8_t* frame = r.m.arena.BorrowWrite(views[v].iova, views[v].len);
      if (r.lb.ForwardPacket(frame, views[v].len) >= 0 &&
          r.driver.TxInPlaceDeferred(views[v].iova, views[v].len)) {
        ++queued;
      }
    }
    if (queued > 0) {
      r.driver.TxFlush();
    }
    r.driver.RxReleaseBurst(burst);
    done += burst;
    r.m.nic.ProcessTx(kBurst);
  }
  g_loop_allocs[1] = probe.allocs();
  return done;
}

// --- zero-copy serving: reply built directly in a claimed TX buffer ---
std::uint64_t RunZeroCopyServe(std::uint64_t target) {
  PipelineRig r;
  std::uint64_t done = 0;
  RxView views[kBurst];
  MacAddr my_mac{0x02, 0, 0, 0, 0, 0x02};
  obs::AllocProbe probe;
  while (done < target) {
    r.m.nic.DeliverRx(kBurst);
    std::uint32_t burst = r.driver.RxPeekBurst(views, kBurst);
    std::uint32_t queued = 0;
    for (std::uint32_t v = 0; v < burst; ++v) {
      auto parsed = ParseUdpFrame(views[v].data, views[v].len);
      if (!parsed.has_value() || r.lb.Lookup(parsed->flow) < 0) {
        continue;
      }
      std::uint8_t* tx = r.driver.TxClaim();
      if (tx == nullptr) {
        continue;
      }
      // An 8-byte echo reply written straight into the TX frame.
      std::memcpy(tx + kHeadersLen, parsed->payload,
                  parsed->payload_len < 8 ? parsed->payload_len : 8);
      FiveTuple reply{.src_ip = parsed->flow.dst_ip, .dst_ip = parsed->flow.src_ip,
                      .src_port = parsed->flow.dst_port, .dst_port = parsed->flow.src_port};
      std::size_t flen = FinishUdpFrame(tx, my_mac, parsed->src_mac, reply, 8);
      r.driver.TxCommitDeferred(static_cast<std::uint16_t>(flen));
      ++queued;
    }
    if (queued > 0) {
      r.driver.TxFlush();
    }
    r.driver.RxReleaseBurst(burst);
    done += burst;
    r.m.nic.ProcessTx(kBurst);
  }
  g_loop_allocs[2] = probe.allocs();
  return done;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo::bench;
  std::uint64_t target = ScaledOps(2000000);

  std::printf("=== Packet pipeline: copy vs zero-copy (DESIGN.md §14) ===\n");
  std::printf("identical Maglev forwarding work; only byte movement differs\n");

  BenchJson json("packet_pipeline");
  PrintHeader("packet pipeline", "Mpps");
  json.Record(RunTimed("copy", target, RunCopy), "M");
  json.Record(RunTimed("zero-copy-fwd", target, RunZeroCopyFwd), "M");
  json.Record(RunTimed("zero-copy-serve", target, RunZeroCopyServe), "M");

  bool ok = json.Write([&](atmo::obs::JsonWriter* w) {
    w->Key("loop_heap_allocs").BeginObject();
    w->KV("copy", g_loop_allocs[0]);
    w->KV("zero-copy-fwd", g_loop_allocs[1]);
    w->KV("zero-copy-serve", g_loop_allocs[2]);
    w->EndObject();
  });
  return ok ? 0 : 1;
}
