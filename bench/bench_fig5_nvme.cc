// Figure 5 reproduction: NVMe driver performance (IOPS) — sequential 4 KiB
// reads and writes at batch sizes 1 and 32 across the paper's
// configurations: linux (fio/libaio-like block layer), spdk (polled direct
// queue pair), atmo-driver (same data path, kernel set it up), atmo-c2
// (driver on its own core via shared rings), atmo-c1-bN (batched IPC
// through the verified kernel on one core).
//
// Expected shape (paper, P3700): linux-b1 13K / linux-b32 141K IOPS reads;
// spdk ≈ atmo-* reach device max; writes cap near the device's ~256K IOPS.
// The simulated SSD has no internal cap, so the fast paths report what the
// host sustains; relative ordering is the reproduced result.

#include <thread>

#include "bench/pipeline.h"
#include "src/baseline/linux_block.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint32_t kQueueDepth = 64;
constexpr std::uint64_t kSpanBlocks = 8192;  // 32 MiB working set

struct NvmeEnv {
  Machine machine;
  NvmeDriver driver;
  VAddr buffer;

  explicit NvmeEnv()
      : machine(), driver(&machine.arena, &machine.nvme, kQueueDepth) {
    driver.Init();
    buffer = driver.AllocBuffer(64);
  }

  // Pre-allocates every flash block in the working set so the timed region
  // measures steady-state I/O, not first-touch allocation.
  void WarmFlash() {
    std::uint8_t byte = 1;
    for (std::uint64_t lba = 0; lba < kSpanBlocks; ++lba) {
      machine.nvme.BackdoorWrite(lba, &byte, 1);
    }
  }
};

// Direct path (spdk / atmo-driver): submit B, doorbell once, reap.
std::uint64_t RunDirect(std::uint64_t target, std::uint32_t batch, bool write) {
  NvmeEnv env;
  if (write) {
    env.WarmFlash();
  }
  std::uint64_t done = 0;
  std::uint64_t lba = 0;
  NvmeCompletion completions[kQueueDepth];
  while (done < target) {
    std::uint32_t submitted = 0;
    for (std::uint32_t i = 0; i < batch; ++i) {
      bool ok = write ? env.driver.SubmitWrite(lba, 1, env.buffer + (i % 64) * kNvmeBlockBytes,
                                               static_cast<std::uint32_t>(done + i))
                      : env.driver.SubmitRead(lba, 1, env.buffer + (i % 64) * kNvmeBlockBytes,
                                              static_cast<std::uint32_t>(done + i));
      if (!ok) {
        break;
      }
      lba = (lba + 1) % kSpanBlocks;
      ++submitted;
    }
    env.driver.RingDoorbell();
    env.machine.nvme.ProcessCommands(submitted);
    std::uint32_t reaped = 0;
    while (reaped < submitted) {
      reaped += env.driver.PollCompletions(completions, kQueueDepth);
    }
    done += submitted;
  }
  return done;
}

// linux: io_submit/io_getevents through the block layer.
std::uint64_t RunLinux(std::uint64_t target, std::uint32_t batch, bool write) {
  NvmeEnv env;
  if (write) {
    env.WarmFlash();
  }
  LinuxBlockLayer block(&env.driver);
  std::uint64_t done = 0;
  std::uint64_t lba = 0;
  std::vector<AioRequest> reqs(batch);
  std::vector<AioEvent> events(kQueueDepth);
  while (done < target) {
    for (std::uint32_t i = 0; i < batch; ++i) {
      reqs[i] = AioRequest{.write = write,
                           .lba = lba,
                           .blocks = 1,
                           .buffer = env.buffer + (i % 64) * kNvmeBlockBytes,
                           .user_tag = static_cast<std::uint32_t>(done + i)};
      lba = (lba + 1) % kSpanBlocks;
    }
    std::uint32_t submitted = block.SubmitBatch(reqs.data(), batch);
    env.machine.nvme.ProcessCommands(submitted);
    std::uint32_t reaped = 0;
    while (reaped < submitted) {
      reaped += block.GetEvents(events.data(), kQueueDepth);
    }
    done += submitted;
  }
  return done;
}

struct IoReq {
  std::uint64_t lba = 0;
  bool write = false;
};

// atmo-c2: application enqueues requests; the driver core submits/polls.
std::uint64_t RunC2(std::uint64_t target, bool write) {
  NvmeEnv env;
  if (write) {
    env.WarmFlash();
  }
  auto req_ring = std::make_unique<SpscRing<IoReq, 256>>();
  auto cpl_ring = std::make_unique<SpscRing<std::uint32_t, 256>>();
  std::atomic<bool> stop{false};

  std::thread driver_core([&] {
    IoReq req;
    NvmeCompletion completions[kQueueDepth];
    std::uint32_t cid = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::uint32_t submitted = 0;
      while (submitted < 32 && req_ring->Pop(&req)) {
        bool ok = req.write
                      ? env.driver.SubmitWrite(req.lba, 1, env.buffer, cid)
                      : env.driver.SubmitRead(req.lba, 1, env.buffer, cid);
        if (!ok) {
          break;
        }
        ++cid;
        ++submitted;
      }
      if (submitted > 0) {
        env.driver.RingDoorbell();
        env.machine.nvme.ProcessCommands(submitted);
      } else {
        std::this_thread::yield();
      }
      std::uint32_t got = env.driver.PollCompletions(completions, kQueueDepth);
      for (std::uint32_t i = 0; i < got; ++i) {
        while (!cpl_ring->Push(completions[i].cid) &&
               !stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
      }
    }
  });

  std::uint64_t done = 0;
  std::uint64_t lba = 0;
  std::uint64_t inflight = 0;
  std::uint64_t idle = 0;
  std::uint32_t cid;
  while (done < target) {
    while (inflight < 64 && req_ring->Push(IoReq{lba, write})) {
      lba = (lba + 1) % kSpanBlocks;
      ++inflight;
    }
    if (cpl_ring->Pop(&cid)) {
      ++done;
      --inflight;
      idle = 0;
    } else if (++idle % 64 == 0) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  driver_core.join();
  return done;
}

// atmo-c1-bN: batch into the ring, one verified-kernel call/reply per batch.
std::uint64_t RunC1(std::uint64_t target, std::uint32_t batch, bool write) {
  NvmeEnv env;
  if (write) {
    env.WarmFlash();
  }
  C1Rendezvous ipc;
  SpscRing<IoReq, 256> req_ring;
  SpscRing<std::uint32_t, 256> cpl_ring;

  std::uint64_t done = 0;
  std::uint64_t lba = 0;
  std::uint32_t cid = 0;
  while (done < target) {
    for (std::uint32_t i = 0; i < batch; ++i) {
      req_ring.Push(IoReq{lba, write});
      lba = (lba + 1) % kSpanBlocks;
    }
    ipc.InvokeDriver([&] {
      IoReq req;
      std::uint32_t submitted = 0;
      while (req_ring.Pop(&req)) {
        bool ok = req.write ? env.driver.SubmitWrite(req.lba, 1, env.buffer, cid)
                            : env.driver.SubmitRead(req.lba, 1, env.buffer, cid);
        if (!ok) {
          break;
        }
        ++cid;
        ++submitted;
      }
      env.driver.RingDoorbell();
      env.machine.nvme.ProcessCommands(submitted);
      NvmeCompletion completions[kQueueDepth];
      std::uint32_t reaped = 0;
      while (reaped < submitted) {
        std::uint32_t got = env.driver.PollCompletions(completions, kQueueDepth);
        for (std::uint32_t i = 0; i < got; ++i) {
          cpl_ring.Push(completions[i].cid);
        }
        reaped += got;
      }
    });
    std::uint32_t c;
    while (cpl_ring.Pop(&c)) {
      ++done;
    }
  }
  return done;
}

void RunSeries(BenchJson* bj, const char* title, bool write, std::uint64_t target) {
  PrintHeader(title, "K IOPS");
  bj->Record(RunTimed("linux-b1", target / 8,
                    [&](std::uint64_t n) { return RunLinux(n, 1, write); }),
           "K");
  bj->Record(RunTimed("linux-b32", target,
                    [&](std::uint64_t n) { return RunLinux(n, 32, write); }),
           "K");
  bj->Record(RunTimed("spdk-b1", target / 2,
                    [&](std::uint64_t n) { return RunDirect(n, 1, write); }),
           "K");
  bj->Record(RunTimed("spdk-b32", target,
                    [&](std::uint64_t n) { return RunDirect(n, 32, write); }),
           "K");
  bj->Record(RunTimed("atmo-driver-b1", target / 2,
                    [&](std::uint64_t n) { return RunDirect(n, 1, write); }),
           "K");
  bj->Record(RunTimed("atmo-driver-b32", target,
                    [&](std::uint64_t n) { return RunDirect(n, 32, write); }),
           "K");
  bj->Record(RunTimed("atmo-c1-b1", target / 8,
                    [&](std::uint64_t n) { return RunC1(n, 1, write); }),
           "K");
  bj->Record(RunTimed("atmo-c1-b32", target,
                    [&](std::uint64_t n) { return RunC1(n, 32, write); }),
           "K");
  bj->Record(RunTimed("atmo-c2", target, [&](std::uint64_t n) { return RunC2(n, write); }),
           "K");
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo::bench;
  std::uint64_t target = ScaledOps(400000);

  std::printf("=== Figure 5: NVMe driver performance (4 KiB sequential) ===\n");
  std::printf("paper reference (P3700, d430): reads linux-b1 13K, linux-b32 141K,\n");
  std::printf("spdk/atmo at device max; writes cap ~256K, atmo ~232K (-10%%)\n");

  BenchJson read_json("fig5_nvme_read");
  RunSeries(&read_json, "sequential read IOPS", /*write=*/false, target);
  read_json.Write();
  BenchJson write_json("fig5_nvme_write");
  RunSeries(&write_json, "sequential write IOPS", /*write=*/true, target);
  write_json.Write();

  std::printf("\nnote: the simulated SSD has no internal IOPS cap; relative ordering is\n");
  std::printf("the reproduced result (see EXPERIMENTS.md).\n");
  return 0;
}
