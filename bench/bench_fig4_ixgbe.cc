// Figure 4 reproduction: ixgbe driver performance (Mpps) across the
// paper's configurations — linux, dpdk, atmo-driver, atmo-c1-b1,
// atmo-c1-b32, atmo-c2 — on 64-byte UDP frames.
//
// Workload: RX -> application touch (parse + FNV over the payload) -> TX
// echo, the same per-packet application work in every configuration, so the
// measured differences are the data-path architecture: per-packet traps and
// layered stack (linux), polled direct access (dpdk/atmo-driver), shared
// rings across cores (atmo-c2), and batched IPC through the real verified
// kernel on one core (atmo-c1-bN).
//
// Expected shape (paper): linux << atmo-c1-b1 < atmo-c1-b32 <
// atmo-driver ≈ dpdk ≤ atmo-c2. Absolute Mpps depends on the host; the
// simulated NIC is not rate-limited (the paper's 10GbE line rate of
// 14.88 Mpps for 64B frames would clamp the fastest configurations).

#include <thread>

#include "bench/pipeline.h"
#include "src/baseline/linux_net.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint32_t kRing = 512;

std::size_t SmallPayload(std::size_t i, std::uint8_t* buf) {
  // 64-byte frames: headers + 8-byte payload (padded to the minimum).
  std::uint64_t v = i * 0x9e3779b97f4a7c15ull;
  std::memcpy(buf, &v, 8);
  return 8;
}

// The uniform application work: validate the frame and hash the payload.
std::uint64_t TouchFrame(const std::uint8_t* frame, std::size_t len) {
  auto parsed = ParseUdpFrame(frame, len);
  if (!parsed.has_value()) {
    return 0;
  }
  return Fnv1a(parsed->payload, parsed->payload_len);
}

volatile std::uint64_t g_sink;

// --- linux: trap per packet, layered stack, echo back ---
std::uint64_t RunLinux(std::uint64_t target) {
  Machine m;
  PacketPool pool(1024, SmallPayload, /*dst_port=*/7777);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  LinuxNetStack stack(&driver);
  stack.AddRoute(0x0a000000, 8);
  stack.AddRoute(0x0b000000, 8);
  stack.OpenPort(7777);

  std::uint64_t done = 0;
  std::uint8_t buf[kMaxFrameLen];
  FiveTuple reply_flow{.src_ip = 0x0a0000fe, .dst_ip = 0x0b000001, .src_port = 7777,
                       .dst_port = 1024};
  while (done < target) {
    m.nic.DeliverRx(16);  // the wire keeps packets coming
    std::size_t got = stack.Recv(buf, sizeof(buf));
    if (got == 0) {
      continue;
    }
    g_sink = Fnv1a(buf, got);  // application work on the payload
    stack.Send(reply_flow, buf, got);
    m.nic.ProcessTx(16);
    ++done;
  }
  return done;
}

// --- dpdk / atmo-driver: polled direct access, batch B ---
std::uint64_t RunDirect(std::uint64_t target, std::uint32_t batch) {
  Machine m;
  PacketPool pool(1024, SmallPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();

  std::uint64_t done = 0;
  std::uint8_t scratch[kMaxFrameLen];
  while (done < target) {
    m.nic.DeliverRx(batch);
    std::uint32_t got = driver.RxBurstInPlace(
        [&](VAddr iova, std::uint16_t len) {
          m.arena.Read(iova, scratch, len);
          g_sink = TouchFrame(scratch, len);
          driver.TxInPlaceDeferred(iova, len);
        },
        batch);
    if (got > 0) {
      driver.TxFlush();  // one doorbell per batch
    }
    done += got;
    m.nic.ProcessTx(batch);
  }
  return done;
}

struct PktSlot {
  std::uint16_t len = 0;
  std::uint8_t bytes[128];
};

// --- atmo-c2: app and driver on separate cores, SPSC rings ---
std::uint64_t RunC2(std::uint64_t target) {
  Machine m;
  PacketPool pool(1024, SmallPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();

  auto rx_ring = std::make_unique<SpscRing<PktSlot, 1024>>();
  auto tx_ring = std::make_unique<SpscRing<PktSlot, 1024>>();
  std::atomic<bool> stop{false};

  std::thread driver_core([&] {
    RxFrame frames[32];
    PktSlot slot;
    while (!stop.load(std::memory_order_relaxed)) {
      m.nic.DeliverRx(32);
      std::uint32_t got = driver.RxBurst(frames, 32);
      for (std::uint32_t i = 0; i < got; ++i) {
        slot.len = frames[i].len;
        std::memcpy(slot.bytes, frames[i].data.data(), frames[i].len);
        while (!rx_ring->Push(slot) && !stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();  // consumer behind (or 1-CPU host)
        }
      }
      while (tx_ring->Pop(&slot)) {
        TxFrame frame{slot.bytes, slot.len};
        driver.TxBurst(&frame, 1);
      }
      m.nic.ProcessTx(32);
      if (got == 0) {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t done = 0;
  std::uint64_t idle = 0;
  PktSlot slot;
  while (done < target) {
    if (!rx_ring->Pop(&slot)) {
      if (++idle % 64 == 0) {
        std::this_thread::yield();  // essential on single-CPU hosts
      }
      continue;
    }
    g_sink = TouchFrame(slot.bytes, slot.len);
    while (!tx_ring->Push(slot)) {
      std::this_thread::yield();
    }
    ++done;
  }
  stop.store(true);
  driver_core.join();
  return done;
}

// --- atmo-c1-bN: one core, batched IPC through the verified kernel ---
std::uint64_t RunC1(std::uint64_t target, std::uint32_t batch) {
  Machine m;
  PacketPool pool(1024, SmallPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  C1Rendezvous ipc;

  SpscRing<PktSlot, 256> rx_ring;
  SpscRing<PktSlot, 256> tx_ring;

  std::uint64_t done = 0;
  while (done < target) {
    // Application invokes the driver for the next batch (the IPC endpoint
    // crossing is a real kernel call/reply pair).
    ipc.InvokeDriver([&] {
      // Driver context: flush pending TX, pull a fresh RX batch.
      PktSlot slot;
      while (tx_ring.Pop(&slot)) {
        TxFrame frame{slot.bytes, slot.len};
        driver.TxBurst(&frame, 1);
      }
      m.nic.ProcessTx(batch);
      m.nic.DeliverRx(batch);
      RxFrame frames[64];
      std::uint32_t got = driver.RxBurst(frames, batch);
      for (std::uint32_t i = 0; i < got; ++i) {
        slot.len = frames[i].len;
        std::memcpy(slot.bytes, frames[i].data.data(), frames[i].len);
        rx_ring.Push(slot);
      }
    });
    // Application context: process the batch.
    PktSlot slot;
    while (rx_ring.Pop(&slot)) {
      g_sink = TouchFrame(slot.bytes, slot.len);
      tx_ring.Push(slot);
      ++done;
    }
  }
  return done;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo::bench;
  std::uint64_t target = ScaledOps(2000000);

  std::printf("=== Figure 4: Ixgbe driver performance (64B UDP frames) ===\n");
  std::printf("paper reference (10GbE, c220g5): linux 0.89 Mpps, dpdk-b32 14.2 (line rate),\n");
  std::printf("atmo-driver-b32 14.2, atmo-c1-b1 2.3, atmo-c1-b32 11.1, atmo-c2 14.2\n");
  PrintHeader("RX -> app touch -> TX echo", "Mpps");
  BenchJson bj("fig4_ixgbe");

  bj.Record(RunTimed("linux", target / 8, RunLinux), "M");
  bj.Record(RunTimed("dpdk-b1", target, [](std::uint64_t n) { return RunDirect(n, 1); }), "M");
  bj.Record(RunTimed("dpdk-b32", target, [](std::uint64_t n) { return RunDirect(n, 32); }),
           "M");
  bj.Record(RunTimed("atmo-driver-b1", target, [](std::uint64_t n) { return RunDirect(n, 1); }),
      "M");
  bj.Record(RunTimed("atmo-driver-b32", target, [](std::uint64_t n) { return RunDirect(n, 32); }),
      "M");
  bj.Record(RunTimed("atmo-c1-b1", target / 8, [](std::uint64_t n) { return RunC1(n, 1); }),
           "M");
  bj.Record(RunTimed("atmo-c1-b32", target, [](std::uint64_t n) { return RunC1(n, 32); }),
           "M");
  bj.Record(RunTimed("atmo-c2", target, RunC2), "M");

  bj.Write();
  std::printf("\nnote: the simulated NIC has no line-rate cap; on real 10GbE hardware the\n");
  std::printf("fastest configurations clamp at 14.88 Mpps (64B frames).\n");
  return 0;
}
