// Ablation: what runtime verification costs (no paper counterpart —
// DESIGN.md calls this out as the reproduction's own design choice to
// quantify).
//
// Verus verification is static: the shipped kernel pays nothing. This
// model's checking is dynamic, so the natural question is how expensive
// "verification on" is. Measured: syscall throughput of the same workload
//   1. raw               — Kernel::Step only
//   2. spec-checked      — RefinementChecker, specs on every step, wf never
//   3. spec+wf sampled   — specs every step, total_wf every 16 steps
//   4. spec+wf always    — the full paranoid configuration
// Also reports the flat-vs-recursive page-table ablation at several state
// sizes, extending Table 2 with a scaling curve.

#include <cstdio>

#include "bench/pipeline.h"
#include "src/pagetable/refinement.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace bench {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

struct Env {
  Kernel kernel;
  ThrdPtr thrd;

  static Env Build() {
    BootConfig config;
    config.frames = 8192;
    config.reserved_frames = 16;
    Env env{std::move(*Kernel::Boot(config)), kNullPtr};
    auto ctnr = env.kernel.BootCreateContainer(env.kernel.root_container(), 2048, ~0ull);
    auto proc = env.kernel.BootCreateProcess(ctnr.value);
    auto thrd = env.kernel.BootCreateThread(proc.value);
    env.thrd = thrd.value;
    return env;
  }
};

// The workload: an mmap/munmap/yield mix.
template <typename StepFn>
std::uint64_t RunWorkload(StepFn&& step, ThrdPtr thrd, std::uint64_t ops) {
  std::uint64_t rng = 42;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::uint64_t done = 0;
  while (done < ops) {
    Syscall call;
    switch (next() % 3) {
      case 0:
        call.op = SysOp::kYield;
        break;
      case 1:
        call.op = SysOp::kMmap;
        call.va_range = VaRange{((next() % 512) * 4 + 4) * kPageSize4K, 1, PageSize::k4K};
        call.map_perm = kRw;
        break;
      case 2:
        call.op = SysOp::kMunmap;
        call.va_range = VaRange{((next() % 512) * 4 + 4) * kPageSize4K, 1, PageSize::k4K};
        break;
    }
    step(thrd, call);
    ++done;
  }
  return done;
}

// Per-phase cost breakdown of a checker run (the CheckStats counters the
// incremental-abstraction work added to the harness).
void PrintCheckStats(const char* config, const CheckStats& st) {
  auto ms = [](std::uint64_t ns) { return static_cast<double>(ns) / 1e6; };
  std::printf("    %-22s abstraction %8.1f ms (%llu full, %llu delta)  specs %8.1f ms\n"
              "    %-22s wf %8.1f ms (%llu checks)  audit %8.1f ms (%llu passes)\n"
              "    %-22s dirty entries: %llu total, %llu max/step\n",
              config, ms(st.abstraction_ns),
              static_cast<unsigned long long>(st.full_abstractions),
              static_cast<unsigned long long>(st.delta_abstractions), ms(st.spec_ns), "",
              ms(st.wf_ns), static_cast<unsigned long long>(st.wf_checks), ms(st.audit_ns),
              static_cast<unsigned long long>(st.audit_passes), "",
              static_cast<unsigned long long>(st.dirty_entries),
              static_cast<unsigned long long>(st.max_dirty_entries));
}

void PtScalingCurve() {
  std::printf("\nflat vs recursive page-table checking, by state size\n");
  std::printf("%10s %16s %16s %10s\n", "mappings", "flat (ms)", "recursive (ms)", "ratio");
  for (std::uint64_t target : {256u, 1024u, 4096u, 12288u}) {
    PhysMem mem(65536);
    PageAllocator alloc(65536, 1);
    auto pt = PageTable::New(&mem, &alloc, kNullPtr);
    std::uint64_t rng = 7;
    auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    std::uint64_t mapped = 0;
    while (mapped < target) {
      VAddr va = ((next() % 65536) + 1) * kPageSize4K;
      if (pt->Map(&alloc, va, (next() % 4096) * kPageSize4K, PageSize::k4K, kRw) ==
          MapError::kOk) {
        ++mapped;
      }
    }
    auto t0 = std::chrono::steady_clock::now();
    RefinementReport flat = FlatRefinementCheck(*pt, mem);
    auto t1 = std::chrono::steady_clock::now();
    RefinementReport rec = RecursiveRefinementCheck(*pt, mem);
    auto t2 = std::chrono::steady_clock::now();
    double flat_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    double rec_ms = std::chrono::duration<double, std::milli>(t2 - t1).count();
    std::printf("%10llu %16.3f %16.3f %9.1fx   %s\n",
                static_cast<unsigned long long>(target), flat_ms, rec_ms, rec_ms / flat_ms,
                flat.ok && rec.ok ? "" : "CHECK FAILED");
    std::vector<VAddr> vas;
    for (const auto& [va, entry] : pt->AddressSpace()) {
      vas.push_back(va);
    }
    for (VAddr va : vas) {
      pt->Unmap(va);
    }
    pt->Destroy(&alloc);
  }
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo;
  using namespace atmo::bench;
  std::uint64_t ops = ScaledOps(40000);

  std::printf("=== Ablation: the cost of runtime verification ===\n");
  PrintHeader("syscall mix (mmap/munmap/yield)", "K ops/s");
  BenchJson bj("ablation_checking");

  {
    Env env = Env::Build();
    bj.Record(RunTimed("raw (no checking)", ops,
                      [&](std::uint64_t n) {
                        return RunWorkload(
                            [&](ThrdPtr t, const Syscall& c) { env.kernel.Step(t, c); },
                            env.thrd, n);
                      }),
             "K");
  }
  {
    Env env = Env::Build();
    RefinementChecker checker(&env.kernel, /*check_wf_every=*/0);
    bj.Record(RunTimed("specs every step", ops / 10,
                      [&](std::uint64_t n) {
                        return RunWorkload(
                            [&](ThrdPtr t, const Syscall& c) { checker.Step(t, c); },
                            env.thrd, n);
                      }),
             "K");
    PrintCheckStats("specs every step", checker.stats());
  }
  {
    Env env = Env::Build();
    RefinementChecker checker(&env.kernel, /*check_wf_every=*/16);
    bj.Record(RunTimed("specs + wf every 16", ops / 10,
                      [&](std::uint64_t n) {
                        return RunWorkload(
                            [&](ThrdPtr t, const Syscall& c) { checker.Step(t, c); },
                            env.thrd, n);
                      }),
             "K");
    PrintCheckStats("specs + wf every 16", checker.stats());
  }
  {
    Env env = Env::Build();
    RefinementChecker checker(&env.kernel, /*check_wf_every=*/1);
    bj.Record(RunTimed("specs + wf every step", ops / 20,
                      [&](std::uint64_t n) {
                        return RunWorkload(
                            [&](ThrdPtr t, const Syscall& c) { checker.Step(t, c); },
                            env.thrd, n);
                      }),
             "K");
    PrintCheckStats("specs + wf every step", checker.stats());
  }

  bj.Write();

  PtScalingCurve();

  std::printf("\nVerus pays these costs once at compile time; the production build of this\n");
  std::printf("model runs 'raw' and relies on the statically-swept obligations.\n");
  return 0;
}
