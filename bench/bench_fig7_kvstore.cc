// Figure 7 reproduction: network-attached key-value store throughput.
//
// Sweeps the paper's parameters — hash-table sizes {1M, 8M} entries and
// key/value sizes {<8B,8B>, <16B,16B>, <32B,32B>} — over three
// configurations: a "C on Linux with the DPDK driver" baseline (direct
// polled path, as the paper's baseline also bypasses the kernel), atmo-c2
// (driver on a second core via shared rings) and atmo-c1-b32 (batched IPC
// through the verified kernel). Workload: 90% GET / 10% SET over a
// pre-populated table at ~70% load factor.

#include <string>
#include <thread>

#include "bench/pipeline.h"
#include "src/apps/kvstore.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint32_t kRing = 512;

struct KvParams {
  std::size_t table_entries;
  std::size_t kv_bytes;  // key size == value size
};

std::string MakeKey(std::size_t i, std::size_t bytes) {
  char buf[40];
  int n = std::snprintf(buf, sizeof(buf), "k%zu", i);
  std::string key(buf, static_cast<std::size_t>(n));
  key.resize(bytes, 'p');
  return key;
}

// Pre-populates the store to ~70% load and builds a request pool.
struct KvWorkload {
  KvStore store;
  PacketPool pool;
  std::size_t populated;

  explicit KvWorkload(const KvParams& params)
      : store(params.table_entries),
        pool(8192,
             [&](std::size_t i, std::uint8_t* buf) -> std::size_t {
               std::size_t keys = params.table_entries * 7 / 10;
               std::size_t key_index =
                   (i * 2654435761u) % keys;  // scattered key access
               std::string key = MakeKey(key_index, params.kv_bytes);
               std::string value(params.kv_bytes, 'v');
               // 90% GET / 10% SET.
               std::uint8_t op = (i % 10 == 0) ? kKvSet : kKvGet;
               return KvStore::BuildRequest(buf, op, key,
                                            op == kKvSet ? value : std::string_view{});
             },
             /*dst_port=*/11211),
        populated(params.table_entries * 7 / 10) {
    std::string value(params.kv_bytes, 'v');
    for (std::size_t i = 0; i < populated; ++i) {
      store.Set(MakeKey(i, params.kv_bytes), value);
    }
  }
};

volatile std::uint64_t g_sink;

// Server-side request processing shared by all configurations.
inline std::uint64_t ServeFrame(KvStore* store, const std::uint8_t* frame, std::size_t len,
                                std::uint8_t* resp) {
  auto parsed = ParseUdpFrame(frame, len);
  if (!parsed.has_value()) {
    return 0;
  }
  return store->HandleRequest(parsed->payload, parsed->payload_len, resp);
}

std::uint64_t RunDirect(KvWorkload* work, std::uint64_t target) {
  Machine m;
  m.nic.SetPacketSource(work->pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();

  std::uint64_t done = 0;
  std::uint8_t frame[kMaxFrameLen];
  std::uint8_t resp[64];
  while (done < target) {
    m.nic.DeliverRx(32);
    std::uint32_t got = driver.RxBurstInPlace(
        [&](VAddr iova, std::uint16_t len) {
          m.arena.Read(iova, frame, len);
          g_sink = ServeFrame(&work->store, frame, len, resp);
          // Response reuses the RX buffer slot (echo transport).
          driver.TxInPlaceDeferred(iova, len);
        },
        32);
    if (got > 0) {
      driver.TxFlush();
    }
    done += got;
    m.nic.ProcessTx(32);
  }
  return done;
}

struct PktSlot {
  std::uint16_t len = 0;
  std::uint8_t bytes[128];
};

std::uint64_t RunC2(KvWorkload* work, std::uint64_t target) {
  Machine m;
  m.nic.SetPacketSource(work->pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();

  auto rx_ring = std::make_unique<SpscRing<PktSlot, 1024>>();
  auto tx_ring = std::make_unique<SpscRing<PktSlot, 1024>>();
  std::atomic<bool> stop{false};

  std::thread driver_core([&] {
    RxFrame frames[32];
    PktSlot slot;
    while (!stop.load(std::memory_order_relaxed)) {
      m.nic.DeliverRx(32);
      std::uint32_t got = driver.RxBurst(frames, 32);
      for (std::uint32_t i = 0; i < got; ++i) {
        slot.len = frames[i].len;
        std::memcpy(slot.bytes, frames[i].data.data(), frames[i].len);
        while (!rx_ring->Push(slot) && !stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
      }
      while (tx_ring->Pop(&slot)) {
        TxFrame frame{slot.bytes, slot.len};
        driver.TxBurst(&frame, 1);
      }
      m.nic.ProcessTx(32);
      if (got == 0) {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t done = 0;
  std::uint64_t idle = 0;
  PktSlot slot;
  std::uint8_t resp[64];
  while (done < target) {
    if (!rx_ring->Pop(&slot)) {
      if (++idle % 64 == 0) {
        std::this_thread::yield();
      }
      continue;
    }
    g_sink = ServeFrame(&work->store, slot.bytes, slot.len, resp);
    while (!tx_ring->Push(slot)) {
      std::this_thread::yield();
    }
    ++done;
  }
  stop.store(true);
  driver_core.join();
  return done;
}

std::uint64_t RunC1(KvWorkload* work, std::uint64_t target, std::uint32_t batch) {
  Machine m;
  m.nic.SetPacketSource(work->pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  C1Rendezvous ipc;

  SpscRing<PktSlot, 256> rx_ring;
  SpscRing<PktSlot, 256> tx_ring;

  std::uint64_t done = 0;
  std::uint8_t resp[64];
  while (done < target) {
    ipc.InvokeDriver([&] {
      PktSlot slot;
      while (tx_ring.Pop(&slot)) {
        TxFrame frame{slot.bytes, slot.len};
        driver.TxBurst(&frame, 1);
      }
      m.nic.ProcessTx(batch);
      m.nic.DeliverRx(batch);
      RxFrame frames[64];
      std::uint32_t got = driver.RxBurst(frames, batch);
      for (std::uint32_t i = 0; i < got; ++i) {
        slot.len = frames[i].len;
        std::memcpy(slot.bytes, frames[i].data.data(), frames[i].len);
        rx_ring.Push(slot);
      }
    });
    PktSlot slot;
    while (rx_ring.Pop(&slot)) {
      g_sink = ServeFrame(&work->store, slot.bytes, slot.len, resp);
      tx_ring.Push(slot);
      ++done;
    }
  }
  return done;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo::bench;
  std::uint64_t target = ScaledOps(1000000);
  bool quick = std::getenv("ATMO_BENCH_QUICK") != nullptr;

  std::printf("=== Figure 7: key-value store throughput ===\n");
  std::printf("paper: dpdk-on-linux baseline vs atmo-c2 and atmo-c1-b32, tables {1M, 8M},\n");
  std::printf("key/value sizes {8, 16, 32} bytes, 90/10 GET/SET\n");

  std::vector<KvParams> sweep;
  for (std::size_t entries : {std::size_t{1} << 20, std::size_t{8} << 20}) {
    for (std::size_t kv : {8, 16, 32}) {
      sweep.push_back(KvParams{entries, kv});
    }
  }
  if (quick) {
    sweep.resize(2);  // CI: 1M table only, kv 8/16
  }

  BenchJson bj("fig7_kvstore");
  for (const KvParams& params : sweep) {
    std::printf("\n--- table %zuM entries, key/value %zu bytes ---", params.table_entries >> 20,
                params.kv_bytes);
    KvWorkload work(params);
    std::string tag = std::to_string(params.table_entries >> 20) + "M/" +
                      std::to_string(params.kv_bytes) + "B ";
    PrintHeader("requests", "M req/s");
    bj.Record(RunTimed(tag + "linux-dpdk", target,
                       [&](std::uint64_t n) { return RunDirect(&work, n); }),
              "M");
    bj.Record(RunTimed(tag + "atmo-c1-b32", target,
                       [&](std::uint64_t n) { return RunC1(&work, n, 32); }),
              "M");
    bj.Record(
        RunTimed(tag + "atmo-c2", target, [&](std::uint64_t n) { return RunC2(&work, n); }),
        "M");
  }
  bj.Write();
  return 0;
}
