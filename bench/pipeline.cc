#include "bench/pipeline.h"

#include <cstdlib>
#include <cstring>

#include "src/vstd/check.h"

namespace atmo {
namespace bench {

PacketPool::PacketPool(
    std::size_t count,
    const std::function<std::size_t(std::size_t, std::uint8_t*)>& make_payload,
    std::uint16_t dst_port)
    : data_(new std::uint8_t[count * kMaxFrameLen]), lens_(count) {
  MacAddr src{0x02, 0, 0, 0, 0, 0x01};
  MacAddr dst{0x02, 0, 0, 0, 0, 0x02};
  std::uint8_t payload[kMaxFrameLen];
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t payload_len = make_payload(i, payload);
    FiveTuple flow{.src_ip = 0x0b000000u + static_cast<std::uint32_t>(i * 2654435761u % 4096),
                   .dst_ip = 0x0a0000feu,
                   .src_port = static_cast<std::uint16_t>(1024 + i % 50000),
                   .dst_port = dst_port};
    lens_[i] = BuildUdpFrame(data_.get() + i * kMaxFrameLen, src, dst, flow, payload,
                             payload_len);
  }
}

PacketSource PacketPool::AsSource() {
  return [this](std::uint8_t* buf) -> std::size_t {
    std::size_t i = next_;
    next_ = next_ + 1 == lens_.size() ? 0 : next_ + 1;
    std::memcpy(buf, data_.get() + i * kMaxFrameLen, lens_[i]);
    return lens_[i];
  };
}

C1Rendezvous::C1Rendezvous() {
  BootConfig config;
  config.frames = 4096;
  config.reserved_frames = 16;
  kernel_.emplace(std::move(*Kernel::Boot(config)));
  auto ctnr = kernel_->BootCreateContainer(kernel_->root_container(), 1024, ~0ull);
  auto proc = kernel_->BootCreateProcess(ctnr.value);
  auto app = kernel_->BootCreateThread(proc.value);
  auto drv = kernel_->BootCreateThread(proc.value);
  ATMO_CHECK(app.ok() && drv.ok(), "c1 rendezvous boot failed");
  app_ = app.value;
  drv_ = drv.value;

  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet e = kernel_->Step(app_, ne);
  ATMO_CHECK(e.ok(), "c1 endpoint creation failed");
  ATMO_CHECK(kernel_->pm_mut().BindEndpoint(drv_, 0, e.value) == ProcError::kOk,
             "c1 endpoint bind failed");

  // Park the driver in recv() so the first call takes the fast rendezvous.
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  SyscallRet r = kernel_->Step(drv_, recv);
  ATMO_CHECK(r.error == SysError::kBlocked, "c1 driver failed to park");
}

void C1Rendezvous::InvokeDriver(const std::function<void()>& service) {
  // Application invokes the driver: one verified-kernel call().
  Syscall call;
  call.op = SysOp::kCall;
  call.edpt_idx = 0;
  SyscallRet cr = kernel_->Step(app_, call);
  ATMO_CHECK(cr.error == SysError::kBlocked, "c1 call did not rendezvous");
  (void)kernel_->TakeInbound(drv_);

  // Driver runs its batch "in its own context".
  service();

  // Driver replies and parks again; application resumes.
  Syscall reply;
  reply.op = SysOp::kReply;
  SyscallRet rr = kernel_->Step(drv_, reply);
  ATMO_CHECK(rr.ok(), "c1 reply failed");
  (void)kernel_->TakeInbound(app_);
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  SyscallRet r2 = kernel_->Step(drv_, recv);
  ATMO_CHECK(r2.error == SysError::kBlocked, "c1 driver failed to re-park");
}

void PrintHeader(const char* title, const char* unit) {
  std::printf("\n%s\n", title);
  std::printf("%-20s %14s %12s %14s\n", "config", unit, "wall (s)", "operations");
  std::printf("%-20s %14s %12s %14s\n", "------", "----", "--------", "----------");
}

void PrintRow(const Row& row, const char* unit_scale) {
  double scale = 1.0;
  if (std::strcmp(unit_scale, "M") == 0) {
    scale = 1e6;
  } else if (std::strcmp(unit_scale, "K") == 0) {
    scale = 1e3;
  }
  std::printf("%-20s %14.3f %12.3f %14llu\n", row.config.c_str(), row.ops_per_sec / scale,
              row.wall_seconds, static_cast<unsigned long long>(row.ops));
}

Row RunTimed(const std::string& config, std::uint64_t ops_target,
             const std::function<std::uint64_t(std::uint64_t)>& loop) {
  auto start = std::chrono::steady_clock::now();
  std::uint64_t ops = loop(ops_target);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  Row row;
  row.config = config;
  row.ops = ops;
  row.wall_seconds = seconds;
  row.ops_per_sec = seconds > 0 ? static_cast<double>(ops) / seconds : 0.0;
  return row;
}

bool BenchJson::Write(const std::function<void(obs::JsonWriter*)>& extra) const {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("bench", name_);
  w.KV("quick", std::getenv("ATMO_BENCH_QUICK") != nullptr);
  w.Key("rows").BeginArray();
  for (const Row& row : rows_) {
    w.BeginObject();
    w.KV("config", row.config);
    w.KV("ops", row.ops);
    w.KV("ops_per_sec", row.ops_per_sec, "%.1f");
    w.KV("wall_seconds", row.wall_seconds, "%.4f");
    w.EndObject();
  }
  w.EndArray();
  if (extra) {
    extra(&w);
  }
  w.EndObject();
  std::string path = "BENCH_" + name_ + ".json";
  bool ok = obs::WriteTextFile(path, w.str() + "\n");
  if (ok) {
    std::printf("\nwrote %s\n", path.c_str());
  }
  return ok;
}

std::uint64_t ScaledOps(std::uint64_t full) {
  if (std::getenv("ATMO_BENCH_QUICK") != nullptr) {
    return full / 20 + 1;
  }
  return full;
}

}  // namespace bench
}  // namespace atmo
