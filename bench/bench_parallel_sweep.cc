// Parallel sharded trace exploration scaling (DESIGN.md "Parallel sharded
// sweeps"; the runtime analog of Table 2's 1-thread vs 8-thread columns).
//
// The same 16-shard sweep (one private Kernel + RefinementChecker per
// shard, seeds split from one master seed) runs at 1/2/4/8 workers and we
// report aggregate checked-steps/s. Shards share no mutable state, so
// throughput should scale with cores until the machine runs out of them;
// on a 1-vCPU host the curve is ~flat and the scaling thresholds are
// informational. Every configuration must produce the bit-identical merged
// report — that part is enforced on any host. Writes a machine-readable
// summary to BENCH_parallel_sweep.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "bench/pipeline.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/json_writer.h"
#include "src/verif/obs_export.h"
#include "src/verif/sweep_harness.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint64_t kMasterSeed = 0xa7005fee;
constexpr std::uint64_t kShards = 16;

struct Config {
  unsigned workers;
  SweepReport report;
};

void AppendConfigJson(obs::JsonWriter* w, const Config& c) {
  w->BeginObject();
  w->KV("workers", c.workers);
  w->KV("steps", c.report.total_steps);
  w->KV("steps_per_sec", c.report.steps_per_sec, "%.1f");
  w->KV("wall_seconds", c.report.wall_seconds, "%.4f");
  w->KV("coverage_cells", c.report.coverage.NonZeroCells());
  w->KV("all_ok", c.report.AllOk());
  w->EndObject();
}

// CPUs actually available to this process — the affinity mask, not
// hardware_concurrency(), which reports the machine's core count even when
// a container/cgroup pins the process to a subset. The scaling threshold
// and the JSON's `host_cpus` field both use this, so a reader comparing
// BENCH_parallel_sweep.json files across hosts can tell a degenerate
// 1-CPU curve from a real regression.
unsigned HostCpus() {
#ifdef __linux__
  cpu_set_t set;
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    int n = CPU_COUNT(&set);
    if (n > 0) {
      return static_cast<unsigned>(n);
    }
  }
#endif
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? hc : 1;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo;
  using namespace atmo::bench;

  bool quick = std::getenv("ATMO_BENCH_QUICK") != nullptr;
  // ATMO_TRACE=1 makes every shard run with a flight recorder installed.
  bool traced = obs::EnabledFromEnv();
  std::uint64_t steps_per_shard = ScaledOps(3000);
  unsigned hc = std::thread::hardware_concurrency();
  unsigned host_cpus = HostCpus();

  std::printf("=== Parallel sharded sweep: %llu shards x %llu steps, %u CPUs available ===\n",
              static_cast<unsigned long long>(kShards),
              static_cast<unsigned long long>(steps_per_shard), host_cpus);
  PrintHeader("checked randomized syscall traces", "K steps/s");

  Config configs[4] = {{1, {}}, {2, {}}, {4, {}}, {8, {}}};
  for (Config& c : configs) {
    SweepHarness::Options options;
    options.master_seed = kMasterSeed;
    options.shards = kShards;
    options.steps_per_shard = steps_per_shard;
    options.workers = c.workers;
    SweepHarness harness(options);
    std::string name = std::to_string(c.workers) + " worker" + (c.workers > 1 ? "s" : "");
    Row row = RunTimed(name, kShards * steps_per_shard, [&](std::uint64_t) {
      c.report = harness.Run();
      return c.report.total_steps;
    });
    PrintRow(row, "K");
  }

  // Determinism across worker counts is a correctness requirement on every
  // host, multi-core or not.
  bool deterministic = true;
  for (int i = 1; i < 4; ++i) {
    deterministic = deterministic && configs[0].report.SameOutcome(configs[i].report);
  }
  bool all_ok = true;
  for (const Config& c : configs) {
    all_ok = all_ok && c.report.AllOk();
  }

  double speedup_2w = configs[1].report.steps_per_sec / configs[0].report.steps_per_sec;
  double speedup_4w = configs[2].report.steps_per_sec / configs[0].report.steps_per_sec;
  double speedup_8w = configs[3].report.steps_per_sec / configs[0].report.steps_per_sec;

  obs::JsonWriter w;
  w.BeginObject();
  w.KV("bench", "parallel_sweep");
  w.KV("master_seed", kMasterSeed);
  w.KV("shards", kShards);
  w.KV("steps_per_shard", steps_per_shard);
  w.KV("hardware_concurrency", hc);
  w.KV("host_cpus", host_cpus);
  w.KV("quick", quick);
  w.Key("configs").BeginArray();
  for (const Config& c : configs) {
    AppendConfigJson(&w, c);
  }
  w.EndArray();
  w.KV("speedup_2w", speedup_2w, "%.2f");
  w.KV("speedup_4w", speedup_4w, "%.2f");
  w.KV("speedup_8w", speedup_8w, "%.2f");
  // On a single schedulable CPU the workers time-slice one core, the curve
  // is ~flat by construction and the speedup numbers say nothing about the
  // harness — flag them so downstream tooling doesn't compare them.
  w.KV("scaling_valid", host_cpus > 1);
  w.KV("deterministic_across_workers", deterministic);
  w.KV("all_ok", all_ok);
  w.EndObject();
  obs::WriteTextFile("BENCH_parallel_sweep.json", w.str() + "\n");
  std::printf("\nwrote BENCH_parallel_sweep.json\n");

  // With ATMO_TRACE=1 the sweeps above ran traced (per-shard virtual-clock
  // recorders); export the last configuration's merged trace + a metrics
  // snapshot for Perfetto / dashboards.
  if (traced) {
    WriteSweepTrace(configs[3].report, "OBS_parallel_sweep_trace.json");
    obs::MetricsRegistry registry;
    ExportSweepMetrics(configs[3].report, &registry);
    obs::WriteTextFile("OBS_parallel_sweep_metrics.json", obs::MetricsJson(registry) + "\n");
    std::printf("wrote OBS_parallel_sweep_trace.json, OBS_parallel_sweep_metrics.json\n");
  }
  std::printf("speedup: 2w %.2fx, 4w %.2fx, 8w %.2fx (1-worker baseline %.0f steps/s)\n",
              speedup_2w, speedup_4w, speedup_8w, configs[0].report.steps_per_sec);
  std::printf("deterministic across worker counts: %s\n", deterministic ? "PASS" : "FAIL");

  if (!deterministic || !all_ok) {
    return 1;
  }
  // Scaling threshold only binds where the hardware can possibly deliver it
  // (≥4 CPUs actually schedulable by this process) and at full op counts; a
  // 1-vCPU host legitimately reports ~flat scaling.
  if (host_cpus >= 4 && !quick) {
    bool ok = speedup_4w >= 3.0;
    std::printf("speedup at 4 workers: %.2fx (threshold 3x)  %s\n", speedup_4w,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  if (host_cpus == 1) {
    std::printf(
        "scaling threshold skipped: 1 CPU available, workers time-slice one core "
        "(scaling_valid=false in BENCH_parallel_sweep.json)\n");
  } else {
    std::printf("scaling threshold skipped (%u CPUs available%s)\n", host_cpus,
                quick ? ", quick mode" : "");
  }
  return 0;
}
