// Parallel sharded trace exploration scaling (DESIGN.md "Parallel sharded
// sweeps"; the runtime analog of Table 2's 1-thread vs 8-thread columns).
//
// The same 16-shard sweep (one private Kernel + RefinementChecker per
// shard, seeds split from one master seed) runs at 1/2/4/8 workers and we
// report aggregate checked-steps/s. Shards share no mutable state, so
// throughput should scale with cores until the machine runs out of them;
// on a 1-vCPU host the curve is ~flat and the scaling thresholds are
// informational. Every configuration must produce the bit-identical merged
// report — that part is enforced on any host. Writes a machine-readable
// summary to BENCH_parallel_sweep.json.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "bench/pipeline.h"
#include "src/verif/sweep_harness.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint64_t kMasterSeed = 0xa7005fee;
constexpr std::uint64_t kShards = 16;

struct Config {
  unsigned workers;
  SweepReport report;
};

std::string ConfigJson(const Config& c) {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"workers\":%u,\"steps\":%llu,\"steps_per_sec\":%.1f,"
                "\"wall_seconds\":%.4f,\"coverage_cells\":%llu,\"all_ok\":%s}",
                c.workers, static_cast<unsigned long long>(c.report.total_steps),
                c.report.steps_per_sec, c.report.wall_seconds,
                static_cast<unsigned long long>(c.report.coverage.NonZeroCells()),
                c.report.AllOk() ? "true" : "false");
  return buf;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo;
  using namespace atmo::bench;

  bool quick = std::getenv("ATMO_BENCH_QUICK") != nullptr;
  std::uint64_t steps_per_shard = ScaledOps(3000);
  unsigned hc = std::thread::hardware_concurrency();

  std::printf("=== Parallel sharded sweep: %llu shards x %llu steps, %u hardware threads ===\n",
              static_cast<unsigned long long>(kShards),
              static_cast<unsigned long long>(steps_per_shard), hc);
  PrintHeader("checked randomized syscall traces", "K steps/s");

  Config configs[4] = {{1, {}}, {2, {}}, {4, {}}, {8, {}}};
  for (Config& c : configs) {
    SweepHarness::Options options;
    options.master_seed = kMasterSeed;
    options.shards = kShards;
    options.steps_per_shard = steps_per_shard;
    options.workers = c.workers;
    SweepHarness harness(options);
    std::string name = std::to_string(c.workers) + " worker" + (c.workers > 1 ? "s" : "");
    Row row = RunTimed(name, kShards * steps_per_shard, [&](std::uint64_t) {
      c.report = harness.Run();
      return c.report.total_steps;
    });
    PrintRow(row, "K");
  }

  // Determinism across worker counts is a correctness requirement on every
  // host, multi-core or not.
  bool deterministic = true;
  for (int i = 1; i < 4; ++i) {
    deterministic = deterministic && configs[0].report.SameOutcome(configs[i].report);
  }
  bool all_ok = true;
  for (const Config& c : configs) {
    all_ok = all_ok && c.report.AllOk();
  }

  double speedup_2w = configs[1].report.steps_per_sec / configs[0].report.steps_per_sec;
  double speedup_4w = configs[2].report.steps_per_sec / configs[0].report.steps_per_sec;
  double speedup_8w = configs[3].report.steps_per_sec / configs[0].report.steps_per_sec;

  std::FILE* json = std::fopen("BENCH_parallel_sweep.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\"bench\":\"parallel_sweep\",\"master_seed\":%llu,\"shards\":%llu,"
                 "\"steps_per_shard\":%llu,\"hardware_concurrency\":%u,\"quick\":%s,"
                 "\"configs\":[",
                 static_cast<unsigned long long>(kMasterSeed),
                 static_cast<unsigned long long>(kShards),
                 static_cast<unsigned long long>(steps_per_shard), hc,
                 quick ? "true" : "false");
    for (int i = 0; i < 4; ++i) {
      std::fprintf(json, "%s%s", i ? "," : "", ConfigJson(configs[i]).c_str());
    }
    std::fprintf(json,
                 "],\"speedup_2w\":%.2f,\"speedup_4w\":%.2f,\"speedup_8w\":%.2f,"
                 "\"deterministic_across_workers\":%s,\"all_ok\":%s}\n",
                 speedup_2w, speedup_4w, speedup_8w, deterministic ? "true" : "false",
                 all_ok ? "true" : "false");
    std::fclose(json);
  }
  std::printf("\nwrote BENCH_parallel_sweep.json\n");
  std::printf("speedup: 2w %.2fx, 4w %.2fx, 8w %.2fx (1-worker baseline %.0f steps/s)\n",
              speedup_2w, speedup_4w, speedup_8w, configs[0].report.steps_per_sec);
  std::printf("deterministic across worker counts: %s\n", deterministic ? "PASS" : "FAIL");

  if (!deterministic || !all_ok) {
    return 1;
  }
  // Scaling threshold only binds where the hardware can possibly deliver it
  // (≥4 cores) and at full op counts; a 1-vCPU host legitimately reports
  // ~flat scaling.
  if (hc >= 4 && !quick) {
    bool ok = speedup_4w >= 3.0;
    std::printf("speedup at 4 workers: %.2fx (threshold 3x)  %s\n", speedup_4w,
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  std::printf("scaling threshold skipped (%u hardware threads%s)\n", hc,
              quick ? ", quick mode" : "");
  return 0;
}
