// Incremental vs full-rebuild refinement checking (DESIGN.md "Incremental
// refinement checking"; no paper counterpart — the paper's verification is
// static, this quantifies the reproduction's dynamic-checking optimisation).
//
// The same mmap/munmap/yield syscall mix runs on the default 16384-frame
// machine under (a) the pre-optimisation checker that rebuilds Ψ from
// scratch three times per step and (b) the incremental checker that patches
// a cached Ψ at the dirty entries only. Reported at check_wf_every = 0
// (pure spec checking) and = 16 (the sampled-invariant configuration), plus
// an informational row with the audit enabled. Emits a JSON summary and
// verifies the acceptance thresholds (≥5x at wf=0, ≥2x at wf=16).

#include <cstdio>
#include <cstdlib>

#include "bench/pipeline.h"
#include "src/verif/refinement_checker.h"
#include "src/verif/trace_gen.h"

namespace atmo {
namespace bench {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

struct Env {
  Kernel kernel;
  ThrdPtr thrd;

  static Env Build() {
    BootConfig config;  // defaults: 16384 frames (64 MiB), 16 reserved
    Env env{std::move(*Kernel::Boot(config)), kNullPtr};
    auto ctnr = env.kernel.BootCreateContainer(env.kernel.root_container(), 4096, ~0ull);
    auto proc = env.kernel.BootCreateProcess(ctnr.value);
    auto thrd = env.kernel.BootCreateThread(proc.value);
    env.thrd = thrd.value;
    return env;
  }
};

std::uint64_t RunWorkload(RefinementChecker* checker, ThrdPtr thrd, std::uint64_t ops) {
  Xorshift rng{42};
  auto next = [&rng] { return rng.Next(); };
  for (std::uint64_t done = 0; done < ops; ++done) {
    Syscall call;
    switch (next() % 3) {
      case 0:
        call.op = SysOp::kYield;
        break;
      case 1:
        call.op = SysOp::kMmap;
        call.va_range = VaRange{((next() % 512) * 4 + 4) * kPageSize4K, 1, PageSize::k4K};
        call.map_perm = kRw;
        break;
      case 2:
        call.op = SysOp::kMunmap;
        call.va_range = VaRange{((next() % 512) * 4 + 4) * kPageSize4K, 1, PageSize::k4K};
        break;
    }
    checker->Step(thrd, call);
  }
  return ops;
}

struct Result {
  const char* name;
  RefinementChecker::Options options;
  double steps_per_sec = 0.0;
  CheckStats stats;
};

Result RunConfig(const char* name, const RefinementChecker::Options& options,
                 std::uint64_t ops) {
  Env env = Env::Build();
  RefinementChecker checker(&env.kernel, options);
  Row row = RunTimed(name, ops,
                     [&](std::uint64_t n) { return RunWorkload(&checker, env.thrd, n); });
  PrintRow(row, "K");
  return Result{name, options, row.ops_per_sec, checker.stats()};
}

void EmitJson(const Result* results, int n, double speedup_wf0, double speedup_wf16) {
  obs::JsonWriter w;
  w.BeginObject();
  w.KV("bench", "incremental_refinement");
  w.KV("machine_frames", std::uint64_t{16384});
  w.Key("configs").BeginArray();
  for (int i = 0; i < n; ++i) {
    const Result& r = results[i];
    w.BeginObject();
    w.KV("name", r.name);
    w.KV("incremental", r.options.incremental);
    w.KV("check_wf_every", r.options.check_wf_every);
    w.KV("audit_every", r.options.incremental ? r.options.audit_every : 0);
    w.KV("steps", r.stats.steps);
    w.KV("steps_per_sec", r.steps_per_sec, "%.1f");
    w.KV("abstraction_ns", r.stats.abstraction_ns);
    w.KV("spec_ns", r.stats.spec_ns);
    w.KV("wf_ns", r.stats.wf_ns);
    w.KV("audit_ns", r.stats.audit_ns);
    w.KV("full_abstractions", r.stats.full_abstractions);
    w.KV("delta_abstractions", r.stats.delta_abstractions);
    w.KV("dirty_entries", r.stats.dirty_entries);
    w.KV("max_dirty_entries", r.stats.max_dirty_entries);
    w.KV("audit_passes", r.stats.audit_passes);
    w.EndObject();
  }
  w.EndArray();
  w.KV("speedup_wf0", speedup_wf0, "%.2f");
  w.KV("speedup_wf16", speedup_wf16, "%.2f");
  w.EndObject();
  std::printf("\nJSON: %s\n", w.str().c_str());
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo;
  using namespace atmo::bench;
  using Options = RefinementChecker::Options;

  // The full-rebuild configs pay three O(machine) abstractions per step;
  // give them fewer ops so the bench stays short.
  std::uint64_t inc_ops = ScaledOps(20000);
  std::uint64_t full_ops = ScaledOps(1500);

  std::printf("=== Incremental vs full-rebuild refinement checking (16384 frames) ===\n");
  PrintHeader("checked syscall mix (mmap/munmap/yield)", "K steps/s");

  Result results[5];
  results[0] = RunConfig("full rebuild, wf off",
                         Options{.check_wf_every = 0, .audit_every = 0, .incremental = false},
                         full_ops);
  results[1] = RunConfig("incremental, wf off",
                         Options{.check_wf_every = 0, .audit_every = 0, .incremental = true},
                         inc_ops);
  results[2] = RunConfig("full rebuild, wf every 16",
                         Options{.check_wf_every = 16, .audit_every = 0, .incremental = false},
                         full_ops);
  results[3] = RunConfig("incremental, wf every 16",
                         Options{.check_wf_every = 16, .audit_every = 0, .incremental = true},
                         inc_ops);
  results[4] = RunConfig("incremental, wf 16 + audit 16",
                         Options{.check_wf_every = 16, .audit_every = 16, .incremental = true},
                         inc_ops);

  double speedup_wf0 = results[1].steps_per_sec / results[0].steps_per_sec;
  double speedup_wf16 = results[3].steps_per_sec / results[2].steps_per_sec;
  EmitJson(results, 5, speedup_wf0, speedup_wf16);

  bool ok_wf0 = speedup_wf0 >= 5.0;
  bool ok_wf16 = speedup_wf16 >= 2.0;
  std::printf("\nspeedup at wf=0:  %.1fx (threshold 5x)  %s\n", speedup_wf0,
              ok_wf0 ? "PASS" : "FAIL");
  std::printf("speedup at wf=16: %.1fx (threshold 2x)  %s\n", speedup_wf16,
              ok_wf16 ? "PASS" : "FAIL");
  if (std::getenv("ATMO_BENCH_QUICK") != nullptr) {
    return 0;  // thresholds are informational under CI-scaled op counts
  }
  return ok_wf0 && ok_wf16 ? 0 : 1;
}
