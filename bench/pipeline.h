// Shared benchmark pipeline harness: the paper's driver configurations.
//
// Every network/storage benchmark (Figs 4-7) runs a workload through one of
// the paper's configurations:
//
//   linux        — synchronous generic stack, trap per operation
//   dpdk / spdk  — polled user-level driver with direct device access
//   atmo-driver  — the same driver statically linked with the application
//                  (identical data path to dpdk/spdk; the kernel only set
//                  things up)
//   atmo-c2      — application and driver in separate processes on separate
//                  cores (two host threads) connected by shared-memory SPSC
//                  rings
//   atmo-c1-bN   — application and driver share one core; the application
//                  batches N requests into the shared ring and invokes the
//                  driver through a *real* Atmosphere IPC endpoint
//                  (kernel.Step call/reply per batch — the measured context
//                  switch is the actual verified kernel's code path)

#ifndef ATMO_BENCH_PIPELINE_H_
#define ATMO_BENCH_PIPELINE_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/kernel.h"
#include "src/obs/json_writer.h"
#include "src/drivers/dma_arena.h"
#include "src/drivers/ixgbe_driver.h"
#include "src/drivers/nvme_driver.h"
#include "src/drivers/spsc_ring.h"
#include "src/hw/sim_nic.h"
#include "src/hw/sim_nvme.h"
#include "src/net/packet.h"

namespace atmo {
namespace bench {

// A self-contained machine for driver benchmarks: memory, allocator, IOMMU
// with one identity domain, a DMA arena, and both devices.
struct Machine {
  static constexpr DeviceId kNicId = 1;
  static constexpr DeviceId kNvmeId = 2;

  PhysMem mem;
  PageAllocator alloc;
  IommuManager iommu;
  IommuDomainId domain;
  DmaArena arena;
  SimNic nic;
  SimNvme nvme;

  explicit Machine(std::uint64_t frames = 65536)  // 256 MiB
      : mem(frames),
        alloc(frames, 1),
        iommu(&mem),
        domain(iommu.CreateDomain(&alloc, kNullPtr)),
        arena(&mem, &alloc, &iommu, domain, 0x10000000ull),
        nic(&mem, &iommu, kNicId),
        nvme(&mem, &iommu, kNvmeId, /*capacity_blocks=*/262144) {
    iommu.AttachDevice(domain, kNicId);
    iommu.AttachDevice(domain, kNvmeId);
  }
};

// Pre-built pool of ingress frames: the packet source replays the pool so
// generation cost stays off the measured path (the paper uses a separate
// Pktgen machine).
class PacketPool {
 public:
  // `flows` distinct 5-tuples, payload built by `make_payload(i, buf)`
  // returning the payload length.
  PacketPool(std::size_t count,
             const std::function<std::size_t(std::size_t, std::uint8_t*)>& make_payload,
             std::uint16_t dst_port = 7);

  PacketSource AsSource();
  std::size_t count() const { return lens_.size(); }
  const std::uint8_t* frame(std::size_t i) const { return data_.get() + i * kMaxFrameLen; }
  std::size_t len(std::size_t i) const { return lens_[i]; }

 private:
  std::unique_ptr<std::uint8_t[]> data_;
  std::vector<std::size_t> lens_;
  std::size_t next_ = 0;
};

// The IPC rendezvous used by atmo-c1: a real Atmosphere kernel with an
// application thread and a driver thread in one process sharing an
// endpoint. InvokeDriver performs the application's call() and the driver's
// reply() through Kernel::Step — the measured per-batch kernel cost.
class C1Rendezvous {
 public:
  C1Rendezvous();

  // Application side: call() into the driver (blocks the app thread).
  // Driver side runs `service` while "scheduled", then replies.
  void InvokeDriver(const std::function<void()>& service);

  Kernel& kernel() { return *kernel_; }

 private:
  std::optional<Kernel> kernel_;
  ThrdPtr app_ = kNullPtr;
  ThrdPtr drv_ = kNullPtr;
};

// Result row shared by the figure benches.
struct Row {
  std::string config;
  double ops_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t ops = 0;
};

void PrintHeader(const char* title, const char* unit);
void PrintRow(const Row& row, const char* unit_scale);

// Times `loop(ops_target)` and returns a row. `loop` returns ops done.
Row RunTimed(const std::string& config, std::uint64_t ops_target,
             const std::function<std::uint64_t(std::uint64_t)>& loop);

// Row collector + machine-readable summary shared by the figure benches:
// Record() prints the human table row and keeps it; Write() emits
// BENCH_<name>.json ({"bench", "quick", "rows": [{config, ops, ops_per_sec,
// wall_seconds}...]}) through the shared obs JSON writer. `extra` may
// append bench-specific top-level keys before the object closes.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void Record(const Row& row, const char* unit_scale) {
    PrintRow(row, unit_scale);
    rows_.push_back(row);
  }

  bool Write(const std::function<void(obs::JsonWriter*)>& extra = {}) const;

  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::string name_;
  std::vector<Row> rows_;
};

// Benchmark sizing: scaled down when ATMO_BENCH_QUICK is set (CI).
std::uint64_t ScaledOps(std::uint64_t full);

}  // namespace bench
}  // namespace atmo

#endif  // ATMO_BENCH_PIPELINE_H_
