// Figure 2 reproduction: verification time per function.
//
// The paper plots per-function Verus verification time; the analog here is
// per-obligation checking time — every named invariant of the standard
// suite plus every per-syscall specification evaluated over a trace replay
// — printed as a sorted distribution with an ASCII bar per entry.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/pipeline.h"
#include "src/spec/syscall_specs.h"
#include "src/verif/invariant_registry.h"

namespace atmo {
namespace bench {
namespace {

constexpr MapEntryPerm kRw{.writable = true, .user = true, .no_execute = false};

struct Timing {
  std::string name;
  double micros = 0.0;
};

void PrintDistribution(std::vector<Timing> timings) {
  std::sort(timings.begin(), timings.end(),
            [](const Timing& a, const Timing& b) { return a.micros > b.micros; });
  double max = timings.empty() ? 1.0 : timings.front().micros;
  std::printf("%-34s %12s  distribution\n", "obligation", "time (us)");
  std::printf("%-34s %12s  ------------\n", "----------", "---------");
  for (const Timing& t : timings) {
    int bars = max > 0 ? static_cast<int>(40.0 * t.micros / max) : 0;
    std::printf("%-34s %12.1f  %.*s\n", t.name.c_str(), t.micros, bars,
                "########################################");
  }
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo;
  using namespace atmo::bench;

  std::printf("=== Figure 2: verification time per function (checking-time analog) ===\n\n");

  // A moderately populated kernel.
  BootConfig config;
  config.frames = 16384;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 8000, ~0ull);
  std::vector<ThrdPtr> threads;
  for (int i = 0; i < 4; ++i) {
    auto proc = kernel.BootCreateProcess(ctnr.value);
    auto thrd = kernel.BootCreateThread(proc.value);
    threads.push_back(thrd.value);
    for (int j = 0; j < 40; ++j) {
      Syscall mmap;
      mmap.op = SysOp::kMmap;
      mmap.va_range = VaRange{static_cast<VAddr>((j * 37 + 16) % 2048 + 16) * kPageSize4K *
                                  static_cast<VAddr>(i + 1),
                              4, PageSize::k4K};
      mmap.map_perm = kRw;
      kernel.Step(thrd.value, mmap);
    }
  }

  // Part 1: the invariant suite, per-check timing from the registry.
  std::vector<Timing> timings;
  InvariantRegistry suite = InvariantRegistry::StandardSuite(false);
  SuiteReport report = suite.RunAll(kernel, 1);
  for (const CheckOutcome& outcome : report.outcomes) {
    timings.push_back(Timing{outcome.name, outcome.seconds * 1e6});
  }

  // Part 2: per-syscall specification checks over a replay, aggregated by
  // operation (each op's spec is one "function").
  std::map<std::string, std::pair<double, int>> per_op;
  std::uint64_t rng = 7;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int step = 0; step < 200; ++step) {
    ThrdPtr t = threads[next() % threads.size()];
    ThreadState s = kernel.pm().GetThread(t).state;
    if (s != ThreadState::kRunnable && s != ThreadState::kRunning) {
      continue;
    }
    Syscall call;
    switch (next() % 4) {
      case 0:
        call.op = SysOp::kYield;
        break;
      case 1:
        call.op = SysOp::kMmap;
        call.va_range = VaRange{((next() % 2048) * 8 + 8) * kPageSize4K, 1 + next() % 4,
                                PageSize::k4K};
        call.map_perm = kRw;
        break;
      case 2:
        call.op = SysOp::kMunmap;
        call.va_range = VaRange{((next() % 2048) * 8 + 8) * kPageSize4K, 1, PageSize::k4K};
        break;
      case 3:
        call.op = SysOp::kNewEndpoint;
        call.edpt_idx = static_cast<EdptIdx>(next() % kMaxEdptDescriptors);
        break;
    }
    AbstractKernel pre = kernel.Abstract();
    kernel.Dispatch(t);
    AbstractKernel mid = kernel.Abstract();
    SyscallRet ret = kernel.Exec(t, call);
    AbstractKernel post = kernel.Abstract();

    auto start = std::chrono::steady_clock::now();
    SpecResult dispatch = DispatchSpec(pre, mid, t);
    SpecResult spec = SyscallSpec(mid, post, t, call, ret);
    double micros = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                        .count() *
                    1e6;
    if (!dispatch.ok || !spec.ok) {
      std::fprintf(stderr, "spec failed: %s %s\n", dispatch.detail.c_str(),
                   spec.detail.c_str());
      return 1;
    }
    auto& bucket = per_op[std::string("spec:") + SysOpName(call.op)];
    bucket.first += micros;
    bucket.second += 1;
  }
  for (const auto& [name, acc] : per_op) {
    timings.push_back(Timing{name, acc.first / acc.second});
  }

  PrintDistribution(timings);
  std::printf("\ntotal suite wall time: %.3f s (%zu obligations)\n", report.wall_seconds,
              report.outcomes.size());
  return 0;
}
