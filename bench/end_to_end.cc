#include "bench/end_to_end.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <vector>

#include "src/apps/httpd.h"
#include "src/apps/kvstore.h"
#include "src/apps/maglev.h"
#include "src/core/syscall_ring.h"
#include "src/drivers/ixgbe_driver.h"
#include "src/obs/copy_probe.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/verif/trace_gen.h"
#include "src/vstd/check.h"

namespace atmo {
namespace bench {
namespace {

constexpr VAddr kReqWindow = 0x200000;  // per-request mmap churn window
constexpr std::uint32_t kReqWindowSlots = 32;
constexpr std::uint32_t kNicRing = 512;

// Splice mode: the RX burst's pages are symbolically lent to the serving
// process for the duration of the burst — a kBorrow grant of this
// pre-mapped slot page from thrds[0] (driver side) into thrds[2] (app
// side), returned after the burst, the same way RequestSyscall's mmap churn
// stands for per-request buffer management on the copy path.
constexpr VAddr kGrantSlotVa = 0x900000;  // procs[0], outside the churn window
constexpr VAddr kGrantDestVa = 0xA00000;  // procs[1], outside the DMA donors

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Raw stage timestamps of one sampled request, captured on the fly and
// resolved into durations once the request's certification point is known
// (per-call: its Step; batched: its batch's drain; splice: its burst's
// grant return).
struct SampleTs {
  std::uint64_t trace_id = 0;
  std::uint64_t t_burst = 0;  // burst peek started
  std::uint64_t t0 = 0;       // this view's processing started
  std::uint64_t t_app = 0;    // application handler returned
  std::uint64_t t_tx = 0;     // TX descriptor queued
};

// Exact percentile over raw ns samples (the breakdown is computed from a
// few thousand sampled requests, so no bucketing is needed). Takes a copy:
// nth_element reorders.
std::uint64_t ExactPercentile(std::vector<std::uint64_t> v, double p) {
  if (v.empty()) {
    return 0;
  }
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

// The i-th request's kernel work: map a page into the rotating window, then
// unmap it — the "per-request buffer" pattern. Every call succeeds, so the
// trace is identical no matter how it is checked.
Syscall RequestSyscall(std::uint64_t i) {
  Syscall c;
  VAddr va = kReqWindow + ((i >> 1) % kReqWindowSlots) * kPageSize4K;
  if ((i & 1) == 0) {
    c.op = SysOp::kMmap;
    c.va_range = VaRange{va, 1, PageSize::k4K};
    c.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
  } else {
    c.op = SysOp::kMunmap;
    c.va_range = VaRange{va, 1, PageSize::k4K};
  }
  return c;
}

Syscall AsSubmit(std::uint64_t ring, const Syscall& inner, std::uint64_t user_data) {
  Syscall c = inner;
  c.op = SysOp::kRingSubmit;
  c.ring_id = ring;
  c.ring_op = inner.op;
  c.ring_user_data = user_data;
  return c;
}

Syscall RingEnterCall(std::uint64_t ring) {
  Syscall c;
  c.op = SysOp::kRingEnter;
  c.ring_id = ring;
  return c;
}

std::uint64_t SetupRing(RefinementChecker* checker, ThrdPtr t, std::uint32_t batch) {
  Syscall setup;
  setup.op = SysOp::kRingSetup;
  setup.ring_entries = std::min<std::uint32_t>(
      kMaxRingEntries, std::max<std::uint32_t>(8, std::bit_ceil(batch)));
  SyscallRet ret = checker->Step(t, setup);
  ATMO_CHECK(ret.ok(), "end-to-end ring setup failed");
  return ret.value;
}

Maglev MakeLb() {
  Maglev lb(65537);
  for (int i = 0; i < 8; ++i) {
    MaglevBackend backend;
    backend.name = "backend-" + std::to_string(i);
    backend.mac = MacAddr{0x02, 0, 0, 0, 0x20, static_cast<std::uint8_t>(i)};
    backend.ip = 0x0a020000u + static_cast<std::uint32_t>(i);
    lb.AddBackend(backend);
  }
  lb.Populate();
  return lb;
}

// One ingress frame per simulated client, generated on the fly (a 2^20
// frame pool would be gigabytes; generation cost is identical across the
// measured configurations so the comparison stays fair). Even clients speak
// HTTP to port 80, odd clients speak the kv protocol to port 7.
class ClientGen {
 public:
  explicit ClientGen(std::uint32_t clients_log2)
      : mask_((1ull << clients_log2) - 1) {}

  PacketSource AsSource() {
    return [this](std::uint8_t* buf) -> std::size_t {
      std::uint64_t c = next_++ & mask_;
      FiveTuple flow{.src_ip = 0x0b000000u + static_cast<std::uint32_t>(c >> 16),
                     .dst_ip = 0x0a0000feu,
                     .src_port = static_cast<std::uint16_t>(c),
                     .dst_port = static_cast<std::uint16_t>((c & 1) ? 7 : 80)};
      std::uint8_t payload[128];
      std::size_t payload_len;
      if (c & 1) {
        char key[16];
        int klen = std::snprintf(key, sizeof(key), "k%llu",
                                 static_cast<unsigned long long>(c & 0xfff));
        payload_len = KvStore::BuildRequest(
            payload, (c & 2) ? kKvSet : kKvGet, std::string_view(key, klen),
            (c & 2) ? std::string_view("v0123456789abcdef") : std::string_view());
      } else {
        const char* path = (c & 2) ? "/" : "/index.html";
        int n = std::snprintf(reinterpret_cast<char*>(payload), sizeof(payload),
                              "GET %s HTTP/1.1\r\nHost: c%llu\r\n\r\n", path,
                              static_cast<unsigned long long>(c & 0xffff));
        payload_len = static_cast<std::size_t>(n);
      }
      MacAddr src{0x02, 0, 0, 0, 0, 0x01};
      MacAddr dst{0x02, 0, 0, 0, 0, 0x02};
      return BuildUdpFrame(buf, src, dst, flow, payload, payload_len);
    };
  }

 private:
  std::uint64_t mask_;
  std::uint64_t next_ = 0;
};

}  // namespace

E2EResult RunEndToEnd(const std::string& config_name, const E2EOptions& options) {
  // The verified kernel under trace-scale refinement checking. TraceFixture
  // boots the standard 2-process/3-thread machine; thrds[0] is the server
  // thread whose per-request kernel work is measured.
  TraceFixture f = TraceFixture::Boot();
  if (options.splice) {
    // The grant rendezvous needs endpoint slot 0 (thrds[0] <-> thrds[2]).
    f.SetupIpcAndDma();
  }
  RefinementChecker checker(&f.kernel, options.checker);
  ThrdPtr t = f.thrds[0];

  std::uint64_t ring = 0;
  ATMO_CHECK(!(options.splice && options.batch > 0),
             "splice mode does its kernel work per burst, not per ring batch");
  if (options.batch > 0) {
    ring = SetupRing(&checker, t, options.batch);
  }
  if (options.splice) {
    Syscall mm;
    mm.op = SysOp::kMmap;
    mm.va_range = VaRange{kGrantSlotVa, 1, PageSize::k4K};
    mm.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = true};
    ATMO_CHECK(checker.Step(t, mm).ok(), "end-to-end grant slot mmap failed");
  }

  // The data path: simulated NIC + polled driver + Maglev + both backends.
  Machine m;
  ClientGen clients(options.clients_log2);
  m.nic.SetPacketSource(clients.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kNicRing);
  driver.Init();
  Maglev lb = MakeLb();
  Httpd httpd;
  httpd.AddPage("/", "text/html", std::string(256, 'x'));
  httpd.AddPage("/index.html", "text/html", std::string(512, 'y'));
  KvStore store(1 << 14);
  if (options.splice) {
    // Pre-render every response into DMA pages the NIC can transmit from
    // directly. The arena hands back per-page CPU pointers (its physical
    // pages are scattered), so slabs are attached page by page.
    for (std::size_t p = 0; p < httpd.SplicePagesNeeded(); ++p) {
      VAddr iova = m.arena.Alloc(kPageSize4K);
      httpd.AddSplicePage(m.arena.BorrowWrite(iova, kPageSize4K), iova, kHeadersLen);
    }
    for (std::size_t p = 0; p < store.SplicePagesNeeded(); ++p) {
      VAddr iova = m.arena.Alloc(kPageSize4K);
      store.AddSplicePage(m.arena.BorrowWrite(iova, kPageSize4K), iova, kHeadersLen);
    }
    // Warm the store so generator GETs hit (SETs keep overwriting the same
    // keys/values, so the slab stays current).
    char key[16];
    for (std::uint64_t k = 0; k <= 0xfff; ++k) {
      int klen = std::snprintf(key, sizeof(key), "k%llu", static_cast<unsigned long long>(k));
      ATMO_CHECK(store.Set(std::string_view(key, static_cast<std::size_t>(klen)),
                           "v0123456789abcdef"),
                 "end-to-end kv warmup failed");
    }
  }

  E2EResult result;
  obs::Histogram latency;
  std::vector<std::uint64_t> pending_ts;  // batched: submit time per entry
  pending_ts.reserve(options.batch);
  std::vector<RingCqEntry> cqes(std::max<std::uint32_t>(options.batch, 1));
  std::uint64_t done = 0;
  RxView views[32];
  MacAddr my_mac{0x02, 0, 0, 0, 0, 0x02};

  // Stage-attribution samples (sampled requests only). s_wait is the
  // config's waiting stage: ring_drain (batched) or deliver (splice).
  std::vector<std::uint64_t> s_rx, s_app, s_tx, s_wait, s_check, s_e2e;
  std::vector<SampleTs> pending_sampled;  // batched: resolved at the drain
  std::vector<SampleTs> burst_sampled;    // splice: resolved at grant return

  auto drain_batch = [&] {
    std::uint64_t drain_start = NowNs();
    SyscallRet enter = checker.Step(t, RingEnterCall(ring));
    ATMO_CHECK(enter.ok(), "end-to-end batch drain failed");
    ATMO_CHECK(enter.value == pending_ts.size(), "end-to-end drain came up short");
    std::uint64_t check_end = NowNs();
    std::size_t reaped = f.kernel.RingReap(t, ring, cqes.data(), cqes.size());
    ATMO_CHECK(reaped == pending_ts.size(), "end-to-end reap came up short");
    for (std::size_t i = 0; i < reaped; ++i) {
      ATMO_CHECK(cqes[i].ret.ok(), "end-to-end inner syscall failed");
    }
    std::uint64_t now = NowNs();
    for (std::uint64_t ts : pending_ts) {
      latency.Observe(now - ts);
    }
    for (const SampleTs& s : pending_sampled) {
      s_rx.push_back(s.t0 - s.t_burst);
      s_app.push_back(s.t_app - s.t0);
      s_tx.push_back(s.t_tx - s.t_app);
      s_wait.push_back(drain_start - s.t_tx);  // queued in the SQ
      s_check.push_back(check_end - drain_start);
      s_e2e.push_back(check_end - s.t_burst);
    }
    pending_sampled.clear();
    result.inner_syscalls += pending_ts.size();
    pending_ts.clear();
  };

  // Serving-loop copy accounting starts here — splice setup pre-rendering
  // (which legitimately copies) is deliberately outside the probe window.
  obs::CopyProbe copy_probe;
  std::uint64_t splice_t0[32];
  std::uint32_t splice_inflight = 0;

  auto start = std::chrono::steady_clock::now();
  while (done < options.requests) {
    m.nic.DeliverRx(32);
    // Zero-copy burst: borrow up to 32 completed descriptors, parse each
    // payload where the NIC wrote it, build the response directly in a
    // claimed TX buffer, then release the whole burst under one doorbell
    // (DESIGN.md §14). No frame bytes are copied on the request path.
    std::uint64_t t_burst = NowNs();
    std::uint32_t burst = driver.RxPeekBurst(views, 32);
    std::uint32_t queued = 0;
    if (options.splice && burst > 0) {
      // The burst's kernel work: lend the burst's pages to the app process
      // for the duration of the burst. Recv parks the app thread, the Send
      // carries the kBorrow grant, and both transitions are checked.
      Syscall recv;
      recv.op = SysOp::kRecv;
      recv.edpt_idx = 0;
      ATMO_CHECK(checker.Step(f.thrds[2], recv).error == SysError::kBlocked,
                 "end-to-end grant recv did not block");
      Syscall grant;
      grant.op = SysOp::kSend;
      grant.edpt_idx = 0;
      // The rendezvous covers the whole burst; tag the message with the
      // burst's first sampled trace id so the kernel's "stage.deliver"
      // stamp joins that request's causal chain across the process switch.
      for (std::uint32_t i = 0; i < burst; ++i) {
        if (views[i].trace_id != 0) {
          grant.payload.trace_id = views[i].trace_id;
          break;
        }
      }
      grant.payload.page =
          PageGrant{.page = kGrantSlotVa,
                    .size = PageSize::k4K,
                    .dest_va = kGrantDestVa,
                    .perm = MapEntryPerm{.writable = false, .user = true, .no_execute = true},
                    .mode = GrantMode::kBorrow};
      ATMO_CHECK(checker.Step(t, grant).ok(), "end-to-end grant send failed");
      result.inner_syscalls += 2;
    }
    for (std::uint32_t v = 0; v < burst && done < options.requests; ++v) {
      std::uint64_t t0 = NowNs();
      std::uint64_t tid = views[v].trace_id;  // 0 = unsampled
      auto parsed = ParseUdpFrame(views[v].data, views[v].len);
      if (!parsed.has_value() || lb.Lookup(parsed->flow) < 0) {
        continue;
      }
      if (options.splice) {
        // Zero-copy fast path: answer from a pre-rendered DMA slice and
        // point the TX descriptor at it in place. Only the frame headers
        // are written; no payload bytes move.
        std::optional<SpliceSlice> slice =
            parsed->flow.dst_port == 80
                ? httpd.HandleRequestSpliced(parsed->payload, parsed->payload_len, tid)
                : store.HandleRequestSpliced(parsed->payload, parsed->payload_len, tid);
        if (slice.has_value()) {
          std::uint64_t t_app = tid != 0 ? NowNs() : 0;
          FiveTuple reply{.src_ip = parsed->flow.dst_ip, .dst_ip = parsed->flow.src_ip,
                          .src_port = parsed->flow.dst_port,
                          .dst_port = parsed->flow.src_port};
          std::size_t flen =
              FinishUdpFrame(slice->frame, my_mac, parsed->src_mac, reply, slice->resp_len);
          if (!driver.TxInPlaceDeferred(slice->iova, static_cast<std::uint16_t>(flen),
                                        slice->trace_id)) {
            continue;  // TX ring full: drop, like the claim path
          }
          if (tid != 0) {
            burst_sampled.push_back(SampleTs{tid, t_burst, t0, t_app, NowNs()});
          }
          ++(parsed->flow.dst_port == 80 ? result.httpd_responses : result.kv_responses);
          ++result.spliced_responses;
          ++queued;
          splice_t0[splice_inflight++] = t0;
          ++done;
          continue;
        }
        // Fall through: SET/DEL/misses take the ordinary claim-and-copy
        // path (their responses are a status byte pair — still no payload).
      }
      std::uint8_t* tx = driver.TxClaim();
      if (tx == nullptr) {
        continue;  // TX ring full: drop, like TxBurst would
      }
      // Application work on the chosen backend, written straight into the
      // TX frame's payload slot; FinishUdpFrame wraps the headers around it.
      std::uint8_t* resp = tx + kHeadersLen;
      std::size_t rlen;
      if (parsed->flow.dst_port == 80) {
        rlen = httpd.HandleRequest(parsed->payload, parsed->payload_len, resp,
                                   kIxgbeBufBytes - kHeadersLen);
        ++result.httpd_responses;
      } else {
        rlen = store.HandleRequest(parsed->payload, parsed->payload_len, resp);
        ++result.kv_responses;
      }
      std::uint64_t t_app = tid != 0 ? NowNs() : 0;
      FiveTuple reply{.src_ip = parsed->flow.dst_ip, .dst_ip = parsed->flow.src_ip,
                      .src_port = parsed->flow.dst_port,
                      .dst_port = parsed->flow.src_port};
      std::size_t chunk = std::min<std::size_t>(rlen, 1400);
      std::size_t flen = FinishUdpFrame(tx, my_mac, parsed->src_mac, reply, chunk);
      driver.TxCommitDeferred(static_cast<std::uint16_t>(flen), tid);
      std::uint64_t t_tx = tid != 0 ? NowNs() : 0;
      ++queued;

      if (options.splice) {
        // The burst's grant rendezvous already covers this request's kernel
        // work; latency is certified at the burst's GrantReturn.
        if (tid != 0) {
          burst_sampled.push_back(SampleTs{tid, t_burst, t0, t_app, t_tx});
        }
        splice_t0[splice_inflight++] = t0;
        ++done;
        continue;
      }
      // The request's kernel work, certified per-call or batched.
      Syscall call = RequestSyscall(done);
      if (options.batch == 0) {
        SyscallRet ret = checker.Step(t, call);
        ATMO_CHECK(ret.ok(), "end-to-end per-call syscall failed");
        ++result.inner_syscalls;
        std::uint64_t now = NowNs();
        latency.Observe(now - t0);
        if (tid != 0) {
          s_rx.push_back(t0 - t_burst);
          s_app.push_back(t_app - t0);
          s_tx.push_back(t_tx - t_app);
          s_check.push_back(now - t_tx);
          s_e2e.push_back(now - t_burst);
        }
      } else {
        Syscall submit = AsSubmit(ring, call, done);
        SyscallRet s = options.shm_submit ? f.kernel.RingPushDirect(t, submit)
                                          : checker.Step(t, submit);
        ATMO_CHECK(s.ok(), "end-to-end ring submit failed");
        pending_ts.push_back(t0);
        if (tid != 0) {
          pending_sampled.push_back(SampleTs{tid, t_burst, t0, t_app, t_tx});
        }
        if (pending_ts.size() >= options.batch) {
          drain_batch();
        }
      }
      ++done;
    }
    if (queued > 0) {
      driver.TxFlush();
    }
    driver.RxReleaseBurst(burst);
    if (options.splice && burst > 0) {
      // Return the loan: the lender's write access comes back and the
      // burst's requests are certified.
      std::uint64_t gret_start = NowNs();
      Syscall gret;
      gret.op = SysOp::kGrantReturn;
      gret.va_range = VaRange{kGrantDestVa, 1, PageSize::k4K};
      ATMO_CHECK(checker.Step(f.thrds[2], gret).ok(), "end-to-end grant return failed");
      ++result.inner_syscalls;
      std::uint64_t now = NowNs();
      for (std::uint32_t i = 0; i < splice_inflight; ++i) {
        latency.Observe(now - splice_t0[i]);
      }
      splice_inflight = 0;
      for (const SampleTs& s : burst_sampled) {
        s_rx.push_back(s.t0 - s.t_burst);
        s_app.push_back(s.t_app - s.t0);
        s_tx.push_back(s.t_tx - s.t_app);
        s_wait.push_back(gret_start - s.t_tx);  // waiting for the burst's return
        s_check.push_back(now - gret_start);
        s_e2e.push_back(now - s.t_burst);
        // Close the request's flight-recorder chain at its certification
        // point; Perfetto's flow arrow lands on the grant-return stamp.
        ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.check", "trace_id", s.trace_id);
      }
      burst_sampled.clear();
    }
    m.nic.ProcessTx(32);
  }
  if (!pending_ts.empty()) {
    drain_batch();
  }
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  result.row.config = config_name;
  result.row.ops = done;
  result.row.wall_seconds = wall;
  result.row.ops_per_sec = wall > 0 ? static_cast<double>(done) / wall : 0.0;
  result.checked_syscalls_per_sec =
      wall > 0 ? static_cast<double>(result.inner_syscalls) / wall : 0.0;
  result.p50_ns = latency.Percentile(0.50);
  result.p99_ns = latency.Percentile(0.99);
  result.batch_drains = checker.stats().batch_drains;
  result.bytes_copied = copy_probe.bytes();
  result.bytes_copied_per_request =
      done > 0 ? static_cast<double>(result.bytes_copied) / static_cast<double>(done) : 0.0;
  auto add_stage = [&](const char* name, const std::vector<std::uint64_t>& samples) {
    if (samples.empty()) {
      return;
    }
    E2EResult::StageStats s;
    s.stage = name;
    s.count = samples.size();
    s.p50_ns = ExactPercentile(samples, 0.50);
    s.p95_ns = ExactPercentile(samples, 0.95);
    s.p99_ns = ExactPercentile(samples, 0.99);
    result.stage_breakdown.push_back(std::move(s));
  };
  add_stage("rx", s_rx);
  add_stage("app", s_app);
  add_stage("tx", s_tx);
  add_stage(options.splice ? "deliver" : "ring_drain", s_wait);
  add_stage("check", s_check);
  add_stage("e2e", s_e2e);
  result.sampled_requests = s_e2e.size();
  // The harness only reaches this point if every checked transition passed
  // (a violation aborts); the final total_wf seals the run.
  result.all_ok = f.kernel.TotalWf().ok;
  return result;
}

double CheckedSyscallRate(std::uint64_t ops, std::uint32_t batch, CheckStats* stats_out,
                          bool use_arena) {
  TraceFixture f = TraceFixture::Boot();
  RefinementChecker checker(&f.kernel, RefinementChecker::Options{.check_wf_every = 64,
                                                                  .audit_every = 256,
                                                                  .incremental = true,
                                                                  .use_arena = use_arena});
  ThrdPtr t = f.thrds[0];
  std::uint64_t ring = 0;
  std::vector<RingCqEntry> cqes(std::max<std::uint32_t>(batch, 1));
  if (batch > 0) {
    ring = SetupRing(&checker, t, batch);
  }

  auto start = std::chrono::steady_clock::now();
  if (batch == 0) {
    for (std::uint64_t i = 0; i < ops; ++i) {
      SyscallRet ret = checker.Step(t, RequestSyscall(i));
      ATMO_CHECK(ret.ok(), "per-call trace syscall failed");
    }
  } else {
    std::uint64_t i = 0;
    while (i < ops) {
      std::uint64_t n = std::min<std::uint64_t>(batch, ops - i);
      for (std::uint64_t j = 0; j < n; ++j, ++i) {
        SyscallRet s = f.kernel.RingPushDirect(t, AsSubmit(ring, RequestSyscall(i), i));
        ATMO_CHECK(s.ok(), "trace ring submit failed");
      }
      SyscallRet enter = checker.Step(t, RingEnterCall(ring));
      ATMO_CHECK(enter.ok() && enter.value == n, "trace batch drain failed");
      std::size_t reaped = f.kernel.RingReap(t, ring, cqes.data(), cqes.size());
      ATMO_CHECK(reaped == n, "trace reap came up short");
    }
  }
  double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (stats_out != nullptr) {
    *stats_out = checker.stats();
  }
  return wall > 0 ? static_cast<double>(ops) / wall : 0.0;
}

}  // namespace bench
}  // namespace atmo
