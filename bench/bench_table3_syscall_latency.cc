// Table 3 reproduction: latency of IPC call/reply and of mapping a page
// (cycles) — Atmosphere vs the seL4-like capability kernel.
//
// Paper reference (c220g5, KVM): call/reply — Atmosphere 1,058 cycles vs
// seL4 1,026; map a page — Atmosphere 1,984 vs seL4 2,650 (operations not
// strictly equivalent). The comparison here runs both kernels' operations
// on the same host and reports median cycles per operation; the reproduced
// claim is the *shape*: IPC within the same ballpark, and the classical
// capability-derivation map path carrying extra bookkeeping relative to
// Atmosphere's map.

// Two modelling notes (see EXPERIMENTS.md):
//   1. A user-level syscall pays a hardware mode switch (sysenter/sysexit,
//      swapgs, speculation barriers) that dominates real IPC latency and is
//      identical for both kernels. The harness charges the same modelled
//      trap cost per kernel crossing on both sides.
//   2. This executable model maintains Atmosphere's ghost state (abstract
//      maps) at runtime; Verus erases ghost code at compile time. The
//      Atmosphere numbers therefore carry bookkeeping the paper's binary
//      does not — reported as-is.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/baseline/cap_kernel.h"
#include "src/baseline/linux_net.h"  // TrapCost
#include "src/core/kernel.h"
#include "src/hw/cycles.h"

namespace atmo {
namespace {

constexpr int kWarmup = 2000;
constexpr int kRounds = 20000;
constexpr int kSamples = 200;  // measure in blocks, take the median block

TrapCost g_trap;

// One kernel crossing: enter + exit.
inline void ModeSwitch() {
  g_trap.Enter();
  g_trap.Exit();
}

double MedianCyclesPerOp(const std::vector<double>& samples) {
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  return sorted[sorted.size() / 2];
}

// --- Atmosphere: call/reply round trip through the verified kernel ---
double AtmoCallReply() {
  BootConfig config;
  config.frames = 4096;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto client = kernel.BootCreateThread(proc.value);
  auto server = kernel.BootCreateThread(proc.value);

  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet e = kernel.Step(client.value, ne);
  kernel.pm_mut().BindEndpoint(server.value, 0, e.value);
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  kernel.Step(server.value, recv);  // park the server

  Syscall call;
  call.op = SysOp::kCall;
  call.edpt_idx = 0;
  call.payload.scalars = {1, 2, 3, 4};
  Syscall reply;
  reply.op = SysOp::kReply;
  reply.payload.scalars = {5, 6, 7, 8};

  auto round = [&] {
    ModeSwitch();  // client call trap
    kernel.Step(client.value, call);
    (void)kernel.TakeInbound(server.value);
    ModeSwitch();  // server reply trap
    kernel.Step(server.value, reply);
    (void)kernel.TakeInbound(client.value);
    // Server parks again for the next round (third crossing in this
    // protocol; seL4's ReplyRecv folds it into the reply).
    ModeSwitch();
    kernel.Step(server.value, recv);
  };

  for (int i = 0; i < kWarmup; ++i) {
    round();
  }
  std::vector<double> samples;
  int per_block = kRounds / kSamples;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t start = ReadCycles();
    for (int i = 0; i < per_block; ++i) {
      round();
    }
    samples.push_back(static_cast<double>(ReadCycles() - start) / per_block);
  }
  return MedianCyclesPerOp(samples);
}

// --- seL4-like: Call + ReplyRecv fastpath ---
double CapKernelCallReply() {
  CapKernel ck;
  std::uint32_t client = ck.CreateTcb();
  std::uint32_t server = ck.CreateTcb();
  std::uint32_t ep = ck.CreateEndpoint();
  std::uint32_t client_ep = ck.InstallCap(client, CapType::kEndpoint, ep, CapRights::kAll, 7);
  std::uint32_t server_ep = ck.InstallCap(server, CapType::kEndpoint, ep, CapRights::kAll);
  ck.Recv(server, server_ep);

  auto round = [&] {
    ModeSwitch();  // client call trap
    ck.Call(client, client_ep, {1, 2, 3, 4});
    ModeSwitch();  // server reply-recv trap
    ck.ReplyRecv(server, server_ep, {5, 6, 7, 8});
  };

  for (int i = 0; i < kWarmup; ++i) {
    round();
  }
  std::vector<double> samples;
  int per_block = kRounds / kSamples;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t start = ReadCycles();
    for (int i = 0; i < per_block; ++i) {
      round();
    }
    samples.push_back(static_cast<double>(ReadCycles() - start) / per_block);
  }
  return MedianCyclesPerOp(samples);
}

// --- Atmosphere: map one 4K page (syscall), unmap untimed ---
double AtmoMapPage() {
  BootConfig config;
  config.frames = 8192;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 4096, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);

  Syscall mmap;
  mmap.op = SysOp::kMmap;
  mmap.va_range = VaRange{0x400000, 1, PageSize::k4K};
  mmap.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = false};
  Syscall munmap;
  munmap.op = SysOp::kMunmap;
  munmap.va_range = mmap.va_range;

  // Warm the table chain so the steady-state op is "install a leaf".
  for (int i = 0; i < kWarmup / 4; ++i) {
    kernel.Step(thrd.value, mmap);
    kernel.Step(thrd.value, munmap);
  }
  std::vector<double> samples;
  int per_block = 20;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t total = 0;
    for (int i = 0; i < per_block; ++i) {
      std::uint64_t start = ReadCycles();
      ModeSwitch();
      kernel.Step(thrd.value, mmap);
      total += ReadCycles() - start;
      kernel.Step(thrd.value, munmap);  // untimed
    }
    samples.push_back(static_cast<double>(total) / per_block);
  }
  return MedianCyclesPerOp(samples);
}

// --- seL4-like: Page_Map (derive + install), unmap untimed ---
double CapKernelMapPage() {
  CapKernel ck;
  std::uint32_t tcb = ck.CreateTcb();
  std::uint32_t vspace = ck.CreateVSpace();
  std::uint32_t vcap = ck.InstallCap(tcb, CapType::kVSpace, vspace, CapRights::kAll);
  std::uint32_t fcap = ck.InstallCap(tcb, CapType::kFrame, ck.CreateFrame(), CapRights::kAll);

  for (int i = 0; i < kWarmup / 4; ++i) {
    ck.MapPage(tcb, fcap, vcap, 0x400000, CapRights::kAll);
    ck.UnmapPage(tcb, fcap);
  }
  std::vector<double> samples;
  int per_block = 20;
  for (int s = 0; s < kSamples; ++s) {
    std::uint64_t total = 0;
    for (int i = 0; i < per_block; ++i) {
      std::uint64_t start = ReadCycles();
      ModeSwitch();
      ck.MapPage(tcb, fcap, vcap, 0x400000, CapRights::kAll);
      total += ReadCycles() - start;
      ck.UnmapPage(tcb, fcap);
    }
    samples.push_back(static_cast<double>(total) / per_block);
  }
  return MedianCyclesPerOp(samples);
}

}  // namespace
}  // namespace atmo

int main() {
  std::printf("=== Table 3: syscall latency (cycles, median) ===\n");
  std::printf("paper reference (c220g5): call/reply atmo 1058 vs seL4 1026;\n");
  std::printf("map a page atmo 1984 vs seL4 2650\n\n");

  double atmo_ipc = atmo::AtmoCallReply();
  double ck_ipc = atmo::CapKernelCallReply();
  double atmo_map = atmo::AtmoMapPage();
  double ck_map = atmo::CapKernelMapPage();

  std::printf("%-28s %14s %14s\n", "operation", "Atmosphere", "seL4-like");
  std::printf("%-28s %14s %14s\n", "---------", "----------", "---------");
  std::printf("%-28s %14.0f %14.0f\n", "call/reply (round trip)", atmo_ipc, ck_ipc);
  std::printf("%-28s %14.0f %14.0f\n", "call/reply (one way)", atmo_ipc / 2, ck_ipc / 2);
  std::printf("%-28s %14.0f %14.0f\n", "map a page", atmo_map, ck_map);
  return 0;
}
