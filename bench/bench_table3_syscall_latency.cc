// Table 3 reproduction + the PR's perf gate: syscall hot-path latency in
// cycles, swept across machine sizes.
//
// Paper reference (c220g5, KVM): call/reply — Atmosphere 1,058 cycles vs
// seL4 1,026; map a page — Atmosphere 1,984 vs seL4 2,650 (operations not
// strictly equivalent). Beyond the paper's single-machine numbers, this
// bench runs each operation at several machine sizes (total physical
// frames) and gates on the *shape*: with the size-segregated allocator and
// indexed lookups, map/alloc latency must be flat in machine size
// (growth ≤ kFlatThreshold from the smallest to the largest machine),
// where the linear-scan allocator grew linearly.
//
// Per-operation setup (see DESIGN.md §10 for the allocator internals):
//   call_reply — IPC round trip; never touches the allocator hot paths.
//   map_4k     — steady-state 4K mmap (leaf install), munmap untimed.
//   map_2m     — the adversarial case: every 2M group except the topmost
//                keeps one busy frame, so a fresh 2M mmap cannot be served
//                from the free lists. The linear allocator scans the whole
//                frame array per map; the segregated allocator pops the one
//                coalescible group from its mergeable stack. The freed unit
//                is re-split (untimed) so every round re-runs the miss path.
//   alloc_1g   — exhaustion fallback: every 1G region is fragmented, so
//                AllocPage1G must fail. The linear allocator proves that by
//                probing all regions (O(frames)); the segregated allocator
//                by finding its mergeable stack empty (O(1)). Runs on a
//                bare PageAllocator: a 1G unit needs 262,144 frames, so the
//                machine sizes are 2/4/8 regions rather than the kernel
//                sizes.
//   alloc_free_1g — informational hit path: alloc+free of a 1G unit with a
//                fully free region available (steady state O(1) both ways).
//
// Two modelling notes (see EXPERIMENTS.md):
//   1. A user-level syscall pays a hardware mode switch that dominates real
//      IPC latency and is identical for both kernels. The harness charges
//      the same modelled trap cost per kernel crossing on both sides.
//   2. This executable model maintains Atmosphere's ghost state at runtime;
//      Verus erases ghost code at compile time. The Atmosphere numbers
//      therefore carry bookkeeping the paper's binary does not.
//
// Writes a machine-readable BENCH_table3_syscall_latency.json (all_ok is
// the flatness gate; CI fails when it is false) and honors ATMO_BENCH_QUICK.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench/pipeline.h"
#include "src/baseline/cap_kernel.h"
#include "src/baseline/linux_net.h"  // TrapCost
#include "src/core/kernel.h"
#include "src/hw/cycles.h"

namespace atmo {
namespace {

constexpr std::uint64_t kFramesPer2M = kPageSize2M / kPageSize4K;  // 512
constexpr std::uint64_t kFramesPer1G = kPageSize1G / kPageSize4K;  // 262144
constexpr double kFlatThreshold = 1.3;

// Kernel-op machine sizes (total frames) and bare-allocator sizes for the
// 1G exhaustion path (1G regions don't fit in the kernel sizes).
constexpr std::uint64_t kKernelSizes[] = {4096, 16384, 65536};
constexpr std::uint64_t k1GSizes[] = {2 * kFramesPer1G, 4 * kFramesPer1G, 8 * kFramesPer1G};

bool Quick() { return std::getenv("ATMO_BENCH_QUICK") != nullptr; }

TrapCost g_trap;

// One kernel crossing: enter + exit.
inline void ModeSwitch() {
  g_trap.Enter();
  g_trap.Exit();
}

double Median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Times `timed` per op in blocks of `per_block` (reset runs untimed between
// ops) and returns the median block's cycles/op.
double MedianPerOp(int samples, int per_block, const std::function<void()>& timed,
                   const std::function<void()>& reset) {
  std::vector<double> blocks;
  blocks.reserve(static_cast<std::size_t>(samples));
  for (int s = 0; s < samples; ++s) {
    std::uint64_t total = 0;
    for (int i = 0; i < per_block; ++i) {
      std::uint64_t start = ReadCycles();
      timed();
      total += ReadCycles() - start;
      reset();
    }
    blocks.push_back(static_cast<double>(total) / per_block);
  }
  return Median(blocks);
}

// --- Atmosphere: call/reply round trip through the verified kernel ---
double AtmoCallReply(std::uint64_t frames) {
  BootConfig config;
  config.frames = frames;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), 1024, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto client = kernel.BootCreateThread(proc.value);
  auto server = kernel.BootCreateThread(proc.value);

  Syscall ne;
  ne.op = SysOp::kNewEndpoint;
  ne.edpt_idx = 0;
  SyscallRet e = kernel.Step(client.value, ne);
  kernel.pm_mut().BindEndpoint(server.value, 0, e.value);
  Syscall recv;
  recv.op = SysOp::kRecv;
  recv.edpt_idx = 0;
  kernel.Step(server.value, recv);  // park the server

  Syscall call;
  call.op = SysOp::kCall;
  call.edpt_idx = 0;
  call.payload.scalars = {1, 2, 3, 4};
  Syscall reply;
  reply.op = SysOp::kReply;
  reply.payload.scalars = {5, 6, 7, 8};

  auto round = [&] {
    ModeSwitch();  // client call trap
    kernel.Step(client.value, call);
    (void)kernel.TakeInbound(server.value);
    ModeSwitch();  // server reply trap
    kernel.Step(server.value, reply);
    (void)kernel.TakeInbound(client.value);
    // Server parks again for the next round (third crossing in this
    // protocol; seL4's ReplyRecv folds it into the reply).
    ModeSwitch();
    kernel.Step(server.value, recv);
  };

  int warmup = static_cast<int>(bench::ScaledOps(2000));
  int rounds = static_cast<int>(bench::ScaledOps(20000));
  int samples = 200;
  int per_block = std::max(1, rounds / samples);
  for (int i = 0; i < warmup; ++i) {
    round();
  }
  std::vector<double> blocks;
  for (int s = 0; s < samples; ++s) {
    std::uint64_t start = ReadCycles();
    for (int i = 0; i < per_block; ++i) {
      round();
    }
    blocks.push_back(static_cast<double>(ReadCycles() - start) / per_block);
  }
  return Median(blocks);
}

// --- seL4-like: Call + ReplyRecv fastpath (machine-size independent) ---
double CapKernelCallReply() {
  CapKernel ck;
  std::uint32_t client = ck.CreateTcb();
  std::uint32_t server = ck.CreateTcb();
  std::uint32_t ep = ck.CreateEndpoint();
  std::uint32_t client_ep = ck.InstallCap(client, CapType::kEndpoint, ep, CapRights::kAll, 7);
  std::uint32_t server_ep = ck.InstallCap(server, CapType::kEndpoint, ep, CapRights::kAll);
  ck.Recv(server, server_ep);

  auto round = [&] {
    ModeSwitch();  // client call trap
    ck.Call(client, client_ep, {1, 2, 3, 4});
    ModeSwitch();  // server reply-recv trap
    ck.ReplyRecv(server, server_ep, {5, 6, 7, 8});
  };

  int warmup = static_cast<int>(bench::ScaledOps(2000));
  int rounds = static_cast<int>(bench::ScaledOps(20000));
  int samples = 200;
  int per_block = std::max(1, rounds / samples);
  for (int i = 0; i < warmup; ++i) {
    round();
  }
  std::vector<double> blocks;
  for (int s = 0; s < samples; ++s) {
    std::uint64_t start = ReadCycles();
    for (int i = 0; i < per_block; ++i) {
      round();
    }
    blocks.push_back(static_cast<double>(ReadCycles() - start) / per_block);
  }
  return Median(blocks);
}

// --- Atmosphere: map one 4K page (syscall), unmap untimed ---
double AtmoMap4K(std::uint64_t frames) {
  BootConfig config;
  config.frames = frames;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), frames / 2, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);

  Syscall mmap;
  mmap.op = SysOp::kMmap;
  mmap.va_range = VaRange{0x400000, 1, PageSize::k4K};
  mmap.map_perm = MapEntryPerm{.writable = true, .user = true, .no_execute = false};
  Syscall munmap;
  munmap.op = SysOp::kMunmap;
  munmap.va_range = mmap.va_range;

  // Warm the table chain so the steady-state op is "install a leaf".
  int warmup = static_cast<int>(bench::ScaledOps(500));
  for (int i = 0; i < warmup; ++i) {
    kernel.Step(thrd.value, mmap);
    kernel.Step(thrd.value, munmap);
  }
  int samples = static_cast<int>(bench::ScaledOps(200));
  return MedianPerOp(
      samples, 20,
      [&] {
        ModeSwitch();
        kernel.Step(thrd.value, mmap);
      },
      [&] { kernel.Step(thrd.value, munmap); });
}

// --- seL4-like: Page_Map (derive + install), unmap untimed ---
double CapKernelMapPage() {
  CapKernel ck;
  std::uint32_t tcb = ck.CreateTcb();
  std::uint32_t vspace = ck.CreateVSpace();
  std::uint32_t vcap = ck.InstallCap(tcb, CapType::kVSpace, vspace, CapRights::kAll);
  std::uint32_t fcap = ck.InstallCap(tcb, CapType::kFrame, ck.CreateFrame(), CapRights::kAll);

  int warmup = static_cast<int>(bench::ScaledOps(500));
  for (int i = 0; i < warmup; ++i) {
    ck.MapPage(tcb, fcap, vcap, 0x400000, CapRights::kAll);
    ck.UnmapPage(tcb, fcap);
  }
  int samples = static_cast<int>(bench::ScaledOps(200));
  return MedianPerOp(
      samples, 20,
      [&] {
        ModeSwitch();
        ck.MapPage(tcb, fcap, vcap, 0x400000, CapRights::kAll);
      },
      [&] { ck.UnmapPage(tcb, fcap); });
}

// --- Atmosphere: fresh 2M mmap with every lower group fragmented ---
//
// Setup leaves exactly one coalescible 2M group (the topmost); each timed
// mmap must rebuild a 2M unit from 4K frames. The untimed reset unmaps and
// re-splits the unit so the next round takes the miss path again.
double AtmoMap2MFresh(std::uint64_t frames) {
  BootConfig config;
  config.frames = frames;
  config.reserved_frames = 16;
  Kernel kernel = std::move(*Kernel::Boot(config));
  auto ctnr = kernel.BootCreateContainer(kernel.root_container(), frames - 64, ~0ull);
  auto proc = kernel.BootCreateProcess(ctnr.value);
  auto thrd = kernel.BootCreateThread(proc.value);

  MapEntryPerm rw{.writable = true, .user = true, .no_execute = true};
  auto mmap4k = [&](VAddr va) {
    Syscall c;
    c.op = SysOp::kMmap;
    c.va_range = VaRange{va, 1, PageSize::k4K};
    c.map_perm = rw;
    return kernel.Step(thrd.value, c);
  };
  auto munmap = [&](VAddr va, PageSize size) {
    Syscall c;
    c.op = SysOp::kMunmap;
    c.va_range = VaRange{va, 1, size};
    kernel.Step(thrd.value, c);
  };

  // The 2M mapping goes at kBigVa. Mapping a 4K helper page in the adjacent
  // PD slot materializes the PML4/PDPT/PD chain without occupying kBigVa's
  // own PD entry, so the timed op never allocates table nodes.
  constexpr VAddr kBigVa = 0x80000000ull;
  mmap4k(kBigVa + kPageSize2M);

  // Fill phase: frames pop lowest-first, so mapping until ~one group of
  // frames remains leaves exactly the topmost 2M group untouched (free).
  std::vector<VAddr> fill;
  for (VAddr va = 0x10000000ull;
       kernel.alloc().FreeCount(PageSize::k4K) > kFramesPer2M + 8; va += kPageSize4K) {
    if (!mmap4k(va).ok()) {
      break;
    }
    fill.push_back(va);
  }
  // Fragmentation phase: keep the highest-PA mapping in each 2M group (so a
  // linear scan walks deep into the group before hitting it), unmap the
  // rest. Every group below the top stays unmergeable.
  std::map<std::uint64_t, std::pair<PagePtr, VAddr>> keep;  // group -> (pa, va)
  std::vector<std::pair<VAddr, std::uint64_t>> va_group;
  for (VAddr va : fill) {
    PagePtr pa = kernel.vm().Resolve(proc.value, va)->addr;
    std::uint64_t group = pa / kPageSize2M;
    va_group.emplace_back(va, group);
    auto it = keep.find(group);
    if (it == keep.end() || pa > it->second.first) {
      keep[group] = {pa, va};
    }
  }
  for (const auto& [va, group] : va_group) {
    if (keep[group].second != va) {
      munmap(va, PageSize::k4K);
    }
  }

  Syscall mm2;
  mm2.op = SysOp::kMmap;
  mm2.va_range = VaRange{kBigVa, 1, PageSize::k2M};
  mm2.map_perm = rw;

  int warmup = static_cast<int>(bench::ScaledOps(40));
  int samples = static_cast<int>(bench::ScaledOps(100));
  auto timed = [&] {
    ModeSwitch();
    SyscallRet ret = kernel.Step(thrd.value, mm2);
    if (!ret.ok()) {
      std::fprintf(stderr, "map_2m: fresh 2M mmap failed unexpectedly\n");
      std::exit(1);
    }
  };
  auto reset = [&] {
    PagePtr pa = kernel.vm().Resolve(proc.value, kBigVa)->addr;
    munmap(kBigVa, PageSize::k2M);
    kernel.alloc_mut().Split2M(pa);  // back to 512 free 4K frames
  };
  for (int i = 0; i < warmup; ++i) {
    timed();
    reset();
  }
  return MedianPerOp(samples, 5, timed, reset);
}

// --- Bare allocator: 1G allocation against a fully fragmented pool ---
//
// Every 1G region keeps one allocated 4K frame at its base (region 0 is
// blocked by the reserved boot frames), so AllocPage1G must fail. The
// linear allocator proves exhaustion by probing every region; the
// segregated allocator by finding no coalescible region indexed.
double Alloc1GExhausted(std::uint64_t frames) {
  PageAllocator alloc(frames, kFramesPer2M);  // first 2M unit reserved
  std::uint64_t regions = frames / kFramesPer1G;

  // Frames pop lowest-first: sweep-allocate up to the last region's base,
  // keep each region-base frame as the fragment, release the rest.
  std::vector<PageAlloc> sweep;
  sweep.reserve(frames - kFramesPer2M);
  std::vector<PageAlloc> fragments;
  std::uint64_t last_base = (regions - 1) * kFramesPer1G;
  for (;;) {
    std::optional<PageAlloc> page = alloc.AllocPage4K(kNullPtr);
    if (!page.has_value()) {
      break;
    }
    std::uint64_t frame = page->ptr / kPageSize4K;
    if (frame % kFramesPer1G == 0) {
      fragments.push_back(std::move(*page));
    } else {
      sweep.push_back(std::move(*page));
    }
    if (frame >= last_base) {
      break;
    }
  }
  for (PageAlloc& page : sweep) {
    alloc.FreePage(page.ptr, std::move(page.perm));
  }
  sweep.clear();

  int warmup = static_cast<int>(bench::ScaledOps(40));
  int samples = static_cast<int>(bench::ScaledOps(100));
  auto timed = [&] {
    if (alloc.AllocPage1G(kNullPtr).has_value()) {
      std::fprintf(stderr, "alloc_1g: allocation succeeded on a fragmented pool\n");
      std::exit(1);
    }
  };
  for (int i = 0; i < warmup; ++i) {
    timed();
  }
  double median = MedianPerOp(samples, 10, timed, [] {});
  for (PageAlloc& page : fragments) {
    alloc.FreePage(page.ptr, std::move(page.perm));
  }
  return median;
}

// --- Bare allocator: steady-state 1G alloc+free with a free region ---
double AllocFree1GHit(std::uint64_t frames) {
  PageAllocator alloc(frames, kFramesPer2M);
  int warmup = 4;
  int samples = static_cast<int>(bench::ScaledOps(60));
  std::optional<PageAlloc> held;
  auto timed = [&] {
    held = alloc.AllocPage1G(kNullPtr);
    if (!held.has_value()) {
      std::fprintf(stderr, "alloc_free_1g: allocation failed with a free region\n");
      std::exit(1);
    }
    alloc.FreePage(held->ptr, std::move(held->perm));
  };
  for (int i = 0; i < warmup; ++i) {
    timed();
  }
  return MedianPerOp(samples, 5, timed, [] {});
}

struct OpResult {
  std::string op;
  std::vector<std::uint64_t> frames;
  std::vector<double> medians;
  bool flat_required = false;

  double Growth() const {
    return (medians.size() > 1 && medians.front() > 0.0) ? medians.back() / medians.front()
                                                         : 1.0;
  }
  bool Ok() const { return !flat_required || Growth() <= kFlatThreshold; }
};

void AppendOpJson(obs::JsonWriter* w, const OpResult& r) {
  w->BeginObject();
  w->KV("op", r.op);
  w->Key("frames").BeginArray();
  for (std::uint64_t frames : r.frames) {
    w->Uint(frames);
  }
  w->EndArray();
  w->Key("median_cycles").BeginArray();
  for (double median : r.medians) {
    w->Double(median, "%.0f");
  }
  w->EndArray();
  w->KV("growth", r.Growth(), "%.3f");
  w->KV("flat_required", r.flat_required);
  w->KV("ok", r.Ok());
  w->EndObject();
}

}  // namespace
}  // namespace atmo

int main() {
  using namespace atmo;

  std::printf("=== Table 3: syscall latency (cycles, median) across machine sizes ===\n");
  std::printf("paper reference (c220g5): call/reply atmo 1058 vs seL4 1026;\n");
  std::printf("map a page atmo 1984 vs seL4 2650\n\n");

  std::vector<OpResult> ops;

  OpResult call_reply{.op = "call_reply", .flat_required = false};
  OpResult map_4k{.op = "map_4k", .flat_required = false};
  OpResult map_2m{.op = "map_2m", .flat_required = true};
  for (std::uint64_t frames : kKernelSizes) {
    call_reply.frames.push_back(frames);
    call_reply.medians.push_back(AtmoCallReply(frames));
    map_4k.frames.push_back(frames);
    map_4k.medians.push_back(AtmoMap4K(frames));
    map_2m.frames.push_back(frames);
    map_2m.medians.push_back(AtmoMap2MFresh(frames));
  }
  ops.push_back(std::move(call_reply));
  ops.push_back(std::move(map_4k));
  ops.push_back(std::move(map_2m));

  OpResult alloc_1g{.op = "alloc_1g_exhausted", .flat_required = true};
  for (std::uint64_t frames : k1GSizes) {
    alloc_1g.frames.push_back(frames);
    alloc_1g.medians.push_back(Alloc1GExhausted(frames));
  }
  ops.push_back(std::move(alloc_1g));

  OpResult hit{.op = "alloc_free_1g", .flat_required = false};
  hit.frames.push_back(k1GSizes[0]);
  hit.medians.push_back(AllocFree1GHit(k1GSizes[0]));
  ops.push_back(std::move(hit));

  OpResult sel4_ipc{.op = "sel4_call_reply", .flat_required = false};
  sel4_ipc.frames.push_back(kKernelSizes[0]);
  sel4_ipc.medians.push_back(CapKernelCallReply());
  ops.push_back(std::move(sel4_ipc));

  OpResult sel4_map{.op = "sel4_map_page", .flat_required = false};
  sel4_map.frames.push_back(kKernelSizes[0]);
  sel4_map.medians.push_back(CapKernelMapPage());
  ops.push_back(std::move(sel4_map));

  std::printf("%-22s %12s %12s %12s %8s %6s\n", "operation", "smallest", "mid", "largest",
              "growth", "gate");
  for (const OpResult& r : ops) {
    std::printf("%-22s %12.0f %12.0f %12.0f %7.2fx %6s\n", r.op.c_str(), r.medians[0],
                r.medians.size() > 1 ? r.medians[1] : 0.0,
                r.medians.size() > 2 ? r.medians[2] : 0.0, r.Growth(),
                r.flat_required ? (r.Ok() ? "PASS" : "FAIL") : "info");
  }

  bool all_ok = true;
  for (const OpResult& r : ops) {
    all_ok = all_ok && r.Ok();
  }

  obs::JsonWriter w;
  w.BeginObject();
  w.KV("bench", "table3_syscall_latency");
  w.KV("quick", Quick());
  w.KV("flat_threshold", kFlatThreshold, "%.2f");
  w.Key("ops").BeginArray();
  for (const OpResult& r : ops) {
    AppendOpJson(&w, r);
  }
  w.EndArray();
  w.KV("all_ok", all_ok);
  w.EndObject();
  obs::WriteTextFile("BENCH_table3_syscall_latency.json", w.str() + "\n");
  std::printf("\nwrote BENCH_table3_syscall_latency.json (all_ok=%s)\n",
              all_ok ? "true" : "false");
  return all_ok ? 0 : 1;
}
