// End-to-end load harness: ~10^6 simulated clients driven through a Maglev
// load balancer into httpd/kv-store backends over the simulated NIC, with
// every request paying one verified kernel syscall — either per-call checked
// (one RefinementChecker::Step per request) or batched through a syscall
// ring (SQ entries pushed via the shared-memory fast path, one checked
// kRingEnter transition per batch; DESIGN.md §13).
//
// Shared by bench/bench_end_to_end.cc (the measured Figure-style bench with
// the BENCH_end_to_end.json summary and the >=5x amortization gate) and
// examples/load_driver.cpp (the narrative walkthrough at friendlier scale).

#ifndef ATMO_BENCH_END_TO_END_H_
#define ATMO_BENCH_END_TO_END_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bench/pipeline.h"
#include "src/verif/refinement_checker.h"

namespace atmo {
namespace bench {

struct E2EOptions {
  std::uint64_t requests = 100000;
  // Distinct client 5-tuples generated round-robin (2^20 ~= a million).
  std::uint32_t clients_log2 = 20;
  // 0 = per-call checking (one checker.Step per request); otherwise the
  // number of requests drained per checked kRingEnter transition.
  std::uint32_t batch = 0;
  // true: SQ entries arrive via Kernel::RingPushDirect (the shared-memory
  // io_uring fast path — no kernel transition per submit). false: each
  // submit is its own checked kRingSubmit syscall.
  bool shm_submit = true;
  // Zero-copy splice path (DESIGN.md §15): responses come from pre-rendered
  // DMA slices transmitted in place (TxInPlaceDeferred) instead of being
  // copied into claimed TX buffers, and each RX burst pays a checked
  // kBorrow page-grant rendezvous (Recv + Send-with-grant + GrantReturn)
  // that lends the server thread the burst's pages read-only — the kernel
  // work the copies used to stand in for. bytes_copied must be 0 here.
  bool splice = false;
  // Trace-scale checking: sampled total_wf, periodic full-Ψ audit.
  RefinementChecker::Options checker{.check_wf_every = 64, .audit_every = 256,
                                     .incremental = true};
};

struct E2EResult {
  Row row;  // config name, requests completed, req/s, wall seconds
  // Kernel syscalls executed on behalf of requests (inner calls for the
  // batched configs) and the rate the checker certified them at.
  std::uint64_t inner_syscalls = 0;
  double checked_syscalls_per_sec = 0.0;
  // Request latency: ingestion -> the request's kernel work is certified
  // (per-call: its Step returns; batched: its batch's drain completes, so
  // queueing delay is included). Bucketed obs::Histogram percentiles.
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t httpd_responses = 0;
  std::uint64_t kv_responses = 0;
  std::uint64_t batch_drains = 0;
  // Payload bytes staged through memcpy during the serving loop
  // (obs::CopyProbe delta) — the number the splice path drives to zero and
  // CI gates at zero; copy-path configs report their true copy volume.
  std::uint64_t bytes_copied = 0;
  double bytes_copied_per_request = 0.0;
  // Splice config only: responses transmitted in place from pre-rendered
  // slices (the remainder fell back to the TxClaim copy path).
  std::uint64_t spliced_responses = 0;
  // Per-stage latency attribution from the sampled trace ids (requests
  // whose RxView drew a nonzero id from the obs sampler). The stage
  // timestamps partition [burst peek, certification] exactly, so per
  // request the stage durations sum to its "e2e" entry by construction:
  //   percall : rx -> app -> tx -> check
  //   batched : rx -> app -> tx -> ring_drain -> check
  //   splice  : rx -> app -> tx -> deliver -> check
  // Exact-ns percentiles over the samples (not bucketed), plus the "e2e"
  // reference row computed over the same sampled population.
  struct StageStats {
    std::string stage;
    std::uint64_t count = 0;
    std::uint64_t p50_ns = 0;
    std::uint64_t p95_ns = 0;
    std::uint64_t p99_ns = 0;
  };
  std::vector<StageStats> stage_breakdown;
  std::uint64_t sampled_requests = 0;
  bool all_ok = false;
};

E2EResult RunEndToEnd(const std::string& config_name, const E2EOptions& options);

// Syscall-only amortization microbench: the same rotating mmap/munmap trace
// checked per-call (batch = 0) or through shared-memory-submitted ring
// batches. Returns certified inner-syscalls per second — the number the
// >=5x batched-vs-per-call gate compares. `use_arena` toggles the checker's
// spec-rep arenas; the arena-off run is the baseline for the
// allocations-per-checked-step gate (DESIGN.md §14).
double CheckedSyscallRate(std::uint64_t ops, std::uint32_t batch,
                          CheckStats* stats_out = nullptr, bool use_arena = true);

}  // namespace bench
}  // namespace atmo

#endif  // ATMO_BENCH_END_TO_END_H_
