// Figure 6 reproduction: Maglev load-balancer throughput (Mpps) and httpd
// request rate (K req/s).
//
// Maglev configurations (paper, per core): linux sockets 1.0 Mpps, dpdk
// 9.72, atmo-c2 13.3, atmo-c1-b32 8.8, atmo-c1-b1 1.66. The application
// work is identical everywhere: parse the frame, hash the 5-tuple, look up
// the Maglev table, rewrite the destination, transmit.
//
// httpd (paper): nginx-on-Linux 70.9 K req/s vs atmo httpd linked with the
// driver 99.4 K req/s. Both servers here run the same HTTP parser and
// response builder; the difference is the data path (per-request trap +
// layered stack vs polled driver).

#include <thread>

#include "bench/pipeline.h"
#include "src/apps/httpd.h"
#include "src/apps/maglev.h"
#include "src/baseline/linux_net.h"

namespace atmo {
namespace bench {
namespace {

constexpr std::uint32_t kRing = 512;

Maglev MakeLb() {
  Maglev lb(65537);
  for (int i = 0; i < 16; ++i) {
    MaglevBackend backend;
    backend.name = "backend-" + std::to_string(i);
    backend.mac = MacAddr{0x02, 0, 0, 0, 0x10, static_cast<std::uint8_t>(i)};
    backend.ip = 0x0a010000u + static_cast<std::uint32_t>(i);
    lb.AddBackend(backend);
  }
  lb.Populate();
  return lb;
}

std::size_t FlowPayload(std::size_t i, std::uint8_t* buf) {
  std::uint64_t v = i;
  std::memcpy(buf, &v, 8);
  return 8;
}

volatile std::uint64_t g_sink;

// --- Maglev over the Linux raw-socket path ---
std::uint64_t MaglevLinux(std::uint64_t target) {
  Machine m;
  PacketPool pool(4096, FlowPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  LinuxNetStack stack(&driver);
  stack.AddRoute(0x0a000000, 8);
  stack.AddRoute(0x0b000000, 8);
  Maglev lb = MakeLb();

  std::uint64_t done = 0;
  std::uint8_t frame[kMaxFrameLen];
  while (done < target) {
    m.nic.DeliverRx(16);
    std::size_t len = stack.RecvRaw(frame, sizeof(frame));
    if (len == 0) {
      continue;
    }
    if (lb.ForwardPacket(frame, len) >= 0) {
      stack.SendRaw(frame, len);
      m.nic.ProcessTx(16);
      ++done;
    }
  }
  return done;
}

// --- Maglev over the polled driver (dpdk / atmo-driver) ---
std::uint64_t MaglevDirect(std::uint64_t target, std::uint32_t batch) {
  Machine m;
  PacketPool pool(4096, FlowPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  Maglev lb = MakeLb();

  std::uint64_t done = 0;
  std::uint8_t frame[kMaxFrameLen];
  while (done < target) {
    m.nic.DeliverRx(batch);
    std::uint32_t got = driver.RxBurstInPlace(
        [&](VAddr iova, std::uint16_t len) {
          m.arena.Read(iova, frame, len);
          if (lb.ForwardPacket(frame, len) >= 0) {
            m.arena.Write(iova, frame, len);  // rewritten headers back
            driver.TxInPlaceDeferred(iova, len);
          }
        },
        batch);
    if (got > 0) {
      driver.TxFlush();
    }
    done += got;
    m.nic.ProcessTx(batch);
  }
  return done;
}

struct PktSlot {
  std::uint16_t len = 0;
  std::uint8_t bytes[128];
};

// --- Maglev with the driver on a second core (atmo-c2) ---
std::uint64_t MaglevC2(std::uint64_t target) {
  Machine m;
  PacketPool pool(4096, FlowPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  Maglev lb = MakeLb();

  auto rx_ring = std::make_unique<SpscRing<PktSlot, 1024>>();
  auto tx_ring = std::make_unique<SpscRing<PktSlot, 1024>>();
  std::atomic<bool> stop{false};

  std::thread driver_core([&] {
    RxFrame frames[32];
    PktSlot slot;
    while (!stop.load(std::memory_order_relaxed)) {
      m.nic.DeliverRx(32);
      std::uint32_t got = driver.RxBurst(frames, 32);
      for (std::uint32_t i = 0; i < got; ++i) {
        slot.len = frames[i].len;
        std::memcpy(slot.bytes, frames[i].data.data(), frames[i].len);
        while (!rx_ring->Push(slot) && !stop.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
        }
      }
      while (tx_ring->Pop(&slot)) {
        TxFrame frame{slot.bytes, slot.len};
        driver.TxBurst(&frame, 1);
      }
      m.nic.ProcessTx(32);
      if (got == 0) {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t done = 0;
  std::uint64_t idle = 0;
  PktSlot slot;
  while (done < target) {
    if (!rx_ring->Pop(&slot)) {
      if (++idle % 64 == 0) {
        std::this_thread::yield();
      }
      continue;
    }
    if (lb.ForwardPacket(slot.bytes, slot.len) >= 0) {
      while (!tx_ring->Push(slot)) {
        std::this_thread::yield();
      }
      ++done;
    }
  }
  stop.store(true);
  driver_core.join();
  return done;
}

// --- Maglev with batched IPC to the driver on one core (atmo-c1-bN) ---
std::uint64_t MaglevC1(std::uint64_t target, std::uint32_t batch) {
  Machine m;
  PacketPool pool(4096, FlowPayload);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  Maglev lb = MakeLb();
  C1Rendezvous ipc;

  SpscRing<PktSlot, 256> rx_ring;
  SpscRing<PktSlot, 256> tx_ring;

  std::uint64_t done = 0;
  while (done < target) {
    ipc.InvokeDriver([&] {
      PktSlot slot;
      while (tx_ring.Pop(&slot)) {
        TxFrame frame{slot.bytes, slot.len};
        driver.TxBurst(&frame, 1);
      }
      m.nic.ProcessTx(batch);
      m.nic.DeliverRx(batch);
      RxFrame frames[64];
      std::uint32_t got = driver.RxBurst(frames, batch);
      for (std::uint32_t i = 0; i < got; ++i) {
        slot.len = frames[i].len;
        std::memcpy(slot.bytes, frames[i].data.data(), frames[i].len);
        rx_ring.Push(slot);
      }
    });
    PktSlot slot;
    while (rx_ring.Pop(&slot)) {
      if (lb.ForwardPacket(slot.bytes, slot.len) >= 0) {
        tx_ring.Push(slot);
        ++done;
      }
    }
  }
  return done;
}

// --- httpd ---

std::size_t HttpPayload(std::size_t i, std::uint8_t* buf) {
  const char* paths[] = {"/", "/index.html", "/about.html"};
  int n = std::snprintf(reinterpret_cast<char*>(buf), 256,
                        "GET %s HTTP/1.1\r\nHost: bench-%zu\r\nConnection: keep-alive\r\n\r\n",
                        paths[i % 3], i % 20);
  return static_cast<std::size_t>(n);
}

Httpd MakeServer() {
  Httpd server;
  server.AddPage("/", "text/html", std::string(512, 'x'));
  server.AddPage("/index.html", "text/html", std::string(1024, 'y'));
  server.AddPage("/about.html", "text/html", std::string(256, 'z'));
  return server;
}

// nginx-like: httpd logic over the Linux stack, trap per request/response.
std::uint64_t HttpdLinux(std::uint64_t target) {
  Machine m;
  PacketPool pool(64, HttpPayload, /*dst_port=*/80);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  LinuxNetStack stack(&driver);
  stack.AddRoute(0x0a000000, 8);
  stack.AddRoute(0x0b000000, 8);
  stack.OpenPort(80);
  Httpd server = MakeServer();

  std::uint64_t done = 0;
  std::uint8_t req[kMaxFrameLen];
  std::uint8_t resp[2048];
  FiveTuple reply_flow{.src_ip = 0x0a0000fe, .dst_ip = 0x0b000001, .src_port = 80,
                       .dst_port = 1024};
  while (done < target) {
    m.nic.DeliverRx(16);
    std::size_t got = stack.Recv(req, sizeof(req));
    if (got == 0) {
      continue;
    }
    std::size_t rlen = server.HandleRequest(req, got, resp, sizeof(resp));
    // Responses above one MTU go out as multiple sends.
    std::size_t off = 0;
    while (off < rlen) {
      std::size_t chunk = std::min<std::size_t>(rlen - off, 1400);
      stack.Send(reply_flow, resp + off, chunk);
      off += chunk;
    }
    m.nic.ProcessTx(16);
    ++done;
  }
  return done;
}

// atmo httpd: directly linked with the polled driver.
std::uint64_t HttpdDirect(std::uint64_t target) {
  Machine m;
  PacketPool pool(64, HttpPayload, /*dst_port=*/80);
  m.nic.SetPacketSource(pool.AsSource());
  m.nic.SetPacketSink([](const std::uint8_t*, std::size_t) {});
  IxgbeDriver driver(&m.arena, &m.nic, kRing);
  driver.Init();
  Httpd server = MakeServer();

  std::uint64_t done = 0;
  std::uint8_t frame[kMaxFrameLen];
  std::uint8_t resp[2048];
  std::uint8_t out_frame[kMaxFrameLen];
  MacAddr src{0x02, 0, 0, 0, 0, 0x03};
  while (done < target) {
    m.nic.DeliverRx(32);
    std::uint32_t got = driver.RxBurstInPlace(
        [&](VAddr iova, std::uint16_t len) {
          m.arena.Read(iova, frame, len);
          auto parsed = ParseUdpFrame(frame, len);
          if (!parsed.has_value()) {
            return;
          }
          std::size_t rlen =
              server.HandleRequest(parsed->payload, parsed->payload_len, resp, sizeof(resp));
          FiveTuple reply{.src_ip = parsed->flow.dst_ip, .dst_ip = parsed->flow.src_ip,
                          .src_port = parsed->flow.dst_port,
                          .dst_port = parsed->flow.src_port};
          std::size_t off = 0;
          while (off < rlen) {
            std::size_t chunk = std::min<std::size_t>(rlen - off, 1400);
            std::size_t flen =
                BuildUdpFrame(out_frame, src, parsed->src_mac, reply, resp + off, chunk);
            TxFrame tx{out_frame, static_cast<std::uint16_t>(flen)};
            driver.TxBurst(&tx, 1);
            off += chunk;
          }
          ++done;
        },
        32);
    g_sink = got;
    m.nic.ProcessTx(32);
  }
  return done;
}

}  // namespace
}  // namespace bench
}  // namespace atmo

int main() {
  using namespace atmo::bench;
  std::uint64_t target = ScaledOps(1000000);

  std::printf("=== Figure 6: Maglev load balancer + httpd ===\n");
  std::printf("paper reference: maglev linux 1.0 Mpps, dpdk 9.72, atmo-c2 13.3,\n");
  std::printf("atmo-c1-b32 8.8, atmo-c1-b1 1.66; httpd nginx 70.9K vs atmo 99.4K req/s\n");

  BenchJson maglev_json("fig6_maglev");
  PrintHeader("Maglev forwarding", "Mpps");
  maglev_json.Record(RunTimed("linux", target / 8, MaglevLinux), "M");
  maglev_json.Record(
      RunTimed("dpdk", target, [](std::uint64_t n) { return MaglevDirect(n, 32); }), "M");
  maglev_json.Record(
      RunTimed("atmo-c1-b1", target / 8, [](std::uint64_t n) { return MaglevC1(n, 1); }),
      "M");
  maglev_json.Record(
      RunTimed("atmo-c1-b32", target, [](std::uint64_t n) { return MaglevC1(n, 32); }), "M");
  maglev_json.Record(RunTimed("atmo-c2", target, MaglevC2), "M");

  maglev_json.Write();

  BenchJson httpd_json("fig6_httpd");
  PrintHeader("httpd static content", "K req/s");
  httpd_json.Record(RunTimed("nginx-linux", target / 16, HttpdLinux), "K");
  httpd_json.Record(RunTimed("atmo-httpd-driver", target / 4, HttpdDirect), "K");
  httpd_json.Write();
  return 0;
}
