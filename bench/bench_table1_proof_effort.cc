// Table 1 reproduction: proof effort across verified-kernel projects.
//
// The paper's Table 1 quotes published proof-to-code ratios; they are
// reproduced verbatim. For this repository, the analog of the paper's
// proof/spec code is measured by classifying the source tree:
//
//   executable kernel     — the microkernel implementation itself
//   specification         — abstract state, per-syscall specs, invariants,
//                           refinement checkers, isolation/noninterference
//   harness ("proofs")    — the machinery that discharges the obligations
//                           (refinement checker, registries, trace runners)
//   framework (vstd)      — the permission/ghost framework (the analog of
//                           Verus's vstd, which the paper does not count)
//   unverified substrate  — simulated hardware, drivers, apps, baselines
//
// Lines are physical non-blank lines, counted at run time from the source
// tree this binary was built from.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

std::size_t CountLines(const fs::path& file) {
  std::ifstream in(file);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (!blank) {
      ++lines;
    }
  }
  return lines;
}

struct Category {
  const char* name;
  std::vector<std::string> prefixes;  // relative to src/
  std::size_t lines = 0;
};

}  // namespace

int main() {
  fs::path root = ATMO_SOURCE_DIR;
  fs::path src = root / "src";

  Category categories[] = {
      {"executable kernel",
       {"pmem/", "pagetable/page_table", "proc/objects", "proc/process_manager", "core/",
        "iommu/", "ipc/", "hw/phys_mem", "hw/mmu", "hw/cycles", "hw/mmio", "vstd/types"},
       0},
      {"specification",
       {"spec/", "pagetable/refinement", "proc/invariants", "sec/"},
       0},
      {"verification harness",
       {"verif/", "vstd/check"},
       0},
      {"framework (vstd analog)",
       {"vstd/spec_map", "vstd/spec_set", "vstd/spec_seq", "vstd/points_to",
        "vstd/permission_map", "vstd/static_list"},
       0},
      {"unverified substrate",
       {"hw/sim_nic", "hw/sim_nvme", "drivers/", "net/", "apps/", "baseline/"},
       0},
  };

  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    std::string rel = fs::relative(entry.path(), src).generic_string();
    for (Category& category : categories) {
      bool match = false;
      for (const std::string& prefix : category.prefixes) {
        if (rel.rfind(prefix, 0) == 0) {
          match = true;
          break;
        }
      }
      if (match) {
        category.lines += CountLines(entry.path());
        break;
      }
    }
  }

  std::printf("=== Table 1: proof effort for existing verification projects ===\n\n");
  std::printf("%-12s %-10s %-14s %s\n", "Name", "Language", "Spec Lang.", "Proof-to-Code");
  std::printf("%-12s %-10s %-14s %s\n", "----", "--------", "----------", "-------------");
  std::printf("%-12s %-10s %-14s %s\n", "seL4", "C+Asm", "Isabelle/HOL", "20:1");
  std::printf("%-12s %-10s %-14s %s\n", "CertiKOS", "C+Asm", "Coq", "14.9:1");
  std::printf("%-12s %-10s %-14s %s\n", "SeKVM", "C+Asm", "Coq", "6.9:1");
  std::printf("%-12s %-10s %-14s %s\n", "Ironclad", "Dafny", "Dafny", "4.8:1");
  std::printf("%-12s %-10s %-14s %s\n", "NrOS", "Rust", "Verus", "10:1");
  std::printf("%-12s %-10s %-14s %s\n", "VeriSMo", "Rust", "Verus", "2:1");
  std::printf("%-12s %-10s %-14s %s  (paper: 6,048 exec / 20,098 proof+spec)\n",
              "Atmosphere", "Rust", "Verus", "3.32:1");

  std::printf("\n--- this reproduction (non-blank lines, measured from the tree) ---\n\n");
  std::size_t exec = 0;
  std::size_t spec = 0;
  for (const Category& category : categories) {
    std::printf("%-26s %8zu\n", category.name, category.lines);
    if (std::string(category.name) == "executable kernel") {
      exec = category.lines;
    }
    if (std::string(category.name) == "specification" ||
        std::string(category.name) == "verification harness") {
      spec += category.lines;
    }
  }
  std::printf("\nspec+harness : executable kernel = %.2f:1  (paper: 3.32:1)\n",
              exec > 0 ? static_cast<double>(spec) / static_cast<double>(exec) : 0.0);
  return 0;
}
