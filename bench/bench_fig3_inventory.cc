// Figure 3 analog: development inventory.
//
// The paper's Figure 3 plots the Atmosphere git commit history across its
// three clean-slate versions — a development-process artifact that a
// reproduction cannot regenerate (there is no second team re-living the
// schedule). The closest measurable analog is the final system inventory:
// per-module size of everything this reproduction built, which is printed
// here alongside the paper's development-history facts for reference.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

namespace {

namespace fs = std::filesystem;

std::size_t CountLines(const fs::path& file) {
  std::ifstream in(file);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  return lines;
}

}  // namespace

int main() {
  std::printf("=== Figure 3 analog: development inventory ===\n\n");
  std::printf("Figure 3 itself (commit history over versions v1: 2 months, v2: 8 months,\n");
  std::printf("v3: 4 months, ~2 person-years total, 50%% code reuse v2->v3) is a\n");
  std::printf("development-process artifact and is not reproducible; the per-module\n");
  std::printf("inventory of this reproduction is the closest measurable analog.\n\n");

  fs::path root = ATMO_SOURCE_DIR;
  std::map<std::string, std::size_t> modules;
  std::size_t total = 0;
  for (const char* top : {"src", "tests", "bench", "examples"}) {
    fs::path dir = root / top;
    if (!fs::exists(dir)) {
      continue;
    }
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::string ext = entry.path().extension().string();
      if (ext != ".cc" && ext != ".h") {
        continue;
      }
      std::string rel = fs::relative(entry.path(), root).generic_string();
      std::string module = rel.substr(0, rel.find('/', rel.find('/') + 1));
      std::size_t lines = CountLines(entry.path());
      modules[module] += lines;
      total += lines;
    }
  }

  std::printf("%-28s %10s\n", "module", "lines");
  std::printf("%-28s %10s\n", "------", "-----");
  for (const auto& [module, lines] : modules) {
    std::printf("%-28s %10zu\n", module.c_str(), lines);
  }
  std::printf("%-28s %10zu\n", "TOTAL", total);
  return 0;
}
