// End-to-end batched-syscall benchmark: ~10^6 simulated clients through
// Maglev into httpd + kv-store backends over the simulated NIC, with every
// request paying one verified kernel syscall. Configurations differ only in
// how that syscall is certified:
//
//   percall        — one RefinementChecker::Step per request (the PR-4
//                    trace-scale discipline applied per call)
//   batched-bN     — requests submitted to a syscall ring via the
//                    shared-memory fast path; one checked kRingEnter
//                    transition certifies N inner calls (DESIGN.md §13)
//   batched-b32-sc — same, but each submit is its own checked kRingSubmit
//                    syscall (shows what the shm fast path buys)
//
// The >=5x amortization gate runs on the syscall-only microbench
// (CheckedSyscallRate): identical rotating mmap/munmap trace, identical
// checker options, per-call vs batch-256 — so the comparison is pure
// checking overhead, not diluted by app/driver work. In full mode the gate
// is enforced via the exit code; quick mode (CI) reports the numbers and
// ci/run_tests.sh enforces absolute floors from ci/perf_floors.json.

#include <algorithm>
#include <cstdlib>

#include "bench/end_to_end.h"
#include "src/obs/alloc_hook.h"
#include "src/obs/exporters.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/sampler.h"

int main() {
  using namespace atmo::bench;

  std::printf("=== End-to-end: batched syscall rings under load ===\n");
  std::printf("~1M simulated clients -> Maglev -> httpd/kv-store over SimNic;\n");
  std::printf("one verified mmap/munmap per request, per-call vs ring-batched\n\n");

  std::uint64_t target = ScaledOps(400000);
  const char* quick = std::getenv("ATMO_BENCH_QUICK");

  BenchJson json("end_to_end");
  PrintHeader("end-to-end request rate", "K req/s");

  std::vector<E2EResult> results;
  auto run = [&](const char* name, std::uint64_t requests, std::uint32_t batch,
                 bool shm_submit, bool splice = false) {
    E2EOptions opt;
    opt.requests = requests;
    opt.batch = batch;
    opt.shm_submit = shm_submit;
    opt.splice = splice;
    E2EResult r = RunEndToEnd(name, opt);
    json.Record(r.row, "K");
    results.push_back(r);
  };

  // Per-call checking is the slow path; keep its row affordable.
  run("percall", target / 4, 0, true);
  run("batched-b32-syscall-submit", target, 32, false);
  run("batched-b32", target, 32, true);
  run("batched-b256", target, 256, true);

  // Zero-copy splice path: responses transmitted in place from pre-rendered
  // DMA slices, kernel work as one borrow-grant rendezvous per RX burst
  // (DESIGN.md §15). bytes_copied_per_request must be exactly 0.
  //
  // Measured in both modes: with causal tracing live (token-bucket sampler
  // at its runtime period + a flight recorder on the serving thread — this
  // is the reported "splice" row and the source of the OBS trace artifact)
  // and with observability off (sampler period 0, no recorder). Always-on
  // sampled tracing must cost <=3% req/s: the obs_overhead CI gate. One
  // discarded warmup run, then the modes alternate — first-run cache
  // warming and slow drift (thermal, scheduler) hit both sides equally
  // instead of biasing whichever mode runs first — and each side reports
  // its best of three so one hiccup doesn't decide the ratio.
  std::uint64_t sample_period = atmo::obs::TraceSamplePeriod();
  if (sample_period == 0) {
    sample_period = 64;  // tracing off via env: still measure the default cost
  }
  E2EOptions splice_opt;
  splice_opt.requests = target;
  splice_opt.batch = 0;
  splice_opt.splice = true;
  atmo::obs::FlightRecorder recorder(1 << 15, atmo::obs::ClockMode::kReal, 0);
  // Always-on tracing keeps only the request-stage stamps; the checker's
  // per-step spans skip the ring store (one compare) so sampled tracing
  // stays inside the 3% budget.
  recorder.SetCategoryFilter(atmo::obs::kCatRequest);
  E2EResult splice_traced;
  std::vector<atmo::obs::TraceEvent> trace_events;
  double traced_best = -1.0;
  double untraced_best = -1.0;
  atmo::obs::SetEnabled(false);
  atmo::obs::SetTraceSamplePeriod(0);
  RunEndToEnd("splice-warmup", splice_opt);
  for (int rep = 0; rep < 6; ++rep) {
    if (rep % 2 == 0) {
      atmo::obs::SetEnabled(true);
      atmo::obs::SetTraceSamplePeriod(sample_period);
      recorder.Clear();
      atmo::obs::ScopedThreadRecorder install(&recorder);
      E2EResult r = RunEndToEnd("splice", splice_opt);
      if (r.row.ops_per_sec > traced_best) {
        traced_best = r.row.ops_per_sec;
        splice_traced = r;
        trace_events = recorder.Snapshot();
      }
    } else {
      atmo::obs::SetEnabled(false);
      atmo::obs::SetTraceSamplePeriod(0);
      E2EResult r = RunEndToEnd("splice-untraced", splice_opt);
      untraced_best = std::max(untraced_best, r.row.ops_per_sec);
    }
  }
  atmo::obs::SetEnabled(false);
  atmo::obs::SetTraceSamplePeriod(sample_period);
  json.Record(splice_traced.row, "K");
  results.push_back(splice_traced);
  double obs_overhead_pct =
      untraced_best > 0 ? (1.0 - traced_best / untraced_best) * 100.0 : 0.0;

  // Syscall-only amortization microbench: the >=5x gate's numbers.
  std::uint64_t micro_ops = ScaledOps(400000);
  atmo::CheckStats batched_stats;
  atmo::CheckStats percall_stats;
  double percall_rate = CheckedSyscallRate(micro_ops / 4, 0, &percall_stats);
  double batched_rate = CheckedSyscallRate(micro_ops, 256, &batched_stats);
  double speedup = percall_rate > 0 ? batched_rate / percall_rate : 0.0;
  bool gate_pass = speedup >= 5.0;

  // Allocation gate (DESIGN.md §14): the same per-call trace with the
  // spec-rep arenas off is the baseline; the arena-backed checker must
  // allocate from the global heap >=10x less per checked step
  // (ci/perf_floors.json). Per-call is the right denominator — in batched
  // mode one checked step covers 256 inner syscalls, so the concrete
  // kernel's own allocations dominate and the checking overhead the arenas
  // remove is already amortized away.
  atmo::CheckStats noarena_stats;
  CheckedSyscallRate(micro_ops / 4, 0, &noarena_stats, /*use_arena=*/false);
  bool alloc_counting = atmo::obs::HeapCountingActive();
  double arena_allocs_per_step =
      percall_stats.steps > 0
          ? static_cast<double>(percall_stats.heap_allocs) / percall_stats.steps
          : 0.0;
  double noarena_allocs_per_step =
      noarena_stats.steps > 0
          ? static_cast<double>(noarena_stats.heap_allocs) / noarena_stats.steps
          : 0.0;
  double alloc_reduction =
      arena_allocs_per_step > 0 ? noarena_allocs_per_step / arena_allocs_per_step : 0.0;

  std::printf("\nchecked-syscall rate (syscall-only trace, same checker options):\n");
  std::printf("  per-call     : %12.0f checked syscalls/s\n", percall_rate);
  std::printf("  batched-b256 : %12.0f checked syscalls/s (%llu drains)\n", batched_rate,
              static_cast<unsigned long long>(batched_stats.batch_drains));
  std::printf("  amortization : %.2fx %s (gate: >=5x)\n", speedup,
              gate_pass ? "PASS" : "FAIL");
  std::printf("  heap allocs / checked step: %.1f with arenas, %.1f without (%.1fx)\n",
              arena_allocs_per_step, noarena_allocs_per_step, alloc_reduction);

  bool all_ok = true;
  for (const E2EResult& r : results) {
    all_ok = all_ok && r.all_ok;
  }

  // The zero-copy claim is deterministic (a counter, not a rate), so it is
  // a hard gate even in quick mode.
  const E2EResult& splice = results.back();
  bool splice_zero_copy = splice.bytes_copied == 0 && splice.spliced_responses > 0;
  std::printf("\nsplice path: %llu/%llu responses spliced, %llu payload bytes copied %s\n",
              static_cast<unsigned long long>(splice.spliced_responses),
              static_cast<unsigned long long>(splice.row.ops),
              static_cast<unsigned long long>(splice.bytes_copied),
              splice_zero_copy ? "(PASS: zero-copy)" : "(FAIL)");
  std::printf("observability: traced %.0f vs untraced %.0f req/s -> %.2f%% overhead "
              "(1/%llu sampling, %zu trace events)\n",
              traced_best, untraced_best, obs_overhead_pct,
              static_cast<unsigned long long>(sample_period), trace_events.size());
  for (const auto& stage : splice.stage_breakdown) {
    std::printf("  stage %-10s p50 %8llu ns  p95 %8llu ns  p99 %8llu ns  (%llu samples)\n",
                stage.stage.c_str(), static_cast<unsigned long long>(stage.p50_ns),
                static_cast<unsigned long long>(stage.p95_ns),
                static_cast<unsigned long long>(stage.p99_ns),
                static_cast<unsigned long long>(stage.count));
  }

  json.Write([&](atmo::obs::JsonWriter* w) {
    w->KV("clients", std::uint64_t{1} << 20);
    w->Key("configs").BeginArray();
    for (const E2EResult& r : results) {
      w->BeginObject();
      w->KV("config", r.row.config);
      w->KV("req_per_sec", r.row.ops_per_sec, "%.1f");
      w->KV("inner_syscalls", r.inner_syscalls);
      w->KV("checked_syscalls_per_sec", r.checked_syscalls_per_sec, "%.1f");
      w->KV("p50_ns", r.p50_ns);
      w->KV("p99_ns", r.p99_ns);
      w->KV("httpd_responses", r.httpd_responses);
      w->KV("kv_responses", r.kv_responses);
      w->KV("batch_drains", r.batch_drains);
      w->KV("bytes_copied", r.bytes_copied);
      w->KV("bytes_copied_per_request", r.bytes_copied_per_request, "%.2f");
      w->KV("spliced_responses", r.spliced_responses);
      w->KV("sampled_requests", r.sampled_requests);
      w->Key("stage_breakdown").BeginObject();
      for (const auto& stage : r.stage_breakdown) {
        w->Key(stage.stage.c_str()).BeginObject();
        w->KV("count", stage.count);
        w->KV("p50_ns", stage.p50_ns);
        w->KV("p95_ns", stage.p95_ns);
        w->KV("p99_ns", stage.p99_ns);
        w->EndObject();
      }
      w->EndObject();
      w->KV("all_ok", r.all_ok);
      w->EndObject();
    }
    w->EndArray();
    w->KV("percall_checked_syscalls_per_sec", percall_rate, "%.1f");
    w->KV("batched_checked_syscalls_per_sec", batched_rate, "%.1f");
    w->KV("batched_vs_percall_speedup", speedup, "%.3f");
    w->KV("speedup_gate_pass", gate_pass);
    w->KV("alloc_counting_active", alloc_counting);
    w->KV("heap_allocs_per_checked_step", arena_allocs_per_step, "%.2f");
    w->KV("noarena_heap_allocs_per_checked_step", noarena_allocs_per_step, "%.2f");
    w->KV("alloc_reduction_vs_noarena", alloc_reduction, "%.2f");
    w->KV("splice_zero_copy", splice_zero_copy);
    w->KV("splice_traced_req_per_sec", traced_best, "%.1f");
    w->KV("splice_untraced_req_per_sec", untraced_best, "%.1f");
    w->KV("obs_overhead_pct", obs_overhead_pct, "%.3f");
    w->KV("trace_sample_period", sample_period);
    w->KV("trace_events_recorded", std::uint64_t{trace_events.size()});
    w->KV("all_ok", all_ok);
  });

  // Causal-trace artifact: the traced splice run's flight-recorder events,
  // stitched into per-request tracks with flow arrows (loads in Perfetto).
  std::string trace_doc = atmo::obs::StitchedRequestTraceJson(trace_events, "end_to_end");
  if (atmo::obs::WriteTextFile("OBS_end_to_end.trace.json", trace_doc + "\n")) {
    std::printf("wrote OBS_end_to_end.trace.json\n");
  }

  if (!all_ok) {
    std::fprintf(stderr, "end_to_end: a configuration finished with total_wf not ok\n");
    return 1;
  }
  if (!splice_zero_copy) {
    std::fprintf(stderr, "end_to_end: splice path copied payload bytes\n");
    return 1;
  }
  // The amortization gate is meaningful at full scale; quick mode is too
  // noisy for a ratio gate (run_tests.sh enforces absolute floors instead).
  if (!quick && !gate_pass) {
    std::fprintf(stderr, "end_to_end: batched amortization below the 5x gate\n");
    return 1;
  }
  return 0;
}
