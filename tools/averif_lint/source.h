// Source model shared by every averif-lint pass: raw text plus a
// comment/string-blanked shadow for structural scans (brace matching,
// identifier search), with position -> line mapping. Suppression comments
// are looked up in the raw text. The parser is deliberately AST-lite:
// no LLVM dependency, runs in milliseconds, and the checked idioms are all
// grep-shaped by construction.

#ifndef ATMO_TOOLS_AVERIF_LINT_SOURCE_H_
#define ATMO_TOOLS_AVERIF_LINT_SOURCE_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace atmo::lint {

struct SourceFile {
  std::string rel_path;
  std::string raw;
  std::string code;  // same length as raw; comments and literals blanked
  std::vector<std::size_t> line_starts;
  bool ok = false;

  std::size_t LineOf(std::size_t pos) const;
  std::string Line(std::size_t line) const;  // 1-based
  bool SuppressedAt(std::size_t line, const std::string& rule) const;
};

// Loads root/rel_path; `ok` is false when unreadable.
SourceFile LoadFile(const std::string& root, const std::string& rel_path);

std::string StripCommentsAndStrings(const std::string& in);

bool IsIdentChar(char c);

// Position just past the matching '}' for the '{' at `open`, or npos.
std::size_t MatchBrace(const std::string& code, std::size_t open);
std::size_t MatchParen(const std::string& code, std::size_t open);
std::size_t SkipWs(const std::string& code, std::size_t i);
// Last non-whitespace position strictly before `i`, or npos.
std::size_t PrevNonWs(const std::string& code, std::size_t i);

// Whole-identifier search: occurrences of `ident` in code[range) that are
// not part of a longer identifier.
std::vector<std::size_t> FindIdent(const std::string& code, const std::string& ident,
                                   std::size_t begin = 0,
                                   std::size_t end = std::string::npos);
bool ContainsIdent(const std::string& code, const std::string& ident,
                   std::size_t begin = 0, std::size_t end = std::string::npos);

struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
};

// [begin, end) of the body of `class name { ... }`, or nullopt.
std::optional<Range> ClassBody(const SourceFile& f, const std::string& name);

// Function body lookup: definition of `func` in `f` (first match whose
// parameter list is followed by '{'). Works for free functions and
// qualified definitions (searches the unqualified name). The returned range
// includes the braces: [pos of '{', one past '}').
std::optional<Range> FunctionBody(const SourceFile& f, const std::string& func);

// Enumerators of `enum class name { ... }`.
std::vector<std::string> ParseEnumerators(const SourceFile& f, const std::string& enum_name);

// All .cc/.h files under root/src, sorted, repo-root-relative.
std::vector<std::string> TreeFiles(const std::string& root);

std::string JsonEscape(const std::string& in);

}  // namespace atmo::lint

#endif  // ATMO_TOOLS_AVERIF_LINT_SOURCE_H_
