#include <algorithm>
#include <cctype>
#include <set>

#include "tools/averif_lint/rules.h"

namespace atmo::lint {

void AddFinding(std::vector<Finding>* findings, const SourceFile& f, std::size_t line,
                const std::string& rule, std::string message, std::string suggestion) {
  if (f.ok && f.SuppressedAt(line, rule)) {
    return;
  }
  findings->push_back(
      Finding{f.rel_path, line, rule, std::move(message), std::move(suggestion)});
}

void MissingFile(std::vector<Finding>* findings, const Options& options,
                 const std::string& rel_path, const std::string& rule) {
  if (options.strict) {
    findings->push_back(Finding{rel_path, 0, rule,
                                "required input file is missing or unreadable", ""});
  }
}

namespace {

const std::set<std::string>& MethodKeywords() {
  static const std::set<std::string> kw = {
      "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
      "delete", "throw", "static_cast", "const_cast", "reinterpret_cast",
      "dynamic_cast", "decltype", "alignof", "noexcept", "assert"};
  return kw;
}

}  // namespace

// Collects method declarations at depth 0 of a class body, tracking access
// sections. `default_public` matters only for structs.
std::vector<Method> ParseMethods(const SourceFile& f, Range body, bool default_public) {
  std::vector<Method> out;
  const std::string& code = f.code;
  bool is_public = default_public;
  std::size_t stmt_start = body.begin;  // start of the current declaration
  for (std::size_t i = body.begin; i < body.end; ++i) {
    char c = code[i];
    if (c == '{') {
      // Either a nested type/initializer or an inline method body; the
      // method path handles its own brace below, so a '{' seen here at
      // depth 0 belongs to a nested struct/enum/initializer. Skip it whole.
      std::size_t close = MatchBrace(code, i);
      if (close == std::string::npos) {
        break;
      }
      i = close - 1;
      stmt_start = close;
      continue;
    }
    if (c == ';' || c == '}') {
      stmt_start = i + 1;
      continue;
    }
    if (c == ':' && i > body.begin) {
      // Access specifier? Look back for public/private/protected.
      std::size_t before = i;
      while (before > body.begin &&
             std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
        --before;
      }
      std::size_t id_end = before;
      while (before > body.begin && IsIdentChar(code[before - 1])) {
        --before;
      }
      std::string word = code.substr(before, id_end - before);
      if (word == "public") {
        is_public = true;
        stmt_start = i + 1;
      } else if (word == "private" || word == "protected") {
        is_public = false;
        stmt_start = i + 1;
      }
      continue;
    }
    if (c != '(') {
      continue;
    }
    // Candidate method: identifier directly before '('.
    std::size_t id_end = i;
    while (id_end > stmt_start &&
           std::isspace(static_cast<unsigned char>(code[id_end - 1])) != 0) {
      --id_end;
    }
    std::size_t id_begin = id_end;
    while (id_begin > stmt_start && IsIdentChar(code[id_begin - 1])) {
      --id_begin;
    }
    std::string name = code.substr(id_begin, id_end - id_begin);
    std::size_t close = MatchParen(code, i);
    if (close == std::string::npos || close > body.end) {
      break;
    }
    std::string decl_head = code.substr(stmt_start, i - stmt_start);
    bool skip = name.empty() || MethodKeywords().count(name) != 0 ||
                (id_begin > stmt_start && code[id_begin - 1] == '~') ||
                decl_head.find("operator") != std::string::npos ||
                decl_head.find("using") != std::string::npos ||
                decl_head.find("friend") != std::string::npos ||
                decl_head.find("typedef") != std::string::npos;
    bool is_static = decl_head.find("static") != std::string::npos;
    // Scan the trailer for const / = default / = delete / body.
    std::size_t j = close;
    bool is_const = false;
    bool deleted = false;
    while (j < body.end) {
      j = SkipWs(code, j);
      if (j >= body.end) {
        break;
      }
      if (code[j] == '{' || code[j] == ';') {
        break;
      }
      if (code[j] == '=') {
        deleted = true;  // = default / = delete / = 0 — nothing to check
        while (j < body.end && code[j] != ';') {
          ++j;
        }
        break;
      }
      if (IsIdentChar(code[j])) {
        std::size_t w = j;
        while (w < body.end && IsIdentChar(code[w])) {
          ++w;
        }
        std::string word = code.substr(j, w - j);
        if (word == "const") {
          is_const = true;
        }
        j = w;
        continue;
      }
      if (code[j] == '(') {  // noexcept(...), annotation macros
        std::size_t pc = MatchParen(code, j);
        if (pc == std::string::npos) {
          break;
        }
        j = pc;
        continue;
      }
      if (code[j] == '-' || code[j] == '>') {  // trailing return type
        ++j;
        continue;
      }
      ++j;
    }
    Method m;
    m.name = name;
    m.is_public = is_public;
    m.is_const = is_const;
    m.is_static = is_static;
    m.decl_line = f.LineOf(id_begin);
    if (j < body.end && code[j] == '{') {
      std::size_t bclose = MatchBrace(code, j);
      if (bclose == std::string::npos || bclose > body.end + 1) {
        break;
      }
      m.body = code.substr(j, bclose - j);
      i = bclose - 1;
      stmt_start = bclose;
    } else {
      i = j;
      stmt_start = j + 1;
    }
    if (!skip && !deleted) {
      out.push_back(std::move(m));
    }
  }
  return out;
}

const std::vector<Subsystem>& Subsystems() {
  static const std::vector<Subsystem> subsystems = {
      {"PageAllocator",
       "src/pmem/page_allocator.h",
       "src/pmem/page_allocator.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {},
       {"Wf"},
       false},
      {"VmManager",
       "src/core/vm_manager.h",
       "src/core/vm_manager.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {},
       {"Wf"},
       false},
      {"IommuManager",
       "src/iommu/iommu_manager.h",
       "src/iommu/iommu_manager.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {"owner_overrides_"},
       {"Wf"},
       false},
      // PageTable has no log of its own: every mutation happens under a
      // VmManager/IommuManager call that logs the owning proc/domain (the
      // "logged-by-caller" pattern, see vm_manager.h). Its lockstep index
      // (va_index_) is still checked.
      {"PageTable",
       "src/pagetable/page_table.h",
       "src/pagetable/page_table.cc",
       {},
       {},
       {},
       {"StructureWf"},
       true},
      {"ProcessManager",
       "src/proc/process_manager.h",
       "src/proc/process_manager.cc",
       // PermissionMap's GetMut/Insert/Remove log into the per-map dirty
       // sets; scheduler state is covered by sched_dirty_.
       {".GetMut(", ".Insert(", ".Remove(", "sched_dirty_ = true", ".DrainInto"},
       {"DrainDirty"},
       {},
       {"Wf"},
       false},
      {"SyscallRingTable",
       "src/core/syscall_ring.h",
       "src/core/syscall_ring.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {},
       {"Wf"},
       false},
  };
  return subsystems;
}

}  // namespace atmo::lint
