// averif_lint CLI. Usage:
//   averif_lint [--root <dir>] [--json] [--fix-suggestions] [--strict]
//               [--baseline <findings.json>]
// Exits 0 when the tree is clean (after baseline subtraction, if any),
// 1 on any finding, 2 on usage errors or an unreadable baseline.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "tools/averif_lint/lint.h"

int main(int argc, char** argv) {
  atmo::lint::Options options;
  bool json = false;
  bool fix_suggestions = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      options.root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--fix-suggestions") == 0) {
      fix_suggestions = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      options.strict = true;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: averif_lint [--root <dir>] [--json] [--fix-suggestions] "
                   "[--strict] [--baseline <findings.json>]\n";
      return 0;
    } else {
      std::cerr << "averif_lint: unknown argument " << argv[i] << "\n";
      return 2;
    }
  }
  std::vector<atmo::lint::Finding> findings = atmo::lint::RunAllRules(options);
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "averif_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    auto baseline = atmo::lint::ParseFindingsJson(buf.str());
    if (!baseline) {
      std::cerr << "averif_lint: baseline " << baseline_path
                << " is not a findings JSON array\n";
      return 2;
    }
    findings = atmo::lint::SubtractBaseline(findings, *baseline);
  }
  if (json) {
    std::cout << atmo::lint::ToJson(findings);
  } else {
    std::cout << atmo::lint::ToText(findings, fix_suggestions);
  }
  return findings.empty() ? 0 : 1;
}
