// averif_lint CLI. Usage:
//   averif_lint [--root <dir>] [--json] [--fix-suggestions] [--strict]
// Exits 0 when the tree is clean, 1 on any finding, 2 on usage errors.

#include <cstring>
#include <iostream>
#include <string>

#include "tools/averif_lint/lint.h"

int main(int argc, char** argv) {
  atmo::lint::Options options;
  bool json = false;
  bool fix_suggestions = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      options.root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--fix-suggestions") == 0) {
      fix_suggestions = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      options.strict = true;
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: averif_lint [--root <dir>] [--json] [--fix-suggestions] "
                   "[--strict]\n";
      return 0;
    } else {
      std::cerr << "averif_lint: unknown argument " << argv[i] << "\n";
      return 2;
    }
  }
  std::vector<atmo::lint::Finding> findings = atmo::lint::RunAllRules(options);
  if (json) {
    std::cout << atmo::lint::ToJson(findings);
  } else {
    std::cout << atmo::lint::ToText(findings, fix_suggestions);
  }
  return findings.empty() ? 0 : 1;
}
