// averif-lint: static verification-discipline checker.
//
// The refinement harness only catches discipline drift at runtime, and only
// on traces that happen to hit it. This tool checks the pairing rules the
// codebase relies on *statically*, the way Verus's linear ghost types make
// spec/impl drift a compile error. Per-function rules (DESIGN.md §11):
//
//   spec-coverage        every SysOp enumerator has a case in the spec
//                        dispatcher, the kernel dispatch, SysOpName and the
//                        frame-condition table (and none is dead)
//   trace-op-name        every SysOp enumerator has a label in the obs
//                        trace-name table (TraceOpLabel), so no syscall
//                        traces as "sys.unknown"
//   dirty-log            every public mutating method of the logged
//                        subsystems records into its dirty log, directly or
//                        via a callee that does (call-graph transitive)
//   lockstep-index       every hashed index member has a Wf cross-check
//                        clause and a CloneForVerification rebuild
//   sysop-switch-default no `default:` label in a switch over SysOp
//   error-path           spec predicates taking the syscall return value
//                        establish failure atomicity before any Fail(...)
//
// Interprocedural rules over the project call graph (DESIGN.md §16):
//
//   hot-path-alloc       nothing reachable from an ATMO_HOT_PATH(
//                        hot-path-alloc) root may allocate outside an
//                        ArenaScope — the static twin of obs::AllocProbe
//   payload-copy         no memcpy/memmove/byte-loop copy is reachable from
//                        an ATMO_HOT_PATH(payload-copy) root — the static
//                        twin of obs::CopyProbe
//   lock-discipline      ATMO_GUARDED_BY fields are only touched under
//                        their mutex; ATMO_REQUIRES contracts are enforced
//                        at every call site across functions
//   grant-lifetime       recorded page borrows (`borrows_`) stay revocable:
//                        the kGrantReturn path and a teardown path must
//                        both reach a `borrows_.erase`
//
// The parser is deliberately AST-lite: comment/string stripping, brace
// matching and identifier scanning over the real source files — no LLVM
// dependency, runs in milliseconds, and the checked idioms are all
// grep-shaped by construction. A finding can be locally waived with
//   // averif-lint: allow(<rule>) — <justification>
// on the flagged line or up to four lines above it.

#ifndef ATMO_TOOLS_AVERIF_LINT_LINT_H_
#define ATMO_TOOLS_AVERIF_LINT_LINT_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace atmo::lint {

struct Finding {
  std::string file;  // repo-root-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string suggestion;  // skeleton of the missing clause (may be empty)
};

struct Options {
  std::string root = ".";  // directory containing src/
  // When true, a rule whose input file is missing or unreadable reports a
  // finding instead of silently skipping. CI runs strict; fixture trees in
  // tests provide only the files a rule needs and run lenient.
  bool strict = false;
};

// Runs every rule over the tree at options.root. Findings are sorted by
// (file, line, rule, message) and deduplicated, so output is deterministic.
std::vector<Finding> RunAllRules(const Options& options);

// Machine-readable report: a JSON array of {file, line, rule, message}.
std::string ToJson(const std::vector<Finding>& findings);

// Human-readable report, one "file:line: [rule] message" per finding; with
// fix_suggestions, each finding is followed by its skeleton when available.
std::string ToText(const std::vector<Finding>& findings, bool fix_suggestions);

// Parses a findings JSON produced by ToJson (the only accepted shape).
// Returns nullopt when the text is not a findings array.
std::optional<std::vector<Finding>> ParseFindingsJson(const std::string& text);

// Baseline diff: drops findings whose (file, rule, message) triple appears
// in the baseline, so a checked-in findings file gates only *new* findings.
// Line numbers are ignored on purpose — unrelated edits move them.
std::vector<Finding> SubtractBaseline(const std::vector<Finding>& findings,
                                      const std::vector<Finding>& baseline);

}  // namespace atmo::lint

#endif  // ATMO_TOOLS_AVERIF_LINT_LINT_H_
