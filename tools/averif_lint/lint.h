// averif-lint: static verification-discipline checker.
//
// The refinement harness only catches discipline drift at runtime, and only
// on traces that happen to hit it. This tool checks the pairing rules the
// codebase relies on *statically*, the way Verus's linear ghost types make
// spec/impl drift a compile error. Rules (DESIGN.md §11):
//
//   spec-coverage        every SysOp enumerator has a case in the spec
//                        dispatcher, the kernel dispatch, SysOpName and the
//                        frame-condition table (and none is dead)
//   trace-op-name        every SysOp enumerator has a label in the obs
//                        trace-name table (TraceOpLabel), so no syscall
//                        traces as "sys.unknown"
//   dirty-log            every public mutating method of the logged
//                        subsystems records into its dirty log, directly or
//                        via a same-class callee that does
//   lockstep-index       every hashed index member has a Wf cross-check
//                        clause and a CloneForVerification rebuild
//   sysop-switch-default no `default:` label in a switch over SysOp
//   error-path           spec predicates taking the syscall return value
//                        establish failure atomicity before any Fail(...)
//
// The parser is deliberately AST-lite: comment/string stripping, brace
// matching and identifier scanning over the real source files — no LLVM
// dependency, runs in milliseconds, and the checked idioms are all
// grep-shaped by construction. A finding can be locally waived with
//   // averif-lint: allow(<rule>) — <justification>
// on the flagged line or up to four lines above it.

#ifndef ATMO_TOOLS_AVERIF_LINT_LINT_H_
#define ATMO_TOOLS_AVERIF_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

namespace atmo::lint {

struct Finding {
  std::string file;  // repo-root-relative path
  std::size_t line = 0;
  std::string rule;
  std::string message;
  std::string suggestion;  // skeleton of the missing clause (may be empty)
};

struct Options {
  std::string root = ".";  // directory containing src/
  // When true, a rule whose input file is missing or unreadable reports a
  // finding instead of silently skipping. CI runs strict; fixture trees in
  // tests provide only the files a rule needs and run lenient.
  bool strict = false;
};

// Runs every rule over the tree at options.root. Findings are ordered by
// (file, line, rule) so output is deterministic.
std::vector<Finding> RunAllRules(const Options& options);

// Machine-readable report: a JSON array of {file, line, rule, message}.
std::string ToJson(const std::vector<Finding>& findings);

// Human-readable report, one "file:line: [rule] message" per finding; with
// fix_suggestions, each finding is followed by its skeleton when available.
std::string ToText(const std::vector<Finding>& findings, bool fix_suggestions);

}  // namespace atmo::lint

#endif  // ATMO_TOOLS_AVERIF_LINT_LINT_H_
