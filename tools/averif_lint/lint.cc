#include "tools/averif_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace atmo::lint {

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Source model: raw text + a comment/string-blanked shadow for structural
// scans (brace matching, identifier search), with position -> line mapping.
// Suppression comments are looked up in the raw text.
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string rel_path;
  std::string raw;
  std::string code;  // same length as raw; comments and literals blanked
  std::vector<std::size_t> line_starts;
  bool ok = false;

  std::size_t LineOf(std::size_t pos) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), pos);
    return static_cast<std::size_t>(it - line_starts.begin());
  }

  std::string Line(std::size_t line) const {  // 1-based
    if (line == 0 || line > line_starts.size()) {
      return std::string();
    }
    std::size_t begin = line_starts[line - 1];
    std::size_t end = line < line_starts.size() ? line_starts[line] : raw.size();
    return raw.substr(begin, end - begin);
  }

  bool SuppressedAt(std::size_t line, const std::string& rule) const {
    std::string needle = "averif-lint: allow(" + rule + ")";
    std::size_t first = line > 4 ? line - 4 : 1;
    for (std::size_t l = first; l <= line && l <= line_starts.size(); ++l) {
      if (Line(l).find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  }
};

std::string StripCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

SourceFile LoadFile(const std::string& root, const std::string& rel_path) {
  SourceFile f;
  f.rel_path = rel_path;
  std::ifstream in(fs::path(root) / rel_path, std::ios::binary);
  if (!in) {
    return f;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  f.raw = buf.str();
  f.code = StripCommentsAndStrings(f.raw);
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i] == '\n' && i + 1 < f.raw.size()) {
      f.line_starts.push_back(i + 1);
    }
  }
  f.ok = true;
  return f;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Position just past the matching '}' for the '{' at `open`, or npos.
std::size_t MatchBrace(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

std::size_t MatchParen(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') {
      ++depth;
    } else if (code[i] == ')') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

std::size_t SkipWs(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  return i;
}

// Whole-identifier search: occurrences of `ident` in code[range) that are not
// part of a longer identifier.
std::vector<std::size_t> FindIdent(const std::string& code, const std::string& ident,
                                   std::size_t begin = 0,
                                   std::size_t end = std::string::npos) {
  std::vector<std::size_t> out;
  end = std::min(end, code.size());
  std::size_t pos = begin;
  while ((pos = code.find(ident, pos)) != std::string::npos && pos < end) {
    bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    std::size_t after = pos + ident.size();
    bool right_ok = after >= code.size() || !IsIdentChar(code[after]);
    if (left_ok && right_ok) {
      out.push_back(pos);
    }
    pos = after;
  }
  return out;
}

bool ContainsIdent(const std::string& code, const std::string& ident,
                   std::size_t begin = 0, std::size_t end = std::string::npos) {
  return !FindIdent(code, ident, begin, end).empty();
}

// [begin, end) of the body of `class name { ... }`, or nullopt.
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::optional<Range> ClassBody(const SourceFile& f, const std::string& name) {
  for (std::size_t pos : FindIdent(f.code, name)) {
    // Must follow the `class`/`struct` keyword to be the definition.
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(f.code[before - 1])) != 0) {
      --before;
    }
    std::size_t kw_end = before;
    while (before > 0 && IsIdentChar(f.code[before - 1])) {
      --before;
    }
    std::string kw = f.code.substr(before, kw_end - before);
    if (kw != "class" && kw != "struct") {
      continue;
    }
    // Scan forward past an optional base-clause to '{'; a ';' first means a
    // forward declaration.
    std::size_t i = pos + name.size();
    while (i < f.code.size() && f.code[i] != '{' && f.code[i] != ';') {
      ++i;
    }
    if (i >= f.code.size() || f.code[i] != '{') {
      continue;
    }
    std::size_t close = MatchBrace(f.code, i);
    if (close == std::string::npos) {
      continue;
    }
    return Range{i + 1, close - 1};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Method model for the dirty-log rule.
// ---------------------------------------------------------------------------

struct Method {
  std::string name;
  bool is_public = false;
  bool is_const = false;
  bool is_static = false;
  std::size_t decl_line = 0;
  std::string body;  // inline body if any
};

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if", "for", "while", "switch", "return", "sizeof", "catch", "new",
      "delete", "throw", "static_cast", "const_cast", "reinterpret_cast",
      "dynamic_cast", "decltype", "alignof", "noexcept", "assert"};
  return kw;
}

// Collects method declarations at depth 0 of a class body, tracking access
// sections. `struct_default_public` matters only for structs.
std::vector<Method> ParseMethods(const SourceFile& f, Range body, bool default_public) {
  std::vector<Method> out;
  const std::string& code = f.code;
  bool is_public = default_public;
  std::size_t stmt_start = body.begin;  // start of the current declaration
  for (std::size_t i = body.begin; i < body.end; ++i) {
    char c = code[i];
    if (c == '{') {
      // Either a nested type/initializer or an inline method body; the
      // method path handles its own brace below, so a '{' seen here at
      // depth 0 belongs to a nested struct/enum/initializer. Skip it whole.
      std::size_t close = MatchBrace(code, i);
      if (close == std::string::npos) {
        break;
      }
      i = close - 1;
      stmt_start = close;
      continue;
    }
    if (c == ';' || c == '}') {
      stmt_start = i + 1;
      continue;
    }
    if (c == ':' && i > body.begin) {
      // Access specifier? Look back for public/private/protected.
      std::size_t before = i;
      while (before > body.begin &&
             std::isspace(static_cast<unsigned char>(code[before - 1])) != 0) {
        --before;
      }
      std::size_t id_end = before;
      while (before > body.begin && IsIdentChar(code[before - 1])) {
        --before;
      }
      std::string word = code.substr(before, id_end - before);
      if (word == "public") {
        is_public = true;
        stmt_start = i + 1;
      } else if (word == "private" || word == "protected") {
        is_public = false;
        stmt_start = i + 1;
      }
      continue;
    }
    if (c != '(') {
      continue;
    }
    // Candidate method: identifier directly before '('.
    std::size_t id_end = i;
    while (id_end > stmt_start &&
           std::isspace(static_cast<unsigned char>(code[id_end - 1])) != 0) {
      --id_end;
    }
    std::size_t id_begin = id_end;
    while (id_begin > stmt_start && IsIdentChar(code[id_begin - 1])) {
      --id_begin;
    }
    std::string name = code.substr(id_begin, id_end - id_begin);
    std::size_t close = MatchParen(code, i);
    if (close == std::string::npos || close > body.end) {
      break;
    }
    std::string decl_head = code.substr(stmt_start, i - stmt_start);
    bool skip = name.empty() || Keywords().count(name) != 0 ||
                (id_begin > stmt_start && code[id_begin - 1] == '~') ||
                decl_head.find("operator") != std::string::npos ||
                decl_head.find("using") != std::string::npos ||
                decl_head.find("friend") != std::string::npos ||
                decl_head.find("typedef") != std::string::npos;
    bool is_static = decl_head.find("static") != std::string::npos;
    // Constructor: name equals the class-scope type being declared — caller
    // filters by comparing to the class name; here we mark it via callback.
    // (Handled by caller via Method::name comparison.)
    // Scan the trailer for const / = default / = delete / body.
    std::size_t j = close;
    bool is_const = false;
    bool deleted = false;
    std::string trailer;
    while (j < body.end) {
      j = SkipWs(code, j);
      if (j >= body.end) {
        break;
      }
      if (code[j] == '{' || code[j] == ';') {
        break;
      }
      if (code[j] == '=') {
        deleted = true;  // = default / = delete / = 0 — nothing to check
        // skip to ';'
        while (j < body.end && code[j] != ';') {
          ++j;
        }
        break;
      }
      if (IsIdentChar(code[j])) {
        std::size_t w = j;
        while (w < body.end && IsIdentChar(code[w])) {
          ++w;
        }
        std::string word = code.substr(j, w - j);
        if (word == "const") {
          is_const = true;
        }
        trailer += word + " ";
        j = w;
        continue;
      }
      if (code[j] == '(') {  // noexcept(...)
        std::size_t pc = MatchParen(code, j);
        if (pc == std::string::npos) {
          break;
        }
        j = pc;
        continue;
      }
      if (code[j] == '-' || code[j] == '>') {  // trailing return type
        ++j;
        continue;
      }
      ++j;
    }
    Method m;
    m.name = name;
    m.is_public = is_public;
    m.is_const = is_const;
    m.is_static = is_static;
    m.decl_line = f.LineOf(id_begin);
    if (j < body.end && code[j] == '{') {
      std::size_t bclose = MatchBrace(code, j);
      if (bclose == std::string::npos || bclose > body.end + 1) {
        break;
      }
      m.body = code.substr(j, bclose - j);
      i = bclose - 1;
      stmt_start = bclose;
    } else {
      i = j;
      stmt_start = j + 1;
    }
    if (!skip && !deleted) {
      out.push_back(std::move(m));
    }
  }
  return out;
}

// Bodies of out-of-line definitions `Class::Method(...) ... { ... }` in a
// source file, keyed by method name (overload bodies concatenated).
std::map<std::string, std::string> OutOfLineBodies(const SourceFile& f,
                                                   const std::string& class_name) {
  std::map<std::string, std::string> out;
  const std::string& code = f.code;
  for (std::size_t pos : FindIdent(code, class_name)) {
    std::size_t i = pos + class_name.size();
    if (i + 1 >= code.size() || code[i] != ':' || code[i + 1] != ':') {
      continue;
    }
    i += 2;
    std::size_t id_begin = i;
    while (i < code.size() && IsIdentChar(code[i])) {
      ++i;
    }
    std::string name = code.substr(id_begin, i - id_begin);
    i = SkipWs(code, i);
    if (name.empty() || i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t close = MatchParen(code, i);
    if (close == std::string::npos) {
      continue;
    }
    // Definition if the trailer reaches '{' before ';'.
    std::size_t j = close;
    while (j < code.size() && code[j] != '{' && code[j] != ';') {
      ++j;
    }
    if (j >= code.size() || code[j] != '{') {
      continue;
    }
    std::size_t bclose = MatchBrace(code, j);
    if (bclose == std::string::npos) {
      continue;
    }
    out[name] += code.substr(j, bclose - j);
  }
  return out;
}

// True when `body` contains a plausible unqualified (or this->) call of
// `callee`: an identifier match followed by '(', not reached through a
// member/scope qualifier of some other object.
bool CallsSameClass(const std::string& body, const std::string& callee) {
  for (std::size_t pos : FindIdent(body, callee)) {
    std::size_t after = SkipWs(body, pos + callee.size());
    if (after >= body.size() || body[after] != '(') {
      continue;
    }
    if (pos == 0) {
      return true;
    }
    char prev = body[pos - 1];
    if (prev == '.' || prev == ':') {
      continue;  // other.callee() / Other::callee()
    }
    if (prev == '>') {
      // allow this->callee(), reject other->callee()
      if (pos >= 6 && body.compare(pos - 6, 6, "this->") == 0) {
        return true;
      }
      continue;
    }
    return true;
  }
  return false;
}

// Function body lookup: definition of `func` in `f` (first match whose
// parameter list is followed by '{'). Works for free functions and
// qualified definitions (searches the unqualified name).
std::optional<Range> FunctionBody(const SourceFile& f, const std::string& func) {
  const std::string& code = f.code;
  for (std::size_t pos : FindIdent(code, func)) {
    std::size_t i = SkipWs(code, pos + func.size());
    if (i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t close = MatchParen(code, i);
    if (close == std::string::npos) {
      continue;
    }
    std::size_t j = close;
    while (j < code.size() && code[j] != '{' && code[j] != ';') {
      if (code[j] == '(') {  // noexcept(...) etc.
        std::size_t pc = MatchParen(code, j);
        if (pc == std::string::npos) {
          break;
        }
        j = pc;
        continue;
      }
      ++j;
    }
    if (j >= code.size() || code[j] != '{') {
      continue;
    }
    std::size_t bclose = MatchBrace(code, j);
    if (bclose == std::string::npos) {
      continue;
    }
    return Range{j, bclose};
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Rule configuration
// ---------------------------------------------------------------------------

struct Subsystem {
  std::string class_name;
  std::string header;
  std::string source;                       // may be empty
  std::vector<std::string> mark_tokens;     // substrings counting as a direct mark
  std::vector<std::string> allow_methods;   // infrastructure methods (drains etc.)
  std::vector<std::string> index_members;   // extra lockstep members beyond *_index_
  std::vector<std::string> wf_methods;      // cross-check predicate names
  bool logged_by_caller = false;            // class-level dirty-log exemption
};

const std::vector<Subsystem>& Subsystems() {
  static const std::vector<Subsystem> subsystems = {
      {"PageAllocator",
       "src/pmem/page_allocator.h",
       "src/pmem/page_allocator.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {},
       {"Wf"},
       false},
      {"VmManager",
       "src/core/vm_manager.h",
       "src/core/vm_manager.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {},
       {"Wf"},
       false},
      {"IommuManager",
       "src/iommu/iommu_manager.h",
       "src/iommu/iommu_manager.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {"owner_overrides_"},
       {"Wf"},
       false},
      // PageTable has no log of its own: every mutation happens under a
      // VmManager/IommuManager call that logs the owning proc/domain (the
      // "logged-by-caller" pattern, see vm_manager.h). Its lockstep index
      // (va_index_) is still checked.
      {"PageTable",
       "src/pagetable/page_table.h",
       "src/pagetable/page_table.cc",
       {},
       {},
       {},
       {"StructureWf"},
       true},
      {"ProcessManager",
       "src/proc/process_manager.h",
       "src/proc/process_manager.cc",
       // PermissionMap's GetMut/Insert/Remove log into the per-map dirty
       // sets; scheduler state is covered by sched_dirty_.
       {".GetMut(", ".Insert(", ".Remove(", "sched_dirty_ = true", ".DrainInto"},
       {"DrainDirty"},
       {},
       {"Wf"},
       false},
      {"SyscallRingTable",
       "src/core/syscall_ring.h",
       "src/core/syscall_ring.cc",
       {"dirty_.Mark", "dirty_.DrainInto"},
       {"DrainDirtyInto"},
       {},
       {"Wf"},
       false},
  };
  return subsystems;
}

struct SpecLocation {
  std::string file;
  std::string function;  // empty = whole file
};

const std::vector<SpecLocation>& SpecCoverageLocations() {
  static const std::vector<SpecLocation> locations = {
      {"src/spec/syscall_specs.cc", "SyscallSpec"},
      {"src/core/kernel.cc", "SysOpName"},
      {"src/core/kernel.cc", "Exec"},
      {"src/spec/frame_profile.h", "FrameProfileFor"},
  };
  return locations;
}

void AddFinding(std::vector<Finding>* findings, const SourceFile& f, std::size_t line,
                const std::string& rule, std::string message, std::string suggestion) {
  if (f.ok && f.SuppressedAt(line, rule)) {
    return;
  }
  findings->push_back(
      Finding{f.rel_path, line, rule, std::move(message), std::move(suggestion)});
}

void MissingFile(std::vector<Finding>* findings, const Options& options,
                 const std::string& rel_path, const std::string& rule) {
  if (options.strict) {
    findings->push_back(Finding{rel_path, 0, rule,
                                "required input file is missing or unreadable", ""});
  }
}

// ---------------------------------------------------------------------------
// Rule: spec-coverage
// ---------------------------------------------------------------------------

std::vector<std::string> ParseEnumerators(const SourceFile& f, const std::string& enum_name) {
  std::vector<std::string> out;
  for (std::size_t pos : FindIdent(f.code, enum_name)) {
    // `enum class SysOp ... {`
    std::size_t i = pos + enum_name.size();
    while (i < f.code.size() && f.code[i] != '{' && f.code[i] != ';') {
      ++i;
    }
    if (i >= f.code.size() || f.code[i] != '{') {
      continue;
    }
    std::size_t close = MatchBrace(f.code, i);
    if (close == std::string::npos) {
      continue;
    }
    // Enumerators: identifiers that start each comma-separated item.
    std::size_t item_start = i + 1;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (f.code[j] == ',' || f.code[j] == '}') {
        std::size_t k = SkipWs(f.code, item_start);
        std::size_t e = k;
        while (e < j && IsIdentChar(f.code[e])) {
          ++e;
        }
        if (e > k) {
          out.push_back(f.code.substr(k, e - k));
        }
        item_start = j + 1;
      }
    }
    if (!out.empty()) {
      return out;
    }
  }
  return out;
}

// Shared engine for the SysOp-totality rules (`spec-coverage` and
// `trace-op-name`): every SysOp enumerator must be mentioned as
// `SysOp::<op>` inside each listed location.
void CheckSysOpCoverage(const Options& options, std::vector<Finding>* findings,
                        const std::string& rule,
                        const std::vector<SpecLocation>& locations) {
  SourceFile syscall_h = LoadFile(options.root, "src/core/syscall.h");
  if (!syscall_h.ok) {
    MissingFile(findings, options, "src/core/syscall.h", rule);
    return;
  }
  std::vector<std::string> ops = ParseEnumerators(syscall_h, "SysOp");
  if (ops.empty()) {
    MissingFile(findings, options, "src/core/syscall.h", rule);
    return;
  }
  std::map<std::string, SourceFile> files;
  for (const SpecLocation& loc : locations) {
    if (files.find(loc.file) == files.end()) {
      files.emplace(loc.file, LoadFile(options.root, loc.file));
    }
    const SourceFile& f = files.at(loc.file);
    if (!f.ok) {
      MissingFile(findings, options, loc.file, rule);
      continue;
    }
    Range range{0, f.code.size()};
    if (!loc.function.empty()) {
      std::optional<Range> body = FunctionBody(f, loc.function);
      if (!body) {
        MissingFile(findings, options, loc.file, rule);
        continue;
      }
      range = *body;
    }
    for (const std::string& op : ops) {
      // A covering mention is `SysOp::<op>` inside the location; the
      // compiler already guarantees any such mention in a switch is a case
      // label or comparison that handles the op.
      bool covered = false;
      for (std::size_t pos : FindIdent(f.code, op, range.begin, range.end)) {
        if (pos >= 7 && f.code.compare(pos - 7, 7, "SysOp::") == 0) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        std::string where = loc.function.empty() ? loc.file : loc.function;
        AddFinding(findings, f, f.LineOf(range.begin), rule,
                   "SysOp::" + op + " is not handled in " + where,
                   "add `case SysOp::" + op + ":` to " + where + " in " + loc.file);
      }
    }
  }
}

void RuleSpecCoverage(const Options& options, std::vector<Finding>* findings) {
  CheckSysOpCoverage(options, findings, "spec-coverage", SpecCoverageLocations());
}

// ---------------------------------------------------------------------------
// Rule: trace-op-name
// ---------------------------------------------------------------------------
//
// The observability layer names every syscall span via TraceOpLabel
// (src/obs/op_names.h). A SysOp enumerator missing from that table traces
// as "sys.unknown" and silently vanishes from per-op timelines, so the
// table must stay total exactly like the spec/frame tables.

void RuleTraceOpName(const Options& options, std::vector<Finding>* findings) {
  static const std::vector<SpecLocation> locations = {
      {"src/obs/op_names.h", "TraceOpLabel"},
  };
  CheckSysOpCoverage(options, findings, "trace-op-name", locations);
}

// ---------------------------------------------------------------------------
// Rule: dirty-log
// ---------------------------------------------------------------------------

void RuleDirtyLog(const Options& options, std::vector<Finding>* findings) {
  for (const Subsystem& sub : Subsystems()) {
    if (sub.logged_by_caller) {
      continue;
    }
    SourceFile header = LoadFile(options.root, sub.header);
    if (!header.ok) {
      MissingFile(findings, options, sub.header, "dirty-log");
      continue;
    }
    std::optional<Range> body = ClassBody(header, sub.class_name);
    if (!body) {
      MissingFile(findings, options, sub.header, "dirty-log");
      continue;
    }
    std::vector<Method> methods = ParseMethods(header, *body, false);
    // Drop constructors (name == class name).
    methods.erase(std::remove_if(methods.begin(), methods.end(),
                                 [&](const Method& m) { return m.name == sub.class_name; }),
                  methods.end());
    std::map<std::string, std::string> bodies;
    for (const Method& m : methods) {
      bodies[m.name] += m.body;
    }
    if (!sub.source.empty()) {
      SourceFile source = LoadFile(options.root, sub.source);
      if (source.ok) {
        for (auto& [name, text] : OutOfLineBodies(source, sub.class_name)) {
          bodies[name] += text;
        }
      } else {
        MissingFile(findings, options, sub.source, "dirty-log");
      }
    }
    // Fixpoint: a method marks if its body has a mark token or it calls a
    // same-class method that marks.
    std::set<std::string> marks;
    for (const auto& [name, text] : bodies) {
      for (const std::string& token : sub.mark_tokens) {
        if (text.find(token) != std::string::npos) {
          marks.insert(name);
          break;
        }
      }
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [name, text] : bodies) {
        if (marks.count(name) != 0) {
          continue;
        }
        for (const std::string& callee : marks) {
          if (CallsSameClass(text, callee)) {
            marks.insert(name);
            changed = true;
            break;
          }
        }
      }
    }
    for (const Method& m : methods) {
      if (!m.is_public || m.is_const || m.is_static) {
        continue;
      }
      if (std::find(sub.allow_methods.begin(), sub.allow_methods.end(), m.name) !=
          sub.allow_methods.end()) {
        continue;
      }
      if (marks.count(m.name) != 0) {
        continue;
      }
      AddFinding(findings, header, m.decl_line, "dirty-log",
                 sub.class_name + "::" + m.name +
                     " is a public mutating method with no dirty-log record on any path",
                 "record the mutation (e.g. `" +
                     (sub.mark_tokens.empty() ? std::string("dirty_.Mark(...)")
                                              : sub.mark_tokens.front() + "...)") +
                     "`) or waive with `// averif-lint: allow(dirty-log) — <why>`");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lockstep-index
// ---------------------------------------------------------------------------

void RuleLockstepIndex(const Options& options, std::vector<Finding>* findings) {
  for (const Subsystem& sub : Subsystems()) {
    SourceFile header = LoadFile(options.root, sub.header);
    if (!header.ok) {
      MissingFile(findings, options, sub.header, "lockstep-index");
      continue;
    }
    std::optional<Range> body = ClassBody(header, sub.class_name);
    if (!body) {
      MissingFile(findings, options, sub.header, "lockstep-index");
      continue;
    }
    // Index members: declared members whose name ends in `_index_`, plus the
    // per-class extras.
    std::set<std::string> members;
    for (std::size_t i = body->begin; i < body->end; ++i) {
      if (!IsIdentChar(header.code[i]) || (i > 0 && IsIdentChar(header.code[i - 1]))) {
        continue;
      }
      std::size_t e = i;
      while (e < body->end && IsIdentChar(header.code[e])) {
        ++e;
      }
      std::string ident = header.code.substr(i, e - i);
      if (ident.size() > 7 && ident.compare(ident.size() - 7, 7, "_index_") == 0) {
        members.insert(ident);
      }
      i = e;
    }
    for (const std::string& extra : sub.index_members) {
      if (ContainsIdent(header.code, extra, body->begin, body->end)) {
        members.insert(extra);
      }
    }
    if (members.empty()) {
      continue;
    }
    SourceFile source = sub.source.empty() ? SourceFile{} : LoadFile(options.root, sub.source);
    auto search_all = [&](const std::string& func, const std::string& member) {
      // The predicate/rebuild may live inline in the header or in the .cc.
      for (const SourceFile* f : {&header, source.ok ? &source : nullptr}) {
        if (f == nullptr) {
          continue;
        }
        std::optional<Range> fb = FunctionBody(*f, func);
        if (fb && ContainsIdent(f->code, member, fb->begin, fb->end)) {
          return true;
        }
      }
      return false;
    };
    // Pooled refills rebuild the clone in place (DESIGN.md §14); an index
    // the refill forgets would leave the pooled clone verifying through
    // stale pointers, so wherever the Into variant exists it must rebuild
    // every index the fresh-clone path does. FindIdent matches whole
    // identifiers, so this is independent of the CloneForVerification check.
    bool has_into = false;
    for (const SourceFile* f : {&header, source.ok ? &source : nullptr}) {
      if (f != nullptr && FunctionBody(*f, "CloneForVerificationInto")) {
        has_into = true;
      }
    }
    for (const std::string& member : members) {
      std::size_t decl_line = 0;
      for (std::size_t pos : FindIdent(header.code, member, body->begin, body->end)) {
        decl_line = header.LineOf(pos);
        break;
      }
      bool wf_ok = false;
      for (const std::string& wf : sub.wf_methods) {
        if (search_all(wf, member)) {
          wf_ok = true;
          break;
        }
      }
      if (!wf_ok) {
        AddFinding(findings, header, decl_line, "lockstep-index",
                   sub.class_name + "::" + member +
                       " has no cross-check clause in " + sub.wf_methods.front() + "()",
                   "add a clause to " + sub.class_name + "::" + sub.wf_methods.front() +
                       " proving " + member + " mirrors its ground-truth container");
      }
      if (!search_all("CloneForVerification", member)) {
        AddFinding(findings, header, decl_line, "lockstep-index",
                   sub.class_name + "::" + member +
                       " is not rebuilt in CloneForVerification()",
                   "rebuild or copy " + member + " in " + sub.class_name +
                       "::CloneForVerification so clones verify the same state");
      }
      if (has_into && !search_all("CloneForVerificationInto", member)) {
        AddFinding(findings, header, decl_line, "lockstep-index",
                   sub.class_name + "::" + member +
                       " is not rebuilt in CloneForVerificationInto()",
                   "rebuild " + member + " against the reused nodes in " + sub.class_name +
                       "::CloneForVerificationInto so pooled refills verify the same state");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: sysop-switch-default
// ---------------------------------------------------------------------------

void RuleSysOpSwitchDefault(const SourceFile& f, std::vector<Finding>* findings) {
  const std::string& code = f.code;
  struct Switch {
    Range block;
  };
  std::vector<Switch> switches;
  for (std::size_t pos : FindIdent(code, "switch")) {
    std::size_t i = SkipWs(code, pos + 6);
    if (i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t pclose = MatchParen(code, i);
    if (pclose == std::string::npos) {
      continue;
    }
    std::size_t open = SkipWs(code, pclose);
    if (open >= code.size() || code[open] != '{') {
      continue;
    }
    std::size_t bclose = MatchBrace(code, open);
    if (bclose == std::string::npos) {
      continue;
    }
    switches.push_back(Switch{Range{open, bclose}});
  }
  auto innermost_of = [&](std::size_t pos) -> const Switch* {
    const Switch* best = nullptr;
    for (const Switch& s : switches) {
      if (pos > s.block.begin && pos < s.block.end) {
        if (best == nullptr ||
            s.block.end - s.block.begin < best->block.end - best->block.begin) {
          best = &s;
        }
      }
    }
    return best;
  };
  for (std::size_t pos : FindIdent(code, "default")) {
    std::size_t i = SkipWs(code, pos + 7);
    if (i >= code.size() || code[i] != ':' ||
        (i + 1 < code.size() && code[i + 1] == ':')) {
      continue;  // not a label (e.g. `= default;` or scope qualifier)
    }
    const Switch* sw = innermost_of(pos);
    if (sw == nullptr) {
      continue;
    }
    // The default belongs to a SysOp switch if a `case SysOp::` lives in the
    // same switch at the same nesting (i.e. not inside a deeper switch).
    bool over_sysop = false;
    for (std::size_t cpos : FindIdent(code, "case", sw->block.begin, sw->block.end)) {
      std::size_t a = SkipWs(code, cpos + 4);
      if (code.compare(a, 7, "SysOp::") != 0) {
        continue;
      }
      if (innermost_of(cpos) == sw) {
        over_sysop = true;
        break;
      }
    }
    if (over_sysop && innermost_of(pos) == sw) {
      AddFinding(findings, f, f.LineOf(pos), "sysop-switch-default",
                 "`default:` in a switch over SysOp hides unhandled operations from "
                 "-Wswitch; enumerate every case",
                 "replace `default:` with explicit `case SysOp::k...:` labels (a "
                 "fallthrough return after the switch keeps hostile casts safe)");
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: error-path
// ---------------------------------------------------------------------------

void RuleErrorPath(const SourceFile& f, std::vector<Finding>* findings) {
  const std::string& code = f.code;
  for (std::size_t pos : FindIdent(code, "SpecResult")) {
    // Definition pattern: `SpecResult <name>(params) {` with a SyscallRet
    // parameter.
    std::size_t i = SkipWs(code, pos + 10);
    std::size_t id_begin = i;
    while (i < code.size() && IsIdentChar(code[i])) {
      ++i;
    }
    std::string name = code.substr(id_begin, i - id_begin);
    i = SkipWs(code, i);
    if (name.empty() || i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t pclose = MatchParen(code, i);
    if (pclose == std::string::npos) {
      continue;
    }
    std::string params = code.substr(i, pclose - i);
    std::size_t open = SkipWs(code, pclose);
    if (open >= code.size() || code[open] != '{') {
      continue;  // declaration, not definition
    }
    std::size_t bclose = MatchBrace(code, open);
    if (bclose == std::string::npos) {
      continue;
    }
    if (params.find("SyscallRet") == std::string::npos) {
      continue;  // helpers and ret-less predicates are out of scope
    }
    std::string body = code.substr(open, bclose - open);
    std::size_t first_fail = body.find("Fail(");
    if (first_fail == std::string::npos) {
      continue;  // cannot reject — nothing to order
    }
    std::size_t atomicity = body.find("CheckFailureAtomicity");
    if (atomicity == std::string::npos || atomicity > first_fail) {
      AddFinding(findings, f, f.LineOf(id_begin), "error-path",
                 name + " can Fail(...) before establishing failure atomicity; error "
                 "returns must be proven to precede state mutation",
                 "start the predicate with `if (auto atomic = CheckFailureAtomicity(pre, "
                 "post, ret)) { return *atomic; }` or waive with `// averif-lint: "
                 "allow(error-path) — <why>`");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<std::string> TreeFiles(const Options& options) {
  std::vector<std::string> out;
  fs::path src = fs::path(options.root) / "src";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) {
      continue;
    }
    std::string ext = it->path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      out.push_back(fs::relative(it->path(), options.root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<Finding> RunAllRules(const Options& options) {
  std::vector<Finding> findings;
  RuleSpecCoverage(options, &findings);
  RuleTraceOpName(options, &findings);
  RuleDirtyLog(options, &findings);
  RuleLockstepIndex(options, &findings);
  for (const std::string& rel : TreeFiles(options)) {
    SourceFile f = LoadFile(options.root, rel);
    if (!f.ok) {
      MissingFile(&findings, options, rel, "sysop-switch-default");
      continue;
    }
    RuleSysOpSwitchDefault(f, &findings);
    if (rel.rfind("src/spec/", 0) == 0 && rel.size() > 3 &&
        rel.compare(rel.size() - 3, 3, ".cc") == 0) {
      RuleErrorPath(f, &findings);
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  return findings;
}

std::string ToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n]\n");
  return out.str();
}

std::string ToText(const std::vector<Finding>& findings, bool fix_suggestions) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    if (fix_suggestions && !f.suggestion.empty()) {
      out << "    fix: " << f.suggestion << "\n";
    }
  }
  out << findings.size() << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
  return out.str();
}

}  // namespace atmo::lint
