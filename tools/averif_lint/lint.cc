// Driver: builds the project model once, runs every rule pass, and owns the
// deterministic ordering contract (sort + dedupe) plus the report formats
// and baseline diffing.

#include "tools/averif_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <tuple>

#include "tools/averif_lint/callgraph.h"
#include "tools/averif_lint/rules.h"
#include "tools/averif_lint/source.h"

namespace atmo::lint {

std::vector<Finding> RunAllRules(const Options& options) {
  std::vector<Finding> findings;
  Project project = Project::Load(options.root);
  RuleSpecCoverage(options, &findings);
  RuleTraceOpName(options, &findings);
  RuleDirtyLog(options, project, &findings);
  RuleLockstepIndex(options, &findings);
  RuleHotPathAlloc(options, project, &findings);
  RulePayloadCopy(options, project, &findings);
  RuleTraceStageCoverage(options, project, &findings);
  RuleLockDiscipline(options, project, &findings);
  RuleGrantLifetime(options, project, &findings);
  for (const SourceFile& f : project.files()) {
    RuleSysOpSwitchDefault(f, &findings);
    const std::string& rel = f.rel_path;
    if (rel.rfind("src/spec/", 0) == 0 && rel.size() > 3 &&
        rel.compare(rel.size() - 3, 3, ".cc") == 0) {
      RuleErrorPath(f, &findings);
    }
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule, a.message) <
           std::tie(b.file, b.line, b.rule, b.message);
  });
  // Two passes can land on the same site (e.g. a may-call edge reached from
  // two roots); identical findings collapse so reports and baselines stay
  // stable.
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line, a.rule, a.message) ==
                                      std::tie(b.file, b.line, b.rule, b.message);
                             }),
                 findings.end());
  return findings;
}

std::string ToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"file\": \"" << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"rule\": \"" << JsonEscape(f.rule) << "\", \"message\": \""
        << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n]\n");
  return out.str();
}

std::string ToText(const std::vector<Finding>& findings, bool fix_suggestions) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
    if (fix_suggestions && !f.suggestion.empty()) {
      out << "    fix: " << f.suggestion << "\n";
    }
  }
  out << findings.size() << " finding" << (findings.size() == 1 ? "" : "s") << "\n";
  return out.str();
}

std::optional<std::vector<Finding>> ParseFindingsJson(const std::string& text) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* out) -> bool {
    if (i >= text.size() || text[i] != '"') {
      return false;
    }
    ++i;
    out->clear();
    while (i < text.size() && text[i] != '"') {
      char c = text[i];
      if (c == '\\' && i + 1 < text.size()) {
        ++i;
        char e = text[i];
        if (e == 'n') {
          *out += '\n';
        } else if (e == 't') {
          *out += '\t';
        } else if (e == 'u' && i + 4 < text.size()) {
          *out += static_cast<char>(
              std::strtol(text.substr(i + 1, 4).c_str(), nullptr, 16));
          i += 4;
        } else {
          *out += e;
        }
      } else {
        *out += c;
      }
      ++i;
    }
    if (i >= text.size()) {
      return false;
    }
    ++i;
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '[') {
    return std::nullopt;
  }
  ++i;
  std::vector<Finding> out;
  while (true) {
    skip_ws();
    if (i >= text.size()) {
      return std::nullopt;
    }
    if (text[i] == ']') {
      return out;
    }
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] != '{') {
      return std::nullopt;
    }
    ++i;
    Finding f;
    while (true) {
      skip_ws();
      if (i >= text.size()) {
        return std::nullopt;
      }
      if (text[i] == '}') {
        ++i;
        break;
      }
      if (text[i] == ',') {
        ++i;
        continue;
      }
      std::string key;
      if (!parse_string(&key)) {
        return std::nullopt;
      }
      skip_ws();
      if (i >= text.size() || text[i] != ':') {
        return std::nullopt;
      }
      ++i;
      skip_ws();
      if (i < text.size() && text[i] == '"') {
        std::string val;
        if (!parse_string(&val)) {
          return std::nullopt;
        }
        if (key == "file") {
          f.file = val;
        } else if (key == "rule") {
          f.rule = val;
        } else if (key == "message") {
          f.message = val;
        } else if (key == "suggestion") {
          f.suggestion = val;
        }
      } else {
        std::size_t e = i;
        while (e < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[e])) != 0) {
          ++e;
        }
        if (e == i) {
          return std::nullopt;
        }
        if (key == "line") {
          f.line = static_cast<std::size_t>(
              std::strtoull(text.substr(i, e - i).c_str(), nullptr, 10));
        }
        i = e;
      }
    }
    out.push_back(std::move(f));
  }
}

std::vector<Finding> SubtractBaseline(const std::vector<Finding>& findings,
                                      const std::vector<Finding>& baseline) {
  std::multiset<std::tuple<std::string, std::string, std::string>> known;
  for (const Finding& f : baseline) {
    known.insert({f.file, f.rule, f.message});
  }
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    auto it = known.find({f.file, f.rule, f.message});
    if (it != known.end()) {
      known.erase(it);
      continue;
    }
    out.push_back(f);
  }
  return out;
}

}  // namespace atmo::lint
