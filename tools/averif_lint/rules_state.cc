// State-discipline rules: dirty-log (every public mutator records into the
// subsystem's dirty log on some path — transitive closure over the project
// call graph) and lockstep-index (derived indexes are cross-checked in Wf
// and rebuilt by the clone paths).

#include <algorithm>
#include <optional>
#include <set>

#include "tools/averif_lint/rules.h"

namespace atmo::lint {

void RuleDirtyLog(const Options& options, const Project& project,
                  std::vector<Finding>* findings) {
  for (const Subsystem& sub : Subsystems()) {
    if (sub.logged_by_caller) {
      continue;
    }
    SourceFile header = LoadFile(options.root, sub.header);
    if (!header.ok) {
      MissingFile(findings, options, sub.header, "dirty-log");
      continue;
    }
    std::optional<Range> body = ClassBody(header, sub.class_name);
    if (!body) {
      MissingFile(findings, options, sub.header, "dirty-log");
      continue;
    }
    std::vector<Method> methods = ParseMethods(header, *body, false);
    // Drop constructors (name == class name).
    methods.erase(std::remove_if(methods.begin(), methods.end(),
                                 [&](const Method& m) { return m.name == sub.class_name; }),
                  methods.end());
    if (!sub.source.empty()) {
      SourceFile source = LoadFile(options.root, sub.source);
      if (!source.ok) {
        MissingFile(findings, options, sub.source, "dirty-log");
      }
    }
    // Direct marks: the function body contains a mark token. The project
    // call graph already holds every definition (inline and out-of-line).
    std::vector<int> fns = project.MethodsOf(sub.class_name);
    std::set<int> in_class(fns.begin(), fns.end());
    std::set<int> marks;
    for (int fi : fns) {
      const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(fi)];
      const SourceFile& f = project.file_of(fn);
      std::string text = f.code.substr(fn.body_begin, fn.body_end - fn.body_begin);
      for (const std::string& token : sub.mark_tokens) {
        if (text.find(token) != std::string::npos) {
          marks.insert(fi);
          break;
        }
      }
    }
    // Fixpoint over call edges restricted to this class: a method marks if
    // it reaches a marking method of the same class.
    bool changed = true;
    while (changed) {
      changed = false;
      for (int fi : fns) {
        if (marks.count(fi) != 0) {
          continue;
        }
        bool found = false;
        for (const CallSite& site :
             project.functions()[static_cast<std::size_t>(fi)].calls) {
          for (int target : site.targets) {
            if (in_class.count(target) != 0 && marks.count(target) != 0) {
              found = true;
              break;
            }
          }
          if (found) {
            break;
          }
        }
        if (found) {
          marks.insert(fi);
          changed = true;
        }
      }
    }
    std::set<std::string> mark_names;
    for (int fi : marks) {
      mark_names.insert(project.functions()[static_cast<std::size_t>(fi)].name);
    }
    for (const Method& m : methods) {
      if (!m.is_public || m.is_const || m.is_static) {
        continue;
      }
      if (std::find(sub.allow_methods.begin(), sub.allow_methods.end(), m.name) !=
          sub.allow_methods.end()) {
        continue;
      }
      if (mark_names.count(m.name) != 0) {
        continue;
      }
      AddFinding(findings, header, m.decl_line, "dirty-log",
                 sub.class_name + "::" + m.name +
                     " is a public mutating method with no dirty-log record on any path",
                 "record the mutation (e.g. `" +
                     (sub.mark_tokens.empty() ? std::string("dirty_.Mark(...)")
                                              : sub.mark_tokens.front() + "...)") +
                     "`) or waive with `// averif-lint: allow(dirty-log) — <why>`");
    }
  }
}

void RuleLockstepIndex(const Options& options, std::vector<Finding>* findings) {
  for (const Subsystem& sub : Subsystems()) {
    SourceFile header = LoadFile(options.root, sub.header);
    if (!header.ok) {
      MissingFile(findings, options, sub.header, "lockstep-index");
      continue;
    }
    std::optional<Range> body = ClassBody(header, sub.class_name);
    if (!body) {
      MissingFile(findings, options, sub.header, "lockstep-index");
      continue;
    }
    // Index members: declared members whose name ends in `_index_`, plus the
    // per-class extras.
    std::set<std::string> members;
    for (std::size_t i = body->begin; i < body->end; ++i) {
      if (!IsIdentChar(header.code[i]) || (i > 0 && IsIdentChar(header.code[i - 1]))) {
        continue;
      }
      std::size_t e = i;
      while (e < body->end && IsIdentChar(header.code[e])) {
        ++e;
      }
      std::string ident = header.code.substr(i, e - i);
      if (ident.size() > 7 && ident.compare(ident.size() - 7, 7, "_index_") == 0) {
        members.insert(ident);
      }
      i = e;
    }
    for (const std::string& extra : sub.index_members) {
      if (ContainsIdent(header.code, extra, body->begin, body->end)) {
        members.insert(extra);
      }
    }
    if (members.empty()) {
      continue;
    }
    SourceFile source = sub.source.empty() ? SourceFile{} : LoadFile(options.root, sub.source);
    auto search_all = [&](const std::string& func, const std::string& member) {
      // The predicate/rebuild may live inline in the header or in the .cc.
      for (const SourceFile* f : {&header, source.ok ? &source : nullptr}) {
        if (f == nullptr) {
          continue;
        }
        std::optional<Range> fb = FunctionBody(*f, func);
        if (fb && ContainsIdent(f->code, member, fb->begin, fb->end)) {
          return true;
        }
      }
      return false;
    };
    // Pooled refills rebuild the clone in place (DESIGN.md §14); an index
    // the refill forgets would leave the pooled clone verifying through
    // stale pointers, so wherever the Into variant exists it must rebuild
    // every index the fresh-clone path does. FindIdent matches whole
    // identifiers, so this is independent of the CloneForVerification check.
    bool has_into = false;
    for (const SourceFile* f : {&header, source.ok ? &source : nullptr}) {
      if (f != nullptr && FunctionBody(*f, "CloneForVerificationInto")) {
        has_into = true;
      }
    }
    for (const std::string& member : members) {
      std::size_t decl_line = 0;
      for (std::size_t pos : FindIdent(header.code, member, body->begin, body->end)) {
        decl_line = header.LineOf(pos);
        break;
      }
      bool wf_ok = false;
      for (const std::string& wf : sub.wf_methods) {
        if (search_all(wf, member)) {
          wf_ok = true;
          break;
        }
      }
      if (!wf_ok) {
        AddFinding(findings, header, decl_line, "lockstep-index",
                   sub.class_name + "::" + member +
                       " has no cross-check clause in " + sub.wf_methods.front() + "()",
                   "add a clause to " + sub.class_name + "::" + sub.wf_methods.front() +
                       " proving " + member + " mirrors its ground-truth container");
      }
      if (!search_all("CloneForVerification", member)) {
        AddFinding(findings, header, decl_line, "lockstep-index",
                   sub.class_name + "::" + member +
                       " is not rebuilt in CloneForVerification()",
                   "rebuild or copy " + member + " in " + sub.class_name +
                       "::CloneForVerification so clones verify the same state");
      }
      if (has_into && !search_all("CloneForVerificationInto", member)) {
        AddFinding(findings, header, decl_line, "lockstep-index",
                   sub.class_name + "::" + member +
                       " is not rebuilt in CloneForVerificationInto()",
                   "rebuild " + member + " against the reused nodes in " + sub.class_name +
                       "::CloneForVerificationInto so pooled refills verify the same state");
      }
    }
  }
}

}  // namespace atmo::lint
