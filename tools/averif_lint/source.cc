#include "tools/averif_lint/source.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace atmo::lint {

namespace fs = std::filesystem;

std::size_t SourceFile::LineOf(std::size_t pos) const {
  auto it = std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<std::size_t>(it - line_starts.begin());
}

std::string SourceFile::Line(std::size_t line) const {
  if (line == 0 || line > line_starts.size()) {
    return std::string();
  }
  std::size_t begin = line_starts[line - 1];
  std::size_t end = line < line_starts.size() ? line_starts[line] : raw.size();
  return raw.substr(begin, end - begin);
}

bool SourceFile::SuppressedAt(std::size_t line, const std::string& rule) const {
  std::string needle = "averif-lint: allow(" + rule + ")";
  std::size_t first = line > 4 ? line - 4 : 1;
  for (std::size_t l = first; l <= line && l <= line_starts.size(); ++l) {
    if (Line(l).find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string StripCommentsAndStrings(const std::string& in) {
  std::string out = in;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    char next = i + 1 < in.size() ? in[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < in.size() && in[i + 1] != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

SourceFile LoadFile(const std::string& root, const std::string& rel_path) {
  SourceFile f;
  f.rel_path = rel_path;
  std::ifstream in(fs::path(root) / rel_path, std::ios::binary);
  if (!in) {
    return f;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  f.raw = buf.str();
  f.code = StripCommentsAndStrings(f.raw);
  // Blank preprocessor directives (and their backslash continuations): to
  // the structural scans a `#if defined(...)` or a multi-line #define looks
  // like code and would register phantom functions.
  bool continuation = false;
  std::size_t line_begin = 0;
  for (std::size_t i = 0; i <= f.code.size(); ++i) {
    if (i != f.code.size() && f.code[i] != '\n') {
      continue;
    }
    std::size_t first = SkipWs(f.code, line_begin);
    bool directive = continuation || (first < i && f.code[first] == '#');
    std::size_t last = i;
    while (last > line_begin &&
           std::isspace(static_cast<unsigned char>(f.code[last - 1])) != 0) {
      --last;
    }
    continuation = directive && last > line_begin && f.code[last - 1] == '\\';
    if (directive) {
      for (std::size_t j = line_begin; j < i; ++j) {
        f.code[j] = ' ';
      }
    }
    line_begin = i + 1;
  }
  f.line_starts.push_back(0);
  for (std::size_t i = 0; i < f.raw.size(); ++i) {
    if (f.raw[i] == '\n' && i + 1 < f.raw.size()) {
      f.line_starts.push_back(i + 1);
    }
  }
  f.ok = true;
  return f;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t MatchBrace(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

std::size_t MatchParen(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == '(') {
      ++depth;
    } else if (code[i] == ')') {
      if (--depth == 0) {
        return i + 1;
      }
    }
  }
  return std::string::npos;
}

std::size_t SkipWs(const std::string& code, std::size_t i) {
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i])) != 0) {
    ++i;
  }
  return i;
}

std::size_t PrevNonWs(const std::string& code, std::size_t i) {
  while (i > 0) {
    --i;
    if (std::isspace(static_cast<unsigned char>(code[i])) == 0) {
      return i;
    }
  }
  return std::string::npos;
}

std::vector<std::size_t> FindIdent(const std::string& code, const std::string& ident,
                                   std::size_t begin, std::size_t end) {
  std::vector<std::size_t> out;
  end = std::min(end, code.size());
  std::size_t pos = begin;
  while ((pos = code.find(ident, pos)) != std::string::npos && pos < end) {
    bool left_ok = pos == 0 || !IsIdentChar(code[pos - 1]);
    std::size_t after = pos + ident.size();
    bool right_ok = after >= code.size() || !IsIdentChar(code[after]);
    if (left_ok && right_ok) {
      out.push_back(pos);
    }
    pos = after;
  }
  return out;
}

bool ContainsIdent(const std::string& code, const std::string& ident,
                   std::size_t begin, std::size_t end) {
  return !FindIdent(code, ident, begin, end).empty();
}

std::optional<Range> ClassBody(const SourceFile& f, const std::string& name) {
  for (std::size_t pos : FindIdent(f.code, name)) {
    // Must follow the `class`/`struct` keyword to be the definition.
    std::size_t before = pos;
    while (before > 0 &&
           std::isspace(static_cast<unsigned char>(f.code[before - 1])) != 0) {
      --before;
    }
    std::size_t kw_end = before;
    while (before > 0 && IsIdentChar(f.code[before - 1])) {
      --before;
    }
    std::string kw = f.code.substr(before, kw_end - before);
    if (kw != "class" && kw != "struct") {
      continue;
    }
    // Scan forward past an optional base-clause to '{'; a ';' first means a
    // forward declaration.
    std::size_t i = pos + name.size();
    while (i < f.code.size() && f.code[i] != '{' && f.code[i] != ';') {
      ++i;
    }
    if (i >= f.code.size() || f.code[i] != '{') {
      continue;
    }
    std::size_t close = MatchBrace(f.code, i);
    if (close == std::string::npos) {
      continue;
    }
    return Range{i + 1, close - 1};
  }
  return std::nullopt;
}

std::optional<Range> FunctionBody(const SourceFile& f, const std::string& func) {
  const std::string& code = f.code;
  for (std::size_t pos : FindIdent(code, func)) {
    std::size_t i = SkipWs(code, pos + func.size());
    if (i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t close = MatchParen(code, i);
    if (close == std::string::npos) {
      continue;
    }
    std::size_t j = close;
    while (j < code.size() && code[j] != '{' && code[j] != ';') {
      if (code[j] == '(') {  // noexcept(...) etc.
        std::size_t pc = MatchParen(code, j);
        if (pc == std::string::npos) {
          break;
        }
        j = pc;
        continue;
      }
      ++j;
    }
    if (j >= code.size() || code[j] != '{') {
      continue;
    }
    std::size_t bclose = MatchBrace(code, j);
    if (bclose == std::string::npos) {
      continue;
    }
    return Range{j, bclose};
  }
  return std::nullopt;
}

std::vector<std::string> ParseEnumerators(const SourceFile& f, const std::string& enum_name) {
  std::vector<std::string> out;
  for (std::size_t pos : FindIdent(f.code, enum_name)) {
    std::size_t i = pos + enum_name.size();
    while (i < f.code.size() && f.code[i] != '{' && f.code[i] != ';') {
      ++i;
    }
    if (i >= f.code.size() || f.code[i] != '{') {
      continue;
    }
    std::size_t close = MatchBrace(f.code, i);
    if (close == std::string::npos) {
      continue;
    }
    std::size_t item_start = i + 1;
    for (std::size_t j = i + 1; j < close; ++j) {
      if (f.code[j] == ',' || f.code[j] == '}') {
        std::size_t k = SkipWs(f.code, item_start);
        std::size_t e = k;
        while (e < j && IsIdentChar(f.code[e])) {
          ++e;
        }
        if (e > k) {
          out.push_back(f.code.substr(k, e - k));
        }
        item_start = j + 1;
      }
    }
    if (!out.empty()) {
      return out;
    }
  }
  return out;
}

std::vector<std::string> TreeFiles(const std::string& root) {
  std::vector<std::string> out;
  fs::path src = fs::path(root) / "src";
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file()) {
      continue;
    }
    std::string ext = it->path().extension().string();
    if (ext == ".cc" || ext == ".h") {
      out.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace atmo::lint
