// SysOp-totality and spec-shape rules: spec-coverage, trace-op-name,
// sysop-switch-default, error-path. All four are per-function/per-file
// checks; the totality rules share one engine.

#include <map>
#include <optional>

#include "tools/averif_lint/rules.h"

namespace atmo::lint {

namespace {

const std::vector<SpecLocation>& SpecCoverageLocations() {
  static const std::vector<SpecLocation> locations = {
      {"src/spec/syscall_specs.cc", "SyscallSpec"},
      {"src/core/kernel.cc", "SysOpName"},
      {"src/core/kernel.cc", "Exec"},
      {"src/spec/frame_profile.h", "FrameProfileFor"},
  };
  return locations;
}

}  // namespace

// Shared engine for the SysOp-totality rules (`spec-coverage` and
// `trace-op-name`): every SysOp enumerator must be mentioned as
// `SysOp::<op>` inside each listed location.
void CheckSysOpCoverage(const Options& options, std::vector<Finding>* findings,
                        const std::string& rule,
                        const std::vector<SpecLocation>& locations) {
  SourceFile syscall_h = LoadFile(options.root, "src/core/syscall.h");
  if (!syscall_h.ok) {
    MissingFile(findings, options, "src/core/syscall.h", rule);
    return;
  }
  std::vector<std::string> ops = ParseEnumerators(syscall_h, "SysOp");
  if (ops.empty()) {
    MissingFile(findings, options, "src/core/syscall.h", rule);
    return;
  }
  std::map<std::string, SourceFile> files;
  for (const SpecLocation& loc : locations) {
    if (files.find(loc.file) == files.end()) {
      files.emplace(loc.file, LoadFile(options.root, loc.file));
    }
    const SourceFile& f = files.at(loc.file);
    if (!f.ok) {
      MissingFile(findings, options, loc.file, rule);
      continue;
    }
    Range range{0, f.code.size()};
    if (!loc.function.empty()) {
      std::optional<Range> body = FunctionBody(f, loc.function);
      if (!body) {
        MissingFile(findings, options, loc.file, rule);
        continue;
      }
      range = *body;
    }
    for (const std::string& op : ops) {
      // A covering mention is `SysOp::<op>` inside the location; the
      // compiler already guarantees any such mention in a switch is a case
      // label or comparison that handles the op.
      bool covered = false;
      for (std::size_t pos : FindIdent(f.code, op, range.begin, range.end)) {
        if (pos >= 7 && f.code.compare(pos - 7, 7, "SysOp::") == 0) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        std::string where = loc.function.empty() ? loc.file : loc.function;
        // Location-aware skeletons: the spec dispatcher names the per-op spec
        // function (ring and grant ops included: kRingEnter -> RingEnterSpec,
        // kGrantReturn -> GrantReturnSpec), the frame table asks for the op's
        // frame profile, everything else gets the generic case label.
        std::string spec_fn =
            (op.size() > 1 && op[0] == 'k') ? op.substr(1) + "Spec" : op + "Spec";
        std::string suggestion;
        if (loc.function == "SyscallSpec") {
          suggestion = "add `case SysOp::" + op + ": return " + spec_fn +
                       "(pre, post, t, call, ret);` to SyscallSpec in " + loc.file;
        } else if (loc.function == "FrameProfileFor") {
          suggestion = "add `case SysOp::" + op + ":` to FrameProfileFor in " + loc.file +
                       " returning a FrameProfile that lists every component " + op +
                       " may touch (out-of-frame changes fail the checker)";
        } else if (loc.function == "TraceOpLabel") {
          suggestion = "add `case SysOp::" + op + ":` to TraceOpLabel in " + loc.file +
                       " returning a \"sys.*\" label so the op's spans stay visible "
                       "in traces";
        } else {
          suggestion = "add `case SysOp::" + op + ":` to " + where + " in " + loc.file;
        }
        AddFinding(findings, f, f.LineOf(range.begin), rule,
                   "SysOp::" + op + " is not handled in " + where, suggestion);
      }
    }
  }
}

void RuleSpecCoverage(const Options& options, std::vector<Finding>* findings) {
  CheckSysOpCoverage(options, findings, "spec-coverage", SpecCoverageLocations());
}

// The observability layer names every syscall span via TraceOpLabel
// (src/obs/op_names.h). A SysOp enumerator missing from that table traces
// as "sys.unknown" and silently vanishes from per-op timelines, so the
// table must stay total exactly like the spec/frame tables.
void RuleTraceOpName(const Options& options, std::vector<Finding>* findings) {
  static const std::vector<SpecLocation> locations = {
      {"src/obs/op_names.h", "TraceOpLabel"},
  };
  CheckSysOpCoverage(options, findings, "trace-op-name", locations);
}

void RuleSysOpSwitchDefault(const SourceFile& f, std::vector<Finding>* findings) {
  const std::string& code = f.code;
  struct Switch {
    Range block;
  };
  std::vector<Switch> switches;
  for (std::size_t pos : FindIdent(code, "switch")) {
    std::size_t i = SkipWs(code, pos + 6);
    if (i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t pclose = MatchParen(code, i);
    if (pclose == std::string::npos) {
      continue;
    }
    std::size_t open = SkipWs(code, pclose);
    if (open >= code.size() || code[open] != '{') {
      continue;
    }
    std::size_t bclose = MatchBrace(code, open);
    if (bclose == std::string::npos) {
      continue;
    }
    switches.push_back(Switch{Range{open, bclose}});
  }
  auto innermost_of = [&](std::size_t pos) -> const Switch* {
    const Switch* best = nullptr;
    for (const Switch& s : switches) {
      if (pos > s.block.begin && pos < s.block.end) {
        if (best == nullptr ||
            s.block.end - s.block.begin < best->block.end - best->block.begin) {
          best = &s;
        }
      }
    }
    return best;
  };
  for (std::size_t pos : FindIdent(code, "default")) {
    std::size_t i = SkipWs(code, pos + 7);
    if (i >= code.size() || code[i] != ':' ||
        (i + 1 < code.size() && code[i + 1] == ':')) {
      continue;  // not a label (e.g. `= default;` or scope qualifier)
    }
    const Switch* sw = innermost_of(pos);
    if (sw == nullptr) {
      continue;
    }
    // The default belongs to a SysOp switch if a `case SysOp::` lives in the
    // same switch at the same nesting (i.e. not inside a deeper switch).
    bool over_sysop = false;
    for (std::size_t cpos : FindIdent(code, "case", sw->block.begin, sw->block.end)) {
      std::size_t a = SkipWs(code, cpos + 4);
      if (code.compare(a, 7, "SysOp::") != 0) {
        continue;
      }
      if (innermost_of(cpos) == sw) {
        over_sysop = true;
        break;
      }
    }
    if (over_sysop && innermost_of(pos) == sw) {
      AddFinding(findings, f, f.LineOf(pos), "sysop-switch-default",
                 "`default:` in a switch over SysOp hides unhandled operations from "
                 "-Wswitch; enumerate every case",
                 "replace `default:` with explicit `case SysOp::k...:` labels (a "
                 "fallthrough return after the switch keeps hostile casts safe)");
    }
  }
}

void RuleErrorPath(const SourceFile& f, std::vector<Finding>* findings) {
  const std::string& code = f.code;
  for (std::size_t pos : FindIdent(code, "SpecResult")) {
    // Definition pattern: `SpecResult <name>(params) {` with a SyscallRet
    // parameter.
    std::size_t i = SkipWs(code, pos + 10);
    std::size_t id_begin = i;
    while (i < code.size() && IsIdentChar(code[i])) {
      ++i;
    }
    std::string name = code.substr(id_begin, i - id_begin);
    i = SkipWs(code, i);
    if (name.empty() || i >= code.size() || code[i] != '(') {
      continue;
    }
    std::size_t pclose = MatchParen(code, i);
    if (pclose == std::string::npos) {
      continue;
    }
    std::string params = code.substr(i, pclose - i);
    std::size_t open = SkipWs(code, pclose);
    if (open >= code.size() || code[open] != '{') {
      continue;  // declaration, not definition
    }
    std::size_t bclose = MatchBrace(code, open);
    if (bclose == std::string::npos) {
      continue;
    }
    if (params.find("SyscallRet") == std::string::npos) {
      continue;  // helpers and ret-less predicates are out of scope
    }
    std::string body = code.substr(open, bclose - open);
    std::size_t first_fail = body.find("Fail(");
    if (first_fail == std::string::npos) {
      continue;  // cannot reject — nothing to order
    }
    std::size_t atomicity = body.find("CheckFailureAtomicity");
    if (atomicity == std::string::npos || atomicity > first_fail) {
      AddFinding(findings, f, f.LineOf(id_begin), "error-path",
                 name + " can Fail(...) before establishing failure atomicity; error "
                 "returns must be proven to precede state mutation",
                 "start the predicate with `if (auto atomic = CheckFailureAtomicity(pre, "
                 "post, ret)) { return *atomic; }` or waive with `// averif-lint: "
                 "allow(error-path) — <why>`");
    }
  }
}

}  // namespace atmo::lint
