// Hot-path rules anchored at ATMO_HOT_PATH roots: the purity scans
// (hot-path-alloc, payload-copy) and the observability scan
// (trace-stage-coverage). All are reachability passes over the project call
// graph — the static twins of the runtime obs::AllocProbe / obs::CopyProbe /
// flight-recorder gates. The dynamic gates prove the benched path clean and
// traced; these rules prove every statically reachable path so, including
// ones no bench drives.

#include <deque>
#include <map>
#include <set>
#include <tuple>

#include "tools/averif_lint/rules.h"

namespace atmo::lint {

namespace {

// Rebuilds the call chain root -> ... -> state for the finding message.
std::string Chain(const Project& project, const std::map<int, int>& parent, int state) {
  std::vector<int> rev;
  for (int s = state; s != -1;) {
    rev.push_back(s / 2);
    auto it = parent.find(s);
    s = it == parent.end() ? -1 : it->second;
  }
  std::string out;
  for (auto it = rev.rbegin(); it != rev.rend(); ++it) {
    if (!out.empty()) {
      out += " -> ";
    }
    out += project.functions()[static_cast<std::size_t>(*it)].Id();
  }
  return out;
}

// BFS over (function, covered) states. `covered` means an ArenaScope was
// alive at every call on the path, so allocations in the callee land in the
// arena; it only applies when `arena_exempts` (hot-path-alloc). States are
// visited at most twice per function (once per coverage), so the scan is
// linear in call edges.
void ScanHotRule(const Options& options, const Project& project,
                 std::vector<Finding>* findings, const std::string& rule,
                 bool arena_exempts, std::vector<PrimSite> FunctionInfo::*sites,
                 const std::string& what_phrase, const std::string& suggestion) {
  std::vector<int> roots = project.HotRoots(rule);
  if (roots.empty()) {
    if (options.strict) {
      findings->push_back(
          Finding{"src/vstd/thread_annotations.h", 0, rule,
                  "no ATMO_HOT_PATH(" + rule + ") root markers found in the tree",
                  "annotate the hot-path entry points with ATMO_HOT_PATH(" + rule + ")"});
    }
    return;
  }
  std::map<int, int> parent;
  std::deque<int> queue;
  std::set<int> visited;
  for (int r : roots) {
    int s = r * 2;
    if (visited.insert(s).second) {
      parent[s] = -1;
      queue.push_back(s);
    }
  }
  std::set<std::pair<int, std::size_t>> reported;  // (file, line)
  while (!queue.empty()) {
    int s = queue.front();
    queue.pop_front();
    int fi = s / 2;
    bool covered = (s % 2) != 0;
    const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(fi)];
    if (!(arena_exempts && covered)) {
      for (const PrimSite& site : fn.*sites) {
        if (arena_exempts) {
          bool local = false;
          for (const GuardExtent& e : fn.arena_extents) {
            if (e.Covers(site.pos)) {
              local = true;
              break;
            }
          }
          if (local) {
            continue;
          }
        }
        if (!reported.insert({fn.file, site.line}).second) {
          continue;
        }
        AddFinding(findings, project.file_of(fn), site.line, rule,
                   what_phrase + " (" + site.what + ") in " + fn.Id() +
                       " is reachable from hot path: " + Chain(project, parent, s),
                   suggestion);
      }
    }
    for (const CallSite& call : fn.calls) {
      bool child_covered = covered;
      if (arena_exempts && !child_covered) {
        for (const GuardExtent& e : fn.arena_extents) {
          if (e.Covers(call.pos)) {
            child_covered = true;
            break;
          }
        }
      }
      for (int target : call.targets) {
        int ns = target * 2 + (child_covered ? 1 : 0);
        if (visited.insert(ns).second) {
          parent[ns] = s;
          queue.push_back(ns);
        }
      }
    }
  }
}

}  // namespace

void RuleHotPathAlloc(const Options& options, const Project& project,
                      std::vector<Finding>* findings) {
  ScanHotRule(options, project, findings, "hot-path-alloc",
              /*arena_exempts=*/true, &FunctionInfo::allocs, "heap allocation",
              "hoist the allocation off the hot path, cover it with an ArenaScope, or "
              "waive with `// averif-lint: allow(hot-path-alloc) — <why>`");
}

void RulePayloadCopy(const Options& options, const Project& project,
                     std::vector<Finding>* findings) {
  ScanHotRule(options, project, findings, "payload-copy",
              /*arena_exempts=*/false, &FunctionInfo::copies, "payload copy",
              "serve payload bytes by reference (splice views over granted pages), or "
              "waive with `// averif-lint: allow(payload-copy) — <why>`");
}

namespace {

// Does this function's body contain a flight-recorder emission site? Spans
// and instants count (macro or direct ObsSpan use); counters don't — a
// counter is a metric sample, not a point on a request's causal chain.
bool EmitsStageEvent(const Project& project, int fi) {
  static const char* const kEmitters[] = {"ATMO_OBS_SPAN", "ATMO_OBS_SPAN_ARG",
                                          "ATMO_OBS_INSTANT", "ATMO_OBS_INSTANT_ARG",
                                          "ObsSpan"};
  const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(fi)];
  const SourceFile& f = project.file_of(fn);
  for (const char* ident : kEmitters) {
    if (ContainsIdent(f.code, ident, fn.body_begin, fn.body_end)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void RuleTraceStageCoverage(const Options& options, const Project& project,
                            std::vector<Finding>* findings) {
  // Every ATMO_HOT_PATH root is a stage boundary on the request path, and
  // the causal-tracing story (DESIGN.md §17) is only as complete as its
  // stage stamps: a root that neither records a flight-recorder event nor
  // reaches one through a callee is a blind spot — sampled requests pass
  // through it without leaving a stamp. Reachability uses the same
  // conservative call graph as the purity rules, so delegating the stamp to
  // a helper (or to an existing checker ObsSpan) satisfies the rule.
  std::vector<int> roots;
  for (std::size_t i = 0; i < project.functions().size(); ++i) {
    if (!project.functions()[i].hot_rules.empty()) {
      roots.push_back(static_cast<int>(i));
    }
  }
  if (roots.empty()) {
    if (options.strict) {
      findings->push_back(
          Finding{"src/vstd/thread_annotations.h", 0, "trace-stage-coverage",
                  "no ATMO_HOT_PATH root markers found in the tree",
                  "annotate the hot-path entry points with ATMO_HOT_PATH(<rule>)"});
    }
    return;
  }
  std::map<int, bool> emits_cache;
  auto emits = [&](int fi) {
    auto [it, fresh] = emits_cache.try_emplace(fi, false);
    if (fresh) {
      it->second = EmitsStageEvent(project, fi);
    }
    return it->second;
  };
  for (int root : roots) {
    std::set<int> visited{root};
    std::deque<int> queue{root};
    bool covered = false;
    while (!queue.empty()) {
      int fi = queue.front();
      queue.pop_front();
      if (emits(fi)) {
        covered = true;
        break;
      }
      for (const CallSite& call :
           project.functions()[static_cast<std::size_t>(fi)].calls) {
        for (int target : call.targets) {
          if (visited.insert(target).second) {
            queue.push_back(target);
          }
        }
      }
    }
    if (covered) {
      continue;
    }
    const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(root)];
    AddFinding(findings, project.file_of(fn), fn.decl_line, "trace-stage-coverage",
               "hot-path root " + fn.Id() +
                   " emits no flight-recorder stage event (and reaches none): sampled "
                   "requests pass through it without a causal-trace stamp",
               "stamp the stage with ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "
               "\"stage.<name>\", \"trace_id\", id) or an ObsSpan, or waive with "
               "`// averif-lint: allow(trace-stage-coverage) — <why>`");
  }
}

}  // namespace atmo::lint
