// Project model: a tree-wide symbol table and call graph built from the
// AST-lite source scan (DESIGN.md §16).
//
// Every .cc/.h under src/ is parsed once. A recursive descent over the brace
// structure finds class bodies, member declarations, and function
// definitions (inline methods and out-of-line `Class::Method` definitions
// alike). Each function body is then scanned for:
//
//   * call sites, resolved by receiver-type heuristics: `this->m()` and bare
//     `m()` bind to the enclosing class; `x.m()` / `x->m()` look `x` up in
//     the member/local/parameter type tables; `A::m()` binds to class A.
//     A receiver whose type cannot be determined — and any known function
//     name appearing as a call *argument* (address-taken functions,
//     template callbacks, virtual dispatch through erased types) — is
//     treated as conservative may-call: edges to every function with that
//     name. Over-approximation is always safe for the reachability rules;
//     the soundness caveats are spelled out in DESIGN.md §16.
//   * allocation sites (`new`, malloc/calloc/realloc, make_unique/
//     make_shared, and growing STL container calls), copy sites (memcpy/
//     memmove/std::copy/obs::CopyPayload and byte-copy loops), and the
//     lexical extents covered by an ArenaScope or a MutexLock.
//   * annotations: ATMO_HOT_PATH(rule) root markers, ATMO_REQUIRES(mu)
//     contracts, ATMO_GUARDED_BY(mu) members.

#ifndef ATMO_TOOLS_AVERIF_LINT_CALLGRAPH_H_
#define ATMO_TOOLS_AVERIF_LINT_CALLGRAPH_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/averif_lint/source.h"

namespace atmo::lint {

// A lexical extent inside a function body during which a scoped guard
// (ArenaScope, MutexLock) is alive: declaration position to the end of the
// enclosing brace block.
struct GuardExtent {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::string what;  // arena: always "arena"; lock: mutex identifier

  bool Covers(std::size_t pos) const { return pos >= begin && pos < end; }
};

// A primitive fact inside a function body: an allocation or payload copy.
struct PrimSite {
  std::size_t pos = 0;
  std::size_t line = 0;
  std::string what;  // e.g. "new", "push_back", "memcpy", "byte-copy loop"
};

struct CallSite {
  std::size_t pos = 0;
  std::size_t line = 0;
  std::string name;          // callee name as written
  std::vector<int> targets;  // indices into Project::functions
};

struct FunctionInfo {
  std::string cls;   // enclosing class; empty for free functions
  std::string name;  // unqualified
  int file = -1;     // index into Project::files
  std::size_t decl_pos = 0;   // start of the definition header
  std::size_t decl_line = 0;
  std::size_t body_begin = 0;  // '{' of the body
  std::size_t body_end = 0;    // one past '}'
  std::string trailer;         // text between ')' and '{' (contracts live here)
  std::vector<std::string> hot_rules;  // ATMO_HOT_PATH(<rule>) markers
  std::vector<std::string> requires_locks;  // ATMO_REQUIRES(mu) contracts
  bool no_thread_safety = false;            // ATMO_NO_THREAD_SAFETY_ANALYSIS

  std::vector<CallSite> calls;
  std::vector<PrimSite> allocs;
  std::vector<PrimSite> copies;
  std::vector<GuardExtent> arena_extents;
  std::vector<GuardExtent> lock_extents;

  std::string Id() const { return cls.empty() ? name : cls + "::" + name; }
};

// A member declaration guarded by ATMO_GUARDED_BY.
struct GuardedMember {
  std::string cls;
  std::string member;
  std::string mutex;
  int file = -1;
  std::size_t line = 0;
};

struct ClassInfo {
  std::string name;
  int file = -1;
  // Declared member name -> type name (heuristic: first identifier of the
  // declaration that names a known class, recorded for receiver
  // resolution).
  std::map<std::string, std::string> member_types;
};

class Project {
 public:
  // Parses every file under root/src. Never fails: unreadable files are
  // skipped (the per-rule strict checks own missing-input reporting).
  static Project Load(const std::string& root);

  const std::vector<SourceFile>& files() const { return files_; }
  const std::vector<FunctionInfo>& functions() const { return functions_; }
  const std::vector<GuardedMember>& guarded_members() const { return guarded_; }

  const SourceFile& file_of(const FunctionInfo& fn) const {
    return files_[static_cast<std::size_t>(fn.file)];
  }

  // All function indices named `name` (any class, plus free functions).
  const std::vector<int>* ByName(const std::string& name) const;
  // The function `cls::name`, or -1.
  int Method(const std::string& cls, const std::string& name) const;
  // All function indices that are methods of `cls`.
  std::vector<int> MethodsOf(const std::string& cls) const;
  // Callers: indices of functions with a call edge into `callee`.
  const std::vector<int>* CallersOf(int callee) const;

  // Functions carrying an ATMO_HOT_PATH(rule) marker.
  std::vector<int> HotRoots(const std::string& rule) const;

 private:
  void ParseFile(int file_index);
  void ScanScope(int file_index, std::size_t begin, std::size_t end,
                 const std::string& cls);
  void CollectMembers(int file_index, std::size_t begin, std::size_t end,
                      const std::string& cls);
  void AnalyzeBodies();
  void AnalyzeBody(int fn_index);
  void ResolveCall(const FunctionInfo& fn, CallSite* site,
                   const std::map<std::string, std::string>& local_types) const;

  std::vector<SourceFile> files_;
  std::vector<FunctionInfo> functions_;
  std::vector<GuardedMember> guarded_;
  std::map<std::string, ClassInfo> classes_;
  std::map<std::string, std::vector<int>> by_name_;
  std::map<std::string, int> by_qualified_;
  std::map<int, std::vector<int>> callers_;
};

}  // namespace atmo::lint

#endif  // ATMO_TOOLS_AVERIF_LINT_CALLGRAPH_H_
