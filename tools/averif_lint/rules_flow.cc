// Flow rules over the call graph: lock-discipline (ATMO_GUARDED_BY fields
// are only touched under their mutex, with ATMO_REQUIRES contracts checked
// at every call site — interprocedural, unlike Clang's per-function
// -Wthread-safety) and grant-lifetime (recorded page borrows must be
// revocable via the kGrantReturn path and via teardown).

#include <deque>
#include <set>

#include "tools/averif_lint/rules.h"

namespace atmo::lint {

namespace {

// Mutex names compare by leaf identifier: `&mu_`, `progress_.mu_` and `mu_`
// all name the same capability for this codebase's single-owner mutexes.
std::string MutexLeaf(const std::string& name) {
  std::size_t b = name.size();
  while (b > 0 && IsIdentChar(name[b - 1])) {
    --b;
  }
  return name.substr(b);
}

bool SameMutex(const std::string& a, const std::string& b) {
  return MutexLeaf(a) == MutexLeaf(b);
}

bool HoldsAt(const FunctionInfo& fn, std::size_t pos, const std::string& mutex) {
  for (const GuardExtent& e : fn.lock_extents) {
    if (e.Covers(pos) && SameMutex(e.what, mutex)) {
      return true;
    }
  }
  return false;
}

bool HasContract(const FunctionInfo& fn, const std::string& mutex) {
  for (const std::string& mu : fn.requires_locks) {
    if (SameMutex(mu, mutex)) {
      return true;
    }
  }
  return false;
}

bool IsCtorOrDtor(const FunctionInfo& fn) {
  return !fn.cls.empty() && (fn.name == fn.cls || fn.name == "~" + fn.cls);
}

std::set<int> ReachableFrom(const Project& project, const std::set<int>& seeds) {
  std::set<int> seen = seeds;
  std::deque<int> queue(seeds.begin(), seeds.end());
  while (!queue.empty()) {
    int fi = queue.front();
    queue.pop_front();
    for (const CallSite& site : project.functions()[static_cast<std::size_t>(fi)].calls) {
      for (int target : site.targets) {
        if (seen.insert(target).second) {
          queue.push_back(target);
        }
      }
    }
  }
  return seen;
}

}  // namespace

void RuleLockDiscipline(const Options& options, const Project& project,
                        std::vector<Finding>* findings) {
  (void)options;
  for (const GuardedMember& gm : project.guarded_members()) {
    for (int fi : project.MethodsOf(gm.cls)) {
      const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(fi)];
      // Construction and destruction are single-threaded by convention;
      // ATMO_NO_THREAD_SAFETY_ANALYSIS opts a function out wholesale.
      if (fn.no_thread_safety || IsCtorOrDtor(fn)) {
        continue;
      }
      if (HasContract(fn, gm.mutex)) {
        continue;  // the contract moves the obligation to every caller
      }
      const SourceFile& f = project.file_of(fn);
      for (std::size_t pos :
           FindIdent(f.code, gm.member, fn.body_begin + 1, fn.body_end - 1)) {
        if (HoldsAt(fn, pos, gm.mutex)) {
          continue;
        }
        AddFinding(findings, f, f.LineOf(pos), "lock-discipline",
                   gm.cls + "::" + gm.member + " is guarded by " + MutexLeaf(gm.mutex) +
                       " but " + fn.Id() + " touches it without acquiring the mutex",
                   "acquire `MutexLock lock(&" + MutexLeaf(gm.mutex) + ");` before the "
                   "access, or annotate " + fn.Id() + " with ATMO_REQUIRES(" +
                       MutexLeaf(gm.mutex) + ") and lock in every caller");
        break;  // one finding per function per member
      }
    }
  }
  // Contract propagation: every call into an ATMO_REQUIRES(mu) function must
  // happen with mu held (lexically or via the caller's own contract). Chains
  // terminate because each contract-carrying caller is itself checked here.
  for (int fi = 0; fi < static_cast<int>(project.functions().size()); ++fi) {
    const FunctionInfo& callee = project.functions()[static_cast<std::size_t>(fi)];
    if (callee.requires_locks.empty()) {
      continue;
    }
    const std::vector<int>* callers = project.CallersOf(fi);
    if (callers == nullptr) {
      continue;
    }
    for (int ci : *callers) {
      const FunctionInfo& caller = project.functions()[static_cast<std::size_t>(ci)];
      if (caller.no_thread_safety || IsCtorOrDtor(caller)) {
        continue;
      }
      for (const CallSite& site : caller.calls) {
        bool hits = false;
        for (int target : site.targets) {
          if (target == fi) {
            hits = true;
            break;
          }
        }
        if (!hits) {
          continue;
        }
        for (const std::string& mu : callee.requires_locks) {
          if (HoldsAt(caller, site.pos, mu) || HasContract(caller, mu)) {
            continue;
          }
          const SourceFile& f = project.file_of(caller);
          AddFinding(findings, f, site.line, "lock-discipline",
                     callee.Id() + " requires " + MutexLeaf(mu) + " but " + caller.Id() +
                         " calls it without holding the mutex",
                     "acquire `MutexLock lock(&" + MutexLeaf(mu) + ");` around the call "
                     "or propagate ATMO_REQUIRES(" + MutexLeaf(mu) + ") to " +
                         caller.Id());
        }
      }
    }
  }
}

void RuleGrantLifetime(const Options& options, const Project& project,
                       std::vector<Finding>* findings) {
  (void)options;
  // The concrete rep of the spec's AbsPageBorrows is the `borrows_` map:
  // emplace/insert records a borrow, erase/clear revokes it.
  struct Site {
    int fn = -1;
    std::size_t pos = 0;
    std::size_t line = 0;
  };
  std::vector<Site> records;
  std::set<int> release_fns;
  for (int fi = 0; fi < static_cast<int>(project.functions().size()); ++fi) {
    const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(fi)];
    const SourceFile& f = project.file_of(fn);
    for (std::size_t pos :
         FindIdent(f.code, "borrows_", fn.body_begin + 1, fn.body_end - 1)) {
      std::size_t dot = pos + 8;
      if (dot >= f.code.size() || f.code[dot] != '.') {
        continue;
      }
      std::size_t m = dot + 1;
      std::size_t e = m;
      while (e < f.code.size() && IsIdentChar(f.code[e])) {
        ++e;
      }
      std::string method = f.code.substr(m, e - m);
      if (method == "emplace" || method == "insert" || method == "emplace_hint") {
        records.push_back(Site{fi, pos, f.LineOf(pos)});
      } else if (method == "erase" || method == "clear") {
        release_fns.insert(fi);
      }
    }
  }
  if (records.empty()) {
    return;  // no borrow rep in this tree — rule inert
  }
  if (release_fns.empty()) {
    for (const Site& r : records) {
      const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(r.fn)];
      AddFinding(findings, project.file_of(fn), r.line, "grant-lifetime",
                 fn.Id() + " records a page borrow but no release site "
                 "(`borrows_.erase`) exists anywhere in the tree",
                 "erase the borrow record on the grant-return and teardown paths");
    }
    return;
  }
  // (1) Cooperative return: some `case SysOp::kGrantReturn:` handler must
  // reach a release. The seeds are the calls made between the label and the
  // next case label in the same function.
  bool have_label = false;
  bool return_reaches = false;
  for (int fi = 0; fi < static_cast<int>(project.functions().size()); ++fi) {
    const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(fi)];
    const SourceFile& f = project.file_of(fn);
    for (std::size_t pos :
         FindIdent(f.code, "kGrantReturn", fn.body_begin, fn.body_end)) {
      if (pos < 7 || f.code.compare(pos - 7, 7, "SysOp::") != 0) {
        continue;
      }
      std::size_t case_pos = pos >= 12 ? f.code.rfind("case", pos) : std::string::npos;
      if (case_pos == std::string::npos || pos - case_pos > 12) {
        continue;  // a comparison or spec-table mention, not a case label
      }
      have_label = true;
      std::size_t limit = fn.body_end;
      for (std::size_t next : FindIdent(f.code, "case", pos, fn.body_end)) {
        limit = next;
        break;
      }
      std::set<int> seeds;
      for (const CallSite& site : fn.calls) {
        if (site.pos > pos && site.pos < limit) {
          seeds.insert(site.targets.begin(), site.targets.end());
        }
      }
      std::set<int> reach = ReachableFrom(project, seeds);
      for (int r : release_fns) {
        if (reach.count(r) != 0) {
          return_reaches = true;
          break;
        }
      }
    }
  }
  // (2) Teardown revocation: a Destroy*/Kill*/Teardown* function must reach
  // a release, so borrows die with their process even without a cooperative
  // return.
  std::set<int> teardown_seeds;
  for (int fi = 0; fi < static_cast<int>(project.functions().size()); ++fi) {
    const std::string& name =
        project.functions()[static_cast<std::size_t>(fi)].name;
    if (name.rfind("Destroy", 0) == 0 || name.rfind("Kill", 0) == 0 ||
        name.rfind("Teardown", 0) == 0) {
      teardown_seeds.insert(fi);
    }
  }
  std::set<int> teardown_reach = ReachableFrom(project, teardown_seeds);
  bool teardown_reaches = false;
  for (int r : release_fns) {
    if (teardown_reach.count(r) != 0) {
      teardown_reaches = true;
      break;
    }
  }
  for (const Site& r : records) {
    const FunctionInfo& fn = project.functions()[static_cast<std::size_t>(r.fn)];
    if (have_label && !return_reaches) {
      AddFinding(findings, project.file_of(fn), r.line, "grant-lifetime",
                 "borrow recorded in " + fn.Id() +
                     " but kGrantReturn handling cannot reach a release site",
                 "make the kGrantReturn handler unmap the borrowed page so "
                 "`borrows_.erase` runs on the cooperative return path");
    }
    if (!teardown_reaches) {
      AddFinding(findings, project.file_of(fn), r.line, "grant-lifetime",
                 "borrow recorded in " + fn.Id() +
                     " but no teardown path (Destroy*/Kill*/Teardown*) reaches a "
                     "release site",
                 "revoke outstanding borrows from the address-space teardown so "
                 "killed processes cannot leak grants");
    }
  }
}

}  // namespace atmo::lint
