#include "tools/averif_lint/callgraph.h"

#include <algorithm>
#include <cctype>

namespace atmo::lint {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",       "for",         "while",         "switch",
      "return",   "sizeof",      "catch",         "new",
      "delete",   "throw",       "static_cast",   "const_cast",
      "reinterpret_cast",        "dynamic_cast",  "decltype",
      "alignof",  "noexcept",    "assert",        "alignas",
      "operator", "static_assert"};
  return kw;
}

// Identifier starting at `i`, or empty.
std::string IdentAt(const std::string& code, std::size_t i) {
  std::size_t e = i;
  while (e < code.size() && IsIdentChar(code[e])) {
    ++e;
  }
  return code.substr(i, e - i);
}

// Identifier ending at (exclusive) `end`, scanning backwards.
std::string IdentEndingAt(const std::string& code, std::size_t end) {
  std::size_t b = end;
  while (b > 0 && IsIdentChar(code[b - 1])) {
    --b;
  }
  return code.substr(b, end - b);
}

// Strips whitespace from a macro-argument slice.
std::string StripSpaces(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (std::isspace(static_cast<unsigned char>(c)) == 0) {
      out += c;
    }
  }
  return out;
}

// End of the brace block enclosing `pos` (position of its '}'), bounded by
// `limit`. Used for guard extents: the guard dies when its enclosing block
// closes.
std::size_t EnclosingBlockEnd(const std::string& code, std::size_t pos,
                              std::size_t limit) {
  int depth = 0;
  for (std::size_t i = pos; i < limit; ++i) {
    if (code[i] == '{') {
      ++depth;
    } else if (code[i] == '}') {
      if (depth == 0) {
        return i;
      }
      --depth;
    }
  }
  return limit;
}

}  // namespace

Project Project::Load(const std::string& root) {
  Project p;
  for (const std::string& rel : TreeFiles(root)) {
    SourceFile f = LoadFile(root, rel);
    if (!f.ok) {
      continue;
    }
    p.files_.push_back(std::move(f));
  }
  for (int i = 0; i < static_cast<int>(p.files_.size()); ++i) {
    p.ParseFile(i);
  }
  for (int i = 0; i < static_cast<int>(p.functions_.size()); ++i) {
    const FunctionInfo& fn = p.functions_[static_cast<std::size_t>(i)];
    p.by_name_[fn.name].push_back(i);
    // Last definition wins on ODR-style duplicates; lookups only need *a*
    // body per qualified name.
    p.by_qualified_[fn.Id()] = i;
  }
  p.AnalyzeBodies();
  return p;
}

void Project::ParseFile(int file_index) {
  const SourceFile& f = files_[static_cast<std::size_t>(file_index)];
  ScanScope(file_index, 0, f.code.size(), "");
}

// Walks one class/namespace scope: registers nested classes (recursing into
// them), skips enum bodies and initializers, and registers every function
// definition found at this level.
void Project::ScanScope(int file_index, std::size_t begin, std::size_t end,
                        const std::string& cls) {
  const SourceFile& f = files_[static_cast<std::size_t>(file_index)];
  const std::string& code = f.code;
  std::size_t i = begin;
  while (i < end) {
    char c = code[i];
    if (!IsIdentChar(c)) {
      if (c == '{') {
        // A brace not introduced by a recognized construct: an initializer
        // (`= {...}`) is skipped whole, anything else (extern "C" blocks,
        // stray scopes) is scanned like a namespace.
        std::size_t close = MatchBrace(code, i);
        if (close == std::string::npos || close > end) {
          return;
        }
        std::size_t prev = PrevNonWs(code, i);
        char pc = prev == std::string::npos ? '\0' : code[prev];
        if (pc != '=' && pc != ',' && pc != '(') {
          ScanScope(file_index, i + 1, close - 1, cls);
        }
        i = close;
        continue;
      }
      ++i;
      continue;
    }
    if (i > begin && IsIdentChar(code[i - 1])) {
      ++i;
      continue;
    }
    std::string w = IdentAt(code, i);
    std::size_t after = i + w.size();
    if (w == "class" || w == "struct") {
      std::size_t k = SkipWs(code, after);
      std::string name = IdentAt(code, k);
      std::size_t j = k + name.size();
      while (j < end && code[j] != '{' && code[j] != ';' && code[j] != '(') {
        ++j;
      }
      // `(` means this was e.g. a parameter `struct Foo* f` oddity; `;` is a
      // forward declaration — both leave nothing to scan.
      if (j < end && code[j] == '{' && !name.empty()) {
        std::size_t close = MatchBrace(code, j);
        if (close == std::string::npos || close > end + 1) {
          return;
        }
        ClassInfo& info = classes_[name];
        info.name = name;
        info.file = file_index;
        CollectMembers(file_index, j + 1, close - 1, name);
        ScanScope(file_index, j + 1, close - 1, name);
        i = close;
        continue;
      }
      i = after;
      continue;
    }
    if (w == "namespace") {
      std::size_t j = after;
      while (j < end && code[j] != '{' && code[j] != ';' && code[j] != '=') {
        ++j;
      }
      if (j < end && code[j] == '{') {
        std::size_t close = MatchBrace(code, j);
        if (close == std::string::npos || close > end + 1) {
          return;
        }
        ScanScope(file_index, j + 1, close - 1, cls);
        i = close;
        continue;
      }
      i = j + 1;
      continue;
    }
    if (w == "enum") {
      std::size_t j = after;
      while (j < end && code[j] != '{' && code[j] != ';') {
        ++j;
      }
      if (j < end && code[j] == '{') {
        std::size_t close = MatchBrace(code, j);
        if (close == std::string::npos || close > end + 1) {
          return;
        }
        i = close;
        continue;
      }
      i = j + 1;
      continue;
    }
    if (w == "using" || w == "typedef" || w == "friend") {
      while (after < end && code[after] != ';') {
        ++after;
      }
      i = after + 1;
      continue;
    }
    // Candidate function name: identifier directly followed by '('.
    std::size_t k = SkipWs(code, after);
    if (k >= end || code[k] != '(' || Keywords().count(w) != 0) {
      i = after;
      continue;
    }
    std::size_t pclose = MatchParen(code, k);
    if (pclose == std::string::npos || pclose > end) {
      i = after;
      continue;
    }
    // Qualifier: `Class::Name(` makes this an out-of-line method of Class;
    // `~` marks a destructor (registered under ~Name so it never collides
    // with the constructor).
    std::string owner = cls;
    std::string name = w;
    std::size_t qpos = i;
    if (qpos > begin && code[qpos - 1] == '~') {
      name = "~" + w;
      --qpos;
    }
    if (qpos >= begin + 2 && code[qpos - 1] == ':' && code[qpos - 2] == ':') {
      std::string q = IdentEndingAt(code, qpos - 2);
      if (!q.empty()) {
        owner = q;
      }
    }
    // Trailer: const/noexcept/attribute macros until '{' (definition), or a
    // terminator proving this is a declaration/expression.
    std::size_t j = pclose;
    std::size_t body_open = std::string::npos;
    FunctionInfo fn;
    while (j < end) {
      j = SkipWs(code, j);
      if (j >= end) {
        break;
      }
      char t = code[j];
      if (t == '{') {
        body_open = j;
        break;
      }
      if (t == ';' || t == ',' || t == ')' || t == '}' || t == '=') {
        break;
      }
      if (t == ':') {
        // Constructor initializer list: scan to the body '{'. A '{' whose
        // previous token is an identifier or '>' is a member brace-init —
        // skip it whole; otherwise it opens the body.
        std::size_t m = j + 1;
        while (m < end) {
          if (code[m] == '(') {
            std::size_t pc = MatchParen(code, m);
            if (pc == std::string::npos) {
              break;
            }
            m = pc;
            continue;
          }
          if (code[m] == '{') {
            std::size_t prev = PrevNonWs(code, m);
            char pc = prev == std::string::npos ? '\0' : code[prev];
            if (IsIdentChar(pc) || pc == '>') {
              std::size_t bc = MatchBrace(code, m);
              if (bc == std::string::npos) {
                break;
              }
              m = bc;
              continue;
            }
            body_open = m;
            break;
          }
          if (code[m] == ';') {
            break;
          }
          ++m;
        }
        j = body_open != std::string::npos ? body_open : m;
        break;
      }
      if (IsIdentChar(t)) {
        std::string word = IdentAt(code, j);
        std::size_t wend = j + word.size();
        std::size_t paren = SkipWs(code, wend);
        std::string arg;
        if (paren < end && code[paren] == '(') {
          std::size_t pc = MatchParen(code, paren);
          if (pc == std::string::npos) {
            break;
          }
          arg = StripSpaces(code.substr(paren + 1, pc - paren - 2));
          wend = pc;
        }
        fn.trailer += word + " ";
        if (word == "ATMO_HOT_PATH") {
          fn.hot_rules.push_back(arg);
        } else if (word == "ATMO_REQUIRES" || word == "ATMO_REQUIRES_SHARED") {
          fn.requires_locks.push_back(arg);
        } else if (word == "ATMO_NO_THREAD_SAFETY_ANALYSIS") {
          fn.no_thread_safety = true;
        }
        j = wend;
        continue;
      }
      ++j;  // &, ->, * in trailing return types
    }
    if (body_open == std::string::npos) {
      i = pclose;
      continue;
    }
    std::size_t body_close = MatchBrace(code, body_open);
    if (body_close == std::string::npos || body_close > end + 1) {
      return;
    }
    fn.cls = owner;
    fn.name = name;
    fn.file = file_index;
    fn.decl_pos = i;
    fn.decl_line = f.LineOf(i);
    fn.body_begin = body_open;
    fn.body_end = body_close;
    functions_.push_back(std::move(fn));
    i = body_close;
  }
}

// Member declarations at depth 0 of a class body: `Type name_;` possibly
// carrying ATMO_GUARDED_BY. Statements containing parens (method
// declarations) are ignored except for the annotation extraction.
void Project::CollectMembers(int file_index, std::size_t begin, std::size_t end,
                             const std::string& cls) {
  const SourceFile& f = files_[static_cast<std::size_t>(file_index)];
  const std::string& code = f.code;
  ClassInfo& info = classes_[cls];
  std::size_t stmt = begin;
  for (std::size_t i = begin; i < end; ++i) {
    char c = code[i];
    if (c == '{') {
      std::size_t close = MatchBrace(code, i);
      if (close == std::string::npos) {
        return;
      }
      i = close - 1;
      continue;
    }
    if (c == '(') {
      std::size_t close = MatchParen(code, i);
      if (close == std::string::npos) {
        return;
      }
      i = close - 1;
      continue;
    }
    if (c != ';') {
      continue;
    }
    std::string s = code.substr(stmt, i - stmt);
    stmt = i + 1;
    // ATMO_GUARDED_BY(mu): member name precedes the macro.
    std::size_t g = s.find("ATMO_GUARDED_BY");
    if (g != std::string::npos) {
      std::size_t op = s.find('(', g);
      std::size_t cp = op == std::string::npos ? std::string::npos : s.find(')', op);
      std::size_t name_end = g;
      while (name_end > 0 &&
             std::isspace(static_cast<unsigned char>(s[name_end - 1])) != 0) {
        --name_end;
      }
      std::string member = IdentEndingAt(s, name_end);
      if (!member.empty() && op != std::string::npos && cp != std::string::npos) {
        GuardedMember gm;
        gm.cls = cls;
        gm.member = member;
        gm.mutex = StripSpaces(s.substr(op + 1, cp - op - 1));
        gm.file = file_index;
        gm.line = f.LineOf(stmt - 1);
        guarded_.push_back(std::move(gm));
      }
    }
    // Plain member: no parens or '=' (the paren statements were skipped
    // above, so any '(' left in `s` came from a skipped region boundary).
    // Tokens: first identifier = type candidate, last identifier = name.
    std::size_t first_b = std::string::npos, first_e = 0;
    for (std::size_t j = 0; j < s.size(); ++j) {
      if (IsIdentChar(s[j]) && (j == 0 || !IsIdentChar(s[j - 1]))) {
        first_b = j;
        first_e = j;
        while (first_e < s.size() && IsIdentChar(s[first_e])) {
          ++first_e;
        }
        break;
      }
    }
    if (first_b == std::string::npos) {
      continue;
    }
    std::string type = s.substr(first_b, first_e - first_b);
    if (type == "public" || type == "private" || type == "protected" ||
        type == "static" || type == "using" || type == "typedef" ||
        type == "friend" || type == "return") {
      continue;
    }
    std::size_t last = s.size();
    while (last > 0 && !IsIdentChar(s[last - 1])) {
      --last;
    }
    std::string member = IdentEndingAt(s, last);
    if (member.empty() || member == type) {
      continue;
    }
    if (info.member_types.find(member) == info.member_types.end()) {
      info.member_types[member] = type;
    }
  }
}

void Project::AnalyzeBodies() {
  for (int i = 0; i < static_cast<int>(functions_.size()); ++i) {
    AnalyzeBody(i);
  }
  for (int i = 0; i < static_cast<int>(functions_.size()); ++i) {
    for (const CallSite& site : functions_[static_cast<std::size_t>(i)].calls) {
      for (int target : site.targets) {
        std::vector<int>& callers = callers_[target];
        if (callers.empty() || callers.back() != i) {
          callers.push_back(i);
        }
      }
    }
  }
}

namespace {

const std::set<std::string>& AllocMethods() {
  // Lowercase STL container growth calls; project classes use CamelCase, so
  // a `.insert(` receiver is always a standard container.
  static const std::set<std::string> m = {
      "push_back", "emplace_back", "emplace",     "emplace_hint", "insert",
      "resize",    "reserve",      "push_front",  "append",       "assign"};
  return m;
}

const std::set<std::string>& AllocCalls() {
  static const std::set<std::string> m = {"malloc",       "calloc",
                                          "realloc",      "aligned_alloc",
                                          "strdup",       "make_unique",
                                          "make_shared"};
  return m;
}

const std::set<std::string>& CopyCalls() {
  static const std::set<std::string> m = {"memcpy", "memmove", "CopyPayload"};
  return m;
}

}  // namespace

void Project::AnalyzeBody(int fn_index) {
  FunctionInfo& fn = functions_[static_cast<std::size_t>(fn_index)];
  const SourceFile& f = files_[static_cast<std::size_t>(fn.file)];
  const std::string& code = f.code;
  std::size_t begin = fn.body_begin + 1;
  std::size_t end = fn.body_end - 1;

  // Local/parameter types: every `KnownClass [*&] ident` in the header and
  // body binds ident to that class for receiver resolution.
  std::map<std::string, std::string> local_types;
  for (const auto& [cname, cinfo] : classes_) {
    (void)cinfo;
    for (std::size_t pos : FindIdent(code, cname, fn.decl_pos, end)) {
      std::size_t j = pos + cname.size();
      while (j < end && (code[j] == '*' || code[j] == '&' ||
                         std::isspace(static_cast<unsigned char>(code[j])) != 0)) {
        ++j;
      }
      std::string var = IdentAt(code, j);
      if (!var.empty() && Keywords().count(var) == 0 &&
          classes_.find(var) == classes_.end()) {
        local_types.emplace(var, cname);
      }
    }
  }

  // Loop extents for the byte-copy heuristic.
  std::vector<Range> loops;
  for (const char* kw : {"for", "while"}) {
    for (std::size_t pos : FindIdent(code, kw, begin, end)) {
      std::size_t k = SkipWs(code, pos + std::string(kw).size());
      if (k >= end || code[k] != '(') {
        continue;
      }
      std::size_t pc = MatchParen(code, k);
      if (pc == std::string::npos) {
        continue;
      }
      std::size_t open = SkipWs(code, pc);
      if (open < end && code[open] == '{') {
        std::size_t bc = MatchBrace(code, open);
        if (bc != std::string::npos && bc <= end + 1) {
          loops.push_back(Range{open, bc});
        }
      }
    }
  }
  auto in_loop = [&](std::size_t pos) {
    for (const Range& r : loops) {
      if (pos > r.begin && pos < r.end) {
        return true;
      }
    }
    return false;
  };

  // Byte-copy loops: `dst[i] = src[j]` — `]` before an assignment whose
  // right side indexes again, inside a loop.
  for (std::size_t pos = begin; pos < end; ++pos) {
    if (code[pos] != '=') {
      continue;
    }
    char nextc = pos + 1 < end ? code[pos + 1] : '\0';
    char prevc = pos > 0 ? code[pos - 1] : '\0';
    if (nextc == '=' || prevc == '=' || prevc == '!' || prevc == '<' ||
        prevc == '>' || prevc == '+' || prevc == '-' || prevc == '*' ||
        prevc == '|' || prevc == '&' || prevc == '^') {
      continue;
    }
    std::size_t lhs = PrevNonWs(code, pos);
    if (lhs == std::string::npos || code[lhs] != ']') {
      continue;
    }
    bool rhs_indexes = false;
    for (std::size_t j = pos + 1; j < end && code[j] != ';'; ++j) {
      if (code[j] == '[') {
        rhs_indexes = true;
        break;
      }
    }
    if (rhs_indexes && in_loop(pos)) {
      fn.copies.push_back(PrimSite{pos, f.LineOf(pos), "byte-copy loop"});
    }
  }

  // Guard extents.
  for (std::size_t pos : FindIdent(code, "ArenaScope", begin, end)) {
    std::size_t close = EnclosingBlockEnd(code, pos, end + 1);
    fn.arena_extents.push_back(GuardExtent{pos, close, "arena"});
  }
  for (std::size_t pos : FindIdent(code, "MutexLock", begin, end)) {
    std::size_t op = code.find('(', pos);
    if (op == std::string::npos || op >= end) {
      continue;
    }
    std::size_t cp = MatchParen(code, op);
    if (cp == std::string::npos) {
      continue;
    }
    std::string mu;
    for (std::size_t j = op + 1; j < cp - 1; ++j) {
      if (IsIdentChar(code[j]) && !IsIdentChar(code[j - 1])) {
        mu = IdentAt(code, j);
      }
    }
    std::size_t close = EnclosingBlockEnd(code, pos, end + 1);
    fn.lock_extents.push_back(GuardExtent{pos, close, mu});
  }

  // Identifier walk: calls, allocation/copy calls, direct `mu_.Lock()`.
  std::vector<Range> call_paren_ranges;
  std::size_t i = begin;
  while (i < end) {
    if (!IsIdentChar(code[i]) || (i > 0 && IsIdentChar(code[i - 1]))) {
      ++i;
      continue;
    }
    std::string w = IdentAt(code, i);
    std::size_t after = i + w.size();
    std::size_t k = SkipWs(code, after);
    bool is_call = k < end && code[k] == '(';

    if (w == "new") {
      // `new Foo(...)` allocates; placement `new (ptr) Foo` targets storage
      // the caller already owns.
      if (!is_call) {
        fn.allocs.push_back(PrimSite{i, f.LineOf(i), "new"});
      }
      i = after;
      continue;
    }
    if (!is_call) {
      // Known function named as a value inside another call's argument list:
      // conservative may-call (function pointers, template callbacks).
      bool in_args = false;
      for (const Range& r : call_paren_ranges) {
        if (i > r.begin && i < r.end) {
          in_args = true;
          break;
        }
      }
      auto byn = by_name_.find(w);
      if (in_args && byn != by_name_.end() && Keywords().count(w) == 0) {
        char prevc = i > 0 ? code[i - 1] : '\0';
        bool qualified_field = prevc == '.' ||
                               (prevc == '>' && i >= 2 && code[i - 2] == '-');
        if (!qualified_field) {
          CallSite site;
          site.pos = i;
          site.line = f.LineOf(i);
          site.name = w;
          site.targets = byn->second;
          fn.calls.push_back(std::move(site));
        }
      }
      i = after;
      continue;
    }

    // It is a call. Track the paren range for argument scanning.
    std::size_t pclose = MatchParen(code, k);
    if (pclose != std::string::npos && pclose <= end + 1) {
      call_paren_ranges.push_back(Range{k, pclose - 1});
    }
    if (Keywords().count(w) != 0) {
      i = after;
      continue;
    }
    char prevc = i > 0 ? code[i - 1] : '\0';
    bool dot = prevc == '.';
    bool arrow = prevc == '>' && i >= 2 && code[i - 2] == '-';
    bool scope = prevc == ':' && i >= 2 && code[i - 2] == ':';

    if ((dot || arrow) && AllocMethods().count(w) != 0) {
      fn.allocs.push_back(PrimSite{i, f.LineOf(i), w});
      i = after;
      continue;
    }
    if (AllocCalls().count(w) != 0) {
      fn.allocs.push_back(PrimSite{i, f.LineOf(i), w});
      i = after;
      continue;
    }
    if (CopyCalls().count(w) != 0 || (scope && w == "copy")) {
      fn.copies.push_back(PrimSite{i, f.LineOf(i), w});
      i = after;
      continue;
    }
    if ((dot || arrow) && (w == "Lock" || w == "Unlock")) {
      // Manual lock: treat `mu_.Lock()` as covering the rest of the
      // enclosing block (Unlock before that is rare and conservative the
      // safe way for lock-discipline: coverage only grows).
      std::size_t recv_end = dot ? i - 1 : i - 2;
      std::string recv = IdentEndingAt(code, recv_end);
      if (w == "Lock" && !recv.empty()) {
        std::size_t close = EnclosingBlockEnd(code, i, end + 1);
        fn.lock_extents.push_back(GuardExtent{i, close, recv});
      }
      i = after;
      continue;
    }

    CallSite site;
    site.pos = i;
    site.line = f.LineOf(i);
    site.name = w;
    if (scope) {
      std::string q = IdentEndingAt(code, i - 2);
      int m = Method(q, w);
      if (m >= 0) {
        site.targets.push_back(m);
      } else if (!q.empty() && classes_.find(q) == classes_.end()) {
        // Unknown scope (std::, obs::...): no edge.
      }
    } else if (dot || arrow) {
      std::size_t recv_end = dot ? i - 1 : i - 2;
      std::string recv = IdentEndingAt(code, recv_end);
      std::string recv_type;
      if (recv == "this") {
        recv_type = fn.cls;
      } else if (!recv.empty()) {
        auto lt = local_types.find(recv);
        if (lt != local_types.end()) {
          recv_type = lt->second;
        } else {
          auto ci = classes_.find(fn.cls);
          if (ci != classes_.end()) {
            auto mt = ci->second.member_types.find(recv);
            if (mt != ci->second.member_types.end()) {
              recv_type = mt->second;
            }
          }
        }
      }
      int m = recv_type.empty() ? -1 : Method(recv_type, w);
      if (m >= 0) {
        site.targets.push_back(m);
      } else {
        // Unresolved receiver: conservative may-call to every function with
        // this name.
        auto byn = by_name_.find(w);
        if (byn != by_name_.end()) {
          site.targets = byn->second;
        }
      }
    } else {
      // Bare call: same class wins, else every function with the name.
      int m = fn.cls.empty() ? -1 : Method(fn.cls, w);
      if (m >= 0) {
        site.targets.push_back(m);
      } else {
        auto byn = by_name_.find(w);
        if (byn != by_name_.end()) {
          site.targets = byn->second;
        }
      }
    }
    if (!site.targets.empty()) {
      fn.calls.push_back(std::move(site));
    }
    i = after;
  }
}

const std::vector<int>* Project::ByName(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : &it->second;
}

int Project::Method(const std::string& cls, const std::string& name) const {
  if (cls.empty()) {
    return -1;
  }
  auto it = by_qualified_.find(cls + "::" + name);
  return it == by_qualified_.end() ? -1 : it->second;
}

std::vector<int> Project::MethodsOf(const std::string& cls) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(functions_.size()); ++i) {
    if (functions_[static_cast<std::size_t>(i)].cls == cls) {
      out.push_back(i);
    }
  }
  return out;
}

const std::vector<int>* Project::CallersOf(int callee) const {
  auto it = callers_.find(callee);
  return it == callers_.end() ? nullptr : &it->second;
}

std::vector<int> Project::HotRoots(const std::string& rule) const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(functions_.size()); ++i) {
    const FunctionInfo& fn = functions_[static_cast<std::size_t>(i)];
    for (const std::string& r : fn.hot_rules) {
      if (r == rule) {
        out.push_back(i);
        break;
      }
    }
  }
  return out;
}

}  // namespace atmo::lint
