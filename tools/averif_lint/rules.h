// Internal interface between the lint driver and the rule passes. Each
// rules_*.cc file implements one family; the driver (lint.cc) owns pass
// ordering, sorting, and dedup.

#ifndef ATMO_TOOLS_AVERIF_LINT_RULES_H_
#define ATMO_TOOLS_AVERIF_LINT_RULES_H_

#include <map>
#include <string>
#include <vector>

#include "tools/averif_lint/callgraph.h"
#include "tools/averif_lint/lint.h"
#include "tools/averif_lint/source.h"

namespace atmo::lint {

// Appends a finding unless an `averif-lint: allow(<rule>)` comment covers
// the line.
void AddFinding(std::vector<Finding>* findings, const SourceFile& f, std::size_t line,
                const std::string& rule, std::string message, std::string suggestion);

// Strict mode turns a missing required input into a finding; lenient mode
// (fixture trees) silently skips the rule.
void MissingFile(std::vector<Finding>* findings, const Options& options,
                 const std::string& rel_path, const std::string& rule);

// ---------------------------------------------------------------------------
// Per-class method model (publicness/constness) used by dirty-log. The call
// graph knows bodies and edges; this adds the access-section metadata the
// mutator filter needs.
// ---------------------------------------------------------------------------

struct Method {
  std::string name;
  bool is_public = false;
  bool is_const = false;
  bool is_static = false;
  std::size_t decl_line = 0;
  std::string body;  // inline body if any
};

std::vector<Method> ParseMethods(const SourceFile& f, Range body, bool default_public);

// ---------------------------------------------------------------------------
// Rule configuration
// ---------------------------------------------------------------------------

struct Subsystem {
  std::string class_name;
  std::string header;
  std::string source;                       // may be empty
  std::vector<std::string> mark_tokens;     // substrings counting as a direct mark
  std::vector<std::string> allow_methods;   // infrastructure methods (drains etc.)
  std::vector<std::string> index_members;   // extra lockstep members beyond *_index_
  std::vector<std::string> wf_methods;      // cross-check predicate names
  bool logged_by_caller = false;            // class-level dirty-log exemption
};

const std::vector<Subsystem>& Subsystems();

struct SpecLocation {
  std::string file;
  std::string function;  // empty = whole file
};

void CheckSysOpCoverage(const Options& options, std::vector<Finding>* findings,
                        const std::string& rule,
                        const std::vector<SpecLocation>& locations);

// ---------------------------------------------------------------------------
// Rule entry points
// ---------------------------------------------------------------------------

// Per-tree rules loading their own inputs.
void RuleSpecCoverage(const Options& options, std::vector<Finding>* findings);
void RuleTraceOpName(const Options& options, std::vector<Finding>* findings);
void RuleLockstepIndex(const Options& options, std::vector<Finding>* findings);

// Per-file rules (driver iterates the tree).
void RuleSysOpSwitchDefault(const SourceFile& f, std::vector<Finding>* findings);
void RuleErrorPath(const SourceFile& f, std::vector<Finding>* findings);

// Call-graph rules.
void RuleDirtyLog(const Options& options, const Project& project,
                  std::vector<Finding>* findings);
void RuleHotPathAlloc(const Options& options, const Project& project,
                      std::vector<Finding>* findings);
void RulePayloadCopy(const Options& options, const Project& project,
                     std::vector<Finding>* findings);
void RuleTraceStageCoverage(const Options& options, const Project& project,
                            std::vector<Finding>* findings);
void RuleLockDiscipline(const Options& options, const Project& project,
                        std::vector<Finding>* findings);
void RuleGrantLifetime(const Options& options, const Project& project,
                       std::vector<Finding>* findings);

}  // namespace atmo::lint

#endif  // ATMO_TOOLS_AVERIF_LINT_RULES_H_
