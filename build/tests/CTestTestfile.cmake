# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vstd_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/pmem_test[1]_include.cmake")
include("/root/repo/build/tests/pagetable_test[1]_include.cmake")
include("/root/repo/build/tests/proc_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_test[1]_include.cmake")
include("/root/repo/build/tests/iommu_test[1]_include.cmake")
include("/root/repo/build/tests/sec_test[1]_include.cmake")
include("/root/repo/build/tests/drivers_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/baseline_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/system_test[1]_include.cmake")
include("/root/repo/build/tests/verif_test[1]_include.cmake")
include("/root/repo/build/tests/kernel_ipc_edge_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
