file(REMOVE_RECURSE
  "CMakeFiles/pagetable_test.dir/pagetable_test.cc.o"
  "CMakeFiles/pagetable_test.dir/pagetable_test.cc.o.d"
  "pagetable_test"
  "pagetable_test.pdb"
  "pagetable_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pagetable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
