# Empty dependencies file for kernel_ipc_edge_test.
# This may be replaced when dependencies are built.
