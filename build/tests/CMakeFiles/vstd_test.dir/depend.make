# Empty dependencies file for vstd_test.
# This may be replaced when dependencies are built.
