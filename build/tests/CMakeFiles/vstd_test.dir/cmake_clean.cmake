file(REMOVE_RECURSE
  "CMakeFiles/vstd_test.dir/vstd_test.cc.o"
  "CMakeFiles/vstd_test.dir/vstd_test.cc.o.d"
  "vstd_test"
  "vstd_test.pdb"
  "vstd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vstd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
