# Empty dependencies file for sec_test.
# This may be replaced when dependencies are built.
