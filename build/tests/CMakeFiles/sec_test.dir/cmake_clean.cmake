file(REMOVE_RECURSE
  "CMakeFiles/sec_test.dir/sec_test.cc.o"
  "CMakeFiles/sec_test.dir/sec_test.cc.o.d"
  "sec_test"
  "sec_test.pdb"
  "sec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
