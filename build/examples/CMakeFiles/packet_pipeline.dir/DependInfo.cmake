
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/packet_pipeline.cpp" "examples/CMakeFiles/packet_pipeline.dir/packet_pipeline.cpp.o" "gcc" "examples/CMakeFiles/packet_pipeline.dir/packet_pipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atmo_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_pagetable.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_vstd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
