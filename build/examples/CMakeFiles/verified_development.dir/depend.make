# Empty dependencies file for verified_development.
# This may be replaced when dependencies are built.
