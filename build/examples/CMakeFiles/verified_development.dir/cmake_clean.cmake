file(REMOVE_RECURSE
  "CMakeFiles/verified_development.dir/verified_development.cpp.o"
  "CMakeFiles/verified_development.dir/verified_development.cpp.o.d"
  "verified_development"
  "verified_development.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verified_development.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
