
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/verified_development.cpp" "examples/CMakeFiles/verified_development.dir/verified_development.cpp.o" "gcc" "examples/CMakeFiles/verified_development.dir/verified_development.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atmo_verif.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_proc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_pagetable.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_vstd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
