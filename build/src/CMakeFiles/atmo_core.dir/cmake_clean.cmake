file(REMOVE_RECURSE
  "CMakeFiles/atmo_core.dir/core/kernel.cc.o"
  "CMakeFiles/atmo_core.dir/core/kernel.cc.o.d"
  "CMakeFiles/atmo_core.dir/core/vm_manager.cc.o"
  "CMakeFiles/atmo_core.dir/core/vm_manager.cc.o.d"
  "libatmo_core.a"
  "libatmo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
