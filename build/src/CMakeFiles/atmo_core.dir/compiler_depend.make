# Empty compiler generated dependencies file for atmo_core.
# This may be replaced when dependencies are built.
