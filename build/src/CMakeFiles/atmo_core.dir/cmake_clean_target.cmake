file(REMOVE_RECURSE
  "libatmo_core.a"
)
