file(REMOVE_RECURSE
  "libatmo_proc.a"
)
