file(REMOVE_RECURSE
  "CMakeFiles/atmo_proc.dir/proc/invariants.cc.o"
  "CMakeFiles/atmo_proc.dir/proc/invariants.cc.o.d"
  "CMakeFiles/atmo_proc.dir/proc/process_manager.cc.o"
  "CMakeFiles/atmo_proc.dir/proc/process_manager.cc.o.d"
  "libatmo_proc.a"
  "libatmo_proc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_proc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
