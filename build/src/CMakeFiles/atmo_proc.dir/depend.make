# Empty dependencies file for atmo_proc.
# This may be replaced when dependencies are built.
