file(REMOVE_RECURSE
  "CMakeFiles/atmo_sec.dir/sec/abv_scenario.cc.o"
  "CMakeFiles/atmo_sec.dir/sec/abv_scenario.cc.o.d"
  "CMakeFiles/atmo_sec.dir/sec/isolation.cc.o"
  "CMakeFiles/atmo_sec.dir/sec/isolation.cc.o.d"
  "CMakeFiles/atmo_sec.dir/sec/noninterference.cc.o"
  "CMakeFiles/atmo_sec.dir/sec/noninterference.cc.o.d"
  "CMakeFiles/atmo_sec.dir/sec/observation.cc.o"
  "CMakeFiles/atmo_sec.dir/sec/observation.cc.o.d"
  "CMakeFiles/atmo_sec.dir/sec/verified_proxy.cc.o"
  "CMakeFiles/atmo_sec.dir/sec/verified_proxy.cc.o.d"
  "libatmo_sec.a"
  "libatmo_sec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_sec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
