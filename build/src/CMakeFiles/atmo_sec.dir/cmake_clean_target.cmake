file(REMOVE_RECURSE
  "libatmo_sec.a"
)
