# Empty dependencies file for atmo_sec.
# This may be replaced when dependencies are built.
