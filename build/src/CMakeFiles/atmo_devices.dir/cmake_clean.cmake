file(REMOVE_RECURSE
  "CMakeFiles/atmo_devices.dir/hw/sim_nic.cc.o"
  "CMakeFiles/atmo_devices.dir/hw/sim_nic.cc.o.d"
  "CMakeFiles/atmo_devices.dir/hw/sim_nvme.cc.o"
  "CMakeFiles/atmo_devices.dir/hw/sim_nvme.cc.o.d"
  "libatmo_devices.a"
  "libatmo_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
