# Empty dependencies file for atmo_devices.
# This may be replaced when dependencies are built.
