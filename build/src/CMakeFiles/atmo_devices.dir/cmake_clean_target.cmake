file(REMOVE_RECURSE
  "libatmo_devices.a"
)
