# Empty compiler generated dependencies file for atmo_pmem.
# This may be replaced when dependencies are built.
