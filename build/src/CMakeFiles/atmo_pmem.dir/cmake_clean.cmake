file(REMOVE_RECURSE
  "CMakeFiles/atmo_pmem.dir/pmem/page_allocator.cc.o"
  "CMakeFiles/atmo_pmem.dir/pmem/page_allocator.cc.o.d"
  "libatmo_pmem.a"
  "libatmo_pmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_pmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
