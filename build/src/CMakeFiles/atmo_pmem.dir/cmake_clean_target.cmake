file(REMOVE_RECURSE
  "libatmo_pmem.a"
)
