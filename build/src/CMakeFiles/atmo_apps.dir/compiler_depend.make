# Empty compiler generated dependencies file for atmo_apps.
# This may be replaced when dependencies are built.
