file(REMOVE_RECURSE
  "libatmo_apps.a"
)
