file(REMOVE_RECURSE
  "CMakeFiles/atmo_apps.dir/apps/httpd.cc.o"
  "CMakeFiles/atmo_apps.dir/apps/httpd.cc.o.d"
  "CMakeFiles/atmo_apps.dir/apps/kvstore.cc.o"
  "CMakeFiles/atmo_apps.dir/apps/kvstore.cc.o.d"
  "CMakeFiles/atmo_apps.dir/apps/maglev.cc.o"
  "CMakeFiles/atmo_apps.dir/apps/maglev.cc.o.d"
  "libatmo_apps.a"
  "libatmo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
