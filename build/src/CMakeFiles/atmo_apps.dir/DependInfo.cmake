
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/httpd.cc" "src/CMakeFiles/atmo_apps.dir/apps/httpd.cc.o" "gcc" "src/CMakeFiles/atmo_apps.dir/apps/httpd.cc.o.d"
  "/root/repo/src/apps/kvstore.cc" "src/CMakeFiles/atmo_apps.dir/apps/kvstore.cc.o" "gcc" "src/CMakeFiles/atmo_apps.dir/apps/kvstore.cc.o.d"
  "/root/repo/src/apps/maglev.cc" "src/CMakeFiles/atmo_apps.dir/apps/maglev.cc.o" "gcc" "src/CMakeFiles/atmo_apps.dir/apps/maglev.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atmo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_vstd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
