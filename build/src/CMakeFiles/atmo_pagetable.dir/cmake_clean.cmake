file(REMOVE_RECURSE
  "CMakeFiles/atmo_pagetable.dir/pagetable/page_table.cc.o"
  "CMakeFiles/atmo_pagetable.dir/pagetable/page_table.cc.o.d"
  "CMakeFiles/atmo_pagetable.dir/pagetable/refinement.cc.o"
  "CMakeFiles/atmo_pagetable.dir/pagetable/refinement.cc.o.d"
  "libatmo_pagetable.a"
  "libatmo_pagetable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_pagetable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
