# Empty dependencies file for atmo_pagetable.
# This may be replaced when dependencies are built.
