file(REMOVE_RECURSE
  "libatmo_pagetable.a"
)
