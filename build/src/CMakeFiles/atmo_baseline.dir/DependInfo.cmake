
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/cap_kernel.cc" "src/CMakeFiles/atmo_baseline.dir/baseline/cap_kernel.cc.o" "gcc" "src/CMakeFiles/atmo_baseline.dir/baseline/cap_kernel.cc.o.d"
  "/root/repo/src/baseline/linux_block.cc" "src/CMakeFiles/atmo_baseline.dir/baseline/linux_block.cc.o" "gcc" "src/CMakeFiles/atmo_baseline.dir/baseline/linux_block.cc.o.d"
  "/root/repo/src/baseline/linux_net.cc" "src/CMakeFiles/atmo_baseline.dir/baseline/linux_net.cc.o" "gcc" "src/CMakeFiles/atmo_baseline.dir/baseline/linux_net.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/atmo_drivers.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_iommu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_pagetable.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_pmem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/atmo_vstd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
