file(REMOVE_RECURSE
  "libatmo_baseline.a"
)
