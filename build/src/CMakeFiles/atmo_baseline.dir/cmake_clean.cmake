file(REMOVE_RECURSE
  "CMakeFiles/atmo_baseline.dir/baseline/cap_kernel.cc.o"
  "CMakeFiles/atmo_baseline.dir/baseline/cap_kernel.cc.o.d"
  "CMakeFiles/atmo_baseline.dir/baseline/linux_block.cc.o"
  "CMakeFiles/atmo_baseline.dir/baseline/linux_block.cc.o.d"
  "CMakeFiles/atmo_baseline.dir/baseline/linux_net.cc.o"
  "CMakeFiles/atmo_baseline.dir/baseline/linux_net.cc.o.d"
  "libatmo_baseline.a"
  "libatmo_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
