# Empty compiler generated dependencies file for atmo_baseline.
# This may be replaced when dependencies are built.
