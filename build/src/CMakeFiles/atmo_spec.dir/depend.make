# Empty dependencies file for atmo_spec.
# This may be replaced when dependencies are built.
