file(REMOVE_RECURSE
  "CMakeFiles/atmo_spec.dir/spec/syscall_specs.cc.o"
  "CMakeFiles/atmo_spec.dir/spec/syscall_specs.cc.o.d"
  "libatmo_spec.a"
  "libatmo_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
