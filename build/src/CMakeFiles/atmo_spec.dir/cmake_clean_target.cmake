file(REMOVE_RECURSE
  "libatmo_spec.a"
)
