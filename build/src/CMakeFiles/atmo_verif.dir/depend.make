# Empty dependencies file for atmo_verif.
# This may be replaced when dependencies are built.
