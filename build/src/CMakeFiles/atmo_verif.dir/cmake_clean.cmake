file(REMOVE_RECURSE
  "CMakeFiles/atmo_verif.dir/verif/invariant_registry.cc.o"
  "CMakeFiles/atmo_verif.dir/verif/invariant_registry.cc.o.d"
  "CMakeFiles/atmo_verif.dir/verif/refinement_checker.cc.o"
  "CMakeFiles/atmo_verif.dir/verif/refinement_checker.cc.o.d"
  "libatmo_verif.a"
  "libatmo_verif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_verif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
