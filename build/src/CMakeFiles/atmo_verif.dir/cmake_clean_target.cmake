file(REMOVE_RECURSE
  "libatmo_verif.a"
)
