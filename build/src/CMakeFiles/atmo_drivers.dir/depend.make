# Empty dependencies file for atmo_drivers.
# This may be replaced when dependencies are built.
