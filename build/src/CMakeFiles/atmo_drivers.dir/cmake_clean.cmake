file(REMOVE_RECURSE
  "CMakeFiles/atmo_drivers.dir/drivers/dma_arena.cc.o"
  "CMakeFiles/atmo_drivers.dir/drivers/dma_arena.cc.o.d"
  "CMakeFiles/atmo_drivers.dir/drivers/ixgbe_driver.cc.o"
  "CMakeFiles/atmo_drivers.dir/drivers/ixgbe_driver.cc.o.d"
  "CMakeFiles/atmo_drivers.dir/drivers/nvme_driver.cc.o"
  "CMakeFiles/atmo_drivers.dir/drivers/nvme_driver.cc.o.d"
  "libatmo_drivers.a"
  "libatmo_drivers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_drivers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
