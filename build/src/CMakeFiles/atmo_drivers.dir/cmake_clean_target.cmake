file(REMOVE_RECURSE
  "libatmo_drivers.a"
)
