file(REMOVE_RECURSE
  "libatmo_hw.a"
)
