# Empty dependencies file for atmo_hw.
# This may be replaced when dependencies are built.
