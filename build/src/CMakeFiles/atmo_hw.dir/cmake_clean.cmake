file(REMOVE_RECURSE
  "CMakeFiles/atmo_hw.dir/hw/mmu.cc.o"
  "CMakeFiles/atmo_hw.dir/hw/mmu.cc.o.d"
  "CMakeFiles/atmo_hw.dir/hw/phys_mem.cc.o"
  "CMakeFiles/atmo_hw.dir/hw/phys_mem.cc.o.d"
  "libatmo_hw.a"
  "libatmo_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
