file(REMOVE_RECURSE
  "libatmo_iommu.a"
)
