# Empty dependencies file for atmo_iommu.
# This may be replaced when dependencies are built.
