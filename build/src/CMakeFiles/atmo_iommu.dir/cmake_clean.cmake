file(REMOVE_RECURSE
  "CMakeFiles/atmo_iommu.dir/iommu/iommu_manager.cc.o"
  "CMakeFiles/atmo_iommu.dir/iommu/iommu_manager.cc.o.d"
  "libatmo_iommu.a"
  "libatmo_iommu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_iommu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
