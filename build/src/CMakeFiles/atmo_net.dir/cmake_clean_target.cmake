file(REMOVE_RECURSE
  "libatmo_net.a"
)
