# Empty compiler generated dependencies file for atmo_net.
# This may be replaced when dependencies are built.
