file(REMOVE_RECURSE
  "CMakeFiles/atmo_net.dir/net/packet.cc.o"
  "CMakeFiles/atmo_net.dir/net/packet.cc.o.d"
  "libatmo_net.a"
  "libatmo_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
