# Empty dependencies file for atmo_vstd.
# This may be replaced when dependencies are built.
