file(REMOVE_RECURSE
  "libatmo_vstd.a"
)
