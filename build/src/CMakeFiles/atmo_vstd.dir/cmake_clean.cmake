file(REMOVE_RECURSE
  "CMakeFiles/atmo_vstd.dir/vstd/check.cc.o"
  "CMakeFiles/atmo_vstd.dir/vstd/check.cc.o.d"
  "libatmo_vstd.a"
  "libatmo_vstd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_vstd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
