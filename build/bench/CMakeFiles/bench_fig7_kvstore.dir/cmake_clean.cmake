file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_kvstore.dir/bench_fig7_kvstore.cc.o"
  "CMakeFiles/bench_fig7_kvstore.dir/bench_fig7_kvstore.cc.o.d"
  "bench_fig7_kvstore"
  "bench_fig7_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
