# Empty dependencies file for atmo_bench_pipeline.
# This may be replaced when dependencies are built.
