file(REMOVE_RECURSE
  "libatmo_bench_pipeline.a"
)
