file(REMOVE_RECURSE
  "CMakeFiles/atmo_bench_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/atmo_bench_pipeline.dir/pipeline.cc.o.d"
  "libatmo_bench_pipeline.a"
  "libatmo_bench_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atmo_bench_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
