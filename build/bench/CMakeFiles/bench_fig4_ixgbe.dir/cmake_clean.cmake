file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ixgbe.dir/bench_fig4_ixgbe.cc.o"
  "CMakeFiles/bench_fig4_ixgbe.dir/bench_fig4_ixgbe.cc.o.d"
  "bench_fig4_ixgbe"
  "bench_fig4_ixgbe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ixgbe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
