# Empty dependencies file for bench_fig4_ixgbe.
# This may be replaced when dependencies are built.
