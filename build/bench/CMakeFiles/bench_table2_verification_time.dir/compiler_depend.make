# Empty compiler generated dependencies file for bench_table2_verification_time.
# This may be replaced when dependencies are built.
