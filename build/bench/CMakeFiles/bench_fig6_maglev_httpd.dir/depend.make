# Empty dependencies file for bench_fig6_maglev_httpd.
# This may be replaced when dependencies are built.
