file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_maglev_httpd.dir/bench_fig6_maglev_httpd.cc.o"
  "CMakeFiles/bench_fig6_maglev_httpd.dir/bench_fig6_maglev_httpd.cc.o.d"
  "bench_fig6_maglev_httpd"
  "bench_fig6_maglev_httpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_maglev_httpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
