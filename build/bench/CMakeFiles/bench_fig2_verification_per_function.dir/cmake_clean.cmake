file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_verification_per_function.dir/bench_fig2_verification_per_function.cc.o"
  "CMakeFiles/bench_fig2_verification_per_function.dir/bench_fig2_verification_per_function.cc.o.d"
  "bench_fig2_verification_per_function"
  "bench_fig2_verification_per_function.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_verification_per_function.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
