# Empty compiler generated dependencies file for bench_fig2_verification_per_function.
# This may be replaced when dependencies are built.
