file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_nvme.dir/bench_fig5_nvme.cc.o"
  "CMakeFiles/bench_fig5_nvme.dir/bench_fig5_nvme.cc.o.d"
  "bench_fig5_nvme"
  "bench_fig5_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
