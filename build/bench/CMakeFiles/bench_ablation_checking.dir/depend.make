# Empty dependencies file for bench_ablation_checking.
# This may be replaced when dependencies are built.
