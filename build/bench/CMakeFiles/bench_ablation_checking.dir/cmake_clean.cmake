file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_checking.dir/bench_ablation_checking.cc.o"
  "CMakeFiles/bench_ablation_checking.dir/bench_ablation_checking.cc.o.d"
  "bench_ablation_checking"
  "bench_ablation_checking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
