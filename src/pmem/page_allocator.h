// Page allocator (§4.2 "Memory allocation").
//
// Dynamic memory for kernel objects and user mappings is allocated at the
// granularity of 4 KiB, 2 MiB and 1 GiB pages. A page-metadata array (like
// Linux's struct page array) tracks the state of every physical 4 KiB frame;
// free pages of each size class sit on doubly-linked lists threaded through
// the metadata array, so a page can be unlinked in constant time when it is
// merged into a superpage.
//
// Every page is in exactly one of the paper's four states (plus one model
// state for frames the allocator does not manage):
//   free      — on the free list of its size class
//   mapped    — mapped by one or more processes (map-count tracked)
//   merged    — a 4 KiB tail frame covered by a 2 MiB/1 GiB unit, or a 2 MiB
//               tail unit covered by a 1 GiB unit
//   allocated — backing a kernel object (container/process/thread/endpoint/
//               page-table node/...)
//   unavailable — reserved at boot (frame 0, kernel image); never handed out
//
// The allocator exposes its internal state as ghost sets (free / allocated /
// mapped pages per size class) so that the explicit-allocator-state
// reasoning of Listing 4 — and the global leak-freedom invariant
// Σ page_closure(subsystem) == allocated pages — can be checked.

#ifndef ATMO_SRC_PMEM_PAGE_ALLOCATOR_H_
#define ATMO_SRC_PMEM_PAGE_ALLOCATOR_H_

#include <cstdint>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "src/hw/phys_mem.h"
#include "src/vstd/dirty_set.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

enum class PageState : std::uint8_t {
  kUnavailable = 0,
  kFree,
  kMapped,
  kMerged,
  kAllocated,
};

const char* PageStateName(PageState state);

// Result of an allocation: the page's base address plus the linear frame
// permission that authorizes access to its bytes.
struct PageAlloc {
  PagePtr ptr;
  FramePerm perm;
};

class PageAllocator {
 public:
  // Manages frames [reserved_frames, total_frames) of a machine with
  // `total_frames` 4 KiB frames. Frames below `reserved_frames` are
  // kUnavailable (boot/kernel image; frame 0 doubles as the null pointer).
  PageAllocator(std::uint64_t total_frames, std::uint64_t reserved_frames);

  PageAllocator(PageAllocator&&) noexcept = default;
  PageAllocator& operator=(PageAllocator&&) noexcept = default;

  // --- Allocation / free (kernel-object pages, state kAllocated) ---

  // Allocates one page of the given size class, charged to `owner`
  // (kNullPtr for boot-time allocations). Returns nullopt when out of
  // memory. For 2M/1G the allocator first tries its free list, then tries
  // to merge smaller pages.
  std::optional<PageAlloc> AllocPage4K(CtnrPtr owner);
  std::optional<PageAlloc> AllocPage2M(CtnrPtr owner);
  std::optional<PageAlloc> AllocPage1G(CtnrPtr owner);
  std::optional<PageAlloc> AllocPage(PageSize size, CtnrPtr owner);

  // Frees an allocated page, consuming its permission.
  void FreePage(PagePtr ptr, FramePerm perm);

  // --- Mapped-state transitions (user mappings) ---

  // Converts a freshly allocated page into the mapped state (map-count 1).
  // The frame permission migrates to the virtual-memory subsystem.
  void MarkMapped(PagePtr ptr);
  // Additional mapping of an already-mapped page (shared memory / IPC page
  // grant). Returns the new map count.
  std::uint32_t IncMapCount(PagePtr ptr);
  // Removes one mapping. Returns the remaining count; at zero the caller
  // must hand the frame permission back via ReclaimUnmapped().
  std::uint32_t DecMapCount(PagePtr ptr);
  // Returns a fully unmapped page (map count 0) to the free list.
  void ReclaimUnmapped(PagePtr ptr, FramePerm perm);

  std::uint32_t MapCount(PagePtr ptr) const;

  // --- Superpage merge / split ---

  // Merges 512 contiguous free 4 KiB pages at `base` (2 MiB aligned) into
  // one free 2 MiB page. Constant-time list removal per constituent.
  bool TryMerge2M(PagePtr base);
  // Merges 512 contiguous free 2 MiB units at `base` (1 GiB aligned).
  bool TryMerge1G(PagePtr base);
  // Scans the page array for a mergeable run (paper: "we scan the page
  // array"). Returns the merged page base or nullopt. The allocation paths
  // no longer call these: the coalescing index (below) proves the scan
  // futile whenever it holds no candidate. They remain as the documented
  // fallback for explicit compaction and as the reference the differential
  // test scans with.
  std::optional<PagePtr> Merge2MAnywhere();
  std::optional<PagePtr> Merge1GAnywhere();
  // Splits a free 2 MiB page back into 512 free 4 KiB pages.
  void Split2M(PagePtr base);
  void Split1G(PagePtr base);

  // --- Introspection / ghost state ---

  PageState StateOf(PagePtr ptr) const;
  PageSize SizeClassOf(PagePtr ptr) const;
  CtnrPtr OwnerOf(PagePtr ptr) const;
  // Re-attributes a page to a different container (resource harvesting on
  // container termination).
  void SetOwner(PagePtr ptr, CtnrPtr owner);

  std::uint64_t total_frames() const { return static_cast<std::uint64_t>(meta_.size()); }
  std::uint64_t reserved_frames() const { return reserved_frames_; }
  std::uint64_t FreeCount(PageSize size) const;

  // Ghost views (Listing 4: free_pages_4k(), allocated_pages_4k(), ...).
  SpecSet<PagePtr> FreePages(PageSize size) const;
  SpecSet<PagePtr> AllocatedPages() const;  // unit bases, any size class
  SpecSet<PagePtr> MappedPages() const;     // unit bases, any size class
  // All 4 KiB frame base addresses covered by allocated+mapped+merged pages.
  SpecSet<PagePtr> InUseFrames() const;

  // Structural invariant of the allocator itself: list links are mutually
  // consistent, states agree with list membership, merged tails point at a
  // live superpage head, every frame is in exactly one state, and the
  // coalescing index (per-group free counters + mergeable heaps) agrees
  // with the ground truth in meta_. Single span-skipping pass over meta_
  // plus O(free-list nodes) link walks.
  bool Wf() const;
  // The pre-optimization multi-pass implementation of the same predicate,
  // retained as the oracle for the verdict-identity test. Checks the same
  // obligations (including the index cross-check) with independent code.
  bool WfReference() const;

  // Dedup-drains the set of frames whose abstract attribution (state, size
  // class, owner or map count) may have changed since the last drain.
  void DrainDirtyInto(std::set<PagePtr>* out, bool* overflow) { dirty_.DrainInto(out, overflow); }

  // Deep copy for the verification harness.
  PageAllocator CloneForVerification() const;
  // Pooled clone: overwrite `out` in place, reusing its vector/heap
  // capacity (allocation-free at steady state; DESIGN.md §14).
  void CloneForVerificationInto(PageAllocator* out) const;

 private:
  friend struct PageAllocatorTestPeer;

  static constexpr std::uint64_t kNilFrame = ~0ull;

  struct PageMeta {
    PageState state = PageState::kUnavailable;
    PageSize size = PageSize::k4K;     // size class of the unit this frame heads
    std::uint64_t prev = kNilFrame;    // free-list links (frame indices)
    std::uint64_t next = kNilFrame;
    std::uint64_t merged_head = kNilFrame;  // for kMerged: head frame of the unit
    std::uint32_t map_count = 0;
    CtnrPtr owner = kNullPtr;
  };

  struct FreeList {
    std::uint64_t head = kNilFrame;
    std::uint64_t count = 0;
  };

  std::uint64_t FrameOf(PagePtr ptr) const;
  PagePtr PtrOf(std::uint64_t frame) const { return frame * kPageSize4K; }
  FreeList& ListFor(PageSize size);
  const FreeList& ListFor(PageSize size) const;

  void PushFree(std::uint64_t frame, PageSize size);
  // Unlinks `frame` from its free list in constant time.
  void UnlinkFree(std::uint64_t frame);
  std::optional<std::uint64_t> PopFree(PageSize size);

  std::optional<PageAlloc> AllocFrom(PageSize size, CtnrPtr owner);

  // --- Coalescing index (DESIGN.md §10) ---
  //
  // PushFree/UnlinkFree are the only free-state transition points, so they
  // maintain exact per-group counters: free_in_2m_[g] counts free 4K frames
  // in 2M group g; free_eq_1g_[r] counts free 4K-frame-equivalents in 1G
  // region r (a free 4K frame adds 1, a free 2M unit adds 512; a free 1G
  // page adds nothing — it needs no coalescing). When a counter reaches its
  // unit span the group is provably coalescible and its index is pushed
  // onto a min-heap; the flag vectors record heap membership so a group is
  // never pushed twice. Counters dropping below full do NOT remove the heap
  // entry — stale entries are discarded on pop (amortized O(1), each entry
  // is paid for by one full-transition). Invariant (cross-checked by Wf):
  // counter full => flagged, and flagged <=> exactly one heap entry.
  void NoteFreed(std::uint64_t frame, PageSize size);
  void NoteUnfreed(std::uint64_t frame, PageSize size);
  // Pop the lowest provably coalescible group/region, merge it, and return
  // the merged base. Min-heap order makes the choice identical to what a
  // low-to-high scan would find, which the differential test relies on.
  std::optional<PagePtr> Coalesce2MIndexed();
  std::optional<PagePtr> Coalesce1GIndexed();
  // Ensures free_2m_ is non-empty (coalescing a full group or splitting a
  // 1G unit if needed) and returns its head, or nullopt when exhausted.
  std::optional<PagePtr> TakeFree2MUnit();

  bool CheckFreeListLinks() const;
  bool CheckCoalescingHeaps() const;

  std::uint64_t reserved_frames_;
  std::vector<PageMeta> meta_;
  FreeList free_4k_;
  FreeList free_2m_;
  FreeList free_1g_;
  std::vector<std::uint32_t> free_in_2m_;   // free 4K frames per 2M group
  std::vector<std::uint64_t> free_eq_1g_;   // free frame-equivalents per 1G region
  std::vector<std::uint8_t> in_mergeable_2m_;
  std::vector<std::uint8_t> in_mergeable_1g_;
  std::vector<std::uint64_t> mergeable_2m_;  // min-heap of coalescible group indices
  std::vector<std::uint64_t> mergeable_1g_;  // min-heap of coalescible region indices
  DirtyLog dirty_;
};

}  // namespace atmo

#endif  // ATMO_SRC_PMEM_PAGE_ALLOCATOR_H_
