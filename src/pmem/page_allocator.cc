#include "src/pmem/page_allocator.h"

#include <algorithm>
#include <functional>

#include "src/obs/flight_recorder.h"
#include "src/vstd/check.h"

namespace atmo {

namespace {
constexpr std::uint64_t kFramesPer2M = kPageSize2M / kPageSize4K;  // 512
constexpr std::uint64_t kFramesPer1G = kPageSize1G / kPageSize4K;  // 262144

// Static-duration event names, keyed by size class (the trace-event payload
// keeps raw pointers to these).
constexpr const char* AllocEventName(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return "alloc.4k";
    case PageSize::k2M:
      return "alloc.2m";
    case PageSize::k1G:
      return "alloc.1g";
  }
  return "alloc.?";
}

constexpr const char* FreeEventName(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return "free.4k";
    case PageSize::k2M:
      return "free.2m";
    case PageSize::k1G:
      return "free.1g";
  }
  return "free.?";
}
}  // namespace

const char* PageStateName(PageState state) {
  switch (state) {
    case PageState::kUnavailable:
      return "unavailable";
    case PageState::kFree:
      return "free";
    case PageState::kMapped:
      return "mapped";
    case PageState::kMerged:
      return "merged";
    case PageState::kAllocated:
      return "allocated";
  }
  return "?";
}

PageAllocator::PageAllocator(std::uint64_t total_frames, std::uint64_t reserved_frames)
    : reserved_frames_(reserved_frames),
      meta_(total_frames),
      free_in_2m_((total_frames + kFramesPer2M - 1) / kFramesPer2M, 0),
      free_eq_1g_((total_frames + kFramesPer1G - 1) / kFramesPer1G, 0),
      in_mergeable_2m_(free_in_2m_.size(), 0),
      in_mergeable_1g_(free_eq_1g_.size(), 0) {
  ATMO_CHECK(reserved_frames >= 1, "frame 0 (null pointer) must be reserved");
  ATMO_CHECK(reserved_frames <= total_frames, "reserved frames exceed total frames");
  // All managed frames boot as free 4 KiB pages. Push back-to-front so the
  // list pops low addresses first (deterministic allocation order).
  for (std::uint64_t frame = total_frames; frame-- > reserved_frames;) {
    PushFree(frame, PageSize::k4K);
  }
}

std::uint64_t PageAllocator::FrameOf(PagePtr ptr) const {
  ATMO_CHECK(ptr % kPageSize4K == 0, "page pointer not 4K aligned");
  std::uint64_t frame = ptr / kPageSize4K;
  ATMO_CHECK(frame < meta_.size(), "page pointer out of range");
  return frame;
}

PageAllocator::FreeList& PageAllocator::ListFor(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return free_4k_;
    case PageSize::k2M:
      return free_2m_;
    case PageSize::k1G:
      return free_1g_;
  }
  return free_4k_;
}

const PageAllocator::FreeList& PageAllocator::ListFor(PageSize size) const {
  return const_cast<PageAllocator*>(this)->ListFor(size);
}

void PageAllocator::PushFree(std::uint64_t frame, PageSize size) {
  dirty_.Mark(PtrOf(frame));
  FreeList& list = ListFor(size);
  PageMeta& meta = meta_[frame];
  meta.state = PageState::kFree;
  meta.size = size;
  meta.owner = kNullPtr;
  meta.map_count = 0;
  meta.merged_head = kNilFrame;
  meta.prev = kNilFrame;
  meta.next = list.head;
  if (list.head != kNilFrame) {
    meta_[list.head].prev = frame;
  }
  list.head = frame;
  ++list.count;
  NoteFreed(frame, size);
}

void PageAllocator::NoteFreed(std::uint64_t frame, PageSize size) {
  if (size == PageSize::k1G) {
    return;  // a whole free 1G page needs no coalescing
  }
  std::uint64_t region = frame / kFramesPer1G;
  if (size == PageSize::k4K) {
    std::uint64_t group = frame / kFramesPer2M;
    if (++free_in_2m_[group] == kFramesPer2M && !in_mergeable_2m_[group]) {
      in_mergeable_2m_[group] = 1;
      // averif-lint: allow(hot-path-alloc) — mergeable-group heap grows only when a 2M group first becomes fully free; vector capacity is retained
      mergeable_2m_.push_back(group);
      std::push_heap(mergeable_2m_.begin(), mergeable_2m_.end(), std::greater<>());
    }
    free_eq_1g_[region] += 1;
  } else {
    free_eq_1g_[region] += kFramesPer2M;
  }
  if (free_eq_1g_[region] == kFramesPer1G && !in_mergeable_1g_[region]) {
    in_mergeable_1g_[region] = 1;
    // averif-lint: allow(hot-path-alloc) — mergeable-region heap grows only when a 1G region first becomes fully free; vector capacity is retained
    mergeable_1g_.push_back(region);
    std::push_heap(mergeable_1g_.begin(), mergeable_1g_.end(), std::greater<>());
  }
}

void PageAllocator::NoteUnfreed(std::uint64_t frame, PageSize size) {
  if (size == PageSize::k1G) {
    return;
  }
  std::uint64_t region = frame / kFramesPer1G;
  if (size == PageSize::k4K) {
    std::uint64_t group = frame / kFramesPer2M;
    ATMO_CHECK(free_in_2m_[group] > 0, "2M group free counter underflow");
    --free_in_2m_[group];
    ATMO_CHECK(free_eq_1g_[region] >= 1, "1G region free counter underflow");
    free_eq_1g_[region] -= 1;
  } else {
    ATMO_CHECK(free_eq_1g_[region] >= kFramesPer2M, "1G region free counter underflow");
    free_eq_1g_[region] -= kFramesPer2M;
  }
}

void PageAllocator::UnlinkFree(std::uint64_t frame) {
  dirty_.Mark(PtrOf(frame));
  PageMeta& meta = meta_[frame];
  ATMO_CHECK(meta.state == PageState::kFree, "UnlinkFree on non-free page");
  FreeList& list = ListFor(meta.size);
  if (meta.prev != kNilFrame) {
    meta_[meta.prev].next = meta.next;
  } else {
    ATMO_CHECK(list.head == frame, "free-list head corruption");
    list.head = meta.next;
  }
  if (meta.next != kNilFrame) {
    meta_[meta.next].prev = meta.prev;
  }
  meta.prev = kNilFrame;
  meta.next = kNilFrame;
  ATMO_CHECK(list.count > 0, "free-list count underflow");
  --list.count;
  NoteUnfreed(frame, meta.size);
}

std::optional<std::uint64_t> PageAllocator::PopFree(PageSize size) {
  FreeList& list = ListFor(size);
  if (list.head == kNilFrame) {
    return std::nullopt;
  }
  std::uint64_t frame = list.head;
  UnlinkFree(frame);
  return frame;
}

std::optional<PageAlloc> PageAllocator::AllocFrom(PageSize size, CtnrPtr owner) {
  std::optional<std::uint64_t> frame = PopFree(size);
  if (!frame.has_value()) {
    return std::nullopt;
  }
  PageMeta& meta = meta_[*frame];
  meta.state = PageState::kAllocated;
  meta.size = size;
  meta.owner = owner;
  ATMO_OBS_INSTANT_ARG(obs::kCatAlloc, AllocEventName(size), "ptr", PtrOf(*frame));
  return PageAlloc{PtrOf(*frame), FramePerm::Mint(PtrOf(*frame), size)};
}

std::optional<PagePtr> PageAllocator::Coalesce2MIndexed() {
  while (!mergeable_2m_.empty()) {
    std::pop_heap(mergeable_2m_.begin(), mergeable_2m_.end(), std::greater<>());
    std::uint64_t group = mergeable_2m_.back();
    mergeable_2m_.pop_back();
    in_mergeable_2m_[group] = 0;
    if (free_in_2m_[group] != kFramesPer2M) {
      continue;  // stale: the group lost a frame since it was flagged
    }
    PagePtr base = PtrOf(group * kFramesPer2M);
    bool merged = TryMerge2M(base);
    ATMO_CHECK(merged, "fully free 2M group failed to coalesce");
    return base;
  }
  return std::nullopt;
}

std::optional<PagePtr> PageAllocator::Coalesce1GIndexed() {
  while (!mergeable_1g_.empty()) {
    std::pop_heap(mergeable_1g_.begin(), mergeable_1g_.end(), std::greater<>());
    std::uint64_t region = mergeable_1g_.back();
    mergeable_1g_.pop_back();
    in_mergeable_1g_[region] = 0;
    if (free_eq_1g_[region] != kFramesPer1G) {
      continue;  // stale
    }
    // Every frame in the region is a free 4K page or covered by a free 2M
    // unit, so each constituent group is either a free 2M unit already or
    // merges from 512 free 4K frames.
    std::uint64_t head = region * kFramesPer1G;
    for (std::uint64_t unit = 0; unit < kFramesPer1G; unit += kFramesPer2M) {
      const PageMeta& meta = meta_[head + unit];
      if (meta.state == PageState::kFree && meta.size == PageSize::k2M) {
        continue;
      }
      bool merged = TryMerge2M(PtrOf(head + unit));
      ATMO_CHECK(merged, "group of a fully free 1G region failed to coalesce");
    }
    PagePtr base = PtrOf(head);
    bool merged = TryMerge1G(base);
    ATMO_CHECK(merged, "fully free 1G region failed to coalesce");
    return base;
  }
  return std::nullopt;
}

std::optional<PagePtr> PageAllocator::TakeFree2MUnit() {
  if (free_2m_.head != kNilFrame) {
    return PtrOf(free_2m_.head);
  }
  if (std::optional<PagePtr> merged = Coalesce2MIndexed(); merged.has_value()) {
    return merged;
  }
  std::optional<PagePtr> big = free_1g_.head != kNilFrame
                                   ? std::optional<PagePtr>(PtrOf(free_1g_.head))
                                   : Coalesce1GIndexed();
  if (!big.has_value()) {
    return std::nullopt;
  }
  Split1G(*big);
  return PtrOf(free_2m_.head);
}

std::optional<PageAlloc> PageAllocator::AllocPage4K(CtnrPtr owner) {
  if (free_4k_.head == kNilFrame) {
    // Split path: rebuild the 4K list from one 2M unit (itself possibly
    // split out of a 1G unit) without scanning meta_.
    std::optional<PagePtr> unit = TakeFree2MUnit();
    if (!unit.has_value()) {
      return std::nullopt;
    }
    Split2M(*unit);
  }
  return AllocFrom(PageSize::k4K, owner);
}

std::optional<PageAlloc> PageAllocator::AllocPage2M(CtnrPtr owner) {
  if (!TakeFree2MUnit().has_value()) {
    return std::nullopt;
  }
  return AllocFrom(PageSize::k2M, owner);
}

std::optional<PageAlloc> PageAllocator::AllocPage1G(CtnrPtr owner) {
  if (free_1g_.head == kNilFrame && !Coalesce1GIndexed().has_value()) {
    return std::nullopt;
  }
  return AllocFrom(PageSize::k1G, owner);
}

std::optional<PageAlloc> PageAllocator::AllocPage(PageSize size, CtnrPtr owner) {
  switch (size) {
    case PageSize::k4K:
      return AllocPage4K(owner);
    case PageSize::k2M:
      return AllocPage2M(owner);
    case PageSize::k1G:
      return AllocPage1G(owner);
  }
  return std::nullopt;
}

void PageAllocator::FreePage(PagePtr ptr, FramePerm perm) {
  std::uint64_t frame = FrameOf(ptr);
  PageMeta& meta = meta_[frame];
  ATMO_CHECK(meta.state == PageState::kAllocated, "FreePage on page not in allocated state");
  ATMO_CHECK(perm.base() == ptr, "FreePage permission for a different page");
  ATMO_CHECK(perm.size() == meta.size, "FreePage permission of wrong size class");
  ATMO_OBS_INSTANT_ARG(obs::kCatAlloc, FreeEventName(meta.size), "ptr", ptr);
  PushFree(frame, meta.size);
  // `perm` is consumed here: the linear token returns to the allocator.
}

void PageAllocator::MarkMapped(PagePtr ptr) {
  PageMeta& meta = meta_[FrameOf(ptr)];
  ATMO_CHECK(meta.state == PageState::kAllocated, "MarkMapped on page not in allocated state");
  dirty_.Mark(ptr);
  meta.state = PageState::kMapped;
  meta.map_count = 1;
}

std::uint32_t PageAllocator::IncMapCount(PagePtr ptr) {
  PageMeta& meta = meta_[FrameOf(ptr)];
  ATMO_CHECK(meta.state == PageState::kMapped, "IncMapCount on unmapped page");
  dirty_.Mark(ptr);
  return ++meta.map_count;
}

std::uint32_t PageAllocator::DecMapCount(PagePtr ptr) {
  PageMeta& meta = meta_[FrameOf(ptr)];
  ATMO_CHECK(meta.state == PageState::kMapped, "DecMapCount on unmapped page");
  ATMO_CHECK(meta.map_count > 0, "map count underflow");
  dirty_.Mark(ptr);
  return --meta.map_count;
}

void PageAllocator::ReclaimUnmapped(PagePtr ptr, FramePerm perm) {
  std::uint64_t frame = FrameOf(ptr);
  PageMeta& meta = meta_[frame];
  ATMO_CHECK(meta.state == PageState::kMapped && meta.map_count == 0,
             "ReclaimUnmapped on page that is still mapped");
  ATMO_CHECK(perm.base() == ptr && perm.size() == meta.size,
             "ReclaimUnmapped permission mismatch");
  ATMO_OBS_INSTANT_ARG(obs::kCatAlloc, FreeEventName(meta.size), "ptr", ptr);
  PushFree(frame, meta.size);
}

std::uint32_t PageAllocator::MapCount(PagePtr ptr) const {
  return meta_[FrameOf(ptr)].map_count;
}

bool PageAllocator::TryMerge2M(PagePtr base) {
  std::uint64_t head = FrameOf(base);
  if (head % kFramesPer2M != 0 || head + kFramesPer2M > meta_.size()) {
    return false;
  }
  for (std::uint64_t i = 0; i < kFramesPer2M; ++i) {
    const PageMeta& meta = meta_[head + i];
    if (meta.state != PageState::kFree || meta.size != PageSize::k4K) {
      return false;
    }
  }
  // Constant-time removal of each constituent from the 4K free list via the
  // back-pointers in the metadata array.
  for (std::uint64_t i = 0; i < kFramesPer2M; ++i) {
    UnlinkFree(head + i);
  }
  for (std::uint64_t i = 1; i < kFramesPer2M; ++i) {
    PageMeta& meta = meta_[head + i];
    meta.state = PageState::kMerged;
    meta.merged_head = head;
  }
  PushFree(head, PageSize::k2M);
  return true;
}

bool PageAllocator::TryMerge1G(PagePtr base) {
  std::uint64_t head = FrameOf(base);
  if (head % kFramesPer1G != 0 || head + kFramesPer1G > meta_.size()) {
    return false;
  }
  for (std::uint64_t unit = 0; unit < kFramesPer1G; unit += kFramesPer2M) {
    const PageMeta& meta = meta_[head + unit];
    if (meta.state != PageState::kFree || meta.size != PageSize::k2M) {
      return false;
    }
  }
  for (std::uint64_t unit = 0; unit < kFramesPer1G; unit += kFramesPer2M) {
    UnlinkFree(head + unit);
  }
  for (std::uint64_t i = 1; i < kFramesPer1G; ++i) {
    PageMeta& meta = meta_[head + i];
    meta.state = PageState::kMerged;
    meta.merged_head = head;
  }
  PushFree(head, PageSize::k1G);
  return true;
}

std::optional<PagePtr> PageAllocator::Merge2MAnywhere() {
  // Scan the page array for an aligned run of 512 free 4K pages.
  for (std::uint64_t head = 0; head + kFramesPer2M <= meta_.size(); head += kFramesPer2M) {
    if (head < reserved_frames_) {
      continue;
    }
    if (TryMerge2M(PtrOf(head))) {
      return PtrOf(head);
    }
  }
  return std::nullopt;
}

std::optional<PagePtr> PageAllocator::Merge1GAnywhere() {
  for (std::uint64_t head = 0; head + kFramesPer1G <= meta_.size(); head += kFramesPer1G) {
    if (head < reserved_frames_) {
      continue;
    }
    // Opportunistically merge all constituent 2M units first.
    for (std::uint64_t unit = 0; unit < kFramesPer1G; unit += kFramesPer2M) {
      const PageMeta& meta = meta_[head + unit];
      if (meta.state == PageState::kFree && meta.size == PageSize::k4K) {
        TryMerge2M(PtrOf(head + unit));
      }
    }
    if (TryMerge1G(PtrOf(head))) {
      return PtrOf(head);
    }
  }
  return std::nullopt;
}

void PageAllocator::Split2M(PagePtr base) {
  std::uint64_t head = FrameOf(base);
  PageMeta& meta = meta_[head];
  ATMO_CHECK(meta.state == PageState::kFree && meta.size == PageSize::k2M,
             "Split2M on page that is not a free 2M page");
  UnlinkFree(head);
  for (std::uint64_t i = 0; i < kFramesPer2M; ++i) {
    PushFree(head + i, PageSize::k4K);
  }
}

void PageAllocator::Split1G(PagePtr base) {
  std::uint64_t head = FrameOf(base);
  PageMeta& meta = meta_[head];
  ATMO_CHECK(meta.state == PageState::kFree && meta.size == PageSize::k1G,
             "Split1G on page that is not a free 1G page");
  UnlinkFree(head);
  for (std::uint64_t unit = 0; unit < kFramesPer1G; unit += kFramesPer2M) {
    PushFree(head + unit, PageSize::k2M);
    for (std::uint64_t i = 1; i < kFramesPer2M; ++i) {
      PageMeta& tail = meta_[head + unit + i];
      tail.state = PageState::kMerged;
      tail.merged_head = head + unit;
    }
  }
}

PageState PageAllocator::StateOf(PagePtr ptr) const { return meta_[FrameOf(ptr)].state; }

PageSize PageAllocator::SizeClassOf(PagePtr ptr) const { return meta_[FrameOf(ptr)].size; }

CtnrPtr PageAllocator::OwnerOf(PagePtr ptr) const { return meta_[FrameOf(ptr)].owner; }

void PageAllocator::SetOwner(PagePtr ptr, CtnrPtr owner) {
  PageMeta& meta = meta_[FrameOf(ptr)];
  ATMO_CHECK(meta.state == PageState::kAllocated || meta.state == PageState::kMapped,
             "SetOwner on page that is not allocated or mapped");
  dirty_.Mark(ptr);
  meta.owner = owner;
}

std::uint64_t PageAllocator::FreeCount(PageSize size) const { return ListFor(size).count; }

SpecSet<PagePtr> PageAllocator::FreePages(PageSize size) const {
  SpecSet<PagePtr> out;
  const FreeList& list = ListFor(size);
  for (std::uint64_t cur = list.head; cur != kNilFrame; cur = meta_[cur].next) {
    out.add(PtrOf(cur));
  }
  return out;
}

SpecSet<PagePtr> PageAllocator::AllocatedPages() const {
  SpecSet<PagePtr> out;
  for (std::uint64_t frame = 0; frame < meta_.size(); ++frame) {
    if (meta_[frame].state == PageState::kAllocated) {
      out.add(PtrOf(frame));
    }
  }
  return out;
}

SpecSet<PagePtr> PageAllocator::MappedPages() const {
  SpecSet<PagePtr> out;
  for (std::uint64_t frame = 0; frame < meta_.size(); ++frame) {
    if (meta_[frame].state == PageState::kMapped) {
      out.add(PtrOf(frame));
    }
  }
  return out;
}

SpecSet<PagePtr> PageAllocator::InUseFrames() const {
  SpecSet<PagePtr> out;
  for (std::uint64_t frame = 0; frame < meta_.size(); ++frame) {
    PageState state = meta_[frame].state;
    if (state == PageState::kAllocated || state == PageState::kMapped ||
        state == PageState::kMerged) {
      out.add(PtrOf(frame));
    }
  }
  return out;
}

bool PageAllocator::CheckFreeListLinks() const {
  // Free lists: every node is a free page of the list's size class and the
  // doubly-linked structure is consistent. O(list nodes).
  for (PageSize size : {PageSize::k4K, PageSize::k2M, PageSize::k1G}) {
    const FreeList& list = ListFor(size);
    std::uint64_t count = 0;
    std::uint64_t prev = kNilFrame;
    for (std::uint64_t cur = list.head; cur != kNilFrame; cur = meta_[cur].next) {
      if (cur >= meta_.size()) {
        return false;
      }
      const PageMeta& meta = meta_[cur];
      if (meta.state != PageState::kFree || meta.size != size || meta.prev != prev) {
        return false;
      }
      prev = cur;
      if (++count > meta_.size()) {
        return false;  // cycle
      }
    }
    if (count != list.count) {
      return false;
    }
  }
  return true;
}

bool PageAllocator::CheckCoalescingHeaps() const {
  // Heap membership must agree with the flag vectors: flagged <=> exactly
  // one heap entry, and every entry indexes a real group/region.
  std::uint64_t flagged_2m = 0;
  for (std::uint8_t flag : in_mergeable_2m_) {
    flagged_2m += flag;
  }
  if (mergeable_2m_.size() != flagged_2m) {
    return false;
  }
  for (std::uint64_t group : mergeable_2m_) {
    if (group >= in_mergeable_2m_.size() || !in_mergeable_2m_[group]) {
      return false;
    }
  }
  std::uint64_t flagged_1g = 0;
  for (std::uint8_t flag : in_mergeable_1g_) {
    flagged_1g += flag;
  }
  if (mergeable_1g_.size() != flagged_1g) {
    return false;
  }
  for (std::uint64_t region : mergeable_1g_) {
    if (region >= in_mergeable_1g_.size() || !in_mergeable_1g_[region]) {
      return false;
    }
  }
  // size == flagged-count plus every entry flagged implies entries are
  // distinct, so flagged <=> exactly one entry.
  return true;
}

bool PageAllocator::Wf() const {
  if (!CheckFreeListLinks() || !CheckCoalescingHeaps()) {
    return false;
  }

  // Single span-skipping pass over meta_: per-frame state/alignment checks,
  // tail checks for every multi-frame unit (allocated, mapped or free), and
  // recomputation of the coalescing counters from ground truth.
  std::vector<std::uint32_t> in_2m(free_in_2m_.size(), 0);
  std::vector<std::uint64_t> eq_1g(free_eq_1g_.size(), 0);
  std::uint64_t frame = 0;
  while (frame < meta_.size()) {
    const PageMeta& meta = meta_[frame];
    switch (meta.state) {
      case PageState::kUnavailable:
        if (frame >= reserved_frames_) {
          return false;
        }
        ++frame;
        continue;
      case PageState::kFree:
      case PageState::kAllocated:
      case PageState::kMapped: {
        std::uint64_t span = PageFrames4K(meta.size);
        // Unit heads must be aligned to their size class and fit the array.
        if (frame % span != 0 || frame + span > meta_.size()) {
          return false;
        }
        // Superpage tails must be merged into this unit (also catches
        // overlapping units).
        for (std::uint64_t i = 1; i < span; ++i) {
          const PageMeta& tail = meta_[frame + i];
          if (tail.state != PageState::kMerged || tail.merged_head != frame) {
            return false;
          }
        }
        if (meta.state == PageState::kMapped && meta.map_count == 0) {
          // Transiently legal only inside munmap; as a quiescent state a
          // mapped page must have at least one mapping... except the window
          // between DecMapCount and ReclaimUnmapped, which never spans a
          // Wf() check in the kernel. Treat as ill-formed here.
          return false;
        }
        if (meta.state == PageState::kFree) {
          if (meta.size == PageSize::k4K) {
            ++in_2m[frame / kFramesPer2M];
            eq_1g[frame / kFramesPer1G] += 1;
          } else if (meta.size == PageSize::k2M) {
            eq_1g[frame / kFramesPer1G] += kFramesPer2M;
          }
        }
        frame += span;
        continue;
      }
      case PageState::kMerged: {
        // A merged frame reached at top level was not covered by a preceding
        // head's span, so its back-pointer cannot be consistent; apply the
        // same head checks the reference implementation uses.
        std::uint64_t head = meta.merged_head;
        if (head == kNilFrame || head >= meta_.size()) {
          return false;
        }
        const PageMeta& head_meta = meta_[head];
        if (head_meta.state == PageState::kMerged || head_meta.state == PageState::kUnavailable) {
          return false;
        }
        std::uint64_t span = PageFrames4K(head_meta.size);
        if (head_meta.size == PageSize::k4K || frame <= head || frame >= head + span) {
          return false;
        }
        ++frame;
        continue;
      }
    }
    return false;  // corrupted state byte
  }

  // Counters must equal the ground truth, and every full group/region must
  // be flagged (the heaps may hold stale extras; never a missing candidate).
  for (std::uint64_t group = 0; group < free_in_2m_.size(); ++group) {
    if (free_in_2m_[group] != in_2m[group]) {
      return false;
    }
    if (in_2m[group] == kFramesPer2M && !in_mergeable_2m_[group]) {
      return false;
    }
  }
  for (std::uint64_t region = 0; region < free_eq_1g_.size(); ++region) {
    if (free_eq_1g_[region] != eq_1g[region]) {
      return false;
    }
    if (eq_1g[region] == kFramesPer1G && !in_mergeable_1g_[region]) {
      return false;
    }
  }
  return true;
}

bool PageAllocator::WfReference() const {
  // 1. Free lists (shared with Wf: identical obligation).
  if (!CheckFreeListLinks()) {
    return false;
  }

  // 2. Per-frame state checks.
  for (std::uint64_t frame = 0; frame < meta_.size(); ++frame) {
    const PageMeta& meta = meta_[frame];
    switch (meta.state) {
      case PageState::kUnavailable:
        if (frame >= reserved_frames_) {
          return false;
        }
        break;
      case PageState::kFree: {
        // Unit heads must be aligned to their size class.
        if (frame % PageFrames4K(meta.size) != 0) {
          return false;
        }
        if (frame + PageFrames4K(meta.size) > meta_.size()) {
          return false;
        }
        break;
      }
      case PageState::kAllocated:
      case PageState::kMapped: {
        if (frame % PageFrames4K(meta.size) != 0) {
          return false;
        }
        if (frame + PageFrames4K(meta.size) > meta_.size()) {
          return false;
        }
        // Superpage tails must be merged into this unit (also catches
        // overlapping units).
        for (std::uint64_t i = 1; i < PageFrames4K(meta.size); ++i) {
          const PageMeta& tail = meta_[frame + i];
          if (tail.state != PageState::kMerged || tail.merged_head != frame) {
            return false;
          }
        }
        if (meta.state == PageState::kMapped && meta.map_count == 0) {
          return false;
        }
        break;
      }
      case PageState::kMerged: {
        std::uint64_t head = meta.merged_head;
        if (head == kNilFrame || head >= meta_.size()) {
          return false;
        }
        const PageMeta& head_meta = meta_[head];
        if (head_meta.state == PageState::kMerged || head_meta.state == PageState::kUnavailable) {
          return false;
        }
        // This frame must lie within the head's unit span.
        std::uint64_t span = PageFrames4K(head_meta.size);
        if (head_meta.size == PageSize::k4K || frame <= head || frame >= head + span) {
          return false;
        }
        break;
      }
    }
  }

  // 3. Every free-list member of size S covers tails that are merged to it.
  for (PageSize size : {PageSize::k2M, PageSize::k1G}) {
    const FreeList& list = ListFor(size);
    for (std::uint64_t cur = list.head; cur != kNilFrame; cur = meta_[cur].next) {
      std::uint64_t span = PageFrames4K(size);
      for (std::uint64_t i = 1; i < span; ++i) {
        const PageMeta& tail = meta_[cur + i];
        if (tail.state != PageState::kMerged || tail.merged_head != cur) {
          return false;
        }
      }
    }
  }

  // 4. Coalescing index vs ground truth (same obligation as Wf, recomputed
  //    with an independent full pass).
  std::vector<std::uint32_t> in_2m(free_in_2m_.size(), 0);
  std::vector<std::uint64_t> eq_1g(free_eq_1g_.size(), 0);
  for (std::uint64_t frame = 0; frame < meta_.size(); ++frame) {
    const PageMeta& meta = meta_[frame];
    if (meta.state != PageState::kFree) {
      continue;
    }
    if (meta.size == PageSize::k4K) {
      ++in_2m[frame / kFramesPer2M];
      eq_1g[frame / kFramesPer1G] += 1;
    } else if (meta.size == PageSize::k2M) {
      eq_1g[frame / kFramesPer1G] += kFramesPer2M;
    }
  }
  for (std::uint64_t group = 0; group < free_in_2m_.size(); ++group) {
    if (free_in_2m_[group] != in_2m[group]) {
      return false;
    }
    if (in_2m[group] == kFramesPer2M && !in_mergeable_2m_[group]) {
      return false;
    }
  }
  for (std::uint64_t region = 0; region < free_eq_1g_.size(); ++region) {
    if (free_eq_1g_[region] != eq_1g[region]) {
      return false;
    }
    if (eq_1g[region] == kFramesPer1G && !in_mergeable_1g_[region]) {
      return false;
    }
  }
  return CheckCoalescingHeaps();
}

PageAllocator PageAllocator::CloneForVerification() const {
  PageAllocator out(1, 1);  // minimal shell, immediately overwritten
  CloneForVerificationInto(&out);
  return out;
}

void PageAllocator::CloneForVerificationInto(PageAllocator* out) const {
  out->reserved_frames_ = reserved_frames_;
  // Vector copy-assign reuses the destination's capacity: after the first
  // fill a pooled clone performs zero allocations here.
  out->meta_ = meta_;
  out->free_4k_ = free_4k_;
  out->free_2m_ = free_2m_;
  out->free_1g_ = free_1g_;
  out->free_in_2m_ = free_in_2m_;
  out->free_eq_1g_ = free_eq_1g_;
  out->in_mergeable_2m_ = in_mergeable_2m_;
  out->in_mergeable_1g_ = in_mergeable_1g_;
  out->mergeable_2m_ = mergeable_2m_;
  out->mergeable_1g_ = mergeable_1g_;
  out->dirty_.Reset();  // clones start with an empty mutation log
}

}  // namespace atmo
