// Typed kernel-object placement over 4 KiB pages.
//
// Kernel objects (containers, processes, threads, endpoints, ...) each
// occupy one freshly allocated 4 KiB page. PlaceObject exchanges the page's
// frame permission for a typed PointsTo permission — the executable analog
// of initializing an object through a raw pointer and obtaining its tracked
// permission. UnplaceObject reverses the exchange on deallocation: the typed
// permission is consumed, the object destroyed, and the frame permission
// reappears so the page can be freed.
//
// Type safety in the paper's sense (each allocated region is used by exactly
// one data structure of one type) follows from the token exchange: a page
// has either its FramePerm or exactly one typed PointsTo outstanding.

#ifndef ATMO_SRC_PMEM_OBJECT_ALLOC_H_
#define ATMO_SRC_PMEM_OBJECT_ALLOC_H_

#include <utility>

#include "src/hw/phys_mem.h"
#include "src/vstd/check.h"
#include "src/vstd/points_to.h"

namespace atmo {

template <typename T>
struct PlacedObject {
  PPtr<T> ptr;
  PointsTo<T> perm;
};

// Consumes the frame permission of a 4 KiB page and mints the typed
// permission holding `value`.
template <typename T>
PlacedObject<T> PlaceObject(FramePerm frame, T value) {
  ATMO_CHECK(frame.size() == PageSize::k4K, "kernel objects are placed in 4K pages");
  Ptr addr = frame.base();
  // `frame` is consumed here; the typed permission takes over the page.
  return PlacedObject<T>{PPtr<T>(addr), PointsTo<T>::Init(addr, std::move(value))};
}

// Consumes the typed permission (destroying the object) and returns the
// page's frame permission so it can be freed.
template <typename T>
FramePerm UnplaceObject(PointsTo<T> perm) {
  Ptr addr = perm.addr();
  if (perm.is_init()) {
    (void)perm.Take();  // destroy the object value
  }
  return FramePerm::Mint(addr, PageSize::k4K);
}

}  // namespace atmo

#endif  // ATMO_SRC_PMEM_OBJECT_ALLOC_H_
