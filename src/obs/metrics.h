// atmo::obs — metrics registry: named counters, gauges and log-bucketed
// latency histograms.
//
// This is the aggregate side of the observability layer (the flight
// recorder is the per-event side). Callers resolve a metric by name once —
// resolution takes a map lookup — and then update it through the returned
// reference, which is a plain increment/store. A registry is owned by one
// harness or bench and is not thread-safe: parallel sweeps keep per-shard
// stats and merge, exactly like CheckStats (whose counters the registry
// absorbs for export via verif's ExportCheckStats).
//
// Histograms bucket by bit width: bucket 0 holds the value 0 and bucket
// b >= 1 holds [2^(b-1), 2^b - 1]. Percentiles are extracted by walking the
// cumulative counts and reporting the matched bucket's inclusive upper
// bound — a deterministic, integer-only answer that never under-reports
// (the true percentile is <= the reported bound, within one bucket).

#ifndef ATMO_SRC_OBS_METRICS_H_
#define ATMO_SRC_OBS_METRICS_H_

#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace atmo::obs {

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bucket 0 (value 0) + one per bit width
  // The last bucket spans [2^63, 2^64) — half the u64 range. Any sample
  // landing there is treated as overflow: Percentile reports the observed
  // max instead of the bucket's formal upper bound (~0 would over-report by
  // orders of magnitude), and the exporter surfaces the count separately
  // under "overflow" rather than as a bounded bucket.
  static constexpr int kOverflowBucket = kBuckets - 1;

  void Observe(std::uint64_t value);

  // Bucket index for a value: 0 for 0, else the value's bit width.
  static int BucketOf(std::uint64_t value) { return std::bit_width(value); }
  // Inclusive bounds of bucket b: [2^(b-1), 2^b - 1]; bucket 0 is [0, 0].
  static std::uint64_t BucketLowerBound(int b);
  static std::uint64_t BucketUpperBound(int b);

  // Upper bound of the bucket containing the p-quantile (p in [0, 1]); 0
  // when empty. p = 0 reports the first non-empty bucket's bound. When the
  // quantile lands in kOverflowBucket the observed max is reported instead.
  std::uint64_t Percentile(double p) const;

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ > 0 ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double Mean() const { return count_ > 0 ? static_cast<double>(sum_) / count_ : 0.0; }
  std::uint64_t bucket_count(int b) const { return buckets_[b]; }
  // Samples too large for any bounded bucket (value >= 2^63).
  std::uint64_t overflow_count() const { return buckets_[kOverflowBucket]; }

 private:
  std::uint64_t buckets_[kBuckets] = {};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

// Name -> metric maps. std::map keeps snapshot iteration sorted by name, so
// exported JSON is deterministic regardless of registration order.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const { return histograms_; }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_METRICS_H_
