// Replacement global allocation functions with thread-local counting.
// See alloc_hook.h for the contract. The full replacement set (plain,
// nothrow, array, aligned, sized-delete) is provided so every deallocation
// pairs with a counted allocation regardless of which overload the compiler
// selects — a partial set would silently skew the per-step numbers.

#include "src/obs/alloc_hook.h"

#include <cstdlib>
#include <new>

namespace atmo::obs {
namespace {

struct ThreadCounters {
  std::uint64_t allocs;
  std::uint64_t frees;
  std::uint64_t bytes;
};

// Constant-initialized: safe to touch from allocations that run during
// static initialization, before any dynamic TLS constructors.
thread_local ThreadCounters g_counters{0, 0, 0};

}  // namespace

std::uint64_t HeapAllocCount() { return g_counters.allocs; }
std::uint64_t HeapFreeCount() { return g_counters.frees; }
std::uint64_t HeapAllocBytes() { return g_counters.bytes; }

#if defined(ATMO_OBS_DISABLED)
bool HeapCountingActive() { return false; }
#else
bool HeapCountingActive() { return true; }
#endif

namespace alloc_hook_internal {

void* CountedAlloc(std::size_t bytes) {
  g_counters.allocs += 1;
  g_counters.bytes += bytes;
  return std::malloc(bytes != 0 ? bytes : 1);
}

void* CountedAlignedAlloc(std::size_t bytes, std::size_t align) {
  g_counters.allocs += 1;
  g_counters.bytes += bytes;
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align, bytes != 0 ? bytes : align) != 0) {
    return nullptr;
  }
  return p;
}

void CountedFree(void* p) {
  if (p != nullptr) {
    g_counters.frees += 1;
  }
  std::free(p);
}

}  // namespace alloc_hook_internal
}  // namespace atmo::obs

#if !defined(ATMO_OBS_DISABLED)

namespace hook = atmo::obs::alloc_hook_internal;

void* operator new(std::size_t bytes) {
  void* p = hook::CountedAlloc(bytes);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t bytes, const std::nothrow_t&) noexcept {
  return hook::CountedAlloc(bytes);
}

void* operator new[](std::size_t bytes) {
  void* p = hook::CountedAlloc(bytes);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t bytes, const std::nothrow_t&) noexcept {
  return hook::CountedAlloc(bytes);
}

void* operator new(std::size_t bytes, std::align_val_t align) {
  void* p = hook::CountedAlignedAlloc(bytes, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t bytes, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return hook::CountedAlignedAlloc(bytes, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t bytes, std::align_val_t align) {
  void* p = hook::CountedAlignedAlloc(bytes, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t bytes, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return hook::CountedAlignedAlloc(bytes, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { hook::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { hook::CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  hook::CountedFree(p);
}
void operator delete[](void* p) noexcept { hook::CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { hook::CountedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  hook::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  hook::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  hook::CountedFree(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  hook::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  hook::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  hook::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  hook::CountedFree(p);
}

#endif  // !ATMO_OBS_DISABLED
