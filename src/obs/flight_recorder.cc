#include "src/obs/flight_recorder.h"

#include <atomic>
#include <cstdlib>

#include "src/hw/cycles.h"

namespace atmo::obs {

namespace {

thread_local FlightRecorder* t_recorder = nullptr;
std::atomic<bool> g_enabled{false};

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity, ClockMode mode, std::uint32_t tid)
    : ring_(capacity > 0 ? capacity : 1), mode_(mode), tid_(tid) {}

std::uint64_t FlightRecorder::Now() {
  if (mode_ == ClockMode::kVirtual) {
    return virtual_now_++;
  }
  return ReadCycles();
}

void FlightRecorder::Record(TraceEvent event) {
  if (cat_filter_ != nullptr && event.cat != cat_filter_) {
    return;
  }
  event.ts = Now();
  event.tid = tid_;
  ring_[recorded_ % ring_.size()] = event;
  ++recorded_;
}

std::size_t FlightRecorder::size() const {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_) : ring_.size();
}

std::uint64_t FlightRecorder::dropped() const {
  return recorded_ > ring_.size() ? recorded_ - ring_.size() : 0;
}

std::vector<TraceEvent> FlightRecorder::Snapshot() const { return Tail(ring_.size()); }

std::vector<TraceEvent> FlightRecorder::Tail(std::size_t n) const {
  std::size_t live = size();
  if (n > live) {
    n = live;
  }
  std::vector<TraceEvent> out;
  out.reserve(n);
  // Oldest of the requested window first. `recorded_ - n` is the index of
  // the first event to return; the ring slot is its value mod capacity.
  for (std::uint64_t i = recorded_ - n; i < recorded_; ++i) {
    out.push_back(ring_[i % ring_.size()]);
  }
  return out;
}

void FlightRecorder::Clear() {
  recorded_ = 0;
  virtual_now_ = 0;
}

FlightRecorder* CurrentRecorder() { return t_recorder; }

ScopedThreadRecorder::ScopedThreadRecorder(FlightRecorder* recorder)
    : previous_(t_recorder) {
  t_recorder = recorder;
}

ScopedThreadRecorder::~ScopedThreadRecorder() { t_recorder = previous_; }

void SetEnabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool EnabledFromEnv() {
  const char* value = std::getenv("ATMO_TRACE");
  if (value != nullptr && value[0] != '\0') {
    SetEnabled(true);
  }
  return Enabled();
}

#if !defined(ATMO_OBS_DISABLED)
ObsSpan::ObsSpan(const char* cat, const char* name, const char* arg_name,
                 std::uint64_t arg)
    : recorder_(CurrentRecorder()), cat_(cat), name_(name) {
  if (recorder_ != nullptr) {
    recorder_->Record(TraceEvent{.name = name_, .cat = cat_, .ph = 'B',
                                 .arg_name = arg_name, .arg = arg});
  }
}

ObsSpan::~ObsSpan() {
  if (recorder_ != nullptr) {
    recorder_->Record(TraceEvent{.name = name_, .cat = cat_, .ph = 'E',
                                 .sarg_name = result_name_, .sarg = result_});
  }
}
#endif  // ATMO_OBS_DISABLED

}  // namespace atmo::obs
