#include "src/obs/sampler.h"

#if !defined(ATMO_OBS_DISABLED)

#include <atomic>
#include <cstdlib>

namespace atmo::obs {

namespace {

// ~0 marks "not yet configured": the first reader parses ATMO_TRACE_SAMPLE.
constexpr std::uint64_t kPeriodUnset = ~0ull;
constexpr std::uint64_t kDefaultPeriod = 64;

std::atomic<std::uint64_t> g_period{kPeriodUnset};
std::atomic<std::uint64_t> g_next_id{1};
std::atomic<std::uint64_t> g_sampled{0};
std::atomic<std::uint64_t> g_dropped{0};

// Requests until this thread's next token. Starts at 0 = sample immediately.
thread_local std::uint64_t t_until_token = 0;

std::uint64_t LoadPeriod() {
  std::uint64_t p = g_period.load(std::memory_order_relaxed);
  if (p != kPeriodUnset) {
    return p;
  }
  std::uint64_t parsed = kDefaultPeriod;
  if (const char* env = std::getenv("ATMO_TRACE_SAMPLE")) {
    parsed = std::strtoull(env, nullptr, 10);
  }
  // Losing the race just means another thread stored the same env value.
  g_period.compare_exchange_strong(p, parsed, std::memory_order_relaxed);
  return g_period.load(std::memory_order_relaxed);
}

}  // namespace

void SetTraceSamplePeriod(std::uint64_t n) {
  g_period.store(n, std::memory_order_relaxed);
}

std::uint64_t TraceSamplePeriod() { return LoadPeriod(); }

std::uint64_t NextTraceId() {
  std::uint64_t period = LoadPeriod();
  if (period == 0) {
    return 0;
  }
  if (t_until_token == 0) {
    t_until_token = period - 1;
    g_sampled.fetch_add(1, std::memory_order_relaxed);
    return g_next_id.fetch_add(1, std::memory_order_relaxed);
  }
  --t_until_token;
  g_dropped.fetch_add(1, std::memory_order_relaxed);
  return 0;
}

std::uint64_t SamplerSampledCount() { return g_sampled.load(std::memory_order_relaxed); }

std::uint64_t SamplerDroppedCount() { return g_dropped.load(std::memory_order_relaxed); }

void ResetSamplerForTest() {
  g_period.store(kPeriodUnset, std::memory_order_relaxed);
  g_next_id.store(1, std::memory_order_relaxed);
  g_sampled.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
  t_until_token = 0;
}

}  // namespace atmo::obs

#endif  // !ATMO_OBS_DISABLED
