// atmo::obs — exporters: Chrome trace-event JSON and metrics snapshots.
//
// ChromeTraceJson emits the JSON-object form of the Chrome trace-event
// format ({"traceEvents": [...], ...}), which loads directly in Perfetto
// (ui.perfetto.dev) and chrome://tracing. Span events use 'B'/'E' pairs,
// instants 'i', counters 'C'; the recorder's raw timestamps (virtual step
// counts in sweep mode, cycles in bench mode) are exported unscaled — the
// unit is abstract, the *shape* of the timeline is the payload.
//
// MetricsJson serializes a MetricsRegistry: counters and gauges flat,
// histograms with count/sum/min/max/mean, p50/p95/p99 and the non-empty
// log2 buckets.

#ifndef ATMO_SRC_OBS_EXPORTERS_H_
#define ATMO_SRC_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "src/obs/json_writer.h"
#include "src/obs/metrics.h"
#include "src/obs/trace_event.h"

namespace atmo::obs {

// Appends one event as a Chrome trace-event object to an open array. Flow
// phases ('s' start / 't' step / 'f' end) additionally get their integer
// argument exported as the top-level flow "id", with "bp":"e" on step/end so
// the arrow binds to the enclosing event — the Chrome flow-event convention.
void AppendTraceEvent(JsonWriter* w, const TraceEvent& event);

// Full trace document for `events`. `process_name` labels pid 0 via a
// process_name metadata event (shows up as the track group in Perfetto).
std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::string& process_name = "atmosphere");

// Synthetic tid base for the per-request tracks StitchedRequestTraceJson
// appends below the real recorder lanes.
inline constexpr std::uint32_t kRequestTrackBase = 1000;

// Causal-tracing export: everything ChromeTraceJson emits, plus — for every
// request chain (kCatRequest events sharing a nonzero "trace_id" argument) —
//   * flow events ('s'/'t'/'f' with id = trace id) at each stage stamp, so
//     Perfetto draws arrows across the recorder lanes the stages ran on, and
//   * a per-request track (tid = kRequestTrackBase + k, thread_name
//     "req <id>") holding a copy of the chain's stage instants, so one
//     request's life is readable top-to-bottom without chasing arrows.
// Chains are ordered by first appearance; events within a chain by ts.
std::string StitchedRequestTraceJson(const std::vector<TraceEvent>& events,
                                     const std::string& process_name = "atmosphere");

// Metrics snapshot document: {"counters": {...}, "gauges": {...},
// "histograms": {name: {count, sum, min, max, mean, p50, p95, p99,
// buckets: [{le, count}...]}}}.
std::string MetricsJson(const MetricsRegistry& registry);

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_EXPORTERS_H_
