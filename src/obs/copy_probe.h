// Payload-copy counting — the measurement side of the zero-copy IPC grant
// path (DESIGN.md §15).
//
// The "bytes copied per request" number gated in CI has to come from the
// copy sites themselves, not from code inspection: the claim is that the
// splice path (NIC -> IPC grant -> app -> TX) moves *no payload bytes*, so
// every place that stages packet payload through memcpy routes through
// CopyPayload() and counts into a thread-local counter, exactly the
// AllocProbe idiom (src/obs/alloc_hook.h). Thread-local means no
// synchronization anywhere near the packet path.
//
// Deliberately NOT counted: frame *header* assembly (Ethernet/IP/UDP
// headers are built in place in the TX frame either way) and the traffic
// generator's frame construction (the client is the load, not the server
// under test).

#ifndef ATMO_SRC_OBS_COPY_PROBE_H_
#define ATMO_SRC_OBS_COPY_PROBE_H_

#include <cstddef>
#include <cstdint>

namespace atmo::obs {

// Total payload bytes copied on this thread since thread start. Monotonic;
// sample deltas around a region of interest.
std::uint64_t PayloadBytesCopied();

// Number of CopyPayload calls on this thread since thread start.
std::uint64_t PayloadCopyCount();

// True when the counters are compiled in (i.e. not an ATMO_OBS_DISABLED
// build). Lets tests skip instead of asserting on zero, mirroring
// HeapCountingActive() in src/obs/alloc_hook.h.
bool PayloadCountingActive();

// Counted memcpy: every payload staging copy in the packet path goes
// through here. Returns `dst` like std::memcpy.
void* CopyPayload(void* dst, const void* src, std::size_t n);

// Convenience delta probe:
//   CopyProbe probe;
//   ... region ...
//   uint64_t b = probe.bytes();
class CopyProbe {
 public:
  CopyProbe() : start_bytes_(PayloadBytesCopied()), start_copies_(PayloadCopyCount()) {}
  std::uint64_t bytes() const { return PayloadBytesCopied() - start_bytes_; }
  std::uint64_t copies() const { return PayloadCopyCount() - start_copies_; }

 private:
  std::uint64_t start_bytes_;
  std::uint64_t start_copies_;
};

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_COPY_PROBE_H_
