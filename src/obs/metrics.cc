#include "src/obs/metrics.h"

namespace atmo::obs {

void Histogram::Observe(std::uint64_t value) {
  ++buckets_[BucketOf(value)];
  ++count_;
  // Saturating sum: a histogram that absorbed astronomically many samples
  // must keep its percentiles usable rather than wrap.
  sum_ = sum_ > ~0ull - value ? ~0ull : sum_ + value;
  if (value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
}

std::uint64_t Histogram::BucketLowerBound(int b) {
  return b <= 0 ? 0 : 1ull << (b - 1);
}

std::uint64_t Histogram::BucketUpperBound(int b) {
  if (b <= 0) {
    return 0;
  }
  if (b >= 64) {
    return ~0ull;
  }
  return (1ull << b) - 1;
}

std::uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (p < 0.0) {
    p = 0.0;
  }
  if (p > 1.0) {
    p = 1.0;
  }
  // Rank of the requested quantile, 1-based; p = 0 maps to rank 1.
  std::uint64_t rank = static_cast<std::uint64_t>(p * static_cast<double>(count_));
  if (rank == 0) {
    rank = 1;
  }
  std::uint64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[b];
    if (cumulative >= rank) {
      // Overflow samples have no meaningful bucket bound (it would be ~0,
      // over-reporting by orders of magnitude); the observed max is the
      // tightest honest answer for them.
      return b == kOverflowBucket ? max_ : BucketUpperBound(b);
    }
  }
  return max_;
}

}  // namespace atmo::obs
