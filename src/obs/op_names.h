// atmo::obs — syscall-op trace labels.
//
// Every SysOp enumerator maps to a static trace-event name here; the spans
// around Kernel::Step and RefinementChecker::Step use these labels so a
// Perfetto timeline groups by operation. averif_lint's `trace-op-name` rule
// statically checks this table stays total when SysOp grows — a new syscall
// without a label would otherwise trace as "sys.unknown" and silently
// vanish from per-op timelines.
//
// The labels are distinct from SysOpName() (the human/spec-failure names):
// the "sys." prefix is the trace namespace and keeps per-op span names
// greppable in a mixed trace.

#ifndef ATMO_SRC_OBS_OP_NAMES_H_
#define ATMO_SRC_OBS_OP_NAMES_H_

#include "src/core/syscall.h"

namespace atmo::obs {

constexpr const char* TraceOpLabel(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return "sys.yield";
    case SysOp::kMmap:
      return "sys.mmap";
    case SysOp::kMunmap:
      return "sys.munmap";
    case SysOp::kNewContainer:
      return "sys.new_container";
    case SysOp::kNewProcess:
      return "sys.new_process";
    case SysOp::kNewThread:
      return "sys.new_thread";
    case SysOp::kNewEndpoint:
      return "sys.new_endpoint";
    case SysOp::kUnbindEndpoint:
      return "sys.unbind_endpoint";
    case SysOp::kSend:
      return "sys.send";
    case SysOp::kRecv:
      return "sys.recv";
    case SysOp::kCall:
      return "sys.call";
    case SysOp::kReply:
      return "sys.reply";
    case SysOp::kExit:
      return "sys.exit";
    case SysOp::kKillProcess:
      return "sys.kill_process";
    case SysOp::kKillContainer:
      return "sys.kill_container";
    case SysOp::kIommuCreateDomain:
      return "sys.iommu_create_domain";
    case SysOp::kIommuAttachDevice:
      return "sys.iommu_attach_device";
    case SysOp::kIommuDetachDevice:
      return "sys.iommu_detach_device";
    case SysOp::kIommuMapDma:
      return "sys.iommu_map_dma";
    case SysOp::kIommuUnmapDma:
      return "sys.iommu_unmap_dma";
    case SysOp::kRingSetup:
      return "sys.ring_setup";
    case SysOp::kRingSubmit:
      return "sys.ring_submit";
    case SysOp::kRingEnter:
      return "sys.ring_enter";
    case SysOp::kGrantReturn:
      return "sys.grant_return";
    case SysOp::kObsQuery:
      return "sys.obs_query";
  }
  return "sys.unknown";
}

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_OP_NAMES_H_
