// Heap-allocation counting hook — the measurement side of the spec-rep
// arenas (DESIGN.md §14).
//
// The "allocations per checked step" number gated in CI has to come from the
// allocator itself, not from arena bookkeeping: the claim is that the checked
// hot path performs no *global heap* allocations, so the probe replaces
// `::operator new`/`::operator delete` (alloc_hook.cc) and counts every call
// into thread-local counters. Thread-local means no synchronization on the
// fastest path in the process and no TSan-visible state; the replacements
// route through std::malloc/std::free, which keeps ASan/UBSan/TSan able to
// interpose underneath (the hook is sanitizer-transparent).
//
// The hook is passive and always-on in any binary that links a TU from
// alloc_hook.cc; counters cost one TLS increment per malloc. Readers sample
// deltas: `HeapAllocCount()` before and after a region, subtract. Building
// with -DATMO_OBS_DISABLED compiles the replacements out entirely (stock
// allocator, counters stay zero).

#ifndef ATMO_SRC_OBS_ALLOC_HOOK_H_
#define ATMO_SRC_OBS_ALLOC_HOOK_H_

#include <cstdint>

namespace atmo::obs {

// Number of successful `::operator new` (all flavors) calls on this thread
// since thread start. Monotonic; sample deltas around a region of interest.
std::uint64_t HeapAllocCount();

// Number of `::operator delete` calls on this thread since thread start.
std::uint64_t HeapFreeCount();

// Total bytes requested from `::operator new` on this thread. Array and
// aligned flavors included; per-allocation malloc overhead is not.
std::uint64_t HeapAllocBytes();

// True when the counting replacements are linked into this binary (i.e. not
// an ATMO_OBS_DISABLED build). Lets tests skip instead of asserting on zero.
bool HeapCountingActive();

// Convenience delta probe:
//   AllocProbe probe;
//   ... region ...
//   uint64_t n = probe.allocs();
class AllocProbe {
 public:
  AllocProbe() : start_allocs_(HeapAllocCount()), start_bytes_(HeapAllocBytes()) {}
  std::uint64_t allocs() const { return HeapAllocCount() - start_allocs_; }
  std::uint64_t bytes() const { return HeapAllocBytes() - start_bytes_; }

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_ALLOC_HOOK_H_
