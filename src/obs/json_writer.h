// atmo::obs — minimal streaming JSON writer.
//
// One shared writer replaces the hand-rolled fprintf/snprintf JSON emission
// that had been copy-pasted across the bench binaries. It is a plain
// builder: the caller dictates key order (so the pre-existing BENCH_*.json
// schemas are reproduced byte-for-byte), commas and escaping are handled
// here, and doubles take an explicit printf format because the bench
// schemas pin their precision ("%.1f" steps/s, "%.4f" wall seconds, ...).

#ifndef ATMO_SRC_OBS_JSON_WRITER_H_
#define ATMO_SRC_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace atmo::obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key inside the current object; the next value call attaches to it.
  JsonWriter& Key(const char* key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Uint(std::uint64_t value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Double(double value, const char* fmt = "%.6g");
  JsonWriter& Null();

  // Key/value shorthands.
  JsonWriter& KV(const char* key, const std::string& value) { return Key(key).String(value); }
  JsonWriter& KV(const char* key, const char* value) {
    return Key(key).String(std::string(value));
  }
  JsonWriter& KV(const char* key, std::uint64_t value) { return Key(key).Uint(value); }
  JsonWriter& KV(const char* key, std::uint32_t value) {
    return Key(key).Uint(static_cast<std::uint64_t>(value));
  }
  JsonWriter& KV(const char* key, bool value) { return Key(key).Bool(value); }
  JsonWriter& KV(const char* key, double value, const char* fmt = "%.6g") {
    return Key(key).Double(value, fmt);
  }

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& in);

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: whether the next element needs a comma.
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

// Writes `content` to `path`; returns false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_JSON_WRITER_H_
