// atmo::obs — structured trace events for the flight recorder.
//
// A TraceEvent is a fixed-size POD so the per-thread ring buffer can record
// one with a handful of stores and no allocation. All string fields must
// point at string literals (or other static-duration strings): events
// outlive the scopes that record them, and the exporters read the pointers
// long after the instrumented call returned.
//
// The `ph` field follows the Chrome trace-event phase convention so the
// exporter is a straight transcription: 'B'/'E' bracket a span, 'i' is an
// instant event, 'C' a counter sample.

#ifndef ATMO_SRC_OBS_TRACE_EVENT_H_
#define ATMO_SRC_OBS_TRACE_EVENT_H_

#include <cstdint>

namespace atmo::obs {

// Event categories, exported as the Chrome `cat` field. Static strings so
// the recorder stays allocation-free.
inline constexpr const char* kCatSyscall = "syscall";
inline constexpr const char* kCatCheck = "check";
inline constexpr const char* kCatAlloc = "alloc";
inline constexpr const char* kCatSweep = "sweep";
// Causal request tracing: stage-stamped instants ("stage.rx", "stage.app",
// "stage.tx", ...) carrying the sampled trace id as their integer argument.
// The stitched exporter groups these by trace id into per-request tracks.
inline constexpr const char* kCatRequest = "request";

struct TraceEvent {
  const char* name = nullptr;  // static string; never null for a live event
  const char* cat = nullptr;   // one of the kCat* constants (static string)
  char ph = 'i';               // 'B' begin span, 'E' end span, 'i' instant, 'C' counter
  std::uint32_t tid = 0;       // recorder-assigned lane (shard index in sweeps)
  std::uint64_t ts = 0;        // virtual step count or raw cycles (see ClockMode)
  // Optional integer argument (e.g. a physical address or a seed).
  const char* arg_name = nullptr;
  std::uint64_t arg = 0;
  // Optional string argument (e.g. the syscall error name). Static string.
  const char* sarg_name = nullptr;
  const char* sarg = nullptr;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

// Timestamp source of a recorder.
//   kVirtual — a per-recorder monotone event counter. Bit-deterministic for
//              a deterministic event sequence, so sweep shards traced in
//              virtual mode produce identical traces at any worker count.
//   kReal    — raw cycle counts (src/hw/cycles.h). For bench/interactive
//              tracing where wall ordering across threads matters.
enum class ClockMode : std::uint8_t { kVirtual, kReal };

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_TRACE_EVENT_H_
