// Request sampler for causal tracing (DESIGN.md §17): hands a fresh
// process-unique nonzero 64-bit trace id to one request in N and counts the
// rest as dropped. The period is a runtime knob (ATMO_TRACE_SAMPLE, default
// 64; 0 turns sampling off entirely), so always-on builds can dial tracing
// cost without recompiling — the CI `obs_overhead` floor holds the enabled
// configuration to within a few percent of the disabled one.
//
// Token-bucket shape: each thread owns a bucket refilled with one token
// every `period` requests. The off-sample fast path is one thread-local
// decrement plus one relaxed atomic add (the dropped counter is exact —
// kObsQuery snapshots it, and tests assert it under TSan).
//
// Under ATMO_OBS_DISABLED the entire surface compiles to zeros, matching
// the alloc_hook/copy_probe shells.

#ifndef ATMO_SRC_OBS_SAMPLER_H_
#define ATMO_SRC_OBS_SAMPLER_H_

#include <cstdint>

namespace atmo::obs {

#if defined(ATMO_OBS_DISABLED)

inline void SetTraceSamplePeriod(std::uint64_t) {}
inline std::uint64_t TraceSamplePeriod() { return 0; }
inline std::uint64_t NextTraceId() { return 0; }
inline std::uint64_t SamplerSampledCount() { return 0; }
inline std::uint64_t SamplerDroppedCount() { return 0; }
inline void ResetSamplerForTest() {}

#else

// Sets the sampling period: one request in `n` is traced. 0 disables
// sampling (NextTraceId() always returns 0 and nothing counts as dropped).
// When never called, the first NextTraceId() reads ATMO_TRACE_SAMPLE.
void SetTraceSamplePeriod(std::uint64_t n);
std::uint64_t TraceSamplePeriod();

// Returns a process-unique nonzero trace id when this request is sampled,
// else 0. The first request on each thread is always sampled (the bucket
// starts with a token), so short tests and cold threads still trace.
std::uint64_t NextTraceId();

// Process-wide totals across all threads.
std::uint64_t SamplerSampledCount();
std::uint64_t SamplerDroppedCount();

// Zeroes the counters, re-arms the calling thread's bucket and re-reads
// ATMO_TRACE_SAMPLE on next use.
void ResetSamplerForTest();

#endif  // ATMO_OBS_DISABLED

}  // namespace atmo::obs

#endif  // ATMO_SRC_OBS_SAMPLER_H_
