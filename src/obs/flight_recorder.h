// atmo::obs — lock-free per-thread flight recorder.
//
// A FlightRecorder is a fixed-capacity ring buffer of TraceEvents owned by
// exactly one thread. Instrumented code never names a recorder: it records
// into the thread's *current* recorder, installed with ScopedThreadRecorder
// (the sweep harness installs one per shard run; benches install one for
// the main thread). With no recorder installed every instrumentation site
// costs one thread-local load and a branch — that is the "disabled" cost.
//
// Whether to install a recorder at all is the caller's decision; the
// process-wide enable flag (SetEnabled / EnabledFromEnv, driven by
// ATMO_TRACE=1) is the conventional switch the harnesses consult. Forensic
// replay bypasses it and installs a recorder unconditionally, which is how
// every sweep failure ships with its own trace.
//
// Compile-time kill switch: building with -DATMO_OBS_DISABLED turns the
// ATMO_OBS_* macros into nothing (zero code at the instrumentation sites).

#ifndef ATMO_SRC_OBS_FLIGHT_RECORDER_H_
#define ATMO_SRC_OBS_FLIGHT_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/trace_event.h"

namespace atmo::obs {

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity,
                          ClockMode mode = ClockMode::kReal, std::uint32_t tid = 0);

  // Stamps ts/tid and stores the event, overwriting the oldest once full.
  void Record(TraceEvent event);

  // Restricts recording to events of exactly one category (pointer match
  // against the kCat* constant; nullptr = record everything, the default).
  // Lets an always-on bench recorder keep only the sampled request-stage
  // stamps while the checker's per-step spans skip the ring store — the
  // filtered-out case costs one load and one compare.
  void SetCategoryFilter(const char* cat) { cat_filter_ = cat; }
  const char* category_filter() const { return cat_filter_; }

  // Events in recording order, oldest first (at most `capacity` of them).
  std::vector<TraceEvent> Snapshot() const;
  // The most recent `n` events, oldest first.
  std::vector<TraceEvent> Tail(std::size_t n) const;

  void Clear();

  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const;
  // Total events ever recorded; size() < recorded() means the ring wrapped.
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const;
  ClockMode mode() const { return mode_; }
  std::uint32_t tid() const { return tid_; }

 private:
  std::uint64_t Now();

  std::vector<TraceEvent> ring_;
  const char* cat_filter_ = nullptr;
  std::uint64_t recorded_ = 0;
  std::uint64_t virtual_now_ = 0;
  ClockMode mode_;
  std::uint32_t tid_;
};

// --- Thread-local recorder plumbing -----------------------------------------

// The recorder instrumented code records into, or nullptr. One TLS load.
FlightRecorder* CurrentRecorder();

// Installs `recorder` as the calling thread's current recorder for the
// guard's lifetime; restores the previous one (nesting is fine).
class ScopedThreadRecorder {
 public:
  explicit ScopedThreadRecorder(FlightRecorder* recorder);
  ~ScopedThreadRecorder();

  ScopedThreadRecorder(const ScopedThreadRecorder&) = delete;
  ScopedThreadRecorder& operator=(const ScopedThreadRecorder&) = delete;

 private:
  FlightRecorder* previous_;
};

// --- Process-wide enable flag -----------------------------------------------

// The conventional runtime switch: harnesses and benches install recorders
// only when enabled. Reads are a single relaxed atomic load.
void SetEnabled(bool enabled);
bool Enabled();
// Enables tracing when ATMO_TRACE is set to anything non-empty; returns the
// resulting flag. Call once near a main()/harness entry point.
bool EnabledFromEnv();

// --- RAII span --------------------------------------------------------------

// Records 'B' on construction and 'E' on destruction — including during
// exception unwind, so a span around a failing checked syscall still closes
// and the forensic tail shows the enter/exit pair. No-op when the thread
// has no recorder at construction time. Under -DATMO_OBS_DISABLED the class
// is an empty shell, so direct uses (not just the macros) compile away too.
#if defined(ATMO_OBS_DISABLED)
class ObsSpan {
 public:
  ObsSpan(const char*, const char*) {}
  ObsSpan(const char*, const char*, const char*, std::uint64_t) {}
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;
  void SetResult(const char*, const char*) {}
};
#else
class ObsSpan {
 public:
  ObsSpan(const char* cat, const char* name) : ObsSpan(cat, name, nullptr, 0) {}
  ObsSpan(const char* cat, const char* name, const char* arg_name, std::uint64_t arg);
  ~ObsSpan();

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  // Attaches a string argument (static string!) to the closing 'E' event —
  // e.g. the syscall's error name, known only after the call ran.
  void SetResult(const char* sarg_name, const char* sarg) {
    result_name_ = sarg_name;
    result_ = sarg;
  }

 private:
  FlightRecorder* recorder_;  // captured once; null = disabled span
  const char* cat_;
  const char* name_;
  const char* result_name_ = nullptr;
  const char* result_ = nullptr;
};
#endif  // ATMO_OBS_DISABLED

namespace detail {
inline void Instant(const char* cat, const char* name, const char* arg_name,
                    std::uint64_t arg) {
  if (FlightRecorder* r = CurrentRecorder()) {
    r->Record(TraceEvent{.name = name, .cat = cat, .ph = 'i', .arg_name = arg_name,
                         .arg = arg});
  }
}
inline void Counter(const char* cat, const char* name, std::uint64_t value) {
  if (FlightRecorder* r = CurrentRecorder()) {
    r->Record(TraceEvent{.name = name, .cat = cat, .ph = 'C', .arg_name = "value",
                         .arg = value});
  }
}
}  // namespace detail

}  // namespace atmo::obs

// --- Instrumentation macros -------------------------------------------------
//
// The macro layer exists so -DATMO_OBS_DISABLED can compile every site away.

#if defined(ATMO_OBS_DISABLED)

#define ATMO_OBS_SPAN(cat, name)
#define ATMO_OBS_SPAN_ARG(cat, name, arg_name, arg)
#define ATMO_OBS_INSTANT(cat, name)
#define ATMO_OBS_INSTANT_ARG(cat, name, arg_name, arg)
#define ATMO_OBS_COUNTER(cat, name, value)

#else

#define ATMO_OBS_CONCAT_INNER(a, b) a##b
#define ATMO_OBS_CONCAT(a, b) ATMO_OBS_CONCAT_INNER(a, b)

// Span covering the rest of the enclosing scope.
#define ATMO_OBS_SPAN(cat, name) \
  ::atmo::obs::ObsSpan ATMO_OBS_CONCAT(atmo_obs_span_, __LINE__)((cat), (name))
#define ATMO_OBS_SPAN_ARG(cat, name, arg_name, arg)                            \
  ::atmo::obs::ObsSpan ATMO_OBS_CONCAT(atmo_obs_span_, __LINE__)((cat), (name), \
                                                                 (arg_name), (arg))
#define ATMO_OBS_INSTANT(cat, name) ::atmo::obs::detail::Instant((cat), (name), nullptr, 0)
#define ATMO_OBS_INSTANT_ARG(cat, name, arg_name, arg) \
  ::atmo::obs::detail::Instant((cat), (name), (arg_name), (arg))
#define ATMO_OBS_COUNTER(cat, name, value) \
  ::atmo::obs::detail::Counter((cat), (name), (value))

#endif  // ATMO_OBS_DISABLED

#endif  // ATMO_SRC_OBS_FLIGHT_RECORDER_H_
