#include "src/obs/json_writer.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace atmo::obs {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const char* key) {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Uint(std::uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Double(double value, const char* fmt) {
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

std::string JsonWriter::Escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace atmo::obs
