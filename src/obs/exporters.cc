#include "src/obs/exporters.h"

namespace atmo::obs {

void AppendTraceEvent(JsonWriter* w, const TraceEvent& event) {
  w->BeginObject();
  w->KV("name", event.name != nullptr ? event.name : "?");
  w->KV("cat", event.cat != nullptr ? event.cat : "atmo");
  char ph[2] = {event.ph, '\0'};
  w->KV("ph", ph);
  w->KV("ts", event.ts);
  w->KV("pid", std::uint64_t{0});
  w->KV("tid", std::uint64_t{event.tid});
  bool has_arg = event.arg_name != nullptr;
  bool has_sarg = event.sarg_name != nullptr && event.sarg != nullptr;
  if (has_arg || has_sarg) {
    w->Key("args").BeginObject();
    if (has_arg) {
      w->KV(event.arg_name, event.arg);
    }
    if (has_sarg) {
      w->KV(event.sarg_name, event.sarg);
    }
    w->EndObject();
  }
  w->EndObject();
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::string& process_name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Metadata event naming the process track.
  w.BeginObject();
  w.KV("name", "process_name");
  w.KV("ph", "M");
  w.KV("pid", std::uint64_t{0});
  w.Key("args").BeginObject().KV("name", process_name).EndObject();
  w.EndObject();
  for (const TraceEvent& event : events) {
    AppendTraceEvent(&w, event);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

void AppendHistogram(JsonWriter* w, const Histogram& h) {
  w->BeginObject();
  w->KV("count", h.count());
  w->KV("sum", h.sum());
  w->KV("min", h.min());
  w->KV("max", h.max());
  w->KV("mean", h.Mean(), "%.3f");
  w->KV("p50", h.Percentile(0.50));
  w->KV("p95", h.Percentile(0.95));
  w->KV("p99", h.Percentile(0.99));
  w->Key("buckets").BeginArray();
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    if (h.bucket_count(b) == 0) {
      continue;
    }
    w->BeginObject();
    w->KV("le", Histogram::BucketUpperBound(b));
    w->KV("count", h.bucket_count(b));
    w->EndObject();
  }
  w->EndArray();
  w->EndObject();
}

}  // namespace

std::string MetricsJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : registry.counters()) {
    w.KV(name.c_str(), counter.value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : registry.gauges()) {
    w.KV(name.c_str(), gauge.value(), "%.6g");
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : registry.histograms()) {
    w.Key(name.c_str());
    AppendHistogram(&w, histogram);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace atmo::obs
