#include "src/obs/exporters.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <utility>

namespace atmo::obs {

void AppendTraceEvent(JsonWriter* w, const TraceEvent& event) {
  w->BeginObject();
  w->KV("name", event.name != nullptr ? event.name : "?");
  w->KV("cat", event.cat != nullptr ? event.cat : "atmo");
  char ph[2] = {event.ph, '\0'};
  w->KV("ph", ph);
  w->KV("ts", event.ts);
  w->KV("pid", std::uint64_t{0});
  w->KV("tid", std::uint64_t{event.tid});
  if (event.ph == 's' || event.ph == 't' || event.ph == 'f') {
    // Flow events carry the chain id at top level; step/end bind to the
    // enclosing slice ("bp":"e") so viewers draw the arrow at this ts.
    w->KV("id", event.arg);
    if (event.ph != 's') {
      w->KV("bp", "e");
    }
  }
  bool has_arg = event.arg_name != nullptr;
  bool has_sarg = event.sarg_name != nullptr && event.sarg != nullptr;
  if (has_arg || has_sarg) {
    w->Key("args").BeginObject();
    if (has_arg) {
      w->KV(event.arg_name, event.arg);
    }
    if (has_sarg) {
      w->KV(event.sarg_name, event.sarg);
    }
    w->EndObject();
  }
  w->EndObject();
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events,
                            const std::string& process_name) {
  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  // Metadata event naming the process track.
  w.BeginObject();
  w.KV("name", "process_name");
  w.KV("ph", "M");
  w.KV("pid", std::uint64_t{0});
  w.Key("args").BeginObject().KV("name", process_name).EndObject();
  w.EndObject();
  for (const TraceEvent& event : events) {
    AppendTraceEvent(&w, event);
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string StitchedRequestTraceJson(const std::vector<TraceEvent>& events,
                                     const std::string& process_name) {
  // Group the request-stage stamps by trace id, chains ordered by first
  // appearance, events within a chain by recording order (they come from
  // per-thread rings, so a chain's cross-thread order is by ts below).
  std::vector<std::pair<std::uint64_t, std::vector<TraceEvent>>> chains;
  std::unordered_map<std::uint64_t, std::size_t> chain_index;
  for (const TraceEvent& event : events) {
    // Only id-stamped stage instants chain; per-batch stamps like
    // stage.ring_drain carry a count, not an id, and stay un-stitched.
    if (event.cat != kCatRequest || event.ph != 'i' || event.arg == 0 ||
        event.arg_name == nullptr || std::strcmp(event.arg_name, "trace_id") != 0) {
      continue;
    }
    auto [it, fresh] = chain_index.try_emplace(event.arg, chains.size());
    if (fresh) {
      chains.emplace_back(event.arg, std::vector<TraceEvent>{});
    }
    chains[it->second].second.push_back(event);
  }
  for (auto& chain_pair : chains) {
    std::stable_sort(chain_pair.second.begin(), chain_pair.second.end(),
                     [](const TraceEvent& a, const TraceEvent& b) { return a.ts < b.ts; });
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();
  w.BeginObject();
  w.KV("name", "process_name");
  w.KV("ph", "M");
  w.KV("pid", std::uint64_t{0});
  w.Key("args").BeginObject().KV("name", process_name).EndObject();
  w.EndObject();
  for (const TraceEvent& event : events) {
    AppendTraceEvent(&w, event);
  }
  for (std::size_t k = 0; k < chains.size(); ++k) {
    const auto& [id, chain] = chains[k];
    std::uint32_t track = kRequestTrackBase + static_cast<std::uint32_t>(k);
    // Name the synthetic per-request track.
    w.BeginObject();
    w.KV("name", "thread_name");
    w.KV("ph", "M");
    w.KV("pid", std::uint64_t{0});
    w.KV("tid", std::uint64_t{track});
    w.Key("args").BeginObject().KV("name", "req " + std::to_string(id)).EndObject();
    w.EndObject();
    for (std::size_t i = 0; i < chain.size(); ++i) {
      // Flow arrow segment on the lane the stage actually ran on.
      TraceEvent flow = chain[i];
      flow.name = "request";
      flow.ph = i == 0 ? 's' : (i + 1 == chain.size() ? 'f' : 't');
      AppendTraceEvent(&w, flow);
      // Copy of the stage stamp on the per-request track.
      TraceEvent copy = chain[i];
      copy.tid = track;
      AppendTraceEvent(&w, copy);
    }
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

namespace {

void AppendHistogram(JsonWriter* w, const Histogram& h) {
  w->BeginObject();
  w->KV("count", h.count());
  w->KV("sum", h.sum());
  w->KV("min", h.min());
  w->KV("max", h.max());
  w->KV("mean", h.Mean(), "%.3f");
  w->KV("p50", h.Percentile(0.50));
  w->KV("p95", h.Percentile(0.95));
  w->KV("p99", h.Percentile(0.99));
  w->Key("buckets").BeginArray();
  // The overflow bucket has no honest "le" bound; it is surfaced as its own
  // key below instead of masquerading as a bounded bucket.
  for (int b = 0; b < Histogram::kOverflowBucket; ++b) {
    if (h.bucket_count(b) == 0) {
      continue;
    }
    w->BeginObject();
    w->KV("le", Histogram::BucketUpperBound(b));
    w->KV("count", h.bucket_count(b));
    w->EndObject();
  }
  w->EndArray();
  w->KV("overflow", h.overflow_count());
  w->EndObject();
}

}  // namespace

std::string MetricsJson(const MetricsRegistry& registry) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, counter] : registry.counters()) {
    w.KV(name.c_str(), counter.value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : registry.gauges()) {
    w.KV(name.c_str(), gauge.value(), "%.6g");
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : registry.histograms()) {
    w.Key(name.c_str());
    AppendHistogram(&w, histogram);
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace atmo::obs
