#include "src/obs/copy_probe.h"

#include <cstring>

namespace atmo::obs {

namespace {

thread_local std::uint64_t g_payload_bytes = 0;
thread_local std::uint64_t g_payload_copies = 0;

}  // namespace

std::uint64_t PayloadBytesCopied() { return g_payload_bytes; }

std::uint64_t PayloadCopyCount() { return g_payload_copies; }

void* CopyPayload(void* dst, const void* src, std::size_t n) {
  g_payload_bytes += n;
  ++g_payload_copies;
  return std::memcpy(dst, src, n);
}

}  // namespace atmo::obs
