#include "src/obs/copy_probe.h"

#include <cstring>

namespace atmo::obs {

#if defined(ATMO_OBS_DISABLED)

// Shell build: CopyPayload still moves the bytes (it is a functional memcpy,
// not just a probe), but the counters compile out and read zero — the same
// contract as the alloc hook's disabled build (src/obs/alloc_hook.cc).

std::uint64_t PayloadBytesCopied() { return 0; }

std::uint64_t PayloadCopyCount() { return 0; }

bool PayloadCountingActive() { return false; }

void* CopyPayload(void* dst, const void* src, std::size_t n) {
  return std::memcpy(dst, src, n);
}

#else  // !ATMO_OBS_DISABLED

namespace {

thread_local std::uint64_t g_payload_bytes = 0;
thread_local std::uint64_t g_payload_copies = 0;

}  // namespace

std::uint64_t PayloadBytesCopied() { return g_payload_bytes; }

std::uint64_t PayloadCopyCount() { return g_payload_copies; }

bool PayloadCountingActive() { return true; }

void* CopyPayload(void* dst, const void* src, std::size_t n) {
  g_payload_bytes += n;
  ++g_payload_copies;
  return std::memcpy(dst, src, n);
}

#endif  // ATMO_OBS_DISABLED

}  // namespace atmo::obs
