#include "src/core/kernel.h"

#include <algorithm>
#include <set>
#include <vector>

#include "src/obs/flight_recorder.h"
#include "src/obs/op_names.h"
#include "src/obs/sampler.h"
#include "src/pagetable/refinement.h"
#include "src/vstd/check.h"
#include "src/vstd/thread_annotations.h"

namespace atmo {

const char* SysOpName(SysOp op) {
  switch (op) {
    case SysOp::kYield:
      return "yield";
    case SysOp::kMmap:
      return "mmap";
    case SysOp::kMunmap:
      return "munmap";
    case SysOp::kNewContainer:
      return "new_container";
    case SysOp::kNewProcess:
      return "new_process";
    case SysOp::kNewThread:
      return "new_thread";
    case SysOp::kNewEndpoint:
      return "new_endpoint";
    case SysOp::kUnbindEndpoint:
      return "unbind_endpoint";
    case SysOp::kSend:
      return "send";
    case SysOp::kRecv:
      return "recv";
    case SysOp::kCall:
      return "call";
    case SysOp::kReply:
      return "reply";
    case SysOp::kExit:
      return "exit";
    case SysOp::kKillProcess:
      return "kill_process";
    case SysOp::kKillContainer:
      return "kill_container";
    case SysOp::kIommuCreateDomain:
      return "iommu_create_domain";
    case SysOp::kIommuAttachDevice:
      return "iommu_attach_device";
    case SysOp::kIommuDetachDevice:
      return "iommu_detach_device";
    case SysOp::kIommuMapDma:
      return "iommu_map_dma";
    case SysOp::kIommuUnmapDma:
      return "iommu_unmap_dma";
    case SysOp::kRingSetup:
      return "ring_setup";
    case SysOp::kRingSubmit:
      return "ring_submit";
    case SysOp::kRingEnter:
      return "ring_enter";
    case SysOp::kGrantReturn:
      return "grant_return";
    case SysOp::kObsQuery:
      return "obs_query";
  }
  return "?";
}

const char* SysErrorName(SysError error) {
  switch (error) {
    case SysError::kOk:
      return "ok";
    case SysError::kBlocked:
      return "blocked";
    case SysError::kNoMemory:
      return "no-memory";
    case SysError::kQuotaExceeded:
      return "quota-exceeded";
    case SysError::kCapacity:
      return "capacity";
    case SysError::kInvalid:
      return "invalid";
    case SysError::kDenied:
      return "denied";
    case SysError::kWouldFault:
      return "would-fault";
  }
  return "?";
}

namespace {

SysError FromProcError(ProcError error) {
  switch (error) {
    case ProcError::kOk:
      return SysError::kOk;
    case ProcError::kNoMemory:
      return SysError::kNoMemory;
    case ProcError::kQuotaExceeded:
      return SysError::kQuotaExceeded;
    case ProcError::kCapacity:
      return SysError::kCapacity;
    case ProcError::kInvalid:
      return SysError::kInvalid;
  }
  return SysError::kInvalid;
}

SyscallRet Err(SysError error) { return SyscallRet{error, 0}; }
SyscallRet Ok(std::uint64_t value = 0) { return SyscallRet{SysError::kOk, value}; }

}  // namespace

// ---------------------------------------------------------------------------
// Boot
// ---------------------------------------------------------------------------

std::optional<Kernel> Kernel::Boot(const BootConfig& config) {
  Kernel k;
  k.mem_ = std::make_unique<PhysMem>(config.frames);
  k.mmu_ = Mmu(k.mem_.get());
  k.alloc_ = PageAllocator(config.frames, config.reserved_frames);
  k.vm_ = VmManager(k.mem_.get());
  k.iommu_ = IommuManager(k.mem_.get());

  std::uint64_t root_quota = config.frames - config.reserved_frames;
  std::optional<ProcessManager> pm = ProcessManager::Boot(&k.alloc_, root_quota);
  if (!pm.has_value()) {
    return std::nullopt;
  }
  k.pm_ = std::move(*pm);
  return k;
}

PmResult<CtnrPtr> Kernel::BootCreateContainer(CtnrPtr parent, std::uint64_t quota,
                                              std::uint64_t cpu_mask) {
  return pm_.NewContainer(&alloc_, parent, quota, cpu_mask);
}

PmResult<ProcPtr> Kernel::BootCreateProcess(CtnrPtr ctnr) {
  PmResult<ProcPtr> proc = pm_.NewProcess(&alloc_, ctnr, kNullPtr);
  if (!proc.ok()) {
    return proc;
  }
  if (!pm_.ChargePages(ctnr, 1)) {
    pm_.RemoveProcess(&alloc_, proc.value);
    return PmResult<ProcPtr>::Err(ProcError::kQuotaExceeded);
  }
  if (!vm_.CreateAddressSpace(&alloc_, proc.value, ctnr)) {
    pm_.UnchargePages(ctnr, 1);
    pm_.RemoveProcess(&alloc_, proc.value);
    return PmResult<ProcPtr>::Err(ProcError::kNoMemory);
  }
  return proc;
}

PmResult<ThrdPtr> Kernel::BootCreateThread(ProcPtr proc) {
  return pm_.NewThread(&alloc_, proc);
}

// ---------------------------------------------------------------------------
// Dispatch / Step
// ---------------------------------------------------------------------------

void Kernel::Dispatch(ThrdPtr t) {
  ATMO_CHECK(pm_.ThreadExists(t), "Dispatch of unknown thread");
  if (pm_.current() == t) {
    return;
  }
  ATMO_CHECK(pm_.GetThread(t).state == ThreadState::kRunnable,
             "Dispatch of a thread that is neither current nor runnable");
  if (pm_.current() != kNullPtr) {
    pm_.PreemptCurrent();
  }
  pm_.DispatchSpecific(t);
}

SyscallRet Kernel::Step(ThrdPtr t, const Syscall& call) {
  // Syscall enter/exit span: the span's RAII 'E' event fires even when a
  // proof obligation inside throws, so a forensic trace always brackets the
  // failing syscall. RefinementChecker::Step (which calls Dispatch/Exec
  // itself) records the equivalent span on the checked path.
  obs::ObsSpan span(obs::kCatSyscall, obs::TraceOpLabel(call.op));
  Dispatch(t);
  SyscallRet ret = Exec(t, call);
  span.SetResult("error", SysErrorName(ret.error));
  return ret;
}

SyscallRet Kernel::Exec(ThrdPtr t, const Syscall& call) {
  ATMO_CHECK(pm_.current() == t, "Exec caller is not the current thread");
  switch (call.op) {
    case SysOp::kYield:
      return SysYield();
    case SysOp::kMmap:
      return SysMmap(t, call);
    case SysOp::kMunmap:
      return SysMunmap(t, call);
    case SysOp::kNewContainer:
      return SysNewContainer(t, call);
    case SysOp::kNewProcess:
      return SysNewProcess(t);
    case SysOp::kNewThread:
      return SysNewThread(t, call);
    case SysOp::kNewEndpoint:
      return SysNewEndpoint(t, call);
    case SysOp::kUnbindEndpoint:
      return SysUnbindEndpoint(t, call);
    case SysOp::kSend:
      return SysSend(t, call);
    case SysOp::kRecv:
      return SysRecv(t, call);
    case SysOp::kCall:
      return SysCall(t, call);
    case SysOp::kReply:
      return SysReply(t, call);
    case SysOp::kExit:
      return SysExit(t);
    case SysOp::kKillProcess:
      return SysKillProcess(t, call);
    case SysOp::kKillContainer:
      return SysKillContainer(t, call);
    case SysOp::kIommuCreateDomain:
      return SysIommuCreateDomain(t);
    case SysOp::kIommuAttachDevice:
      return SysIommuAttachDevice(t, call);
    case SysOp::kIommuDetachDevice:
      return SysIommuDetachDevice(t, call);
    case SysOp::kIommuMapDma:
      return SysIommuMapDma(t, call);
    case SysOp::kIommuUnmapDma:
      return SysIommuUnmapDma(t, call);
    case SysOp::kRingSetup:
      return SysRingSetup(t, call);
    case SysOp::kRingSubmit:
      return SysRingSubmit(t, call);
    case SysOp::kRingEnter:
      return ExecBatch(t, call);
    case SysOp::kGrantReturn:
      return SysGrantReturn(t, call);
    case SysOp::kObsQuery:
      return SysObsQuery(t, call);
  }
  return Err(SysError::kInvalid);
}

std::optional<IpcPayload> Kernel::TakeInbound(ThrdPtr t) {
  if (!pm_.ThreadExists(t)) {
    return std::nullopt;
  }
  Thread& thread = pm_.MutableThread(t);
  if (!thread.has_inbound) {
    return std::nullopt;
  }
  thread.has_inbound = false;
  return thread.ipc_buf;
}

bool Kernel::HasInbound(ThrdPtr t) const {
  return pm_.ThreadExists(t) && pm_.GetThread(t).has_inbound;
}

// ---------------------------------------------------------------------------
// Simple syscalls
// ---------------------------------------------------------------------------

SyscallRet Kernel::SysYield() {
  pm_.Yield();
  return Ok();
}

SyscallRet Kernel::SysMmap(ThrdPtr t, const Syscall& call) {
  const Thread& thread = pm_.GetThread(t);
  ProcPtr proc = thread.owning_proc;
  CtnrPtr ctnr = thread.owning_ctnr;
  const VaRange& range = call.va_range;

  if (range.count < 1 || range.count > kMaxMmapCount) {
    return Err(SysError::kInvalid);
  }
  const PageTable& table = vm_.TableOf(proc);
  for (std::uint64_t i = 0; i < range.count; ++i) {
    if (table.CanMap(range.At(i), range.size) != MapError::kOk) {
      return Err(SysError::kInvalid);
    }
  }

  // Exact cost: data frames plus fresh table nodes (deduplicated across the
  // batch), charged up front so the loop below cannot fail. Single-page
  // calls (the hot path) skip the dedup set entirely.
  std::uint64_t fresh_nodes = 0;
  if (range.count == 1) {
    fresh_nodes = table.FreshNodesFor(range.base, range.size, nullptr);
  } else {
    std::set<std::uint64_t> virtual_nodes;
    for (std::uint64_t i = 0; i < range.count; ++i) {
      fresh_nodes += table.FreshNodesFor(range.At(i), range.size, &virtual_nodes);
    }
  }
  std::uint64_t data_frames = range.count * PageFrames4K(range.size);
  if (!pm_.ChargePages(ctnr, data_frames + fresh_nodes)) {
    return Err(SysError::kQuotaExceeded);
  }

  std::vector<PageAlloc> pages;
  // averif-lint: allow(hot-path-alloc) — mmap staging vector is per-call scratch on a map-management op, not the ring fast path; freed on return and bounded by the dynamic AllocProbe gate
  pages.reserve(range.count);
  for (std::uint64_t i = 0; i < range.count; ++i) {
    std::optional<PageAlloc> page = alloc_.AllocPage(range.size, ctnr);
    if (!page.has_value()) {
      for (PageAlloc& rollback : pages) {
        alloc_.FreePage(rollback.ptr, std::move(rollback.perm));
      }
      pm_.UnchargePages(ctnr, data_frames + fresh_nodes);
      return Err(SysError::kNoMemory);
    }
    // averif-lint: allow(hot-path-alloc) — same per-call staging vector; reserve above sized it, push_back only fills
    pages.push_back(std::move(*page));
  }
  if (alloc_.FreeCount(PageSize::k4K) < fresh_nodes) {
    for (PageAlloc& rollback : pages) {
      alloc_.FreePage(rollback.ptr, std::move(rollback.perm));
    }
    pm_.UnchargePages(ctnr, data_frames + fresh_nodes);
    return Err(SysError::kNoMemory);
  }

  for (std::uint64_t i = 0; i < range.count; ++i) {
    vm_.MapFreshPage(&alloc_, proc, range.At(i), std::move(pages[i]), call.map_perm);
  }
  return Ok(range.count);
}

SyscallRet Kernel::SysMunmap(ThrdPtr t, const Syscall& call) {
  const Thread& thread = pm_.GetThread(t);
  ProcPtr proc = thread.owning_proc;
  const VaRange& range = call.va_range;

  if (range.count < 1 || range.count > kMaxMmapCount) {
    return Err(SysError::kInvalid);
  }
  const PageTable& table = vm_.TableOf(proc);
  for (std::uint64_t i = 0; i < range.count; ++i) {
    if (!table.mapping(range.size).contains(range.At(i))) {
      return Err(SysError::kInvalid);
    }
  }

  for (std::uint64_t i = 0; i < range.count; ++i) {
    std::optional<VmManager::UnmapResult> result = vm_.Unmap(&alloc_, proc, range.At(i));
    ATMO_CHECK(result.has_value(), "pre-validated munmap failed");
    if (result->released) {
      pm_.UnchargePages(result->released_owner, result->released_frames);
    }
  }
  return Ok(range.count);
}

SyscallRet Kernel::SysNewContainer(ThrdPtr t, const Syscall& call) {
  CtnrPtr parent = pm_.GetThread(t).owning_ctnr;
  PmResult<CtnrPtr> result = pm_.NewContainer(&alloc_, parent, call.quota, call.cpu_mask);
  if (!result.ok()) {
    return Err(FromProcError(result.error));
  }
  return Ok(result.value);
}

SyscallRet Kernel::SysNewProcess(ThrdPtr t) {
  const Thread& thread = pm_.GetThread(t);
  PmResult<ProcPtr> proc = pm_.NewProcess(&alloc_, thread.owning_ctnr, thread.owning_proc);
  if (!proc.ok()) {
    return Err(FromProcError(proc.error));
  }
  CtnrPtr ctnr = thread.owning_ctnr;
  if (!pm_.ChargePages(ctnr, 1)) {
    pm_.RemoveProcess(&alloc_, proc.value);
    return Err(SysError::kQuotaExceeded);
  }
  if (!vm_.CreateAddressSpace(&alloc_, proc.value, ctnr)) {
    pm_.UnchargePages(ctnr, 1);
    pm_.RemoveProcess(&alloc_, proc.value);
    return Err(SysError::kNoMemory);
  }
  return Ok(proc.value);
}

SyscallRet Kernel::SysNewThread(ThrdPtr t, const Syscall& call) {
  const Thread& thread = pm_.GetThread(t);
  ProcPtr target = call.target == kNullPtr ? thread.owning_proc : call.target;
  if (!pm_.ProcessExists(target)) {
    return Err(SysError::kInvalid);
  }
  if (pm_.GetProcess(target).owning_container != thread.owning_ctnr) {
    return Err(SysError::kDenied);
  }
  PmResult<ThrdPtr> result = pm_.NewThread(&alloc_, target);
  if (!result.ok()) {
    return Err(FromProcError(result.error));
  }
  return Ok(result.value);
}

SyscallRet Kernel::SysNewEndpoint(ThrdPtr t, const Syscall& call) {
  PmResult<EdptPtr> result = pm_.NewEndpoint(&alloc_, t, call.edpt_idx);
  if (!result.ok()) {
    return Err(FromProcError(result.error));
  }
  return Ok(result.value);
}

SyscallRet Kernel::SysUnbindEndpoint(ThrdPtr t, const Syscall& call) {
  // Pre-validate so the failure path stays atomic: the slot must hold a
  // live endpoint, and if this is the endpoint's last reference its wait
  // queue must be empty (otherwise waiters would dangle — the caller must
  // drain or let peers exit first).
  const Thread& thread = pm_.GetThread(t);
  if (call.edpt_idx >= kMaxEdptDescriptors || thread.endpoints[call.edpt_idx] == kNullPtr) {
    return Err(SysError::kInvalid);
  }
  EdptPtr edpt = thread.endpoints[call.edpt_idx];
  const Endpoint& e = pm_.GetEndpoint(edpt);
  if (e.rf_count == 1 && !e.queue.empty()) {
    return Err(SysError::kInvalid);
  }
  ProcError err = pm_.UnbindEndpoint(&alloc_, t, call.edpt_idx);
  ATMO_CHECK(err == ProcError::kOk, "pre-validated unbind failed");
  return Ok();
}

// ---------------------------------------------------------------------------
// IPC
// ---------------------------------------------------------------------------

bool Kernel::ResolveOutboundPayload(ThrdPtr sender, IpcPayload* payload, SysError* error) {
  const Thread& thread = pm_.GetThread(sender);

  if (payload->page.has_value()) {
    VAddr va = payload->page->page;  // sender virtual address on input
    const PageTable& table = vm_.TableOf(thread.owning_proc);
    if (!table.mapping(payload->page->size).contains(va)) {
      *error = SysError::kInvalid;
      return false;
    }
    MapEntry entry = table.mapping(payload->page->size).at(va);
    // Rights cannot be amplified through a grant.
    if ((payload->page->perm.writable && !entry.perm.writable) ||
        (!payload->page->perm.no_execute && entry.perm.no_execute)) {
      *error = SysError::kDenied;
      return false;
    }
    // A borrowed page is never grantable, in any mode: neither the lender
    // (downgraded) nor the borrower (holding a loan) may fan it out — a
    // live borrow has exactly its two recorded mappings.
    if (vm_.IsBorrowed(entry.addr)) {
      *error = SysError::kDenied;
      return false;
    }
    if (payload->page->mode != GrantMode::kShare) {
      // Move/borrow additionally require exclusive ownership of the frame:
      // a single CPU mapping (the sender's). This is what rejects
      // double-grants — after a borrow the count is 2 and the record is
      // live; after a move the sender no longer maps the page at all.
      if (alloc_.MapCount(entry.addr) != 1) {
        *error = SysError::kDenied;
        return false;
      }
      // A borrow lends a read-only view by construction.
      if (payload->page->mode == GrantMode::kBorrow && payload->page->perm.writable) {
        *error = SysError::kInvalid;
        return false;
      }
    }
    payload->page->src_va = va;        // sender side, needed again at Deliver
    payload->page->page = entry.addr;  // physical from here on
  }

  if (payload->endpoint.has_value()) {
    std::uint64_t src_idx = payload->endpoint->endpoint;  // descriptor index on input
    if (src_idx >= kMaxEdptDescriptors || thread.endpoints[src_idx] == kNullPtr ||
        payload->endpoint->dest_index >= kMaxEdptDescriptors) {
      *error = SysError::kInvalid;
      return false;
    }
    payload->endpoint->endpoint = thread.endpoints[src_idx];
  }

  if (payload->iommu.has_value()) {
    IommuDomainId domain = payload->iommu->domain_id;
    if (!iommu_.DomainExists(domain) || iommu_.DomainOwner(domain) != thread.owning_ctnr) {
      *error = SysError::kDenied;
      return false;
    }
  }

  *error = SysError::kOk;
  return true;
}

bool Kernel::CanDeliver(const IpcPayload& payload, ThrdPtr sender, ThrdPtr receiver,
                        SysError* error) const {
  const Thread& thread = pm_.GetThread(receiver);

  if (payload.page.has_value()) {
    const PageGrant& grant = *payload.page;
    // A staged grant can go stale while the sender is blocked: the frame may
    // have been freed (any mode) or its exclusivity lost (move/borrow). The
    // resolve-time checks are repeated here against the current state.
    if (alloc_.StateOf(grant.page) != PageState::kMapped || vm_.IsBorrowed(grant.page)) {
      *error = SysError::kWouldFault;
      return false;
    }
    if (grant.mode != GrantMode::kShare) {
      ProcPtr sproc = pm_.GetThread(sender).owning_proc;
      std::optional<MapEntry> src = vm_.Resolve(sproc, grant.src_va);
      if (!src.has_value() || src->addr != grant.page || src->size != grant.size ||
          alloc_.MapCount(grant.page) != 1) {
        *error = SysError::kWouldFault;
        return false;
      }
    }
    const PageTable& table = vm_.TableOf(thread.owning_proc);
    if (table.CanMap(grant.dest_va, grant.size) != MapError::kOk) {
      *error = SysError::kWouldFault;
      return false;
    }
    std::uint64_t nodes = table.FreshNodesFor(grant.dest_va, grant.size, nullptr);
    const Container& ctnr = pm_.GetContainer(thread.owning_ctnr);
    if (ctnr.mem_used + nodes > ctnr.mem_quota || alloc_.FreeCount(PageSize::k4K) < nodes) {
      *error = SysError::kWouldFault;
      return false;
    }
  }

  if (payload.endpoint.has_value()) {
    if (thread.endpoints[payload.endpoint->dest_index] != kNullPtr) {
      *error = SysError::kWouldFault;
      return false;
    }
  }

  if (payload.iommu.has_value()) {
    IommuDomainId domain = payload.iommu->domain_id;
    std::uint64_t pages = iommu_.DomainPageCount(domain);
    const Container& ctnr = pm_.GetContainer(thread.owning_ctnr);
    if (iommu_.DomainOwner(domain) != thread.owning_ctnr &&
        ctnr.mem_used + pages > ctnr.mem_quota) {
      *error = SysError::kWouldFault;
      return false;
    }
  }

  *error = SysError::kOk;
  return true;
}

void Kernel::Deliver(const IpcPayload& payload, ThrdPtr sender, ThrdPtr receiver) {
  Thread& rthread = pm_.MutableThread(receiver);
  CtnrPtr rctnr = rthread.owning_ctnr;
  ProcPtr rproc = rthread.owning_proc;

  if (payload.page.has_value()) {
    const PageGrant& grant = *payload.page;
    std::uint64_t nodes = vm_.TableOf(rproc).FreshNodesFor(grant.dest_va, grant.size, nullptr);
    bool charged = pm_.ChargePages(rctnr, nodes);
    ATMO_CHECK(charged, "pre-validated page grant charge failed");
    MapError err = vm_.MapSharedPage(&alloc_, rproc, grant.dest_va, grant.page, grant.size,
                                     grant.perm);
    ATMO_CHECK(err == MapError::kOk, "pre-validated page grant map failed");
    if (grant.mode == GrantMode::kMove) {
      // Zero-copy transfer: the sender's mapping disappears in the same
      // transition. The map count went 1 -> 2 at MapSharedPage, so this
      // unmap (2 -> 1) can never release the frame; ownership and charge
      // stay with the original container, exactly as for a share grant.
      ProcPtr sproc = pm_.GetThread(sender).owning_proc;
      std::optional<VmManager::UnmapResult> un = vm_.Unmap(&alloc_, sproc, grant.src_va);
      ATMO_CHECK(un.has_value() && !un->released, "pre-validated move grant unmap failed");
    } else if (grant.mode == GrantMode::kBorrow) {
      // Zero-copy loan: the sender keeps the page but is downgraded to
      // read-only until the borrower returns (kGrantReturn) or unmaps it.
      ProcPtr sproc = pm_.GetThread(sender).owning_proc;
      vm_.BeginBorrow(&alloc_, grant.page, sproc, grant.src_va, rproc, grant.dest_va,
                      grant.size);
    }
  }

  if (payload.endpoint.has_value()) {
    ProcError err = pm_.BindEndpoint(receiver, payload.endpoint->dest_index,
                                     payload.endpoint->endpoint);
    ATMO_CHECK(err == ProcError::kOk, "pre-validated endpoint grant failed");
  }

  if (payload.iommu.has_value()) {
    IommuDomainId domain = payload.iommu->domain_id;
    CtnrPtr old_owner = iommu_.DomainOwner(domain);
    if (old_owner != rctnr) {
      std::uint64_t pages = iommu_.DomainPageCount(domain);
      pm_.TransferCharge(old_owner, rctnr, pages);
      for (PagePtr page : iommu_.DomainPageClosure(domain)) {
        alloc_.SetOwner(page, rctnr);
      }
      iommu_.SetDomainOwner(domain, rctnr);
    }
  }

  Thread& r = pm_.MutableThread(receiver);
  r.ipc_buf = payload;
  r.has_inbound = true;
  if (payload.trace_id != 0) {
    ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.deliver", "trace_id", payload.trace_id);
  }
}

bool Kernel::DeliverResolved(const IpcPayload& resolved, ThrdPtr sender, ThrdPtr receiver,
                             SysError* error) {
  if (!CanDeliver(resolved, sender, receiver, error)) {
    return false;
  }
  Deliver(resolved, sender, receiver);
  return true;
}

// Shared body of kSend and kCall — they differ only in what happens after a
// successful delivery (return vs. park for the reply) and which blocked
// state a queued sender takes. kRecv and kReply reuse DeliverResolved.
SyscallRet Kernel::SendPath(ThrdPtr t, const Syscall& call, bool is_call) {
  const Thread& thread = pm_.GetThread(t);
  if (call.edpt_idx >= kMaxEdptDescriptors || thread.endpoints[call.edpt_idx] == kNullPtr) {
    return Err(SysError::kInvalid);
  }
  EdptPtr edpt = thread.endpoints[call.edpt_idx];

  SysError error;
  IpcPayload resolved = call.payload;  // the one staged copy per delivery
  if (!ResolveOutboundPayload(t, &resolved, &error)) {
    return Err(error);
  }

  const Endpoint& e = pm_.GetEndpoint(edpt);
  if (e.queue_kind == EdptQueueKind::kReceivers) {
    ThrdPtr receiver = e.queue.Front();
    if (!DeliverResolved(resolved, t, receiver, &error)) {
      return Err(error);
    }
    pm_.PopWaiter(edpt);
    if (is_call) {
      pm_.MutableThread(receiver).reply_to = t;
    }
    pm_.MakeRunnable(receiver);
    if (is_call) {
      pm_.BlockCurrentForReply();
      return Err(SysError::kBlocked);
    }
    return Ok();
  }

  if (e.queue.full()) {
    return Err(SysError::kCapacity);
  }
  pm_.MutableThread(t).ipc_buf = resolved;  // staged, resolved form
  pm_.BlockCurrentOn(edpt, is_call ? ThreadState::kBlockedCall : ThreadState::kBlockedSend);
  return Err(SysError::kBlocked);
}

SyscallRet Kernel::SysSend(ThrdPtr t, const Syscall& call) { return SendPath(t, call, false); }

SyscallRet Kernel::SysRecv(ThrdPtr t, const Syscall& call) {
  const Thread& thread = pm_.GetThread(t);
  if (call.edpt_idx >= kMaxEdptDescriptors || thread.endpoints[call.edpt_idx] == kNullPtr) {
    return Err(SysError::kInvalid);
  }
  EdptPtr edpt = thread.endpoints[call.edpt_idx];

  const Endpoint& e = pm_.GetEndpoint(edpt);
  if (e.queue_kind == EdptQueueKind::kSenders) {
    ThrdPtr sender = e.queue.Front();
    // Borrowed, not copied: sender != t (the queue holds blocked threads,
    // t is running) and Deliver never creates or erases threads, so the
    // reference stays valid through delivery.
    const IpcPayload& staged = pm_.GetThread(sender).ipc_buf;
    SysError error;
    if (!DeliverResolved(staged, sender, t, &error)) {
      return Err(error);
    }
    pm_.PopWaiter(edpt);
    if (pm_.GetThread(sender).state == ThreadState::kBlockedSend) {
      pm_.MakeRunnable(sender);
    } else {
      // The sender used call(): it stays parked awaiting our reply.
      ATMO_CHECK(pm_.GetThread(sender).state == ThreadState::kBlockedCall,
                 "sender queue held a non-sender");
      pm_.MutableThread(t).reply_to = sender;
    }
    return Ok();
  }

  if (e.queue.full()) {
    return Err(SysError::kCapacity);
  }
  pm_.BlockCurrentOn(edpt, ThreadState::kBlockedRecv);
  return Err(SysError::kBlocked);
}

SyscallRet Kernel::SysCall(ThrdPtr t, const Syscall& call) { return SendPath(t, call, true); }

SyscallRet Kernel::SysReply(ThrdPtr t, const Syscall& call) {
  ThrdPtr caller = pm_.GetThread(t).reply_to;
  if (caller == kNullPtr || !pm_.ThreadExists(caller)) {
    return Err(SysError::kInvalid);
  }
  const Thread& cthread = pm_.GetThread(caller);
  if (cthread.state != ThreadState::kBlockedCall || cthread.waiting_on != kNullPtr) {
    return Err(SysError::kInvalid);
  }

  SysError error;
  IpcPayload resolved = call.payload;  // the one staged copy per delivery
  if (!ResolveOutboundPayload(t, &resolved, &error)) {
    return Err(error);
  }
  if (!DeliverResolved(resolved, t, caller, &error)) {
    return Err(error);
  }
  pm_.MutableThread(t).reply_to = kNullPtr;
  pm_.MakeRunnable(caller);
  return Ok();
}

SyscallRet Kernel::SysGrantReturn(ThrdPtr t, const Syscall& call) {
  ProcPtr proc = pm_.GetThread(t).owning_proc;
  VAddr va = call.va_range.base;
  std::optional<MapEntry> entry = vm_.Resolve(proc, va);
  if (!entry.has_value()) {
    return Err(SysError::kInvalid);
  }
  const VmManager::BorrowRecord* rec = vm_.BorrowOf(entry->addr);
  if (rec == nullptr || rec->borrower != proc || rec->borrower_va != va) {
    return Err(SysError::kDenied);  // mapped, but not the borrower side of a loan
  }
  // The borrower-side unmap revokes the borrow: the record is dropped and
  // the lender's original rights are restored in the same transition. The
  // lender still maps the frame, so the unmap (2 -> 1) can never release
  // it and no ownership or charge moves.
  std::optional<VmManager::UnmapResult> un = vm_.Unmap(&alloc_, proc, va);
  ATMO_CHECK(un.has_value() && !un->released, "pre-validated grant return failed");
  return Ok();
}

SyscallRet Kernel::SysObsQuery(ThrdPtr t, const Syscall& call) {
  ProcPtr proc = pm_.GetThread(t).owning_proc;
  VAddr va = call.va_range.base;
  std::optional<MapEntry> entry = vm_.Resolve(proc, va);
  if (!entry.has_value() || (va & (PageBytes(entry->size) - 1)) != 0) {
    // Unmapped, or an interior address: the destination must be a mapping
    // base so the spec can name the touched slot in Ψ.
    return Err(SysError::kInvalid);
  }
  if (!entry->perm.writable || !entry->perm.user) {
    return Err(SysError::kDenied);
  }
  // Compose the snapshot on the stack — this runs inside ExecBatch's
  // hot-path-alloc closure, so no containers may be built here.
  ObsQueryRecord rec;
  rec.magic = kObsQueryMagic;
  rec.version = kObsQueryVersion;
  rec.mapped_pages = vm_.TableOf(proc).MappingCount();
  for (const auto& kv : vm_.borrows()) {
    if (kv.second.lender == proc) {
      ++rec.borrows_lent;
    }
    if (kv.second.borrower == proc) {
      ++rec.borrows_held;
    }
  }
  for (const auto& kv : rings_.rings()) {
    if (kv.second.owner_proc() == proc) {
      rec.ring_sq_depth += kv.second.SqSize();
      rec.ring_cq_depth += kv.second.CqSize();
    }
  }
  rec.dropped_samples = obs::SamplerDroppedCount();
  mem_->HwWriteBytes(entry->addr, &rec, sizeof(rec));
  return Ok(sizeof(rec));
}

// ---------------------------------------------------------------------------
// Exit / kill
// ---------------------------------------------------------------------------

void Kernel::ClearReplyRefs(ThrdPtr gone) {
  for (const auto& [t_ptr, perm] : pm_.thrd_perms()) {
    if (perm.value().reply_to == gone) {
      pm_.MutableThread(t_ptr).reply_to = kNullPtr;
    }
  }
}

SyscallRet Kernel::SysExit(ThrdPtr t) {
  ClearReplyRefs(t);
  pm_.RemoveThread(&alloc_, t);
  return Ok();
}

bool Kernel::ProcIsAncestorOf(ProcPtr ancestor, ProcPtr descendant) const {
  ProcPtr cur = pm_.GetProcess(descendant).parent;
  while (cur != kNullPtr) {
    if (cur == ancestor) {
      return true;
    }
    cur = pm_.GetProcess(cur).parent;
  }
  return false;
}

void Kernel::KillOneProcess(ProcPtr proc) {
  // Threads first (copy the list; removal mutates it).
  std::vector<ThrdPtr> threads;
  for (ThrdPtr thrd : pm_.GetProcess(proc).threads) {
    // averif-lint: allow(hot-path-alloc) — process teardown is a cold control-plane op
    threads.push_back(thrd);
  }
  for (ThrdPtr thrd : threads) {
    ClearReplyRefs(thrd);
    pm_.RemoveThread(&alloc_, thrd);
  }
  // Address space: release every mapping, free the table.
  CtnrPtr ctnr = pm_.GetProcess(proc).owning_container;
  VmManager::DestroyStats stats = vm_.DestroyAddressSpace(&alloc_, proc);
  for (const auto& [owner, frames] : stats.released_frames) {
    pm_.UnchargePages(owner, frames);
  }
  pm_.UnchargePages(ctnr, stats.table_nodes);
  pm_.RemoveProcess(&alloc_, proc);
}

void Kernel::KillProcessTree(ProcPtr root) {
  // Depth-first collection, then destroy leaves-first.
  std::vector<ProcPtr> order;
  std::vector<ProcPtr> stack{root};
  while (!stack.empty()) {
    ProcPtr cur = stack.back();
    stack.pop_back();
    // averif-lint: allow(hot-path-alloc) — process-tree kill is a cold control-plane op
    order.push_back(cur);
    for (ProcPtr child : pm_.GetProcess(cur).children) {
      // averif-lint: allow(hot-path-alloc) — process-tree kill is a cold control-plane op
      stack.push_back(child);
    }
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    KillOneProcess(*it);
  }
}

SyscallRet Kernel::SysKillProcess(ThrdPtr t, const Syscall& call) {
  ProcPtr target = call.target;
  const Thread& thread = pm_.GetThread(t);
  if (!pm_.ProcessExists(target)) {
    return Err(SysError::kInvalid);
  }
  // Authority (§3): the parent process can terminate its direct and
  // indirect children within the same container.
  if (pm_.GetProcess(target).owning_container != thread.owning_ctnr ||
      !ProcIsAncestorOf(thread.owning_proc, target)) {
    return Err(SysError::kDenied);
  }
  KillProcessTree(target);
  return Ok();
}

SyscallRet Kernel::SysKillContainer(ThrdPtr t, const Syscall& call) {
  CtnrPtr target = call.target;
  const Thread& thread = pm_.GetThread(t);
  if (!pm_.ContainerExists(target)) {
    return Err(SysError::kInvalid);
  }
  // Authority (§3): parents can terminate direct and indirect children.
  if (!pm_.GetContainer(target).path.contains(thread.owning_ctnr)) {
    return Err(SysError::kDenied);
  }

  // Deepest-first over the doomed subtree so every container's parent is
  // still alive when its leftovers are harvested.
  std::vector<CtnrPtr> doomed;
  for (CtnrPtr c : pm_.SubtreeContainers(target)) {
    // averif-lint: allow(hot-path-alloc) — container kill is a cold control-plane op
    doomed.push_back(c);
  }
  std::sort(doomed.begin(), doomed.end(), [this](CtnrPtr a, CtnrPtr b) {
    return pm_.GetContainer(a).depth > pm_.GetContainer(b).depth;
  });

  for (CtnrPtr c : doomed) {
    // 1. Kill every process tree in this container.
    while (!pm_.GetContainer(c).owned_procs.empty()) {
      ProcPtr proc = pm_.GetContainer(c).owned_procs.Front();
      while (pm_.GetProcess(proc).parent != kNullPtr) {
        proc = pm_.GetProcess(proc).parent;
      }
      KillProcessTree(proc);
    }
    CtnrPtr parent = pm_.GetContainer(c).parent;

    // 2. Endpoints that outlive the container (references held outside the
    // doomed subtree) are re-attributed to the parent.
    std::vector<EdptPtr> surviving;
    for (const auto& [e_ptr, perm] : pm_.edpt_perms()) {
      if (perm.value().owning_ctnr == c) {
        // averif-lint: allow(hot-path-alloc) — container kill is a cold control-plane op
        surviving.push_back(e_ptr);
      }
    }
    for (EdptPtr e : surviving) {
      pm_.MutableEndpoint(e).owning_ctnr = parent;
      alloc_.SetOwner(e, parent);
      pm_.TransferCharge(c, parent, 1);
    }

    // 3. Shared pages still mapped elsewhere: ownership and charge move to
    // the parent (the paper's "resources passed outside the container are
    // not revoked").
    for (PagePtr page : alloc_.MappedPages()) {
      if (alloc_.OwnerOf(page) == c) {
        alloc_.SetOwner(page, parent);
        pm_.TransferCharge(c, parent, PageFrames4K(alloc_.SizeClassOf(page)));
      }
    }

    // 4. IOMMU domains: detach devices, transfer ownership to the parent.
    for (IommuDomainId domain : iommu_.DomainsOwnedBy(c)) {
      std::vector<DeviceId> devices;
      for (const auto& [device, dom] : iommu_.device_attachments()) {
        if (dom == domain) {
          // averif-lint: allow(hot-path-alloc) — container kill is a cold control-plane op
          devices.push_back(device);
        }
      }
      for (DeviceId device : devices) {
        iommu_.DetachDevice(device);
      }
      std::uint64_t pages = iommu_.DomainPageCount(domain);
      pm_.TransferCharge(c, parent, pages);
      for (PagePtr page : iommu_.DomainPageClosure(domain)) {
        alloc_.SetOwner(page, parent);
      }
      iommu_.SetDomainOwner(domain, parent);
    }

    // 5. The container object itself; remaining quota returns to parent.
    pm_.RemoveContainer(&alloc_, c);
  }
  return Ok();
}

// ---------------------------------------------------------------------------
// IOMMU syscalls
// ---------------------------------------------------------------------------

SyscallRet Kernel::SysIommuCreateDomain(ThrdPtr t) {
  CtnrPtr ctnr = pm_.GetThread(t).owning_ctnr;
  if (!pm_.ChargePages(ctnr, 1)) {
    return Err(SysError::kQuotaExceeded);
  }
  IommuDomainId domain = iommu_.CreateDomain(&alloc_, ctnr);
  if (domain == kNoIommuDomain) {
    pm_.UnchargePages(ctnr, 1);
    return Err(SysError::kNoMemory);
  }
  return Ok(domain);
}

SyscallRet Kernel::SysIommuAttachDevice(ThrdPtr t, const Syscall& call) {
  CtnrPtr ctnr = pm_.GetThread(t).owning_ctnr;
  if (!iommu_.DomainExists(call.iommu_domain) ||
      iommu_.DomainOwner(call.iommu_domain) != ctnr) {
    return Err(SysError::kDenied);
  }
  if (!iommu_.AttachDevice(call.iommu_domain, call.device)) {
    return Err(SysError::kInvalid);
  }
  return Ok();
}

SyscallRet Kernel::SysIommuDetachDevice(ThrdPtr t, const Syscall& call) {
  CtnrPtr ctnr = pm_.GetThread(t).owning_ctnr;
  IommuDomainId domain = iommu_.DomainOf(call.device);
  if (domain == kNoIommuDomain || iommu_.DomainOwner(domain) != ctnr) {
    return Err(SysError::kDenied);
  }
  iommu_.DetachDevice(call.device);
  return Ok();
}

SyscallRet Kernel::SysIommuMapDma(ThrdPtr t, const Syscall& call) {
  const Thread& thread = pm_.GetThread(t);
  CtnrPtr ctnr = thread.owning_ctnr;
  IommuDomainId domain = call.iommu_domain;
  if (!iommu_.DomainExists(domain) || iommu_.DomainOwner(domain) != ctnr) {
    return Err(SysError::kDenied);
  }
  // The DMA window exposes a page the caller itself has mapped.
  std::optional<MapEntry> entry = vm_.Resolve(thread.owning_proc, call.dma_va);
  if (!entry.has_value()) {
    return Err(SysError::kInvalid);
  }
  const PageTable& table = vm_.TableOf(thread.owning_proc);
  if (!table.mapping(entry->size).contains(call.dma_va)) {
    return Err(SysError::kInvalid);  // must reference the mapping base
  }
  if (iommu_.CanMapDma(domain, call.iova, entry->size) != MapError::kOk) {
    return Err(SysError::kInvalid);
  }
  std::uint64_t nodes = iommu_.FreshNodesForDma(domain, call.iova, entry->size);
  if (!pm_.ChargePages(ctnr, nodes)) {
    return Err(SysError::kQuotaExceeded);
  }
  if (alloc_.FreeCount(PageSize::k4K) < nodes) {
    pm_.UnchargePages(ctnr, nodes);
    return Err(SysError::kNoMemory);
  }
  MapError err = iommu_.MapDma(&alloc_, domain, call.iova, entry->addr, entry->size,
                               MapEntryPerm{.writable = call.map_perm.writable &&
                                                        entry->perm.writable,
                                            .user = true,
                                            .no_execute = true});
  ATMO_CHECK(err == MapError::kOk, "pre-validated DMA map failed");
  // Pin the frame: device visibility counts as a mapping.
  alloc_.IncMapCount(entry->addr);
  return Ok();
}

SyscallRet Kernel::SysIommuUnmapDma(ThrdPtr t, const Syscall& call) {
  CtnrPtr ctnr = pm_.GetThread(t).owning_ctnr;
  IommuDomainId domain = call.iommu_domain;
  if (!iommu_.DomainExists(domain) || iommu_.DomainOwner(domain) != ctnr) {
    return Err(SysError::kDenied);
  }
  // Peek first for atomic failure. The domain was just checked to exist,
  // but guard the lookup anyway: dereferencing end() is UB.
  auto it = iommu_.domains().find(domain);
  if (it == iommu_.domains().end() || !it->second.Resolve(call.iova).has_value()) {
    return Err(SysError::kInvalid);
  }
  std::optional<MapEntry> entry = iommu_.UnmapDma(domain, call.iova);
  ATMO_CHECK(entry.has_value(), "pre-validated DMA unmap failed");
  // Unpin; if the device held the last reference, release the frame through
  // the VM subsystem's stored permission.
  if (alloc_.DecMapCount(entry->addr) == 0) {
    pm_.UnchargePages(alloc_.OwnerOf(entry->addr), PageFrames4K(entry->size));
    vm_.ReclaimDevicePinnedFrame(&alloc_, entry->addr);
  }
  return Ok();
}

// ---------------------------------------------------------------------------
// Syscall rings (DESIGN.md §13)
// ---------------------------------------------------------------------------

SyscallRet Kernel::SysRingSetup(ThrdPtr t, const Syscall& call) {
  if (!RingCapacityValid(call.ring_entries)) {
    return Err(SysError::kInvalid);
  }
  if (rings_.Count() >= SyscallRingTable::kCapacity) {
    return Err(SysError::kCapacity);
  }
  const Thread& thread = pm_.GetThread(t);
  std::uint64_t id =
      rings_.Setup(t, thread.owning_proc, thread.owning_ctnr, call.ring_entries, call.ring_flags);
  ATMO_CHECK(id != 0, "pre-validated ring setup failed");
  return Ok(id);
}

SyscallRet Kernel::SysRingSubmit(ThrdPtr t, const Syscall& call) {
  if (!rings_.Exists(call.ring_id)) {
    return Err(SysError::kInvalid);
  }
  const SyscallRing& ring = rings_.Get(call.ring_id);
  if (ring.owner() != t) {
    return Err(SysError::kDenied);
  }
  if (!RingSubmittable(call.ring_op)) {
    return Err(SysError::kInvalid);
  }
  if (ring.SqFull()) {
    return Err(SysError::kCapacity);
  }
  bool pushed = rings_.SqPush(call.ring_id, RingSqEntry{RingInnerCall(call), call.ring_user_data});
  ATMO_CHECK(pushed, "pre-validated ring submit failed");
  return Ok(ring.SqSize());
}

SyscallRet Kernel::RingPushDirect(ThrdPtr t, const Syscall& submit) {
  return SysRingSubmit(t, submit);
}

std::size_t Kernel::RingReap(ThrdPtr t, std::uint64_t ring_id, RingCqEntry* out, std::size_t max) {
  if (!rings_.Exists(ring_id) || rings_.Get(ring_id).owner() != t) {
    return 0;
  }
  std::size_t n = 0;
  while (n < max && rings_.CqPop(ring_id, &out[n])) {
    ++n;
  }
  return n;
}

SyscallRet Kernel::ExecBatch(ThrdPtr t, const Syscall& call)
    ATMO_HOT_PATH(hot-path-alloc) {
  ATMO_CHECK(pm_.current() == t, "ExecBatch caller is not the current thread");
  if (!rings_.Exists(call.ring_id)) {
    return Err(SysError::kInvalid);
  }
  {
    const SyscallRing& ring = rings_.Get(call.ring_id);
    if (ring.owner() != t) {
      return Err(SysError::kDenied);
    }
  }
  // Effective drain count: bounded by the SQ depth, the CQ's free space and
  // the caller's budget. An oversized batch is split — the remainder stays
  // queued for the next kRingEnter.
  std::uint64_t n;
  bool atomic;
  {
    const SyscallRing& ring = rings_.Get(call.ring_id);
    n = ring.SqSize();
    std::uint64_t cq_free = ring.capacity() - ring.CqSize();
    n = std::min(n, cq_free);
    if (call.ring_budget != 0) {
      n = std::min<std::uint64_t>(n, call.ring_budget);
    }
    atomic = ring.atomic();
  }
  // One drain-stage stamp per batch (not per entry): the ring amortizes the
  // kernel crossing, so the causal chain of every request whose syscall was
  // queued in this SQ shares this drain point.
  ATMO_OBS_INSTANT_ARG(obs::kCatRequest, "stage.ring_drain", "batch", n);
  // Batch-level failure atomicity (kRingDrainAtomic): snapshot the whole
  // kernel and restore it if any entry fails. The restored clone has fresh
  // (empty) dirty logs, which is exactly right under the checker's
  // drain-at-every-capture discipline: the batch's net mutation is zero
  // relative to the last drain. (Callers maintaining external delta
  // snapshots without the checker must treat a kWouldFault drain as a full
  // rebuild point — see DESIGN.md §13.)
  // The snapshot refills the pooled clone shell instead of rebuilding from
  // the heap. Detached from the member first: the rollback below move-
  // assigns the snapshot over *this, and a still-attached pool would be
  // destroyed mid-move by its own transplant.
  std::unique_ptr<Kernel> pool;
  if (atomic && n > 0) {
    pool = std::move(snapshot_pool_);
    if (pool == nullptr) {
      // averif-lint: allow(hot-path-alloc) — pool seeding: runs only when the snapshot pool is empty (first atomic batch); steady state reuses the pooled clone shell
      pool = std::unique_ptr<Kernel>(new Kernel());
    }
    CloneForVerificationInto(pool.get());
  }
  for (std::uint64_t i = 0; i < n; ++i) {
    RingSqEntry entry;
    bool popped = rings_.SqPop(call.ring_id, &entry);
    ATMO_CHECK(popped, "ring SQ drained out from under the batch");
    SyscallRet ret = Exec(t, entry.call);
    ATMO_CHECK(ret.error != SysError::kBlocked, "submittable op blocked inside a batch");
    if (atomic && !ret.ok()) {
      *this = std::move(*pool);
      // Keep the (now moved-from) shell for the next refill; the transplant
      // nulled this->snapshot_pool_ along with the rest of the members.
      snapshot_pool_ = std::move(pool);
      return Err(SysError::kWouldFault);
    }
    bool completed = rings_.CqPush(call.ring_id, RingCqEntry{entry.user_data, ret});
    ATMO_CHECK(completed, "ring CQ filled up inside a sized batch");
  }
  if (pool != nullptr) {
    snapshot_pool_ = std::move(pool);
  }
  return Ok(n);
}

// ---------------------------------------------------------------------------
// Verification surface
// ---------------------------------------------------------------------------

namespace {

AbsContainer AbstractContainer(const Container& c) {
  AbsContainer ac;
  ac.parent = c.parent;
  ac.children = c.children.View();
  ac.depth = c.depth;
  ac.path = c.path;
  ac.subtree = c.subtree;
  ac.mem_quota = c.mem_quota;
  ac.mem_used = c.mem_used;
  ac.cpu_mask = c.cpu_mask;
  ac.procs = c.owned_procs.View();
  ac.threads = c.owned_threads;
  return ac;
}

AbsProcess AbstractProcess(const Process& p) {
  AbsProcess ap;
  ap.ctnr = p.owning_container;
  ap.parent = p.parent;
  ap.children = p.children.View();
  ap.threads = p.threads.View();
  return ap;
}

AbsThread AbstractThread(const Thread& t) {
  AbsThread at;
  at.proc = t.owning_proc;
  at.ctnr = t.owning_ctnr;
  at.state = t.state;
  at.endpoints = t.endpoints;
  at.ipc_buf = t.ipc_buf;
  at.has_inbound = t.has_inbound;
  at.waiting_on = t.waiting_on;
  at.reply_to = t.reply_to;
  return at;
}

AbsEndpoint AbstractEndpoint(const Endpoint& e) {
  AbsEndpoint ae;
  ae.queue = e.queue.View();
  ae.queue_kind = e.queue_kind;
  ae.rf_count = e.rf_count;
  ae.owner = e.owning_ctnr;
  return ae;
}

// Shared by Abstract() and AbstractDelta(): a page's abstract view includes
// the borrow relabeling (lender/borrower and the right to restore) so the
// spec can state kBorrow/kGrantReturn as pure ownership relabelings of Ψ.
AbsPageInfo AbstractPage(const PageAllocator& alloc, const VmManager& vm, PagePtr page,
                         PageState state) {
  AbsPageInfo info{state, alloc.SizeClassOf(page), alloc.OwnerOf(page),
                   state == PageState::kMapped ? alloc.MapCount(page) : 0};
  if (const VmManager::BorrowRecord* rec = vm.BorrowOf(page)) {
    info.borrowed = true;
    info.borrow = AbsPageBorrow{rec->lender, rec->lender_va, rec->lender_perm.writable,
                                rec->borrower, rec->borrower_va};
  }
  return info;
}

AbsIommuDomain AbstractIommuDomain(const IommuManager& iommu, IommuDomainId id,
                                   const PageTable& table) {
  AbsIommuDomain ad;
  ad.owner = iommu.DomainOwner(id);
  ad.mappings = table.AddressSpace();
  for (const auto& [device, dom] : iommu.device_attachments()) {
    if (dom == id) {
      ad.devices.add(device);
    }
  }
  return ad;
}

AbsSyscallRing AbstractRing(const SyscallRing& r) {
  AbsSyscallRing ar;
  ar.owner = r.owner();
  ar.owner_proc = r.owner_proc();
  ar.owner_ctnr = r.owner_ctnr();
  ar.capacity = r.capacity();
  ar.flags = r.flags();
  for (std::size_t i = 0; i < r.SqSize(); ++i) {
    ar.sq.append(r.SqAt(i));
  }
  for (std::size_t i = 0; i < r.CqSize(); ++i) {
    ar.cq.append(r.CqAt(i));
  }
  return ar;
}

SpecSeq<ThrdPtr> RunQueueView(const ProcessManager& pm) {
  SpecSeq<ThrdPtr> out;
  for (ThrdPtr t : pm.run_queue()) {
    out.append(t);
  }
  return out;
}

// Writes `v` into `m[k]` only when it differs; a skipped write preserves the
// map's COW rep sharing (the delta-abstraction equality fast path depends on
// untouched maps staying rep-shared with the base snapshot).
template <typename K, typename V>
void SetIfChanged(SpecMap<K, V>* m, const K& k, const V& v) {
  if (m->contains(k) && m->at(k) == v) {
    return;
  }
  m->set(k, v);
}

}  // namespace

AbstractKernel Kernel::Abstract() const {
  AbstractKernel a;
  a.root_container = pm_.root_container();

  for (const auto& [c_ptr, perm] : pm_.cntr_perms()) {
    a.containers.set(c_ptr, AbstractContainer(perm.value()));
  }

  for (const auto& [p_ptr, perm] : pm_.proc_perms()) {
    a.procs.set(p_ptr, AbstractProcess(perm.value()));
    if (vm_.HasAddressSpace(p_ptr)) {
      a.address_spaces.set(p_ptr, vm_.AddressSpaceOf(p_ptr));
    }
  }

  for (const auto& [t_ptr, perm] : pm_.thrd_perms()) {
    a.threads.set(t_ptr, AbstractThread(perm.value()));
  }

  for (const auto& [e_ptr, perm] : pm_.edpt_perms()) {
    a.endpoints.set(e_ptr, AbstractEndpoint(perm.value()));
  }

  for (PagePtr page : alloc_.AllocatedPages()) {
    a.pages.set(page, AbstractPage(alloc_, vm_, page, PageState::kAllocated));
  }
  for (PagePtr page : alloc_.MappedPages()) {
    a.pages.set(page, AbstractPage(alloc_, vm_, page, PageState::kMapped));
  }
  a.free_pages_4k = alloc_.FreePages(PageSize::k4K);
  a.free_pages_2m = alloc_.FreePages(PageSize::k2M);
  a.free_pages_1g = alloc_.FreePages(PageSize::k1G);

  for (const auto& [id, table] : iommu_.domains()) {
    a.iommu_domains.set(id, AbstractIommuDomain(iommu_, id, table));
  }

  for (const auto& [id, ring] : rings_.rings()) {
    a.rings.set(id, AbstractRing(ring));
  }

  a.run_queue = RunQueueView(pm_);
  a.current = pm_.current();
  return a;
}

DirtySet Kernel::DrainDirty() {
  DirtySet d;
  pm_.DrainDirty(&d);
  alloc_.DrainDirtyInto(&d.pages, &d.overflow);
  vm_.DrainDirtyInto(&d.spaces, &d.overflow);
  iommu_.DrainDirtyInto(&d.iommu_domains, &d.overflow);
  rings_.DrainDirtyInto(&d.rings, &d.overflow);
  return d;
}

AbstractKernel Kernel::AbstractDelta(const AbstractKernel& base, const DirtySet& dirty) const {
  if (dirty.overflow) {
    return Abstract();  // log overflowed: the dirty set is not exhaustive
  }
  AbstractKernel a = base;  // O(1): every SpecMap/SpecSet copy shares its rep

  for (CtnrPtr c : dirty.ctnrs) {
    if (pm_.ContainerExists(c)) {
      SetIfChanged(&a.containers, c, AbstractContainer(pm_.GetContainer(c)));
    } else {
      a.containers.erase(c);
    }
  }

  for (ProcPtr p : dirty.procs) {
    if (pm_.ProcessExists(p)) {
      SetIfChanged(&a.procs, p, AbstractProcess(pm_.GetProcess(p)));
    } else {
      a.procs.erase(p);
      a.address_spaces.erase(p);
    }
  }

  for (ThrdPtr t : dirty.thrds) {
    if (pm_.ThreadExists(t)) {
      SetIfChanged(&a.threads, t, AbstractThread(pm_.GetThread(t)));
    } else {
      a.threads.erase(t);
    }
  }

  for (EdptPtr e : dirty.edpts) {
    if (pm_.EndpointExists(e)) {
      SetIfChanged(&a.endpoints, e, AbstractEndpoint(pm_.GetEndpoint(e)));
    } else {
      a.endpoints.erase(e);
    }
  }

  for (ProcPtr p : dirty.spaces) {
    if (vm_.HasAddressSpace(p)) {
      SetIfChanged(&a.address_spaces, p, vm_.AddressSpaceOf(p));
    } else {
      a.address_spaces.erase(p);
    }
  }

  for (PagePtr page : dirty.pages) {
    switch (alloc_.StateOf(page)) {
      case PageState::kAllocated:
        SetIfChanged(&a.pages, page, AbstractPage(alloc_, vm_, page, PageState::kAllocated));
        a.free_pages_4k.erase(page);
        a.free_pages_2m.erase(page);
        a.free_pages_1g.erase(page);
        break;
      case PageState::kMapped:
        SetIfChanged(&a.pages, page, AbstractPage(alloc_, vm_, page, PageState::kMapped));
        a.free_pages_4k.erase(page);
        a.free_pages_2m.erase(page);
        a.free_pages_1g.erase(page);
        break;
      case PageState::kFree: {
        a.pages.erase(page);
        PageSize size = alloc_.SizeClassOf(page);
        (size == PageSize::k4K ? a.free_pages_4k
         : size == PageSize::k2M ? a.free_pages_2m
                                 : a.free_pages_1g)
            .add(page);
        if (size != PageSize::k4K) a.free_pages_4k.erase(page);
        if (size != PageSize::k2M) a.free_pages_2m.erase(page);
        if (size != PageSize::k1G) a.free_pages_1g.erase(page);
        break;
      }
      case PageState::kMerged:
      case PageState::kUnavailable:
        // Tail of a superpage (or reserved): no standalone abstract entry.
        a.pages.erase(page);
        a.free_pages_4k.erase(page);
        a.free_pages_2m.erase(page);
        a.free_pages_1g.erase(page);
        break;
    }
  }

  for (IommuDomainId id : dirty.iommu_domains) {
    auto it = iommu_.domains().find(id);
    if (it != iommu_.domains().end()) {
      SetIfChanged(&a.iommu_domains, id, AbstractIommuDomain(iommu_, id, it->second));
    } else {
      a.iommu_domains.erase(id);
    }
  }

  for (std::uint64_t id : dirty.rings) {
    if (rings_.Exists(id)) {
      SetIfChanged(&a.rings, id, AbstractRing(rings_.Get(id)));
    } else {
      a.rings.erase(id);
    }
  }

  if (dirty.scheduler) {
    SpecSeq<ThrdPtr> rq = RunQueueView(pm_);
    if (!(rq == a.run_queue)) {
      a.run_queue = rq;
    }
    a.current = pm_.current();
  }
  return a;
}

InvResult Kernel::MemorySafetyWf() const {
  SpecSet<PagePtr> pm_closure = pm_.PageClosure();
  SpecSet<PagePtr> vm_closure = vm_.PageClosure();
  SpecSet<PagePtr> io_closure = iommu_.PageClosure();

  // Pairwise disjointness (type safety: one owner per page).
  if (!pm_closure.IsDisjointFrom(vm_closure) || !pm_closure.IsDisjointFrom(io_closure) ||
      !vm_closure.IsDisjointFrom(io_closure)) {
    return InvResult::Fail("subsystem page closures overlap");
  }
  // Leak freedom: the union of the closures is exactly the allocated set.
  SpecSet<PagePtr> closures = pm_closure.Union(vm_closure).Union(io_closure);
  if (!(closures == alloc_.AllocatedPages())) {
    return InvResult::Fail("page closures differ from the allocator's allocated set");
  }
  // Mapped frames are exactly the VM subsystem's held permissions.
  if (!(vm_.HeldFrames() == alloc_.MappedPages())) {
    return InvResult::Fail("held frame permissions differ from the mapped set");
  }
  // Global map counts: CPU mappings + IOMMU mappings.
  std::map<PagePtr, std::uint32_t> counts;
  for (const auto& [proc, table] : vm_.tables()) {
    for (const auto& [va, entry] : table.AddressSpace()) {
      ++counts[entry.addr];
    }
  }
  for (const auto& [id, table] : iommu_.domains()) {
    for (const auto& [iova, entry] : table.AddressSpace()) {
      ++counts[entry.addr];
    }
  }
  for (PagePtr page : alloc_.MappedPages()) {
    std::uint32_t expect = counts.count(page) ? counts[page] : 0;
    if (alloc_.MapCount(page) != expect) {
      return InvResult::Fail("map count disagrees with mapping tally");
    }
  }
  return InvResult{};
}

InvResult Kernel::TotalWf() const {
  InvResult r = ProcessManagerWf(pm_);
  if (!r.ok) {
    return r;
  }
  r = QuotaWf(pm_, alloc_);
  if (!r.ok) {
    return r;
  }
  if (!alloc_.Wf()) {
    return InvResult::Fail("page allocator ill-formed");
  }
  if (!vm_.Wf(*mem_, alloc_)) {
    return InvResult::Fail("virtual-memory subsystem ill-formed");
  }
  if (!iommu_.Wf()) {
    return InvResult::Fail("IOMMU subsystem ill-formed");
  }
  if (!rings_.Wf()) {
    return InvResult::Fail("syscall-ring table ill-formed");
  }
  // Page-table refinement for every address space.
  for (const auto& [proc, table] : vm_.tables()) {
    RefinementReport flat = FlatRefinementCheck(table, *mem_);
    if (!flat.ok) {
      return InvResult::Fail("page-table refinement: " + flat.detail);
    }
    RefinementReport cross = MmuCrossCheck(table, mmu_);
    if (!cross.ok) {
      return InvResult::Fail("MMU cross-check: " + cross.detail);
    }
  }
  return MemorySafetyWf();
}

Kernel Kernel::CloneForVerification() const {
  Kernel out;
  CloneForVerificationInto(&out);
  return out;
}

void Kernel::CloneForVerificationInto(Kernel* out) const {
  if (out->mem_ == nullptr) {
    out->mem_ = std::make_unique<PhysMem>(mem_->frame_count());
  }
  mem_->CloneForVerificationInto(out->mem_.get());
  out->mmu_ = Mmu(out->mem_.get());
  alloc_.CloneForVerificationInto(&out->alloc_);
  pm_.CloneForVerificationInto(&out->pm_);
  vm_.CloneForVerificationInto(&out->vm_, out->mem_.get());
  iommu_.CloneForVerificationInto(&out->iommu_, out->mem_.get());
  rings_.CloneForVerificationInto(&out->rings_);
}

}  // namespace atmo
