// The Atmosphere microkernel facade (§3).
//
// Owns every subsystem and exposes the system-call interface. All kernel
// entry runs under the (modelled) big lock: Step() is one atomic transition
// of the kernel state machine. Step is split into Dispatch (the scheduler
// puts the invoking thread on the CPU) and Exec (the call itself) so the
// refinement harness can check each phase against its own specification.
//
// Failure atomicity: every return other than kOk/kBlocked leaves the
// abstract state unchanged — syscalls pre-validate everything (including
// exact quota/node costs) or roll back.

#ifndef ATMO_SRC_CORE_KERNEL_H_
#define ATMO_SRC_CORE_KERNEL_H_

#include <memory>
#include <optional>
#include <string>

#include "src/core/syscall.h"
#include "src/core/syscall_ring.h"
#include "src/core/vm_manager.h"
#include "src/hw/mmu.h"
#include "src/hw/phys_mem.h"
#include "src/iommu/iommu_manager.h"
#include "src/pmem/page_allocator.h"
#include "src/proc/invariants.h"
#include "src/proc/process_manager.h"
#include "src/spec/abstract_state.h"
#include "src/vstd/dirty_set.h"

namespace atmo {

struct BootConfig {
  std::uint64_t frames = 16384;        // 64 MiB machine by default
  std::uint64_t reserved_frames = 16;  // kernel image / boot structures
};

class Kernel {
 public:
  static std::optional<Kernel> Boot(const BootConfig& config);

  Kernel(Kernel&&) noexcept = default;
  Kernel& operator=(Kernel&&) noexcept = default;

  // --- Syscall interface (the verified surface) ---
  // Puts `t` on the CPU: if another thread is current it is preempted to
  // the run-queue tail; `t` must be current already or runnable.
  void Dispatch(ThrdPtr t);
  // Executes `call` on behalf of the current thread (must be `t`).
  SyscallRet Exec(ThrdPtr t, const Syscall& call);
  // Dispatch + Exec.
  SyscallRet Step(ThrdPtr t, const Syscall& call);

  // --- Syscall rings (DESIGN.md §13) ---
  // Drains up to `call.ring_budget` entries (0 = no limit) from a ring's SQ
  // and executes them back-to-back; the kRingEnter case of Exec lands here.
  // One call is ONE checked transition covering the whole batch — that is
  // the amortization. On a kRingDrainAtomic ring, any failing entry rolls
  // the entire batch back (Ψ' == Ψ, SQ retained) and returns kWouldFault.
  SyscallRet ExecBatch(ThrdPtr t, const Syscall& call);
  // Shared-memory submission fast path: the same validation and SQ push as
  // SysOp::kRingSubmit without a syscall transition, modelling user space
  // writing an SQE into the mapped SQ (io_uring's submission model). The
  // mutation lands in the ring dirty log and is absorbed at the checker's
  // next capture, like any other external mutation (e.g. TakeInbound).
  SyscallRet RingPushDirect(ThrdPtr t, const Syscall& submit);
  // Pops up to `max` completions (modelling user space reading the mapped
  // CQ). Returns the number written to `out`; 0 on a foreign/unknown ring.
  std::size_t RingReap(ThrdPtr t, std::uint64_t ring_id, RingCqEntry* out, std::size_t max);

  // Message delivered to a blocked-then-woken thread, readable on resume
  // (modelling the thread's registers/IPC buffer after the kernel returns).
  // Clears the inbound flag.
  std::optional<IpcPayload> TakeInbound(ThrdPtr t);
  bool HasInbound(ThrdPtr t) const;

  // --- Trusted boot environment (runs before user threads exist; §5
  // items 8-9 — the unverified init path) ---
  PmResult<CtnrPtr> BootCreateContainer(CtnrPtr parent, std::uint64_t quota,
                                        std::uint64_t cpu_mask);
  PmResult<ProcPtr> BootCreateProcess(CtnrPtr ctnr);
  PmResult<ThrdPtr> BootCreateThread(ProcPtr proc);

  // --- Subsystem access (read paths for invariants/spec; the harness and
  // devices use these, user code goes through syscalls) ---
  const PhysMem& mem() const { return *mem_; }
  PhysMem& mem_mut() { return *mem_; }
  const PageAllocator& alloc() const { return alloc_; }
  const ProcessManager& pm() const { return pm_; }
  const VmManager& vm() const { return vm_; }
  const IommuManager& iommu() const { return iommu_; }
  IommuManager& iommu_mut() { return iommu_; }
  const SyscallRingTable& rings() const { return rings_; }
  const Mmu& mmu() const { return mmu_; }
  CtnrPtr root_container() const { return pm_.root_container(); }
  // Mutable access for the verification harness and failure-injection
  // tests; user code must go through syscalls.
  ProcessManager& pm_mut() { return pm_; }
  PageAllocator& alloc_mut() { return alloc_; }
  VmManager& vm_mut() { return vm_; }

  // --- Verification surface ---
  // Abstraction function: concrete state -> Ψ.
  AbstractKernel Abstract() const;
  // Drains every subsystem's mutation log: the set of objects whose
  // abstract view may differ from the last drained snapshot.
  DirtySet DrainDirty();
  // Incremental abstraction: patches `base` (a faithful Ψ of the concrete
  // state as of the previous drain) at exactly the dirty entries, yielding
  // Abstract() in O(|dirty|) instead of O(machine). Falls back to a full
  // Abstract() when the dirty log overflowed.
  AbstractKernel AbstractDelta(const AbstractKernel& base, const DirtySet& dirty) const;
  // total_wf(): conjunction of every subsystem invariant plus the global
  // memory-safety and leak-freedom arguments (§4.2).
  InvResult TotalWf() const;
  // Global memory argument alone: subsystem page closures are pairwise
  // disjoint and their union is exactly the allocator's allocated set;
  // mapped frames are exactly the VM subsystem's held frames.
  InvResult MemorySafetyWf() const;

  Kernel CloneForVerification() const;
  // Pooled clone: overwrite `out` (a previous clone or default shell) in
  // place, reusing its PhysMem frame blocks, map nodes, and index buckets.
  // Abstract-state identical to CloneForVerification (differential-tested);
  // steady-state refills perform no heap allocations. `out`'s own snapshot
  // pool, if any, is left untouched.
  void CloneForVerificationInto(Kernel* out) const;

 private:
  Kernel() = default;

  // Syscall implementations.
  SyscallRet SysYield();
  SyscallRet SysMmap(ThrdPtr t, const Syscall& call);
  SyscallRet SysMunmap(ThrdPtr t, const Syscall& call);
  SyscallRet SysNewContainer(ThrdPtr t, const Syscall& call);
  SyscallRet SysNewProcess(ThrdPtr t);
  SyscallRet SysNewThread(ThrdPtr t, const Syscall& call);
  SyscallRet SysNewEndpoint(ThrdPtr t, const Syscall& call);
  SyscallRet SysUnbindEndpoint(ThrdPtr t, const Syscall& call);
  SyscallRet SysSend(ThrdPtr t, const Syscall& call);
  SyscallRet SysRecv(ThrdPtr t, const Syscall& call);
  SyscallRet SysCall(ThrdPtr t, const Syscall& call);
  SyscallRet SysReply(ThrdPtr t, const Syscall& call);
  SyscallRet SysExit(ThrdPtr t);
  SyscallRet SysKillProcess(ThrdPtr t, const Syscall& call);
  SyscallRet SysKillContainer(ThrdPtr t, const Syscall& call);
  SyscallRet SysIommuCreateDomain(ThrdPtr t);
  SyscallRet SysIommuAttachDevice(ThrdPtr t, const Syscall& call);
  SyscallRet SysIommuDetachDevice(ThrdPtr t, const Syscall& call);
  SyscallRet SysIommuMapDma(ThrdPtr t, const Syscall& call);
  SyscallRet SysIommuUnmapDma(ThrdPtr t, const Syscall& call);
  SyscallRet SysRingSetup(ThrdPtr t, const Syscall& call);
  SyscallRet SysRingSubmit(ThrdPtr t, const Syscall& call);
  SyscallRet SysGrantReturn(ThrdPtr t, const Syscall& call);
  SyscallRet SysObsQuery(ThrdPtr t, const Syscall& call);
  // Shared body of kSend (is_call = false) and kCall (is_call = true):
  // resolve the outbound payload, then deliver to a waiting receiver or
  // stage-and-block on the endpoint.
  SyscallRet SendPath(ThrdPtr t, const Syscall& call, bool is_call);

  // Resolves sender-side grant references in `*payload` IN PLACE into
  // physical object pointers; validates authority (including the exclusive-
  // mapping discipline for kMove/kBorrow grants). Returns false + error on
  // failure (callers drop the partially-resolved payload). In place so the
  // send paths stage exactly one payload copy per delivery instead of
  // copying through an optional return (DESIGN.md §14).
  bool ResolveOutboundPayload(ThrdPtr sender, IpcPayload* payload, SysError* error);
  // Checks a resolved payload can be applied to `receiver` (dest slots
  // free, quota available) without mutating anything. `sender` is
  // re-validated for kMove/kBorrow grants — a staged sender may have lost
  // its exclusive mapping while blocked.
  bool CanDeliver(const IpcPayload& payload, ThrdPtr sender, ThrdPtr receiver,
                  SysError* error) const;
  // Applies a resolved payload to `receiver`: maps page grants (unmapping
  // or downgrading the sender's side for kMove/kBorrow in the same
  // transition), installs caps, moves domain ownership, fills the inbound
  // buffer. Must follow a successful CanDeliver.
  void Deliver(const IpcPayload& payload, ThrdPtr sender, ThrdPtr receiver);
  // Shared tail of the send-shaped paths (SysSend/SysCall/SysReply) and
  // SysRecv: delivery of an already-resolved payload to a known receiver.
  bool DeliverResolved(const IpcPayload& resolved, ThrdPtr sender, ThrdPtr receiver,
                       SysError* error);

  // Kill machinery.
  bool ProcIsAncestorOf(ProcPtr ancestor, ProcPtr descendant) const;
  void ClearReplyRefs(ThrdPtr gone);
  void KillProcessTree(ProcPtr root);
  void KillOneProcess(ProcPtr proc);

  std::unique_ptr<PhysMem> mem_;
  Mmu mmu_{nullptr};
  PageAllocator alloc_{1, 1};
  ProcessManager pm_;
  VmManager vm_{nullptr};
  IommuManager iommu_{nullptr};
  SyscallRingTable rings_;
  // Preallocated clone destination for ExecBatch's atomic-drain snapshots:
  // instead of rebuilding a full kernel image from the heap on every atomic
  // batch, the snapshot is refilled in place (CloneForVerificationInto).
  // Detached before use so the rollback `*this = std::move(*pool)` cannot
  // destroy the object being moved from (see ExecBatch).
  std::unique_ptr<Kernel> snapshot_pool_;
};

}  // namespace atmo

#endif  // ATMO_SRC_CORE_KERNEL_H_
