#include "src/core/vm_manager.h"

#include <utility>
#include <vector>

#include "src/vstd/check.h"

namespace atmo {

namespace {

constexpr int LeafLevel(PageSize size) {
  switch (size) {
    case PageSize::k4K:
      return 1;
    case PageSize::k2M:
      return 2;
    case PageSize::k1G:
      return 3;
  }
  return 1;
}

}  // namespace

PageTable* VmManager::FindTable(ProcPtr proc) {
  auto it = table_index_.find(proc);
  return it == table_index_.end() ? nullptr : it->second;
}

const PageTable* VmManager::FindTable(ProcPtr proc) const {
  auto it = table_index_.find(proc);
  return it == table_index_.end() ? nullptr : it->second;
}

bool VmManager::CreateAddressSpace(PageAllocator* alloc, ProcPtr proc, CtnrPtr owner) {
  ATMO_CHECK(table_index_.count(proc) == 0, "address space already exists for process");
  std::optional<PageTable> table = PageTable::New(mem_, alloc, owner);
  if (!table.has_value()) {
    return false;
  }
  // averif-lint: allow(hot-path-alloc) — address-space creation is a cold spawn-path op
  auto [it, inserted] = tables_.emplace(proc, std::move(*table));
  ATMO_CHECK(inserted, "tables_ and table_index_ out of lockstep");
  // averif-lint: allow(hot-path-alloc) — address-space creation is a cold spawn-path op
  table_index_.emplace(proc, &it->second);
  dirty_.Mark(proc);
  return true;
}

VmManager::DestroyStats VmManager::DestroyAddressSpace(PageAllocator* alloc, ProcPtr proc) {
  PageTable* table = FindTable(proc);
  ATMO_CHECK(table != nullptr, "DestroyAddressSpace of unknown process");
  dirty_.Mark(proc);
  DestroyStats stats;

  std::vector<VAddr> vas;
  for (const auto& [va, entry] : table->AddressSpace()) {
    // averif-lint: allow(hot-path-alloc) — address-space teardown is a cold control-plane op
    vas.push_back(va);
  }
  for (VAddr va : vas) {
    std::optional<UnmapResult> result = Unmap(alloc, proc, va);
    ATMO_CHECK(result.has_value(), "address-space teardown failed to unmap");
    if (result->released) {
      stats.released_frames[result->released_owner] += result->released_frames;
    }
  }
  stats.table_nodes = table->PageClosure().size();
  table->Destroy(alloc);
  table_index_.erase(proc);
  tables_.erase(proc);
  return stats;
}

const PageTable& VmManager::TableOf(ProcPtr proc) const {
  const PageTable* table = FindTable(proc);
  ATMO_CHECK(table != nullptr, "TableOf unknown process");
  return *table;
}

SpecMap<VAddr, MapEntry> VmManager::AddressSpaceOf(ProcPtr proc) const {
  return TableOf(proc).AddressSpace();
}

std::optional<MapEntry> VmManager::Resolve(ProcPtr proc, VAddr va) const {
  const PageTable* table = FindTable(proc);
  if (table == nullptr) {
    return std::nullopt;
  }
  return table->Resolve(va);
}

std::uint64_t VmManager::NodesNeededFor(ProcPtr proc, VAddr va, PageSize size) const {
  const PageTable& table = TableOf(proc);
  // Simulate the descent against hardware bits: count absent levels.
  int leaf = LeafLevel(size);
  PAddr node = table.cr3();
  std::uint64_t needed = 0;
  for (int level = 4; level > leaf; --level) {
    if (needed > 0) {
      // Everything below the first absent node is absent too.
      ++needed;
      continue;
    }
    std::uint64_t pte = mem_->HwReadU64(node + VaIndex(va, level) * 8);
    if ((pte & kPtePresent) == 0) {
      ++needed;
    } else {
      node = pte & kPteAddrMask;
    }
  }
  return needed;
}

void VmManager::MapFreshPage(PageAllocator* alloc, ProcPtr proc, VAddr va, PageAlloc page,
                             MapEntryPerm perm) {
  PageTable* table = FindTable(proc);
  ATMO_CHECK(table != nullptr, "MapFreshPage into unknown process");
  PageSize size = page.perm.size();
  alloc->MarkMapped(page.ptr);
  MapError err = table->Map(alloc, va, page.ptr, size, perm);
  ATMO_CHECK(err == MapError::kOk, "pre-validated map failed");
  dirty_.Mark(proc);
  // averif-lint: allow(hot-path-alloc) — per-mapping bookkeeping entry, created once per fresh page on a map-management op; bounded by the dynamic AllocProbe gate
  frame_perms_.emplace(page.ptr, std::move(page.perm));
}

MapError VmManager::MapSharedPage(PageAllocator* alloc, ProcPtr proc, VAddr va, PagePtr page,
                                  PageSize size, MapEntryPerm perm) {
  PageTable* table = FindTable(proc);
  if (table == nullptr) {
    return MapError::kNotMapped;
  }
  ATMO_CHECK(alloc->StateOf(page) == PageState::kMapped,
             "MapSharedPage of a page that is not mapped");
  MapError err = table->Map(alloc, va, page, size, perm);
  if (err != MapError::kOk) {
    return err;
  }
  dirty_.Mark(proc);
  alloc->IncMapCount(page);
  return MapError::kOk;
}

const VmManager::BorrowRecord* VmManager::BorrowOf(PagePtr page) const {
  auto it = borrows_.find(page);
  return it == borrows_.end() ? nullptr : &it->second;
}

void VmManager::UpdatePerm(PageAllocator* alloc, ProcPtr proc, VAddr va, MapEntryPerm perm) {
  PageTable* table = FindTable(proc);
  ATMO_CHECK(table != nullptr, "UpdatePerm in unknown process");
  std::optional<MapEntry> entry = table->Unmap(va);
  ATMO_CHECK(entry.has_value(), "UpdatePerm of an unmapped address");
  // Re-map at the same VA: every intermediate node survived the Unmap, so
  // this allocates nothing and cannot fail; the map count never moved.
  MapError err = table->Map(alloc, va, entry->addr, entry->size, perm);
  ATMO_CHECK(err == MapError::kOk, "UpdatePerm remap failed");
  dirty_.Mark(proc);
}

void VmManager::BeginBorrow(PageAllocator* alloc, PagePtr page, ProcPtr lender, VAddr lender_va,
                            ProcPtr borrower, VAddr borrower_va, PageSize size) {
  ATMO_CHECK(borrows_.count(page) == 0, "page is already borrowed");
  const PageTable* table = FindTable(lender);
  ATMO_CHECK(table != nullptr, "borrow from unknown lender");
  std::optional<MapEntry> entry = table->Resolve(lender_va);
  ATMO_CHECK(entry.has_value() && entry->addr == page, "borrow source mapping mismatch");
  BorrowRecord rec;
  rec.lender = lender;
  rec.lender_va = lender_va;
  rec.lender_perm = entry->perm;
  rec.borrower = borrower;
  rec.borrower_va = borrower_va;
  rec.size = size;
  MapEntryPerm ro = entry->perm;
  ro.writable = false;
  UpdatePerm(alloc, lender, lender_va, ro);
  // averif-lint: allow(hot-path-alloc) — per-grant bookkeeping entry; grant setup is control plane for the zero-copy data path, which itself stays allocation-free
  borrows_.emplace(page, rec);
  // Ψ's per-page borrow fields piggyback on the allocator dirty log: the
  // grant that called us just ran IncMapCount(page), which marked the page.
}

std::optional<VmManager::UnmapResult> VmManager::Unmap(PageAllocator* alloc, ProcPtr proc,
                                                       VAddr va) {
  PageTable* table = FindTable(proc);
  if (table == nullptr) {
    return std::nullopt;
  }
  std::optional<MapEntry> entry = table->Unmap(va);
  if (!entry.has_value()) {
    return std::nullopt;
  }
  dirty_.Mark(proc);
  UnmapResult result;
  result.entry = *entry;
  PagePtr page = entry->addr;
  // A vanished mapping ends any borrow of the page. The borrower side is a
  // return/revocation: the lender gets its original rights back. The lender
  // side just forgets the record — the borrower's view degenerates into an
  // ordinary read-only shared mapping.
  auto bit = borrows_.find(page);
  if (bit != borrows_.end()) {
    const BorrowRecord rec = bit->second;
    if (proc == rec.borrower && va == rec.borrower_va) {
      borrows_.erase(bit);
      UpdatePerm(alloc, rec.lender, rec.lender_va, rec.lender_perm);
    } else if (proc == rec.lender && va == rec.lender_va) {
      borrows_.erase(bit);
    }
  }
  if (alloc->DecMapCount(page) == 0) {
    result.released = true;
    result.released_owner = alloc->OwnerOf(page);
    result.released_frames = PageFrames4K(entry->size);
    auto perm_it = frame_perms_.find(page);
    ATMO_CHECK(perm_it != frame_perms_.end(), "mapped frame permission missing");
    FramePerm perm = std::move(perm_it->second);
    frame_perms_.erase(perm_it);
    alloc->ReclaimUnmapped(page, std::move(perm));
  }
  return result;
}

// Dirty-log note: the only abstract-state change here is the page's return
// to the free lists, which ReclaimUnmapped records in the allocator's own
// dirty log (waiver on the declaration in vm_manager.h).
void VmManager::ReclaimDevicePinnedFrame(PageAllocator* alloc, PagePtr page) {
  ATMO_CHECK(alloc->MapCount(page) == 0, "reclaim of a frame that is still referenced");
  auto it = frame_perms_.find(page);
  ATMO_CHECK(it != frame_perms_.end(), "device-pinned frame permission missing");
  FramePerm perm = std::move(it->second);
  frame_perms_.erase(it);
  alloc->ReclaimUnmapped(page, std::move(perm));
}

SpecSet<PagePtr> VmManager::PageClosure() const {
  SpecSet<PagePtr> out;
  for (const auto& [proc, table] : tables_) {
    out = out.Union(table.PageClosure());
  }
  return out;
}

SpecSet<PagePtr> VmManager::HeldFrames() const {
  SpecSet<PagePtr> out;
  for (const auto& [page, perm] : frame_perms_) {
    out.add(page);
  }
  return out;
}

bool VmManager::Wf(const PhysMem& mem, const PageAllocator& alloc) const {
  // The hashed index mirrors tables_ exactly: same domain, and every entry
  // points at the authoritative map node.
  if (table_index_.size() != tables_.size()) {
    return false;
  }
  for (const auto& [proc, table] : tables_) {
    auto it = table_index_.find(proc);
    if (it == table_index_.end() || it->second != &table) {
      return false;
    }
  }
  // Per-table structural invariants.
  for (const auto& [proc, table] : tables_) {
    if (!table.StructureWf(mem)) {
      return false;
    }
  }
  // Held frame permissions are exactly the allocator's mapped pages.
  if (!(HeldFrames() == alloc.MappedPages())) {
    return false;
  }
  // No address space maps a frame that is not in the mapped state. Exact
  // map-count accounting (CPU + IOMMU references) is checked globally by
  // Kernel::MemorySafetyWf, which sees both subsystems.
  for (const auto& [proc, table] : tables_) {
    for (const auto& [va, entry] : table.AddressSpace()) {
      if (alloc.StateOf(entry.addr) != PageState::kMapped) {
        return false;
      }
    }
  }
  // Every borrow record matches two live read-only mappings of its page:
  // the lender's downgraded entry and the borrower's view. Unmap drops or
  // revokes records, so a dangling record is a discipline violation.
  for (const auto& [page, rec] : borrows_) {
    if (alloc.StateOf(page) != PageState::kMapped) {
      return false;
    }
    const PageTable* lender = FindTable(rec.lender);
    const PageTable* borrower = FindTable(rec.borrower);
    if (lender == nullptr || borrower == nullptr) {
      return false;
    }
    std::optional<MapEntry> le = lender->Resolve(rec.lender_va);
    std::optional<MapEntry> be = borrower->Resolve(rec.borrower_va);
    if (!le.has_value() || le->addr != page || le->size != rec.size || le->perm.writable) {
      return false;
    }
    if (!be.has_value() || be->addr != page || be->size != rec.size || be->perm.writable) {
      return false;
    }
  }
  return true;
}

VmManager VmManager::CloneForVerification(PhysMem* mem) const {
  VmManager out(mem);
  for (const auto& [proc, table] : tables_) {
    // averif-lint: allow(hot-path-alloc) — fresh-clone path runs only on first capture; steady state uses CloneForVerificationInto over pooled state
    auto [it, inserted] = out.tables_.emplace(proc, table.CloneForVerification(mem));
    // averif-lint: allow(hot-path-alloc) — fresh-clone path runs only on first capture (see above)
    out.table_index_.emplace(proc, &it->second);
  }
  for (const auto& [page, perm] : frame_perms_) {
    // averif-lint: allow(hot-path-alloc) — fresh-clone path runs only on first capture (see above)
    out.frame_perms_.emplace(page, perm.CloneForVerification());
  }
  out.borrows_ = borrows_;
  return out;
}

void VmManager::CloneForVerificationInto(VmManager* out, PhysMem* mem) const {
  out->mem_ = mem;
  // Sorted merge walk: per-table pooled clones into reused map nodes.
  auto dit = out->tables_.begin();
  for (const auto& [proc, table] : tables_) {
    while (dit != out->tables_.end() && dit->first < proc) {
      dit = out->tables_.erase(dit);
    }
    if (dit != out->tables_.end() && dit->first == proc) {
      table.CloneForVerificationInto(&dit->second, mem);
      ++dit;
    } else {
      // averif-lint: allow(hot-path-alloc) — emplace_hint refills a recycled node from the pool; allocates only when live state grew past the pooled high-water mark
      dit = out->tables_.emplace_hint(dit, proc, PageTable());
      table.CloneForVerificationInto(&dit->second, mem);
      ++dit;
    }
  }
  out->tables_.erase(dit, out->tables_.end());
  // Rebuild the hashed lockstep index (table_index_) against the reused
  // nodes. Prune-then-upsert instead of clear()+emplace: clear() destroys
  // the nodes (only the bucket array survives), so re-emplacing would pay
  // one allocation per entry on every refill; overwriting existing keys in
  // place is allocation-free at steady state.
  for (auto iit = out->table_index_.begin(); iit != out->table_index_.end();) {
    if (out->tables_.find(iit->first) == out->tables_.end()) {
      iit = out->table_index_.erase(iit);
    } else {
      ++iit;
    }
  }
  for (auto& [proc, table] : out->tables_) {
    out->table_index_[proc] = &table;
  }
  // frame_perms_ is hashed: erase stale keys, overwrite or insert the rest.
  for (auto fit = out->frame_perms_.begin(); fit != out->frame_perms_.end();) {
    if (frame_perms_.find(fit->first) == frame_perms_.end()) {
      fit = out->frame_perms_.erase(fit);
    } else {
      ++fit;
    }
  }
  for (const auto& [page, perm] : frame_perms_) {
    auto fit = out->frame_perms_.find(page);
    if (fit != out->frame_perms_.end()) {
      fit->second = perm.CloneForVerification();
    } else {
      // averif-lint: allow(hot-path-alloc) — allocates only for address spaces created since the last capture; steady state recycles pooled entries
      out->frame_perms_.emplace(page, perm.CloneForVerification());
    }
  }
  // Borrow records are PODs: sorted merge like tables_, so steady-state
  // refills overwrite nodes in place instead of reallocating them.
  auto bdit = out->borrows_.begin();
  for (const auto& [page, rec] : borrows_) {
    while (bdit != out->borrows_.end() && bdit->first < page) {
      bdit = out->borrows_.erase(bdit);
    }
    if (bdit != out->borrows_.end() && bdit->first == page) {
      bdit->second = rec;
      ++bdit;
    } else {
      // averif-lint: allow(hot-path-alloc) — emplace_hint refills recycled mapping nodes; allocation only on growth past the pooled high-water mark
      bdit = out->borrows_.emplace_hint(bdit, page, rec);
      ++bdit;
    }
  }
  out->borrows_.erase(bdit, out->borrows_.end());
  out->dirty_.Reset();  // clones start with an empty mutation log
}

}  // namespace atmo
