// System-call interface of the Atmosphere microkernel (§3).
//
// A syscall is a plain record (modelling the register file at kernel entry).
// Kernel::Step(thread, syscall) executes one invocation atomically under the
// big lock. Failure is atomic: any return other than kOk/kBlocked leaves the
// abstract kernel state unchanged — the per-syscall specifications in
// src/spec assert exactly that.

#ifndef ATMO_SRC_CORE_SYSCALL_H_
#define ATMO_SRC_CORE_SYSCALL_H_

#include <cstdint>

#include "src/ipc/message.h"
#include "src/vstd/types.h"

namespace atmo {

enum class SysOp : std::uint8_t {
  kYield = 0,
  kMmap,            // map fresh pages into the caller's address space
  kMunmap,          // remove mappings from the caller's address space
  kNewContainer,    // child container of the caller's container
  kNewProcess,      // child process of the caller's process
  kNewThread,       // thread in the caller's (or a same-container) process
  kNewEndpoint,     // endpoint bound to a caller descriptor slot
  kUnbindEndpoint,  // drop a caller descriptor (frees the endpoint at zero)
  kSend,            // send a message (blocks if no receiver)
  kRecv,            // receive a message (blocks if no sender)
  kCall,            // send, then block for the reply
  kReply,           // reply to the thread that called us
  kExit,            // terminate the calling thread
  kKillProcess,     // terminate a descendant process subtree
  kKillContainer,   // terminate a descendant container subtree, harvest
  kIommuCreateDomain,
  kIommuAttachDevice,
  kIommuDetachDevice,
  kIommuMapDma,
  kIommuUnmapDma,
  kRingSetup,   // create a submission/completion ring owned by the caller
  kRingSubmit,  // enqueue one deferred syscall onto a ring's SQ
  kRingEnter,   // drain the SQ: execute entries back-to-back, fill the CQ
  kGrantReturn, // return a borrowed page (va_range.base = borrower VA)
  kObsQuery,    // snapshot the caller's obs counters into a writable page
                // (va_range.base = destination VA, must be a mapping base)
};

const char* SysOpName(SysOp op);

// Record layout kObsQuery writes at the destination VA. Plain u64 words so
// user code (and the differential test) can read it back with HwReadBytes
// without any packing concerns. The snapshot is advisory telemetry — it is
// *about* the kernel, not part of Ψ, which is exactly why ObsQuerySpec can
// demand Ψ' == Ψ (the abstraction carries no memory byte contents).
struct ObsQueryRecord {
  std::uint64_t magic = 0;            // kObsQueryMagic
  std::uint64_t version = 0;          // kObsQueryVersion
  std::uint64_t mapped_pages = 0;     // mappings in the caller's address space
  std::uint64_t borrows_lent = 0;     // outstanding loans where caller is lender
  std::uint64_t borrows_held = 0;     // outstanding loans where caller is borrower
  std::uint64_t ring_sq_depth = 0;    // queued submissions across caller-owned rings
  std::uint64_t ring_cq_depth = 0;    // unreaped completions across caller-owned rings
  std::uint64_t dropped_samples = 0;  // trace requests the obs sampler declined

  friend bool operator==(const ObsQueryRecord&, const ObsQueryRecord&) = default;
};

inline constexpr std::uint64_t kObsQueryMagic = 0x4154'4d4f'4f42'5351ull;  // "ATMOOBSQ"
inline constexpr std::uint64_t kObsQueryVersion = 1;

// Contiguous virtual range of `count` pages of uniform size (VaRange4K in
// the paper generalized over page sizes).
struct VaRange {
  VAddr base = 0;
  std::uint64_t count = 0;
  PageSize size = PageSize::k4K;

  std::uint64_t bytes() const { return count * PageBytes(size); }
  VAddr At(std::uint64_t i) const { return base + i * PageBytes(size); }

  friend bool operator==(const VaRange&, const VaRange&) = default;
};

// Upper bound on pages per mmap/munmap — keeps single syscalls short under
// the big lock (the paper's §4.3 discussion notes long-running calls leak
// timing; bounding region size is the fix it proposes).
inline constexpr std::uint64_t kMaxMmapCount = 512;

struct Syscall {
  SysOp op = SysOp::kYield;

  // kMmap / kMunmap
  VaRange va_range;
  MapEntryPerm map_perm;

  // kNewContainer
  std::uint64_t quota = 0;
  std::uint64_t cpu_mask = ~0ull;

  // kNewThread (target process; kNullPtr = caller's process),
  // kKillProcess / kKillContainer (target object)
  Ptr target = kNullPtr;

  // IPC: descriptor index and payload. Grant fields are interpreted on the
  // sender side: PageGrant.page is the *sender virtual address* of the page
  // to grant; EndpointGrant.endpoint is the *sender descriptor index* to
  // delegate. The kernel resolves them to physical object pointers during
  // the transfer.
  EdptIdx edpt_idx = 0;
  IpcPayload payload;

  // IOMMU ops.
  std::uint64_t iommu_domain = 0;
  std::uint32_t device = 0;
  VAddr iova = 0;
  VAddr dma_va = 0;  // caller VA of the page to expose to the device

  // Syscall rings (kRingSetup / kRingSubmit / kRingEnter). A submitted entry
  // reuses this same register file for the deferred call's arguments:
  // `ring_op` names the inner op and the kernel rewrites `op := ring_op`
  // (clearing the ring fields) when the entry is drained — see
  // RingInnerCall() in src/core/syscall_ring.h.
  std::uint64_t ring_id = 0;        // kRingSubmit / kRingEnter: target ring
  std::uint32_t ring_entries = 0;   // kRingSetup: SQ/CQ capacity (power of two)
  std::uint32_t ring_flags = 0;     // kRingSetup: RingFlags bits
  SysOp ring_op = SysOp::kYield;    // kRingSubmit: the deferred op
  std::uint64_t ring_user_data = 0; // kRingSubmit: echoed in the completion
  std::uint32_t ring_budget = 0;    // kRingEnter: max entries (0 = no limit)

  friend bool operator==(const Syscall&, const Syscall&) = default;
};

enum class SysError : std::uint8_t {
  kOk = 0,
  kBlocked,        // the caller blocked; result delivered on wake-up
  kNoMemory,       // physical memory exhausted
  kQuotaExceeded,  // container reservation exhausted
  kCapacity,       // a bounded kernel structure is full
  kInvalid,        // malformed arguments / dangling handle
  kDenied,         // caller lacks authority over the target
  kWouldFault,     // transfer could not be applied to the peer
};

const char* SysErrorName(SysError error);

struct SyscallRet {
  SysError error = SysError::kOk;
  std::uint64_t value = 0;  // created object pointer / domain id / count

  bool ok() const { return error == SysError::kOk; }
  friend bool operator==(const SyscallRet&, const SyscallRet&) = default;
};

}  // namespace atmo

#endif  // ATMO_SRC_CORE_SYSCALL_H_
