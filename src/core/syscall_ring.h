// io_uring-style syscall submission/completion rings (asynchronous batched
// syscalls, following the akaros async `struct syscall` + event-queue idiom).
//
// A SyscallRing is a first-class kernel object owned by the thread that set
// it up: a bounded submission queue (SQ) of deferred syscalls and a bounded
// completion queue (CQ) of their results. Entries are submitted either via
// SysOp::kRingSubmit (a real syscall, checked per-call) or via
// Kernel::RingPushDirect (modelling a user-space write to the shared-memory
// SQ, the io_uring fast path — absorbed by the dirty log like any other
// external mutation). SysOp::kRingEnter drains the SQ: the kernel executes
// the entries back-to-back under the big lock and the refinement checker
// pays ONE capture + spec + frame + Wf check for the whole drained batch
// instead of one per call (DESIGN.md §13).
//
// The queues reuse the drivers/spsc_ring.h shape — power-of-two slot arrays
// with free-running head/tail indices — minus the atomics: rings are kernel
// state mutated only under the (modelled) big lock.
//
// Lifecycle note: rings are NOT harvested when their owner exits or is
// killed; a ring whose owner is gone is inert (submit/drain re-validate
// owner identity at use time). See DESIGN.md §13 for why this keeps the
// kill specifications untouched.

#ifndef ATMO_SRC_CORE_SYSCALL_RING_H_
#define ATMO_SRC_CORE_SYSCALL_RING_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/core/syscall.h"
#include "src/vstd/check.h"
#include "src/vstd/dirty_set.h"
#include "src/vstd/types.h"

namespace atmo {

// Bounds: capacity keeps one drained batch short under the big lock for the
// same reason kMaxMmapCount bounds a single mmap (§4.3 timing discussion);
// the table bound keeps the ring id space a bounded kernel structure.
inline constexpr std::uint32_t kMaxRingEntries = 1024;
inline constexpr std::size_t kMaxRings = 64;

enum RingFlags : std::uint32_t {
  // Batch-level failure atomicity: if any drained entry fails, the WHOLE
  // batch rolls back (Ψ' == Ψ) and kRingEnter returns kWouldFault with the
  // SQ retained. Without the flag a failed entry just completes with its
  // error in the CQ and the drain continues (io_uring semantics).
  kRingDrainAtomic = 1u << 0,
};

struct RingSqEntry {
  Syscall call;  // already rewritten by RingInnerCall: op is the inner op
  std::uint64_t user_data = 0;

  friend bool operator==(const RingSqEntry&, const RingSqEntry&) = default;
};

struct RingCqEntry {
  std::uint64_t user_data = 0;
  SyscallRet ret;

  friend bool operator==(const RingCqEntry&, const RingCqEntry&) = default;
};

// Which ops may be deferred onto a ring. Excluded, deliberately:
//   * blocking IPC (kSend/kRecv/kCall/kReply) — a CQ entry cannot represent
//     a thread parked on an endpoint;
//   * kYield — scheduling from inside a batch is meaningless (the batch
//     already runs with the owner on the CPU);
//   * kExit / kKillProcess / kKillContainer — could remove the draining
//     thread (or the ring's owner) mid-batch;
//   * ring ops themselves — no nesting.
bool RingSubmittable(SysOp op);

// The deferred call carried by a kRingSubmit record: the same register file
// with `op := ring_op` and the ring fields cleared. Shared by the kernel
// (what it executes at drain) and the spec (what it expects in the SQ) so
// the two cannot drift.
Syscall RingInnerCall(const Syscall& submit);

inline bool RingCapacityValid(std::uint32_t n) {
  return n != 0 && n <= kMaxRingEntries && (n & (n - 1)) == 0;
}

class SyscallRing {
 public:
  SyscallRing() = default;
  SyscallRing(ThrdPtr owner, ProcPtr owner_proc, CtnrPtr owner_ctnr, std::uint32_t capacity,
              std::uint32_t flags)
      : owner_(owner),
        owner_proc_(owner_proc),
        owner_ctnr_(owner_ctnr),
        capacity_(capacity),
        flags_(flags),
        sq_slots_(capacity),
        cq_slots_(capacity) {
    ATMO_CHECK(RingCapacityValid(capacity), "SyscallRing capacity must be a power of two");
  }

  ThrdPtr owner() const { return owner_; }
  ProcPtr owner_proc() const { return owner_proc_; }
  CtnrPtr owner_ctnr() const { return owner_ctnr_; }
  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t flags() const { return flags_; }
  bool atomic() const { return (flags_ & kRingDrainAtomic) != 0; }

  // Free-running indices: size is the unsigned difference, the slot is the
  // index masked by the power-of-two capacity (wraps cleanly at 2^32).
  std::size_t SqSize() const { return static_cast<std::uint32_t>(sq_tail_ - sq_head_); }
  std::size_t CqSize() const { return static_cast<std::uint32_t>(cq_tail_ - cq_head_); }
  bool SqEmpty() const { return sq_head_ == sq_tail_; }
  bool SqFull() const { return SqSize() == capacity_; }
  bool CqFull() const { return CqSize() == capacity_; }

  // FIFO views (index 0 = oldest), for the abstraction function and specs.
  const RingSqEntry& SqAt(std::size_t i) const {
    ATMO_CHECK(i < SqSize(), "SyscallRing::SqAt out of range");
    return sq_slots_[(sq_head_ + i) & (capacity_ - 1)];
  }
  const RingCqEntry& CqAt(std::size_t i) const {
    ATMO_CHECK(i < CqSize(), "SyscallRing::CqAt out of range");
    return cq_slots_[(cq_head_ + i) & (capacity_ - 1)];
  }

  // Mutations go through SyscallRingTable so every one lands in the dirty
  // log; the ring itself has no log of its own.
  void SqPush(const RingSqEntry& e) {
    ATMO_CHECK(!SqFull(), "SyscallRing::SqPush on a full SQ");
    sq_slots_[sq_tail_ & (capacity_ - 1)] = e;
    ++sq_tail_;
  }
  RingSqEntry SqPop() {
    ATMO_CHECK(!SqEmpty(), "SyscallRing::SqPop on an empty SQ");
    RingSqEntry e = sq_slots_[sq_head_ & (capacity_ - 1)];
    ++sq_head_;
    return e;
  }
  void CqPush(const RingCqEntry& e) {
    ATMO_CHECK(!CqFull(), "SyscallRing::CqPush on a full CQ");
    cq_slots_[cq_tail_ & (capacity_ - 1)] = e;
    ++cq_tail_;
  }
  bool CqPop(RingCqEntry* out) {
    if (cq_head_ == cq_tail_) {
      return false;
    }
    *out = cq_slots_[cq_head_ & (capacity_ - 1)];
    ++cq_head_;
    return true;
  }

 private:
  ThrdPtr owner_ = kNullPtr;
  ProcPtr owner_proc_ = kNullPtr;
  CtnrPtr owner_ctnr_ = kNullPtr;
  std::uint32_t capacity_ = 0;
  std::uint32_t flags_ = 0;
  std::vector<RingSqEntry> sq_slots_;
  std::uint32_t sq_head_ = 0;
  std::uint32_t sq_tail_ = 0;
  std::vector<RingCqEntry> cq_slots_;
  std::uint32_t cq_head_ = 0;
  std::uint32_t cq_tail_ = 0;
};

// The kernel's ring table: bounded, ids monotonically increasing and never
// reused (a dangling ring id is kInvalid forever, never a confused deputy).
// Every mutation marks the ring id in the dirty log so the incremental
// abstraction patches exactly the touched rings.
class SyscallRingTable {
 public:
  static constexpr std::size_t kCapacity = kMaxRings;

  // Creates a ring; returns its id, or 0 when the table is full or the
  // capacity is invalid (callers pre-validate for precise errors).
  std::uint64_t Setup(ThrdPtr owner, ProcPtr owner_proc, CtnrPtr owner_ctnr,
                      std::uint32_t capacity, std::uint32_t flags);

  bool Exists(std::uint64_t id) const { return rings_.count(id) != 0; }
  const SyscallRing& Get(std::uint64_t id) const;
  std::size_t Count() const { return rings_.size(); }
  const std::map<std::uint64_t, SyscallRing>& rings() const { return rings_; }

  // Queue mutations; all return false instead of asserting on a bad id or a
  // full/empty queue so syscall paths can pre-validate and stay atomic.
  bool SqPush(std::uint64_t id, const RingSqEntry& e);
  bool SqPop(std::uint64_t id, RingSqEntry* out);
  bool CqPush(std::uint64_t id, const RingCqEntry& e);
  bool CqPop(std::uint64_t id, RingCqEntry* out);

  bool Wf() const;

  void DrainDirtyInto(std::set<std::uint64_t>* out, bool* overflow_out) {
    dirty_.DrainInto(out, overflow_out);
  }

  // Deep copy with a fresh (empty) dirty log, like every subsystem clone.
  SyscallRingTable CloneForVerification() const;
  // Pooled clone: overwrite `out` in place, reusing its ring map nodes and
  // queue storage (DESIGN.md §14).
  void CloneForVerificationInto(SyscallRingTable* out) const;

 private:
  SyscallRing* GetMutAndMark(std::uint64_t id);

  std::map<std::uint64_t, SyscallRing> rings_;
  std::uint64_t next_id_ = 1;
  DirtyLog dirty_;
};

}  // namespace atmo

#endif  // ATMO_SRC_CORE_SYSCALL_RING_H_
