#include "src/core/syscall_ring.h"

namespace atmo {

bool RingSubmittable(SysOp op) {
  switch (op) {
    case SysOp::kMmap:
    case SysOp::kMunmap:
    case SysOp::kNewContainer:
    case SysOp::kNewProcess:
    case SysOp::kNewThread:
    case SysOp::kNewEndpoint:
    case SysOp::kUnbindEndpoint:
    case SysOp::kIommuCreateDomain:
    case SysOp::kIommuAttachDevice:
    case SysOp::kIommuDetachDevice:
    case SysOp::kIommuMapDma:
    case SysOp::kIommuUnmapDma:
    case SysOp::kGrantReturn:
      return true;
    case SysOp::kYield:
    case SysOp::kSend:
    case SysOp::kRecv:
    case SysOp::kCall:
    case SysOp::kReply:
    case SysOp::kExit:
    case SysOp::kKillProcess:
    case SysOp::kKillContainer:
    case SysOp::kRingSetup:
    case SysOp::kRingSubmit:
    case SysOp::kRingEnter:
    case SysOp::kObsQuery:
      // Snapshot semantics stay synchronous: a deferred query would report
      // counters as of an unpredictable drain point, which defeats its
      // purpose and would entangle the ring spec with observability state.
      return false;
  }
  return false;
}

Syscall RingInnerCall(const Syscall& submit) {
  Syscall inner = submit;
  inner.op = submit.ring_op;
  inner.ring_id = 0;
  inner.ring_entries = 0;
  inner.ring_flags = 0;
  inner.ring_op = SysOp::kYield;
  inner.ring_user_data = 0;
  inner.ring_budget = 0;
  return inner;
}

std::uint64_t SyscallRingTable::Setup(ThrdPtr owner, ProcPtr owner_proc, CtnrPtr owner_ctnr,
                                      std::uint32_t capacity, std::uint32_t flags) {
  if (rings_.size() >= kCapacity || !RingCapacityValid(capacity)) {
    return 0;
  }
  std::uint64_t id = next_id_++;
  // averif-lint: allow(hot-path-alloc) — ring setup happens once per thread at registration — control plane
  rings_.emplace(id, SyscallRing(owner, owner_proc, owner_ctnr, capacity, flags));
  dirty_.Mark(id);
  return id;
}

const SyscallRing& SyscallRingTable::Get(std::uint64_t id) const {
  auto it = rings_.find(id);
  ATMO_CHECK(it != rings_.end(), "SyscallRingTable::Get of unknown ring");
  return it->second;
}

SyscallRing* SyscallRingTable::GetMutAndMark(std::uint64_t id) {
  auto it = rings_.find(id);
  if (it == rings_.end()) {
    return nullptr;
  }
  dirty_.Mark(id);
  return &it->second;
}

bool SyscallRingTable::SqPush(std::uint64_t id, const RingSqEntry& e) {
  SyscallRing* ring = GetMutAndMark(id);
  if (ring == nullptr || ring->SqFull()) {
    return false;
  }
  ring->SqPush(e);
  return true;
}

bool SyscallRingTable::SqPop(std::uint64_t id, RingSqEntry* out) {
  SyscallRing* ring = GetMutAndMark(id);
  if (ring == nullptr || ring->SqEmpty()) {
    return false;
  }
  *out = ring->SqPop();
  return true;
}

bool SyscallRingTable::CqPush(std::uint64_t id, const RingCqEntry& e) {
  SyscallRing* ring = GetMutAndMark(id);
  if (ring == nullptr || ring->CqFull()) {
    return false;
  }
  ring->CqPush(e);
  return true;
}

bool SyscallRingTable::CqPop(std::uint64_t id, RingCqEntry* out) {
  SyscallRing* ring = GetMutAndMark(id);
  if (ring == nullptr) {
    return false;
  }
  return ring->CqPop(out);
}

bool SyscallRingTable::Wf() const {
  std::uint64_t max_id = 0;
  for (const auto& [id, ring] : rings_) {
    if (id == 0 || id >= next_id_) {
      return false;  // id 0 is the setup-failure sentinel; ids never exceed the counter
    }
    max_id = id > max_id ? id : max_id;
    if (!RingCapacityValid(ring.capacity())) {
      return false;
    }
    if (ring.SqSize() > ring.capacity() || ring.CqSize() > ring.capacity()) {
      return false;
    }
    // Every queued entry must still be a submittable inner op with its ring
    // fields cleared — exactly what RingInnerCall produces at submit time.
    for (std::size_t i = 0; i < ring.SqSize(); ++i) {
      const Syscall& call = ring.SqAt(i).call;
      if (!RingSubmittable(call.op) || call.ring_id != 0 || call.ring_budget != 0) {
        return false;
      }
    }
  }
  return rings_.size() <= kCapacity && max_id < next_id_;
}

SyscallRingTable SyscallRingTable::CloneForVerification() const {
  SyscallRingTable out;
  CloneForVerificationInto(&out);
  return out;
}

void SyscallRingTable::CloneForVerificationInto(SyscallRingTable* out) const {
  // Map copy-assign reuses the destination's nodes (libstdc++
  // _Reuse_or_alloc_node) and each SyscallRing's queue capacity.
  out->rings_ = rings_;
  out->next_id_ = next_id_;
  out->dirty_.Reset();  // clones start with an empty mutation log
}

}  // namespace atmo
