// Virtual-memory management: per-process address spaces.
//
// The subsystem owns the memory of all page tables (§4.2) and, flatly, the
// frame permissions of every *mapped* user page. The map-count bookkeeping
// in the page allocator is the authority on sharing; this subsystem holds
// each mapped frame's linear permission until the last unmapping returns it
// to the allocator.

#ifndef ATMO_SRC_CORE_VM_MANAGER_H_
#define ATMO_SRC_CORE_VM_MANAGER_H_

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "src/hw/mmu.h"
#include "src/hw/phys_mem.h"
#include "src/pagetable/page_table.h"
#include "src/pmem/page_allocator.h"
#include "src/vstd/dirty_set.h"
#include "src/vstd/spec_map.h"
#include "src/vstd/spec_set.h"
#include "src/vstd/types.h"

namespace atmo {

class VmManager {
 public:
  explicit VmManager(PhysMem* mem) : mem_(mem) {}

  VmManager(VmManager&&) noexcept = default;
  VmManager& operator=(VmManager&&) noexcept = default;

  // Address-space lifecycle. Creation allocates the root table node
  // (charged to `owner` at the allocator level; quota is the kernel's job).
  bool CreateAddressSpace(PageAllocator* alloc, ProcPtr proc, CtnrPtr owner);
  // Unmaps every remaining mapping (releasing frames whose map count drops
  // to zero) and frees the table nodes. Returns the number of table node
  // pages freed and, via `released`, the set of user frames freed with the
  // 4K-frame count each released page uncharges from its owner.
  struct DestroyStats {
    std::uint64_t table_nodes = 0;
    // (owner container at release time, frames released) aggregated.
    std::map<CtnrPtr, std::uint64_t> released_frames;
  };
  DestroyStats DestroyAddressSpace(PageAllocator* alloc, ProcPtr proc);

  bool HasAddressSpace(ProcPtr proc) const { return table_index_.count(proc) != 0; }
  const PageTable& TableOf(ProcPtr proc) const;
  SpecMap<VAddr, MapEntry> AddressSpaceOf(ProcPtr proc) const;
  std::optional<MapEntry> Resolve(ProcPtr proc, VAddr va) const;

  // Number of fresh table nodes a Map of `va` would allocate (exact, by
  // simulating the descent). Used for exact quota pre-charging.
  std::uint64_t NodesNeededFor(ProcPtr proc, VAddr va, PageSize size) const;

  // Maps a freshly allocated page (already in allocated state, permission
  // passed in) at `va`; transitions it to mapped. The caller has verified
  // va is free and nodes are available, so this cannot fail.
  void MapFreshPage(PageAllocator* alloc, ProcPtr proc, VAddr va, PageAlloc page,
                    MapEntryPerm perm);
  // Maps an already-mapped page into another (or the same) address space —
  // sharing via IPC page grant. Increments the map count.
  MapError MapSharedPage(PageAllocator* alloc, ProcPtr proc, VAddr va, PagePtr page,
                         PageSize size, MapEntryPerm perm);
  // Unmaps `va`. If the frame's map count drops to zero the frame is
  // returned to the allocator and `released_owner`/`released_frames` are
  // set so the kernel can uncharge the owning container. Unmapping either
  // side of a live borrow ends the borrow: the borrower side restores the
  // lender's original rights, the lender side merely drops the record (the
  // borrower keeps an ordinary read-only shared mapping).
  struct UnmapResult {
    MapEntry entry;
    bool released = false;
    CtnrPtr released_owner = kNullPtr;
    std::uint64_t released_frames = 0;
  };
  std::optional<UnmapResult> Unmap(PageAllocator* alloc, ProcPtr proc, VAddr va);

  // --- Read-only page borrows (IPC kBorrow grants; DESIGN.md §15) ---
  // A live borrow: the lender kept a read-only downgrade of its mapping,
  // the borrower holds a read-only view installed by the grant. Exactly one
  // record per page (borrows are exclusive), keyed by the physical page.
  struct BorrowRecord {
    ProcPtr lender = kNullPtr;
    VAddr lender_va = 0;
    MapEntryPerm lender_perm;  // original rights, restored at revocation
    ProcPtr borrower = kNullPtr;
    VAddr borrower_va = 0;
    PageSize size = PageSize::k4K;

    friend bool operator==(const BorrowRecord&, const BorrowRecord&) = default;
  };
  bool IsBorrowed(PagePtr page) const { return borrows_.count(page) != 0; }
  const BorrowRecord* BorrowOf(PagePtr page) const;
  const std::map<PagePtr, BorrowRecord>& borrows() const { return borrows_; }

  // Rewrites the rights of an existing mapping in place. Allocation-free:
  // Unmap retains intermediate table nodes, so the remap at the same VA
  // allocates no nodes and the map count is untouched.
  void UpdatePerm(PageAllocator* alloc, ProcPtr proc, VAddr va, MapEntryPerm perm);

  // Establishes a borrow of `page`: downgrades the lender's mapping at
  // `lender_va` to read-only (recording the original rights) and registers
  // the record. The borrower's read-only mapping must already be installed
  // (MapSharedPage); the page must not already be borrowed.
  void BeginBorrow(PageAllocator* alloc, PagePtr page, ProcPtr lender, VAddr lender_va,
                   ProcPtr borrower, VAddr borrower_va, PageSize size);

  // Releases a frame whose last reference was a device (IOMMU) pin: no CPU
  // mapping remains and the map count has reached zero. Returns the held
  // permission to the allocator.
  // averif-lint: allow(dirty-log) — the only abstract-state change is the
  // page's return to the free lists, which ReclaimUnmapped records in the
  // allocator's own dirty log; frame_perms_ is concrete bookkeeping with no
  // Ψ component of its own (no (proc, va) mapping changes here).
  void ReclaimDevicePinnedFrame(PageAllocator* alloc, PagePtr page);

  // --- Ghost / invariants ---
  // Pages used by the page tables themselves (page_closure of this
  // subsystem; mapped user frames are owned by the address spaces and
  // accounted separately).
  SpecSet<PagePtr> PageClosure() const;
  // Domain of held user-frame permissions (must equal the allocator's
  // mapped set).
  SpecSet<PagePtr> HeldFrames() const;
  // Structural + refinement well-formedness of every table, plus
  // frame-permission consistency: held frames are exactly the allocator's
  // mapped pages and each map count equals the number of (proc, va)
  // mappings of that frame.
  bool Wf(const PhysMem& mem, const PageAllocator& alloc) const;

  const std::map<ProcPtr, PageTable>& tables() const { return tables_; }

  // Drains the set of processes whose abstract address space may have
  // changed since the last drain (incremental abstraction). Released user
  // frames are tracked by the page allocator's own dirty log.
  void DrainDirtyInto(std::set<ProcPtr>* out, bool* overflow) { dirty_.DrainInto(out, overflow); }

  VmManager CloneForVerification(PhysMem* mem) const;
  // Pooled clone: overwrite `out` in place, reusing its table map nodes,
  // per-table storage, and index buckets (DESIGN.md §14).
  void CloneForVerificationInto(VmManager* out, PhysMem* mem) const;

 private:
  // Hashed-index lookups used by every syscall; nullptr when absent.
  PageTable* FindTable(ProcPtr proc);
  const PageTable* FindTable(ProcPtr proc) const;

  PhysMem* mem_;
  std::map<ProcPtr, PageTable> tables_;
  // Hashed proc -> table index, maintained in lockstep with tables_ by
  // CreateAddressSpace/DestroyAddressSpace (its only mutation points).
  // std::map nodes are pointer-stable, so the raw pointers stay valid until
  // the entry itself is erased. Wf() cross-checks index vs tables_.
  std::unordered_map<ProcPtr, PageTable*> table_index_;
  // Flat: all mapped user frames. Hashed — only ever probed by frame base.
  std::unordered_map<PagePtr, FramePerm> frame_perms_;
  // Live read-only borrows, one per page. Every entry matches two live
  // mappings (Wf cross-checks both sides); Unmap drops/revokes records so
  // they can never dangle.
  std::map<PagePtr, BorrowRecord> borrows_;
  DirtyLog dirty_;
};

}  // namespace atmo

#endif  // ATMO_SRC_CORE_VM_MANAGER_H_
