// Single-producer / single-consumer shared ring buffer.
//
// The asynchronous communication primitive of the paper's driver
// configurations: the application and the driver process exchange request
// and completion descriptors through shared memory — lock-free for the
// atmo-c2 configuration (two cores), and plain (but identical code) for
// atmo-c1 where both sides share one core and rendezvous over an IPC
// endpoint per batch.

#ifndef ATMO_SRC_DRIVERS_SPSC_RING_H_
#define ATMO_SRC_DRIVERS_SPSC_RING_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace atmo {

template <typename T, std::size_t N>
class SpscRing {
  static_assert((N & (N - 1)) == 0, "capacity must be a power of two");

 public:
  bool Push(const T& value) {
    std::uint32_t head = head_.load(std::memory_order_relaxed);
    std::uint32_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= N) {
      return false;  // full
    }
    slots_[head & (N - 1)] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool Pop(T* out) {
    std::uint32_t tail = tail_.load(std::memory_order_relaxed);
    std::uint32_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return false;  // empty
    }
    *out = slots_[tail & (N - 1)];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::uint32_t PushBurst(const T* values, std::uint32_t n) {
    std::uint32_t pushed = 0;
    while (pushed < n && Push(values[pushed])) {
      ++pushed;
    }
    return pushed;
  }

  std::uint32_t PopBurst(T* out, std::uint32_t n) {
    std::uint32_t popped = 0;
    while (popped < n && Pop(&out[popped])) {
      ++popped;
    }
    return popped;
  }

  std::uint32_t Size() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }
  bool Empty() const { return Size() == 0; }
  static constexpr std::size_t capacity() { return N; }

 private:
  alignas(64) std::atomic<std::uint32_t> head_{0};
  alignas(64) std::atomic<std::uint32_t> tail_{0};
  alignas(64) std::array<T, N> slots_{};
};

}  // namespace atmo

#endif  // ATMO_SRC_DRIVERS_SPSC_RING_H_
