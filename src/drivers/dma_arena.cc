#include "src/drivers/dma_arena.h"

#include <algorithm>
#include <utility>

#include "src/vstd/check.h"

namespace atmo {

DmaArena::DmaArena(PhysMem* mem, PageAllocator* alloc, IommuManager* iommu,
                   IommuDomainId domain, VAddr iova_base, CtnrPtr owner)
    : mem_(mem),
      alloc_(alloc),
      iommu_(iommu),
      domain_(domain),
      iova_base_(iova_base),
      next_(iova_base),
      owner_(owner) {
  ATMO_CHECK(iova_base % kPageSize4K == 0, "arena IOVA base must be page aligned");
}

DmaArena::~DmaArena() {
  // Unmap and free everything (leak freedom at teardown).
  for (std::size_t i = 0; i < page_pa_.size(); ++i) {
    VAddr iova = iova_base_ + i * kPageSize4K;
    iommu_->UnmapDma(domain_, iova);
    alloc_->FreePage(page_pa_[i], std::move(perms_[i]));
  }
}

VAddr DmaArena::Alloc(std::uint64_t bytes) {
  ATMO_CHECK(bytes > 0, "arena alloc of zero bytes");
  std::uint64_t pages = (bytes + kPageSize4K - 1) / kPageSize4K;
  VAddr iova = next_;
  for (std::uint64_t i = 0; i < pages; ++i) {
    std::optional<PageAlloc> page = alloc_->AllocPage4K(owner_);
    ATMO_CHECK(page.has_value(), "DMA arena exhausted physical memory");
    MapEntryPerm rw{.writable = true, .user = true, .no_execute = true};
    MapError err = iommu_->MapDma(alloc_, domain_, next_, page->ptr, PageSize::k4K, rw);
    ATMO_CHECK(err == MapError::kOk, "DMA arena IOVA mapping failed");
    // Pre-touch so the backing frame exists before any cross-thread access
    // (PhysMem allocates frames lazily on first write).
    mem_->HwWriteU64(page->ptr, 0);
    page_pa_.push_back(page->ptr);
    perms_.push_back(std::move(page->perm));
    next_ += kPageSize4K;
  }
  return iova;
}

PAddr DmaArena::Translate(VAddr iova) const {
  ATMO_CHECK(iova >= iova_base_, "arena translate below base");
  std::uint64_t index = (iova - iova_base_) / kPageSize4K;
  ATMO_CHECK(index < page_pa_.size(), "arena translate beyond allocation");
  return page_pa_[index] + (iova & (kPageSize4K - 1));
}

void DmaArena::Write(VAddr iova, const void* src, std::uint64_t len) {
  const std::uint8_t* bytes = static_cast<const std::uint8_t*>(src);
  std::uint64_t done = 0;
  while (done < len) {
    std::uint64_t off = (iova + done) & (kPageSize4K - 1);
    std::uint64_t chunk = std::min<std::uint64_t>(len - done, kPageSize4K - off);
    mem_->HwWriteBytes(Translate(iova + done), bytes + done, chunk);
    done += chunk;
  }
}

void DmaArena::Read(VAddr iova, void* dst, std::uint64_t len) const {
  std::uint8_t* bytes = static_cast<std::uint8_t*>(dst);
  std::uint64_t done = 0;
  while (done < len) {
    std::uint64_t off = (iova + done) & (kPageSize4K - 1);
    std::uint64_t chunk = std::min<std::uint64_t>(len - done, kPageSize4K - off);
    mem_->HwReadBytes(Translate(iova + done), bytes + done, chunk);
    done += chunk;
  }
}

std::uint8_t* DmaArena::BorrowWrite(VAddr iova, std::uint64_t len) {
  ATMO_CHECK(len > 0, "arena borrow of zero bytes");
  std::uint64_t off = iova & (kPageSize4K - 1);
  ATMO_CHECK(off + len <= kPageSize4K, "arena borrow straddles a page");
  PAddr pa = Translate(iova);
  return mem_->HwFrameSpan(pa / kPageSize4K) + (pa & (kPageSize4K - 1));
}

const std::uint8_t* DmaArena::BorrowRead(VAddr iova, std::uint64_t len) const {
  ATMO_CHECK(len > 0, "arena borrow of zero bytes");
  std::uint64_t off = iova & (kPageSize4K - 1);
  ATMO_CHECK(off + len <= kPageSize4K, "arena borrow straddles a page");
  PAddr pa = Translate(iova);
  // Arena pages are pre-touched at Alloc, so the backing block exists.
  const std::uint8_t* base = mem_->HwFrameSpanIfTouched(pa / kPageSize4K);
  ATMO_CHECK(base != nullptr, "arena borrow of an untouched frame");
  return base + (pa & (kPageSize4K - 1));
}

void DmaArena::WriteU64(VAddr iova, std::uint64_t value) {
  mem_->HwWriteU64(Translate(iova), value);
}

std::uint64_t DmaArena::ReadU64(VAddr iova) const { return mem_->HwReadU64(Translate(iova)); }

}  // namespace atmo
